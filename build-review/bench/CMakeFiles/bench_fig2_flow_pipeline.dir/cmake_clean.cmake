file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_flow_pipeline.dir/bench_fig2_flow_pipeline.cpp.o"
  "CMakeFiles/bench_fig2_flow_pipeline.dir/bench_fig2_flow_pipeline.cpp.o.d"
  "bench_fig2_flow_pipeline"
  "bench_fig2_flow_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_flow_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
