// XDL writer: serialises a PlacedDesign to the textual XDL dialect — the
// stand-in for the Xilinx "XDL program tool" step in the paper's Figure 2
// (NCD -> XDL conversion).
#pragma once

#include <string>

#include "pnr/placed_design.h"
#include "xdl/xdl_parser.h"

namespace jpg {

/// Structural conversion; `version` labels the producing flow.
[[nodiscard]] XdlDesign xdl_from_placed(const PlacedDesign& design,
                                        const std::string& version = "v3.1");

/// Text rendering of an XdlDesign.
[[nodiscard]] std::string write_xdl(const XdlDesign& xdl);

/// Convenience: placed design straight to text.
[[nodiscard]] std::string write_xdl(const PlacedDesign& design);

}  // namespace jpg
