#include "netlist/netlist.h"

#include <algorithm>
#include <set>
#include <unordered_map>

namespace jpg {

std::string_view cell_kind_name(CellKind k) {
  switch (k) {
    case CellKind::Lut4: return "LUT4";
    case CellKind::Dff: return "DFF";
    case CellKind::Ibuf: return "IBUF";
    case CellKind::Obuf: return "OBUF";
    case CellKind::Gnd: return "GND";
    case CellKind::Vcc: return "VCC";
  }
  return "?";
}

NetId Netlist::add_net(std::string name) {
  Net n;
  n.name = std::move(name);
  nets_.push_back(std::move(n));
  return static_cast<NetId>(nets_.size() - 1);
}

CellId Netlist::add_cell(Cell cell) {
  const CellId id = static_cast<CellId>(cells_.size());
  const int nin = cell.num_inputs();
  for (int p = 0; p < nin; ++p) {
    const NetId in = cell.in[static_cast<std::size_t>(p)];
    if (in == kNullNet) continue;
    JPG_REQUIRE(in < nets_.size(), "cell input references unknown net");
    nets_[in].sinks.push_back({id, p});
  }
  if (cell.has_output() && cell.out != kNullNet) {
    JPG_REQUIRE(cell.out < nets_.size(), "cell output references unknown net");
    JPG_REQUIRE(nets_[cell.out].driver == kNullCell,
                "net '" + nets_[cell.out].name + "' already has a driver");
    nets_[cell.out].driver = id;
  }
  cells_.push_back(std::move(cell));
  return id;
}

CellId Netlist::add_lut(std::string name, std::uint16_t init,
                        std::array<NetId, 4> inputs, NetId out,
                        std::string partition) {
  Cell c;
  c.name = std::move(name);
  c.kind = CellKind::Lut4;
  c.partition = std::move(partition);
  c.lut_init = init;
  c.in = inputs;
  c.out = out;
  return add_cell(std::move(c));
}

CellId Netlist::add_dff(std::string name, NetId d, NetId q, bool init,
                        std::string partition) {
  Cell c;
  c.name = std::move(name);
  c.kind = CellKind::Dff;
  c.partition = std::move(partition);
  c.ff_init = init;
  c.in[0] = d;
  c.out = q;
  return add_cell(std::move(c));
}

CellId Netlist::add_ibuf(std::string name, std::string port, NetId out,
                         std::string partition) {
  Cell c;
  c.name = std::move(name);
  c.kind = CellKind::Ibuf;
  c.partition = std::move(partition);
  c.port = std::move(port);
  c.out = out;
  return add_cell(std::move(c));
}

CellId Netlist::add_obuf(std::string name, std::string port, NetId in,
                         std::string partition) {
  Cell c;
  c.name = std::move(name);
  c.kind = CellKind::Obuf;
  c.partition = std::move(partition);
  c.port = std::move(port);
  c.in[0] = in;
  return add_cell(std::move(c));
}

CellId Netlist::add_const(std::string name, bool value, NetId out,
                          std::string partition) {
  Cell c;
  c.name = std::move(name);
  c.kind = value ? CellKind::Vcc : CellKind::Gnd;
  c.partition = std::move(partition);
  c.out = out;
  return add_cell(std::move(c));
}

const Cell& Netlist::cell(CellId id) const {
  JPG_REQUIRE(id < cells_.size(), "cell id out of range");
  return cells_[id];
}

const Net& Netlist::net(NetId id) const {
  JPG_REQUIRE(id < nets_.size(), "net id out of range");
  return nets_[id];
}

std::optional<CellId> Netlist::find_cell(std::string_view name) const {
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].name == name) return static_cast<CellId>(i);
  }
  return std::nullopt;
}

std::optional<NetId> Netlist::find_net(std::string_view name) const {
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    if (nets_[i].name == name) return static_cast<NetId>(i);
  }
  return std::nullopt;
}

std::vector<std::string> Netlist::input_ports() const {
  std::vector<std::string> ports;
  for (const Cell& c : cells_) {
    if (c.kind == CellKind::Ibuf) ports.push_back(c.port);
  }
  std::sort(ports.begin(), ports.end());
  return ports;
}

std::vector<std::string> Netlist::output_ports() const {
  std::vector<std::string> ports;
  for (const Cell& c : cells_) {
    if (c.kind == CellKind::Obuf) ports.push_back(c.port);
  }
  std::sort(ports.begin(), ports.end());
  return ports;
}

std::vector<std::string> Netlist::partitions() const {
  std::set<std::string> parts;
  for (const Cell& c : cells_) {
    if (!c.partition.empty()) parts.insert(c.partition);
  }
  return {parts.begin(), parts.end()};
}

std::vector<NetId> Netlist::interface_nets() const {
  std::vector<NetId> out;
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    const Net& n = nets_[i];
    if (n.driver == kNullCell) continue;
    const std::string& dp = cells_[n.driver].partition;
    for (const NetSink& s : n.sinks) {
      if (cells_[s.cell].partition != dp) {
        out.push_back(static_cast<NetId>(i));
        break;
      }
    }
  }
  return out;
}

void Netlist::set_lut_init(CellId cell, std::uint16_t init) {
  JPG_REQUIRE(cell < cells_.size() && cells_[cell].kind == CellKind::Lut4,
              "cell is not a LUT");
  cells_[cell].lut_init = init;
}

void Netlist::detach_input(CellId cell, int pin) {
  JPG_REQUIRE(cell < cells_.size(), "cell id out of range");
  Cell& c = cells_[cell];
  JPG_REQUIRE(pin >= 0 && pin < c.num_inputs(), "pin out of range");
  const NetId net = c.in[static_cast<std::size_t>(pin)];
  if (net == kNullNet) return;
  c.in[static_cast<std::size_t>(pin)] = kNullNet;
  auto& sinks = nets_[net].sinks;
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    if (sinks[i].cell == cell && sinks[i].pin == pin) {
      sinks.erase(sinks.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
  JPG_ASSERT_MSG(false, "sink entry missing during detach");
}

Netlist::MergeResult Netlist::merge_module(const Netlist& module,
                                           const std::string& prefix) {
  MergeResult result;
  std::unordered_map<NetId, NetId> net_map;
  for (std::size_t i = 0; i < module.nets_.size(); ++i) {
    net_map[static_cast<NetId>(i)] =
        add_net(prefix + "/" + module.nets_[i].name);
  }
  auto map_net = [&](NetId id) {
    return id == kNullNet ? kNullNet : net_map.at(id);
  };
  for (const Cell& c : module.cells_) {
    switch (c.kind) {
      case CellKind::Ibuf:
        result.inputs.emplace_back(c.port, map_net(c.out));
        break;
      case CellKind::Obuf:
        result.outputs.emplace_back(c.port, map_net(c.in[0]));
        break;
      case CellKind::Lut4:
        add_lut(prefix + "/" + c.name, c.lut_init,
                {map_net(c.in[0]), map_net(c.in[1]), map_net(c.in[2]),
                 map_net(c.in[3])},
                map_net(c.out), prefix);
        break;
      case CellKind::Dff:
        add_dff(prefix + "/" + c.name, map_net(c.in[0]), map_net(c.out),
                c.ff_init, prefix);
        break;
      case CellKind::Gnd:
      case CellKind::Vcc:
        add_const(prefix + "/" + c.name, c.kind == CellKind::Vcc,
                  map_net(c.out), prefix);
        break;
    }
  }
  return result;
}

}  // namespace jpg
