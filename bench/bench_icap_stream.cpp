// ICAP STREAMING DATAPATH — the zero-copy scatter-gather download path
// (DESIGN.md §5g): back-to-back partial swaps measured cold (regenerate +
// whole-buffer send), warm-buffered (pbit cache hit, which still copies the
// result out of the cache), and resident (a pinned lease streamed straight
// from cache memory in bounded bursts — no copy anywhere between the cache
// and the board). Also: the burst-size sweep through stream_to_board, and
// the verified download with tool-side replay overlapped one burst ahead of
// the wire versus strictly sequential. Copy traffic is taken from the
// telemetry counters (pgen.cache.copy_bytes + cfg.bytes_copied), so the
// "zero bytes moved" claim is measured, not asserted. Writes
// BENCH_icap_stream.json for the driver; tools/run_checks.sh bench gates
// copy_bytes_per_resident_swap == 0, resident >= cold words/sec, resident
// ns/frame < warm-buffered ns/frame, and (on >= 4-core hosts) the overlap
// speedup.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bench_util.h"
#include "bitstream/bitgen.h"
#include "core/partial_gen.h"
#include "device/device.h"
#include "hwif/burst_engine.h"
#include "hwif/sim_board.h"
#include "hwif/stream_source.h"
#include "hwif/verified_downloader.h"
#include "support/rng.h"

namespace jpg {
namespace {

ConfigMemory noise_plane(const Device& dev, std::uint64_t seed) {
  ConfigMemory m(dev);
  Rng rng(seed);
  for (std::size_t f = 0; f < m.num_frames(); ++f) {
    for (std::size_t w = 0; w < dev.frames().frame_words(); ++w) {
      m.frame(f).set_word(w, static_cast<std::uint32_t>(rng.next()));
    }
  }
  return m;
}

struct Timing {
  double ns = 0;  ///< per call
  int iters = 0;
};

template <typename F>
Timing time_calls(F&& f, int min_iters, double min_seconds) {
  f();  // warm up
  Timing t;
  benchutil::Stopwatch sw;
  do {
    f();
    ++t.iters;
  } while (t.iters < min_iters || sw.seconds() < min_seconds);
  t.ns = sw.seconds() * 1e9 / t.iters;
  return t;
}

std::uint64_t copy_counters() {
#if JPG_TELEMETRY_ENABLED
  const telemetry::MetricsSnapshot snap =
      telemetry::MetricsRegistry::global().snapshot();
  return snap.counter("pgen.cache.copy_bytes") + snap.counter("cfg.bytes_copied");
#else
  return 0;
#endif
}

std::uint64_t overlap_counter() {
#if JPG_TELEMETRY_ENABLED
  return telemetry::MetricsRegistry::global().snapshot().counter(
      "cfg.stream_overlap_ns");
#else
  return 0;
#endif
}

void bench_device(const char* part, benchutil::JsonReport& report,
                  benchutil::Table& t) {
  using benchutil::fmt;
  const bool smoke = benchutil::smoke_mode();
  const int min_iters = smoke ? 4 : 16;
  const double min_seconds = smoke ? 0.05 : 0.2;

  const Device& dev = Device::get(part);
  const ConfigMemory base = noise_plane(dev, 11);
  const ConfigMemory mod = noise_plane(dev, 22);
  // A full-height eight-major band: a realistically sized reconfigurable
  // slot whose partial is hundreds of frames on every part measured.
  const Region region{0, 4, dev.rows() - 1, 11};
  const Bitstream base_bit = generate_full_bitstream(base);

  PartialBitstreamGenerator gen(base);
  const PartialGenResult shape = gen.generate(mod, region);
  const double frames = static_cast<double>(shape.frames.size());
  const double pwords = static_cast<double>(shape.bitstream.words.size());

  SimBoard board(dev);
  board.send_config(base_bit.words);

  // Cold: every swap regenerates the pbit from the planes and sends the
  // whole buffer at once — the pre-cache, pre-streaming baseline.
  const Timing cold = time_calls(
      [&] {
        gen.clear_cache();
        const PartialGenResult r = gen.generate(mod, region);
        board.send_config(r.bitstream.words);
        benchmark::DoNotOptimize(r.bitstream.words.data());
      },
      min_iters, min_seconds);

  // Warm-buffered: the cache answers, but every hit copies the result out
  // of the cache before the whole-buffer send.
  (void)gen.generate(mod, region);  // prime
  std::uint64_t copy0 = copy_counters();
  const Timing warm = time_calls(
      [&] {
        const PartialGenResult r = gen.generate(mod, region);
        board.send_config(r.bitstream.words);
        benchmark::DoNotOptimize(r.bitstream.words.data());
      },
      min_iters, min_seconds);
  const double warm_copy_bytes =
      static_cast<double>(copy_counters() - copy0) / warm.iters;

  // Resident: a pinned lease keeps the pbit cache-resident; each swap
  // streams the exact cached words in bounded bursts. Nothing is copied.
  const PbitLease lease = gen.generate_leased(mod, region);
  const StreamSource src = StreamSource::of(lease.words());
  copy0 = copy_counters();
  const Timing resident = time_calls(
      [&] { stream_to_board(board, src, kDefaultBurstWords); }, min_iters,
      min_seconds);
  const double resident_copy_bytes =
      static_cast<double>(copy_counters() - copy0) / resident.iters;

  const double cold_wps = pwords * 1e9 / cold.ns;
  const double resident_wps = pwords * 1e9 / resident.ns;

  report.set(part, "host_cpus", static_cast<double>(benchutil::host_cpus()));
  report.set(part, "frames", frames);
  report.set(part, "partial_words", pwords);
  report.set(part, "cold_ns_per_frame", cold.ns / frames);
  report.set(part, "cold_words_per_sec", cold_wps);
  report.set(part, "warm_buffered_ns_per_frame", warm.ns / frames);
  report.set(part, "resident_ns_per_frame", resident.ns / frames);
  report.set(part, "resident_words_per_sec", resident_wps);
  report.set(part, "copy_bytes_per_buffered_swap", warm_copy_bytes);
  report.set(part, "copy_bytes_per_resident_swap", resident_copy_bytes);

  t.row({part, "cold regenerate+send", fmt(cold.ns / frames, 0),
         fmt(cold_wps / 1e6, 1), "-"});
  t.row({part, "warm cache hit (buffered)", fmt(warm.ns / frames, 0),
         fmt(pwords * 1e9 / warm.ns / 1e6, 1),
         benchutil::fmt_bytes(static_cast<std::size_t>(warm_copy_bytes))});
  t.row({part, "resident lease (streamed)", fmt(resident.ns / frames, 0),
         fmt(resident_wps / 1e6, 1),
         benchutil::fmt_bytes(static_cast<std::size_t>(resident_copy_bytes))});

  // Burst-size sweep: per-call overhead versus burst granularity. The wire
  // content is identical at every size (the torture tests prove it); only
  // the call pattern changes.
  for (const std::size_t burst : {64u, 128u, 256u, 512u, 1024u, 2048u}) {
    const Timing b = time_calls([&] { stream_to_board(board, src, burst); },
                                min_iters, smoke ? 0.02 : 0.1);
    report.set(part, "burst" + std::to_string(burst) + "_words_per_sec",
               pwords * 1e9 / b.ns);
  }

  // Overlapped verify: the verified downloader replays burst k+1 tool-side
  // while burst k is on the wire. Both arms run the identical idempotent
  // swap (mirror already holds the target), with the full-plane sweep off
  // so the overlap signal is not diluted by identical readback cost.
  SimBoard vboard(dev);
  vboard.send_config(base_bit.words);
  DownloadPolicy policy;
  policy.full_sweep = false;
  VerifiedDownloader dl(vboard, dev, policy);
  dl.assume_board_state(base);

  StreamOptions opts;
  opts.overlap_verify = false;
  const DownloadReport first = dl.download_stream(src, opts);
  JPG_REQUIRE(first.ok(), "benchmark download did not verify");
  const Timing seq = time_calls(
      [&] {
        const DownloadReport rep = dl.download_stream(src, opts);
        JPG_REQUIRE(rep.ok(), "benchmark download did not verify");
      },
      min_iters, min_seconds);
  opts.overlap_verify = true;
  std::uint64_t ov0 = overlap_counter();
  const Timing ovl = time_calls(
      [&] {
        const DownloadReport rep = dl.download_stream(src, opts);
        JPG_REQUIRE(rep.ok(), "benchmark download did not verify");
      },
      min_iters, min_seconds);
  const double overlap_ns_per_swap =
      static_cast<double>(overlap_counter() - ov0) / ovl.iters;

  report.set(part, "verified_seq_ns_per_frame", seq.ns / frames);
  report.set(part, "verified_overlap_ns_per_frame", ovl.ns / frames);
  report.set(part, "overlap_speedup", seq.ns / ovl.ns);
  report.set(part, "stream_overlap_ns_per_swap", overlap_ns_per_swap);
  t.row({part, "verified swap, sequential", fmt(seq.ns / frames, 0),
         fmt(pwords * 1e9 / seq.ns / 1e6, 1), "-"});
  t.row({part, "verified swap, overlapped", fmt(ovl.ns / frames, 0),
         fmt(pwords * 1e9 / ovl.ns / 1e6, 1), "-"});
}

void bench_icap_stream() {
  const std::vector<const char*> parts =
      benchutil::smoke_mode() ? std::vector<const char*>{"XCV300"}
                              : std::vector<const char*>{"XCV300", "XCV800"};
  benchutil::JsonReport report;
  benchutil::Table t(
      {"device", "path", "ns/frame", "Mwords/s", "copy B/swap"});
  for (const char* part : parts) bench_device(part, report, t);
  t.print("ICAP STREAMING: partial swap latency by datapath");
  std::printf(
      "resident swaps stream the pinned cache entry straight to the port in "
      "%zu-word bursts;\nthe copy column is measured telemetry "
      "(pgen.cache.copy_bytes + cfg.bytes_copied), not an estimate.\n",
      kDefaultBurstWords);
  benchutil::add_telemetry_section(report);
  report.write_file("BENCH_icap_stream.json");
}

}  // namespace
}  // namespace jpg

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  jpg::bench_icap_stream();
  return 0;
}
