# Empty compiler generated dependencies file for telemetry_test.
# This may be replaced when dependencies are built.
