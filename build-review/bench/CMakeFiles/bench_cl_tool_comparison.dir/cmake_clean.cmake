file(REMOVE_RECURSE
  "CMakeFiles/bench_cl_tool_comparison.dir/bench_cl_tool_comparison.cpp.o"
  "CMakeFiles/bench_cl_tool_comparison.dir/bench_cl_tool_comparison.cpp.o.d"
  "bench_cl_tool_comparison"
  "bench_cl_tool_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cl_tool_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
