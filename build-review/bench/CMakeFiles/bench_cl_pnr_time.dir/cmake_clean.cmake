file(REMOVE_RECURSE
  "CMakeFiles/bench_cl_pnr_time.dir/bench_cl_pnr_time.cpp.o"
  "CMakeFiles/bench_cl_pnr_time.dir/bench_cl_pnr_time.cpp.o.d"
  "bench_cl_pnr_time"
  "bench_cl_pnr_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cl_pnr_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
