# Empty compiler generated dependencies file for bench_cl_dynamic_reconfig.
# This may be replaced when dependencies are built.
