
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/bitstream_sim.cpp" "src/CMakeFiles/jpg_sim.dir/sim/bitstream_sim.cpp.o" "gcc" "src/CMakeFiles/jpg_sim.dir/sim/bitstream_sim.cpp.o.d"
  "/root/repo/src/sim/circuit_extractor.cpp" "src/CMakeFiles/jpg_sim.dir/sim/circuit_extractor.cpp.o" "gcc" "src/CMakeFiles/jpg_sim.dir/sim/circuit_extractor.cpp.o.d"
  "/root/repo/src/sim/netlist_sim.cpp" "src/CMakeFiles/jpg_sim.dir/sim/netlist_sim.cpp.o" "gcc" "src/CMakeFiles/jpg_sim.dir/sim/netlist_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/jpg_netlist.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/jpg_cbits.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/jpg_bitstream.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/jpg_device.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/jpg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
