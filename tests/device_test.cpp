// Unit and property tests for the device model: part table, frame geometry,
// resource->bit mapping injectivity, wire naming, and the routing fabric
// template.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "device/device.h"
#include "device/region.h"
#include "support/error.h"

namespace jpg {
namespace {

TEST(DeviceSpec, PartTable) {
  const DeviceSpec& v50 = DeviceSpec::by_name("XCV50");
  EXPECT_EQ(v50.clb_rows, 16);
  EXPECT_EQ(v50.clb_cols, 24);
  EXPECT_EQ(v50.num_slices(), 16 * 24 * 2);
  EXPECT_EQ(v50.num_luts(), 16 * 24 * 4);
  EXPECT_EQ(&DeviceSpec::by_name("xcv50"), &v50);  // case-insensitive
  EXPECT_EQ(&DeviceSpec::by_idcode(v50.idcode), &v50);
  EXPECT_THROW(DeviceSpec::by_name("XCV9999"), DeviceError);
  EXPECT_THROW(DeviceSpec::by_idcode(0xDEADBEEF), DeviceError);
}

TEST(DeviceSpec, AllPartsDistinct) {
  std::set<std::string> names;
  std::set<std::uint32_t> idcodes;
  for (const auto& p : DeviceSpec::all()) {
    EXPECT_TRUE(names.insert(p.name).second);
    EXPECT_TRUE(idcodes.insert(p.idcode).second);
    EXPECT_EQ(p.clb_cols % 2, 0) << p.name;
    // Real Virtex aspect: cols = 1.5 * rows.
    EXPECT_EQ(p.clb_cols * 2, p.clb_rows * 3) << p.name;
  }
}

class FrameMapTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FrameMapTest, ColumnLayout) {
  const Device& dev = Device::get(GetParam());
  const FrameMap& fm = dev.frames();
  const int C = dev.cols();
  EXPECT_EQ(fm.num_majors(), C + 3);
  EXPECT_EQ(fm.column_kind(fm.left_iob_major()), ColumnKind::Iob);
  EXPECT_EQ(fm.column_kind(fm.right_iob_major()), ColumnKind::Iob);
  EXPECT_EQ(fm.column_kind(fm.clock_major()), ColumnKind::Clock);
  int clb_majors = 0;
  for (int m = 0; m < fm.num_majors(); ++m) {
    if (fm.column_kind(m) == ColumnKind::Clb) ++clb_majors;
  }
  EXPECT_EQ(clb_majors, C);
  // Expected frames: 2 IOB + clock + C CLB columns, plus the two BRAM
  // columns' block-type-1 content frames.
  EXPECT_EQ(fm.num_type0_frames(),
            static_cast<std::size_t>(2 * FrameMap::kIobFrames +
                                     FrameMap::kClockFrames +
                                     C * FrameMap::kClbFrames));
  EXPECT_EQ(fm.num_frames(),
            fm.num_type0_frames() +
                static_cast<std::size_t>(FrameMap::kBramMajors) *
                    FrameMap::kBramFrames);
}

TEST_P(FrameMapTest, MajorColumnBijection) {
  const Device& dev = Device::get(GetParam());
  const FrameMap& fm = dev.frames();
  std::set<int> majors;
  for (int c = 0; c < dev.cols(); ++c) {
    const int m = fm.major_of_clb_col(c);
    EXPECT_EQ(fm.column_kind(m), ColumnKind::Clb);
    EXPECT_EQ(fm.clb_col_of_major(m), c);
    EXPECT_TRUE(majors.insert(m).second);
  }
}

TEST_P(FrameMapTest, FrameIndexBijection) {
  const Device& dev = Device::get(GetParam());
  const FrameMap& fm = dev.frames();
  std::size_t count = 0;
  for (int m = 0; m < fm.num_majors(); ++m) {
    for (int minor = 0; minor < fm.frames_in_major(m); ++minor) {
      const std::size_t idx = fm.frame_index(m, minor);
      EXPECT_LT(idx, fm.num_type0_frames());
      const FrameAddress a = fm.address_of_index(idx);
      EXPECT_EQ(a.block_type, 0u);
      EXPECT_EQ(a.major, static_cast<std::uint32_t>(m));
      EXPECT_EQ(a.minor, static_cast<std::uint32_t>(minor));
      ++count;
    }
  }
  EXPECT_EQ(count, fm.num_type0_frames());
  // The BRAM content frames (block type 1) complete the plane.
  for (int bm = 0; bm < FrameMap::kBramMajors; ++bm) {
    for (int minor = 0; minor < FrameMap::kBramFrames; ++minor) {
      const std::size_t idx = fm.bram_frame_index(bm, minor);
      const FrameAddress a = fm.address_of_index(idx);
      EXPECT_EQ(a.block_type, 1u);
      EXPECT_EQ(a.major, static_cast<std::uint32_t>(bm));
      EXPECT_EQ(a.minor, static_cast<std::uint32_t>(minor));
      ++count;
    }
  }
  EXPECT_EQ(count, fm.num_frames());
}

TEST_P(FrameMapTest, FarRoundtrip) {
  const Device& dev = Device::get(GetParam());
  const FrameMap& fm = dev.frames();
  for (int m = 0; m < fm.num_majors(); m += 3) {
    for (int minor = 0; minor < fm.frames_in_major(m); minor += 5) {
      const FrameAddress a{0, static_cast<std::uint32_t>(m),
                           static_cast<std::uint32_t>(minor)};
      const std::uint32_t far = fm.encode_far(a);
      EXPECT_TRUE(fm.far_valid(far));
      EXPECT_EQ(fm.decode_far(far), a);
    }
  }
  // Invalid FARs are rejected (block type 2 is unassigned; type 1 is BRAM).
  EXPECT_FALSE(fm.far_valid(fm.encode_far({0, 0, 0}) | (2u << 24)));
  EXPECT_TRUE(fm.far_valid(fm.encode_far({1, 0, 0})));
  const FrameAddress last{
      0, static_cast<std::uint32_t>(fm.num_majors() - 1),
      static_cast<std::uint32_t>(fm.frames_in_major(fm.num_majors() - 1))};
  EXPECT_FALSE(fm.far_valid((last.major << 12) | last.minor));
}

TEST_P(FrameMapTest, FrameBitsCoverRows) {
  const Device& dev = Device::get(GetParam());
  const FrameMap& fm = dev.frames();
  EXPECT_EQ(fm.frame_bits(),
            static_cast<std::size_t>(FrameMap::kBitsPerRow) * (dev.rows() + 2));
  EXPECT_EQ(fm.frame_words(), (fm.frame_bits() + 31) / 32);
  // Row windows are disjoint and in range.
  for (int r = 0; r < dev.rows(); ++r) {
    EXPECT_GE(fm.row_bit_base(r), static_cast<std::size_t>(FrameMap::kBitsPerRow));
    EXPECT_LE(fm.row_bit_base(r) + FrameMap::kBitsPerRow,
              fm.frame_bits() - FrameMap::kBitsPerRow);
  }
}

INSTANTIATE_TEST_SUITE_P(AllParts, FrameMapTest,
                         ::testing::Values("XCV50", "XCV100", "XCV300",
                                           "XCV1000"));

// The single most important device property: the resource->bit map is
// injective (no two resources share a configuration bit) and column-local.
TEST(SliceConfigMap, InjectiveAndColumnLocal) {
  const Device& dev = Device::get("XCV50");
  const SliceConfigMap& cm = dev.config_map();
  const FrameMap& fm = dev.frames();

  std::set<std::tuple<int, int, unsigned>> used;  // (major, minor, bit)
  auto claim = [&](const FrameBit& fb, int expect_major) {
    EXPECT_EQ(fb.major, expect_major);
    EXPECT_LT(fb.minor, fm.frames_in_major(fb.major));
    EXPECT_LT(fb.bit, fm.frame_bits());
    EXPECT_TRUE(used.insert({fb.major, fb.minor, fb.bit}).second)
        << "bit collision at major " << fb.major << " minor " << fb.minor
        << " bit " << fb.bit;
  };

  // Sample a handful of tiles fully (a full sweep of XCV50 is ~1M bits and
  // adds nothing: the map is translation-invariant per row/column).
  for (const TileCoord t : {TileCoord{0, 0}, TileCoord{5, 11}, TileCoord{15, 23}}) {
    used.clear();
    const int major = fm.major_of_clb_col(t.c);
    for (int s = 0; s < 2; ++s) {
      for (int i = 0; i < 16; ++i) {
        claim(cm.lut_bit(t.r, t.c, s, LutSel::F, i), major);
        claim(cm.lut_bit(t.r, t.c, s, LutSel::G, i), major);
      }
      for (int f = 0; f < kNumSliceFields; ++f) {
        claim(cm.field_bit(t.r, t.c, s, static_cast<SliceField>(f)), major);
      }
    }
    for (int i = 0; i < SliceConfigMap::kRoutingBitsPerTile; ++i) {
      claim(cm.routing_bit(t.r, t.c, i), major);
    }
  }
}

TEST(SliceConfigMap, RowsDoNotCollide) {
  // Two vertically adjacent tiles in the same column must use disjoint bits.
  const Device& dev = Device::get("XCV50");
  const SliceConfigMap& cm = dev.config_map();
  std::set<std::tuple<int, int, unsigned>> used;
  for (int r = 3; r <= 4; ++r) {
    for (int i = 0; i < 16; ++i) {
      const FrameBit fb = cm.lut_bit(r, 7, 0, LutSel::F, i);
      EXPECT_TRUE(used.insert({fb.major, fb.minor, fb.bit}).second);
    }
    for (int i = 0; i < SliceConfigMap::kRoutingBitsPerTile; ++i) {
      const FrameBit fb = cm.routing_bit(r, 7, i);
      EXPECT_TRUE(used.insert({fb.major, fb.minor, fb.bit}).second);
    }
  }
}

TEST(SliceConfigMap, IobBitsInIobColumns) {
  const Device& dev = Device::get("XCV50");
  const SliceConfigMap& cm = dev.config_map();
  const FrameMap& fm = dev.frames();
  std::set<std::tuple<int, int, unsigned>> used;
  for (const Side side : {Side::Left, Side::Right}) {
    const int major =
        side == Side::Left ? fm.left_iob_major() : fm.right_iob_major();
    for (int k = 0; k < DeviceSpec::kIobsPerRow; ++k) {
      const FrameBit in = cm.iob_field_bit(side, 3, k, IobField::IsInput);
      const FrameBit out = cm.iob_field_bit(side, 3, k, IobField::IsOutput);
      EXPECT_EQ(in.major, major);
      EXPECT_EQ(out.major, major);
      EXPECT_TRUE(used.insert({in.major, in.minor, in.bit}).second);
      EXPECT_TRUE(used.insert({out.major, out.minor, out.bit}).second);
      for (unsigned b = 0; b < kIobOmuxBits; ++b) {
        const FrameBit fb = cm.iob_field_bit(side, 3, k, IobField::OmuxSel, b);
        EXPECT_EQ(fb.major, major);
        EXPECT_TRUE(used.insert({fb.major, fb.minor, fb.bit}).second);
      }
    }
  }
}

TEST(SliceField, NameRoundtrip) {
  for (int f = 0; f < kNumSliceFields; ++f) {
    const auto field = static_cast<SliceField>(f);
    const auto back = slice_field_by_name(slice_field_name(field));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, field);
  }
  EXPECT_FALSE(slice_field_by_name("NOT_A_FIELD").has_value());
}

TEST(WireNames, LocalWireRoundtrip) {
  for (int local = 0; local < kTileWires + kNumLongDrivers; ++local) {
    const std::string name = local_wire_name(local);
    const auto back = local_wire_by_name(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, local) << name;
  }
  EXPECT_FALSE(local_wire_by_name("BOGUS").has_value());
  EXPECT_FALSE(local_wire_by_name("OUT9").has_value());
  EXPECT_FALSE(local_wire_by_name("S2_X").has_value());
}

TEST(WireNames, KnownNames) {
  EXPECT_EQ(local_wire_name(pin_local(0, SlicePin::X)), "S0_X");
  EXPECT_EQ(local_wire_name(pin_local(1, SlicePin::YQ)), "S1_YQ");
  EXPECT_EQ(local_wire_name(out_local(3)), "OUT3");
  EXPECT_EQ(local_wire_name(single_local(Dir::E, 2)), "E2");
  EXPECT_EQ(local_wire_name(hex_local(Dir::N, 1)), "HN1");
  EXPECT_EQ(local_wire_name(imux_local(0, ImuxPin::F1)), "S0_F1");
  EXPECT_EQ(local_wire_name(imux_local(1, ImuxPin::CLK)), "S1_CLK");
  EXPECT_EQ(local_wire_name(kLongDriverBase + 2), "LV0");
}

TEST(SourceRefNames, Roundtrip) {
  const Device& dev = Device::get("XCV50");
  for (const MuxDef& mux : dev.fabric().tile_muxes()) {
    for (const SourceRef& src : mux.sources) {
      const std::string name = source_ref_name(src);
      const auto back = source_ref_by_name(name);
      ASSERT_TRUE(back.has_value()) << name;
      EXPECT_EQ(*back, src) << name;
    }
  }
}

TEST(RoutingFabric, TemplateFitsConfigBudget) {
  const Device& dev = Device::get("XCV50");
  const RoutingFabric& fab = dev.fabric();
  EXPECT_LE(fab.cfg_bits_used(), SliceConfigMap::kRoutingBitsPerTile);
  // Mux config fields are disjoint.
  std::set<int> bits;
  for (const MuxDef& m : fab.tile_muxes()) {
    EXPECT_GE(m.cfg_bits, 1u);
    // The encoding must fit: value sources.size() must be representable.
    EXPECT_LT(m.sources.size(), (1u << m.cfg_bits));
    for (unsigned b = 0; b < m.cfg_bits; ++b) {
      EXPECT_TRUE(bits.insert(m.cfg_offset + static_cast<int>(b)).second);
    }
  }
}

TEST(RoutingFabric, EveryFabricWireHasAMux) {
  const Device& dev = Device::get("XCV50");
  const RoutingFabric& fab = dev.fabric();
  for (int local = 0; local < kTileWires; ++local) {
    if (local < kOutBase) {
      EXPECT_EQ(fab.mux_for_dest(local), nullptr) << local_wire_name(local);
    } else {
      const MuxDef* m = fab.mux_for_dest(local);
      ASSERT_NE(m, nullptr) << local_wire_name(local);
      EXPECT_EQ(m->dest_local, local);
    }
  }
  for (int k = 0; k < kNumLongDrivers; ++k) {
    EXPECT_NE(fab.mux_for_dest(kLongDriverBase + k), nullptr);
  }
}

TEST(RoutingFabric, NodeInfoRoundtrip) {
  const Device& dev = Device::get("XCV50");
  const RoutingFabric& fab = dev.fabric();
  // Tile wires.
  const std::size_t n1 = fab.tile_wire_node(3, 17, out_local(5));
  const auto i1 = fab.node_info(n1);
  EXPECT_EQ(i1.type, RoutingFabric::NodeInfo::Type::TileWire);
  EXPECT_EQ(i1.r, 3);
  EXPECT_EQ(i1.c, 17);
  EXPECT_EQ(i1.local, out_local(5));
  // Longs.
  const auto ih = fab.node_info(fab.longh_node(7, 1));
  EXPECT_EQ(ih.type, RoutingFabric::NodeInfo::Type::LongH);
  EXPECT_EQ(ih.r, 7);
  EXPECT_EQ(ih.k, 1);
  const auto iv = fab.node_info(fab.longv_node(9, 0));
  EXPECT_EQ(iv.type, RoutingFabric::NodeInfo::Type::LongV);
  EXPECT_EQ(iv.c, 9);
  // Pads.
  const auto ip = fab.node_info(fab.pad_out_node(Side::Right, 11, 1));
  EXPECT_EQ(ip.type, RoutingFabric::NodeInfo::Type::PadOut);
  EXPECT_EQ(ip.side, Side::Right);
  EXPECT_EQ(ip.r, 11);
  EXPECT_EQ(ip.k, 1);
  EXPECT_EQ(fab.pad_in_node(Side::Right, 11, 1),
            fab.pad_out_node(Side::Right, 11, 1) + 1);
  // GCLK.
  EXPECT_EQ(fab.node_info(fab.gclk_node()).type,
            RoutingFabric::NodeInfo::Type::Gclk);
}

TEST(RoutingFabric, ResolveSourceInterior) {
  const Device& dev = Device::get("XCV50");
  const RoutingFabric& fab = dev.fabric();
  // A local wire resolves to the same tile.
  const SourceRef local{SourceRef::Kind::TileWire, 0, 0, out_local(2)};
  EXPECT_EQ(fab.resolve_source(4, 4, local),
            fab.tile_wire_node(4, 4, out_local(2)));
  // An incoming-from-west single resolves to the west neighbour's E wire.
  const SourceRef win{SourceRef::Kind::TileWire, 0, -1,
                      single_local(Dir::E, 3)};
  EXPECT_EQ(fab.resolve_source(4, 4, win),
            fab.tile_wire_node(4, 3, single_local(Dir::E, 3)));
}

TEST(RoutingFabric, EdgeSubstitutionToPads) {
  const Device& dev = Device::get("XCV50");
  const RoutingFabric& fab = dev.fabric();
  // At column 0, the single arriving from the west is a left pad-out wire.
  const SourceRef win0{SourceRef::Kind::TileWire, 0, -1,
                       single_local(Dir::E, 1)};
  EXPECT_EQ(fab.resolve_source(6, 0, win0), fab.pad_out_node(Side::Left, 6, 0));
  const SourceRef win5{SourceRef::Kind::TileWire, 0, -1,
                       single_local(Dir::E, 5)};
  EXPECT_EQ(fab.resolve_source(6, 0, win5), fab.pad_out_node(Side::Left, 6, 1));
  // At the right edge, the single arriving from the east is a right pad.
  const SourceRef ein{SourceRef::Kind::TileWire, 0, 1,
                      single_local(Dir::W, 6)};
  EXPECT_EQ(fab.resolve_source(2, dev.cols() - 1, ein),
            fab.pad_out_node(Side::Right, 2, 1));
  // Vertical off-array references are unconnectable.
  const SourceRef nin{SourceRef::Kind::TileWire, -1, 0,
                      single_local(Dir::S, 0)};
  EXPECT_FALSE(fab.resolve_source(0, 5, nin).has_value());
  // Hexes off the edge are unconnectable, not substituted.
  const SourceRef hex{SourceRef::Kind::TileWire, 0, -6,
                      hex_local(Dir::E, 0)};
  EXPECT_FALSE(fab.resolve_source(3, 2, hex).has_value());
}

TEST(RoutingFabric, ImuxPinsHaveLocalFeedbackAndLong) {
  const Device& dev = Device::get("XCV50");
  const RoutingFabric& fab = dev.fabric();
  for (int slice = 0; slice < 2; ++slice) {
    for (int p = 0; p < kImuxPinsPerSlice; ++p) {
      const auto pin = static_cast<ImuxPin>(p);
      const MuxDef* m = fab.mux_for_dest(imux_local(slice, pin));
      ASSERT_NE(m, nullptr);
      if (pin == ImuxPin::CLK) {
        ASSERT_EQ(m->sources.size(), 1u);
        EXPECT_EQ(m->sources[0].kind, SourceRef::Kind::Gclk);
        continue;
      }
      bool has_out = false, has_long = false;
      for (const SourceRef& s : m->sources) {
        if (s.kind == SourceRef::Kind::TileWire && s.dr == 0 && s.dc == 0 &&
            s.index >= kOutBase && s.index < kSingleBase) {
          has_out = true;
        }
        if (s.kind == SourceRef::Kind::LongH ||
            s.kind == SourceRef::Kind::LongV) {
          has_long = true;
        }
      }
      EXPECT_TRUE(has_out) << "slice " << slice << " pin " << p;
      EXPECT_TRUE(has_long) << "slice " << slice << " pin " << p;
    }
  }
}

TEST(RoutingFabric, PadInSources) {
  const Device& dev = Device::get("XCV50");
  const RoutingFabric& fab = dev.fabric();
  const auto left = fab.pad_in_sources(Side::Left, 5, 0);
  ASSERT_EQ(left.size(), static_cast<std::size_t>(kSinglesPerDir));
  for (int j = 0; j < kSinglesPerDir; ++j) {
    EXPECT_EQ(left[static_cast<std::size_t>(j)],
              fab.tile_wire_node(5, 0, single_local(Dir::W, j)));
  }
  const auto right = fab.pad_in_sources(Side::Right, 5, 1);
  EXPECT_EQ(right[0], fab.tile_wire_node(5, dev.cols() - 1,
                                         single_local(Dir::E, 0)));
}

TEST(Device, SiteNameRoundtrips) {
  const Device& dev = Device::get("XCV50");
  const SliceSite s{2, 22, 1};
  EXPECT_EQ(dev.slice_site_name(s), "CLB_R3C23.S1");
  EXPECT_EQ(dev.parse_slice_site("CLB_R3C23.S1"), s);
  EXPECT_EQ(dev.parse_tile_name("R3C23"), (TileCoord{2, 22}));
  EXPECT_FALSE(dev.parse_tile_name("R99C1").has_value());
  EXPECT_FALSE(dev.parse_slice_site("CLB_R3C23.S2").has_value());
  const IobSite iob{Side::Right, 4, 1};
  EXPECT_EQ(dev.iob_site_name(iob), "IOB_R5K1");
  EXPECT_EQ(dev.parse_iob_site("IOB_R5K1"), iob);
}

TEST(Device, PadNumbering) {
  const Device& dev = Device::get("XCV50");
  std::set<int> pads;
  for (const IobSite s : dev.all_iob_sites()) {
    const int p = dev.pad_number(s);
    EXPECT_GE(p, 1);
    EXPECT_LE(p, dev.spec().num_iobs());
    EXPECT_TRUE(pads.insert(p).second);
    EXPECT_EQ(dev.iob_by_pad_number(p), s);
  }
  EXPECT_EQ(static_cast<int>(pads.size()), dev.spec().num_iobs());
  EXPECT_FALSE(dev.iob_by_pad_number(0).has_value());
  EXPECT_FALSE(dev.iob_by_pad_number(dev.spec().num_iobs() + 1).has_value());
}

TEST(Device, SiteEnumerationCounts) {
  const Device& dev = Device::get("XCV100");
  EXPECT_EQ(dev.all_slice_sites().size(),
            static_cast<std::size_t>(dev.spec().num_slices()));
  EXPECT_EQ(dev.all_iob_sites().size(),
            static_cast<std::size_t>(dev.spec().num_iobs()));
}

TEST(Region, GeometryAndMajors) {
  const Device& dev = Device::get("XCV50");
  const Region reg{0, 6, dev.rows() - 1, 11};
  EXPECT_TRUE(reg.in_bounds(dev));
  EXPECT_TRUE(reg.full_height(dev));
  EXPECT_EQ(reg.width(), 6);
  EXPECT_EQ(reg.num_tiles(), 6 * dev.rows());
  EXPECT_TRUE(reg.contains({0, 6}));
  EXPECT_FALSE(reg.contains({0, 5}));
  const auto majors = reg.clb_majors(dev);
  ASSERT_EQ(majors.size(), 6u);
  for (const int m : majors) {
    EXPECT_EQ(dev.frames().column_kind(m), ColumnKind::Clb);
  }
  EXPECT_EQ(reg.to_string(), "R1C7:R16C12");
  const Region other{0, 12, dev.rows() - 1, 13};
  EXPECT_FALSE(reg.overlaps(other));
  EXPECT_TRUE(reg.overlaps(Region{4, 4, 8, 8}));
}

}  // namespace
}  // namespace jpg
