#include "testing/design_gen.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "device/device.h"
#include "support/error.h"

namespace jpg::testing {
namespace {

/// Picks a fan-in net: with `reuse_bias` from the most recent nets (deeper,
/// narrower cones), otherwise uniformly from the whole pool (wider fan-out).
NetId pick_net(const std::vector<NetId>& pool, Rng& rng, double reuse_bias) {
  JPG_ASSERT(!pool.empty());
  if (rng.chance(reuse_bias)) {
    const std::size_t window = std::min<std::size_t>(4, pool.size());
    return pool[pool.size() - 1 - rng.uniform(window)];
  }
  return pool[rng.uniform(pool.size())];
}

/// Builds a random LUT4/DFF DAG with the given external ports. Validity by
/// construction: fan-in is drawn only from already-driven nets (no
/// combinational cycles, no undriven sinks), every in-port is consumed, and
/// every out-port is driven by a Lut4/Dff (never a raw Ibuf pass-through,
/// which the module flow's crossing discipline does not support).
/// `distinct_outputs` forces a dedicated driver net per out-port — required
/// for module netlists, whose out-ports become boundary crossings (the base
/// flow rejects a net bound to two crossings); static netlists may share.
Netlist random_dag(const std::string& name, int n_cells,
                   const std::vector<std::string>& in_ports,
                   const std::vector<std::string>& out_ports,
                   const RandomDesignSpec& spec, Rng& rng,
                   bool distinct_outputs,
                   std::size_t* upstream_watermark = nullptr) {
  Netlist nl(name);
  std::vector<NetId> pool;       // every driven net
  std::vector<NetId> logic_out;  // nets driven by Lut4/Dff only

  std::vector<NetId> in_nets;
  for (const std::string& p : in_ports) {
    const NetId n = nl.add_net("n_" + p);
    nl.add_ibuf("ib_" + p, p, n);
    in_nets.push_back(n);
    pool.push_back(n);
  }
  if (in_ports.empty()) {
    // Self-sustaining seed (a toggler) so sequential-only designs have a
    // driven net to grow from.
    const NetId q = nl.add_net("seed_q");
    const NetId d = nl.add_net("seed_d");
    nl.add_dff("seed_ff", d, q, rng.chance(spec.ff_init_one));
    nl.add_lut("seed_inv", 0x5555, {q, kNullNet, kNullNet, kNullNet}, d);
    pool.push_back(q);
    pool.push_back(d);
    logic_out.push_back(q);
    logic_out.push_back(d);
  }

  n_cells = std::max<int>(n_cells, static_cast<int>(in_ports.size()));
  n_cells = std::max(n_cells, 1);
  for (int i = 0; i < n_cells; ++i) {
    // The first cells each consume one in-port so no interface input is
    // left dangling (the flow requires every bound port to exist and the
    // oracle wants input sensitivity).
    const bool force_input = i < static_cast<int>(in_nets.size());
    const NetId forced = force_input ? in_nets[i] : kNullNet;
    const bool is_ff = !force_input && rng.chance(spec.ff_fraction) &&
                       !logic_out.empty();
    const NetId out = nl.add_net("w" + std::to_string(i));
    if (is_ff) {
      nl.add_dff("c" + std::to_string(i), pick_net(pool, rng, spec.reuse_bias),
                 out, rng.chance(spec.ff_init_one));
    } else {
      const int fanin = 1 + static_cast<int>(rng.uniform(4));
      std::array<NetId, 4> in = {kNullNet, kNullNet, kNullNet, kNullNet};
      int pin = 0;
      if (forced != kNullNet) in[pin++] = forced;
      // Bounded dup-rejection: a small pool may hold fewer distinct nets
      // than the drawn fan-in, so give up after a fixed number of tries
      // rather than demanding `fanin` distinct pins.
      for (int tries = 0; pin < fanin && tries < 16; ++tries) {
        const NetId cand = pick_net(pool, rng, spec.reuse_bias);
        bool dup = false;
        for (int k = 0; k < pin; ++k) dup |= in[k] == cand;
        if (!dup) in[pin++] = cand;
      }
      nl.add_lut("c" + std::to_string(i),
                 static_cast<std::uint16_t>(rng.next() & 0xFFFF), in, out);
    }
    pool.push_back(out);
    logic_out.push_back(out);
    if (upstream_watermark != nullptr &&
        i + 1 == (n_cells + 1) / 2) {
      *upstream_watermark = nl.num_cells();
    }
  }

  // Out-ports sample the logic, biased towards late (deep) nets. With
  // `distinct_outputs`, sampling is without replacement: a boundary
  // crossing carries exactly one net, so two ports of one module must
  // never share a driver (the base flow rejects such interfaces).
  std::vector<NetId> candidates = logic_out;
  for (const std::string& p : out_ports) {
    JPG_REQUIRE(!candidates.empty(), "more out-ports than logic nets");
    const std::size_t window = std::max<std::size_t>(1, candidates.size() / 2);
    const std::size_t idx = candidates.size() - 1 - rng.uniform(window);
    const NetId n = candidates[idx];
    if (distinct_outputs) {
      candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    nl.add_obuf("ob_" + p, p, n);
  }
  return nl;
}

/// Allocates `count` disjoint full-height regions of `width` columns inside
/// the static margins, distributing the slack randomly between them.
std::vector<Region> allocate_regions(const Device& dev, int count, int width,
                                     Rng& rng) {
  std::vector<Region> regions;
  if (count == 0) return regions;
  const int gap = 2;  // static columns between regions (crossings + margin)
  const int usable = dev.cols() - 2;
  int need = count * width + (count - 1) * gap;
  JPG_REQUIRE(need <= usable, "regions do not fit the device");
  int slack = usable - need;
  int col = 1;
  for (int i = 0; i < count; ++i) {
    const int pad = slack > 0 ? static_cast<int>(rng.uniform(
                                    static_cast<std::uint64_t>(slack) + 1))
                              : 0;
    col += pad;
    slack -= pad;
    regions.push_back(Region{0, col, dev.rows() - 1, col + width - 1});
    col += width + gap;
  }
  return regions;
}

}  // namespace

std::string RandomDesignSpec::to_string() const {
  std::ostringstream os;
  os << "part=" << part << " static_cells=" << static_cells
     << " static_inputs=" << static_inputs
     << " static_outputs=" << static_outputs
     << " num_partitions=" << num_partitions
     << " variants_per_partition=" << variants_per_partition
     << " module_cells=" << module_cells
     << " module_inputs=" << module_inputs
     << " module_outputs=" << module_outputs
     << " region_width=" << region_width << " ff_fraction=" << ff_fraction
     << " reuse_bias=" << reuse_bias << " ff_init_one=" << ff_init_one
     << " static_feed_fraction=" << static_feed_fraction
     << " observe_fraction=" << observe_fraction;
  return os.str();
}

std::size_t GeneratedDesign::total_cells() const {
  std::size_t n = static_nl.num_cells();
  for (const GeneratedPartition& p : partitions) {
    for (const Netlist& v : p.variants) n += v.num_cells();
  }
  return n;
}

GeneratedDesign generate_design(const RandomDesignSpec& spec,
                                std::uint64_t seed) {
  const Device& dev = Device::get(spec.part);
  GeneratedDesign design;
  design.part = spec.part;
  design.seed = seed;
  design.spec = spec;
  Rng rng = Rng(seed).split(0x9e57);

  // --- Static logic ----------------------------------------------------------
  std::vector<std::string> s_in, s_out;
  for (int i = 0; i < spec.static_inputs; ++i) {
    s_in.push_back("s_i" + std::to_string(i));
  }
  for (int i = 0; i < spec.static_outputs; ++i) {
    s_out.push_back("s_o" + std::to_string(i));
  }
  design.static_nl = random_dag("static", spec.static_cells, s_in, s_out, spec,
                                rng, /*distinct_outputs=*/false,
                                &design.static_upstream_cells);

  // --- Partitions ------------------------------------------------------------
  const std::vector<Region> regions =
      allocate_regions(dev, spec.num_partitions, spec.region_width, rng);

  // Static cells eligible to drive module inputs: upstream Lut4/Dff only
  // (the downstream half may consume module outputs, so keeping drivers
  // upstream makes the assembled combinational graph acyclic by
  // construction). Each cell drives at most one module input, because a
  // cell has exactly one output net.
  std::vector<std::string> feed_candidates;
  for (CellId id = 0; id < design.static_upstream_cells; ++id) {
    const Cell& c = design.static_nl.cell(id);
    if (c.kind == CellKind::Lut4 || c.kind == CellKind::Dff) {
      feed_candidates.push_back(c.name);
    }
  }

  for (int pi = 0; pi < spec.num_partitions; ++pi) {
    GeneratedPartition part;
    part.name = "u" + std::to_string(pi + 1);
    part.region = regions[static_cast<std::size_t>(pi)];
    for (int i = 0; i < std::max(1, spec.module_inputs); ++i) {
      part.in_ports.push_back(part.name + "_i" + std::to_string(i));
    }
    for (int i = 0; i < std::max(1, spec.module_outputs); ++i) {
      part.out_ports.push_back(part.name + "_o" + std::to_string(i));
    }
    for (std::size_t i = 0; i < part.in_ports.size(); ++i) {
      std::string driver;
      if (!feed_candidates.empty() && rng.chance(spec.static_feed_fraction)) {
        const std::size_t k = rng.uniform(feed_candidates.size());
        driver = feed_candidates[k];
        feed_candidates.erase(feed_candidates.begin() +
                              static_cast<std::ptrdiff_t>(k));
      }
      part.input_driver_cell.push_back(driver);
    }
    for (int v = 0; v < std::max(1, spec.variants_per_partition); ++v) {
      part.variants.push_back(random_dag(part.name + "_v" + std::to_string(v),
                                         spec.module_cells, part.in_ports,
                                         part.out_ports, spec, rng,
                                         /*distinct_outputs=*/true));
    }
    design.partitions.push_back(std::move(part));
  }

  // --- Output couplings ------------------------------------------------------
  // Downstream static LUTs with free pins may additionally consume module
  // outputs; each (cell, pin) is used at most once.
  std::vector<std::pair<std::string, int>> free_pins;
  for (CellId id = static_cast<CellId>(design.static_upstream_cells);
       id < design.static_nl.num_cells(); ++id) {
    const Cell& c = design.static_nl.cell(id);
    if (c.kind != CellKind::Lut4) continue;
    for (int pin = 0; pin < 4; ++pin) {
      if (c.in[static_cast<std::size_t>(pin)] == kNullNet) {
        free_pins.emplace_back(c.name, pin);
      }
    }
  }
  for (int pi = 0; pi < spec.num_partitions; ++pi) {
    const GeneratedPartition& part = design.partitions[static_cast<std::size_t>(pi)];
    for (std::size_t oi = 0; oi < part.out_ports.size(); ++oi) {
      if (free_pins.empty() || !rng.chance(spec.observe_fraction)) continue;
      const std::size_t k = rng.uniform(free_pins.size());
      design.couplings.push_back(OutputCoupling{
          pi, static_cast<int>(oi), free_pins[k].first, free_pins[k].second});
      free_pins.erase(free_pins.begin() + static_cast<std::ptrdiff_t>(k));
    }
  }
  return design;
}

AssembledTop assemble_top(const GeneratedDesign& design,
                          const std::vector<std::size_t>& choice) {
  JPG_REQUIRE(choice.empty() || choice.size() == design.partitions.size(),
              "variant choice size mismatch");
  AssembledTop at;
  Netlist& top = at.top;

  // 1. Merge the chosen variant of every partition.
  std::vector<Netlist::MergeResult> merged;
  for (std::size_t pi = 0; pi < design.partitions.size(); ++pi) {
    const GeneratedPartition& p = design.partitions[pi];
    const std::size_t v = choice.empty() ? 0 : choice[pi];
    JPG_REQUIRE(v < p.variants.size(), "variant index out of range");
    merged.push_back(top.merge_module(p.variants[v], p.name));
  }
  auto merged_input_net = [&](std::size_t pi, const std::string& port) {
    for (const auto& [name, net] : merged[pi].inputs) {
      if (name == port) return net;
    }
    throw JpgError("merged module lost input port " + port);
  };
  auto merged_output_net = [&](std::size_t pi, const std::string& port) {
    for (const auto& [name, net] : merged[pi].outputs) {
      if (name == port) return net;
    }
    throw JpgError("merged module lost output port " + port);
  };

  // 2. Inline static logic. A static cell designated as a module-input
  // driver has its output net aliased to the merged input net; coupled LUTs
  // pick up module output nets on their free pins.
  const Netlist& snl = design.static_nl;
  std::vector<NetId> net_map(snl.num_nets(), kNullNet);
  for (std::size_t pi = 0; pi < design.partitions.size(); ++pi) {
    const GeneratedPartition& p = design.partitions[pi];
    for (std::size_t i = 0; i < p.in_ports.size(); ++i) {
      if (p.input_driver_cell[i].empty()) continue;
      const auto cell = snl.find_cell(p.input_driver_cell[i]);
      JPG_REQUIRE(cell.has_value(),
                  "input driver cell " + p.input_driver_cell[i] + " missing");
      const NetId out = snl.cell(*cell).out;
      JPG_REQUIRE(out != kNullNet, "input driver cell has no output");
      net_map[out] = merged_input_net(pi, p.in_ports[i]);
    }
  }
  auto map_net = [&](NetId id) {
    if (id == kNullNet) return kNullNet;
    if (net_map[id] == kNullNet) {
      net_map[id] = top.add_net("s/" + snl.net(id).name);
    }
    return net_map[id];
  };
  for (CellId id = 0; id < snl.num_cells(); ++id) {
    const Cell& c = snl.cell(id);
    switch (c.kind) {
      case CellKind::Ibuf:
        top.add_ibuf("s/" + c.name, c.port, map_net(c.out));
        break;
      case CellKind::Obuf:
        top.add_obuf("s/" + c.name, c.port, map_net(c.in[0]));
        break;
      case CellKind::Dff:
        top.add_dff("s/" + c.name, map_net(c.in[0]), map_net(c.out),
                    c.ff_init);
        break;
      case CellKind::Lut4: {
        std::array<NetId, 4> in = {map_net(c.in[0]), map_net(c.in[1]),
                                   map_net(c.in[2]), map_net(c.in[3])};
        for (const OutputCoupling& oc : design.couplings) {
          if (oc.static_cell != c.name) continue;
          in[static_cast<std::size_t>(oc.pin)] = merged_output_net(
              static_cast<std::size_t>(oc.partition),
              design.partitions[static_cast<std::size_t>(oc.partition)]
                  .out_ports[static_cast<std::size_t>(oc.out_port)]);
        }
        top.add_lut("s/" + c.name, c.lut_init, in, map_net(c.out));
        break;
      }
      case CellKind::Gnd:
      case CellKind::Vcc:
        top.add_const("s/" + c.name, c.kind == CellKind::Vcc, map_net(c.out));
        break;
    }
  }

  // 3. Pads for pad-driven module inputs and for every module output, plus
  // the flow's partition specs.
  for (std::size_t pi = 0; pi < design.partitions.size(); ++pi) {
    const GeneratedPartition& p = design.partitions[pi];
    PartitionSpec spec;
    spec.name = p.name;
    spec.region = p.region;
    for (std::size_t i = 0; i < p.in_ports.size(); ++i) {
      const NetId net = merged_input_net(pi, p.in_ports[i]);
      if (p.input_driver_cell[i].empty()) {
        top.add_ibuf("ib_" + p.in_ports[i], p.in_ports[i], net);
      }
      spec.input_ports.emplace_back(p.in_ports[i], net);
    }
    for (const std::string& port : p.out_ports) {
      const NetId net = merged_output_net(pi, port);
      top.add_obuf("ob_" + port, port, net);
      spec.output_ports.emplace_back(port, net);
    }
    at.flow_partitions.push_back(std::move(spec));
  }
  return at;
}

RandomDesignSpec sample_spec(const std::string& part, Rng& rng) {
  const Device& dev = Device::get(part);
  RandomDesignSpec spec;
  spec.part = part;
  // Scale targets with the device, keeping P&R comfortably feasible so
  // sweeps measure flow *correctness*, not placement capacity.
  const int scale = std::max(1, dev.cols() / 24);
  spec.static_cells = 2 + static_cast<int>(rng.uniform(9ull * scale));
  spec.static_inputs = 1 + static_cast<int>(rng.uniform(3));
  spec.static_outputs = 1 + static_cast<int>(rng.uniform(3));
  spec.num_partitions =
      static_cast<int>(rng.uniform(dev.cols() >= 30 ? 4 : 3));
  spec.variants_per_partition = 1 + static_cast<int>(rng.uniform(3));
  spec.module_cells = 2 + static_cast<int>(rng.uniform(8));
  spec.module_inputs = 1 + static_cast<int>(rng.uniform(3));
  spec.module_outputs = 1 + static_cast<int>(rng.uniform(2));
  spec.region_width = 2 + static_cast<int>(rng.uniform(3));
  spec.ff_fraction = 0.15 + 0.35 * rng.unit();
  spec.reuse_bias = 0.3 + 0.5 * rng.unit();
  spec.ff_init_one = 0.4 * rng.unit();
  spec.static_feed_fraction = 0.5 * rng.unit();
  spec.observe_fraction = 0.5 * rng.unit();
  return spec;
}

GeneratedDesign generate_sampled(const std::string& part,
                                 std::uint64_t raw_seed) {
  Rng rng(raw_seed);
  const RandomDesignSpec spec = sample_spec(part, rng);
  GeneratedDesign design = generate_design(spec, rng.next());
  design.seed = raw_seed;  // replayable through generate_sampled
  design.sampled = true;
  return design;
}

std::string dump_netlist(const Netlist& nl) {
  std::ostringstream os;
  os << "netlist " << nl.name() << ": " << nl.num_cells() << " cells, "
     << nl.num_nets() << " nets\n";
  auto net_name = [&](NetId id) {
    return id == kNullNet ? std::string("-") : nl.net(id).name;
  };
  for (const Cell& c : nl.cells()) {
    os << "  " << cell_kind_name(c.kind) << " " << c.name;
    if (!c.partition.empty()) os << " part=" << c.partition;
    if (c.kind == CellKind::Lut4) {
      os << " init=0x" << std::hex << c.lut_init << std::dec;
    }
    if (c.kind == CellKind::Dff) os << " init=" << (c.ff_init ? 1 : 0);
    if (!c.port.empty()) os << " port=" << c.port;
    os << " in=[";
    for (int i = 0; i < c.num_inputs(); ++i) {
      os << (i != 0 ? "," : "") << net_name(c.in[static_cast<std::size_t>(i)]);
    }
    os << "]";
    if (c.has_output()) os << " out=" << net_name(c.out);
    os << "\n";
  }
  return os.str();
}

}  // namespace jpg::testing
