// netlib: generator library of pre-synthesised design modules.
//
// The paper's reconfigurable-computing environment (Figure 1) assumes a pool
// of pre-synthesised module implementations that the host downloads into
// floorplanned regions. These generators produce such modules as
// technology-mapped netlists (LUT4/DFF + port buffers) — the stand-in for
// the HDL synthesis front-end of the Foundation flow. All state elements
// clock on the single global clock.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace jpg::netlib {

/// Truth-table helper: builds a LUT4 init from a predicate over (a1..a4).
[[nodiscard]] std::uint16_t lut_init_from(
    const std::function<bool(bool, bool, bool, bool)>& f);

// Common init masks (inputs A1, A2 unless stated).
[[nodiscard]] std::uint16_t lut_and2();
[[nodiscard]] std::uint16_t lut_or2();
[[nodiscard]] std::uint16_t lut_xor2();
[[nodiscard]] std::uint16_t lut_xnor2();
[[nodiscard]] std::uint16_t lut_not1();
[[nodiscard]] std::uint16_t lut_buf1();

// --- Sequential modules ---------------------------------------------------------

/// Free-running binary up-counter; outputs q0..q<width-1>.
[[nodiscard]] Netlist make_counter(int width, const std::string& name = "counter");

/// Binary counter with Gray-coded outputs g0..g<width-1>.
[[nodiscard]] Netlist make_gray_counter(int width,
                                        const std::string& name = "gray");

/// Fibonacci LFSR over `taps` (bit positions XORed into the feedback);
/// outputs q0..q<width-1>. Seeded to 0...01 via FF init.
[[nodiscard]] Netlist make_lfsr(int width, std::vector<int> taps = {},
                                const std::string& name = "lfsr");

/// Serial-in parallel-out shift register; input "si", outputs q0...
[[nodiscard]] Netlist make_shift_register(int width,
                                          const std::string& name = "shreg");

/// NRZI encoder — the paper's §3.2.2 example module ("u1/nrz"): the output
/// toggles on every 1 in the data stream. Input "d", output "nrz".
[[nodiscard]] Netlist make_nrz_encoder(const std::string& name = "nrz");

/// Bit-serial pattern correlator (string matching, the paper's reference
/// application [5]): shift register plus match detector. Input "si",
/// output "match" (registered).
[[nodiscard]] Netlist make_matcher(const std::vector<bool>& pattern,
                                   const std::string& name = "matcher");

/// Toggle flip-flop; output "t". The smallest useful module.
[[nodiscard]] Netlist make_toggler(const std::string& name = "toggler");

/// Johnson (twisted-ring) counter; outputs q0..q<width-1>.
[[nodiscard]] Netlist make_johnson(int width,
                                   const std::string& name = "johnson");

/// Bit-serial GF(2) FIR (moving parity): a `taps`-deep delay line on the
/// input plus a registered XOR over the input and every delayed copy.
/// Input "d", output "y" — y[t] = d[t-1] ^ d[t-2] ^ ... ^ d[t-taps-1].
[[nodiscard]] Netlist make_fir(int taps, const std::string& name = "fir");

/// Serial accumulator: a binary register that increments whenever the input
/// bit is 1 (a population counter). Input "d", outputs q0..q<width-1>.
[[nodiscard]] Netlist make_accumulator(int width,
                                       const std::string& name = "accum");

/// Additive scrambler: an LFSR whose feedback also XORs in the input bit
/// (taps fixed at the last two stages, stage 0 seeded to 1 like make_lfsr).
/// With the input held at 0 it free-runs as the plain LFSR. Input "d",
/// output "y" (the last stage).
[[nodiscard]] Netlist make_scrambler(int width,
                                     const std::string& name = "scrambler");

// --- Combinational modules -----------------------------------------------------

/// Ripple-carry adder: inputs a0.., b0..; outputs s0.., "cout".
[[nodiscard]] Netlist make_adder(int width, const std::string& name = "adder");

/// Equality comparator: inputs a0.., b0..; output "eq".
[[nodiscard]] Netlist make_comparator(int width,
                                      const std::string& name = "cmp");

/// Parity (XOR) tree: inputs x0..; output "p".
[[nodiscard]] Netlist make_parity(int width, const std::string& name = "parity");

/// 2^sel_bits : 1 multiplexer: inputs d0.., s0..; output "y".
[[nodiscard]] Netlist make_mux_tree(int sel_bits,
                                    const std::string& name = "mux");

/// Tiny ALU: inputs a0.., b0.., op0, op1; outputs y0...
/// op = 00 add, 01 and, 10 or, 11 xor.
[[nodiscard]] Netlist make_alu_lite(int width, const std::string& name = "alu");

// --- Registry (for sweeps and examples) -----------------------------------------

struct GeneratorInfo {
  std::string name;
  std::function<Netlist(int param)> make;
};

/// All generators with a single size parameter, stable order.
[[nodiscard]] const std::vector<GeneratorInfo>& registry();

}  // namespace jpg::netlib
