#include "hwif/xhwif.h"

namespace jpg {

Xhwif::~Xhwif() = default;

}  // namespace jpg
