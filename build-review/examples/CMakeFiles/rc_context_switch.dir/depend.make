# Empty dependencies file for rc_context_switch.
# This may be replaced when dependencies are built.
