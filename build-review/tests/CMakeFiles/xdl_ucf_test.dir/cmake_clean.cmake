file(REMOVE_RECURSE
  "CMakeFiles/xdl_ucf_test.dir/xdl_ucf_test.cpp.o"
  "CMakeFiles/xdl_ucf_test.dir/xdl_ucf_test.cpp.o.d"
  "xdl_ucf_test"
  "xdl_ucf_test.pdb"
  "xdl_ucf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdl_ucf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
