#include "sched/sched_fixture.h"

#include <mutex>
#include <utility>

#include "cbits/cbits.h"
#include "netlib/generators.h"
#include "pnr/flow.h"
#include "support/error.h"

namespace jpg::sched {

Netlist socket_wrap(const Netlist& kernel, int impl, const std::string& name) {
  JPG_REQUIRE(impl >= 0 && impl <= 8, "socket impl variant out of range");
  Netlist nl(name);
  std::vector<NetId> map(kernel.num_nets());
  for (std::size_t i = 0; i < kernel.num_nets(); ++i) {
    map[i] = nl.add_net(kernel.net(static_cast<NetId>(i)).name);
  }
  const auto mn = [&map](NetId id) {
    return id == kNullNet ? kNullNet : map[id];
  };
  std::size_t n_in = 0;
  std::size_t n_out = 0;
  for (const Cell& c : kernel.cells()) {
    switch (c.kind) {
      case CellKind::Lut4:
        nl.add_lut(c.name, c.lut_init,
                   {mn(c.in[0]), mn(c.in[1]), mn(c.in[2]), mn(c.in[3])},
                   mn(c.out));
        break;
      case CellKind::Dff:
        nl.add_dff(c.name, mn(c.in[0]), mn(c.out), c.ff_init);
        break;
      case CellKind::Ibuf: {
        ++n_in;
        JPG_REQUIRE(n_in == 1,
                    "socket kernel '" + kernel.name() +
                        "' must have exactly one input port");
        // The pad drives a chain of 2*impl inverters ending at the kernel's
        // own input net: a double negation is transparent to the function
        // but not to the placer, so each impl yields a distinct pbit.
        NetId head = mn(c.out);
        if (impl > 0) {
          const std::uint16_t inv = netlib::lut_not1();
          std::vector<NetId> chain;
          for (int i = 0; i < 2 * impl; ++i) {
            chain.push_back(nl.add_net("sock_p" + std::to_string(i)));
          }
          for (int i = 0; i < 2 * impl; ++i) {
            const NetId dst =
                i + 1 < 2 * impl ? chain[static_cast<std::size_t>(i) + 1]
                                 : head;
            nl.add_lut("sock_inv" + std::to_string(i), inv,
                       {chain[static_cast<std::size_t>(i)], kNullNet, kNullNet,
                        kNullNet},
                       dst);
          }
          head = chain[0];
        }
        nl.add_ibuf(c.name, "in", head);
        break;
      }
      case CellKind::Obuf:
        ++n_out;
        JPG_REQUIRE(n_out == 1,
                    "socket kernel '" + kernel.name() +
                        "' must have exactly one output port");
        nl.add_obuf(c.name, "out", mn(c.in[0]));
        break;
      case CellKind::Gnd:
      case CellKind::Vcc:
        nl.add_const(c.name, c.kind == CellKind::Vcc, mn(c.out));
        break;
    }
  }
  JPG_REQUIRE(n_in == 1 && n_out == 1,
              "socket kernel '" + kernel.name() +
                  "' must have exactly one input and one output port");
  return nl;
}

namespace {

/// The socket kernel library: every entry is single-input single-output so
/// socket_wrap applies. "scrambler" is the LFSR with its input folded into
/// the feedback (zero input = the free-running LFSR); "fir" and "accum" are
/// the new pipeline generators of this PR.
Netlist make_kernel(const std::string& name) {
  if (name == "nrzi") return netlib::make_nrz_encoder("nrzi");
  if (name == "scrambler") return netlib::make_scrambler(4, "scrambler");
  if (name == "fir") return netlib::make_fir(3, "fir");
  if (name == "accum") return netlib::make_accumulator(1, "accum");
  throw JpgError("unknown socket kernel '" + name + "'");
}

/// Clones `module` into `top` under `prefix`, wiring its ports to pads named
/// "<prefix>_<port>", and records the partition spec (scenarios.cpp idiom).
void add_slot(Netlist& top, const Netlist& module, const std::string& prefix,
              const Region& region, std::vector<PartitionSpec>& specs) {
  const auto merged = top.merge_module(module, prefix);
  PartitionSpec spec;
  spec.name = prefix;
  spec.region = region;
  for (const auto& [port, net] : merged.inputs) {
    top.add_ibuf(prefix + "_ib_" + port, prefix + "_" + port, net);
    spec.input_ports.emplace_back(port, net);
  }
  for (const auto& [port, net] : merged.outputs) {
    top.add_obuf(prefix + "_ob_" + port, prefix + "_" + port, net);
    spec.output_ports.emplace_back(port, net);
  }
  specs.push_back(std::move(spec));
}

}  // namespace

SchedFixture::SchedFixture(const std::string& device_name,
                           SchedFixtureOptions opt)
    : device_(&Device::get(device_name)), opt_(opt) {
  JPG_REQUIRE(opt_.num_slots >= 1, "fixture needs at least one slot");
  JPG_REQUIRE(opt_.impls_per_kernel >= 1, "fixture needs at least one impl");
  // Uniform 3-wide full-height slots with 2-column static margins:
  // cols [4..6], [9..11], [14..16], ... — margin columns carry the boundary
  // crossings, the edge columns stay fully static.
  const int r1 = device_->rows() - 1;
  for (std::size_t s = 0; s < opt_.num_slots; ++s) {
    const int c0 = 4 + 5 * static_cast<int>(s);
    const Region region{0, c0, r1, c0 + 2};
    JPG_REQUIRE(region.in_bounds(*device_) && region.c1 < device_->cols() - 1,
                "device " + device_name + " is too narrow for " +
                    std::to_string(opt_.num_slots) + " scheduler slots");
    slots_.push_back(region);
  }

  kernel_names_ = {"nrzi", "scrambler", "fir", "accum"};

  // Base design: a static heartbeat (so the static plane is not empty) plus
  // socket scrambler impl 0 as every slot's initial variant.
  Netlist top("sched_base");
  std::vector<PartitionSpec> specs;
  {
    const Netlist hb = netlib::make_counter(2, "hb");
    std::vector<NetId> map(hb.num_nets());
    for (std::size_t i = 0; i < hb.num_nets(); ++i) {
      map[i] = top.add_net("hb/" + hb.net(static_cast<NetId>(i)).name);
    }
    const auto mn = [&map](NetId id) {
      return id == kNullNet ? kNullNet : map[id];
    };
    for (const Cell& c : hb.cells()) {
      switch (c.kind) {
        case CellKind::Lut4:
          top.add_lut("hb/" + c.name, c.lut_init,
                      {mn(c.in[0]), mn(c.in[1]), mn(c.in[2]), mn(c.in[3])},
                      mn(c.out));
          break;
        case CellKind::Dff:
          top.add_dff("hb/" + c.name, mn(c.in[0]), mn(c.out), c.ff_init);
          break;
        case CellKind::Obuf:
          top.add_obuf("hb/" + c.name, "hb_" + c.port, mn(c.in[0]));
          break;
        default:
          break;
      }
    }
  }
  const Netlist v0 = socket_wrap(make_kernel("scrambler"), 0, "v0");
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    add_slot(top, v0, "u" + std::to_string(s), slots_[s], specs);
  }

  FlowOptions fopt;
  fopt.seed = opt_.flow_seed;
  const BaseFlowResult base = run_base_flow(*device_, top, specs, fopt);

  // All slot interfaces must bind identically (same ports at the same
  // relative crossings) — the precondition for cross-slot relocation.
  for (std::size_t s = 1; s < slots_.size(); ++s) {
    JPG_REQUIRE(base.interfaces[s].bindings == base.interfaces[0].bindings,
                "slot interfaces are not uniform; relocation between slots "
                "would be unsound");
  }

  base_ = std::make_unique<ConfigMemory>(*device_);
  {
    CBits cb(*base_);
    base.design->apply(cb);
  }

  const auto pad_of = [&](const std::string& port) {
    for (std::size_t i = 0; i < base.design->iob_cells.size(); ++i) {
      if (base.design->netlist().cell(base.design->iob_cells[i]).port ==
          port) {
        return device_->pad_number(base.design->iob_sites[i]);
      }
    }
    throw JpgError("sched fixture: no pad for port " + port);
  };
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    in_pads_.push_back(pad_of("u" + std::to_string(s) + "_in"));
    out_pads_.push_back(pad_of("u" + std::to_string(s) + "_out"));
  }

  // The variant pools: every (kernel, impl) flowed at every slot.
  for (const std::string& kname : kernel_names_) {
    const Netlist knl = make_kernel(kname);
    std::vector<std::vector<ConfigMemory>> per_impl;
    for (std::size_t impl = 0; impl < opt_.impls_per_kernel; ++impl) {
      const Netlist wrapped =
          socket_wrap(knl, static_cast<int>(impl),
                      kname + "#" + std::to_string(impl));
      std::vector<ConfigMemory> per_slot;
      for (std::size_t s = 0; s < slots_.size(); ++s) {
        FlowOptions mo;
        mo.seed = opt_.flow_seed + impl + 1;
        const ModuleFlowResult mod = run_module_flow(
            *device_, wrapped, base.interfaces[s], mo);
        ConfigMemory plane(*device_);
        CBits mcb(plane);
        mod.design->apply(mcb);
        per_slot.push_back(std::move(plane));
      }
      per_impl.push_back(std::move(per_slot));
    }
    planes_.emplace(kname, std::move(per_impl));
  }
}

const SchedFixture& SchedFixture::shared(const std::string& device_name) {
  static std::mutex lock;
  static std::map<std::string, std::unique_ptr<SchedFixture>> cache;
  const std::lock_guard<std::mutex> guard(lock);
  auto it = cache.find(device_name);
  if (it == cache.end()) {
    it = cache
             .emplace(device_name,
                      std::make_unique<SchedFixture>(device_name))
             .first;
  }
  return *it->second;
}

int SchedFixture::slot_of(const Region& region) const {
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    if (slots_[s] == region) return static_cast<int>(s);
  }
  return -1;
}

const ConfigMemory& SchedFixture::plane(const std::string& kernel, int impl,
                                        std::size_t slot) const {
  const auto it = planes_.find(kernel);
  JPG_REQUIRE(it != planes_.end(), "unknown kernel '" + kernel + "'");
  JPG_REQUIRE(impl >= 0 &&
                  static_cast<std::size_t>(impl) < it->second.size(),
              "impl variant out of range for kernel '" + kernel + "'");
  const auto& per_slot = it->second[static_cast<std::size_t>(impl)];
  JPG_REQUIRE(slot < per_slot.size(), "slot index out of range");
  return per_slot[slot];
}

std::string SchedFixture::variant_label(const std::string& kernel, int impl) {
  return kernel + "#" + std::to_string(impl);
}

int SchedFixture::in_pad(std::size_t slot) const {
  JPG_REQUIRE(slot < in_pads_.size(), "slot index out of range");
  return in_pads_[slot];
}

int SchedFixture::out_pad(std::size_t slot) const {
  JPG_REQUIRE(slot < out_pads_.size(), "slot index out of range");
  return out_pads_[slot];
}

}  // namespace jpg::sched
