# Empty dependencies file for jpg_netlib.
# This may be replaced when dependencies are built.
