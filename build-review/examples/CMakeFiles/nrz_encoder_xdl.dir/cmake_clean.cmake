file(REMOVE_RECURSE
  "CMakeFiles/nrz_encoder_xdl.dir/nrz_encoder_xdl.cpp.o"
  "CMakeFiles/nrz_encoder_xdl.dir/nrz_encoder_xdl.cpp.o.d"
  "nrz_encoder_xdl"
  "nrz_encoder_xdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nrz_encoder_xdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
