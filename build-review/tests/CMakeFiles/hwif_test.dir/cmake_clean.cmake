file(REMOVE_RECURSE
  "CMakeFiles/hwif_test.dir/hwif_test.cpp.o"
  "CMakeFiles/hwif_test.dir/hwif_test.cpp.o.d"
  "hwif_test"
  "hwif_test.pdb"
  "hwif_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwif_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
