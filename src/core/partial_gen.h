// PartialBitstreamGenerator: the heart of JPG.
//
// Given the base design's configuration memory and the configuration of an
// updated sub-module, it composes the frames of the module's region —
// module bits inside the region's rows, base bits everywhere else in those
// columns — and emits a loadable partial bitstream containing only the
// frames that actually change. Because Virtex frames span full columns,
// writing a region always rewrites entire columns; composition from the
// base guarantees the out-of-region rows are rewritten with their *current*
// values, which is what makes the load non-disruptive (paper §2.1, §3).
#pragma once

#include "bitstream/bitstream_writer.h"
#include "bitstream/config_memory.h"
#include "device/region.h"

namespace jpg {

struct PartialGenOptions {
  /// false (default): ship every frame of the region's columns. The partial
  /// bitstream is then *state-independent* — it installs the module no
  /// matter which variant currently occupies the region, which is what a
  /// pre-generated module pool (Figure 1) requires, and matches the
  /// "partial bitstreams are subsets of a complete bitstream" model of the
  /// paper (and PARBIT).
  /// true: ship only frames that differ from the tool's base configuration.
  /// Smaller, but only correct when the device is known to hold exactly the
  /// base state (use together with write_onto_base, which keeps the tool's
  /// base in sync). The ablation bench quantifies the trade-off.
  bool diff_only = false;
  bool include_crc = true;
};

struct PartialGenResult {
  Bitstream bitstream;
  std::vector<std::size_t> frames;  ///< linear frame indices written
  std::size_t far_blocks = 0;       ///< contiguous FAR/FDRI runs emitted
};

class PartialBitstreamGenerator {
 public:
  /// `base` must outlive the generator.
  explicit PartialBitstreamGenerator(const ConfigMemory& base);

  /// Frame-level composition: base memory with the region's rows of the
  /// region's columns replaced by `module_config`'s bits.
  [[nodiscard]] ConfigMemory compose(const ConfigMemory& module_config,
                                     const Region& region) const;

  /// Generates the partial bitstream updating `region` of the base design
  /// to `module_config`'s content. The stream carries IDCODE/FLR checks, a
  /// WCFG sequence of FAR+FDRI runs, CRC, LFRM and DESYNC — and no startup
  /// sequence, since the device keeps running during a dynamic load.
  [[nodiscard]] PartialGenResult generate(const ConfigMemory& module_config,
                                          const Region& region,
                                          const PartialGenOptions& opts = {}) const;

  /// Option 2 of the tool (paper §3.2.1): writes the partial update into the
  /// base configuration itself, overwriting it.
  void apply_to_base(ConfigMemory& base, const ConfigMemory& module_config,
                     const Region& region) const;

  /// Generic form: emits a partial bitstream shipping exactly `frames`
  /// (linear indices, any block type) with contents taken from `content`.
  [[nodiscard]] PartialGenResult generate_frames(
      const ConfigMemory& content, const std::vector<std::size_t>& frames,
      const PartialGenOptions& opts = {}) const;

  /// BRAM content update (block type 1): ships the frames of `side`'s BRAM
  /// column whose content in `content` differs from the base (or all of
  /// them with diff_only = false). Rewriting memory contents without
  /// touching a single logic frame was a flagship partial-reconfiguration
  /// use case of the era.
  [[nodiscard]] PartialGenResult generate_bram_update(
      const ConfigMemory& content, Side side,
      const PartialGenOptions& opts = {}) const;

  [[nodiscard]] const ConfigMemory& base() const { return *base_; }

 private:
  const ConfigMemory* base_;
  const Device* device_;
};

}  // namespace jpg
