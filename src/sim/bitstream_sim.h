// BitstreamSim: functional simulation straight from configuration memory.
//
// Wraps extract_circuit + NetlistSim and adds the one capability partial
// reconfiguration needs: carrying flip-flop state across a configuration
// change. FF state is keyed by physical identity (site + logic element), so
// after a partial load the untouched part of the device resumes exactly
// where it was — the paper's "dynamic reconfiguration" behaviour.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <tuple>

#include "sim/circuit_extractor.h"
#include "sim/netlist_sim.h"

namespace jpg {

class BitstreamSim {
 public:
  /// Extracts the circuit from `mem` and builds the simulator. The memory is
  /// not retained; re-extract after configuration changes.
  explicit BitstreamSim(const ConfigMemory& mem);

  [[nodiscard]] const ExtractedCircuit& circuit() const { return circuit_; }
  [[nodiscard]] NetlistSim& sim() { return *sim_; }

  /// Drives/reads pads by pad number (ports "P<n>").
  void set_pad(int pad, bool v);
  [[nodiscard]] bool get_pad(int pad);
  [[nodiscard]] bool has_input_pad(int pad) const;
  [[nodiscard]] bool has_output_pad(int pad) const;

  void step() { sim_->step(); }
  void step_n(int n) { sim_->step_n(n); }

  // --- FF state transfer ---------------------------------------------------
  /// Physical FF identity: (row, col, slice, logic element).
  using FfKey = std::tuple<int, int, int, int>;

  [[nodiscard]] std::map<FfKey, bool> capture_ff_state() const;
  /// Restores matching FFs; FFs not present in `state` keep their init value.
  void restore_ff_state(const std::map<FfKey, bool>& state);

 private:
  ExtractedCircuit circuit_;
  std::unique_ptr<NetlistSim> sim_;
};

}  // namespace jpg
