file(REMOVE_RECURSE
  "CMakeFiles/router_parallel_test.dir/router_parallel_test.cpp.o"
  "CMakeFiles/router_parallel_test.dir/router_parallel_test.cpp.o.d"
  "router_parallel_test"
  "router_parallel_test.pdb"
  "router_parallel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
