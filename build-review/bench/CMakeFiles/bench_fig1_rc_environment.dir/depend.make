# Empty dependencies file for bench_fig1_rc_environment.
# This may be replaced when dependencies are built.
