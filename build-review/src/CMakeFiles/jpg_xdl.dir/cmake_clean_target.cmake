file(REMOVE_RECURSE
  "libjpg_xdl.a"
)
