#include "device/device.h"

#include <map>
#include <mutex>
#include <sstream>

#include "support/error.h"
#include "support/string_util.h"

namespace jpg {

Device::Device(const DeviceSpec& spec)
    : spec_(spec), frames_(spec_), config_map_(frames_), fabric_(spec_) {}

const Device& Device::get(std::string_view part_name) {
  static std::mutex mutex;
  static std::map<std::string, std::unique_ptr<Device>> cache;
  const DeviceSpec& spec = DeviceSpec::by_name(part_name);
  const std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(spec.name);
  if (it == cache.end()) {
    it = cache.emplace(spec.name, std::make_unique<Device>(spec)).first;
  }
  return *it->second;
}

std::string Device::tile_name(TileCoord t) const {
  JPG_REQUIRE(tile_in_bounds(t), "tile out of bounds");
  std::ostringstream os;
  os << "R" << (t.r + 1) << "C" << (t.c + 1);
  return os.str();
}

std::string Device::slice_site_name(SliceSite s) const {
  std::ostringstream os;
  os << "CLB_" << tile_name({s.r, s.c}) << ".S" << s.slice;
  return os.str();
}

std::string Device::iob_site_name(IobSite s) const {
  JPG_REQUIRE(s.row >= 0 && s.row < rows(), "IOB row out of bounds");
  JPG_REQUIRE(s.k >= 0 && s.k < DeviceSpec::kIobsPerRow, "IOB index out of bounds");
  std::ostringstream os;
  os << "IOB_" << (s.side == Side::Left ? 'L' : 'R') << (s.row + 1) << "K" << s.k;
  return os.str();
}

std::optional<TileCoord> Device::parse_tile_name(std::string_view n) const {
  if (n.empty() || n[0] != 'R') return std::nullopt;
  const std::size_t cpos = n.find('C', 1);
  if (cpos == std::string_view::npos) return std::nullopt;
  const auto r = parse_uint(n.substr(1, cpos - 1));
  const auto c = parse_uint(n.substr(cpos + 1));
  if (!r || !c || *r < 1 || *c < 1) return std::nullopt;
  const TileCoord t{static_cast<int>(*r) - 1, static_cast<int>(*c) - 1};
  if (!tile_in_bounds(t)) return std::nullopt;
  return t;
}

std::optional<SliceSite> Device::parse_slice_site(std::string_view n) const {
  if (!starts_with(n, "CLB_")) return std::nullopt;
  const std::size_t dot = n.rfind('.');
  if (dot == std::string_view::npos) return std::nullopt;
  const auto tile = parse_tile_name(n.substr(4, dot - 4));
  if (!tile) return std::nullopt;
  const std::string_view s = n.substr(dot + 1);
  if (s != "S0" && s != "S1") return std::nullopt;
  return SliceSite{tile->r, tile->c, s[1] - '0'};
}

std::optional<IobSite> Device::parse_iob_site(std::string_view n) const {
  if (!starts_with(n, "IOB_") || n.size() < 7) return std::nullopt;
  const char side_c = n[4];
  if (side_c != 'L' && side_c != 'R') return std::nullopt;
  const std::size_t kpos = n.find('K', 5);
  if (kpos == std::string_view::npos) return std::nullopt;
  const auto row = parse_uint(n.substr(5, kpos - 5));
  const auto k = parse_uint(n.substr(kpos + 1));
  if (!row || !k || *row < 1) return std::nullopt;
  const IobSite s{side_c == 'L' ? Side::Left : Side::Right,
                  static_cast<int>(*row) - 1, static_cast<int>(*k)};
  if (s.row >= rows() || s.k >= DeviceSpec::kIobsPerRow) return std::nullopt;
  return s;
}

int Device::pad_number(IobSite s) const {
  const int side_base =
      s.side == Side::Right ? rows() * DeviceSpec::kIobsPerRow : 0;
  return side_base + s.row * DeviceSpec::kIobsPerRow + s.k + 1;
}

std::optional<IobSite> Device::iob_by_pad_number(int pad) const {
  const int total = spec_.num_iobs();
  if (pad < 1 || pad > total) return std::nullopt;
  int i = pad - 1;
  IobSite s;
  const int per_side = rows() * DeviceSpec::kIobsPerRow;
  if (i >= per_side) {
    s.side = Side::Right;
    i -= per_side;
  } else {
    s.side = Side::Left;
  }
  s.row = i / DeviceSpec::kIobsPerRow;
  s.k = i % DeviceSpec::kIobsPerRow;
  return s;
}

std::vector<SliceSite> Device::all_slice_sites() const {
  std::vector<SliceSite> sites;
  sites.reserve(static_cast<std::size_t>(spec_.num_slices()));
  for (int r = 0; r < rows(); ++r) {
    for (int c = 0; c < cols(); ++c) {
      for (int s = 0; s < 2; ++s) {
        sites.push_back({r, c, s});
      }
    }
  }
  return sites;
}

std::vector<IobSite> Device::all_iob_sites() const {
  std::vector<IobSite> sites;
  sites.reserve(static_cast<std::size_t>(spec_.num_iobs()));
  for (const Side side : {Side::Left, Side::Right}) {
    for (int r = 0; r < rows(); ++r) {
      for (int k = 0; k < DeviceSpec::kIobsPerRow; ++k) {
        sites.push_back({side, r, k});
      }
    }
  }
  return sites;
}

}  // namespace jpg
