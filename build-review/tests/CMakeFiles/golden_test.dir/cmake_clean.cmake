file(REMOVE_RECURSE
  "CMakeFiles/golden_test.dir/golden_test.cpp.o"
  "CMakeFiles/golden_test.dir/golden_test.cpp.o.d"
  "golden_test"
  "golden_test.pdb"
  "golden_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golden_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
