// Tests for the logical netlist, DRC, and the netlib module generators.
#include <gtest/gtest.h>

#include "netlib/generators.h"
#include "netlist/drc.h"
#include "netlist/netlist.h"

namespace jpg {
namespace {

TEST(Netlist, BasicConstruction) {
  Netlist nl("t");
  const NetId a = nl.add_net("a");
  const NetId y = nl.add_net("y");
  nl.add_ibuf("ib", "a", a);
  const CellId lut = nl.add_lut("inv", netlib::lut_not1(),
                                {a, kNullNet, kNullNet, kNullNet}, y);
  nl.add_obuf("ob", "y", y);
  EXPECT_EQ(nl.num_cells(), 3u);
  EXPECT_EQ(nl.num_nets(), 2u);
  EXPECT_EQ(nl.net(y).driver, lut);
  ASSERT_EQ(nl.net(a).sinks.size(), 1u);
  EXPECT_EQ(nl.net(a).sinks[0].cell, lut);
  EXPECT_EQ(nl.find_cell("inv"), lut);
  EXPECT_EQ(nl.find_net("y"), y);
  EXPECT_FALSE(nl.find_cell("nope").has_value());
}

TEST(Netlist, RejectsDoubleDriver) {
  Netlist nl("t");
  const NetId y = nl.add_net("y");
  nl.add_const("g", false, y);
  EXPECT_THROW(nl.add_const("v", true, y), JpgError);
}

TEST(Netlist, PortsAndPartitions) {
  Netlist nl("t");
  const NetId a = nl.add_net("a");
  const NetId q = nl.add_net("q");
  nl.add_ibuf("ib", "a", a);
  nl.add_dff("ff", a, q, false, "u1");
  nl.add_obuf("ob", "q", q);
  EXPECT_EQ(nl.input_ports(), std::vector<std::string>{"a"});
  EXPECT_EQ(nl.output_ports(), std::vector<std::string>{"q"});
  EXPECT_EQ(nl.partitions(), std::vector<std::string>{"u1"});
  // a: ibuf (static) -> dff (u1): interface net. q: dff (u1) -> obuf (static).
  EXPECT_EQ(nl.interface_nets().size(), 2u);
}

TEST(Netlist, MergeModule) {
  Netlist top("top");
  const Netlist counter = netlib::make_counter(4);
  const auto merged = top.merge_module(counter, "u_cnt");
  EXPECT_TRUE(merged.inputs.empty());  // counter has no input ports
  ASSERT_EQ(merged.outputs.size(), 4u);
  // Ports come back in cell order q0..q3.
  EXPECT_EQ(merged.outputs[0].first, "q0");
  // The exposed net is driven by the merged module's logic.
  const Net& q0 = top.net(merged.outputs[0].second);
  EXPECT_NE(q0.driver, kNullCell);
  EXPECT_EQ(top.cell(q0.driver).partition, "u_cnt");
  // No Ibuf/Obuf cells were copied.
  for (const Cell& c : top.cells()) {
    EXPECT_NE(c.kind, CellKind::Ibuf);
    EXPECT_NE(c.kind, CellKind::Obuf);
  }
}

TEST(Drc, CleanDesignPasses) {
  const Netlist nl = netlib::make_counter(8);
  const DrcReport rep = run_drc(nl);
  EXPECT_TRUE(rep.ok()) << (rep.errors.empty() ? "" : rep.errors[0]);
  EXPECT_NO_THROW(require_drc_clean(nl));
}

TEST(Drc, CatchesDriverlessNet) {
  Netlist nl("t");
  const NetId a = nl.add_net("a");
  const NetId y = nl.add_net("y");
  nl.add_lut("l", 0, {a, kNullNet, kNullNet, kNullNet}, y);
  nl.add_obuf("ob", "y", y);
  const DrcReport rep = run_drc(nl);
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.errors[0].find("no driver"), std::string::npos);
  EXPECT_THROW(require_drc_clean(nl), JpgError);
}

TEST(Drc, CatchesDuplicateNames) {
  Netlist nl("t");
  const NetId a = nl.add_net("a");
  nl.add_ibuf("x", "p1", a);
  const NetId b = nl.add_net("b");
  nl.add_ibuf("x", "p1", b);
  const DrcReport rep = run_drc(nl);
  EXPECT_GE(rep.errors.size(), 2u);  // duplicate cell name + duplicate port
}

TEST(Drc, CatchesConstantDrivenObuf) {
  Netlist nl("t");
  const NetId y = nl.add_net("y");
  nl.add_const("g", false, y);
  nl.add_obuf("ob", "y", y);
  const DrcReport rep = run_drc(nl);
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.errors[0].find("constant"), std::string::npos);
}

TEST(Drc, CatchesCombinationalCycle) {
  Netlist nl("t");
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  nl.add_lut("l1", netlib::lut_buf1(), {b, kNullNet, kNullNet, kNullNet}, a);
  nl.add_lut("l2", netlib::lut_buf1(), {a, kNullNet, kNullNet, kNullNet}, b);
  const DrcReport rep = run_drc(nl);
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.errors[0].find("cycle"), std::string::npos);
}

TEST(Drc, RegisteredLoopIsFine) {
  Netlist nl("t");
  const NetId q = nl.add_net("q");
  const NetId d = nl.add_net("d");
  nl.add_lut("inv", netlib::lut_not1(), {q, kNullNet, kNullNet, kNullNet}, d);
  nl.add_dff("ff", d, q);
  nl.add_obuf("ob", "t", q);
  EXPECT_TRUE(run_drc(nl).ok());
}

TEST(Generators, LutInitHelpers) {
  EXPECT_EQ(netlib::lut_and2() & 0xF, 0b1000);
  EXPECT_EQ(netlib::lut_or2() & 0xF, 0b1110);
  EXPECT_EQ(netlib::lut_xor2() & 0xF, 0b0110);
  EXPECT_EQ(netlib::lut_xnor2() & 0xF, 0b1001);
  EXPECT_EQ(netlib::lut_not1() & 0x3, 0b01);
  EXPECT_EQ(netlib::lut_buf1() & 0x3, 0b10);
}

class GeneratorDrc : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorDrc, AllGeneratorsAreDrcClean) {
  const auto& gens = netlib::registry();
  const int param = GetParam();
  for (const auto& g : gens) {
    const Netlist nl = g.make(param);
    const DrcReport rep = run_drc(nl);
    EXPECT_TRUE(rep.ok()) << g.name << "(" << param
                          << "): " << (rep.errors.empty() ? "" : rep.errors[0]);
    EXPECT_GT(nl.num_cells(), 0u) << g.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, GeneratorDrc, ::testing::Values(2, 4, 8, 16));

TEST(Generators, SpecialModulesAreDrcClean) {
  EXPECT_TRUE(run_drc(netlib::make_nrz_encoder()).ok());
  EXPECT_TRUE(run_drc(netlib::make_toggler()).ok());
  EXPECT_TRUE(run_drc(netlib::make_mux_tree(2)).ok());
  EXPECT_TRUE(
      run_drc(netlib::make_matcher({true, false, true, true, false})).ok());
  EXPECT_TRUE(run_drc(netlib::make_shift_register(12)).ok());
}

TEST(Generators, CounterHasExpectedShape) {
  const Netlist nl = netlib::make_counter(8);
  int ffs = 0, luts = 0, obufs = 0;
  for (const Cell& c : nl.cells()) {
    if (c.kind == CellKind::Dff) ++ffs;
    if (c.kind == CellKind::Lut4) ++luts;
    if (c.kind == CellKind::Obuf) ++obufs;
  }
  EXPECT_EQ(ffs, 8);
  EXPECT_EQ(obufs, 8);
  EXPECT_GE(luts, 8);
}

}  // namespace
}  // namespace jpg
