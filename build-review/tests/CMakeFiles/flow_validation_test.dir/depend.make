# Empty dependencies file for flow_validation_test.
# This may be replaced when dependencies are built.
