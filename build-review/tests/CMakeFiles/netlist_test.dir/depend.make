# Empty dependencies file for netlist_test.
# This may be replaced when dependencies are built.
