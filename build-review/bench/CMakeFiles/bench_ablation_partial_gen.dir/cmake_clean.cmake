file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_partial_gen.dir/bench_ablation_partial_gen.cpp.o"
  "CMakeFiles/bench_ablation_partial_gen.dir/bench_ablation_partial_gen.cpp.o.d"
  "bench_ablation_partial_gen"
  "bench_ablation_partial_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_partial_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
