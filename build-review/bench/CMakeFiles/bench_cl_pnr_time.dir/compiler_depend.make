# Empty compiler generated dependencies file for bench_cl_pnr_time.
# This may be replaced when dependencies are built.
