// PlacedDesign: the physical implementation of a netlist — packed slices,
// site assignments, routed nets — i.e. this repository's ".ncd". It is what
// the XDL writer serialises, what bitgen programs into configuration memory
// (via CBits), and what the JPG tool consumes for partial designs.
//
// Two flavours share the struct:
//  * base designs: every Ibuf/Obuf is placed on an IOB site;
//  * module (partial) designs: `region` is set and Ibuf/Obuf cells are
//    *interface ports* bound to boundary-crossing wires instead of pads
//    (see pnr/flow.h for the crossing discipline).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cbits/cbits.h"
#include "device/device.h"
#include "device/region.h"
#include "netlist/netlist.h"

namespace jpg {

/// One logic element: an optional LUT with an optional FF on its output.
struct LogicElement {
  CellId lut = kNullCell;
  CellId ff = kNullCell;

  [[nodiscard]] bool empty() const {
    return lut == kNullCell && ff == kNullCell;
  }
};

/// A packed slice: up to two logic elements (0 = F/X, 1 = G/Y).
struct PackedSlice {
  std::string name;
  std::string partition;
  LogicElement le[2];
};

/// One programmed PIP: tile + dest wire + mux encoding. `dest_local` may be
/// a long-driver alias.
struct RoutedPip {
  TileCoord tile;
  int dest_local = 0;
  std::uint32_t sel = 0;

  bool operator==(const RoutedPip&) const = default;
};

/// One programmed IOB pad-input mux.
struct IobRoute {
  IobSite site;
  std::uint32_t omux_sel = 0;

  bool operator==(const IobRoute&) const = default;
};

struct RoutedNet {
  NetId net = kNullNet;
  std::vector<RoutedPip> pips;
  std::vector<IobRoute> iob_pips;

  bool operator==(const RoutedNet&) const = default;
};

/// Where a cell's logic landed.
struct CellPlace {
  std::size_t slice_index = 0;
  int le = 0;  ///< 0 = F/X, 1 = G/Y
};

/// An interface port of a module design, bound to a boundary-crossing wire.
struct PlacedPort {
  CellId cell = kNullCell;  ///< the Ibuf/Obuf cell acting as the port
  bool is_input = false;    ///< true: static -> module (crosses left edge)
  int row = 0;              ///< crossing single: tile row
  int k = 0;                ///< crossing single: E-single index (0..7)
};

class PlacedDesign {
 public:
  PlacedDesign(const Device& device, Netlist netlist)
      : device_(&device), netlist_(std::move(netlist)) {}

  [[nodiscard]] const Device& device() const { return *device_; }
  [[nodiscard]] const Netlist& netlist() const { return netlist_; }

  /// Mutable access for the packer (constant folding rewrites LUT masks).
  [[nodiscard]] Netlist& netlist_mut() { return netlist_; }

  // --- Packing ---------------------------------------------------------------
  std::vector<PackedSlice> slices;
  std::unordered_map<CellId, CellPlace> cell_place;  ///< luts & ffs

  // --- Placement --------------------------------------------------------------
  std::vector<SliceSite> slice_sites;  ///< parallel to `slices`
  std::vector<CellId> iob_cells;       ///< placed Ibuf/Obuf cells (base designs)
  std::vector<IobSite> iob_sites;      ///< parallel to `iob_cells`

  /// Module designs: the reconfigurable region and interface ports.
  std::optional<Region> region;
  std::vector<PlacedPort> ports;

  // --- Routing ---------------------------------------------------------------
  std::vector<RoutedNet> routes;
  /// CLK input-mux programmings (one per slice containing a FF).
  std::vector<RoutedPip> clock_pips;

  // --- Derived queries ---------------------------------------------------------
  /// The fabric node driven by `net`'s driver cell, given the placement.
  /// For module designs, interface input ports yield the crossing wire node.
  [[nodiscard]] std::size_t driver_node(NetId net) const;

  /// Fabric sink nodes of `net`, one per routable sink pin (the paired-FF
  /// internal connection is skipped). Output ports yield crossing nodes;
  /// placed Obufs yield pad-in nodes.
  [[nodiscard]] std::vector<std::size_t> sink_nodes(NetId net) const;

  /// Fabric node of one sink pin of `net`; nullopt for the paired-FF
  /// internal connection (no fabric hop needed).
  [[nodiscard]] std::optional<std::size_t> sink_node_for(
      NetId net, const NetSink& sink) const;

  /// True if the net needs fabric routing at all (some nets are entirely
  /// internal to a slice: LUT feeding only its paired FF).
  [[nodiscard]] bool needs_routing(NetId net) const;

  /// Programs the whole design into configuration memory: slice fields,
  /// LUTs, routing pips, IOB settings. The canonical "make CBits calls".
  /// Returns the number of CBits calls issued (the paper's tool workload).
  std::size_t apply(CBits& cb) const;

  /// Site of the slice holding `cell` (LUT/FF cells only).
  [[nodiscard]] SliceSite site_of(CellId cell) const;

  /// IOB site of a placed pad cell; nullopt for module interface ports.
  [[nodiscard]] std::optional<IobSite> iob_site_of(CellId cell) const;

  /// Crossing node of an interface port (module designs).
  [[nodiscard]] std::size_t port_crossing_node(const PlacedPort& p) const;

  /// Total programmed PIP count (routing volume metric for benches).
  [[nodiscard]] std::size_t total_pips() const;

 private:
  const Device* device_;
  Netlist netlist_;
};

}  // namespace jpg
