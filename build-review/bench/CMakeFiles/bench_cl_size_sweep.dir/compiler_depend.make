# Empty compiler generated dependencies file for bench_cl_size_sweep.
# This may be replaced when dependencies are built.
