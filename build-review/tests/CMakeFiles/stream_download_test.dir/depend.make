# Empty dependencies file for stream_download_test.
# This may be replaced when dependencies are built.
