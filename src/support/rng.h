// Deterministic pseudo-random number generation.
//
// Every stochastic component in jpg-cpp (the annealing placer, workload
// generators, fault injectors) takes an explicit Rng so that runs are exactly
// reproducible from a seed. The generator is xoshiro256** seeded through
// SplitMix64, which is fast, has a 2^256-1 period, and passes BigCrush.
#pragma once

#include <cstdint>

#include "support/error.h"

namespace jpg {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 stream to fill the xoshiro state; avoids the all-zero state.
    std::uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      si = z ^ (z >> 31);
    }
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound) {
    JPG_ASSERT(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    JPG_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double unit() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) { return unit() < p; }

  /// Forks an independent stream (for per-thread determinism).
  Rng fork() { return Rng(next() ^ 0xd1b54a32d192ed03ull); }

  /// Derives the `stream`-th independent child generator *without* consuming
  /// parent state: split(i) returns the same child no matter how many other
  /// streams were split off before or after, which is what parallel sweep
  /// shards need to draw uncorrelated sequences in any execution order. The
  /// child is seeded through a SplitMix64 finalizer over the parent state
  /// mixed with the golden-ratio-scrambled stream index (and Rng's own
  /// constructor runs a second expansion pass on top).
  [[nodiscard]] Rng split(std::uint64_t stream) const {
    std::uint64_t x = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^
                      rotl(s_[3], 43);
    x ^= 0xa0761d6478bd642full + stream * 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return Rng(x ^ (x >> 31));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
};

}  // namespace jpg
