file(REMOVE_RECURSE
  "CMakeFiles/proptest_test.dir/proptest_test.cpp.o"
  "CMakeFiles/proptest_test.dir/proptest_test.cpp.o.d"
  "proptest_test"
  "proptest_test.pdb"
  "proptest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proptest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
