// Design-rule checks run before the implementation flow.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace jpg {

struct DrcReport {
  std::vector<std::string> errors;
  std::vector<std::string> warnings;

  [[nodiscard]] bool ok() const { return errors.empty(); }
};

/// Checks structural rules the flow depends on:
///  * every net with sinks has a driver
///  * cell and port names are unique
///  * Obuf inputs are driven by Lut4/Dff/Ibuf (constants must be folded
///    into LUT masks before implementation)
///  * no combinational (LUT-only) cycles
/// Warnings: driverless/sinkless nets, cells with no fanout.
[[nodiscard]] DrcReport run_drc(const Netlist& nl);

/// Convenience: runs DRC and throws JpgError listing the errors if any.
void require_drc_clean(const Netlist& nl);

}  // namespace jpg
