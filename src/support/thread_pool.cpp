#include "support/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "support/error.h"
#include "support/telemetry/telemetry.h"

namespace jpg {

namespace {
/// The pool whose worker_loop is running on this thread (null on any
/// non-worker thread, including a parallel_for caller participating from
/// outside the pool). submit() consults it to run nested submissions
/// inline instead of risking a self-deadlock.
thread_local const ThreadPool* tl_worker_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::worker_loop() {
  tl_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      JPG_GAUGE_SET("pool.queue_depth", tasks_.size());
    }
    JPG_TELEM(const std::uint64_t telem_t0 = telemetry::now_ns();)
    task();
    JPG_COUNT("pool.tasks", 1);
    JPG_HIST("pool.task_ns", telemetry::now_ns() - telem_t0);
  }
}

namespace {

/// Shared by the caller and every enqueued helper task, so helper copies
/// that outlive the parallel_for call (they may still be draining their
/// claim loop after the last iteration completes) never touch dead stack
/// frames.
struct ParallelForContext {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<std::size_t> participants{0};
  std::mutex mutex;
  std::condition_variable cv;
  std::exception_ptr first_error;

  void run() {
    bool counted = false;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      if (!counted) {
        counted = true;
        participants.fetch_add(1, std::memory_order_relaxed);
      }
      try {
        (*body)(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex);
        if (!first_error) first_error = std::current_exception();
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        const std::lock_guard<std::mutex> lock(mutex);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body,
                              ParallelForStats* stats) {
  if (n == 0) {
    if (stats != nullptr) stats->workers_used = 0;
    return;
  }
  // On a single worker (or tiny n) run inline: no synchronization cost and
  // identical iteration order, which keeps seeded algorithms deterministic.
  if (workers_.size() <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    if (stats != nullptr) stats->workers_used = 1;
    return;
  }

  auto ctx = std::make_shared<ParallelForContext>();
  ctx->n = n;
  ctx->body = &body;  // the caller outlives every *iteration* (see wait)

  const std::size_t chunks = std::min(n, workers_.size());
  JPG_COUNT("pool.parallel_fors", 1);
  JPG_HIST("pool.parallel_for_n", n);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    JPG_TELEM(const std::uint64_t telem_enq = telemetry::now_ns();)
    for (std::size_t c = 0; c < chunks; ++c) {
      JPG_TELEM(tasks_.emplace([ctx, telem_enq] {
        JPG_HIST("pool.queue_wait_ns", telemetry::now_ns() - telem_enq);
        ctx->run();
      });)
#if !JPG_TELEMETRY_ENABLED
      tasks_.emplace([ctx] { ctx->run(); });
#endif
    }
    JPG_GAUGE_SET("pool.queue_depth", tasks_.size());
  }
  cv_.notify_all();
  // The caller participates too, so the pool can never deadlock on nested use.
  ctx->run();

  std::unique_lock<std::mutex> lock(ctx->mutex);
  ctx->cv.wait(lock, [&] {
    return ctx->done.load(std::memory_order_acquire) >= n;
  });
  if (stats != nullptr) {
    stats->workers_used = ctx->participants.load(std::memory_order_relaxed);
  }
  if (ctx->first_error) std::rethrow_exception(ctx->first_error);
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = packaged->get_future();
  if (on_worker_thread()) {
    // A worker submitting to its own pool must not wait for a peer: with
    // every peer busy (or none existing — a 1-wide pool) a later
    // future.get() on this task would never return. Run it here; the
    // packaged_task still routes exceptions through the future.
    JPG_COUNT("pool.inline_submits", 1);
    (*packaged)();
    return future;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    tasks_.emplace([packaged] { (*packaged)(); });
    JPG_GAUGE_SET("pool.queue_depth", tasks_.size());
  }
  cv_.notify_one();
  return future;
}

bool ThreadPool::on_worker_thread() const noexcept {
  return tl_worker_pool == this;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

namespace {

/// LRU cache behind ThreadPool::sized: front of `entries` is the most
/// recently leased pool. Leases are shared_ptrs, so an entry is idle —
/// evictable — exactly when its use_count() is 1 (only the cache holds it).
struct SizedPoolCache {
  struct Entry {
    std::size_t width = 0;
    std::shared_ptr<ThreadPool> pool;
  };
  std::mutex mutex;
  std::vector<Entry> entries;
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
};

SizedPoolCache& sized_cache() {
  // Function-local static (not leaked): destruction at exit joins every
  // cached pool's workers, like the pre-cap per-width map did.
  static SizedPoolCache cache;
  return cache;
}

}  // namespace

std::shared_ptr<ThreadPool> ThreadPool::sized(std::size_t n) {
  if (n == 0) {
    // Non-owning lease on the process-wide pool.
    return {&global(), [](ThreadPool*) {}};
  }
  SizedPoolCache& cache = sized_cache();
  std::shared_ptr<ThreadPool> evicted;  // destroyed (joined) outside the lock
  std::shared_ptr<ThreadPool> lease;
  {
    const std::lock_guard<std::mutex> lock(cache.mutex);
    auto it = std::find_if(cache.entries.begin(), cache.entries.end(),
                           [n](const auto& e) { return e.width == n; });
    if (it != cache.entries.end()) {
      ++cache.hits;
      JPG_COUNT("pool.sized.hits", 1);
      lease = it->pool;
      std::rotate(cache.entries.begin(), it, it + 1);  // move to front
    } else {
      ++cache.misses;
      JPG_COUNT("pool.sized.misses", 1);
      lease = std::make_shared<ThreadPool>(n);
      cache.entries.insert(cache.entries.begin(), {n, lease});
      // Over the cap, drop the least-recently-leased idle pool. When every
      // cached pool is leased out the cache runs over the cap temporarily —
      // bounded by the number of concurrent distinct-width users — and
      // shrinks back as leases drop and later calls evict.
      if (cache.entries.size() > kMaxSizedPools) {
        for (auto rit = cache.entries.rbegin(); rit != cache.entries.rend();
             ++rit) {
          if (rit->pool.use_count() == 1) {
            ++cache.evictions;
            JPG_COUNT("pool.sized.evictions", 1);
            evicted = std::move(rit->pool);
            cache.entries.erase(std::next(rit).base());
            break;
          }
        }
      }
    }
  }
  return lease;
}

ThreadPool::SizedCacheStats ThreadPool::sized_cache_stats() {
  SizedPoolCache& cache = sized_cache();
  const std::lock_guard<std::mutex> lock(cache.mutex);
  SizedCacheStats stats;
  stats.pools = cache.entries.size();
  for (const auto& e : cache.entries) {
    stats.total_workers += e.pool->size();
    if (e.pool.use_count() > 1) ++stats.leased;
  }
  stats.hits = cache.hits;
  stats.misses = cache.misses;
  stats.evictions = cache.evictions;
  return stats;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  ThreadPool::global().parallel_for(n, body);
}

}  // namespace jpg
