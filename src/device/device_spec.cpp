#include "device/device_spec.h"

#include <sstream>

#include "support/error.h"
#include "support/string_util.h"

namespace jpg {

const std::vector<DeviceSpec>& DeviceSpec::all() {
  // Dimensions per the Virtex 2.5V data sheet CLB arrays. IDCODEs are
  // synthetic but unique and stable (0x0062xxxx family code).
  static const std::vector<DeviceSpec> parts = {
      {"XCV50", 16, 24, 0x00620050u},
      {"XCV100", 20, 30, 0x00620100u},
      {"XCV150", 24, 36, 0x00620150u},
      {"XCV200", 28, 42, 0x00620200u},
      {"XCV300", 32, 48, 0x00620300u},
      {"XCV400", 40, 60, 0x00620400u},
      {"XCV600", 48, 72, 0x00620600u},
      {"XCV800", 56, 84, 0x00620800u},
      {"XCV1000", 64, 96, 0x00621000u},
  };
  return parts;
}

const DeviceSpec& DeviceSpec::by_name(std::string_view name) {
  for (const DeviceSpec& p : all()) {
    if (iequals(p.name, name)) return p;
  }
  std::ostringstream os;
  os << "unknown device part '" << name << "'";
  throw DeviceError(os.str());
}

const DeviceSpec& DeviceSpec::by_idcode(std::uint32_t idcode) {
  for (const DeviceSpec& p : all()) {
    if (p.idcode == idcode) return p;
  }
  std::ostringstream os;
  os << "unknown device idcode 0x" << std::hex << idcode;
  throw DeviceError(os.str());
}

}  // namespace jpg
