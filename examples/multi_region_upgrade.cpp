// multi_region_upgrade: the paper's Figure 4 arithmetic, live.
//
// Three regions with 3, 3 and 4 implementations each: a conventional flow
// would need 36 complete bitstreams (one CAD run per combination); partial
// reconfiguration needs 1 base + 10 partial bitstreams. This example builds
// the 10 partial bitstreams, prints the bookkeeping, and then installs an
// arbitrary combination on the simulated board by composing partial loads.
//
// Build & run:  ./build/examples/multi_region_upgrade
#include <cstdio>
#include <map>

#include "bitstream/bitgen.h"
#include "core/jpg.h"
#include "hwif/sim_board.h"
#include "pnr/flow.h"
#include "scenarios.h"
#include "ucf/ucf_parser.h"
#include "xdl/xdl_writer.h"

using namespace jpg;

int main() {
  const Device& dev = Device::get("XCV50");
  const auto slots = scenarios::fig4_slots(dev);

  auto base_netlist = scenarios::build_base(dev, slots);
  FlowOptions opt;
  opt.seed = 4;
  const BaseFlowResult base =
      run_base_flow(dev, base_netlist.top, base_netlist.specs, opt);
  ConfigMemory mem(dev);
  CBits cb(mem);
  base.design->apply(cb);
  const Bitstream base_bit = generate_full_bitstream(mem);

  // Floorplan of the three regions (Figure 4's conceptual model).
  {
    std::vector<FloorplanEntry> entries;
    for (const auto& slot : slots) {
      entries.push_back({slot.partition.substr(2), slot.region});
    }
    std::printf("%s\n", render_floorplan(dev, entries).c_str());
  }

  // Generate all 10 partial bitstreams.
  Jpg tool(base_bit);
  std::map<std::string, std::map<std::string, Bitstream>> pool;
  std::size_t partial_bytes = 0;
  int partial_count = 0;
  for (const auto& slot : slots) {
    UcfData ucf;
    ucf.area_group_ranges["AG_" + slot.partition] = slot.region;
    const std::string ucf_text = write_ucf(ucf, dev);
    for (const auto& v : slot.variants) {
      const ModuleFlowResult mod =
          run_module_flow(dev, v.netlist, base.interface_of(slot.partition));
      const auto res =
          tool.generate_partial_from_text(write_xdl(*mod.design), ucf_text);
      std::printf("  %-8s / %-8s : %6zu bytes, %3zu frames\n",
                  slot.partition.c_str(), v.name.c_str(),
                  res.partial.size_bytes(), res.frames.size());
      pool[slot.partition][v.name] = res.partial;
      partial_bytes += res.partial.size_bytes();
      ++partial_count;
    }
  }

  const int combinations = 3 * 3 * 4;
  std::printf("\nFigure 4 bookkeeping on %s:\n", dev.spec().name.c_str());
  std::printf("  conventional flow : %2d complete bitstreams = %8zu bytes\n",
              combinations,
              static_cast<std::size_t>(combinations) * base_bit.size_bytes());
  std::printf("  JPG flow          : 1 base + %d partials   = %8zu bytes\n",
              partial_count, base_bit.size_bytes() + partial_bytes);
  std::printf("  storage ratio     : %.1fx smaller\n\n",
              static_cast<double>(combinations) *
                  static_cast<double>(base_bit.size_bytes()) /
                  static_cast<double>(base_bit.size_bytes() + partial_bytes));

  // Install combination (lfsr, nrz, match2) by three partial loads.
  SimBoard board(dev);
  board.send_config(base_bit.words);
  board.step_clock(5);
  for (const auto& [slot, vname] :
       std::vector<std::pair<std::string, std::string>>{
           {"u_gen", "lfsr"}, {"u_enc", "nrz"}, {"u_match", "match2"}}) {
    board.send_config(pool.at(slot).at(vname).words);
    std::printf("installed %s/%s (heartbeat cycle %llu intact)\n",
                slot.c_str(), vname.c_str(),
                static_cast<unsigned long long>(board.cycles()));
  }

  // Prove all three new modules are alive.
  auto pad = [&](const std::string& port) {
    for (std::size_t i = 0; i < base.design->iob_cells.size(); ++i) {
      if (base.design->netlist().cell(base.design->iob_cells[i]).port == port) {
        return dev.pad_number(base.design->iob_sites[i]);
      }
    }
    throw JpgError("no pad for port " + port);
  };
  // LFSR output must be non-zero and changing.
  int changes = 0;
  bool prev = board.get_pin(pad("u_gen_q0"));
  for (int i = 0; i < 16; ++i) {
    board.step_clock(1);
    if (board.get_pin(pad("u_gen_q0")) != prev) ++changes;
    prev = board.get_pin(pad("u_gen_q0"));
  }
  std::printf("u_gen/lfsr  : q0 changed %d times over 16 cycles\n", changes);
  // NRZ: toggles on 1s.
  board.set_pin(pad("u_enc_d"), true);
  const bool y0 = board.get_pin(pad("u_enc_y"));
  board.step_clock(1);
  const bool y1 = board.get_pin(pad("u_enc_y"));
  std::printf("u_enc/nrz   : y %d -> %d on a 1 bit (toggled: %s)\n", y0, y1,
              y0 != y1 ? "yes" : "no");
  // Matcher 2 looks for pattern {1,1,0,0,1} against the newest-first shift
  // window, so feed it oldest-first (reversed): 1,0,0,1,1.
  int hits = 0;
  for (const bool b : {true, false, false, true, true, false, false}) {
    board.set_pin(pad("u_match_si"), b);
    board.step_clock(1);
    if (board.get_pin(pad("u_match_match"))) ++hits;
  }
  std::printf("u_match/m2  : %d hit(s) on its pattern\n", hits);
  return 0;
}
