# Empty dependencies file for bench_cl_tool_comparison.
# This may be replaced when dependencies are built.
