file(REMOVE_RECURSE
  "CMakeFiles/jpg_scenarios.dir/scenarios.cpp.o"
  "CMakeFiles/jpg_scenarios.dir/scenarios.cpp.o.d"
  "libjpg_scenarios.a"
  "libjpg_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpg_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
