# Empty compiler generated dependencies file for device_test.
# This may be replaced when dependencies are built.
