#include "xdl/xdl_parser.h"

#include <map>
#include <sstream>

#include "support/string_util.h"
#include "support/telemetry/telemetry.h"
#include "xdl/lut_equation.h"
#include "xdl/xdl_lexer.h"

namespace jpg {

namespace {

class Parser {
 public:
  Parser(std::string_view text, const std::string& filename)
      : lexer_(text, filename) {}

  XdlDesign parse() {
    XdlDesign d;
    // Reserve-ahead: one cheap scan over the token stream sizes the
    // instance and net vectors before any parse work, so multi-thousand
    // element designs never pay vector-doubling moves.
    std::size_t n_inst = 0, n_net = 0;
    for (const XdlToken& tok : lexer_.tokens()) {
      if (tok.kind != XdlToken::Kind::Word) continue;
      if (tok.text == "inst") {
        ++n_inst;
      } else if (tok.text == "net") {
        ++n_net;
      }
    }
    d.instances.reserve(n_inst);
    d.nets.reserve(n_net);
    expect_word("design");
    d.name = expect_string();
    d.part = expect_word_any();
    d.version = expect_word_any();
    expect(XdlToken::Kind::Semicolon);
    for (;;) {
      const XdlToken& t = peek();
      if (t.kind == XdlToken::Kind::End) break;
      if (t.kind == XdlToken::Kind::Word && t.text == "inst") {
        d.instances.push_back(parse_inst());
      } else if (t.kind == XdlToken::Kind::Word && t.text == "net") {
        d.nets.push_back(parse_net());
      } else {
        fail("expected 'inst' or 'net'");
      }
    }
    return d;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError(lexer_.filename(), peek().line, why);
  }

  [[nodiscard]] const XdlToken& peek() const { return lexer_.tokens()[pos_]; }
  const XdlToken& next() { return lexer_.tokens()[pos_++]; }

  /// Materializes a zero-copy token view (for error messages and returns).
  [[nodiscard]] static std::string str(std::string_view sv) {
    return std::string(sv);
  }

  void expect(XdlToken::Kind kind) {
    if (peek().kind != kind) {
      fail("unexpected token '" + str(peek().text) + "'");
    }
    ++pos_;
  }
  void expect_word(std::string_view w) {
    if (peek().kind != XdlToken::Kind::Word || peek().text != w) {
      fail("expected '" + str(w) + "', got '" + str(peek().text) + "'");
    }
    ++pos_;
  }
  std::string expect_word_any() {
    if (peek().kind != XdlToken::Kind::Word) {
      fail("expected a word, got '" + str(peek().text) + "'");
    }
    return str(next().text);
  }
  std::string expect_string() {
    if (peek().kind != XdlToken::Kind::String) {
      fail("expected a quoted string, got '" + str(peek().text) + "'");
    }
    return str(next().text);
  }

  XdlInstance parse_inst() {
    expect_word("inst");
    XdlInstance inst;
    inst.name = expect_string();
    inst.type = expect_string();
    expect(XdlToken::Kind::Comma);
    expect_word("placed");
    inst.placed_a = expect_word_any();
    if (peek().kind == XdlToken::Kind::Word) {
      inst.placed_b = next().text;
    }
    if (peek().kind == XdlToken::Kind::Comma) {
      ++pos_;
      expect_word("cfg");
      const std::string cfg = expect_string();
      for (auto& tok : split_ws(cfg)) inst.cfg.push_back(std::move(tok));
    }
    expect(XdlToken::Kind::Semicolon);
    return inst;
  }

  XdlNet parse_net() {
    expect_word("net");
    XdlNet net;
    net.name = expect_string();
    while (peek().kind == XdlToken::Kind::Comma) {
      ++pos_;
      const std::string what = expect_word_any();
      if (what == "outpin" || what == "inpin") {
        XdlPin pin;
        pin.instance = expect_string();
        pin.pin = expect_word_any();
        (what == "outpin" ? net.outpins : net.inpins).push_back(std::move(pin));
      } else if (what == "pip") {
        XdlPip pip;
        pip.tile = expect_word_any();
        pip.src = expect_word_any();
        expect(XdlToken::Kind::Arrow);
        pip.dest = expect_word_any();
        net.pips.push_back(std::move(pip));
      } else if (what == "iobpip") {
        XdlIobPip ip;
        ip.site = expect_word_any();
        ip.wire = expect_word_any();
        net.iobpips.push_back(std::move(ip));
      } else {
        fail("unexpected net item '" + what + "'");
      }
    }
    expect(XdlToken::Kind::Semicolon);
    return net;
  }

  XdlLexer lexer_;
  std::size_t pos_ = 0;
};

// --- XdlDesign -> PlacedDesign -------------------------------------------------

/// Decoded slice cfg.
struct SliceCfg {
  bool has_lut[2] = {false, false};
  std::string lut_name[2];
  std::uint16_t lut_init[2] = {0, 0};
  bool has_ff[2] = {false, false};
  std::string ff_name[2];
  bool ff_init[2] = {false, false};
  bool dmux_bypass[2] = {false, false};
  bool comb_used[2] = {false, false};
  std::string partition;
};

[[noreturn]] void bad_cfg(const std::string& inst, const std::string& why) {
  throw JpgError("bad cfg on instance '" + inst + "': " + why);
}

SliceCfg decode_slice_cfg(const XdlInstance& inst) {
  SliceCfg cfg;
  for (const std::string& tok : inst.cfg) {
    const auto parts = split(tok, ':');
    if (parts.size() < 2) bad_cfg(inst.name, "malformed token '" + tok + "'");
    const std::string& key = parts[0];
    if (key == "F" || key == "G") {
      // F:<name>:#LUT:D=<equation>
      const int le = key == "F" ? 0 : 1;
      if (parts.size() != 4 || parts[2] != "#LUT" ||
          !starts_with(parts[3], "D=")) {
        bad_cfg(inst.name, "malformed LUT token '" + tok + "'");
      }
      cfg.has_lut[le] = true;
      cfg.lut_name[le] = parts[1];
      cfg.lut_init[le] = parse_lut_equation(parts[3].substr(2));
      continue;
    }
    if (key == "FFX" || key == "FFY") {
      const int le = key == "FFX" ? 0 : 1;
      if (parts.size() != 3 || parts[2] != "#FF") {
        bad_cfg(inst.name, "malformed FF token '" + tok + "'");
      }
      cfg.has_ff[le] = true;
      cfg.ff_name[le] = parts[1];
      continue;
    }
    // Attribute pairs KEY::VALUE -> parts = {KEY, "", VALUE}.
    if (parts.size() != 3 || !parts[1].empty()) {
      bad_cfg(inst.name, "malformed token '" + tok + "'");
    }
    const std::string& v = parts[2];
    if (key == "DXMUX" || key == "DYMUX") {
      cfg.dmux_bypass[key == "DXMUX" ? 0 : 1] = v == "1";
    } else if (key == "INITX" || key == "INITY") {
      cfg.ff_init[key == "INITX" ? 0 : 1] = iequals(v, "HIGH");
    } else if (key == "FXMUX") {
      cfg.comb_used[0] = v == "F";
    } else if (key == "GYMUX") {
      cfg.comb_used[1] = v == "G";
    } else if (key == "_PART") {
      cfg.partition = v;
    } else if (key == "CKINV") {
      if (v != "0") bad_cfg(inst.name, "CKINV::1 is not supported");
    } else if (key == "SYNC_ATTR") {
      if (!iequals(v, "ASYNC")) {
        bad_cfg(inst.name, "SYNC_ATTR::SYNC is not supported");
      }
    } else if (key == "CEMUX" || key == "SRMUX") {
      if (!iequals(v, "OFF")) {
        bad_cfg(inst.name, key + " must be OFF (CE/SR are not modelled)");
      }
    } else if (key == "SRFFMUX") {
      if (v != "0") bad_cfg(inst.name, "SRFFMUX::1 is not supported");
    } else {
      bad_cfg(inst.name, "unknown cfg key '" + key + "'");
    }
  }
  return cfg;
}

std::string cfg_value(const XdlInstance& inst, const std::string& key) {
  for (const std::string& tok : inst.cfg) {
    const auto parts = split(tok, ':');
    if (parts.size() == 3 && parts[0] == key && parts[1].empty()) {
      return parts[2];
    }
  }
  bad_cfg(inst.name, "missing cfg key '" + key + "'");
}

}  // namespace

XdlDesign parse_xdl(std::string_view text, const std::string& filename) {
  JPG_SPAN("xdl.parse");
  JPG_TELEM(const std::uint64_t telem_t0 = telemetry::now_ns();)
  XdlDesign design = Parser(text, filename).parse();
  JPG_COUNT("xdl.parse.designs", 1);
  JPG_COUNT("xdl.parse.instances", design.instances.size());
  JPG_COUNT("xdl.parse.nets", design.nets.size());
  JPG_HIST("xdl.parse.ns", telemetry::now_ns() - telem_t0);
  return design;
}

std::unique_ptr<PlacedDesign> placed_design_from_xdl(const XdlDesign& xdl) {
  const Device& dev = Device::get(xdl.part);
  Netlist nl(xdl.name);

  // Pass 1: nets by name (GCLK is the implicit clock, not a logical net).
  std::map<std::string, NetId> net_ids;
  for (const XdlNet& n : xdl.nets) {
    if (n.name == "GCLK") continue;
    if (net_ids.count(n.name) != 0) {
      throw JpgError("duplicate net '" + n.name + "' in XDL");
    }
    net_ids[n.name] = nl.add_net(n.name);
  }

  // Pin connectivity index: (instance, pin) for outpins and inpins.
  std::map<std::pair<std::string, std::string>, NetId> out_of, in_of;
  std::map<std::pair<std::string, std::string>, std::vector<NetId>> ins_of;
  for (const XdlNet& n : xdl.nets) {
    if (n.name == "GCLK") continue;
    const NetId id = net_ids[n.name];
    for (const XdlPin& p : n.outpins) {
      if (!out_of.emplace(std::make_pair(p.instance, p.pin), id).second) {
        throw JpgError("pin " + p.instance + "." + p.pin +
                       " drives two nets in XDL");
      }
    }
    for (const XdlPin& p : n.inpins) {
      ins_of[{p.instance, p.pin}].push_back(id);
    }
  }
  auto out_net = [&](const std::string& inst, const std::string& pin) {
    const auto it = out_of.find({inst, pin});
    return it == out_of.end() ? kNullNet : it->second;
  };
  auto in_net = [&](const std::string& inst, const std::string& pin) {
    const auto it = ins_of.find({inst, pin});
    if (it == ins_of.end()) return kNullNet;
    if (it->second.size() != 1) {
      throw JpgError("pin " + inst + "." + pin + " sinks multiple nets");
    }
    return it->second[0];
  };

  // Pass 2: build cells, slices and ports.
  struct PendingPort {
    CellId cell;
    bool is_input;
    int row, k;
  };
  std::vector<PackedSlice> slices;
  std::vector<SliceSite> slice_sites;
  std::unordered_map<CellId, CellPlace> cell_place;
  std::vector<CellId> iob_cells;
  std::vector<IobSite> iob_sites;
  std::vector<PendingPort> pend_ports;

  for (const XdlInstance& inst : xdl.instances) {
    if (inst.type == "SLICE") {
      const auto site = dev.parse_slice_site(inst.placed_b);
      if (!site) throw JpgError("bad slice site '" + inst.placed_b + "'");
      const SliceCfg cfg = decode_slice_cfg(inst);
      PackedSlice ps;
      ps.name = inst.name;
      ps.partition = cfg.partition;
      const std::size_t slice_index = slices.size();
      for (int le = 0; le < 2; ++le) {
        const char* out_pin = le == 0 ? "X" : "Y";
        const char* q_pin = le == 0 ? "XQ" : "YQ";
        NetId lut_out = kNullNet;
        if (cfg.has_lut[le]) {
          lut_out = out_net(inst.name, out_pin);
          if (lut_out == kNullNet) {
            // LUT feeding only its paired FF: synthesise the internal net.
            lut_out = nl.add_net(inst.name + (le == 0 ? "/Xint" : "/Yint"));
          }
          std::array<NetId, 4> ins{};
          for (int p = 0; p < 4; ++p) {
            const std::string pin =
                std::string(le == 0 ? "F" : "G") + std::to_string(p + 1);
            ins[static_cast<std::size_t>(p)] = in_net(inst.name, pin);
          }
          const CellId lut = nl.add_lut(cfg.lut_name[le], cfg.lut_init[le],
                                        ins, lut_out, cfg.partition);
          ps.le[le].lut = lut;
          cell_place[lut] = {slice_index, le};
        }
        if (cfg.has_ff[le]) {
          NetId d;
          if (cfg.dmux_bypass[le]) {
            d = in_net(inst.name, le == 0 ? "BX" : "BY");
            if (d == kNullNet) {
              throw JpgError("FF '" + cfg.ff_name[le] +
                             "' bypass D input unconnected");
            }
          } else {
            if (!cfg.has_lut[le]) {
              throw JpgError("FF '" + cfg.ff_name[le] +
                             "' takes its D from a missing LUT");
            }
            d = lut_out;
          }
          NetId q = out_net(inst.name, q_pin);
          if (q == kNullNet) {
            q = nl.add_net(inst.name + (le == 0 ? "/XQint" : "/YQint"));
          }
          const CellId ff = nl.add_dff(cfg.ff_name[le], d, q, cfg.ff_init[le],
                                       cfg.partition);
          ps.le[le].ff = ff;
          cell_place[ff] = {slice_index, le};
        }
      }
      slices.push_back(std::move(ps));
      slice_sites.push_back(*site);
      continue;
    }
    if (inst.type == "IOB") {
      const auto site = dev.parse_iob_site(inst.placed_b);
      if (!site) throw JpgError("bad IOB site '" + inst.placed_b + "'");
      const std::string dir = cfg_value(inst, "IOB");
      const std::string port = cfg_value(inst, "NAME");
      CellId cell;
      if (iequals(dir, "INPUT")) {
        const NetId out = out_net(inst.name, "I");
        cell = nl.add_ibuf(inst.name, port, out);
      } else if (iequals(dir, "OUTPUT")) {
        const NetId in = in_net(inst.name, "O");
        cell = nl.add_obuf(inst.name, port, in);
      } else {
        throw JpgError("bad IOB direction '" + dir + "'");
      }
      iob_cells.push_back(cell);
      iob_sites.push_back(*site);
      continue;
    }
    if (inst.type == "PORT") {
      // placed BOUNDARY R<row>K<k>
      const std::string& loc = inst.placed_b;
      std::size_t kpos = loc.find('K');
      if (inst.placed_a != "BOUNDARY" || loc.empty() || loc[0] != 'R' ||
          kpos == std::string::npos) {
        throw JpgError("bad PORT placement '" + loc + "'");
      }
      const auto row = parse_uint(loc.substr(1, kpos - 1));
      const auto k = parse_uint(loc.substr(kpos + 1));
      if (!row || !k || *row < 1) {
        throw JpgError("bad PORT placement '" + loc + "'");
      }
      const std::string dir = cfg_value(inst, "DIR");
      const std::string port = cfg_value(inst, "NAME");
      PendingPort pp;
      pp.is_input = iequals(dir, "INPUT");
      pp.row = static_cast<int>(*row) - 1;
      pp.k = static_cast<int>(*k);
      if (pp.is_input) {
        pp.cell = nl.add_ibuf(inst.name, port, out_net(inst.name, "I"));
      } else {
        pp.cell = nl.add_obuf(inst.name, port, in_net(inst.name, "O"));
      }
      pend_ports.push_back(pp);
      continue;
    }
    throw JpgError("unknown instance type '" + inst.type + "'");
  }

  auto design = std::make_unique<PlacedDesign>(dev, std::move(nl));
  design->slices = std::move(slices);
  design->slice_sites = std::move(slice_sites);
  design->cell_place = std::move(cell_place);
  design->iob_cells = std::move(iob_cells);
  design->iob_sites = std::move(iob_sites);
  for (const PendingPort& pp : pend_ports) {
    design->ports.push_back(PlacedPort{pp.cell, pp.is_input, pp.row, pp.k});
  }

  // Pass 3: routing.
  const RoutingFabric& fab = dev.fabric();
  for (const XdlNet& n : xdl.nets) {
    RoutedNet rn;
    rn.net = n.name == "GCLK" ? kNullNet : net_ids[n.name];
    for (const XdlPip& p : n.pips) {
      const auto tile = dev.parse_tile_name(p.tile);
      if (!tile) throw JpgError("bad pip tile '" + p.tile + "'");
      const auto dest = local_wire_by_name(p.dest);
      if (!dest) throw JpgError("bad pip dest wire '" + p.dest + "'");
      const auto src = source_ref_by_name(p.src);
      if (!src) throw JpgError("bad pip source wire '" + p.src + "'");
      const MuxDef* mux = fab.mux_for_dest(*dest);
      if (mux == nullptr) {
        throw JpgError("pip dest '" + p.dest + "' has no mux");
      }
      std::uint32_t sel = 0;
      for (std::size_t i = 0; i < mux->sources.size(); ++i) {
        if (mux->sources[i] == *src) {
          sel = static_cast<std::uint32_t>(i + 1);
          break;
        }
      }
      if (sel == 0) {
        throw JpgError("no such pip " + p.src + " -> " + p.dest + " at " +
                       p.tile);
      }
      rn.pips.push_back(RoutedPip{*tile, *dest, sel});
    }
    for (const XdlIobPip& ip : n.iobpips) {
      const auto site = dev.parse_iob_site(ip.site);
      if (!site) throw JpgError("bad iobpip site '" + ip.site + "'");
      const auto wire = local_wire_by_name(ip.wire);
      if (!wire || *wire < kSingleBase || *wire >= kHexBase) {
        throw JpgError("bad iobpip wire '" + ip.wire + "'");
      }
      const Dir toward_pad = site->side == Side::Left ? Dir::W : Dir::E;
      const int k = *wire - single_local(toward_pad, 0);
      if (k < 0 || k >= kSinglesPerDir) {
        throw JpgError("iobpip wire '" + ip.wire +
                       "' does not face the pad side");
      }
      rn.iob_pips.push_back(
          IobRoute{*site, static_cast<std::uint32_t>(k + 1)});
    }
    if (n.name == "GCLK") {
      for (const RoutedPip& p : rn.pips) design->clock_pips.push_back(p);
    } else if (!rn.pips.empty() || !rn.iob_pips.empty()) {
      design->routes.push_back(std::move(rn));
    }
  }
  return design;
}

}  // namespace jpg
