// End-to-end tests of the JPG tool: the full two-phase flow of the paper.
//
// Phase 1 builds a partitioned base design (static counter + reconfigurable
// module) and its complete bitstream. Phase 2 implements module variants
// standalone, exports XDL+UCF, and drives them through Jpg to obtain
// partial bitstreams. The tests then assert the repository's headline
// invariants (DESIGN.md §4): partial loads touch only region columns, the
// updated device behaves exactly like the golden netlist of
// static+variant, static state survives dynamic reconfiguration, and the
// partial stream is idempotent.
#include <gtest/gtest.h>

#include "bitstream/bitgen.h"
#include "bitstream/config_port.h"
#include "core/jpg.h"
#include "core/project.h"
#include "hwif/sim_board.h"
#include "netlib/generators.h"
#include "pnr/flow.h"
#include "sim/netlist_sim.h"
#include "xdl/xdl_writer.h"

namespace jpg {
namespace {

/// Module variants sharing the interface {in: d, out: nrz}.
Netlist variant_nrz() { return netlib::make_nrz_encoder("var_nrz"); }

Netlist variant_delay() {
  // Two-stage delay register: nrz = d delayed by 2.
  Netlist nl("var_delay");
  const NetId d = nl.add_net("d");
  const NetId q1 = nl.add_net("q1");
  const NetId q2 = nl.add_net("q2");
  nl.add_ibuf("ib_d", "d", d);
  nl.add_dff("ff1", d, q1);
  nl.add_dff("ff2", q1, q2);
  nl.add_obuf("ob_nrz", "nrz", q2);
  return nl;
}

Netlist variant_invreg() {
  // Registered inverter: nrz = ~d delayed by 1.
  Netlist nl("var_invreg");
  const NetId d = nl.add_net("d");
  const NetId nd = nl.add_net("nd");
  const NetId q = nl.add_net("q");
  nl.add_ibuf("ib_d", "d", d);
  nl.add_lut("inv", netlib::lut_not1(), {d, kNullNet, kNullNet, kNullNet}, nd);
  nl.add_dff("ff", nd, q);
  nl.add_obuf("ob_nrz", "nrz", q);
  return nl;
}

/// Builds the base top: 4-bit static counter on pads + module `mod` as
/// partition "u1" with its d input from a pad and nrz output to a pad.
struct TopBuild {
  Netlist top{"base_top"};
  PartitionSpec spec;
};

TopBuild build_top(const Netlist& mod) {
  TopBuild tb;
  Netlist& top = tb.top;
  // Static counter (visible heartbeat of the static logic).
  {
    const Netlist cnt = netlib::make_counter(4, "hb");
    // Inline as static logic: merge as partitionless by hand.
    std::map<NetId, NetId> net_map;
    for (std::size_t i = 0; i < cnt.num_nets(); ++i) {
      net_map[static_cast<NetId>(i)] =
          top.add_net("hb/" + cnt.net(static_cast<NetId>(i)).name);
    }
    auto mn = [&](NetId id) { return id == kNullNet ? kNullNet : net_map[id]; };
    for (const Cell& c : cnt.cells()) {
      switch (c.kind) {
        case CellKind::Lut4:
          top.add_lut("hb/" + c.name, c.lut_init,
                      {mn(c.in[0]), mn(c.in[1]), mn(c.in[2]), mn(c.in[3])},
                      mn(c.out));
          break;
        case CellKind::Dff:
          top.add_dff("hb/" + c.name, mn(c.in[0]), mn(c.out), c.ff_init);
          break;
        case CellKind::Obuf:
          top.add_obuf("hb/" + c.name, "hb_" + c.port, mn(c.in[0]));
          break;
        default:
          break;
      }
    }
  }
  // Module as partition u1.
  const auto merged = top.merge_module(mod, "u1");
  tb.spec.name = "u1";
  for (const auto& [port, net] : merged.inputs) {
    // Drive the module input from a pad through static logic.
    top.add_ibuf("ib_" + port, port, net);
    tb.spec.input_ports.emplace_back(port, net);
  }
  for (const auto& [port, net] : merged.outputs) {
    top.add_obuf("ob_" + port, port, net);
    tb.spec.output_ports.emplace_back(port, net);
  }
  return tb;
}

class JpgEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = &Device::get("XCV50");
    region_ = Region{0, 6, dev_->rows() - 1, 9};

    TopBuild tb = build_top(variant_nrz());
    tb.spec.region = region_;
    FlowOptions opt;
    opt.seed = 11;
    base_ = std::make_unique<BaseFlowResult>(
        run_base_flow(*dev_, tb.top, {tb.spec}, opt));
    base_top_ = std::make_unique<Netlist>(std::move(tb.top));

    ConfigMemory mem(*dev_);
    CBits cb(mem);
    base_->design->apply(cb);
    base_bit_ = generate_full_bitstream(mem);
  }

  /// Runs phase 2 for a variant and produces XDL + UCF text.
  std::pair<std::string, std::string> implement_variant(const Netlist& var,
                                                        std::uint64_t seed) {
    FlowOptions opt;
    opt.seed = seed;
    const ModuleFlowResult mod =
        run_module_flow(*dev_, var, base_->interface_of("u1"), opt);
    UcfData ucf;
    ucf.area_group_ranges["AG_u1"] = region_;
    return {write_xdl(*mod.design), write_ucf(ucf, *dev_)};
  }

  /// Golden netlist for static + variant.
  Netlist golden_with(const Netlist& var) {
    TopBuild tb = build_top(var);
    return std::move(tb.top);
  }

  /// Pad numbers of the base design's ports.
  std::map<std::string, int> pads() const {
    std::map<std::string, int> m;
    for (std::size_t i = 0; i < base_->design->iob_cells.size(); ++i) {
      m[base_->design->netlist().cell(base_->design->iob_cells[i]).port] =
          dev_->pad_number(base_->design->iob_sites[i]);
    }
    return m;
  }

  const Device* dev_ = nullptr;
  Region region_;
  std::unique_ptr<BaseFlowResult> base_;
  std::unique_ptr<Netlist> base_top_;
  Bitstream base_bit_;
};

TEST_F(JpgEndToEnd, PartialTouchesOnlyRegionColumns) {
  auto [xdl, ucf] = implement_variant(variant_delay(), 21);
  Jpg tool(base_bit_);
  const auto res = tool.generate_partial_from_text(xdl, ucf);
  EXPECT_GT(res.frames.size(), 0u);
  EXPECT_GT(res.cbits_calls, 0u);
  EXPECT_EQ(res.region, region_);

  const auto majors = region_.clb_majors(*dev_);
  for (const std::size_t f : res.frames) {
    const auto a = dev_->frames().address_of_index(f);
    EXPECT_NE(std::find(majors.begin(), majors.end(), static_cast<int>(a.major)),
              majors.end())
        << "frame " << f << " outside region columns";
  }
  // And the loader agrees: committed frames == declared frames.
  ConfigMemory mem(*dev_);
  ConfigPort port(mem);
  port.load(base_bit_);
  port.reset_stats();
  port.load(res.partial);
  EXPECT_EQ(port.committed_frames(), res.frames);
}

TEST_F(JpgEndToEnd, PartialIsSmallerThanFull) {
  auto [xdl, ucf] = implement_variant(variant_nrz(), 22);
  Jpg tool(base_bit_);
  const auto res = tool.generate_partial_from_text(xdl, ucf);
  // Region is 4 of 24 columns; the partial must be well under the full size.
  EXPECT_LT(res.partial.size_bytes(), base_bit_.size_bytes() / 3);
  EXPECT_GT(res.partial.size_bytes(), 0u);
}

TEST_F(JpgEndToEnd, UpdatedDeviceMatchesGoldenNetlist) {
  const auto pad = pads();
  struct VariantCase {
    Netlist netlist;
    std::uint64_t seed;
  };
  std::vector<VariantCase> variants;
  variants.push_back({variant_delay(), 31});
  variants.push_back({variant_invreg(), 32});
  variants.push_back({variant_nrz(), 33});

  for (auto& vc : variants) {
    auto [xdl, ucf] = implement_variant(vc.netlist, vc.seed);
    Jpg tool(base_bit_);
    const auto res = tool.generate_partial_from_text(xdl, ucf);

    // Load base, then partial, through the real config port.
    ConfigMemory mem(*dev_);
    ConfigPort port(mem);
    port.load(base_bit_);
    port.load(res.partial);

    BitstreamSim hw(mem);
    const Netlist golden_nl = golden_with(vc.netlist);
    NetlistSim golden(golden_nl);

    Rng rng(99);
    for (int cyc = 0; cyc < 48; ++cyc) {
      const bool d = rng.chance(0.5);
      golden.set_input("d", d);
      hw.set_pad(pad.at("d"), d);
      for (const std::string& port_name : golden_nl.output_ports()) {
        EXPECT_EQ(hw.get_pad(pad.at(port_name)), golden.get_output(port_name))
            << vc.netlist.name() << " port " << port_name << " cycle " << cyc;
      }
      golden.step();
      hw.step();
    }
  }
}

TEST_F(JpgEndToEnd, WriteOntoBaseIsIdempotentAndConverges) {
  auto [xdl, ucf] = implement_variant(variant_delay(), 41);
  Jpg tool(base_bit_);
  PartialGenOptions diff;
  diff.diff_only = true;
  const auto res = tool.generate_partial_from_text(xdl, ucf, diff);

  tool.write_onto_base(res);
  const Bitstream once = tool.full_bitstream();
  tool.write_onto_base(res);
  EXPECT_EQ(tool.full_bitstream(), once);  // idempotent

  // Regenerating the same module against the updated base writes nothing.
  const auto again = tool.generate_partial_from_text(xdl, ucf, diff);
  EXPECT_TRUE(again.frames.empty());
  EXPECT_EQ(again.far_blocks, 0u);
}

TEST_F(JpgEndToEnd, DefaultPartialsComposeInAnyOrder) {
  // Pre-generated (state-independent) partials must install correctly no
  // matter which variant currently occupies the region — the Figure 1
  // module-pool requirement that diff-against-base partials violate.
  auto [xdl_a, ucf_a] = implement_variant(variant_delay(), 42);
  auto [xdl_b, ucf_b] = implement_variant(variant_invreg(), 43);
  Jpg tool(base_bit_);
  const auto pa = tool.generate_partial_from_text(xdl_a, ucf_a);
  const auto pb = tool.generate_partial_from_text(xdl_b, ucf_b);

  // base -> A -> B must equal base -> B exactly (frame-for-frame).
  ConfigMemory via_a(*dev_);
  {
    ConfigPort port(via_a);
    port.load(base_bit_);
    port.load(pa.partial);
    port.load(pb.partial);
  }
  ConfigMemory direct(*dev_);
  {
    ConfigPort port(direct);
    port.load(base_bit_);
    port.load(pb.partial);
  }
  EXPECT_EQ(via_a, direct);
}

TEST_F(JpgEndToEnd, DynamicReconfigurationPreservesStaticState) {
  const auto pad = pads();
  SimBoard board(*dev_);
  board.send_config(base_bit_.words);
  ASSERT_TRUE(board.configured());

  // Run the static heartbeat counter for 9 cycles.
  board.set_pin(pad.at("d"), false);
  board.step_clock(9);
  auto heartbeat = [&] {
    int v = 0;
    for (int b = 0; b < 4; ++b) {
      if (board.get_pin(pad.at("hb_q" + std::to_string(b)))) v |= 1 << b;
    }
    return v;
  };
  ASSERT_EQ(heartbeat(), 9);

  // Swap the module while the device keeps operating.
  auto [xdl, ucf] = implement_variant(variant_delay(), 51);
  Jpg tool(base_bit_);
  const auto res = tool.generate_partial_from_text(xdl, ucf);
  tool.connect(&board);
  tool.download(res.partial);

  // Static state survived the partial load...
  EXPECT_EQ(heartbeat(), 9);
  board.step_clock(3);
  EXPECT_EQ(heartbeat(), 12);

  // ...and the new module works: delay-2 register.
  board.set_pin(pad.at("d"), true);
  board.step_clock(2);
  EXPECT_TRUE(board.get_pin(pad.at("nrz")));
  board.set_pin(pad.at("d"), false);
  board.step_clock(2);
  EXPECT_FALSE(board.get_pin(pad.at("nrz")));
}

TEST_F(JpgEndToEnd, RejectsModulePlacedOutsideUcfRegion) {
  auto [xdl, ucf] = implement_variant(variant_nrz(), 61);
  // Shrink the UCF region so the placement violates it.
  UcfData bad;
  bad.area_group_ranges["AG_u1"] = Region{0, 6, dev_->rows() - 1, 6};
  Jpg tool(base_bit_);
  EXPECT_THROW(
      (void)tool.generate_partial_from_text(xdl, write_ucf(bad, *dev_)),
      JpgError);
}

TEST_F(JpgEndToEnd, FloorplanViewHighlightsTarget) {
  auto [xdl, ucf] = implement_variant(variant_nrz(), 71);
  Jpg tool(base_bit_);
  const auto res = tool.generate_partial_from_text(xdl, ucf);
  EXPECT_NE(res.floorplan.find("#"), std::string::npos);
  EXPECT_NE(res.floorplan.find("XCV50"), std::string::npos);
  // Width: 24 tile characters per row.
  EXPECT_NE(res.floorplan.find(std::string(2, '#')), std::string::npos);
}

TEST_F(JpgEndToEnd, RejectsPartialAsBase) {
  auto [xdl, ucf] = implement_variant(variant_nrz(), 81);
  Jpg tool(base_bit_);
  const auto res = tool.generate_partial_from_text(xdl, ucf);
  EXPECT_THROW(Jpg{res.partial}, BitstreamError);
}

TEST(JpgProject, SaveLoadRoundtrip) {
  const Device& dev = Device::get("XCV50");
  ConfigMemory mem(dev);
  JpgProject p;
  p.name = "demo";
  p.device_part = "XCV50";
  p.base = generate_full_bitstream(mem);
  p.modules.push_back({"var_a", "design \"a\" XCV50 v1 ;\n", "# ucf a\n"});
  p.modules.push_back({"var_b", "design \"b\" XCV50 v1 ;\n", "# ucf b\n"});

  const std::string dir = ::testing::TempDir() + "/jpg_project_test";
  p.save(dir);
  const JpgProject q = JpgProject::load(dir);
  EXPECT_EQ(q.name, "demo");
  EXPECT_EQ(q.device_part, "XCV50");
  EXPECT_EQ(q.base, p.base);
  ASSERT_EQ(q.modules.size(), 2u);
  EXPECT_EQ(q.module("var_a").xdl_text, "design \"a\" XCV50 v1 ;\n");
  EXPECT_EQ(q.module("var_b").ucf_text, "# ucf b\n");
  EXPECT_THROW(q.module("nope"), JpgError);
  EXPECT_THROW(JpgProject::load(::testing::TempDir() + "/no_such_project"),
               JpgError);
}

}  // namespace
}  // namespace jpg
