#include "core/project.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/error.h"
#include "support/string_util.h"

namespace jpg {

namespace fs = std::filesystem;

namespace {

std::string read_text_file(const fs::path& path) {
  std::ifstream in(path);
  if (!in) throw JpgError("cannot open '" + path.string() + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_text_file(const fs::path& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) throw JpgError("cannot write '" + path.string() + "'");
  out << text;
}

}  // namespace

const JpgModuleEntry& JpgProject::module(const std::string& mod_name) const {
  for (const JpgModuleEntry& m : modules) {
    if (m.name == mod_name) return m;
  }
  throw JpgError("project has no module '" + mod_name + "'");
}

std::string JpgProject::manifest() const {
  std::ostringstream os;
  os << "jpg-project 1\n";
  os << "name " << name << "\n";
  os << "device " << device_part << "\n";
  os << "base base.bit\n";
  for (const JpgModuleEntry& m : modules) {
    os << "module " << m.name << "\n";
  }
  return os.str();
}

void JpgProject::save(const std::string& dir) const {
  const fs::path root(dir);
  fs::create_directories(root);
  write_text_file(root / "project.jpg", manifest());
  base.save((root / "base.bit").string());
  for (const JpgModuleEntry& m : modules) {
    JPG_REQUIRE(!m.name.empty() && m.name.find('/') == std::string::npos &&
                    m.name.find("..") == std::string::npos,
                "module name must be a plain file stem");
    write_text_file(root / (m.name + ".xdl"), m.xdl_text);
    write_text_file(root / (m.name + ".ucf"), m.ucf_text);
  }
}

JpgProject JpgProject::load(const std::string& dir) {
  const fs::path root(dir);
  const std::string manifest = read_text_file(root / "project.jpg");
  JpgProject p;
  bool header_seen = false;
  int line_no = 0;
  for (const std::string& raw : split(manifest, '\n')) {
    ++line_no;
    const std::string_view line = trim(raw);
    if (line.empty() || line[0] == '#') continue;
    const auto tokens = split_ws(line);
    if (!header_seen) {
      if (tokens.size() != 2 || tokens[0] != "jpg-project" ||
          tokens[1] != "1") {
        throw ParseError((root / "project.jpg").string(), line_no,
                         "not a jpg project manifest");
      }
      header_seen = true;
      continue;
    }
    if (tokens[0] == "name" && tokens.size() >= 2) {
      p.name = tokens[1];
    } else if (tokens[0] == "device" && tokens.size() == 2) {
      p.device_part = tokens[1];
    } else if (tokens[0] == "base" && tokens.size() == 2) {
      p.base = Bitstream::load((root / tokens[1]).string());
    } else if (tokens[0] == "module" && tokens.size() == 2) {
      JpgModuleEntry m;
      m.name = tokens[1];
      m.xdl_text = read_text_file(root / (m.name + ".xdl"));
      m.ucf_text = read_text_file(root / (m.name + ".ucf"));
      p.modules.push_back(std::move(m));
    } else {
      throw ParseError((root / "project.jpg").string(), line_no,
                       "unknown manifest entry '" + tokens[0] + "'");
    }
  }
  if (!header_seen) {
    throw JpgError("empty project manifest in '" + dir + "'");
  }
  if (p.base.words.empty()) {
    throw JpgError("project '" + dir + "' has no base bitstream");
  }
  return p;
}

}  // namespace jpg
