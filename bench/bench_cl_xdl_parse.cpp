// CL-XDL — §3.2.2: "The JPG parser scans through the complete .xdl file and
// makes appropriate JBits calls to program the device."
//
// Measures the tool's hot loop — XDL parse, design reconstruction, and the
// CBits binding — against growing module sizes, and prints the throughput
// series (instances/s, CBits calls per instance).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/xdl_to_cbits.h"
#include "netlib/generators.h"
#include "scenarios.h"
#include "ucf/ucf_parser.h"
#include "xdl/xdl_lexer.h"
#include "xdl/xdl_writer.h"

namespace jpg {
namespace {

struct ModXdl {
  std::string xdl;
  UcfData ucf;
  std::size_t instances = 0;
};

/// Implements an n-bit LFSR in a region and returns its XDL.
ModXdl make_module_xdl(int bits) {
  const Device& dev = Device::get("XCV100");
  const Region region{0, 6, dev.rows() - 1, 13};

  Netlist top("host");
  const auto merged = top.merge_module(netlib::make_lfsr(bits), "u1");
  PartitionSpec spec;
  spec.name = "u1";
  spec.region = region;
  for (const auto& [port, net] : merged.outputs) {
    top.add_obuf("ob_" + port, port, net);
    spec.output_ports.emplace_back(port, net);
  }
  const BaseFlowResult base = run_base_flow(dev, top, {spec});
  const ModuleFlowResult mod = run_module_flow(
      dev, netlib::make_lfsr(bits), base.interface_of("u1"));

  ModXdl m;
  m.xdl = write_xdl(*mod.design);
  m.ucf.area_group_ranges["AG"] = region;
  m.instances = mod.design->slices.size() + mod.design->ports.size();
  return m;
}

std::map<int, ModXdl>& cache() {
  static std::map<int, ModXdl> c;
  return c;
}

const ModXdl& module_of(int bits) {
  auto it = cache().find(bits);
  if (it == cache().end()) {
    it = cache().emplace(bits, make_module_xdl(bits)).first;
  }
  return it->second;
}

void BM_XdlParseOnly(benchmark::State& state) {
  const ModXdl& m = module_of(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse_xdl(m.xdl).instances.size());
  }
  state.counters["bytes"] = static_cast<double>(m.xdl.size());
  state.counters["instances"] = static_cast<double>(m.instances);
}
BENCHMARK(BM_XdlParseOnly)->Arg(8)->Arg(16)->Arg(32)->Arg(48)
    ->Unit(benchmark::kMicrosecond);

void BM_XdlParseAndBind(benchmark::State& state) {
  const ModXdl& m = module_of(static_cast<int>(state.range(0)));
  const Device& dev = Device::get("XCV100");
  std::size_t calls = 0;
  for (auto _ : state) {
    ConfigMemory scratch(dev);
    const XdlDesign xdl = parse_xdl(m.xdl);
    const XdlBindResult bound = bind_xdl_module(xdl, m.ucf, scratch);
    calls = bound.cbits_calls;
    benchmark::DoNotOptimize(calls);
  }
  state.counters["cbits_calls"] = static_cast<double>(calls);
}
BENCHMARK(BM_XdlParseAndBind)->Arg(8)->Arg(16)->Arg(32)->Arg(48)
    ->Unit(benchmark::kMicrosecond);

// --- Zero-copy lexer before/after ------------------------------------------

/// The seed's copying tokenizer, kept verbatim as the benchmark baseline:
/// every Word/String token materialises a std::string, and the token vector
/// grows without a reserve pass. The shipping XdlLexer replaces both with
/// string_view slices into the source buffer.
struct LegacyToken {
  XdlToken::Kind kind;
  std::string text;
  int line;
};

std::vector<LegacyToken> legacy_lex(std::string_view text) {
  std::vector<LegacyToken> tokens;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c == ',') {
      tokens.push_back({XdlToken::Kind::Comma, ",", line});
      ++i;
      continue;
    }
    if (c == ';') {
      tokens.push_back({XdlToken::Kind::Semicolon, ";", line});
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && text[i + 1] == '>') {
      tokens.push_back({XdlToken::Kind::Arrow, "->", line});
      i += 2;
      continue;
    }
    if (c == '"') {
      const int start_line = line;
      const std::size_t start = ++i;
      while (i < n && text[i] != '"') {
        if (text[i] == '\n') ++line;
        ++i;
      }
      tokens.push_back({XdlToken::Kind::String,
                        std::string(text.substr(start, i - start)),
                        start_line});
      ++i;
      continue;
    }
    const std::size_t start = i;
    while (i < n) {
      const char w = text[i];
      if (w == ' ' || w == '\t' || w == '\r' || w == '\n' || w == ',' ||
          w == ';' || w == '#' || w == '"') {
        break;
      }
      if (w == '-' && i + 1 < n && text[i + 1] == '>') break;
      ++i;
    }
    tokens.push_back({XdlToken::Kind::Word,
                      std::string(text.substr(start, i - start)), line});
  }
  tokens.push_back({XdlToken::Kind::End, "", line});
  return tokens;
}

void print_lexer_series(benchutil::JsonReport& report) {
  using benchutil::fmt;
  constexpr int kReps = 50;
  benchutil::Table t({"LFSR bits", "XDL bytes", "tokens", "legacy us",
                      "zero-copy us", "speedup"});
  for (const int bits : {8, 16, 32, 48}) {
    const ModXdl& m = module_of(bits);
    benchutil::Stopwatch sw1;
    std::size_t n_tokens = 0;
    for (int i = 0; i < kReps; ++i) {
      n_tokens = legacy_lex(m.xdl).size();
      benchmark::DoNotOptimize(n_tokens);
    }
    const double legacy_us = sw1.ms() * 1e3 / kReps;
    benchutil::Stopwatch sw2;
    for (int i = 0; i < kReps; ++i) {
      benchmark::DoNotOptimize(XdlLexer(std::string_view(m.xdl)).tokens().size());
    }
    const double zc_us = sw2.ms() * 1e3 / kReps;
    t.row({std::to_string(bits), std::to_string(m.xdl.size()),
           std::to_string(n_tokens), fmt(legacy_us), fmt(zc_us),
           fmt(legacy_us / zc_us) + "x"});
    const std::string tag = "lfsr" + std::to_string(bits);
    report.set("lexer", tag + "_bytes", static_cast<double>(m.xdl.size()));
    report.set("lexer", tag + "_legacy_us", legacy_us);
    report.set("lexer", tag + "_zero_copy_us", zc_us);
    report.set("lexer", tag + "_speedup", legacy_us / zc_us);
  }
  t.print("CL-XDL: copying lexer (seed) vs zero-copy string_view lexer");
}

void print_parse_series(benchutil::JsonReport& report) {
  using benchutil::fmt;
  benchutil::Table t({"LFSR bits", "XDL bytes", "instances", "parse ms",
                      "parse+bind ms", "CBits calls"});
  for (const int bits : {8, 16, 32, 48}) {
    const ModXdl& m = module_of(bits);
    const Device& dev = Device::get("XCV100");
    benchutil::Stopwatch sw1;
    for (int i = 0; i < 10; ++i) {
      benchmark::DoNotOptimize(parse_xdl(m.xdl).nets.size());
    }
    const double parse_ms = sw1.ms() / 10;
    benchutil::Stopwatch sw2;
    std::size_t calls = 0;
    for (int i = 0; i < 10; ++i) {
      ConfigMemory scratch(dev);
      calls = bind_xdl_module(parse_xdl(m.xdl), m.ucf, scratch).cbits_calls;
    }
    const double bind_ms = sw2.ms() / 10;
    t.row({std::to_string(bits), std::to_string(m.xdl.size()),
           std::to_string(m.instances), fmt(parse_ms, 3), fmt(bind_ms, 3),
           std::to_string(calls)});
    const std::string tag = "lfsr" + std::to_string(bits);
    report.set("parse", tag + "_parse_ms", parse_ms);
    report.set("parse", tag + "_parse_bind_ms", bind_ms);
  }
  t.print("CL-XDL: parser -> CBits binding throughput (XCV100)");
  std::printf("paper shape: the binder scales linearly with the module's XDL "
              "size; parsing is\nnot the bottleneck of partial bitstream "
              "generation.\n");
}

}  // namespace
}  // namespace jpg

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  jpg::benchutil::JsonReport report;
  jpg::print_lexer_series(report);
  jpg::print_parse_series(report);
  jpg::benchutil::add_telemetry_section(report);
  report.write_file("BENCH_xdl_parse.json");
  return 0;
}
