# Empty compiler generated dependencies file for jpg_device.
# This may be replaced when dependencies are built.
