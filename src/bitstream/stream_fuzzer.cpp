#include "bitstream/stream_fuzzer.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "bitstream/bitstream_reader.h"
#include "bitstream/bitstream_writer.h"
#include "bitstream/config_port.h"
#include "hwif/stream_source.h"
#include "support/rng.h"

namespace jpg {

namespace {

void apply_mutation(std::vector<std::uint32_t>& w, MutationKind kind, Rng& rng,
                    std::span<const Bitstream> corpus) {
  if (w.empty()) return;
  switch (kind) {
    case MutationKind::BitFlip:
      w[rng.uniform(w.size())] ^= 1u << rng.uniform(32);
      return;
    case MutationKind::MultiFlip: {
      const int flips = 2 + static_cast<int>(rng.uniform(7));
      for (int i = 0; i < flips; ++i) {
        w[rng.uniform(w.size())] ^= 1u << rng.uniform(32);
      }
      return;
    }
    case MutationKind::WordRandom:
      w[rng.uniform(w.size())] = static_cast<std::uint32_t>(rng.next());
      return;
    case MutationKind::HeaderGarbage: {
      // A syntactically header-shaped word with random type/op/reg/count:
      // exercises the decoder far more often than uniform garbage would.
      const std::uint32_t type = static_cast<std::uint32_t>(rng.uniform(8));
      const std::uint32_t op = static_cast<std::uint32_t>(rng.uniform(4));
      const std::uint32_t reg = static_cast<std::uint32_t>(rng.uniform(32));
      const std::uint32_t count = static_cast<std::uint32_t>(rng.uniform(2048));
      w[rng.uniform(w.size())] = (type << 29) | (op << 27) | (reg << 13) | count;
      return;
    }
    case MutationKind::Truncate:
      w.resize(1 + rng.uniform(w.size()));
      return;
    case MutationKind::DropWord:
      w.erase(w.begin() + static_cast<std::ptrdiff_t>(rng.uniform(w.size())));
      return;
    case MutationKind::DupWord: {
      const std::size_t i = rng.uniform(w.size());
      w.insert(w.begin() + static_cast<std::ptrdiff_t>(i), w[i]);
      return;
    }
    case MutationKind::InsertWord:
      w.insert(w.begin() + static_cast<std::ptrdiff_t>(rng.uniform(w.size() + 1)),
               static_cast<std::uint32_t>(rng.next()));
      return;
    case MutationKind::Splice: {
      const Bitstream& src = corpus[rng.uniform(corpus.size())];
      if (src.words.empty()) return;
      const std::size_t len = 1 + rng.uniform(std::min<std::size_t>(64, src.words.size()));
      const std::size_t from = rng.uniform(src.words.size() - len + 1);
      const std::size_t at = rng.uniform(w.size() + 1);
      w.insert(w.begin() + static_cast<std::ptrdiff_t>(at),
               src.words.begin() + static_cast<std::ptrdiff_t>(from),
               src.words.begin() + static_cast<std::ptrdiff_t>(from + len));
      return;
    }
  }
}

}  // namespace

std::string_view mutation_kind_name(MutationKind k) {
  switch (k) {
    case MutationKind::BitFlip: return "bit-flip";
    case MutationKind::MultiFlip: return "multi-flip";
    case MutationKind::WordRandom: return "word-random";
    case MutationKind::HeaderGarbage: return "header-garbage";
    case MutationKind::Truncate: return "truncate";
    case MutationKind::DropWord: return "drop-word";
    case MutationKind::DupWord: return "dup-word";
    case MutationKind::InsertWord: return "insert-word";
    case MutationKind::Splice: return "splice";
  }
  return "?";
}

std::string FuzzReport::summary() const {
  std::ostringstream os;
  os << "fuzzed " << iterations << " streams: port "
     << port_rejections << " rejected / " << port_accepts
     << " accepted, reader " << reader_rejections << " rejected / "
     << reader_accepts << " accepted, " << desync_violations
     << " desync violations, " << recovery_failures << " recovery failures, "
     << stream_equiv_failures << " stream-equivalence failures\n";
  os << "mutations:";
  for (int k = 0; k < kNumMutationKinds; ++k) {
    os << " " << mutation_kind_name(static_cast<MutationKind>(k)) << "="
       << mutation_counts[static_cast<std::size_t>(k)];
  }
  return os.str();
}

FuzzReport fuzz_config_streams(const Device& dev, const Bitstream& full_base,
                               std::span<const Bitstream> extra_corpus,
                               const FuzzOptions& opts) {
  JPG_REQUIRE(!full_base.words.empty(), "full base stream is empty");
  const FrameMap& fm = dev.frames();
  const std::size_t fw = fm.frame_words();

  // The tool-side expectation of the plane after a full reload.
  ConfigMemory base_plane(dev);
  {
    ConfigPort port(base_plane);
    port.load(full_base);
    JPG_REQUIRE(port.started(), "full base stream does not start the device");
  }

  // A small always-valid recovery partial: two patterned frames whose
  // round-trip proves the port decodes and commits again after abuse.
  const std::size_t rec_first = fm.frame_index(1, 3);
  ConfigMemory rec_plane(dev);
  for (std::size_t f = 0; f < 2; ++f) {
    for (std::size_t w = 0; w < fw; ++w) {
      rec_plane.frame(rec_first + f).set_word(
          w, 0xA5000000u ^ (static_cast<std::uint32_t>(f) << 16) ^
                 static_cast<std::uint32_t>(w));
    }
  }
  Bitstream recovery;
  {
    BitstreamWriter w(dev);
    w.begin();
    w.write_cmd(Command::RCRC);
    w.write_reg(ConfigReg::FLR, static_cast<std::uint32_t>(fw - 1));
    w.write_reg(ConfigReg::IDCODE, dev.spec().idcode);
    w.write_cmd(Command::WCFG);
    w.write_reg(ConfigReg::FAR, fm.encode_far(fm.address_of_index(rec_first)));
    w.write_frames(rec_plane, rec_first, 2);
    w.write_crc();
    w.write_cmd(Command::LFRM);
    recovery = w.finish();
  }
  std::vector<std::uint32_t> rec_expect(2 * fw);
  rec_plane.read_frame_words(rec_first, rec_expect.data());
  rec_plane.read_frame_words(rec_first + 1, rec_expect.data() + fw);

  // The corpus: the full stream, the recovery partial, plus the caller's.
  std::vector<const Bitstream*> corpus_ptrs{&full_base, &recovery};
  for (const Bitstream& bs : extra_corpus) corpus_ptrs.push_back(&bs);
  std::vector<Bitstream> corpus;
  corpus.reserve(corpus_ptrs.size());
  for (const Bitstream* bs : corpus_ptrs) corpus.push_back(*bs);

  Rng rng(opts.seed);
  FuzzReport rep;
  ConfigMemory mem(dev);
  ConfigPort port(mem);
  port.load(full_base);

  // Differential twin: a second port consuming the identical word sequence
  // through the scatter-gather path — random segment cuts (including
  // zero-length segments) walked by a BurstCursor with a random burst
  // bound. Chunking must be invisible to the word-level state machine, so
  // any divergence in throw/accept, sync/started state, or the final plane
  // is a finding. The cuts draw from their own Rng so the mutation
  // campaign itself replays identically with or without this check.
  Rng seg_rng(opts.seed ^ 0x5eedf00dd1ffc0deull);
  ConfigMemory smem(dev);
  ConfigPort sport(smem);
  sport.load(full_base);
  const auto load_segmented = [&seg_rng,
                               &sport](std::span<const std::uint32_t> words) {
    StreamSource src;
    std::size_t off = 0;
    while (off < words.size()) {
      if (seg_rng.uniform(8) == 0) src.add({});
      const std::size_t len =
          1 + seg_rng.uniform(std::min<std::size_t>(97, words.size() - off));
      src.add(words.subspan(off, len));
      off += len;
    }
    if (seg_rng.uniform(8) == 0) src.add({});
    const std::size_t burst = 1 + seg_rng.uniform(64);
    BurstCursor cursor(src);
    for (auto b = cursor.next(burst); !b.empty(); b = cursor.next(burst)) {
      sport.load(b);
    }
  };

  for (int it = 0; it < opts.iterations; ++it) {
    ++rep.iterations;
    Bitstream mutated = corpus[rng.uniform(corpus.size())];
    const int nmut =
        1 + static_cast<int>(rng.uniform(
                static_cast<std::uint64_t>(std::max(1, opts.max_mutations))));
    for (int m = 0; m < nmut; ++m) {
      const auto kind =
          static_cast<MutationKind>(rng.uniform(kNumMutationKinds));
      ++rep.mutation_counts[static_cast<std::size_t>(kind)];
      apply_mutation(mutated.words, kind, rng, corpus);
    }

    // Device-side consumer. Only BitstreamError may escape the port; any
    // other exception type propagates out of the harness as a finding.
    bool threw = false;
    try {
      port.load(mutated);
    } catch (const BitstreamError&) {
      threw = true;
    }
    threw ? ++rep.port_rejections : ++rep.port_accepts;
    if (threw && port.synced()) ++rep.desync_violations;

    bool stream_threw = false;
    try {
      load_segmented(mutated.words);
    } catch (const BitstreamError&) {
      stream_threw = true;
    }
    if (stream_threw != threw || sport.synced() != port.synced() ||
        sport.started() != port.started()) {
      ++rep.stream_equiv_failures;
    }

    // Offline parser: same contract, plus far_blocks on accepted parses.
    try {
      const BitstreamReader reader(mutated);
      (void)reader.far_blocks(fw);
      (void)reader.idcode();
      ++rep.reader_accepts;
    } catch (const BitstreamError&) {
      ++rep.reader_rejections;
    }

    // Recovery contract: whatever the mutated stream did, ABORT plus a
    // valid stream must decode cleanly and land its frames.
    try {
      port.abort();
      port.load(recovery);
      if (port.readback_frames(rec_first, 2) != rec_expect) {
        ++rep.recovery_failures;
      }
    } catch (const JpgError&) {
      ++rep.recovery_failures;
    }
    try {
      sport.abort();
      load_segmented(recovery.words);
    } catch (const JpgError&) {
      ++rep.stream_equiv_failures;
    }
    // After identical traffic plus identical recovery, the twins' planes
    // must agree word for word.
    if (smem != mem) ++rep.stream_equiv_failures;

    if (opts.full_reload_every > 0 && (it + 1) % opts.full_reload_every == 0) {
      try {
        port.abort();
        port.load(full_base);
        if (mem != base_plane) ++rep.recovery_failures;
      } catch (const JpgError&) {
        ++rep.recovery_failures;
      }
      try {
        sport.abort();
        load_segmented(full_base.words);
        if (smem != base_plane) ++rep.stream_equiv_failures;
      } catch (const JpgError&) {
        ++rep.stream_equiv_failures;
      }
    }
  }
  return rep;
}

}  // namespace jpg
