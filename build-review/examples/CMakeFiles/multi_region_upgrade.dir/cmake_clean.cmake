file(REMOVE_RECURSE
  "CMakeFiles/multi_region_upgrade.dir/multi_region_upgrade.cpp.o"
  "CMakeFiles/multi_region_upgrade.dir/multi_region_upgrade.cpp.o.d"
  "multi_region_upgrade"
  "multi_region_upgrade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_region_upgrade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
