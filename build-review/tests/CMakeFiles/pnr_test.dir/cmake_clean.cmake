file(REMOVE_RECURSE
  "CMakeFiles/pnr_test.dir/pnr_test.cpp.o"
  "CMakeFiles/pnr_test.dir/pnr_test.cpp.o.d"
  "pnr_test"
  "pnr_test.pdb"
  "pnr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
