file(REMOVE_RECURSE
  "CMakeFiles/flow_validation_test.dir/flow_validation_test.cpp.o"
  "CMakeFiles/flow_validation_test.dir/flow_validation_test.cpp.o.d"
  "flow_validation_test"
  "flow_validation_test.pdb"
  "flow_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
