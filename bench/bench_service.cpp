// MULTI-TENANT RECONFIGURATION SERVICE — thousands of concurrent swap
// requests replayed against a ReconfigService fleet with open-loop Poisson
// arrivals. Two phases per device:
//
//   capacity   back-to-back load (no think time) to measure the sustained
//              swap rate the fleet can absorb, which calibrates...
//   poisson    ...an open-loop arrival process at ~0.8x capacity: queue-wait
//              is part of every latency sample, and admission control is
//              armed (rejections are counted, and any accepted-beyond-depth
//              request would be an admission violation).
//
// Emits BENCH_service.json with p50/p99 swap latency, sustained swaps/sec,
// rejection counts, quota-eviction counts and two gate fields the `service`
// CI configuration asserts on: admission_violations (queue_peak beyond the
// configured depth — must be 0) and quota_violations (a tenant's resident
// peak beyond its quota — must be 0).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.h"
#include "device/device.h"
#include "service/load_harness.h"
#include "service/reconfig_service.h"

namespace jpg {
namespace {

struct RunConfig {
  std::size_t boards;
  std::size_t tenants;
  std::size_t slots;
  std::size_t variants;
  std::size_t requests;
  std::size_t queue_depth;
  std::size_t tenant_quota;
};

struct RunResult {
  PoissonLoadResult load;
  ServiceStats stats;
  std::uint64_t quota_violations = 0;
  std::uint64_t quota_evictions = 0;
  std::uint64_t admission_violations = 0;
};

RunResult run_service_load(const Device& dev, const LoadFixture& fx,
                           const RunConfig& rc, double rate_hz,
                           std::uint64_t seed) {
  ServiceConfig cfg;
  cfg.queue_depth = rc.queue_depth;
  cfg.tenant_quota = rc.tenant_quota;
  cfg.stream.overlap_verify = true;
  ReconfigService svc(dev, fx.base, rc.boards, cfg);
  PoissonLoadOptions opt;
  opt.requests = rc.requests;
  opt.tenants = rc.tenants;
  opt.rate_hz = rate_hz;
  opt.seed = seed;
  RunResult out;
  out.load = run_poisson_load(svc, fx, opt);
  svc.shutdown();
  out.stats = svc.stats();
  // Gate math: the bounded queue must never have held more than its depth,
  // and no tenant's resident set may ever have exceeded its quota.
  out.admission_violations =
      out.stats.queue_peak > rc.queue_depth
          ? out.stats.queue_peak - rc.queue_depth
          : 0;
  for (const auto& [name, ts] : out.stats.tenants) {
    if (rc.tenant_quota != 0 && ts.resident_peak > rc.tenant_quota) {
      out.quota_violations += ts.resident_peak - rc.tenant_quota;
    }
    out.quota_evictions += ts.quota_evictions;
  }
  return out;
}

void bench_device(const char* part, benchutil::JsonReport& report,
                  benchutil::Table& t) {
  using benchutil::fmt;
  const bool smoke = benchutil::smoke_mode();
  RunConfig rc;
  rc.boards = smoke ? 2 : 3;
  rc.tenants = smoke ? 4 : 6;
  rc.slots = 2;
  rc.variants = smoke ? 4 : 6;
  rc.requests = smoke ? 300 : 2000;
  rc.queue_depth = 64;
  rc.tenant_quota = 3;

  const Device& dev = Device::get(part);
  const LoadFixture fx = make_load_fixture(dev, 17, rc.slots, rc.variants);

  // Phase 1: capacity. Back-to-back submission saturates the fleet; the
  // completion rate is the sustained capacity of boards + pool + verify.
  const RunResult cap = run_service_load(
      dev, fx, rc, /*rate_hz=*/0, /*seed=*/21);
  const double capacity = cap.load.swaps_per_sec();

  // Phase 2: open-loop Poisson arrivals at ~0.8x measured capacity — busy
  // but stable, so latency percentiles mean something.
  const double rate = 0.8 * capacity;
  const RunResult poisson = run_service_load(dev, fx, rc, rate, /*seed=*/22);

  const double p50 =
      static_cast<double>(percentile_ns(poisson.load.latencies_ns, 50));
  const double p99 =
      static_cast<double>(percentile_ns(poisson.load.latencies_ns, 99));

  report.set(part, "host_cpus", static_cast<double>(benchutil::host_cpus()));
  report.set(part, "requests", static_cast<double>(rc.requests));
  report.set(part, "boards", static_cast<double>(rc.boards));
  report.set(part, "tenants", static_cast<double>(rc.tenants));
  report.set(part, "slots", static_cast<double>(rc.slots));
  report.set(part, "variants", static_cast<double>(rc.variants));
  report.set(part, "queue_depth", static_cast<double>(rc.queue_depth));
  report.set(part, "tenant_quota", static_cast<double>(rc.tenant_quota));
  report.set(part, "capacity_swaps_per_sec", capacity);
  report.set(part, "arrival_rate_hz", rate);
  report.set(part, "offered_rate_hz", poisson.load.offered_rate_hz);
  report.set(part, "completed", static_cast<double>(poisson.load.completed));
  report.set(part, "rejected", static_cast<double>(poisson.load.rejected));
  report.set(part, "failed", static_cast<double>(poisson.load.failed));
  report.set(part, "resident_hits",
             static_cast<double>(poisson.load.resident_hits));
  report.set(part, "p50_swap_ns", p50);
  report.set(part, "p99_swap_ns", p99);
  report.set(part, "swaps_per_sec", poisson.load.swaps_per_sec());
  report.set(part, "queue_peak",
             static_cast<double>(poisson.stats.queue_peak));
  report.set(part, "admission_violations",
             static_cast<double>(poisson.admission_violations));
  report.set(part, "quota_violations",
             static_cast<double>(poisson.quota_violations));
  report.set(part, "quota_evictions",
             static_cast<double>(poisson.quota_evictions));

  t.row({part, "capacity", fmt(capacity, 0), "-", "-",
         std::to_string(cap.load.rejected)});
  t.row({part, "poisson 0.8x", fmt(poisson.load.swaps_per_sec(), 0),
         fmt(p50 / 1e6, 2), fmt(p99 / 1e6, 2),
         std::to_string(poisson.load.rejected)});
}

void bench_service() {
  const std::vector<const char*> parts =
      benchutil::smoke_mode() ? std::vector<const char*>{"XCV50"}
                              : std::vector<const char*>{"XCV50", "XCV300"};
  benchutil::JsonReport report;
  benchutil::Table t(
      {"device", "phase", "swaps/s", "p50 ms", "p99 ms", "rejected"});
  for (const char* part : parts) bench_device(part, report, t);
  t.print("RECONFIG SERVICE: multi-tenant swap throughput and latency");
  std::printf(
      "open-loop Poisson arrivals at 0.8x the measured back-to-back "
      "capacity;\nlatency includes queue wait, and rejections are immediate "
      "(bounded admission queue).\n");
  benchutil::add_telemetry_section(report);
  report.write_file("BENCH_service.json");
}

}  // namespace
}  // namespace jpg

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  jpg::bench_service();
  return 0;
}
