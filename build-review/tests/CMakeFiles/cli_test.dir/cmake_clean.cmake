file(REMOVE_RECURSE
  "CMakeFiles/cli_test.dir/cli_test.cpp.o"
  "CMakeFiles/cli_test.dir/cli_test.cpp.o.d"
  "cli_test"
  "cli_test.pdb"
  "cli_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cli_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
