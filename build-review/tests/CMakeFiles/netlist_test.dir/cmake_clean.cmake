file(REMOVE_RECURSE
  "CMakeFiles/netlist_test.dir/netlist_test.cpp.o"
  "CMakeFiles/netlist_test.dir/netlist_test.cpp.o.d"
  "netlist_test"
  "netlist_test.pdb"
  "netlist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
