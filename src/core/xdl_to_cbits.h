// XdlToCBits: "The parser in the tool reads information from these files and
// makes appropriate JBits calls to initialize the design on the target
// device" (paper §3.2.1-3.2.2).
//
// Binds a parsed XDL module design (plus its UCF constraints) onto a fresh
// configuration plane through the CBits API, validating that every placed
// element and every programmed PIP falls inside the floorplanned region.
#pragma once

#include <memory>

#include "core/partial_gen.h"
#include "ucf/ucf_parser.h"
#include "xdl/xdl_parser.h"

namespace jpg {

struct XdlBindResult {
  std::unique_ptr<PlacedDesign> design;
  Region region;
  std::size_t cbits_calls = 0;
};

/// Extracts the module's region from the UCF (the single AREA_GROUP range).
[[nodiscard]] Region region_from_ucf(const UcfData& ucf, const Device& device);

/// Rebuilds the module design from XDL, validates it against the UCF region
/// (every slice inside, every LOC honoured, every pip's tile inside), and
/// programs it into `target` via CBits. `target` should be a zeroed
/// ConfigMemory; the result's design/region feed the partial generator.
[[nodiscard]] XdlBindResult bind_xdl_module(const XdlDesign& xdl,
                                            const UcfData& ucf,
                                            ConfigMemory& target);

}  // namespace jpg
