# Empty compiler generated dependencies file for jpg_support.
# This may be replaced when dependencies are built.
