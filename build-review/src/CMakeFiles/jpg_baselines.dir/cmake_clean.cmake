file(REMOVE_RECURSE
  "CMakeFiles/jpg_baselines.dir/baselines/jbitsdiff.cpp.o"
  "CMakeFiles/jpg_baselines.dir/baselines/jbitsdiff.cpp.o.d"
  "CMakeFiles/jpg_baselines.dir/baselines/parbit.cpp.o"
  "CMakeFiles/jpg_baselines.dir/baselines/parbit.cpp.o.d"
  "libjpg_baselines.a"
  "libjpg_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpg_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
