file(REMOVE_RECURSE
  "libjpg_core.a"
)
