file(REMOVE_RECURSE
  "libjpg_device.a"
)
