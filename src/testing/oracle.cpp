#include "testing/oracle.h"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>

#include "bitstream/bitgen.h"
#include "bitstream/config_port.h"
#include "cbits/cbits.h"
#include "core/jpg.h"
#include "core/relocate.h"
#include "hwif/faulty_board.h"
#include "hwif/sim_board.h"
#include "netlist/drc.h"
#include "sim/bitstream_sim.h"
#include "sim/netlist_sim.h"
#include "ucf/ucf_parser.h"
#include "xdl/xdl_parser.h"
#include "xdl/xdl_writer.h"

namespace jpg::testing {
namespace {

// Control-flow exceptions internal to run_oracle: the first violated (or
// infeasible) property unwinds straight to the top-level catch.
struct PropFail {
  std::string property;
  std::string detail;
};
struct PropInfeasible {
  std::string property;
  std::string detail;
};

std::string join_lines(const std::vector<std::string>& lines) {
  std::ostringstream os;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    os << (i != 0 ? "; " : "") << lines[i];
  }
  return os.str();
}

/// Pad numbers of every placed port of a base design.
std::map<std::string, int> pad_map(const PlacedDesign& design) {
  std::map<std::string, int> m;
  for (std::size_t i = 0; i < design.iob_cells.size(); ++i) {
    m[design.netlist().cell(design.iob_cells[i]).port] =
        design.device().pad_number(design.iob_sites[i]);
  }
  return m;
}

int pad_of(const std::map<std::string, int>& pads, const std::string& port,
           const std::string& property) {
  const auto it = pads.find(port);
  if (it == pads.end()) {
    throw PropFail{property, "port " + port + " has no placed pad"};
  }
  return it->second;
}

/// Drives identical random stimulus into the hardware-model sim and the
/// golden netlist sim and demands pad-for-pad agreement every cycle.
void compare_traces(const std::string& property, BitstreamSim& hw,
                    NetlistSim& golden, const std::map<std::string, int>& pads,
                    int cycles, Rng rng) {
  const std::vector<std::string> ins = golden.netlist().input_ports();
  const std::vector<std::string> outs = golden.netlist().output_ports();
  for (int cyc = 0; cyc < cycles; ++cyc) {
    for (const std::string& p : ins) {
      const bool v = rng.chance(0.5);
      golden.set_input(p, v);
      hw.set_pad(pad_of(pads, p, property), v);
    }
    for (const std::string& p : outs) {
      const bool got = hw.get_pad(pad_of(pads, p, property));
      const bool want = golden.get_output(p);
      if (got != want) {
        throw PropFail{property, "port " + p + " diverges at cycle " +
                                     std::to_string(cyc) + " (device=" +
                                     (got ? "1" : "0") + " golden=" +
                                     (want ? "1" : "0") + ")"};
      }
    }
    golden.step();
    hw.step();
  }
}

/// write -> parse -> write must be a fixpoint (generation 2 == generation 3;
/// the first text may normalise, after that nothing may drift).
void check_xdl_fixpoint(const std::string& property, const std::string& text1) {
  const auto r1 = placed_design_from_xdl(parse_xdl(text1));
  const std::string text2 = write_xdl(*r1);
  const auto r2 = placed_design_from_xdl(parse_xdl(text2));
  const std::string text3 = write_xdl(*r2);
  if (text2 != text3) {
    throw PropFail{property, "write/parse/write is not a fixpoint"};
  }
}

ConfigMemory plane_of(const Device& dev, const PlacedDesign& design) {
  ConfigMemory mem(dev);
  CBits cb(mem);
  design.apply(cb);
  return mem;
}

/// Same-shape region disjoint from `a` (the leftmost one), if the device
/// has room for a second copy.
std::optional<Region> disjoint_band(const Device& dev, const Region& a) {
  const int w = a.width();
  for (int c0 = 0; c0 + w <= dev.cols(); ++c0) {
    const Region b{a.r0, c0, a.r1, c0 + w - 1};
    if (!b.overlaps(a)) return b;
  }
  return std::nullopt;
}

/// CLB columns carrying no configuration at all in `plane`.
std::vector<int> empty_columns(const Device& dev, const ConfigMemory& plane) {
  const FrameMap& fm = dev.frames();
  std::vector<int> cols;
  for (int c = 0; c < dev.cols(); ++c) {
    const int major = fm.major_of_clb_col(c);
    bool empty = true;
    for (int minor = 0; minor < fm.frames_in_major(major) && empty; ++minor) {
      empty = plane.frame(fm.frame_index(major, minor)).popcount() == 0;
    }
    if (empty) cols.push_back(c);
  }
  return cols;
}

void oracle_impl(const GeneratedDesign& design, const OracleOptions& opt,
                 OracleResult& res, std::size_t& checked) {
  const Device& dev = Device::get(design.part);

  // --- drc -------------------------------------------------------------------
  ++checked;
  const AssembledTop base_at = assemble_top(design);
  {
    const DrcReport rep = run_drc(base_at.top);
    if (!rep.ok()) throw PropFail{"drc", join_lines(rep.errors)};
  }

  // --- implement_base --------------------------------------------------------
  ++checked;
  FlowOptions fopt;
  fopt.seed = opt.flow_seed;
  std::unique_ptr<BaseFlowResult> base;
  try {
    base = std::make_unique<BaseFlowResult>(
        run_base_flow(dev, base_at.top, base_at.flow_partitions, fopt));
  } catch (const DeviceError& e) {
    throw PropInfeasible{"implement_base", e.what()};
  } catch (const JpgError& e) {
    throw PropFail{"implement_base", e.what()};
  }
  res.base_xdl = write_xdl(*base->design);

  // --- xdl_roundtrip_base ----------------------------------------------------
  ConfigMemory mem = plane_of(dev, *base->design);
  if (opt.check_xdl) {
    ++checked;
    try {
      check_xdl_fixpoint("xdl_roundtrip_base", res.base_xdl);
      const auto reparsed = placed_design_from_xdl(parse_xdl(res.base_xdl));
      if (!(plane_of(dev, *reparsed) == mem)) {
        throw PropFail{"xdl_roundtrip_base",
                       "re-parsed design configures a different plane"};
      }
    } catch (const JpgError& e) {
      throw PropFail{"xdl_roundtrip_base", e.what()};
    }
  }

  // --- bitgen_roundtrip ------------------------------------------------------
  ++checked;
  const Bitstream base_bit = generate_full_bitstream(mem);
  ConfigMemory loaded(dev);
  try {
    ConfigPort port(loaded);
    port.load(base_bit);
  } catch (const JpgError& e) {
    throw PropFail{"bitgen_roundtrip", e.what()};
  }
  if (!(loaded == mem)) {
    throw PropFail{"bitgen_roundtrip",
                   "ConfigPort-loaded plane differs from BitGen input"};
  }

  // --- extract_sim_base ------------------------------------------------------
  ++checked;
  const std::map<std::string, int> pads = pad_map(*base->design);
  try {
    BitstreamSim hw(loaded);
    NetlistSim golden(base_at.top);
    compare_traces("extract_sim_base", hw, golden, pads, opt.cycles,
                   Rng(opt.stimulus_seed).split(1));
  } catch (const PropFail&) {
    throw;
  } catch (const JpgError& e) {
    throw PropFail{"extract_sim_base", e.what()};
  }

  if (!opt.check_partial || design.partitions.empty()) return;

  // --- partial-swap property family -----------------------------------------
  Jpg tool(base_bit);
  // Per partition: the partial + composed reference of the variant used by
  // the cross-partition and board-level properties (the last variant, which
  // differs from the base content whenever the pool has more than one).
  struct SwapArtifacts {
    Jpg::PartialResult partial;
    ConfigMemory composed;
    std::size_t variant = 0;
  };
  std::vector<std::optional<SwapArtifacts>> swap_art(design.partitions.size());

  for (std::size_t pi = 0; pi < design.partitions.size(); ++pi) {
    const GeneratedPartition& p = design.partitions[pi];
    const std::string tag = "/" + p.name;
    for (std::size_t v = 0; v < p.variants.size(); ++v) {
      const std::string vtag = tag + "_v" + std::to_string(v);

      ++checked;  // module_flow
      ModuleFlowResult mod;
      FlowOptions mopt;
      mopt.seed = opt.flow_seed + 100 * pi + v + 1;
      try {
        mod = run_module_flow(dev, p.variants[v], base->interface_of(p.name),
                              mopt);
      } catch (const DeviceError& e) {
        throw PropInfeasible{"module_flow" + vtag, e.what()};
      } catch (const JpgError& e) {
        throw PropFail{"module_flow" + vtag, e.what()};
      }
      const std::string xdl = write_xdl(*mod.design);

      if (opt.check_xdl) {
        ++checked;
        try {
          check_xdl_fixpoint("xdl_roundtrip_module" + vtag, xdl);
        } catch (const JpgError& e) {
          throw PropFail{"xdl_roundtrip_module" + vtag, e.what()};
        }
      }

      ++checked;  // partial_scoped
      UcfData ucf;
      ucf.area_group_ranges["AG_" + p.name] = p.region;
      Jpg::PartialResult pres;
      try {
        pres = tool.generate_partial_from_text(xdl, write_ucf(ucf, dev));
      } catch (const JpgError& e) {
        throw PropFail{"partial_scoped" + vtag, e.what()};
      }
      const std::vector<int> majors = p.region.clb_majors(dev);
      for (const std::size_t f : pres.frames) {
        const auto addr = dev.frames().address_of_index(f);
        if (std::find(majors.begin(), majors.end(),
                      static_cast<int>(addr.major)) == majors.end()) {
          throw PropFail{"partial_scoped" + vtag,
                         "frame " + std::to_string(f) +
                             " outside region columns"};
        }
      }

      ++checked;  // partial_equals_full
      const ConfigMemory composed =
          tool.generator().compose(plane_of(dev, *mod.design), p.region);
      ConfigMemory plane(dev);
      try {
        ConfigPort port(plane);
        port.load(base_bit);
        port.load(pres.partial);
      } catch (const JpgError& e) {
        throw PropFail{"partial_equals_full" + vtag, e.what()};
      }
      if (!(plane == composed)) {
        throw PropFail{"partial_equals_full" + vtag,
                       "port-loaded plane differs from frame-level compose"};
      }

      ++checked;  // partial_swap_sim
      std::vector<std::size_t> choice(design.partitions.size(), 0);
      choice[pi] = v;
      const AssembledTop gold_at = assemble_top(design, choice);
      try {
        BitstreamSim hw(plane);
        NetlistSim golden(gold_at.top);
        compare_traces("partial_swap_sim" + vtag, hw, golden, pads, opt.cycles,
                       Rng(opt.stimulus_seed).split(2 + pi * 16 + v));
      } catch (const PropFail&) {
        throw;
      } catch (const JpgError& e) {
        throw PropFail{"partial_swap_sim" + vtag, e.what()};
      }

      swap_art[pi] = SwapArtifacts{std::move(pres), composed, v};
    }
  }

  // --- swap_order_independent ------------------------------------------------
  if (design.partitions.size() >= 2 && swap_art[0] && swap_art[1]) {
    ++checked;
    const Bitstream& pa = swap_art[0]->partial.partial;
    const Bitstream& pb = swap_art[1]->partial.partial;
    ConfigMemory ab(dev), ba(dev);
    try {
      ConfigPort port_ab(ab);
      port_ab.load(base_bit);
      port_ab.load(pa);
      port_ab.load(pb);
      ConfigPort port_ba(ba);
      port_ba.load(base_bit);
      port_ba.load(pb);
      port_ba.load(pa);
    } catch (const JpgError& e) {
      throw PropFail{"swap_order_independent", e.what()};
    }
    if (!(ab == ba)) {
      throw PropFail{"swap_order_independent",
                     "final plane depends on partial load order"};
    }
  }

  // --- dynamic_state ---------------------------------------------------------
  std::vector<std::size_t> swap_choice(design.partitions.size(), 0);
  if (opt.check_dynamic_state && swap_art[0]) {
    ++checked;
    swap_choice[0] = swap_art[0]->variant;
    try {
      SimBoard board(dev);
      board.send_config(base_bit.words);
      if (!board.configured()) {
        throw PropFail{"dynamic_state", "board did not configure from base"};
      }
      NetlistSim golden_old(base_at.top);
      Rng rng = Rng(opt.stimulus_seed).split(3);
      const std::vector<std::string> ins = base_at.top.input_ports();
      const std::vector<std::string> outs = base_at.top.output_ports();
      std::map<std::string, bool> last_in;
      const int pre = std::max(1, opt.cycles / 2);
      for (int cyc = 0; cyc < pre; ++cyc) {
        for (const std::string& p : ins) {
          const bool v = rng.chance(0.5);
          golden_old.set_input(p, v);
          board.set_pin(pad_of(pads, p, "dynamic_state"), v);
          last_in[p] = v;
        }
        for (const std::string& p : outs) {
          if (board.get_pin(pad_of(pads, p, "dynamic_state")) !=
              golden_old.get_output(p)) {
            throw PropFail{"dynamic_state", "pre-swap divergence on " + p +
                                                " at cycle " +
                                                std::to_string(cyc)};
          }
        }
        golden_old.step();
        board.step_clock(1);
      }

      // Swap partition u1 live, then track the golden model of the new
      // configuration: the swapped partition's FFs restart at INIT (their
      // columns were rewritten), while every FF outside those columns —
      // static logic AND the other, untouched partitions — carries its
      // state (by cell name — assembly names are stable across variant
      // choices).
      const std::string& swapped = design.partitions[0].name;
      tool.connect(&board);
      tool.download(swap_art[0]->partial.partial);
      const AssembledTop new_at = assemble_top(design, swap_choice);
      NetlistSim golden_new(new_at.top);
      for (CellId id = 0; id < new_at.top.num_cells(); ++id) {
        const Cell& c = new_at.top.cell(id);
        if (c.kind != CellKind::Dff || c.partition == swapped) continue;
        const auto old_id = base_at.top.find_cell(c.name);
        if (old_id.has_value()) {
          golden_new.set_ff_state(id, golden_old.ff_state(*old_id));
        }
      }
      for (const auto& [p, v] : last_in) golden_new.set_input(p, v);
      for (int cyc = 0; cyc < std::max(1, opt.cycles / 2); ++cyc) {
        for (const std::string& p : new_at.top.output_ports()) {
          if (board.get_pin(pad_of(pads, p, "dynamic_state")) !=
              golden_new.get_output(p)) {
            throw PropFail{"dynamic_state", "post-swap divergence on " + p +
                                                " at cycle " +
                                                std::to_string(cyc)};
          }
        }
        for (const std::string& p : ins) {
          const bool v = rng.chance(0.5);
          golden_new.set_input(p, v);
          board.set_pin(pad_of(pads, p, "dynamic_state"), v);
        }
        golden_new.step();
        board.step_clock(1);
      }
      tool.connect(nullptr);
    } catch (const PropFail&) {
      throw;
    } catch (const JpgError& e) {
      throw PropFail{"dynamic_state", e.what()};
    }
  }

  // --- fault_download --------------------------------------------------------
  if (opt.fault_tier && swap_art[0]) {
    ++checked;
    try {
      SimBoard board(dev);
      board.send_config(base_bit.words);
      FaultProfile prof;
      prof.word_flip = 0.02;
      prof.word_drop = 0.005;
      prof.readback_flip = 0.01;
      prof.fault_budget = 6;
      FaultyBoard faulty(board, prof, opt.fault_seed);
      Jpg ftool(base_bit);
      ftool.connect(&faulty);
      const DownloadReport rep =
          ftool.download_verified(swap_art[0]->partial);
      if (rep.status != DownloadStatus::Success) {
        throw PropFail{"fault_download",
                       "verified download did not converge: " + rep.summary()};
      }
      if (!(board.config() == swap_art[0]->composed)) {
        throw PropFail{"fault_download",
                       "board plane differs from the update after a verified "
                       "download"};
      }
    } catch (const PropFail&) {
      throw;
    } catch (const JpgError& e) {
      throw PropFail{"fault_download", e.what()};
    }
  }

  // --- relocation property family --------------------------------------------
  // Four properties over the PbitRelocator (DESIGN.md §5i):
  //   reloc_reject_shape  a geometry-incompatible target is rejected with the
  //                       typed RelocError, never silently mis-relocated;
  //   reloc_reject        a routed module always escapes its region through
  //                       its interface nets, so containment must report
  //                       crossings and relocate() must throw FootprintEscape;
  //   reloc_equivalence   force-relocating to a compatible band B yields a
  //                       stream that port-loads to exactly compose-at-B, and
  //                       every resource (LUTs, muxes) reads back at B what it
  //                       read at A — the resource map agrees with the blit;
  //   reloc_swap_sim      a *contained* (local-logic) module relocated into a
  //                       base-free column leaves the running base design's
  //                       traces untouched — the soundness claim behind the
  //                       containment gate.
  if (opt.check_relocation && swap_art[0]) {
    const PbitRelocator reloc(tool.generator());
    const Region a = design.partitions[0].region;
    const Bitstream& pbit = swap_art[0]->partial.partial;

    ++checked;  // reloc_reject_shape
    {
      // One column wider (or, when flush against the edge, out of bounds):
      // incompatible either way, and both must reject with the typed error.
      Region bad = a;
      ++bad.c1;
      bool typed = false;
      try {
        (void)reloc.relocate(pbit, a, bad);
      } catch (const RelocError&) {
        typed = true;
      } catch (const JpgError& e) {
        throw PropFail{"reloc_reject_shape",
                       std::string("untyped rejection: ") + e.what()};
      }
      if (!typed) {
        throw PropFail{"reloc_reject_shape",
                       "incompatible target accepted: " + bad.to_string()};
      }
      if (reloc.check_shape(a, bad).shape_ok) {
        throw PropFail{"reloc_reject_shape",
                       "check_shape accepts an incompatible target"};
      }
    }

    const std::optional<Region> band = disjoint_band(dev, a);
    if (band) {
      const ConfigMemory decoded = reloc.decode(pbit, a);

      ++checked;  // reloc_reject
      {
        const RelocCompat compat = reloc.check(decoded, a, *band);
        if (compat.contained()) {
          throw PropFail{"reloc_reject",
                         "module with interface routing reported contained"};
        }
        bool typed = false;
        try {
          (void)reloc.relocate(pbit, a, *band);
        } catch (const RelocError& e) {
          if (e.kind() != RelocError::Kind::FootprintEscape) {
            throw PropFail{"reloc_reject",
                           std::string("wrong rejection kind: ") + e.what()};
          }
          typed = true;
        } catch (const JpgError& e) {
          throw PropFail{"reloc_reject",
                         std::string("untyped rejection: ") + e.what()};
        }
        if (!typed) {
          throw PropFail{"reloc_reject",
                         "escaping module relocated without FootprintEscape"};
        }
      }

      ++checked;  // reloc_equivalence
      try {
        RelocOptions force;
        force.require_containment = false;
        const PartialGenResult moved = reloc.relocate(pbit, a, *band, force);
        const ConfigMemory translated = reloc.translate(decoded, a, *band,
                                                        force);
        const ConfigMemory composed_b =
            tool.generator().compose(translated, *band);
        ConfigMemory p1(dev);
        ConfigPort port(p1);
        port.load(base_bit);
        port.load(moved.bitstream);
        if (!(p1 == composed_b)) {
          throw PropFail{"reloc_equivalence",
                         "port-loaded relocated stream differs from "
                         "compose-at-" + band->to_string()};
        }
        // Resource-level invariance: what CBits read at A it must read at
        // the translated tile of B — the deterministic resource->bit map
        // agrees with the frame-window blit.
        const CBits at_a(swap_art[0]->composed);
        const CBits at_b(p1);
        const int dr = band->r0 - a.r0;
        const int dc = band->c0 - a.c0;
        const auto& muxes = dev.fabric().tile_muxes();
        for (int r = a.r0; r <= a.r1; ++r) {
          for (int c = a.c0; c <= a.c1; ++c) {
            const TileCoord t{r, c};
            const TileCoord t2{r + dr, c + dc};
            for (int slice = 0; slice < 2; ++slice) {
              const SliceSite s{r, c, slice};
              const SliceSite s2{r + dr, c + dc, slice};
              if (at_a.get_lut(s, LutSel::F) != at_b.get_lut(s2, LutSel::F) ||
                  at_a.get_lut(s, LutSel::G) != at_b.get_lut(s2, LutSel::G)) {
                throw PropFail{"reloc_equivalence",
                               "LUT content moved wrong at tile (" +
                                   std::to_string(r) + "," +
                                   std::to_string(c) + ")"};
              }
            }
            for (const MuxDef& def : muxes) {
              if (at_a.get_mux(t, def.dest_local) !=
                  at_b.get_mux(t2, def.dest_local)) {
                throw PropFail{"reloc_equivalence",
                               "mux " + local_wire_name(def.dest_local) +
                                   " moved wrong at tile (" +
                                   std::to_string(r) + "," +
                                   std::to_string(c) + ")"};
              }
            }
          }
        }
      } catch (const PropFail&) {
        throw;
      } catch (const JpgError& e) {
        throw PropFail{"reloc_equivalence", e.what()};
      }
    }

    // reloc_swap_sim: needs two base-free columns (module home + target).
    const std::vector<int> free_cols = empty_columns(dev, mem);
    if (free_cols.size() >= 2) {
      ++checked;
      try {
        const Region home{0, free_cols[0], dev.rows() - 1, free_cols[0]};
        const Region target{0, free_cols[1], dev.rows() - 1, free_cols[1]};
        // Local-logic module: LUT contents only, no routing — contained by
        // construction, so the containment gate must let it through.
        ConfigMemory modplane(dev);
        CBits mcb(modplane);
        for (int r = 0; r < dev.rows(); ++r) {
          mcb.set_lut(SliceSite{r, home.c0, 0}, LutSel::F,
                      static_cast<std::uint16_t>(0xA5A5u ^ (r * 257)));
        }
        const PartialGenResult at_home =
            tool.generator().generate(modplane, home);
        const PartialGenResult moved =
            reloc.relocate(at_home.bitstream, home, target);

        SimBoard board(dev);
        board.send_config(base_bit.words);
        board.send_config(moved.bitstream.words);
        const ConfigMemory expected = tool.generator().compose(
            reloc.translate(reloc.decode(at_home.bitstream, home), home,
                            target),
            target);
        if (!(board.config() == expected)) {
          throw PropFail{"reloc_swap_sim",
                         "board plane differs from composed relocation"};
        }
        NetlistSim golden(base_at.top);
        compare_traces("reloc_swap_sim", board.sim(), golden, pads, opt.cycles,
                       Rng(opt.stimulus_seed).split(4));
      } catch (const PropFail&) {
        throw;
      } catch (const JpgError& e) {
        throw PropFail{"reloc_swap_sim", e.what()};
      }
    }
  }
}

}  // namespace

std::string_view oracle_status_name(OracleStatus s) {
  switch (s) {
    case OracleStatus::Pass: return "pass";
    case OracleStatus::Fail: return "FAIL";
    case OracleStatus::Infeasible: return "infeasible";
  }
  return "?";
}

OracleResult run_oracle(const GeneratedDesign& design,
                        const OracleOptions& opt) {
  OracleResult res;
  std::size_t checked = 0;
  try {
    oracle_impl(design, opt, res, checked);
    res.status = OracleStatus::Pass;
  } catch (const PropFail& f) {
    res.status = OracleStatus::Fail;
    res.property = f.property;
    res.detail = f.detail;
  } catch (const PropInfeasible& f) {
    res.status = OracleStatus::Infeasible;
    res.property = f.property;
    res.detail = f.detail;
  } catch (const std::exception& e) {
    res.status = OracleStatus::Fail;
    res.property = "internal";
    res.detail = e.what();
  }
  res.properties_checked = checked;
  return res;
}

}  // namespace jpg::testing
