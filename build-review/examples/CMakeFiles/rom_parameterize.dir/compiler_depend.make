# Empty compiler generated dependencies file for rom_parameterize.
# This may be replaced when dependencies are built.
