// rc_context_switch: the paper's Figure 1 environment.
//
// "The host processor sends design updates to the FPGA": a stream-matching
// service (the string-matching application of the paper's reference [5])
// whose pattern is swapped at run time by downloading partial bitstreams,
// while the rest of the device — a heartbeat counter — keeps operating.
//
// Build & run:  ./build/examples/rc_context_switch
#include <cstdio>

#include "bitstream/bitgen.h"
#include "core/jpg.h"
#include "hwif/sim_board.h"
#include "pnr/flow.h"
#include "scenarios.h"
#include "ucf/ucf_parser.h"
#include "xdl/xdl_writer.h"

using namespace jpg;

int main() {
  const Device& dev = Device::get("XCV50");
  const auto slots = scenarios::fig1_slots(dev);
  const scenarios::SlotDef& slot = slots[0];

  // Phase 1: base design with matcher variant 0 installed.
  auto base_netlist = scenarios::build_base(dev, slots);
  FlowOptions opt;
  opt.seed = 2002;
  const BaseFlowResult base =
      run_base_flow(dev, base_netlist.top, base_netlist.specs, opt);
  ConfigMemory mem(dev);
  CBits cb(mem);
  base.design->apply(cb);
  const Bitstream base_bit = generate_full_bitstream(mem);

  // Phase 2: implement every variant and pre-generate its partial bitstream
  // (the "pre-synthesized design modules" pool of Figure 1).
  Jpg tool(base_bit);
  UcfData ucf;
  ucf.area_group_ranges["AG"] = slot.region;
  const std::string ucf_text = write_ucf(ucf, dev);

  struct Loaded {
    std::string name;
    Bitstream partial;
  };
  std::vector<Loaded> pool;
  for (const auto& v : slot.variants) {
    const ModuleFlowResult mod =
        run_module_flow(dev, v.netlist, base.interface_of(slot.partition));
    const auto res =
        tool.generate_partial_from_text(write_xdl(*mod.design), ucf_text);
    std::printf("module %-8s -> partial bitstream %6zu bytes (%zu frames)\n",
                v.name.c_str(), res.partial.size_bytes(), res.frames.size());
    pool.push_back({v.name, res.partial});
  }
  std::printf("full bitstream for comparison: %zu bytes\n\n",
              base_bit.size_bytes());

  // The board, with the base design configured.
  SimBoard board(dev);
  board.send_config(base_bit.words);

  // Pad lookup.
  auto pad = [&](const std::string& port) {
    for (std::size_t i = 0; i < base.design->iob_cells.size(); ++i) {
      if (base.design->netlist().cell(base.design->iob_cells[i]).port == port) {
        return dev.pad_number(base.design->iob_sites[i]);
      }
    }
    throw JpgError("no pad for port " + port);
  };
  const int p_si = pad("u_match_si");
  const int p_match = pad("u_match_match");
  const int p_hb0 = pad("hb_q0");

  // A data stream containing every matcher's pattern. The matchers compare
  // against a newest-first window, so each pattern is embedded reversed
  // (oldest bit first).
  std::vector<bool> stream;
  for (int rep = 0; rep < 3; ++rep) {
    for (const bool b : {false, true, true, false, true}) stream.push_back(b);
    for (const bool b : {false, true, true, true, false}) stream.push_back(b);
    for (const bool b : {true, false, false, true, true}) stream.push_back(b);
    stream.push_back(false);
  }

  // Context-switch through the matcher pool while streaming.
  for (const Loaded& matcher : pool) {
    const std::uint64_t hb_before = board.cycles();
    const bool hb_pin_before = board.get_pin(p_hb0);
    board.send_config(matcher.partial.words);  // dynamic reconfiguration
    // The heartbeat did not glitch: same cycle count, same output.
    if (board.get_pin(p_hb0) != hb_pin_before || board.cycles() != hb_before) {
      std::printf("ERROR: static logic disturbed by partial load!\n");
      return 1;
    }
    int hits = 0;
    for (const bool bit : stream) {
      board.set_pin(p_si, bit);
      board.step_clock(1);
      if (board.get_pin(p_match)) ++hits;
    }
    std::printf("matcher %-8s scanned %zu bits, %d hits (heartbeat at cycle "
                "%llu, %d rebuilds)\n",
                matcher.name.c_str(), stream.size(), hits,
                static_cast<unsigned long long>(board.cycles()),
                board.rebuilds());
  }
  std::printf("\ncontext-switched %zu hardware modules without ever "
              "reloading the full device.\n",
              pool.size());
  return 0;
}
