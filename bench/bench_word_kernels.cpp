// WORD KERNELS — the BitVector bulk operations under the partial generator's
// warm path (DESIGN.md §5a/§5c): in-place and relocating copy_range,
// diff_in_range and popcount, measured on real frame geometries from XCV50
// up to XCV1000. The kernels are shared-middle word blits (memcpy, 8-wide
// XOR-OR reduction, 64-bit popcount) with masked edges and a funnel-shift
// fallback for misaligned relocation; this bench quantifies each path and
// writes BENCH_word_kernels.json for the driver to scrape.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "device/device.h"
#include "support/bitvec.h"
#include "support/rng.h"

namespace jpg {
namespace {

BitVector noise_frame(std::size_t nbits, std::uint64_t seed) {
  BitVector v(nbits);
  Rng rng(seed);
  for (std::size_t w = 0; w < v.num_words(); ++w) {
    v.set_word(w, static_cast<std::uint32_t>(rng.next()));
  }
  return v;
}

template <typename F>
double ns_per_call(F&& f) {
  const int min_iters = benchutil::smoke_mode() ? 64 : 512;
  const double min_seconds = benchutil::smoke_mode() ? 0.01 : 0.1;
  f();  // warm up
  int iters = 0;
  benchutil::Stopwatch sw;
  do {
    f();
    ++iters;
  } while (iters < min_iters || sw.seconds() < min_seconds);
  return sw.seconds() * 1e9 / iters;
}

void bench_kernels() {
  using benchutil::fmt;
  const std::vector<const char*> parts =
      benchutil::smoke_mode()
          ? std::vector<const char*>{"XCV50"}
          : std::vector<const char*>{"XCV50", "XCV300", "XCV800", "XCV1000"};

  benchutil::JsonReport report;
  benchutil::Table t({"device", "frame bits", "kernel", "ns/frame", "GB/s"});
  for (const char* part : parts) {
    const Device& dev = Device::get(part);
    const std::size_t nbits = dev.frames().frame_words() * 32;
    const double gb = static_cast<double>(nbits) / 8.0;  // bytes per call
    const BitVector src = noise_frame(nbits, 1);
    const BitVector other = noise_frame(nbits, 2);
    BitVector dst = noise_frame(nbits, 3);

    // The partial generator's row-window blit: skip a few bits of header,
    // copy the body. Offsets chosen so head/tail masks and the word middle
    // are all exercised, like FrameMap::row_bit_base windows are.
    const std::size_t pos = 18;
    const std::size_t len = nbits - 40;

    const double inplace_ns =
        ns_per_call([&] { dst.copy_range(src, pos, len); });
    const double reloc_co_ns = ns_per_call(
        [&] { dst.copy_range(src, pos, pos + 64, len - 80); });
    const double reloc_mis_ns = ns_per_call(
        [&] { dst.copy_range(src, pos, pos + 13, len - 40); });
    dst = other;  // equal ranges: diff scans the entire window
    const double diff_ns = ns_per_call([&] {
      benchmark::DoNotOptimize(dst.diff_in_range(other, pos, len));
    });
    const double pop_ns =
        ns_per_call([&] { benchmark::DoNotOptimize(src.popcount()); });

    struct Row {
      const char* kernel;
      const char* key;
      double ns;
    };
    for (const Row& r :
         {Row{"copy_range in-place", "copy_inplace_ns", inplace_ns},
          Row{"copy_range reloc co-aligned", "copy_reloc_aligned_ns",
              reloc_co_ns},
          Row{"copy_range reloc misaligned", "copy_reloc_misaligned_ns",
              reloc_mis_ns},
          Row{"diff_in_range (equal)", "diff_ns", diff_ns},
          Row{"popcount", "popcount_ns", pop_ns}}) {
      t.row({part, std::to_string(nbits), r.kernel, fmt(r.ns, 0),
             fmt(gb / r.ns, 2)});
      report.set(part, r.key, r.ns);
    }
    report.set(part, "frame_bits", static_cast<double>(nbits));
    report.set(part, "misaligned_penalty", reloc_mis_ns / reloc_co_ns);
    report.set(part, "host_cpus",
               static_cast<double>(benchutil::host_cpus()));
  }
  t.print("WORD KERNELS: BitVector bulk ops on frame geometries");
  std::printf("co-aligned relocation and in-place blits ride the memcpy/"
              "vector path; the misaligned\nfunnel-shift fallback is the "
              "price of odd bit offsets (rare in frame composition).\n");
  benchutil::add_telemetry_section(report);
  report.write_file("BENCH_word_kernels.json");
}

}  // namespace
}  // namespace jpg

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  jpg::bench_kernels();
  return 0;
}
