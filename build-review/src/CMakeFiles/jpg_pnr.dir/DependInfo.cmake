
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pnr/flow.cpp" "src/CMakeFiles/jpg_pnr.dir/pnr/flow.cpp.o" "gcc" "src/CMakeFiles/jpg_pnr.dir/pnr/flow.cpp.o.d"
  "/root/repo/src/pnr/packer.cpp" "src/CMakeFiles/jpg_pnr.dir/pnr/packer.cpp.o" "gcc" "src/CMakeFiles/jpg_pnr.dir/pnr/packer.cpp.o.d"
  "/root/repo/src/pnr/placed_design.cpp" "src/CMakeFiles/jpg_pnr.dir/pnr/placed_design.cpp.o" "gcc" "src/CMakeFiles/jpg_pnr.dir/pnr/placed_design.cpp.o.d"
  "/root/repo/src/pnr/placer.cpp" "src/CMakeFiles/jpg_pnr.dir/pnr/placer.cpp.o" "gcc" "src/CMakeFiles/jpg_pnr.dir/pnr/placer.cpp.o.d"
  "/root/repo/src/pnr/router.cpp" "src/CMakeFiles/jpg_pnr.dir/pnr/router.cpp.o" "gcc" "src/CMakeFiles/jpg_pnr.dir/pnr/router.cpp.o.d"
  "/root/repo/src/pnr/timing.cpp" "src/CMakeFiles/jpg_pnr.dir/pnr/timing.cpp.o" "gcc" "src/CMakeFiles/jpg_pnr.dir/pnr/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/jpg_netlist.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/jpg_device.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/jpg_cbits.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/jpg_bitstream.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/jpg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
