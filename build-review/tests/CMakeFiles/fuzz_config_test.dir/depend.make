# Empty dependencies file for fuzz_config_test.
# This may be replaced when dependencies are built.
