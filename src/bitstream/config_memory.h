// ConfigMemory: the device's configuration SRAM plane, frame by frame.
//
// This is the object every tool in the repo ultimately manipulates: bitgen
// serialises it, the configuration port writes into it, CBits pokes resource
// bits in it, JPG diffs two of them, and the bitstream-level simulator
// decodes one back into a circuit.
#pragma once

#include <cstdint>
#include <vector>

#include "device/device.h"
#include "support/bitvec.h"

namespace jpg {

class ConfigMemory {
 public:
  explicit ConfigMemory(const Device& device);

  [[nodiscard]] const Device& device() const { return *device_; }

  [[nodiscard]] std::size_t num_frames() const { return frames_.size(); }
  [[nodiscard]] const BitVector& frame(std::size_t idx) const;
  [[nodiscard]] BitVector& frame(std::size_t idx);

  // --- Resource-bit access ----------------------------------------------------
  [[nodiscard]] bool get_bit(const FrameBit& fb) const;
  void set_bit(const FrameBit& fb, bool v);

  // --- Frame-level operations ---------------------------------------------------
  /// Indices of frames whose content differs from `other` (same device).
  [[nodiscard]] std::vector<std::size_t> diff_frames(
      const ConfigMemory& other) const;

  void copy_frame_from(const ConfigMemory& other, std::size_t idx);

  /// Writes frame `idx` from `frame_words()` packed 32-bit words.
  void write_frame_words(std::size_t idx, const std::uint32_t* words);

  /// Reads frame `idx` into `frame_words()` packed 32-bit words.
  void read_frame_words(std::size_t idx, std::uint32_t* words) const;

  void clear();

  bool operator==(const ConfigMemory& other) const {
    return frames_ == other.frames_;
  }
  bool operator!=(const ConfigMemory& other) const { return !(*this == other); }

  ConfigMemory(const ConfigMemory&) = default;
  ConfigMemory& operator=(const ConfigMemory& other);

 private:
  const Device* device_;
  std::vector<BitVector> frames_;
};

}  // namespace jpg
