// PartialBitstreamGenerator: the heart of JPG.
//
// Given the base design's configuration memory and the configuration of an
// updated sub-module, it composes the frames of the module's region —
// module bits inside the region's rows, base bits everywhere else in those
// columns — and emits a loadable partial bitstream containing only the
// frames that actually change. Because Virtex frames span full columns,
// writing a region always rewrites entire columns; composition from the
// base guarantees the out-of-region rows are rewritten with their *current*
// values, which is what makes the load non-disruptive (paper §2.1, §3).
//
// The hot path is region-scoped: composition materialises only the frames
// owned by the region's majors in a FrameOverlay over the borrowed base
// (never a full-device copy), row windows move as word-level blits, and a
// content-addressed LRU cache short-circuits regeneration when a module
// pool cycles (the Figure-1 serving workload). Batches of updates over
// disjoint majors fan out across ThreadPool::global().
#pragma once

#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "bitstream/bitstream_writer.h"
#include "bitstream/config_memory.h"
#include "bitstream/frame_overlay.h"
#include "device/region.h"
#include "support/telemetry/telemetry.h"

namespace jpg {

struct PartialGenOptions {
  /// false (default): ship every frame of the region's columns. The partial
  /// bitstream is then *state-independent* — it installs the module no
  /// matter which variant currently occupies the region, which is what a
  /// pre-generated module pool (Figure 1) requires, and matches the
  /// "partial bitstreams are subsets of a complete bitstream" model of the
  /// paper (and PARBIT).
  /// true: ship only frames that differ from the tool's base configuration.
  /// Smaller, but only correct when the device is known to hold exactly the
  /// base state (use together with write_onto_base, which keeps the tool's
  /// base in sync). The ablation bench quantifies the trade-off.
  bool diff_only = false;
  bool include_crc = true;
};

struct PartialGenResult {
  Bitstream bitstream;
  std::vector<std::size_t> frames;  ///< linear frame indices written
  std::size_t far_blocks = 0;       ///< contiguous FAR/FDRI runs emitted
  /// Execution-shape audit, filled by generate_batch (a plain generate()
  /// leaves both at their single-threaded defaults): `pool_threads` is the
  /// size of the pool the batch fanned out over, `workers_used` the number
  /// of distinct threads that actually executed updates. Benches record
  /// both so a batch can never claim parallelism while silently running on
  /// one worker. Telemetry only — never part of the output bytes.
  std::size_t pool_threads = 1;
  std::size_t workers_used = 1;
  /// Wall time plus this call's own tallies (frames, far_blocks,
  /// cache_hit); filled by generate(), reset on every cache hit.
  telemetry::StageSnapshot telemetry;
};

/// One independent region update for generate_batch.
struct RegionUpdate {
  const ConfigMemory* module_config = nullptr;
  Region region;
  PartialGenOptions opts;
};

/// Coherent snapshot of the pbit cache: every field is read under the one
/// cache mutex, in the same critical section that mutates them, so
/// `hits + misses == lookups` holds in any snapshot regardless of how many
/// generate()/generate_batch() calls are in flight.
struct PbitCacheStats {
  std::size_t lookups = 0;  ///< cache consultations (hits + misses)
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;  ///< LRU entries dropped (capacity pressure)
  std::size_t entries = 0;
  std::size_t capacity = 0;
  std::size_t pinned = 0;  ///< entries currently held by a PbitLease

  [[nodiscard]] double hit_rate() const {
    return lookups == 0 ? 0.0 : static_cast<double>(hits) /
                                    static_cast<double>(lookups);
  }
};

class PartialBitstreamGenerator;

/// A pinned reference into the pbit cache. While the lease is held the
/// entry cannot be evicted (eviction is deferred until unpin), so spans
/// over the cached bitstream's words stay valid for as long as a streaming
/// download needs them — the resident-pbit swap path sends the cache's own
/// words with zero copies. Move-only; releases (unpins) on destruction.
/// Errors by contract: pinning an already-pinned entry throws, and
/// releasing a lease twice throws (unpin-without-pin). A lease must not
/// outlive its generator.
class PbitLease {
 public:
  PbitLease() = default;
  PbitLease(PbitLease&& other) noexcept;
  PbitLease& operator=(PbitLease&& other) noexcept;
  ~PbitLease();
  PbitLease(const PbitLease&) = delete;
  PbitLease& operator=(const PbitLease&) = delete;

  [[nodiscard]] bool valid() const { return result_ != nullptr; }
  /// Requires valid().
  [[nodiscard]] const PartialGenResult& result() const;
  [[nodiscard]] const Bitstream& bitstream() const;
  /// The resident words, spanning the cache entry directly.
  [[nodiscard]] std::span<const std::uint32_t> words() const;
  [[nodiscard]] const std::vector<std::size_t>& frames() const;

  /// Unpins the entry now (making it evictable again) and invalidates the
  /// lease. Throws JpgError if the lease was already released.
  void release();

 private:
  friend class PartialBitstreamGenerator;
  PbitLease(const PartialBitstreamGenerator* gen, void* entry,
            std::shared_ptr<const PartialGenResult> owned,
            const PartialGenResult* result)
      : gen_(gen), entry_(entry), owned_(std::move(owned)), result_(result) {}

  const PartialBitstreamGenerator* gen_ = nullptr;  ///< null: owning lease
  void* entry_ = nullptr;  ///< opaque cache-entry handle (pinned node)
  std::shared_ptr<const PartialGenResult> owned_;  ///< capacity-0 fallback
  const PartialGenResult* result_ = nullptr;
};

class PartialBitstreamGenerator {
 public:
  /// Entries the pbit cache holds by default; enough for every module pool
  /// in the paper's scenarios (3 regions × 4 variants) with headroom.
  static constexpr std::size_t kDefaultCacheCapacity = 64;

  /// `base` must outlive the generator.
  explicit PartialBitstreamGenerator(
      const ConfigMemory& base, std::size_t cache_capacity = kDefaultCacheCapacity);

  /// Frame-level composition: base memory with the region's rows of the
  /// region's columns replaced by `module_config`'s bits. Full-device
  /// result; the generation paths use compose_overlay instead.
  [[nodiscard]] ConfigMemory compose(const ConfigMemory& module_config,
                                     const Region& region) const;

  /// Region-scoped composition: materialises only the frames of the
  /// region's majors, each a word-level blend of module rows over base.
  [[nodiscard]] FrameOverlay compose_overlay(const ConfigMemory& module_config,
                                             const Region& region) const;

  /// Generates the partial bitstream updating `region` of the base design
  /// to `module_config`'s content. The stream carries IDCODE/FLR checks, a
  /// WCFG sequence of FAR+FDRI runs, CRC, LFRM and DESYNC — and no startup
  /// sequence, since the device keeps running during a dynamic load.
  /// Results are served from the pbit cache when (region, options, content)
  /// was generated before.
  [[nodiscard]] PartialGenResult generate(const ConfigMemory& module_config,
                                          const Region& region,
                                          const PartialGenOptions& opts = {}) const;

  /// Fans independent region updates out over a shared worker pool:
  /// `num_threads == 0` uses ThreadPool::global() (hardware-sized), N > 0
  /// uses ThreadPool::sized(N) — so callers on a small host can still
  /// request a real fan-out. Each worker runs the whole per-update
  /// pipeline off-thread: content hash, cache probe, overlay composition,
  /// stream emission and cache insertion. The regions must own
  /// pairwise-disjoint majors (their frame sets are then disjoint, so the
  /// generations are embarrassingly parallel); overlapping batches are
  /// rejected. Output order matches input order and each element is
  /// byte-identical to a sequential generate() call at any thread count.
  /// Every result carries pool_threads/workers_used for auditing.
  [[nodiscard]] std::vector<PartialGenResult> generate_batch(
      std::span<const RegionUpdate> updates, std::size_t num_threads = 0) const;

  /// Like generate(), but pins the cache entry and returns a lease over it:
  /// the resident words can be streamed to a board (StreamSource segments
  /// span them directly) without the per-swap result copy — and without the
  /// entry being evicted mid-download. Pinning an entry that is already
  /// pinned throws. With caching disabled (capacity 0) the lease owns a
  /// private copy instead, so it is always safe to hold.
  [[nodiscard]] PbitLease generate_leased(
      const ConfigMemory& module_config, const Region& region,
      const PartialGenOptions& opts = {}) const;

  /// Option 2 of the tool (paper §3.2.1): writes the partial update into the
  /// base configuration itself, overwriting it.
  void apply_to_base(ConfigMemory& base, const ConfigMemory& module_config,
                     const Region& region) const;

  /// Generic form: emits a partial bitstream shipping exactly `frames`
  /// (linear indices, any block type) with contents taken from `content`.
  [[nodiscard]] PartialGenResult generate_frames(
      const ConfigMemory& content, const std::vector<std::size_t>& frames,
      const PartialGenOptions& opts = {}) const;

  /// Overlay form of the same: untouched frames stream from the base.
  [[nodiscard]] PartialGenResult generate_frames(
      const FrameOverlay& content, const std::vector<std::size_t>& frames,
      const PartialGenOptions& opts = {}) const;

  /// BRAM content update (block type 1): ships the frames of `side`'s BRAM
  /// column whose content in `content` differs from the base (or all of
  /// them with diff_only = false). Rewriting memory contents without
  /// touching a single logic frame was a flagship partial-reconfiguration
  /// use case of the era.
  [[nodiscard]] PartialGenResult generate_bram_update(
      const ConfigMemory& content, Side side,
      const PartialGenOptions& opts = {}) const;

  [[nodiscard]] const ConfigMemory& base() const { return *base_; }

  // --- pbit cache ----------------------------------------------------------
  /// Capacity 0 disables caching. Shrinking evicts LRU entries.
  void set_cache_capacity(std::size_t capacity);
  void clear_cache();
  [[nodiscard]] PbitCacheStats cache_stats() const;

 private:
  struct CacheKey {
    Region region;
    bool diff_only = false;
    bool include_crc = false;
    std::uint64_t content_hash = 0;  ///< region-scoped base+module content

    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const noexcept;
  };

  /// Shared precondition of compose/generate/generate_batch: the module
  /// plane targets this device and the region is in bounds.
  void check_update(const ConfigMemory& module_config,
                    const Region& region) const;

  [[nodiscard]] std::uint64_t content_hash(const ConfigMemory& module_config,
                                           const Region& region) const;

  [[nodiscard]] PartialGenResult generate_uncached(
      const ConfigMemory& module_config, const Region& region,
      const PartialGenOptions& opts) const;

  template <typename FrameSource>
  [[nodiscard]] PartialGenResult generate_frames_impl(
      const FrameSource& content, const std::vector<std::size_t>& frames,
      const PartialGenOptions& opts) const;

  const ConfigMemory* base_;
  const Device* device_;

  // LRU pbit cache, keyed by (region, options, content hash); front of the
  // list is most recently used. Guarded for generate_batch's worker threads.
  // List nodes have stable addresses, which is what makes a PbitLease's
  // span over a pinned entry safe across unrelated insertions/evictions.
  struct CacheEntry {
    CacheKey key;
    PartialGenResult result;
    bool pinned = false;
  };

  friend class PbitLease;
  /// Unpins the entry behind a lease and applies any eviction that was
  /// deferred while it was pinned. Throws on unpin-without-pin.
  void unpin_internal(void* entry) const;
  /// Evicts LRU entries past capacity, skipping pinned ones (their
  /// eviction is deferred until unpin). Caller holds cache_mutex_.
  void trim_cache_locked() const;

  mutable std::mutex cache_mutex_;
  mutable std::list<CacheEntry> cache_lru_;
  mutable std::unordered_map<CacheKey, std::list<CacheEntry>::iterator,
                             CacheKeyHash>
      cache_index_;
  mutable std::size_t cache_lookups_ = 0;
  mutable std::size_t cache_hits_ = 0;
  mutable std::size_t cache_misses_ = 0;
  mutable std::size_t cache_evictions_ = 0;
  mutable std::size_t cache_pinned_ = 0;
  std::size_t cache_capacity_ = kDefaultCacheCapacity;
};

}  // namespace jpg
