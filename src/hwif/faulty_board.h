// FaultyBoard: an Xhwif decorator that injects configuration faults.
//
// Wraps any board and corrupts the traffic crossing the interface with a
// seeded, reproducible fault model: per-word bit flips, dropped and
// duplicated words, whole-send truncation, transient send/readback
// failures, and bit flips in readback data. This is the adversary the
// verified-download subsystem is tested against — the bitstream-tampering
// threat model applied to the board link rather than the file.
//
// Faults are drawn from an explicit Rng so every campaign scenario replays
// exactly from its seed, and an optional fault budget caps the total number
// of injections: once spent, the board behaves perfectly, which is how
// tests model "transient" trouble that a bounded retry must ride out.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hwif/xhwif.h"
#include "support/rng.h"

namespace jpg {

/// Per-event probabilities of each fault kind. All default to 0 (clean).
struct FaultProfile {
  double send_failure = 0;    ///< per send_config: throw before any word
  double word_flip = 0;       ///< per sent word: flip one random bit
  double word_drop = 0;       ///< per sent word: silently drop it
  double word_dup = 0;        ///< per sent word: send it twice
  double truncate = 0;        ///< per send_config: cut off at a random word
  double readback_failure = 0;  ///< per readback: throw instead of answering
  double readback_flip = 0;     ///< per readback word: flip one random bit
  /// Total injections allowed; < 0 means unlimited. A bounded budget makes
  /// every fault transient: once exhausted the board is fault-free.
  int fault_budget = -1;
};

class FaultyBoard final : public Xhwif {
 public:
  struct Counters {
    std::size_t send_failures = 0;
    std::size_t word_flips = 0;
    std::size_t word_drops = 0;
    std::size_t word_dups = 0;
    std::size_t truncations = 0;
    std::size_t readback_failures = 0;
    std::size_t readback_flips = 0;

    [[nodiscard]] std::size_t total() const {
      return send_failures + word_flips + word_drops + word_dups +
             truncations + readback_failures + readback_flips;
    }
  };

  /// `inner` must outlive the decorator.
  FaultyBoard(Xhwif& inner, const FaultProfile& profile, std::uint64_t seed);

  [[nodiscard]] std::string board_name() const override;
  void send_config(std::span<const std::uint32_t> words) override;
  void abort_config() override;
  [[nodiscard]] bool config_done() override { return inner_->config_done(); }
  [[nodiscard]] std::vector<std::uint32_t> readback(
      std::size_t first, std::size_t nframes) override;
  void readback_into(std::size_t first, std::size_t nframes,
                     std::vector<std::uint32_t>& out) override;
  void capture_state() override;
  void step_clock(int cycles) override;
  void set_pin(int pad, bool value) override;
  [[nodiscard]] bool get_pin(int pad) override;

  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] std::size_t faults_injected() const {
    return counters_.total();
  }
  /// One line per injected fault, in injection order.
  [[nodiscard]] const std::vector<std::string>& fault_log() const {
    return fault_log_;
  }

 private:
  /// True (and spends one unit of budget) when a fault of probability `p`
  /// fires.
  bool roll(double p);
  void note(const std::string& what);

  Xhwif* inner_;
  FaultProfile profile_;
  Rng rng_;
  int budget_left_;
  Counters counters_;
  std::vector<std::string> fault_log_;
  /// Double-buffered staging ring for the word-mutating send path. Streams
  /// that cannot be mutated (no word-level faults configured, or the budget
  /// is spent) are forwarded as the caller's span — zero bytes copied; only
  /// injection itself pays for a staging copy, alternating buffers so a
  /// burst being consumed downstream is never overwritten by the next one.
  std::vector<std::uint32_t> stage_[2];
  std::size_t stage_idx_ = 0;
};

}  // namespace jpg
