file(REMOVE_RECURSE
  "CMakeFiles/pbit_lease_test.dir/pbit_lease_test.cpp.o"
  "CMakeFiles/pbit_lease_test.dir/pbit_lease_test.cpp.o.d"
  "pbit_lease_test"
  "pbit_lease_test.pdb"
  "pbit_lease_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbit_lease_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
