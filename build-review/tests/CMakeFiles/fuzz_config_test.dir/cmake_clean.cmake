file(REMOVE_RECURSE
  "CMakeFiles/fuzz_config_test.dir/fuzz_config_test.cpp.o"
  "CMakeFiles/fuzz_config_test.dir/fuzz_config_test.cpp.o.d"
  "fuzz_config_test"
  "fuzz_config_test.pdb"
  "fuzz_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
