#include "hwif/sim_board.h"

#include "cbits/cbits.h"

#include "support/log.h"

namespace jpg {

SimBoard::SimBoard(const Device& device)
    : device_(&device), memory_(device), port_(memory_) {}

std::string SimBoard::board_name() const {
  return "simboard-" + device_->spec().name;
}

void SimBoard::send_config(std::span<const std::uint32_t> words) {
  port_.load(words);
}

void SimBoard::abort_config() { port_.abort(); }

std::vector<std::uint32_t> SimBoard::readback(std::size_t first,
                                              std::size_t nframes) {
  return port_.readback_frames(first, nframes);
}

void SimBoard::readback_into(std::size_t first, std::size_t nframes,
                             std::vector<std::uint32_t>& out) {
  port_.readback_frames_into(first, nframes, out);
}

void SimBoard::capture_state() {
  rebuild_if_stale();
  CBits cb(memory_);
  for (const ExtractedFf& ff : sim_->circuit().ffs) {
    cb.set_captured_ff(ff.site, ff.le, sim_->sim().ff_state(ff.cell));
  }
  // Capture bits land in the configuration plane (that is how readback can
  // see them), so the decoded circuit cache is unaffected: the extractor
  // never reads capture bits.
}

void SimBoard::rebuild_if_stale() {
  const auto& log = port_.committed_frames();
  if (sim_ != nullptr && frames_seen_ == log.size()) return;

  // Columns whose frames were (re)written since the last rebuild: their FFs
  // restart at INIT; all other FFs carry their state across.
  std::set<int> touched_cols;
  const FrameMap& fm = device_->frames();
  for (std::size_t i = frames_seen_; i < log.size(); ++i) {
    const FrameAddress a = fm.address_of_index(log[i]);
    if (fm.column_kind(static_cast<int>(a.major)) == ColumnKind::Clb) {
      touched_cols.insert(fm.clb_col_of_major(static_cast<int>(a.major)));
    }
  }
  frames_seen_ = log.size();

  std::map<BitstreamSim::FfKey, bool> carried;
  if (sim_ != nullptr) {
    for (auto& [key, value] : sim_->capture_ff_state()) {
      if (touched_cols.count(std::get<1>(key)) == 0) {
        carried.emplace(key, value);
      }
    }
  }
  sim_ = std::make_unique<BitstreamSim>(memory_);
  sim_->restore_ff_state(carried);
  ++rebuilds_;
  // Re-assert externally driven pins; pins the new circuit no longer has
  // simply stop being driven.
  for (const auto& [pin, value] : pin_state_) {
    for (const auto& port : sim_->circuit().netlist.input_ports()) {
      if (port == pin) {
        sim_->sim().set_input(pin, value);
        break;
      }
    }
  }
  JPG_DEBUG("simboard rebuild #" << rebuilds_ << ": "
                                 << sim_->circuit().netlist.num_cells()
                                 << " cells, " << carried.size()
                                 << " FF states carried");
}

BitstreamSim& SimBoard::sim() {
  rebuild_if_stale();
  return *sim_;
}

void SimBoard::step_clock(int cycles) {
  rebuild_if_stale();
  sim_->step_n(cycles);
  cycles_ += static_cast<std::uint64_t>(cycles);
}

void SimBoard::set_pin(int pad, bool value) {
  rebuild_if_stale();
  pin_state_["P" + std::to_string(pad)] = value;
  // Driving a pad the current configuration does not use is legal on a real
  // board (the value just isn't observed); remember it for future circuits.
  if (sim_->has_input_pad(pad)) {
    sim_->set_pad(pad, value);
  }
}

bool SimBoard::get_pin(int pad) {
  rebuild_if_stale();
  return sim_->get_pad(pad);
}

void SimBoard::corrupt_frame_word(std::size_t frame, std::size_t word,
                                  std::uint32_t mask) {
  const FrameMap& fm = device_->frames();
  JPG_REQUIRE(frame < fm.num_frames(), "corrupt_frame_word: frame out of range");
  JPG_REQUIRE(word < fm.frame_words(), "corrupt_frame_word: word out of range");
  std::vector<std::uint32_t> words(fm.frame_words());
  memory_.read_frame_words(frame, words.data());
  words[word] ^= mask;
  memory_.write_frame_words(frame, words.data());
  // The plane changed behind the port's back: drop the cached circuit so
  // the simulator (like readback) sees the corrupted configuration.
  sim_.reset();
}

}  // namespace jpg
