#include "core/jpg.h"

#include "bitstream/bitgen.h"
#include "bitstream/config_port.h"
#include "hwif/burst_engine.h"
#include "support/log.h"
#include "support/telemetry/telemetry.h"

namespace jpg {

Jpg::Jpg(const Bitstream& base_bitstream)
    : device_(&device_for_bitstream(base_bitstream)) {
  base_ = std::make_unique<ConfigMemory>(*device_);
  ConfigPort port(*base_);
  port.load(base_bitstream);
  if (!port.started()) {
    throw BitstreamError(
        "base bitstream did not complete startup; is it a partial "
        "bitstream?");
  }
  gen_ = std::make_unique<PartialBitstreamGenerator>(*base_);
  JPG_INFO("JPG initialised from base bitstream for " << device_->spec().name);
}

Jpg::PartialResult Jpg::generate_partial(const XdlDesign& module_xdl,
                                         const UcfData& ucf,
                                         const PartialGenOptions& opts) {
  JPG_SPAN("jpg.generate_partial");
  // The paper's pipeline: parse XDL -> make CBits calls on a scratch plane.
  ConfigMemory scratch(*device_);
  const XdlBindResult bound = bind_xdl_module(module_xdl, ucf, scratch);

  // Then extract the partial bitstream against the base design.
  PartialGenResult pg = gen_->generate(scratch, bound.region, opts);

  PartialResult result;
  result.partial = std::move(pg.bitstream);
  result.frames = std::move(pg.frames);
  result.far_blocks = pg.far_blocks;
  result.cbits_calls = bound.cbits_calls;
  result.region = bound.region;
  result.floorplan = render_floorplan(
      *device_, {{module_xdl.name, bound.region}}, bound.region);
  return result;
}

Jpg::PartialResult Jpg::generate_partial_from_text(
    std::string_view xdl_text, std::string_view ucf_text,
    const PartialGenOptions& opts) {
  const XdlDesign xdl = parse_xdl(xdl_text, "module.xdl");
  const UcfData ucf = parse_ucf(ucf_text, *device_, "module.ucf");
  return generate_partial(xdl, ucf, opts);
}

void Jpg::write_onto_base(const PartialResult& update) {
  // Loading the partial stream through the configuration port both
  // validates it (framing, CRC, FLR, IDCODE) and mutates the base plane —
  // the "overwrite the original bitstream" behaviour of option 2.
  ConfigPort port(*base_);
  port.load(update.partial);
  if (connected()) {
    download(update.partial);
  }
}

Bitstream Jpg::full_bitstream() const {
  return generate_full_bitstream(*base_);
}

void Jpg::download(const Bitstream& bs) {
  JPG_REQUIRE(connected(), "no XHWIF board connected");
  board_->send_config(bs.words);
}

void Jpg::download(const StreamSource& source, const StreamOptions& opts) {
  JPG_REQUIRE(connected(), "no XHWIF board connected");
  stream_to_board(*board_, source, opts.burst_words);
}

DownloadReport Jpg::download_verified_stream(const StreamSource& source,
                                             const DownloadPolicy& policy,
                                             const StreamOptions& opts) {
  JPG_REQUIRE(connected(), "no XHWIF board connected");
  VerifiedDownloader dl(*board_, *device_, policy);
  dl.assume_board_state(*base_);
  return dl.download_stream(source, opts);
}

DownloadReport Jpg::download_verified(const PartialResult& update,
                                      const DownloadPolicy& policy) {
  JPG_REQUIRE(connected(), "no XHWIF board connected");
  VerifiedDownloader dl(*board_, *device_, policy);
  // The tool's model of the board is the base design it was initialised
  // from (option 2's premise); seed the downloader's mirror with it.
  dl.assume_board_state(*base_);
  return dl.download_partial(update.partial);
}

std::size_t Jpg::verify_via_readback(const PartialResult& update) {
  JPG_REQUIRE(connected(), "no XHWIF board connected");
  // Reconstruct the expected frame contents by replaying the partial
  // stream onto a copy of the tool's base configuration.
  ConfigMemory expected = *base_;
  {
    ConfigPort port(expected);
    port.load(update.partial);
  }
  const std::size_t fw = device_->frames().frame_words();
  // Mask file: the capture bits (minors 16/17, window bits 0..1 of every
  // row) hold live FF state after a CAPTURE and must not participate in
  // configuration comparison — exactly what readback mask files were for.
  // Both sides go through reusable scratch buffers and are masked in place.
  std::vector<std::uint32_t> got;
  std::vector<std::uint32_t> buf(fw);
  std::size_t mismatches = 0;
  for (const std::size_t frame : update.frames) {
    board_->readback_into(frame, 1, got);
    JPG_ASSERT(got.size() == fw);
    mask_capture_words_inplace(*device_, frame, got);
    expected.read_frame_words(frame, buf.data());
    mask_capture_words_inplace(*device_, frame, buf);
    if (got != buf) ++mismatches;
  }
  JPG_INFO("readback verification: " << update.frames.size() << " frames, "
                                     << mismatches << " mismatches");
  return mismatches;
}

}  // namespace jpg
