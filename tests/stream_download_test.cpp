// Burst-boundary torture tests for the streaming configuration datapath:
// StreamSource/BurstCursor chunking invariants, byte-identical planes across
// burst sizes and segment cuts (including zero-length segments), ABORT with
// the port mid-burst, word flips landing exactly on burst seams, mid-stream
// tool-side rejection with rollback, and the fdri-buffer reuse contract
// (cfg.buffer_reallocs stays 0 after warm-up).
#include <gtest/gtest.h>

#include <numeric>

#include "bitstream/bitgen.h"
#include "bitstream/bitstream_writer.h"
#include "core/jpg.h"
#include "hwif/burst_engine.h"
#include "hwif/faulty_board.h"
#include "hwif/sim_board.h"
#include "hwif/stream_source.h"
#include "hwif/verified_downloader.h"
#include "support/telemetry/telemetry.h"

namespace jpg {
namespace {

TEST(StreamSourceTest, TracksSegmentsAndTotal) {
  const std::vector<std::uint32_t> a{1, 2, 3};
  const std::vector<std::uint32_t> b{4, 5};
  StreamSource src;
  EXPECT_TRUE(src.empty());
  src.add(a);
  src.add({});  // zero-length segments are legal
  src.add(b);
  EXPECT_FALSE(src.empty());
  EXPECT_EQ(src.total_words(), 5u);
  EXPECT_EQ(src.segments().size(), 3u);
  EXPECT_EQ(StreamSource::of(a).total_words(), 3u);
}

TEST(BurstCursorTest, BurstsNeverCrossSegmentBoundaries) {
  std::vector<std::uint32_t> a(7);
  std::vector<std::uint32_t> b(5);
  std::vector<std::uint32_t> c(1);
  std::iota(a.begin(), a.end(), 100);
  std::iota(b.begin(), b.end(), 200);
  std::iota(c.begin(), c.end(), 300);
  StreamSource src;
  src.add({});
  src.add(a);
  src.add(b);
  src.add({});
  src.add(c);

  for (const std::size_t burst_words : {1u, 2u, 3u, 4u, 5u, 7u, 64u}) {
    BurstCursor cursor(src);
    std::vector<std::uint32_t> cat;
    EXPECT_FALSE(cursor.done());
    for (auto burst = cursor.next(burst_words); !burst.empty();
         burst = cursor.next(burst_words)) {
      EXPECT_LE(burst.size(), burst_words);
      // Zero-copy: the burst must point into one of the source buffers.
      const auto* p = burst.data();
      const bool in_a = p >= a.data() && p + burst.size() <= a.data() + a.size();
      const bool in_b = p >= b.data() && p + burst.size() <= b.data() + b.size();
      const bool in_c = p >= c.data() && p + burst.size() <= c.data() + c.size();
      EXPECT_TRUE(in_a || in_b || in_c);
      cat.insert(cat.end(), burst.begin(), burst.end());
    }
    EXPECT_TRUE(cursor.done());
    // Concatenating the bursts reproduces the concatenated segments.
    std::vector<std::uint32_t> want;
    want.insert(want.end(), a.begin(), a.end());
    want.insert(want.end(), b.begin(), b.end());
    want.insert(want.end(), c.begin(), c.end());
    EXPECT_EQ(cat, want);
    cursor.rewind();
    EXPECT_FALSE(cursor.done());
    EXPECT_EQ(cursor.next(3).size(), 3u);
  }
}

TEST(BurstCursorTest, RejectsZeroBurstAndExhaustsEmptySource) {
  const StreamSource empty;
  BurstCursor cursor(empty);
  EXPECT_TRUE(cursor.done());
  EXPECT_TRUE(cursor.next(16).empty());
  EXPECT_THROW((void)cursor.next(0), JpgError);
}

class StreamDownloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = &Device::get("XCV50");
    const FrameMap& fm = dev_->frames();
    const std::size_t fw = fm.frame_words();

    base_plane_ = std::make_unique<ConfigMemory>(*dev_);
    for (std::size_t f = 0; f < fm.num_frames(); f += 3) {
      for (std::size_t w = 0; w < fw; w += 2) {
        base_plane_->frame(f).set_word(
            w, 0x3C000000u ^ (static_cast<std::uint32_t>(f) << 8) ^
                   static_cast<std::uint32_t>(w));
      }
    }
    base_bit_ = generate_full_bitstream(*base_plane_);

    first_ = fm.frame_index(4, 1);
    target_plane_ = std::make_unique<ConfigMemory>(*base_plane_);
    for (std::size_t f = 0; f < kUpdateFrames; ++f) {
      for (std::size_t w = 0; w < fw; ++w) {
        target_plane_->frame(first_ + f).set_word(
            w, 0x2B000000u ^ (static_cast<std::uint32_t>(f) << 16) ^
                   static_cast<std::uint32_t>(w));
      }
    }
    BitstreamWriter w(*dev_);
    w.begin();
    w.write_cmd(Command::RCRC);
    w.write_reg(ConfigReg::FLR, static_cast<std::uint32_t>(fw - 1));
    w.write_reg(ConfigReg::IDCODE, dev_->spec().idcode);
    w.write_cmd(Command::WCFG);
    w.write_reg(ConfigReg::FAR, fm.encode_far(fm.address_of_index(first_)));
    w.write_frames(*target_plane_, first_, kUpdateFrames);
    w.write_crc();
    w.write_cmd(Command::LFRM);
    partial_ = w.finish();
  }

  ConfigMemory board_plane(SimBoard& board) const {
    const FrameMap& fm = dev_->frames();
    const auto words = board.readback(0, fm.num_frames());
    ConfigMemory got(*dev_);
    for (std::size_t f = 0; f < fm.num_frames(); ++f) {
      got.write_frame_words(f, words.data() + f * fm.frame_words());
    }
    return got;
  }

  /// Splits `words` into segments cut at every position in `cuts` (plus a
  /// zero-length segment between each pair), exercising seam placement.
  static StreamSource cut_source(std::span<const std::uint32_t> words,
                                 std::span<const std::size_t> cuts) {
    StreamSource src;
    std::size_t off = 0;
    for (const std::size_t cut : cuts) {
      if (cut <= off || cut >= words.size()) continue;
      src.add(words.subspan(off, cut - off));
      src.add({});
      off = cut;
    }
    src.add(words.subspan(off));
    return src;
  }

  static constexpr std::size_t kUpdateFrames = 4;

  const Device* dev_ = nullptr;
  std::unique_ptr<ConfigMemory> base_plane_;
  std::unique_ptr<ConfigMemory> target_plane_;
  Bitstream base_bit_;
  Bitstream partial_;
  std::size_t first_ = 0;
};

TEST_F(StreamDownloadTest, RawBurstDownloadMatchesWholeSend) {
  // Reference: the classic whole-buffer send.
  SimBoard whole(*dev_);
  whole.send_config(base_bit_.words);
  whole.send_config(partial_.words);

  // Cuts at and just inside burst edges for a burst bound of 16, plus an
  // odd segment in the middle of an FDRI payload.
  const std::vector<std::size_t> cuts{15, 16, 17, 33, 100, 101};
  for (const std::size_t burst :
       {std::size_t{1}, std::size_t{3}, std::size_t{16}, std::size_t{512},
        std::size_t{1u << 20}}) {
    SimBoard board(*dev_);
    const BurstStats base_stats =
        stream_to_board(board, StreamSource::of(base_bit_.words), burst);
    EXPECT_EQ(base_stats.words, base_bit_.words.size());
    const StreamSource src = cut_source(partial_.words, cuts);
    const BurstStats stats = stream_to_board(board, src, burst);
    EXPECT_EQ(stats.words, partial_.words.size());
    EXPECT_GE(stats.bursts, (partial_.words.size() + burst - 1) / burst);
    EXPECT_EQ(board_plane(board), board_plane(whole))
        << "burst=" << burst << " diverged from the whole-buffer send";
  }
}

TEST_F(StreamDownloadTest, VerifiedStreamSucceedsAcrossBurstSizesAndOverlap) {
  for (const bool overlap : {false, true}) {
    for (const std::size_t burst :
         {std::size_t{1}, std::size_t{7}, std::size_t{64}, std::size_t{512}}) {
      SimBoard board(*dev_);
      board.send_config(base_bit_.words);
      VerifiedDownloader dl(board, *dev_);
      dl.assume_board_state(*base_plane_);
      const std::vector<std::size_t> cuts{burst - 1, burst, burst + 1,
                                          3 * burst + 1};
      StreamOptions opts;
      opts.burst_words = burst;
      opts.overlap_verify = overlap;
      const DownloadReport rep =
          dl.download_stream(cut_source(partial_.words, cuts), opts);
      EXPECT_TRUE(rep.ok()) << "burst=" << burst << " overlap=" << overlap
                            << ": " << rep.summary();
      EXPECT_EQ(rep.attempts, 1);
      EXPECT_EQ(rep.frames_touched, kUpdateFrames);
      EXPECT_EQ(rep.faults_seen, 0u);
      EXPECT_EQ(board_plane(board), *target_plane_);
      EXPECT_EQ(dl.mirror(), *target_plane_);
    }
  }
}

TEST_F(StreamDownloadTest, EmptySourceVerifiesTheMirrorAndSucceeds) {
  SimBoard board(*dev_);
  board.send_config(base_bit_.words);
  VerifiedDownloader dl(board, *dev_);
  dl.assume_board_state(*base_plane_);
  const DownloadReport rep = dl.download_stream(StreamSource{});
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_EQ(rep.attempts, 0);
  EXPECT_EQ(rep.frames_touched, 0u);
  EXPECT_EQ(board_plane(board), *base_plane_);
}

TEST_F(StreamDownloadTest, MalformedHeadIsRejectedNothingSent) {
  SimBoard board(*dev_);
  board.send_config(base_bit_.words);
  const std::uint64_t words_before = board.config_words();
  VerifiedDownloader dl(board, *dev_);
  dl.assume_board_state(*base_plane_);
  Bitstream bad = partial_;
  bad.words[10] ^= 0x40u;  // CRC-covered register write corrupted
  // Default burst (512) covers the whole stream: the head replay fails
  // before anything is sent.
  const DownloadReport rep = dl.download_stream(StreamSource::of(bad.words));
  EXPECT_EQ(rep.status, DownloadStatus::Failed);
  EXPECT_EQ(rep.attempts, 0);
  EXPECT_NE(rep.error.find("nothing sent"), std::string::npos) << rep.error;
  EXPECT_EQ(board.config_words(), words_before);
  EXPECT_EQ(board_plane(board), *base_plane_);
}

TEST_F(StreamDownloadTest, MidStreamMalformationRollsBack) {
  SimBoard board(*dev_);
  board.send_config(base_bit_.words);
  VerifiedDownloader dl(board, *dev_);
  dl.assume_board_state(*base_plane_);
  Bitstream bad = partial_;
  // Corrupt the stream's tail (the CRC region): with an 8-word burst the
  // head bursts validate and go out before the replay trips on it.
  bad.words[bad.words.size() - 4] ^= 1u;
  StreamOptions opts;
  opts.burst_words = 8;
  const DownloadReport rep = dl.download_stream(StreamSource::of(bad.words),
                                                opts);
  EXPECT_EQ(rep.status, DownloadStatus::RolledBack) << rep.summary();
  EXPECT_NE(rep.error.find("mid-stream"), std::string::npos) << rep.error;
  // Two-state invariant: the board is back on the pre-update plane.
  EXPECT_EQ(board_plane(board), *base_plane_);
  EXPECT_EQ(dl.mirror(), *base_plane_);
}

TEST_F(StreamDownloadTest, AbortUnsticksAPortLeftMidBurst) {
  SimBoard board(*dev_);
  board.send_config(base_bit_.words);
  // Strand the port mid-FDRI-payload: a prefix cut inside the frame data.
  board.send_config(
      std::span<const std::uint32_t>(partial_.words).first(40));
  VerifiedDownloader dl(board, *dev_);
  dl.assume_board_state(*base_plane_);
  StreamOptions opts;
  opts.burst_words = 16;
  const DownloadReport rep =
      dl.download_stream(StreamSource::of(partial_.words), opts);
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_EQ(board_plane(board), *target_plane_);
}

/// Flips one bit of the first word of send_config call `nth` (0-based) —
/// a deterministic fault landing exactly on a burst seam.
class SeamFlipBoard final : public Xhwif {
 public:
  SeamFlipBoard(Xhwif& inner, int nth) : inner_(&inner), nth_(nth) {}
  [[nodiscard]] std::string board_name() const override {
    return "seamflip(" + inner_->board_name() + ")";
  }
  void send_config(std::span<const std::uint32_t> words) override {
    if (calls_++ == nth_ && !words.empty()) {
      std::vector<std::uint32_t> copy(words.begin(), words.end());
      copy[0] ^= 1u << 3;
      ++flips_;
      inner_->send_config(copy);
      return;
    }
    inner_->send_config(words);
  }
  void abort_config() override { inner_->abort_config(); }
  [[nodiscard]] bool config_done() override { return inner_->config_done(); }
  [[nodiscard]] std::vector<std::uint32_t> readback(
      std::size_t first, std::size_t nframes) override {
    return inner_->readback(first, nframes);
  }
  void capture_state() override { inner_->capture_state(); }
  void step_clock(int cycles) override { inner_->step_clock(cycles); }
  void set_pin(int pad, bool value) override { inner_->set_pin(pad, value); }
  [[nodiscard]] bool get_pin(int pad) override { return inner_->get_pin(pad); }
  [[nodiscard]] int flips() const { return flips_; }

 private:
  Xhwif* inner_;
  int nth_;
  int calls_ = 0;
  int flips_ = 0;
};

TEST_F(StreamDownloadTest, WordFlipOnBurstSeamIsRepaired) {
  // Flip the first word of the 4th burst of the update stream (call 0 is
  // the base download in this setup? no — the base goes over the SimBoard
  // directly, so call 3 is the 4th burst of the streamed update).
  for (const int nth : {0, 1, 3}) {
    SimBoard board(*dev_);
    board.send_config(base_bit_.words);
    SeamFlipBoard seam(board, nth);
    DownloadPolicy policy;
    policy.max_attempts = 3;
    VerifiedDownloader dl(seam, *dev_, policy);
    dl.assume_board_state(*base_plane_);
    StreamOptions opts;
    opts.burst_words = 16;
    const DownloadReport rep =
        dl.download_stream(StreamSource::of(partial_.words), opts);
    EXPECT_TRUE(rep.ok()) << "nth=" << nth << ": " << rep.summary();
    EXPECT_EQ(seam.flips(), 1) << "nth=" << nth;
    EXPECT_EQ(board_plane(board), *target_plane_) << "nth=" << nth;
  }
}

TEST_F(StreamDownloadTest, FaultyLinkStreamingConvergesWithRepairBudget) {
  SimBoard board(*dev_);
  board.send_config(base_bit_.words);
  FaultProfile profile;
  profile.word_flip = 1.0;
  profile.fault_budget = 1;
  FaultyBoard faulty(board, profile, 77);
  DownloadPolicy policy;
  policy.max_attempts = 3;
  VerifiedDownloader dl(faulty, *dev_, policy);
  dl.assume_board_state(*base_plane_);
  StreamOptions opts;
  opts.burst_words = 32;
  const DownloadReport rep =
      dl.download_stream(StreamSource::of(partial_.words), opts);
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_EQ(faulty.faults_injected(), 1u);
  EXPECT_EQ(board_plane(board), *target_plane_);
}

// Regression: once a send fault latched `send_failed`, the loop kept
// crediting the (near-zero) window of every skipped send as hidden
// validation time, deflating cfg.stream_overlap_ns. After the fix only
// bursts that actually went out cleanly contribute overlap credit — with
// the very first send faulted, the whole stream must report exactly zero.
TEST_F(StreamDownloadTest, NoOverlapCreditAfterSendFault) {
  SimBoard board(*dev_);
  board.send_config(base_bit_.words);
  FaultProfile profile;
  profile.send_failure = 1.0;  // first send_config throws...
  profile.fault_budget = 1;    // ...then the link is clean (for the repair)
  FaultyBoard faulty(board, profile, 19);
  VerifiedDownloader dl(faulty, *dev_, DownloadPolicy{});
  dl.assume_board_state(*base_plane_);
  StreamOptions opts;
  opts.burst_words = 16;  // many bursts, all skipped after the fault
  opts.overlap_verify = true;
  const DownloadReport rep =
      dl.download_stream(StreamSource::of(partial_.words), opts);
  // Nothing reached the board in the streamed phase; the repair stream
  // rewrites every touched frame over the now-clean link.
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_GE(rep.faults_seen, 1u);
  EXPECT_EQ(rep.telemetry.counter("stream_overlap_ns"), 0u);
  EXPECT_EQ(board_plane(board), *target_plane_);
}

TEST_F(StreamDownloadTest, JpgFacadeStreamsALeasedPbit) {
  Jpg tool(base_bit_);
  SimBoard board(*dev_);
  board.send_config(base_bit_.words);
  tool.connect(&board);

  // Build a module plane for a region and lease its cached pbit; the
  // streamed words are the cache's own (zero-copy), wrapped as one segment.
  const Region region{0, 6, dev_->rows() - 1, 7};
  ConfigMemory module(*dev_);
  const FrameMap& fm = dev_->frames();
  for (const int major : region.clb_majors(*dev_)) {
    for (int minor = 0; minor < fm.frames_in_major(major); ++minor) {
      const std::size_t idx = fm.frame_index(major, minor);
      for (std::size_t w = 0; w < fm.frame_words(); ++w) {
        module.frame(idx).set_word(
            w, 0x0D000000u ^ static_cast<std::uint32_t>(idx * 31 + w));
      }
    }
  }
  const PbitLease lease = tool.generator().generate_leased(module, region);
  ASSERT_TRUE(lease.valid());
  const DownloadReport rep =
      tool.download_verified_stream(StreamSource::of(lease.words()));
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_EQ(tool.generator().cache_stats().pinned, 1u);

  // The fire-and-forget path lands the same plane.
  SimBoard board2(*dev_);
  board2.send_config(base_bit_.words);
  Jpg tool2(base_bit_);
  tool2.connect(&board2);
  tool2.download(StreamSource::of(lease.words()));
  EXPECT_EQ(board_plane(board), board_plane(board2));
}

#if JPG_TELEMETRY_ENABLED
TEST_F(StreamDownloadTest, FdriBufferDoesNotReallocateAfterWarmup) {
  SimBoard board(*dev_);
  // Warm-up: the port's FDRI buffer is reserved for a full-plane payload
  // at construction, so even the first load must not regrow it.
  const std::uint64_t before = telemetry::MetricsRegistry::global()
                                   .snapshot()
                                   .counter("cfg.buffer_reallocs");
  board.send_config(base_bit_.words);
  for (int i = 0; i < 3; ++i) board.send_config(partial_.words);
  board.send_config(base_bit_.words);
  const std::uint64_t after = telemetry::MetricsRegistry::global()
                                  .snapshot()
                                  .counter("cfg.buffer_reallocs");
  EXPECT_EQ(after, before);
}
#endif  // JPG_TELEMETRY_ENABLED

}  // namespace
}  // namespace jpg
