// RUNTIME ACCELERATOR SCHEDULER — task-graph workloads dispatched through
// the AcceleratorScheduler over the uniform-socket fixture. Two phases per
// device:
//
//   locality   a hot workload (one kernel, single-variant pools) where the
//              placement ladder should land on rung 1 almost always after
//              the cold start — measures the swap-avoidance hit rate
//   mixed      seeded random task graphs across the full kernel library —
//              measures sustained node throughput and queue-wait percentiles
//
// Emits BENCH_sched.json with node throughput, swap-avoidance hit rate,
// queue-wait p50/p99 and the gate fields the `sched` CI configuration
// asserts on: locality_reuse_rate (> 0.5), dep_violations (must be 0) and
// admission_violations (queue growth beyond the configured depth — 0).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sched/accel_scheduler.h"
#include "sched/task_graph.h"
#include "support/rng.h"

namespace jpg::sched {
namespace {

struct PhaseResult {
  SchedStats stats;
  ServiceStats svc;
  std::vector<std::uint64_t> queue_waits_ns;
  double nodes_per_sec = 0;
  std::size_t nodes = 0;
};

std::uint64_t percentile(std::vector<std::uint64_t> v, int p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t idx =
      std::min(v.size() - 1, (v.size() * static_cast<std::size_t>(p)) / 100);
  return v[idx];
}

PhaseResult run_phase(const SchedFixture& fixture,
                      const std::vector<TaskGraph>& graphs) {
  SchedConfig cfg;
  cfg.workers = 3;
  AcceleratorScheduler sched(fixture, cfg);
  PhaseResult out;
  benchutil::Stopwatch sw;
  std::vector<AppTicket> tickets;
  tickets.reserve(graphs.size());
  for (const TaskGraph& g : graphs) tickets.push_back(sched.submit(g));
  for (AppTicket& t : tickets) {
    const AppReport rep = t.report.get();
    for (const NodeResult& nr : rep.nodes) {
      out.queue_waits_ns.push_back(nr.queue_wait_ns);
      ++out.nodes;
    }
  }
  const double secs = sw.seconds();
  sched.shutdown(true);
  out.stats = sched.stats();
  out.svc = sched.service().stats();
  out.nodes_per_sec = secs > 0 ? static_cast<double>(out.nodes) / secs : 0;
  return out;
}

/// The locality workload: every node wants the same kernel with a
/// single-variant pool, chained so slots are revisited steadily.
std::vector<TaskGraph> locality_workload(std::size_t apps,
                                         std::size_t nodes_per_app) {
  std::vector<TaskGraph> graphs;
  for (std::size_t a = 0; a < apps; ++a) {
    TaskGraph g;
    g.app = "hot" + std::to_string(a);
    for (std::size_t i = 0; i < nodes_per_app; ++i) {
      TaskNode n;
      n.name = "n" + std::to_string(i);
      n.kernel = "nrzi";
      n.pool = {0};
      n.stimulus_seed = a * 1000 + i + 1;
      if (i > 0) n.preds = {i - 1};
      g.nodes.push_back(std::move(n));
    }
    graphs.push_back(std::move(g));
  }
  return graphs;
}

std::vector<TaskGraph> mixed_workload(const SchedFixture& fixture,
                                      std::size_t apps, std::uint64_t seed) {
  TaskGraphOptions opt;
  opt.num_impls = fixture.impls_per_kernel();
  Rng rng(seed);
  std::vector<TaskGraph> graphs;
  for (std::size_t a = 0; a < apps; ++a) {
    graphs.push_back(random_task_graph(rng, fixture.kernels(), opt,
                                       "app" + std::to_string(a)));
  }
  return graphs;
}

void bench_device(const char* part, benchutil::JsonReport& report,
                  benchutil::Table& t) {
  using benchutil::fmt;
  const bool smoke = benchutil::smoke_mode();
  const SchedFixture& fixture = SchedFixture::shared(part);

  const PhaseResult hot = run_phase(
      fixture, locality_workload(smoke ? 3 : 8, smoke ? 8 : 24));
  const PhaseResult mixed = run_phase(
      fixture, mixed_workload(fixture, smoke ? 6 : 24, 29));

  const double reuse_rate = hot.stats.reuse_rate();
  const std::uint64_t dep_violations =
      hot.stats.dep_violations + mixed.stats.dep_violations;
  const std::uint64_t admission_violations =
      (hot.svc.queue_peak > hot.svc.submitted ? 1 : 0) +
      (mixed.svc.queue_peak > mixed.svc.submitted ? 1 : 0);

  report.set(part, "host_cpus", static_cast<double>(benchutil::host_cpus()));
  report.set(part, "locality_nodes", static_cast<double>(hot.nodes));
  report.set(part, "locality_nodes_per_sec", hot.nodes_per_sec);
  report.set(part, "locality_reuse_rate", reuse_rate);
  report.set(part, "locality_reuse",
             static_cast<double>(hot.stats.placements_reuse));
  report.set(part, "locality_relocated",
             static_cast<double>(hot.stats.placements_relocated));
  report.set(part, "locality_cold",
             static_cast<double>(hot.stats.placements_cold));
  report.set(part, "mixed_nodes", static_cast<double>(mixed.nodes));
  report.set(part, "mixed_nodes_per_sec", mixed.nodes_per_sec);
  report.set(part, "mixed_reuse_rate", mixed.stats.reuse_rate());
  report.set(part, "mixed_queue_wait_p50_ns",
             static_cast<double>(percentile(mixed.queue_waits_ns, 50)));
  report.set(part, "mixed_queue_wait_p99_ns",
             static_cast<double>(percentile(mixed.queue_waits_ns, 99)));
  report.set(part, "swap_retries",
             static_cast<double>(hot.stats.swap_retries +
                                 mixed.stats.swap_retries));
  report.set(part, "dep_violations", static_cast<double>(dep_violations));
  report.set(part, "admission_violations",
             static_cast<double>(admission_violations));

  t.row({part, "locality", fmt(hot.nodes_per_sec, 0), fmt(reuse_rate, 3),
         std::to_string(hot.stats.placements_cold)});
  t.row({part, "mixed", fmt(mixed.nodes_per_sec, 0),
         fmt(mixed.stats.reuse_rate(), 3),
         std::to_string(mixed.stats.placements_cold)});
}

void bench_sched() {
  const std::vector<const char*> parts =
      benchutil::smoke_mode() ? std::vector<const char*>{"XCV50"}
                              : std::vector<const char*>{"XCV50", "XCV300"};
  benchutil::JsonReport report;
  benchutil::Table t({"device", "phase", "nodes/s", "reuse", "cold"});
  for (const char* part : parts) bench_device(part, report, t);
  t.print("ACCELERATOR SCHEDULER: task throughput and swap avoidance");
  std::printf(
      "locality = one hot kernel, chained nodes (swap avoidance after the "
      "cold start);\nmixed = random task graphs over the full kernel "
      "library; queue wait is ready->dispatch.\n");
  benchutil::add_telemetry_section(report);
  report.write_file("BENCH_sched.json");
}

}  // namespace
}  // namespace jpg::sched

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  jpg::sched::bench_sched();
  return 0;
}
