// Word-level kernels for the frame blit/diff warm path.
//
// BitVector's bulk operations spend almost all of their time on runs of
// whole 32-bit words between a masked head and tail word. These kernels
// are that inner loop, written so the compiler's auto-vectorizer turns
// them into SIMD (SSE2/NEON) without any intrinsics:
//
//   * copy_words     — straight std::memcpy, which libc already ships as a
//                      wide vectorized copy on every target we build for;
//   * words_differ   — 8-words-per-block XOR/OR reduction over __restrict
//                      pointers (no cross-iteration dependence, so GCC and
//                      Clang emit packed compares + a single branch per
//                      block) with early exit at block granularity and a
//                      scalar tail;
//   * popcount_words — 64-bit-at-a-time std::popcount with a 32-bit tail.
//
// All three are pure functions of their inputs with scalar semantics — the
// vector forms are bit-exact, so outputs stay byte-identical whether or
// not the compiler vectorizes them.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace jpg::kernels {

/// Copies `n` whole 32-bit words. Overlap is not supported.
inline void copy_words(std::uint32_t* dst, const std::uint32_t* src,
                       std::size_t n) {
  if (n != 0) std::memcpy(dst, src, n * sizeof(std::uint32_t));
}

/// True iff any of `n` whole words differs between `a` and `b`.
inline bool words_differ(const std::uint32_t* __restrict a,
                         const std::uint32_t* __restrict b, std::size_t n) {
  std::size_t i = 0;
  // Block reduction: accumulate XORs branch-free so the 8-word body
  // vectorizes, then test once per block (frames are usually identical or
  // differ early, so the early exit matters for the diff_only scan).
  for (; i + 8 <= n; i += 8) {
    std::uint32_t acc = 0;
    for (unsigned k = 0; k < 8; ++k) acc |= a[i + k] ^ b[i + k];
    if (acc != 0) return true;
  }
  for (; i < n; ++i) {
    if (a[i] != b[i]) return true;
  }
  return false;
}

/// Population count over `n` whole words, two words at a time.
inline std::size_t popcount_words(const std::uint32_t* words, std::size_t n) {
  std::size_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    std::uint64_t pair;
    std::memcpy(&pair, words + i, sizeof(pair));
    total += static_cast<std::size_t>(std::popcount(pair));
  }
  if (i < n) total += static_cast<std::size_t>(std::popcount(words[i]));
  return total;
}

}  // namespace jpg::kernels
