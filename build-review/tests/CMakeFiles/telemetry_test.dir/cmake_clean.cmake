file(REMOVE_RECURSE
  "CMakeFiles/telemetry_test.dir/telemetry_test.cpp.o"
  "CMakeFiles/telemetry_test.dir/telemetry_test.cpp.o.d"
  "telemetry_test"
  "telemetry_test.pdb"
  "telemetry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
