// Golden-digest regression corpus: full and partial bitstreams for the
// example flow on {XCV50, XCV300} × seeds are regenerated from scratch and
// their FNV-1a digests compared against tests/golden/digests.txt. Any
// change to packing, placement, routing, CBits translation or bitstream
// framing that alters a single emitted word shows up as a digest mismatch.
//
// Re-blessing after an *intentional* output change is one command:
//
//   cd build && ctest -C rebless -R golden_rebless
//
// which reruns this suite with JPG_GOLDEN_REBLESS=1 and rewrites
// digests.txt in the source tree (review the diff like any other change).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bitstream/bitgen.h"
#include "cbits/cbits.h"
#include "core/jpg.h"
#include "netlib/generators.h"
#include "pnr/flow.h"
#include "ucf/ucf_parser.h"
#include "xdl/xdl_writer.h"

#ifndef JPG_GOLDEN_DIR
#error "JPG_GOLDEN_DIR must point at tests/golden"
#endif

namespace jpg {
namespace {

std::uint64_t fnv1a(const std::vector<std::uint32_t>& words) {
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint32_t w : words) {
    h ^= w;
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

struct GoldenCase {
  std::string part;
  std::uint64_t seed;
  Region region(const Device& dev) const {
    // A 4-column CLB region clear of the clock column, full height (the
    // frame-span rule); further right on the larger part.
    const int c0 = part == "XCV50" ? 6 : 10;
    return Region{0, c0, dev.rows() - 1, c0 + 3};
  }
};

const std::vector<GoldenCase>& cases() {
  static const std::vector<GoldenCase> kCases = {
      {"XCV50", 11}, {"XCV50", 23}, {"XCV300", 11}, {"XCV300", 23}};
  return kCases;
}

/// Runs the full two-phase example flow for one case and returns its named
/// digests: the complete base bitstream and a partial for each of two
/// module variants (different logic, same interface).
std::map<std::string, std::uint64_t> compute_case(const GoldenCase& gc) {
  const Device& dev = Device::get(gc.part);
  const Region region = gc.region(dev);
  const std::string tag = gc.part + "/s" + std::to_string(gc.seed);

  Netlist top("golden_base");
  const auto merged = top.merge_module(netlib::make_nrz_encoder(), "u1");
  PartitionSpec spec;
  spec.name = "u1";
  spec.region = region;
  for (const auto& [port, net] : merged.inputs) {
    top.add_ibuf("ib_" + port, port, net);
    spec.input_ports.emplace_back(port, net);
  }
  for (const auto& [port, net] : merged.outputs) {
    top.add_obuf("ob_" + port, port, net);
    spec.output_ports.emplace_back(port, net);
  }
  FlowOptions opt;
  opt.seed = gc.seed;
  const BaseFlowResult base = run_base_flow(dev, top, {spec}, opt);

  ConfigMemory mem(dev);
  CBits cb(mem);
  base.design->apply(cb);
  const Bitstream full = generate_full_bitstream(mem);

  std::map<std::string, std::uint64_t> digests;
  digests[tag + "/full"] = fnv1a(full.words);

  // Delay-register variant: same {d -> nrz} interface, different logic.
  Netlist delay("var_delay");
  {
    const NetId d = delay.add_net("d");
    const NetId q1 = delay.add_net("q1");
    const NetId q2 = delay.add_net("q2");
    delay.add_ibuf("ib_d", "d", d);
    delay.add_dff("ff1", d, q1);
    delay.add_dff("ff2", q1, q2);
    delay.add_obuf("ob_nrz", "nrz", q2);
  }
  Jpg tool(full);
  std::vector<Netlist> variants;
  variants.push_back(netlib::make_nrz_encoder());
  variants.push_back(std::move(delay));
  int vi = 0;
  for (const Netlist& mod : variants) {
    const ModuleFlowResult impl =
        run_module_flow(dev, mod, base.interface_of("u1"), opt);
    UcfData ucf;
    ucf.area_group_ranges["AG_u1"] = region;
    const auto res = tool.generate_partial_from_text(write_xdl(*impl.design),
                                                     write_ucf(ucf, dev));
    digests[tag + "/partial" + std::to_string(vi++)] =
        fnv1a(res.partial.words);
  }
  return digests;
}

std::string digests_path() {
  return std::string(JPG_GOLDEN_DIR) + "/digests.txt";
}

std::map<std::string, std::uint64_t> load_recorded() {
  std::map<std::string, std::uint64_t> rec;
  std::ifstream in(digests_path());
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    std::string name, hex;
    if (is >> name >> hex) {
      rec[name] = std::strtoull(hex.c_str(), nullptr, 16);
    }
  }
  return rec;
}

class GoldenCorpus : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenCorpus, DigestsMatchRecorded) {
  const auto recorded = load_recorded();
  ASSERT_FALSE(recorded.empty())
      << digests_path() << " missing or empty; run: ctest -C rebless -R "
      << "golden_rebless";
  for (const auto& [name, digest] : compute_case(GetParam())) {
    const auto it = recorded.find(name);
    ASSERT_NE(it, recorded.end()) << "no recorded digest for " << name;
    EXPECT_EQ(hex16(digest), hex16(it->second))
        << name << " diverged from the golden corpus; if intentional, "
        << "re-bless with: ctest -C rebless -R golden_rebless";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Parts, GoldenCorpus, ::testing::ValuesIn(cases()),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      return info.param.part + "s" + std::to_string(info.param.seed);
    });

TEST(GoldenCorpusNegative, FrameByteFlipIsDetected) {
  // The corpus must actually bite: perturbing one frame byte of a
  // regenerated stream has to break the digest comparison.
  const GoldenCase gc = cases().front();
  const auto recorded = load_recorded();
  const std::string name = gc.part + "/s" + std::to_string(gc.seed) + "/full";
  const auto it = recorded.find(name);
  if (it == recorded.end()) GTEST_SKIP() << "corpus not blessed yet";

  const Device& dev = Device::get(gc.part);
  Netlist top("golden_base");
  const auto merged = top.merge_module(netlib::make_nrz_encoder(), "u1");
  PartitionSpec spec;
  spec.name = "u1";
  spec.region = gc.region(dev);
  for (const auto& [port, net] : merged.inputs) {
    top.add_ibuf("ib_" + port, port, net);
    spec.input_ports.emplace_back(port, net);
  }
  for (const auto& [port, net] : merged.outputs) {
    top.add_obuf("ob_" + port, port, net);
    spec.output_ports.emplace_back(port, net);
  }
  FlowOptions opt;
  opt.seed = gc.seed;
  const BaseFlowResult base = run_base_flow(dev, top, {spec}, opt);
  ConfigMemory mem(dev);
  CBits cb(mem);
  base.design->apply(cb);
  Bitstream full = generate_full_bitstream(mem);
  ASSERT_EQ(hex16(fnv1a(full.words)), hex16(it->second));

  // Flip one byte in the middle of the stream — FDRI frame payload
  // territory — and the digest must diverge.
  full.words[full.words.size() / 2] ^= 0x00010000u;
  EXPECT_NE(hex16(fnv1a(full.words)), hex16(it->second));
}

// Rebless entry point: rewrites digests.txt from the current tree when
// JPG_GOLDEN_REBLESS=1 (the golden_rebless ctest wires the variable up).
TEST(GoldenRebless, RewriteDigests) {
  if (std::getenv("JPG_GOLDEN_REBLESS") == nullptr) {
    GTEST_SKIP() << "set JPG_GOLDEN_REBLESS=1 (or run: ctest -C rebless -R "
                 << "golden_rebless) to re-bless the corpus";
  }
  std::map<std::string, std::uint64_t> all;
  for (const GoldenCase& gc : cases()) {
    for (const auto& [name, digest] : compute_case(gc)) {
      all[name] = digest;
    }
  }
  std::ofstream out(digests_path());
  ASSERT_TRUE(out) << "cannot write " << digests_path();
  out << "# FNV-1a digests of regenerated bitstreams; re-bless with:\n"
      << "#   ctest -C rebless -R golden_rebless\n";
  for (const auto& [name, digest] : all) {
    out << name << " " << hex16(digest) << "\n";
  }
  std::printf("re-blessed %zu digests into %s\n", all.size(),
              digests_path().c_str());
}

}  // namespace
}  // namespace jpg
