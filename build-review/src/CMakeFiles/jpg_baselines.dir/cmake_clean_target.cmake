file(REMOVE_RECURSE
  "libjpg_baselines.a"
)
