// Unit tests for PartialBitstreamGenerator: frame composition (including
// rectangular, non-full-height regions), FAR-run coalescing, CRC options,
// and the non-disruptiveness property at the bit level.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "bitstream/bitstream_reader.h"
#include "bitstream/config_port.h"
#include "core/partial_gen.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace jpg {
namespace {

class PartialGenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = &Device::get("XCV50");
    base_ = std::make_unique<ConfigMemory>(*dev_);
    module_ = std::make_unique<ConfigMemory>(*dev_);
    // Fill both planes with distinct reproducible noise.
    Rng rng(123);
    for (std::size_t f = 0; f < base_->num_frames(); ++f) {
      for (std::size_t w = 0; w < dev_->frames().frame_words(); ++w) {
        base_->frame(f).set_word(w, static_cast<std::uint32_t>(rng.next()));
        module_->frame(f).set_word(w, static_cast<std::uint32_t>(rng.next()));
      }
    }
  }

  const Device* dev_ = nullptr;
  std::unique_ptr<ConfigMemory> base_;
  std::unique_ptr<ConfigMemory> module_;
};

TEST_F(PartialGenTest, ComposeFullHeightReplacesRegionColumns) {
  const Region region{0, 5, dev_->rows() - 1, 8};
  const PartialBitstreamGenerator gen(*base_);
  const ConfigMemory composed = gen.compose(*module_, region);

  const FrameMap& fm = dev_->frames();
  const auto majors = region.clb_majors(*dev_);
  for (std::size_t f = 0; f < composed.num_frames(); ++f) {
    const auto a = fm.address_of_index(f);
    const bool in_region =
        std::find(majors.begin(), majors.end(), static_cast<int>(a.major)) !=
        majors.end();
    if (!in_region) {
      EXPECT_FALSE(composed.frame(f).differs_from(base_->frame(f)))
          << fm.describe_frame(f);
      continue;
    }
    // In-region frame: region rows from the module, padding rows from base.
    for (int r = 0; r < dev_->rows(); ++r) {
      const ConfigMemory& want = region.contains_row(r) ? *module_ : *base_;
      for (int b = 0; b < FrameMap::kBitsPerRow; ++b) {
        const std::size_t bit = fm.row_bit_base(r) + static_cast<std::size_t>(b);
        ASSERT_EQ(composed.frame(f).get(bit), want.frame(f).get(bit))
            << fm.describe_frame(f) << " row " << r << " bit " << b;
      }
    }
    // The top/bottom padding windows always come from the base.
    for (int b = 0; b < FrameMap::kBitsPerRow; ++b) {
      EXPECT_EQ(composed.frame(f).get(static_cast<std::size_t>(b)),
                base_->frame(f).get(static_cast<std::size_t>(b)));
    }
  }
}

TEST_F(PartialGenTest, ComposeRectangularRegionMergesRows) {
  // Rows 4..9 only: out-of-region rows of the region columns must keep the
  // base content (the non-disruptiveness property for 2D regions).
  const Region region{4, 10, 9, 12};
  const PartialBitstreamGenerator gen(*base_);
  const ConfigMemory composed = gen.compose(*module_, region);

  const FrameMap& fm = dev_->frames();
  for (const int major : region.clb_majors(*dev_)) {
    for (int minor = 0; minor < fm.frames_in_major(major); ++minor) {
      const std::size_t f = fm.frame_index(major, minor);
      for (int r = 0; r < dev_->rows(); ++r) {
        const ConfigMemory& want = region.contains_row(r) ? *module_ : *base_;
        for (int b = 0; b < FrameMap::kBitsPerRow; b += 5) {
          const std::size_t bit =
              fm.row_bit_base(r) + static_cast<std::size_t>(b);
          ASSERT_EQ(composed.frame(f).get(bit), want.frame(f).get(bit))
              << "major " << major << " minor " << minor << " row " << r;
        }
      }
    }
  }
}

TEST_F(PartialGenTest, GeneratedStreamLoadsToComposedState) {
  const Region region{2, 7, 11, 9};  // rectangular on purpose
  const PartialBitstreamGenerator gen(*base_);
  const PartialGenResult pr = gen.generate(*module_, region);

  ConfigMemory loaded = *base_;
  ConfigPort port(loaded);
  port.load(pr.bitstream);
  EXPECT_EQ(loaded, gen.compose(*module_, region));
}

TEST_F(PartialGenTest, AllFramesModeShipsWholeColumns) {
  const Region region{0, 5, dev_->rows() - 1, 6};
  const PartialBitstreamGenerator gen(*base_);
  PartialGenOptions opts;
  opts.diff_only = false;
  const PartialGenResult pr = gen.generate(*module_, region, opts);
  EXPECT_EQ(pr.frames.size(),
            static_cast<std::size_t>(region.width()) * FrameMap::kClbFrames);
  // Contiguity check: adjacent CLB columns may or may not be adjacent
  // majors (the clock column intervenes mid-device), so the block count is
  // between 1 and the column count.
  EXPECT_GE(pr.far_blocks, 1u);
  EXPECT_LE(pr.far_blocks, static_cast<std::size_t>(region.width()));
}

TEST_F(PartialGenTest, DiffOnlySkipsIdenticalFrames) {
  // Make module identical to base except one frame's region rows.
  const Region region{0, 5, dev_->rows() - 1, 8};
  ConfigMemory same = *base_;
  const int major = dev_->frames().major_of_clb_col(6);
  const std::size_t touched = dev_->frames().frame_index(major, 17);
  same.frame(touched).set(dev_->frames().row_bit_base(3) + 2,
                          !base_->frame(touched).get(
                              dev_->frames().row_bit_base(3) + 2));
  const PartialBitstreamGenerator gen(*base_);
  PartialGenOptions opts;
  opts.diff_only = true;
  const PartialGenResult pr = gen.generate(same, region, opts);
  ASSERT_EQ(pr.frames.size(), 1u);
  EXPECT_EQ(pr.frames[0], touched);
  EXPECT_EQ(pr.far_blocks, 1u);
}

TEST_F(PartialGenTest, FarRunsCoalesceContiguousFrames) {
  const Region region{0, 5, dev_->rows() - 1, 8};
  ConfigMemory same = *base_;
  const int major = dev_->frames().major_of_clb_col(6);
  // Touch frames 10,11,12 (one run) and 20 (second run).
  for (const int minor : {10, 11, 12, 20}) {
    const std::size_t f = dev_->frames().frame_index(major, minor);
    same.frame(f).set(dev_->frames().row_bit_base(1), true);
    // Ensure the flip actually differs from base.
    same.frame(f).set(dev_->frames().row_bit_base(1),
                      !base_->frame(f).get(dev_->frames().row_bit_base(1)));
  }
  const PartialBitstreamGenerator gen(*base_);
  PartialGenOptions opts;
  opts.diff_only = true;
  const PartialGenResult pr = gen.generate(same, region, opts);
  EXPECT_EQ(pr.frames.size(), 4u);
  EXPECT_EQ(pr.far_blocks, 2u);

  // And the stream declares exactly those FAR blocks.
  const BitstreamReader reader(pr.bitstream);
  const auto blocks = reader.far_blocks(dev_->frames().frame_words());
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].second, 3u);
  EXPECT_EQ(blocks[1].second, 1u);
}

TEST_F(PartialGenTest, NoCrcOptionOmitsCrcButStillLoads) {
  const Region region{0, 5, dev_->rows() - 1, 5};
  const PartialBitstreamGenerator gen(*base_);
  PartialGenOptions opts;
  opts.include_crc = false;
  const PartialGenResult pr = gen.generate(*module_, region, opts);
  const BitstreamReader reader(pr.bitstream);
  for (const auto& w : reader.writes()) {
    EXPECT_NE(w.reg, ConfigReg::CRC);
  }
  ConfigMemory loaded = *base_;
  ConfigPort port(loaded);
  EXPECT_NO_THROW(port.load(pr.bitstream));
}

TEST_F(PartialGenTest, EmptyDiffYieldsFramelessStream) {
  const Region region{0, 5, dev_->rows() - 1, 8};
  const PartialBitstreamGenerator gen(*base_);
  PartialGenOptions opts;
  opts.diff_only = true;
  const PartialGenResult pr = gen.generate(*base_, region, opts);
  EXPECT_TRUE(pr.frames.empty());
  EXPECT_EQ(pr.far_blocks, 0u);
  // Still a well-formed (if pointless) stream.
  ConfigMemory loaded = *base_;
  ConfigPort port(loaded);
  EXPECT_NO_THROW(port.load(pr.bitstream));
  EXPECT_EQ(loaded, *base_);
}

TEST_F(PartialGenTest, ApplyToBaseMutatesInPlace) {
  const Region region{0, 5, dev_->rows() - 1, 7};
  const PartialBitstreamGenerator gen(*base_);
  ConfigMemory target = *base_;
  gen.apply_to_base(target, *module_, region);
  EXPECT_EQ(target, gen.compose(*module_, region));
}

TEST_F(PartialGenTest, RejectsOutOfBoundsRegion) {
  const PartialBitstreamGenerator gen(*base_);
  EXPECT_THROW((void)gen.compose(*module_, Region{0, 0, 99, 99}), JpgError);
  EXPECT_THROW((void)gen.compose_overlay(*module_, Region{0, 0, 99, 99}),
               JpgError);
  const RegionUpdate bad{module_.get(), Region{0, 0, 99, 99}, {}};
  EXPECT_THROW((void)gen.generate_batch({&bad, 1}), JpgError);
}

TEST_F(PartialGenTest, ComposeOverlayMatchesCompose) {
  const Region region{4, 10, 9, 12};  // rectangular: row merge both sides
  const PartialBitstreamGenerator gen(*base_);
  const ConfigMemory full = gen.compose(*module_, region);
  const FrameOverlay overlay = gen.compose_overlay(*module_, region);

  // Every frame reads identically through the overlay...
  ASSERT_EQ(overlay.num_frames(), full.num_frames());
  for (std::size_t f = 0; f < full.num_frames(); ++f) {
    ASSERT_FALSE(overlay.frame(f).differs_from(full.frame(f)))
        << dev_->frames().describe_frame(f);
  }
  // ...but only the region majors' frames were materialised.
  std::size_t expected = 0;
  for (const int major : region.clb_majors(*dev_)) {
    expected += static_cast<std::size_t>(dev_->frames().frames_in_major(major));
  }
  EXPECT_EQ(overlay.overlay_count(), expected);
  EXPECT_LT(overlay.overlay_count(), full.num_frames());
}

TEST_F(PartialGenTest, GenerateMatchesSeedFramePath) {
  // Byte-identity of the overlay fast path against the original pipeline
  // (full compose + explicit frame list through generate_frames).
  const Region region{2, 7, 11, 9};
  const PartialBitstreamGenerator gen(*base_, /*cache_capacity=*/0);
  const FrameMap& fm = dev_->frames();
  for (const bool diff_only : {false, true}) {
    PartialGenOptions opts;
    opts.diff_only = diff_only;
    const ConfigMemory composed = gen.compose(*module_, region);
    std::vector<std::size_t> frames;
    for (const int major : region.clb_majors(*dev_)) {
      for (int minor = 0; minor < fm.frames_in_major(major); ++minor) {
        const std::size_t idx = fm.frame_index(major, minor);
        if (!diff_only ||
            composed.frame(idx).differs_from(base_->frame(idx))) {
          frames.push_back(idx);
        }
      }
    }
    const PartialGenResult seed = gen.generate_frames(composed, frames, opts);
    const PartialGenResult fast = gen.generate(*module_, region, opts);
    EXPECT_EQ(fast.bitstream.words, seed.bitstream.words)
        << "diff_only=" << diff_only;
    EXPECT_EQ(fast.frames, seed.frames);
    EXPECT_EQ(fast.far_blocks, seed.far_blocks);
    frames.clear();
  }
}

TEST_F(PartialGenTest, GenerateBatchMatchesSequentialGenerate) {
  // Parallel determinism property: batch output is byte-identical to
  // sequential generate() over the same updates, in input order.
  PartialGenOptions diff;
  diff.diff_only = true;
  const std::vector<RegionUpdate> updates = {
      {module_.get(), Region{0, 2, dev_->rows() - 1, 5}, {}},
      {module_.get(), Region{3, 8, 10, 11}, diff},
      {module_.get(), Region{0, 14, 7, 17}, {}},
  };
  const PartialBitstreamGenerator par(*base_);
  const auto batch = par.generate_batch(updates);
  ASSERT_EQ(batch.size(), updates.size());
  const PartialBitstreamGenerator seq(*base_, /*cache_capacity=*/0);
  for (std::size_t i = 0; i < updates.size(); ++i) {
    const PartialGenResult want = seq.generate(
        *updates[i].module_config, updates[i].region, updates[i].opts);
    EXPECT_EQ(batch[i].bitstream.words, want.bitstream.words) << "update " << i;
    EXPECT_EQ(batch[i].frames, want.frames) << "update " << i;
    EXPECT_EQ(batch[i].far_blocks, want.far_blocks) << "update " << i;
  }
  // Repeating the batch (now warm in the cache) must be just as identical.
  const auto again = par.generate_batch(updates);
  for (std::size_t i = 0; i < updates.size(); ++i) {
    EXPECT_EQ(again[i].bitstream.words, batch[i].bitstream.words);
  }
}

TEST_F(PartialGenTest, GenerateBatchRejectsOverlappingMajors) {
  const std::vector<RegionUpdate> updates = {
      {module_.get(), Region{0, 2, dev_->rows() - 1, 5}, {}},
      {module_.get(), Region{0, 4, dev_->rows() - 1, 8}, {}},  // shares cols 4-5
  };
  const PartialBitstreamGenerator gen(*base_);
  EXPECT_THROW((void)gen.generate_batch(updates), JpgError);
}

TEST_F(PartialGenTest, CacheHitServesIdenticalBytes) {
  const Region region{0, 5, dev_->rows() - 1, 8};
  const PartialBitstreamGenerator gen(*base_);
  const PartialGenResult first = gen.generate(*module_, region);
  const PartialGenResult again = gen.generate(*module_, region);
  EXPECT_EQ(again.bitstream.words, first.bitstream.words);
  EXPECT_EQ(again.frames, first.frames);
  const PbitCacheStats stats = gen.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST_F(PartialGenTest, CacheMissesOnModuleEdit) {
  const Region region{0, 5, dev_->rows() - 1, 8};
  const PartialBitstreamGenerator gen(*base_);
  (void)gen.generate(*module_, region);
  // Flip a module bit inside the region window: the content hash changes,
  // so the stale entry must not be served.
  const FrameMap& fm = dev_->frames();
  const std::size_t f = fm.frame_index(fm.major_of_clb_col(6), 3);
  const std::size_t bit = fm.row_bit_base(4) + 7;
  module_->frame(f).set(bit, !module_->frame(f).get(bit));
  const PartialGenResult fresh = gen.generate(*module_, region);
  EXPECT_EQ(gen.cache_stats().misses, 2u);
  EXPECT_EQ(gen.cache_stats().hits, 0u);
  const PartialBitstreamGenerator uncached(*base_, /*cache_capacity=*/0);
  EXPECT_EQ(fresh.bitstream.words,
            uncached.generate(*module_, region).bitstream.words);
}

TEST_F(PartialGenTest, CacheMissesOnBaseMutation) {
  const Region region{0, 5, dev_->rows() - 1, 8};
  const PartialBitstreamGenerator gen(*base_);
  (void)gen.generate(*module_, region);
  // Mutate the base in a padding window of a region-major frame (the
  // write_onto_base scenario): padding rows come from the base, so the
  // correct output actually changes — a stale cache hit would be wrong.
  const FrameMap& fm = dev_->frames();
  const std::size_t f = fm.frame_index(fm.major_of_clb_col(6), 3);
  base_->frame(f).set(3, !base_->frame(f).get(3));
  const PartialGenResult fresh = gen.generate(*module_, region);
  EXPECT_EQ(gen.cache_stats().misses, 2u);
  EXPECT_EQ(gen.cache_stats().hits, 0u);
  const PartialBitstreamGenerator uncached(*base_, /*cache_capacity=*/0);
  EXPECT_EQ(fresh.bitstream.words,
            uncached.generate(*module_, region).bitstream.words);
}

TEST_F(PartialGenTest, CacheDistinguishesOptions) {
  const Region region{0, 5, dev_->rows() - 1, 8};
  const PartialBitstreamGenerator gen(*base_);
  PartialGenOptions no_crc;
  no_crc.include_crc = false;
  const PartialGenResult with_crc = gen.generate(*module_, region);
  const PartialGenResult without = gen.generate(*module_, region, no_crc);
  EXPECT_EQ(gen.cache_stats().misses, 2u);
  EXPECT_EQ(gen.cache_stats().hits, 0u);
  EXPECT_NE(with_crc.bitstream.words, without.bitstream.words);
}

TEST_F(PartialGenTest, CacheIsThreadSafeUnderConcurrentGenerate) {
  // ThreadPool::global() may be a single worker on a small host; force a
  // 4-worker pool so the cache mutex really is contended (and so the TSan
  // build of this test exercises cross-thread access).
  const Region region{0, 5, dev_->rows() - 1, 8};
  const PartialBitstreamGenerator gen(*base_);
  const PartialGenResult want = gen.generate(*module_, region);
  ThreadPool pool(4);
  std::vector<PartialGenResult> got(16);
  pool.parallel_for(got.size(), [&](std::size_t i) {
    PartialGenOptions opts;
    opts.include_crc = (i % 2 == 0);
    got[i] = gen.generate(*module_, region, opts);
  });
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_EQ(got[i].bitstream.words, want.bitstream.words) << i;
    } else {
      EXPECT_EQ(got[i].frames, want.frames) << i;
    }
  }
  const PbitCacheStats stats = gen.cache_stats();
  EXPECT_EQ(stats.hits + stats.misses, 17u);
  EXPECT_GE(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST_F(PartialGenTest, CacheEvictsLeastRecentlyUsed) {
  const Region region{0, 5, dev_->rows() - 1, 8};
  const PartialBitstreamGenerator gen(*base_, /*cache_capacity=*/1);
  PartialGenOptions no_crc;
  no_crc.include_crc = false;
  (void)gen.generate(*module_, region);          // miss, cached
  (void)gen.generate(*module_, region, no_crc);  // miss, evicts the first
  (void)gen.generate(*module_, region);          // miss again
  const PbitCacheStats stats = gen.cache_stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.capacity, 1u);
}

TEST_F(PartialGenTest, CacheStatsSnapshotIsCoherentUnderLoad) {
  // All four tallies are mutated inside the same critical section, so a
  // snapshot taken at *any* instant — here from a sampler thread racing
  // eight generator threads through a capacity-2 cache — must satisfy
  // hits + misses == lookups and entries <= capacity. A torn snapshot
  // (counters read outside the lock, or mutated in separate sections)
  // makes this fail within a handful of samples.
  const Region region{0, 5, dev_->rows() - 1, 8};
  const PartialBitstreamGenerator gen(*base_, /*cache_capacity=*/2);
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::thread sampler([&] {
    while (!done.load(std::memory_order_acquire)) {
      const PbitCacheStats s = gen.cache_stats();
      if (s.hits + s.misses != s.lookups || s.entries > s.capacity) {
        violations.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  ThreadPool pool(4);
  pool.parallel_for(64, [&](std::size_t i) {
    PartialGenOptions opts;
    opts.include_crc = (i % 3 != 0);
    opts.diff_only = (i % 3 == 2);  // three distinct keys -> steady eviction
    (void)gen.generate(*module_, region, opts);
  });
  done.store(true, std::memory_order_release);
  sampler.join();
  EXPECT_EQ(violations.load(), 0);
  const PbitCacheStats stats = gen.cache_stats();
  EXPECT_EQ(stats.lookups, 64u);
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(stats.entries, stats.capacity);
}

}  // namespace
}  // namespace jpg
