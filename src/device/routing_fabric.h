// The programmable routing fabric: wires, switch-matrix muxes and PIPs.
//
// Every CLB tile carries an identical switch matrix (the "template"), so the
// fabric is described once and instantiated positionally. Local wires of a
// tile, in index order:
//
//   0..7    slice output pins  S0_X S0_Y S0_XQ S0_YQ S1_X S1_Y S1_XQ S1_YQ
//   8..15   OUT0..OUT7         output muxes onto the general fabric
//   16..47  outgoing singles   E0..E7 N0..N7 W0..W7 S0..S7 (span 1 tile)
//   48..63  outgoing hexes     HE0..3 HN0..3 HW0..3 HS0..3 (span 6 tiles,
//                              mid tap at 3)
//   64..89  input muxes        S0_F1..F4 G1..G4 BX BY CE SR CLK, then S1_*
//
// Shared wires (not tile-local): two horizontal long lines per row (LH0/1),
// two vertical long lines per column (LV0/1), one pad-output and one
// pad-input wire per IOB site, and the global clock GCLK.
//
// A *PIP* in the XDL sense is (tile, source wire -> dest wire); physically it
// is the dest wire's mux programmed to the source's position in its candidate
// list (binary-encoded, value 0 = mux off). Mux config bits are allocated
// sequentially inside the tile's 672-bit routing budget (SliceConfigMap).
//
// Direction conventions: row 0 is the top of the array; N decreases row.
// A single "E3" owned by tile (r,c) is *driven* at (r,c) and *readable* at
// (r,c+1); hence "the single arriving from the west" at (r,c) is (r,c-1).E3.
// At the left/right device edges those off-array references resolve to IOB
// pad-output wires instead (pads feed the fabric through the same slots).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "device/device_spec.h"
#include "device/slice_config.h"

namespace jpg {

// --- Local wire index space -------------------------------------------------

constexpr int kTileWires = 90;

/// Long-driver alias indices: a mux with dest_local kLongDriverBase+k drives
/// the shared long line (k 0/1 = LH0/LH1 of the tile's row, 2/3 = LV0/LV1 of
/// the tile's column) rather than a tile-local wire.
constexpr int kLongDriverBase = kTileWires;
constexpr int kNumLongDrivers = 4;

constexpr int kPinBase = 0;      // 8 slice output pins
constexpr int kOutBase = 8;      // 8 OUT wires
constexpr int kSingleBase = 16;  // 32 singles (8 per direction, order E N W S)
constexpr int kHexBase = 48;     // 16 hexes (4 per direction, order E N W S)
constexpr int kImuxBase = 64;    // 26 input-mux pins (13 per slice)

constexpr int kSinglesPerDir = 8;
constexpr int kHexesPerDir = 4;
constexpr int kHexSpan = 6;
constexpr int kHexTap = 3;
constexpr int kLongsPerRow = 2;
constexpr int kLongsPerCol = 2;

enum class Dir { E = 0, N = 1, W = 2, S = 3 };

/// IMUX pin within a slice.
enum class ImuxPin {
  F1 = 0, F2, F3, F4, G1, G2, G3, G4, BX, BY, CE, SR, CLK,
};
constexpr int kImuxPinsPerSlice = 13;

/// Slice output pin within a slice.
enum class SlicePin { X = 0, Y = 1, XQ = 2, YQ = 3 };

[[nodiscard]] constexpr int pin_local(int slice, SlicePin p) {
  return kPinBase + slice * 4 + static_cast<int>(p);
}
[[nodiscard]] constexpr int out_local(int j) { return kOutBase + j; }
[[nodiscard]] constexpr int single_local(Dir d, int k) {
  return kSingleBase + static_cast<int>(d) * kSinglesPerDir + k;
}
[[nodiscard]] constexpr int hex_local(Dir d, int k) {
  return kHexBase + static_cast<int>(d) * kHexesPerDir + k;
}
[[nodiscard]] constexpr int imux_local(int slice, ImuxPin p) {
  return kImuxBase + slice * kImuxPinsPerSlice + static_cast<int>(p);
}

/// Canonical wire name ("S0_X", "OUT3", "E2", "HN1", "S1_CLK"); the long
/// driver aliases are named "LH0" "LH1" "LV0" "LV1". Inverse below.
[[nodiscard]] std::string local_wire_name(int local);
[[nodiscard]] std::optional<int> local_wire_by_name(std::string_view name);

// --- Mux source references ----------------------------------------------------

/// A candidate source of a mux, expressed relative to the mux's tile.
struct SourceRef {
  enum class Kind {
    TileWire,  ///< wire `index` of tile (r+dr, c+dc)
    LongH,     ///< horizontal long line `index` of the tile's row
    LongV,     ///< vertical long line `index` of the tile's column
    Gclk,      ///< the global clock
  };
  Kind kind = Kind::TileWire;
  int dr = 0;
  int dc = 0;
  int index = 0;

  bool operator==(const SourceRef&) const = default;
};

/// Template-relative source name as written in XDL pips, seen from the mux's
/// tile: local wires by their own name ("OUT3", "S0_X"); the single arriving
/// from direction D as "<D>IN<k>" ("WIN3"); full-span and mid-tap incoming
/// hexes as "H<D>IN<k>" / "H<D>MID<k>"; long lines "LH0".."LV1"; "GCLK".
[[nodiscard]] std::string source_ref_name(const SourceRef& ref);
[[nodiscard]] std::optional<SourceRef> source_ref_by_name(std::string_view name);

/// One programmable mux of the tile template.
struct MuxDef {
  int dest_local = 0;   ///< local wire this mux drives
  int cfg_offset = 0;   ///< first bit inside the tile's routing budget
  unsigned cfg_bits = 0;  ///< field width; value 0 = off, i+1 = sources[i]
  std::vector<SourceRef> sources;
};

// --- Fabric -------------------------------------------------------------------

class RoutingFabric {
 public:
  explicit RoutingFabric(const DeviceSpec& spec);

  [[nodiscard]] const DeviceSpec& spec() const { return *spec_; }

  /// The per-tile mux template (identical for every CLB tile).
  [[nodiscard]] const std::vector<MuxDef>& tile_muxes() const { return muxes_; }

  /// Mux whose output is `dest_local`, or nullptr (slice pins have no mux).
  [[nodiscard]] const MuxDef* mux_for_dest(int dest_local) const;

  /// Total routing config bits consumed per tile (<= kRoutingBitsPerTile).
  [[nodiscard]] int cfg_bits_used() const { return cfg_bits_used_; }

  // --- Global node id space ---------------------------------------------------
  [[nodiscard]] std::size_t num_nodes() const { return num_nodes_; }

  [[nodiscard]] std::size_t tile_wire_node(int r, int c, int local) const;
  [[nodiscard]] std::size_t longh_node(int row, int k) const;
  [[nodiscard]] std::size_t longv_node(int col, int k) const;
  [[nodiscard]] std::size_t pad_out_node(Side side, int row, int k) const;
  [[nodiscard]] std::size_t pad_in_node(Side side, int row, int k) const;
  [[nodiscard]] std::size_t gclk_node() const { return num_nodes_ - 1; }

  struct NodeInfo {
    enum class Type { TileWire, LongH, LongV, PadOut, PadIn, Gclk };
    Type type = Type::TileWire;
    int r = 0;      ///< tile row / long-line row / IOB row
    int c = 0;      ///< tile col / long-line col
    int local = 0;  ///< tile-local wire index (TileWire only)
    int k = 0;      ///< long-line or IOB index
    Side side = Side::Left;  ///< IOB side (PadOut/PadIn only)
  };
  [[nodiscard]] NodeInfo node_info(std::size_t node) const;
  [[nodiscard]] std::string node_name(std::size_t node) const;

  /// Resolves a template source at tile (r, c) to a node id. Off-array
  /// single references on the left/right edges resolve to pad-output wires;
  /// all other off-array references return nullopt (unconnectable input).
  [[nodiscard]] std::optional<std::size_t> resolve_source(
      int r, int c, const SourceRef& ref) const;

  /// The pad-input mux of an IOB site: candidate source nodes in encoding
  /// order (value i+1 selects sources[i]; stored in IobField::OmuxSel).
  [[nodiscard]] std::vector<std::size_t> pad_in_sources(Side side, int row,
                                                        int k) const;

 private:
  void build_template();

  const DeviceSpec* spec_;
  std::vector<MuxDef> muxes_;
  std::vector<int> mux_index_of_dest_;  // local wire -> mux index or -1
  int cfg_bits_used_ = 0;
  std::size_t long_base_ = 0;
  std::size_t pad_base_ = 0;
  std::size_t num_nodes_ = 0;
};

}  // namespace jpg
