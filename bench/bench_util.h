// Small shared helpers for the benchmark binaries: a stopwatch, a
// fixed-width table printer for the paper-shaped summary rows each binary
// emits after the google-benchmark kernels, and a machine-readable JSON
// report (BENCH_*.json) for the driver to scrape.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "support/telemetry/telemetry.h"

namespace jpg::benchutil {

/// JPG_BENCH_SMOKE=1 switches a bench binary to a reduced matrix (small
/// devices, one repeat, short timing windows) that still writes the same
/// BENCH_*.json shape, so CI can validate the reports in seconds instead of
/// minutes (tools/run_checks.sh bench mode).
inline bool smoke_mode() {
  const char* v = std::getenv("JPG_BENCH_SMOKE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// Logical CPUs visible to this process (>= 1). Recorded in the reports so
/// the driver can tell "no speedup because the code doesn't scale" from
/// "no speedup because the host has one core".
inline std::size_t host_cpus() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  [[nodiscard]] double ms() const { return seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print(const std::string& title) const {
    std::printf("\n== %s ==\n", title.c_str());
    std::vector<std::size_t> width(header_.size());
    for (std::size_t i = 0; i < header_.size(); ++i) width[i] = header_[i].size();
    for (const auto& r : rows_) {
      for (std::size_t i = 0; i < r.size() && i < width.size(); ++i) {
        width[i] = std::max(width[i], r[i].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& r) {
      for (std::size_t i = 0; i < r.size(); ++i) {
        std::printf("%-*s  ", static_cast<int>(width[i]), r[i].c_str());
      }
      std::printf("\n");
    };
    print_row(header_);
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Two-level JSON report: named sections of key -> number|string, written
/// with insertion order preserved so the files diff cleanly across runs.
class JsonReport {
 public:
  void set(const std::string& section, const std::string& key, double value) {
    char buf[64];
    if (value == static_cast<double>(static_cast<long long>(value))) {
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(value));
    } else {
      std::snprintf(buf, sizeof(buf), "%.4f", value);
    }
    sec(section).emplace_back(key, buf);
  }
  void set(const std::string& section, const std::string& key,
           const std::string& value) {
    sec(section).emplace_back(key, "\"" + value + "\"");
  }

  /// Writes the report; returns false (with a note on stderr) on I/O error.
  bool write_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReport: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n");
    for (std::size_t s = 0; s < sections_.size(); ++s) {
      std::fprintf(f, "  \"%s\": {\n", sections_[s].first.c_str());
      const auto& kv = sections_[s].second;
      for (std::size_t i = 0; i < kv.size(); ++i) {
        std::fprintf(f, "    \"%s\": %s%s\n", kv[i].first.c_str(),
                     kv[i].second.c_str(), i + 1 < kv.size() ? "," : "");
      }
      std::fprintf(f, "  }%s\n", s + 1 < sections_.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  using Section = std::vector<std::pair<std::string, std::string>>;

  Section& sec(const std::string& name) {
    for (auto& s : sections_) {
      if (s.first == name) return s.second;
    }
    sections_.emplace_back(name, Section{});
    return sections_.back().second;
  }

  std::vector<std::pair<std::string, Section>> sections_;
};

/// Folds the process-wide telemetry snapshot into a "telemetry" section of
/// the report: a build-mode flag plus every counter the run populated.
/// With JPG_TELEMETRY=OFF the section records enabled=0 and nothing else,
/// so the driver can tell an uninstrumented run from an idle one.
inline void add_telemetry_section(JsonReport& report) {
  report.set("telemetry", "enabled",
             static_cast<double>(JPG_TELEMETRY_ENABLED));
#if JPG_TELEMETRY_ENABLED
  const telemetry::MetricsSnapshot snap =
      telemetry::MetricsRegistry::global().snapshot();
  for (const auto& [name, value] : snap.counters) {
    report.set("telemetry", name, static_cast<double>(value));
  }
#endif
}

inline std::string fmt(double v, int prec = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}
inline std::string fmt_bytes(std::size_t b) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%zu", b);
  return buf;
}

}  // namespace jpg::benchutil
