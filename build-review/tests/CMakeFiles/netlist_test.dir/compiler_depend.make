# Empty compiler generated dependencies file for netlist_test.
# This may be replaced when dependencies are built.
