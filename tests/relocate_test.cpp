// Tests for the PbitRelocator (compile-once-place-anywhere for partial
// bitstreams), the defragmentation planner, and the service-level placement
// freedom built on both: typed rejection of every incompatible relocation,
// byte-identity of a relocated pbit with generate-at-target, verified
// defragmentation under a fragmentation storm, and a (variant) key served
// at a relocated slot from a resident donor.
#include <gtest/gtest.h>

#include <memory>

#include "bitstream/bitgen.h"
#include "bitstream/config_port.h"
#include "cbits/cbits.h"
#include "core/relocate.h"
#include "service/reconfig_service.h"

namespace jpg {
namespace {

class RelocateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = &Device::get("XCV50");
    base_ = std::make_unique<ConfigMemory>(*dev_);
    // Base design content in the two leftmost columns; everything to the
    // right is base-free (legal relocation / defrag target space).
    CBits cb(*base_);
    for (int r = 0; r < dev_->rows(); ++r) {
      cb.set_lut(SliceSite{r, 0, 0}, LutSel::F, 0x8001);
      cb.set_lut(SliceSite{r, 1, 1}, LutSel::G, 0x7EFF);
    }
    gen_ = std::make_unique<PartialBitstreamGenerator>(*base_);
  }

  /// A LUT-only module plane (routing-contained by construction) whose
  /// content depends on position, so distinct slots never hold equal bits.
  ConfigMemory lut_module(const Region& at, std::uint16_t tag) const {
    ConfigMemory plane(*dev_);
    CBits cb(plane);
    for (int r = at.r0; r <= at.r1; ++r) {
      for (int c = at.c0; c <= at.c1; ++c) {
        cb.set_lut(SliceSite{r, c, 0}, LutSel::F,
                   static_cast<std::uint16_t>(tag ^ (r * 257) ^ c));
      }
    }
    return plane;
  }

  /// The plane a board holds after loading `pbit` over the base design.
  ConfigMemory applied_plane(const Bitstream& pbit) const {
    ConfigMemory plane(*base_);
    ConfigPort port(plane);
    port.load(pbit);
    return plane;
  }

  const Device* dev_ = nullptr;
  std::unique_ptr<ConfigMemory> base_;
  std::unique_ptr<PartialBitstreamGenerator> gen_;
};

TEST_F(RelocateTest, ShapeAndBoundsRejectionsAreTyped) {
  const Region a{2, 3, 9, 4};
  const auto at_a = gen_->generate(lut_module(a, 0x1111), a);
  const PbitRelocator reloc(*gen_);

  try {
    (void)reloc.relocate(at_a.bitstream, a, Region{2, 6, 9, 8});
    FAIL() << "shape mismatch accepted";
  } catch (const RelocError& e) {
    EXPECT_EQ(e.kind(), RelocError::Kind::ShapeMismatch);
    EXPECT_NE(std::string(e.what()).find("shape mismatch"),
              std::string::npos);
  }
  try {
    (void)reloc.relocate(at_a.bitstream, a,
                         Region{dev_->rows() - 4, 10, dev_->rows() + 3, 11});
    FAIL() << "out-of-bounds target accepted";
  } catch (const RelocError& e) {
    EXPECT_EQ(e.kind(), RelocError::Kind::OutOfBounds);
  }

  // The no-throw probe agrees with the throwing path.
  EXPECT_FALSE(reloc.check_shape(a, Region{2, 6, 9, 8}).shape_ok);
  EXPECT_TRUE(reloc.check_shape(a, Region{0, 10, 7, 11}).shape_ok);
}

TEST_F(RelocateTest, RelocatedPbitIsByteIdenticalToGenerateAtTarget) {
  const Region a{2, 3, 9, 4};
  const Region b{5, 10, 12, 11};  // shifted both down and right
  const ConfigMemory mod_a = lut_module(a, 0x2222);
  const auto at_a = gen_->generate(mod_a, a);
  const PbitRelocator reloc(*gen_);
  const auto moved = reloc.relocate(at_a.bitstream, a, b);

  // Reference: the identical module content authored directly at b.
  ConfigMemory mod_b(*dev_);
  {
    CBits dst(mod_b);
    const CBits src(mod_a);
    for (int r = a.r0; r <= a.r1; ++r) {
      for (int c = a.c0; c <= a.c1; ++c) {
        dst.set_lut(
            SliceSite{r + (b.r0 - a.r0), c + (b.c0 - a.c0), 0}, LutSel::F,
            src.get_lut(SliceSite{r, c, 0}, LutSel::F));
      }
    }
  }
  const auto at_b = gen_->generate(mod_b, b);
  EXPECT_EQ(moved.bitstream.words, at_b.bitstream.words);
  EXPECT_EQ(moved.frames, at_b.frames);
  // Board-level: applying the relocated pbit lands the compose() reference.
  EXPECT_EQ(applied_plane(moved.bitstream), gen_->compose(mod_b, b));
}

TEST_F(RelocateTest, DecodeRejectsPbitOutsideClaimedSource) {
  const Region a{2, 3, 9, 4};
  const Region wrong{2, 8, 9, 9};  // same shape, different columns
  const auto at_a = gen_->generate(lut_module(a, 0x3333), a);
  const PbitRelocator reloc(*gen_);
  try {
    (void)reloc.decode(at_a.bitstream, wrong);
    FAIL() << "coverage mismatch accepted";
  } catch (const RelocError& e) {
    EXPECT_EQ(e.kind(), RelocError::Kind::CoverageMismatch);
    EXPECT_NE(std::string(e.what()).find("outside source region"),
              std::string::npos);
  }
}

TEST_F(RelocateTest, DiffOnlyPbitRelocatesThroughSubsetCoverage) {
  // Three-column region whose module touches only the middle column: the
  // diff_only pbit ships a strict subset of the region's frames, which the
  // coverage rule must accept.
  const Region a{0, 3, 7, 5};
  ConfigMemory mod(*dev_);
  {
    CBits cb(mod);
    for (int r = a.r0; r <= a.r1; ++r) {
      cb.set_lut(SliceSite{r, 4, 0}, LutSel::G,
                 static_cast<std::uint16_t>(0x00FF ^ r));
    }
  }
  PartialGenOptions diff;
  diff.diff_only = true;
  const auto at_a = gen_->generate(mod, a, diff);
  ASSERT_LT(at_a.frames.size(),
            static_cast<std::size_t>(3 * FrameMap::kClbFrames));

  const PbitRelocator reloc(*gen_);
  const Region b{8, 10, 15, 12};
  RelocOptions opts;
  opts.gen = diff;
  const auto moved = reloc.relocate(at_a.bitstream, a, b, opts);
  const ConfigMemory translated =
      reloc.translate(reloc.decode(at_a.bitstream, a), a, b, opts);
  EXPECT_EQ(applied_plane(moved.bitstream), gen_->compose(translated, b));
}

TEST_F(RelocateTest, RoutingEscapeIsDetectedAndRejected) {
  const Region a{2, 3, 9, 4};
  ConfigMemory mod = lut_module(a, 0x4444);
  // Drive an east single from the region's right edge: its reader tile sits
  // one column outside, so the footprint escapes.
  int escaping_mux = -1;
  for (const MuxDef& def : dev_->fabric().tile_muxes()) {
    if (def.dest_local >= kSingleBase &&
        def.dest_local < kSingleBase + kSinglesPerDir) {
      escaping_mux = def.dest_local;  // an east single (first direction)
      break;
    }
  }
  ASSERT_GE(escaping_mux, 0) << "fabric has no east-single driver mux";
  {
    CBits cb(mod);
    cb.set_mux(TileCoord{a.r0, a.c1}, escaping_mux, 1);
  }

  const auto at_a = gen_->generate(mod, a);
  const PbitRelocator reloc(*gen_);
  const Region b{2, 10, 9, 11};
  const RelocCompat compat =
      reloc.check(reloc.decode(at_a.bitstream, a), a, b);
  EXPECT_TRUE(compat.shape_ok);
  ASSERT_FALSE(compat.contained());
  EXPECT_FALSE(compat.drives_long_lines());
  EXPECT_NE(compat.crossings[0].detail.find("readable outside the region"),
            std::string::npos);

  try {
    (void)reloc.relocate(at_a.bitstream, a, b);
    FAIL() << "escaping footprint accepted";
  } catch (const RelocError& e) {
    EXPECT_EQ(e.kind(), RelocError::Kind::FootprintEscape);
  }

  // Forcing past containment still relocates soundly at the byte level.
  RelocOptions force;
  force.require_containment = false;
  const auto moved = reloc.relocate(at_a.bitstream, a, b, force);
  const ConfigMemory translated =
      reloc.translate(reloc.decode(at_a.bitstream, a), a, b, force);
  EXPECT_EQ(moved.bitstream.words,
            gen_->generate(translated, b).bitstream.words);
}

TEST_F(RelocateTest, LongLineUseIsTheContentionDangerousCrossing) {
  const Region a{2, 3, 9, 4};
  ConfigMemory mod = lut_module(a, 0x5555);
  int long_driver = -1;
  for (const MuxDef& def : dev_->fabric().tile_muxes()) {
    if (def.dest_local >= kLongDriverBase) {
      long_driver = def.dest_local;
      break;
    }
  }
  ASSERT_GE(long_driver, 0) << "fabric has no long-driver mux";
  {
    CBits cb(mod);
    cb.set_mux(TileCoord{a.r0 + 1, a.c0}, long_driver, 1);
  }
  const PbitRelocator reloc(*gen_);
  const auto at_a = gen_->generate(mod, a);
  const RelocCompat compat =
      reloc.check(reloc.decode(at_a.bitstream, a), a, Region{2, 10, 9, 11});
  ASSERT_FALSE(compat.contained());
  EXPECT_TRUE(compat.drives_long_lines());
  EXPECT_NE(compat.crossings[0].detail.find("long line"), std::string::npos);
}

TEST_F(RelocateTest, RelocateLeasedPinsTheRetargetedEntry) {
  const Region a{2, 3, 9, 4};
  const Region b{2, 10, 9, 11};
  const auto at_a = gen_->generate(lut_module(a, 0x6666), a);
  const PbitRelocator reloc(*gen_);
  PbitLease lease = reloc.relocate_leased(at_a.bitstream, a, b);
  ASSERT_TRUE(lease.valid());
  EXPECT_GE(gen_->cache_stats().pinned, 1u);
  // The leased stream is byte-identical to the unleased path (both are the
  // same cache entry).
  const auto moved = reloc.relocate(at_a.bitstream, a, b);
  EXPECT_EQ(lease.bitstream().words, moved.bitstream.words);
  lease.release();
  EXPECT_EQ(gen_->cache_stats().pinned, 0u);
}

// --- plan_defrag --------------------------------------------------------------

TEST(PlanDefrag, CompactsExclusiveSlotsLeftwardInOrder) {
  const Device& dev = Device::get("XCV50");
  const int r1 = dev.rows() - 1;
  const std::vector<DefragSlot> slots = {
      {Region{0, 14, r1, 14}, "s2"},
      {Region{0, 8, r1, 9}, "s1"},
  };
  const auto moves =
      plan_defrag(dev, slots, [](int c) { return c >= 2; });
  ASSERT_EQ(moves.size(), 2u);
  // Planned lowest-column-first regardless of input order.
  EXPECT_EQ(moves[0].key, "s1");
  EXPECT_EQ(moves[0].to, (Region{0, 2, r1, 3}));
  EXPECT_EQ(moves[1].key, "s2");
  EXPECT_EQ(moves[1].to, (Region{0, 4, r1, 4}));
  for (const auto& m : moves) {
    EXPECT_LT(m.to.c1, m.from.c0);  // strictly leftward and disjoint
    EXPECT_EQ(m.to.width(), m.from.width());
    EXPECT_EQ(m.to.height(), m.from.height());
  }
}

TEST(PlanDefrag, SharedColumnsAndOccupiedTargetsAreRespected) {
  const Device& dev = Device::get("XCV50");
  // s1/s2 share column 8, so neither is movable; s3 is exclusive but every
  // usable column to its left stays reserved by the unmovable pair.
  const std::vector<DefragSlot> slots = {
      {Region{0, 7, 7, 8}, "s1"},
      {Region{8, 8, 15, 9}, "s2"},
      {Region{0, 10, 15, 10}, "s3"},
  };
  EXPECT_TRUE(plan_defrag(dev, slots, [](int c) { return c >= 7; }).empty());
  // A slot already at the leftmost usable columns stays put.
  EXPECT_TRUE(plan_defrag(dev, {{Region{0, 2, 15, 3}, "s"}},
                          [](int c) { return c >= 2; })
                  .empty());
  // A slot out of bounds is a caller bug, not a silent skip.
  EXPECT_THROW(plan_defrag(dev, {{Region{0, 0, 99, 0}, "s"}},
                           [](int) { return true; }),
               JpgError);
}

// --- Service-level placement freedom ------------------------------------------

/// Base plane with content only in column 0 (columns >= 2 base-free).
ConfigMemory service_base(const Device& dev) {
  ConfigMemory base(dev);
  CBits cb(base);
  for (int r = 0; r < dev.rows(); ++r) {
    cb.set_lut(SliceSite{r, 0, 0}, LutSel::F, 0x8001);
  }
  return base;
}

TEST(RelocationService, ServesCachedVariantAtRelocatedSlot) {
  const Device& dev = Device::get("XCV50");
  const ConfigMemory base = service_base(dev);
  ServiceConfig cfg;
  cfg.allow_relocation = true;
  ReconfigService svc(dev, base, 1, cfg);

  const Region a{0, 4, dev.rows() - 1, 5};
  const Region b{0, 10, dev.rows() - 1, 11};
  ConfigMemory mod(dev);
  {
    CBits cb(mod);
    for (int r = 0; r < dev.rows(); ++r) {
      cb.set_lut(SliceSite{r, 4, 0}, LutSel::F,
                 static_cast<std::uint16_t>(0xBEEF ^ r));
    }
  }

  ServiceRequest first;
  first.tenant = "t0";
  first.kind = RequestKind::Swap;
  first.board = 0;
  first.module_config = &mod;
  first.region = a;
  first.variant = "fir_v1";
  const ServiceResponse r1 = svc.submit(first).get();
  ASSERT_TRUE(r1.ok()) << r1.message;

  // Same variant, no module plane, shape-compatible free slot: the service
  // must serve it by relocating the resident donor pbit.
  ServiceRequest second = first;
  second.module_config = nullptr;
  second.region = b;
  const ServiceResponse r2 = svc.submit(second).get();
  ASSERT_TRUE(r2.ok()) << r2.message;

  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.relocations_served, 1u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.rejected_queue_full, 0u);
  // The board's plane matches base + both applied pbits exactly.
  EXPECT_TRUE(svc.attest(0).attested);
  svc.shutdown();
}

TEST(RelocationService, RelocationServeNeedsOptInAndADonor) {
  const Device& dev = Device::get("XCV50");
  const ConfigMemory base = service_base(dev);

  ServiceRequest req;
  req.tenant = "t0";
  req.board = 0;
  req.module_config = nullptr;
  req.region = Region{0, 4, dev.rows() - 1, 5};
  req.variant = "ghost";

  {
    // Without the opt-in a null module plane is a malformed request.
    ReconfigService svc(dev, base, 1, {});
    const ServiceResponse resp = svc.submit(req).get();
    EXPECT_EQ(resp.error, ServiceError::BadRequest);
    svc.shutdown();
  }
  {
    // With the opt-in but no resident donor the request fails cleanly.
    ServiceConfig cfg;
    cfg.allow_relocation = true;
    ReconfigService svc(dev, base, 1, cfg);
    const ServiceResponse resp = svc.submit(req).get();
    EXPECT_FALSE(resp.ok());
    EXPECT_NE(resp.message.find("no resident donor"), std::string::npos);
    EXPECT_EQ(svc.stats().relocations_served, 0u);
    svc.shutdown();
  }
}

TEST(RelocationService, DefragmentationStormCompactsAndAttestsClean) {
  const Device& dev = Device::get("XCV50");
  const ConfigMemory base = service_base(dev);
  ReconfigService svc(dev, base, 1, {});
  const int r1 = dev.rows() - 1;

  // Fragmentation storm: variants scattered across right-side slots with
  // holes between them.
  const std::vector<Region> slots = {
      {0, 8, r1, 8}, {0, 12, r1, 12}, {0, 16, r1, 17}, {0, 21, r1, 21}};
  std::vector<std::unique_ptr<ConfigMemory>> mods;
  int vi = 0;
  for (const Region& s : slots) {
    auto mod = std::make_unique<ConfigMemory>(dev);
    CBits cb(*mod);
    for (int r = s.r0; r <= s.r1; ++r) {
      for (int c = s.c0; c <= s.c1; ++c) {
        cb.set_lut(SliceSite{r, c, 1}, LutSel::G,
                   static_cast<std::uint16_t>(0x1000 + vi * 64 + r));
      }
    }
    ServiceRequest req;
    req.tenant = "t0";
    req.board = 0;
    req.module_config = mod.get();
    req.region = s;
    req.variant = "v" + std::to_string(vi++);
    ASSERT_TRUE(svc.submit(req).get().ok());
    mods.push_back(std::move(mod));
  }
  ASSERT_TRUE(svc.attest(0).attested);

  const DefragReport rep = svc.defragment(0);
  EXPECT_TRUE(rep.ok) << rep.error;
  ASSERT_EQ(rep.planned.size(), slots.size());
  EXPECT_EQ(rep.executed, slots.size());
  for (const auto& mv : rep.planned) {
    EXPECT_LT(mv.to.c1, mv.from.c0);  // strictly leftward
    EXPECT_GE(mv.to.c0, 1);           // never into the base-design column
  }
  // The moves executed as verified swaps: the device attests clean against
  // the post-defrag expectation (modules at their new slots, old slots
  // scrubbed back to base — no stale content anywhere).
  EXPECT_TRUE(svc.attest(0).attested);
  EXPECT_EQ(svc.stats().defrag_moves, slots.size());
  // Running again is a no-op: everything already sits leftmost.
  const DefragReport again = svc.defragment(0);
  EXPECT_TRUE(again.ok);
  EXPECT_TRUE(again.planned.empty());
  svc.shutdown();
}

}  // namespace
}  // namespace jpg
