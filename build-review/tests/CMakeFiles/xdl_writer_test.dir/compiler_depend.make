# Empty compiler generated dependencies file for xdl_writer_test.
# This may be replaced when dependencies are built.
