# Empty dependencies file for jpg_ucf.
# This may be replaced when dependencies are built.
