# Empty dependencies file for extractor_test.
# This may be replaced when dependencies are built.
