file(REMOVE_RECURSE
  "CMakeFiles/bench_icap_stream.dir/bench_icap_stream.cpp.o"
  "CMakeFiles/bench_icap_stream.dir/bench_icap_stream.cpp.o.d"
  "bench_icap_stream"
  "bench_icap_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_icap_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
