#include "support/telemetry/telemetry.h"

#include <algorithm>
#include <cstdio>

namespace jpg::telemetry {

/// Single-writer ring: only the owning thread stores events and bumps
/// `head` (release); readers load `head` (acquire) and copy the filled
/// suffix. A reader racing a wrap may observe a slot mid-overwrite — the
/// drain API is documented for quiescent boundaries, and every field is a
/// trivially-copyable scalar, so a torn read yields a garbled event, not
/// UB. `base` marks events logically discarded by clear(); it is only
/// touched under the buffer mutex, which every reader holds.
struct TraceBuffer::Ring {
  std::array<TraceEvent, kRingCapacity> ev;
  std::atomic<std::uint64_t> head{0};
  std::uint64_t base = 0;  ///< events cleared/retired from this ring
  std::uint32_t tid = 0;

  void push(const TraceEvent& e) noexcept {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    ev[h % kRingCapacity] = e;
    head.store(h + 1, std::memory_order_release);
  }

  /// Appends the live events ([base, head), minus wrap losses) to `out`;
  /// adds the wrap losses to `dropped`.
  void copy_to(std::vector<TraceEvent>& out, std::uint64_t& dropped) const {
    const std::uint64_t h = head.load(std::memory_order_acquire);
    const std::uint64_t oldest = h > kRingCapacity ? h - kRingCapacity : 0;
    const std::uint64_t lo = std::max(base, oldest);
    if (oldest > base) dropped += oldest - base;
    for (std::uint64_t i = lo; i < h; ++i) {
      out.push_back(ev[i % kRingCapacity]);
    }
  }
};

/// Registers the thread's ring on first record and retires it (moving the
/// buffered events into the sink) when the thread exits. Namespace-scope
/// (not anonymous) so the friend declaration in TraceBuffer names it.
struct ThreadRingOwner {
  std::shared_ptr<TraceBuffer::Ring> ring;
  ~ThreadRingOwner() {
    if (ring) TraceBuffer::global().retire(*ring);
  }
};

TraceBuffer& TraceBuffer::global() {
  static TraceBuffer* const g = new TraceBuffer();
  return *g;
}

TraceBuffer::Ring& TraceBuffer::local_ring() {
  static thread_local ThreadRingOwner owner;
  if (!owner.ring) {
    owner.ring = std::make_shared<Ring>();
    owner.ring->tid = thread_id();
    const std::lock_guard<std::mutex> lock(mutex_);
    rings_.push_back(owner.ring);
  }
  return *owner.ring;
}

void TraceBuffer::record(const TraceEvent& e) { local_ring().push(e); }

void TraceBuffer::retire(Ring& ring) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ring.copy_to(retired_, retired_dropped_);
  for (auto it = rings_.begin(); it != rings_.end(); ++it) {
    if (it->get() == &ring) {
      rings_.erase(it);
      break;
    }
  }
}

std::vector<TraceEvent> TraceBuffer::events() const {
  std::vector<TraceEvent> out;
  std::uint64_t dropped = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out = retired_;
    for (const auto& r : rings_) r->copy_to(out, dropped);
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.tid < b.tid;
            });
  return out;
}

std::uint64_t TraceBuffer::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t dropped = retired_dropped_;
  for (const auto& r : rings_) {
    const std::uint64_t h = r->head.load(std::memory_order_acquire);
    const std::uint64_t oldest = h > kRingCapacity ? h - kRingCapacity : 0;
    if (oldest > r->base) dropped += oldest - r->base;
  }
  return dropped;
}

void TraceBuffer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  retired_.clear();
  retired_dropped_ = 0;
  // Live rings stay registered (single-writer discipline forbids resetting
  // their heads from here); marking `base` at the current head discards
  // everything recorded so far.
  for (const auto& r : rings_) {
    r->base = r->head.load(std::memory_order_acquire);
  }
}

bool TraceBuffer::write_chrome_trace(const std::string& path) const {
  const std::vector<TraceEvent> evs = events();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "telemetry: cannot write trace to %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [");
  bool first = true;
  for (const TraceEvent& e : evs) {
    if (e.name == nullptr) continue;  // torn slot from a racing wrap
    std::fprintf(f,
                 "%s\n{\"name\": \"%s\", \"ph\": \"X\", \"pid\": 1, "
                 "\"tid\": %u, \"ts\": %.3f, \"dur\": %.3f}",
                 first ? "" : ",", e.name, e.tid,
                 static_cast<double>(e.start_ns) / 1e3,
                 static_cast<double>(e.dur_ns) / 1e3);
    first = false;
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
  return true;
}

}  // namespace jpg::telemetry
