# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for verified_download_test.
