// BitstreamCircuitExtractor: decodes configuration memory back into a
// logical netlist.
//
// This is the inverse of the implementation flow and the backbone of the
// repository's strongest invariant: after any sequence of full and partial
// configuration loads, extract_circuit(config memory) must yield a circuit
// that simulates identically to the golden netlist. Extraction walks the
// *configured* fabric only — used logic elements (per slice control fields)
// and programmed muxes — and reconstructs nets by tracing each input mux
// back through selected sources to a driver terminal (slice output pin, pad
// or GCLK).
//
// External ports of the extracted netlist are pad names "P<n>" (Device pad
// numbering), since pad identity is all the configuration itself knows.
#pragma once

#include <string>
#include <vector>

#include "bitstream/config_memory.h"
#include "netlist/netlist.h"

namespace jpg {

/// Raised on inconsistent configuration: muxes selecting unconnectable edge
/// sources, sinks tracing to unused logic, multiple drivers on a long line,
/// combinational config corruption, FFs without a clock, ...
class ExtractError : public JpgError {
 public:
  explicit ExtractError(const std::string& what) : JpgError(what) {}
};

struct ExtractedFf {
  CellId cell = kNullCell;  ///< DFF cell in the extracted netlist
  SliceSite site;
  int le = 0;  ///< 0 = F/X element, 1 = G/Y element
};

struct ExtractedCircuit {
  Netlist netlist{"extracted"};
  std::vector<ExtractedFf> ffs;  ///< physical identity of every DFF
  /// Count of used logic elements (LUTs or FFs) found.
  std::size_t used_les = 0;
};

/// Decodes `mem` into a circuit. Throws ExtractError on inconsistent
/// configuration.
[[nodiscard]] ExtractedCircuit extract_circuit(const ConfigMemory& mem);

}  // namespace jpg
