# Empty compiler generated dependencies file for bitstream_test.
# This may be replaced when dependencies are built.
