#include "core/partial_gen.h"

#include "support/error.h"
#include "support/log.h"

namespace jpg {

PartialBitstreamGenerator::PartialBitstreamGenerator(const ConfigMemory& base)
    : base_(&base), device_(&base.device()) {}

ConfigMemory PartialBitstreamGenerator::compose(
    const ConfigMemory& module_config, const Region& region) const {
  JPG_REQUIRE(&module_config.device() == device_ ||
                  module_config.device().spec().name == device_->spec().name,
              "module config targets a different device");
  JPG_REQUIRE(region.in_bounds(*device_), "region out of bounds");

  ConfigMemory out = *base_;
  const FrameMap& fm = device_->frames();
  for (const int major : region.clb_majors(*device_)) {
    for (int minor = 0; minor < fm.frames_in_major(major); ++minor) {
      const std::size_t idx = fm.frame_index(major, minor);
      BitVector& frame = out.frame(idx);
      const BitVector& mod = module_config.frame(idx);
      // Replace only the region rows' windows; out-of-region rows keep the
      // base content, so rewriting the frame is non-disruptive.
      for (int r = region.r0; r <= region.r1; ++r) {
        const std::size_t base_bit = fm.row_bit_base(r);
        for (int b = 0; b < FrameMap::kBitsPerRow; ++b) {
          frame.set(base_bit + static_cast<std::size_t>(b),
                    mod.get(base_bit + static_cast<std::size_t>(b)));
        }
      }
    }
  }
  return out;
}

PartialGenResult PartialBitstreamGenerator::generate_frames(
    const ConfigMemory& content, const std::vector<std::size_t>& frames,
    const PartialGenOptions& opts) const {
  const FrameMap& fm = device_->frames();
  PartialGenResult result;
  result.frames = frames;

  BitstreamWriter w(*device_);
  w.begin();
  w.write_cmd(Command::RCRC);
  w.write_reg(ConfigReg::FLR, static_cast<std::uint32_t>(fm.frame_words() - 1));
  w.write_reg(ConfigReg::IDCODE, device_->spec().idcode);
  w.write_cmd(Command::WCFG);

  // Contiguous runs share one FAR + FDRI block.
  std::size_t i = 0;
  while (i < result.frames.size()) {
    std::size_t j = i + 1;
    while (j < result.frames.size() &&
           result.frames[j] == result.frames[j - 1] + 1) {
      ++j;
    }
    const FrameAddress a = fm.address_of_index(result.frames[i]);
    w.write_reg(ConfigReg::FAR, fm.encode_far(a));
    w.write_frames(content, result.frames[i], j - i);
    ++result.far_blocks;
    i = j;
  }

  if (opts.include_crc) w.write_crc();
  w.write_cmd(Command::LFRM);
  // No START: the device stays live through a dynamic partial load.
  result.bitstream = w.finish();
  return result;
}

PartialGenResult PartialBitstreamGenerator::generate(
    const ConfigMemory& module_config, const Region& region,
    const PartialGenOptions& opts) const {
  const FrameMap& fm = device_->frames();
  const ConfigMemory composed = compose(module_config, region);

  // Frames to ship: the region columns' frames, optionally reduced to those
  // that differ from the base.
  std::vector<std::size_t> frames;
  for (const int major : region.clb_majors(*device_)) {
    for (int minor = 0; minor < fm.frames_in_major(major); ++minor) {
      const std::size_t idx = fm.frame_index(major, minor);
      if (!opts.diff_only ||
          composed.frame(idx).differs_from(base_->frame(idx))) {
        frames.push_back(idx);
      }
    }
  }
  PartialGenResult result = generate_frames(composed, frames, opts);
  JPG_INFO("partial bitstream for " << region.to_string() << ": "
                                    << result.frames.size() << " frames in "
                                    << result.far_blocks << " blocks, "
                                    << result.bitstream.size_bytes()
                                    << " bytes");
  return result;
}

PartialGenResult PartialBitstreamGenerator::generate_bram_update(
    const ConfigMemory& content, Side side,
    const PartialGenOptions& opts) const {
  const FrameMap& fm = device_->frames();
  const int bram_major = side == Side::Left ? 0 : 1;
  std::vector<std::size_t> frames;
  for (int minor = 0; minor < FrameMap::kBramFrames; ++minor) {
    const std::size_t idx = fm.bram_frame_index(bram_major, minor);
    if (!opts.diff_only ||
        content.frame(idx).differs_from(base_->frame(idx))) {
      frames.push_back(idx);
    }
  }
  PartialGenResult result = generate_frames(content, frames, opts);
  JPG_INFO("BRAM partial update (" << (side == Side::Left ? "left" : "right")
                                   << "): " << result.frames.size()
                                   << " frames, "
                                   << result.bitstream.size_bytes()
                                   << " bytes");
  return result;
}

void PartialBitstreamGenerator::apply_to_base(
    ConfigMemory& base, const ConfigMemory& module_config,
    const Region& region) const {
  base = compose(module_config, region);
}

}  // namespace jpg
