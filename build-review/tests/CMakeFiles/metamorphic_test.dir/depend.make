# Empty dependencies file for metamorphic_test.
# This may be replaced when dependencies are built.
