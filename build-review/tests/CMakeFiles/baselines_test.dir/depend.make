# Empty dependencies file for baselines_test.
# This may be replaced when dependencies are built.
