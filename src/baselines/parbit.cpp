#include "baselines/parbit.h"

#include <sstream>

#include "bitstream/bitgen.h"
#include "bitstream/bitstream_writer.h"
#include "bitstream/config_port.h"
#include "support/string_util.h"

namespace jpg {

namespace {

/// Options file dialect:
///   mode column|block
///   source R1C7:R16C10      # 1-based inclusive block
///   target R1C13            # top-left corner of the destination
ParbitOptions parse_options(std::string_view text, const std::string& filename) {
  ParbitOptions opts;
  bool have_source = false;
  int line_no = 0;
  for (const std::string& raw : split(text, '\n')) {
    ++line_no;
    const std::string_view line = trim(raw);
    if (line.empty() || line[0] == '#') continue;
    const auto tokens = split_ws(line);
    auto fail = [&](const std::string& why) -> ParseError {
      return ParseError(filename, line_no, why);
    };
    if (tokens[0] == "mode" && tokens.size() == 2) {
      if (iequals(tokens[1], "column")) {
        opts.mode = ParbitOptions::Mode::Column;
      } else if (iequals(tokens[1], "block")) {
        opts.mode = ParbitOptions::Mode::Block;
      } else {
        throw fail("unknown mode '" + tokens[1] + "'");
      }
    } else if (tokens[0] == "source" && tokens.size() == 2) {
      const auto parts = split(tokens[1], ':');
      auto parse_rc = [&](const std::string& s, int& r, int& c) {
        const std::size_t cpos = s.find('C', 1);
        if (s.empty() || s[0] != 'R' || cpos == std::string::npos) {
          throw fail("bad coordinate '" + s + "'");
        }
        const auto rr = parse_uint(std::string_view(s).substr(1, cpos - 1));
        const auto cc = parse_uint(std::string_view(s).substr(cpos + 1));
        if (!rr || !cc || *rr < 1 || *cc < 1) {
          throw fail("bad coordinate '" + s + "'");
        }
        r = static_cast<int>(*rr) - 1;
        c = static_cast<int>(*cc) - 1;
      };
      if (parts.size() != 2) throw fail("source wants R..C..:R..C..");
      parse_rc(parts[0], opts.source.r0, opts.source.c0);
      parse_rc(parts[1], opts.source.r1, opts.source.c1);
      have_source = true;
    } else if (tokens[0] == "target" && tokens.size() == 2) {
      const std::string& s = tokens[1];
      const std::size_t cpos = s.find('C', 1);
      if (s.empty() || s[0] != 'R' || cpos == std::string::npos) {
        throw fail("bad target '" + s + "'");
      }
      const auto rr = parse_uint(std::string_view(s).substr(1, cpos - 1));
      const auto cc = parse_uint(std::string_view(s).substr(cpos + 1));
      if (!rr || !cc || *rr < 1 || *cc < 1) throw fail("bad target '" + s + "'");
      opts.target_r0 = static_cast<int>(*rr) - 1;
      opts.target_c0 = static_cast<int>(*cc) - 1;
    } else {
      throw fail("unknown option '" + tokens[0] + "'");
    }
  }
  if (!have_source) {
    throw JpgError("parbit options missing 'source'");
  }
  return opts;
}

}  // namespace

ParbitOptions ParbitOptions::parse(std::string_view text,
                                   const std::string& filename) {
  ParbitOptions opts = parse_options(text, filename);
  if (opts.target_r0 == 0 && opts.target_c0 == 0 && !opts.relocated()) {
    // Default target = source corner (covers files without a 'target').
    opts.target_r0 = opts.source.r0;
    opts.target_c0 = opts.source.c0;
  }
  return opts;
}

std::string ParbitOptions::to_text() const {
  std::ostringstream os;
  os << "# parbit options\n";
  os << "mode " << (mode == Mode::Column ? "column" : "block") << "\n";
  os << "source R" << (source.r0 + 1) << "C" << (source.c0 + 1) << ":R"
     << (source.r1 + 1) << "C" << (source.c1 + 1) << "\n";
  os << "target R" << (target_r0 + 1) << "C" << (target_c0 + 1) << "\n";
  return os.str();
}

ParbitResult parbit_transform(const Bitstream& new_design,
                              const Bitstream& target,
                              const ParbitOptions& opts) {
  const Device& dev = device_for_bitstream(new_design);
  const FrameMap& fm = dev.frames();
  JPG_REQUIRE(opts.source.in_bounds(dev), "source block out of bounds");
  const int dc = opts.target_c0 - opts.source.c0;
  const int dr = opts.target_r0 - opts.source.r0;
  const Region dest{opts.source.r0 + dr, opts.source.c0 + dc,
                    opts.source.r1 + dr, opts.source.c1 + dc};
  JPG_REQUIRE(dest.in_bounds(dev), "target block out of bounds");
  if (opts.mode == ParbitOptions::Mode::Column && dr != 0) {
    // Column mode ships whole frames, and a frame is a full-height
    // bit-column: there is no row to rewrite, so a vertical shift is a
    // structural impossibility, not a routing concern. Reject it up front
    // with the same typed error the PbitRelocator's checker uses.
    throw RelocError(RelocError::Kind::VerticalColumnMode,
                     "column mode cannot relocate vertically (dr=" +
                         std::to_string(dr) + "); use block mode");
  }

  // Load the new design's configuration plane.
  ConfigMemory fresh(dev);
  {
    ConfigPort port(fresh);
    port.load(new_design);
  }

  // Block mode needs the current (target) plane for the row merge.
  ConfigMemory current(dev);
  if (opts.mode == ParbitOptions::Mode::Block) {
    const Device& tdev = device_for_bitstream(target);
    JPG_REQUIRE(&tdev == &dev, "new and target bitstreams disagree on device");
    ConfigPort port(current);
    port.load(target);
  }

  // Compose the frames to ship, column by column.
  BitstreamWriter w(dev);
  w.begin();
  w.write_cmd(Command::RCRC);
  w.write_reg(ConfigReg::FLR, static_cast<std::uint32_t>(fm.frame_words() - 1));
  w.write_reg(ConfigReg::IDCODE, dev.spec().idcode);
  w.write_cmd(Command::WCFG);

  ParbitResult result;
  ConfigMemory staged(dev);  // destination-frame scratch
  for (int sc = opts.source.c0; sc <= opts.source.c1; ++sc) {
    const int tc = sc + dc;
    const int smajor = fm.major_of_clb_col(sc);
    const int tmajor = fm.major_of_clb_col(tc);
    const std::size_t n_minors =
        static_cast<std::size_t>(fm.frames_in_major(smajor));
    for (std::size_t minor = 0; minor < n_minors; ++minor) {
      const std::size_t sidx = fm.frame_index(smajor, static_cast<int>(minor));
      const std::size_t tidx = fm.frame_index(tmajor, static_cast<int>(minor));
      BitVector frame = opts.mode == ParbitOptions::Mode::Block
                            ? current.frame(tidx)
                            : BitVector(fm.frame_bits());
      // Copy the block rows (relocated by dr) from the new design. Row
      // windows are contiguous, so the whole block is one word-level blit.
      frame.copy_range(fresh.frame(sidx), fm.row_bit_base(opts.source.r0),
                       fm.row_bit_base(opts.source.r0 + dr),
                       static_cast<std::size_t>(opts.source.height()) *
                           FrameMap::kBitsPerRow);
      if (opts.mode == ParbitOptions::Mode::Column) {
        // Column mode ships the full source frame rows as-is (relocation of
        // whole columns); out-of-block rows come from the new design too.
        frame = fresh.frame(sidx);
      }
      staged.frame(tidx) = frame;
    }
    // One FAR + FDRI run per destination column.
    w.write_reg(ConfigReg::FAR, fm.encode_far(
                                    {0, static_cast<std::uint32_t>(tmajor), 0}));
    w.write_frames(staged, fm.frame_index(tmajor, 0), n_minors);
    result.frames += n_minors;
  }

  w.write_crc();
  w.write_cmd(Command::LFRM);
  result.bitstream = w.finish();
  return result;
}

}  // namespace jpg
