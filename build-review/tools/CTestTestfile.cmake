# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-review/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
