#include "core/xdl_to_cbits.h"

#include <sstream>

#include "support/log.h"

namespace jpg {

Region region_from_ucf(const UcfData& ucf, const Device& device) {
  if (ucf.area_group_ranges.empty()) {
    throw JpgError("module UCF declares no AREA_GROUP RANGE: JPG cannot "
                   "locate the reconfigurable region");
  }
  if (ucf.area_group_ranges.size() > 1) {
    throw JpgError("module UCF declares multiple AREA_GROUP ranges; a "
                   "partial design has exactly one region");
  }
  const Region reg = ucf.area_group_ranges.begin()->second;
  JPG_REQUIRE(reg.in_bounds(device), "UCF region out of device bounds");
  return reg;
}

XdlBindResult bind_xdl_module(const XdlDesign& xdl, const UcfData& ucf,
                              ConfigMemory& target) {
  XdlBindResult result;
  result.design = placed_design_from_xdl(xdl);
  PlacedDesign& d = *result.design;
  const Device& dev = d.device();
  JPG_REQUIRE(&dev == &target.device() ||
                  dev.spec().name == target.device().spec().name,
              "XDL targets a different device than the base bitstream");

  result.region = region_from_ucf(ucf, dev);
  d.region = result.region;

  // --- Validate placement against the floorplan --------------------------------
  for (std::size_t i = 0; i < d.slices.size(); ++i) {
    const SliceSite s = d.slice_sites[i];
    if (!result.region.contains({s.r, s.c})) {
      std::ostringstream os;
      os << "instance '" << d.slices[i].name << "' is placed at "
         << dev.slice_site_name(s) << ", outside the floorplanned region "
         << result.region.to_string();
      throw DeviceError(os.str());
    }
  }
  if (!d.iob_cells.empty()) {
    throw DeviceError("a partial design cannot contain placed IOBs; ports "
                      "must be boundary PORT instances");
  }
  // LOC constraints from the UCF must be honoured by the XDL placement.
  const Netlist& nl = d.netlist();
  for (const auto& [cell_name, site] : ucf.inst_locs) {
    const auto cell = nl.find_cell(cell_name);
    if (!cell) continue;  // LOCs may reference cells of other variants
    if (d.cell_place.count(*cell) == 0 || d.site_of(*cell) != site) {
      throw DeviceError("cell '" + cell_name + "' violates its UCF LOC " +
                        dev.slice_site_name(site));
    }
  }
  // Every pip must program a tile inside the region: partial designs own
  // only their region's columns.
  for (const RoutedNet& rn : d.routes) {
    for (const RoutedPip& p : rn.pips) {
      if (!result.region.contains(p.tile)) {
        std::ostringstream os;
        os << "net pip at tile " << dev.tile_name(p.tile)
           << " lies outside the region " << result.region.to_string();
        throw DeviceError(os.str());
      }
    }
    if (!rn.iob_pips.empty()) {
      throw DeviceError("a partial design cannot program IOB muxes");
    }
  }
  for (const RoutedPip& p : d.clock_pips) {
    JPG_REQUIRE(result.region.contains(p.tile),
                "clock pip outside the region");
  }

  // --- Program the plane ---------------------------------------------------------
  CBits cb(target);
  result.cbits_calls = d.apply(cb);
  JPG_DEBUG("bound XDL module '" << nl.name() << "' with "
                                 << result.cbits_calls << " CBits calls");
  return result;
}

}  // namespace jpg
