// FIG4 — the paper's Figure 4 / §4.1 arithmetic, measured.
//
// Three regions with 3, 3 and 4 module implementations. A conventional flow
// needs one complete CAD run (and one complete bitstream) per combination:
// 3*3*4 = 36. With JPG: one base run plus 3+3+4 = 10 module runs, each about
// a third the work, and 10 partial bitstreams each a fraction of the full
// size. This bench measures both paths end to end and prints the
// bookkeeping rows of §4.1.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "bitstream/bitgen.h"
#include "core/jpg.h"
#include "scenarios.h"
#include "ucf/ucf_parser.h"
#include "xdl/xdl_writer.h"

namespace jpg {
namespace {

const Device& dev() { return Device::get("XCV50"); }

/// One conventional CAD run: full base flow with the given variant choice.
double conventional_run(int va, int vb, int vc, std::size_t* bytes) {
  const benchutil::Stopwatch sw;
  auto slots = scenarios::fig4_slots(dev());
  // Swap the chosen variants into slot position 0.
  std::swap(slots[0].variants[0], slots[0].variants[static_cast<std::size_t>(va)]);
  std::swap(slots[1].variants[0], slots[1].variants[static_cast<std::size_t>(vb)]);
  std::swap(slots[2].variants[0], slots[2].variants[static_cast<std::size_t>(vc)]);
  auto base = scenarios::build_base(dev(), slots);
  FlowOptions opt;
  opt.seed = static_cast<std::uint64_t>(va * 16 + vb * 4 + vc + 1);
  const BaseFlowResult res = run_base_flow(dev(), base.top, base.specs, opt);
  ConfigMemory mem(dev());
  CBits cb(mem);
  res.design->apply(cb);
  const Bitstream bit = generate_full_bitstream(mem);
  if (bytes != nullptr) *bytes = bit.size_bytes();
  return sw.seconds();
}

void BM_ConventionalCombination(benchmark::State& state) {
  std::size_t bytes = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(conventional_run(1, 1, 2, &bytes));
  }
  state.counters["bitstream_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_ConventionalCombination)->Unit(benchmark::kMillisecond);

void BM_JpgModuleFlowAndPartial(benchmark::State& state) {
  // Fixed base, repeatedly implement + extract one module variant.
  const auto slots = scenarios::fig4_slots(dev());
  auto base = scenarios::build_base(dev(), slots);
  const BaseFlowResult bres = run_base_flow(dev(), base.top, base.specs, {});
  ConfigMemory mem(dev());
  CBits cb(mem);
  bres.design->apply(cb);
  const Bitstream base_bit = generate_full_bitstream(mem);
  Jpg tool(base_bit);
  UcfData ucf;
  ucf.area_group_ranges["AG"] = slots[1].region;
  const std::string ucf_text = write_ucf(ucf, dev());

  std::size_t bytes = 0;
  for (auto _ : state) {
    const ModuleFlowResult mod = run_module_flow(
        dev(), scenarios::variant(slots[1], "nrz").netlist,
        bres.interface_of("u_enc"));
    const auto res =
        tool.generate_partial_from_text(write_xdl(*mod.design), ucf_text);
    bytes = res.partial.size_bytes();
    benchmark::DoNotOptimize(res.frames.size());
  }
  state.counters["partial_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_JpgModuleFlowAndPartial)->Unit(benchmark::kMillisecond);

/// The full Figure-4 bookkeeping, measured once and printed as the paper's
/// rows.
void print_fig4_summary() {
  using benchutil::fmt;
  // --- JPG path: 1 base + 10 module flows + 10 partials ----------------------
  const benchutil::Stopwatch sw_base;
  const auto slots = scenarios::fig4_slots(dev());
  auto base = scenarios::build_base(dev(), slots);
  const BaseFlowResult bres = run_base_flow(dev(), base.top, base.specs, {});
  ConfigMemory mem(dev());
  CBits cb(mem);
  bres.design->apply(cb);
  const Bitstream base_bit = generate_full_bitstream(mem);
  const double base_s = sw_base.seconds();

  Jpg tool(base_bit);
  double modules_s = 0;
  std::size_t partial_bytes_total = 0, partial_count = 0;
  std::size_t min_partial = SIZE_MAX, max_partial = 0;
  for (const auto& slot : slots) {
    UcfData ucf;
    ucf.area_group_ranges["AG_" + slot.partition] = slot.region;
    const std::string ucf_text = write_ucf(ucf, dev());
    for (const auto& v : slot.variants) {
      const benchutil::Stopwatch sw;
      const ModuleFlowResult mod =
          run_module_flow(dev(), v.netlist, bres.interface_of(slot.partition));
      const auto res =
          tool.generate_partial_from_text(write_xdl(*mod.design), ucf_text);
      modules_s += sw.seconds();
      partial_bytes_total += res.partial.size_bytes();
      min_partial = std::min(min_partial, res.partial.size_bytes());
      max_partial = std::max(max_partial, res.partial.size_bytes());
      ++partial_count;
    }
  }

  // --- Conventional path: sample 6 of the 36 runs, extrapolate ----------------
  double conv_sample_s = 0;
  std::size_t conv_bytes = 0;
  int sampled = 0;
  const std::vector<std::tuple<int, int, int>> sample_combos = {
      {0, 0, 0}, {1, 1, 1}, {2, 2, 3}, {0, 2, 1}, {2, 0, 2}, {1, 2, 0}};
  for (const auto& [a, b, c] : sample_combos) {
    conv_sample_s += conventional_run(a, b, c, &conv_bytes);
    ++sampled;
  }
  const double conv_per_run = conv_sample_s / sampled;
  const int combos = 3 * 3 * 4;

  benchutil::Table t({"approach", "CAD runs", "tool time (s)",
                      "stored bytes", "bytes per switch"});
  t.row({"conventional (36 full bitstreams)", std::to_string(combos),
         fmt(conv_per_run * combos, 2),
         std::to_string(static_cast<std::size_t>(combos) * conv_bytes),
         std::to_string(conv_bytes)});
  t.row({"JPG (1 base + 10 partials)", "1 + " + std::to_string(partial_count),
         fmt(base_s + modules_s, 2),
         std::to_string(base_bit.size_bytes() + partial_bytes_total),
         std::to_string(partial_bytes_total / partial_count) + " (avg)"});
  t.print("FIG4: 3 regions x {3,3,4} variants on " + dev().spec().name);
  std::printf("paper claim: 36 runs vs 10+1; partials 'about a third' of a "
              "full bitstream\n");
  std::printf("measured: partial range %zu..%zu bytes vs full %zu bytes "
              "(ratio %.2f..%.2f)\n",
              min_partial, max_partial, base_bit.size_bytes(),
              static_cast<double>(min_partial) /
                  static_cast<double>(base_bit.size_bytes()),
              static_cast<double>(max_partial) /
                  static_cast<double>(base_bit.size_bytes()));
  std::printf("measured: per-module CAD run %.1fx faster than a full run\n",
              conv_per_run / (modules_s / static_cast<double>(partial_count)));
}

}  // namespace
}  // namespace jpg

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  jpg::print_fig4_summary();
  return 0;
}
