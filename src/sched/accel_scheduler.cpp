#include "sched/accel_scheduler.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/partial_gen.h"
#include "core/relocate.h"
#include "sim/bitstream_sim.h"
#include "support/error.h"
#include "support/rng.h"
#include "support/telemetry/telemetry.h"

namespace jpg::sched {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Simulates one node at `slot` on the composed full plane: drive the input
/// stream on the slot's pad, sample the output pad each cycle.
std::vector<bool> sim_trace(const SchedFixture& fixture,
                            const ConfigMemory& plane, std::size_t slot,
                            const std::vector<bool>& input) {
  BitstreamSim sim(plane);
  const int p_in = fixture.in_pad(slot);
  const int p_out = fixture.out_pad(slot);
  std::vector<bool> out;
  out.reserve(input.size());
  for (const bool b : input) {
    sim.set_pad(p_in, b);
    sim.step();
    out.push_back(sim.get_pad(p_out));
  }
  return out;
}

}  // namespace

std::string_view placement_name(Placement p) {
  switch (p) {
    case Placement::Reuse: return "reuse";
    case Placement::Relocated: return "relocated";
    case Placement::Cold: return "cold";
  }
  return "?";
}

std::vector<bool> node_input(const TaskGraph& graph, std::size_t node,
                             const std::vector<std::vector<bool>>& traces,
                             int sim_cycles) {
  JPG_REQUIRE(node < graph.nodes.size(), "node index out of range");
  const TaskNode& n = graph.nodes[node];
  std::vector<bool> in(static_cast<std::size_t>(sim_cycles), false);
  if (n.preds.empty()) {
    Rng rng(n.stimulus_seed);
    for (std::size_t i = 0; i < in.size(); ++i) {
      in[i] = (rng.next() & 1) != 0;
    }
  } else {
    for (const std::size_t p : n.preds) {
      JPG_REQUIRE(p < traces.size() && traces[p].size() == in.size(),
                  "predecessor trace missing for node " + n.name);
      for (std::size_t i = 0; i < in.size(); ++i) {
        in[i] = in[i] != traces[p][i];
      }
    }
  }
  return in;
}

std::vector<std::vector<bool>> reference_traces(const SchedFixture& fixture,
                                                const TaskGraph& graph,
                                                int sim_cycles) {
  graph.validate();
  PartialBitstreamGenerator gen(fixture.base());
  std::vector<std::vector<bool>> traces(graph.nodes.size());
  for (std::size_t i = 0; i < graph.nodes.size(); ++i) {
    const TaskNode& n = graph.nodes[i];
    const std::vector<bool> in = node_input(graph, i, traces, sim_cycles);
    const ConfigMemory plane =
        gen.compose(fixture.plane(n.kernel, n.pool.front(), 0),
                    fixture.slots()[0]);
    traces[i] = sim_trace(fixture, plane, 0, in);
  }
  return traces;
}

AcceleratorScheduler::AcceleratorScheduler(const SchedFixture& fixture,
                                           SchedConfig cfg)
    : fixture_(&fixture), cfg_(std::move(cfg)) {
  JPG_REQUIRE(cfg_.num_boards >= 1, "scheduler needs at least one board");
  JPG_REQUIRE(cfg_.workers >= 1, "scheduler needs at least one worker");
  JPG_REQUIRE(cfg_.sim_cycles >= 1, "sim_cycles must be positive");

  ServiceConfig svc = cfg_.service;
  svc.allow_relocation = cfg_.allow_relocation;
  if (cfg_.allow_relocation) {
    // Uniform sockets: every slot binds the same interface, so containment
    // (which flowed modules always violate — their crossings escape the
    // region) is safely relaxed. The oracle family re-proves this by trace
    // equality per placement.
    svc.reloc_require_containment = false;
  }
  const auto user_hook = svc.on_complete;
  svc.on_complete = [this, user_hook](const ServiceResponse& resp) {
    {
      const std::lock_guard<std::mutex> guard(lock_);
      ++stats_.completion_events;
    }
    JPG_COUNT("sched.svc_completions", 1);
    if (user_hook) user_hook(resp);
  };
  svc_ = std::make_unique<ReconfigService>(fixture.device(), fixture.base(),
                                           cfg_.num_boards, std::move(svc));

  // Private pool: node tasks block on service futures, so the scheduler must
  // not share a pool with the service (ThreadPool::sized caches by width —
  // same width would alias). See SchedConfig::workers.
  pool_ = std::make_shared<ThreadPool>(cfg_.workers);

  boards_.resize(cfg_.num_boards);
  for (BoardState& b : boards_) {
    b.slots.resize(fixture_->slots().size());
  }
  JPG_GAUGE_SET("sched.boards", static_cast<std::int64_t>(cfg_.num_boards));

  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

AcceleratorScheduler::~AcceleratorScheduler() { shutdown(true); }

AppTicket AcceleratorScheduler::submit(TaskGraph graph) {
  graph.validate();
  for (const TaskNode& n : graph.nodes) {
    const auto& kernels = fixture_->kernels();
    JPG_REQUIRE(std::find(kernels.begin(), kernels.end(), n.kernel) !=
                    kernels.end(),
                "unknown kernel '" + n.kernel + "' in node " + n.name);
    for (const int impl : n.pool) {
      JPG_REQUIRE(impl >= 0 && static_cast<std::size_t>(impl) <
                                   fixture_->impls_per_kernel(),
                  "impl variant out of fixture range in node " + n.name);
    }
  }

  auto app = std::make_shared<AppCtx>();
  app->graph = std::move(graph);
  const std::size_t n = app->graph.nodes.size();
  app->state.assign(n, NodeState::Waiting);
  app->traces.resize(n);
  app->results.resize(n);
  app->ready_ns.assign(n, 0);
  app->unfinished = n;

  AppTicket ticket;
  {
    std::unique_lock<std::mutex> lk(lock_);
    JPG_REQUIRE(accepting_, "scheduler is shut down");
    app->id = next_app_++;
    ticket.id = app->id;
    ticket.report = app->promise.get_future().share();
    for (std::size_t i = 0; i < n; ++i) {
      app->results[i].node = i;
      app->results[i].kernel = app->graph.nodes[i].kernel;
      if (app->graph.nodes[i].preds.empty()) {
        app->state[i] = NodeState::Ready;
        app->ready_ns[i] = now_ns();
      }
    }
    ++stats_.apps_submitted;
    apps_.push_back(app);
    if (n == 0) finalize_app_locked(*app);
    // A submit that lands while every board is revoked and nothing is in
    // flight can never place; without this check the app's future would
    // only resolve via a completion that will never happen.
    if (inflight_ == 0 && all_boards_revoked_locked()) {
      fail_unstarted_locked("all boards revoked");
    }
  }
  JPG_COUNT("sched.apps.submitted", 1);
  cv_.notify_all();
  return ticket;
}

bool AcceleratorScheduler::all_boards_revoked_locked() const {
  for (const BoardState& b : boards_) {
    if (!b.revoked) return false;
  }
  return true;
}

bool AcceleratorScheduler::pick_dispatch_locked(Dispatch& out) {
  // Free (board, slot) pairs on unrevoked boards.
  std::vector<std::pair<int, int>> free_slots;
  for (std::size_t b = 0; b < boards_.size(); ++b) {
    if (boards_[b].revoked) continue;
    for (std::size_t s = 0; s < boards_[b].slots.size(); ++s) {
      if (!boards_[b].slots[s].busy) {
        free_slots.emplace_back(static_cast<int>(b), static_cast<int>(s));
      }
    }
  }
  if (free_slots.empty()) return false;

  for (const auto& app : apps_) {
    if (app->finalized) continue;
    for (std::size_t i = 0; i < app->graph.nodes.size(); ++i) {
      if (app->state[i] != NodeState::Ready) continue;
      const TaskNode& node = app->graph.nodes[i];

      int board = -1;
      int slot = -1;
      int impl = node.pool[(app->id + i) % node.pool.size()];
      Placement placement = Placement::Cold;

      // Rung 1 — reuse: a free slot already holds a pool variant.
      if (cfg_.locality) {
        for (const auto& [b, s] : free_slots) {
          const std::string& resident =
              boards_[static_cast<std::size_t>(b)]
                  .slots[static_cast<std::size_t>(s)]
                  .variant;
          if (resident.empty()) continue;
          for (const int cand : node.pool) {
            if (SchedFixture::variant_label(node.kernel, cand) == resident) {
              board = b;
              slot = s;
              impl = cand;
              placement = Placement::Reuse;
              break;
            }
          }
          if (board >= 0) break;
        }
      }
      // Rung 2 — relocation: a donor lease of a pool variant exists
      // somewhere. The index is advisory; if the service can no longer find
      // the donor, the cold retry in execute_node covers it.
      if (board < 0 && cfg_.allow_relocation) {
        for (const int cand : node.pool) {
          const auto it = lease_regions_.find(
              SchedFixture::variant_label(node.kernel, cand));
          if (it != lease_regions_.end() && !it->second.empty()) {
            impl = cand;
            placement = Placement::Relocated;
            break;
          }
        }
        if (placement == Placement::Relocated) {
          board = free_slots.front().first;
          slot = free_slots.front().second;
        }
      }
      // Rung 3 — cold generate. Prefer a slot still holding base v0 so a
      // resident variant elsewhere stays reusable.
      if (board < 0) {
        for (const auto& [b, s] : free_slots) {
          if (boards_[static_cast<std::size_t>(b)]
                  .slots[static_cast<std::size_t>(s)]
                  .variant.empty()) {
            board = b;
            slot = s;
            break;
          }
        }
        if (board < 0) {
          board = free_slots.front().first;
          slot = free_slots.front().second;
        }
        placement = Placement::Cold;
      }

      // Dependency audit: dispatching a node whose predecessor has not
      // completed is a scheduler bug; the oracle gates on this counter.
      for (const std::size_t p : node.preds) {
        if (app->state[p] != NodeState::Done) {
          ++stats_.dep_violations;
          JPG_COUNT("sched.dep_violations", 1);
        }
      }

      app->state[i] = NodeState::Running;
      boards_[static_cast<std::size_t>(board)]
          .slots[static_cast<std::size_t>(slot)]
          .busy = true;
      NodeResult& r = app->results[i];
      r.start_event = ++event_clock_;
      r.board = board;
      r.slot = slot;
      r.placement = placement;
      const std::uint64_t now = now_ns();
      r.queue_wait_ns = app->ready_ns[i] ? now - app->ready_ns[i] : 0;
      JPG_HIST("sched.node.queue_wait_ns", r.queue_wait_ns);

      out.app = app;
      out.node = i;
      out.board = board;
      out.slot = slot;
      out.placement = placement;
      out.impl = impl;
      out.variant = SchedFixture::variant_label(node.kernel, impl);
      return true;
    }
  }
  return false;
}

void AcceleratorScheduler::dispatcher_loop() {
  std::unique_lock<std::mutex> lk(lock_);
  while (!stop_dispatcher_) {
    Dispatch d;
    if (pick_dispatch_locked(d)) {
      ++inflight_;
      ++stats_.nodes_dispatched;
      JPG_COUNT("sched.nodes.dispatched", 1);
      lk.unlock();
      // Futures from submit are intentionally dropped: completion flows
      // through complete_node_locked, and the pool drains in shutdown().
      (void)pool_->submit([this, d] { execute_node(d); });
      lk.lock();
      continue;
    }
    cv_.wait(lk);
  }
}

void AcceleratorScheduler::execute_node(Dispatch d) {
  const TaskNode& node = d.app->graph.nodes[d.node];
  const Region region = fixture_->slots()[static_cast<std::size_t>(d.slot)];

  NodeResult result;
  std::vector<bool> input;
  {
    const std::lock_guard<std::mutex> guard(lock_);
    result = d.app->results[d.node];
    // Predecessor traces are final once a node is Ready; copy under lock so
    // the read is ordered after the writers' completions.
    input = node_input(d.app->graph, d.node, d.app->traces, cfg_.sim_cycles);
  }
  result.variant = d.variant;

  // Attempt ladder: the planned placement first, then cold retries (each
  // with the fixture's own plane — always serveable).
  ServiceResponse resp;
  bool sent_cold = d.placement == Placement::Cold;
  for (int attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
    ServiceRequest req;
    req.tenant = "app" + std::to_string(d.app->id);
    req.kind = RequestKind::Swap;
    req.board = d.board;
    req.region = region;
    req.variant = result.variant;
    req.cookie = (d.app->id << 32) | static_cast<std::uint64_t>(d.node);
    if (attempt == 0 && d.placement == Placement::Relocated) {
      req.module_config = nullptr;  // force the donor-relocation path
    } else {
      req.module_config =
          &fixture_->plane(node.kernel, d.impl,
                           static_cast<std::size_t>(d.slot));
    }
    resp = svc_->submit(req).get();
    if (resp.ok()) {
      if (attempt > 0 || (sent_cold && d.placement != Placement::Cold)) {
        // Ladder fell through to a cold serve; account it as such.
        result.placement = Placement::Cold;
      } else {
        result.placement = d.placement;
      }
      break;
    }
    if (attempt < cfg_.max_retries) {
      sent_cold = true;
      const std::lock_guard<std::mutex> guard(lock_);
      ++stats_.swap_retries;
      JPG_COUNT("sched.swap_retries", 1);
    }
  }

  if (resp.ok()) {
    // Completion bus payload: decode the pbit the service actually applied
    // (applied_pbits is the ground truth — relocation-served requests carry
    // the donor's translated stream, not the fixture plane) and simulate.
    try {
      const std::vector<AppliedSlot> applied =
          svc_->applied_pbits(static_cast<std::size_t>(d.board));
      const AppliedSlot* mine = nullptr;
      for (const AppliedSlot& a : applied) {
        if (a.region == region) mine = &a;  // ascending seq: last wins
      }
      JPG_REQUIRE(mine != nullptr,
                  "service reported success but no applied pbit at slot");
      PartialBitstreamGenerator gen(fixture_->base());
      const PbitRelocator reloc(gen);
      const ConfigMemory plane = reloc.decode(mine->pbit, region);
      result.trace = sim_trace(*fixture_, plane,
                               static_cast<std::size_t>(d.slot), input);
      result.ok = true;
    } catch (const JpgError& e) {
      result.ok = false;
      result.error = e.what();
    }
    result.queue_wait_ns += resp.queue_wait_ns;
    result.service_ns = resp.service_ns;
  } else {
    result.ok = false;
    result.error = std::string(service_error_name(resp.error)) +
                   (resp.message.empty() ? "" : ": " + resp.message);
  }
  d.placement = result.placement;

  std::unique_lock<std::mutex> lk(lock_);
  complete_node_locked(lk, d, std::move(result));
}

void AcceleratorScheduler::complete_node_locked(
    std::unique_lock<std::mutex>& lock, const Dispatch& d, NodeResult result) {
  (void)lock;
  AppCtx& app = *d.app;
  result.end_event = ++event_clock_;

  BoardState& board = boards_[static_cast<std::size_t>(d.board)];
  SlotState& slot = board.slots[static_cast<std::size_t>(d.slot)];
  slot.busy = false;
  if (result.ok) {
    slot.variant = result.variant;
    lease_regions_[result.variant].insert(
        fixture_->slots()[static_cast<std::size_t>(d.slot)].to_string());
  }

  --inflight_;
  const std::size_t i = d.node;
  if (result.ok) {
    app.state[i] = NodeState::Done;
    app.traces[i] = result.trace;
    ++stats_.nodes_completed;
    JPG_COUNT("sched.nodes.completed", 1);
    switch (result.placement) {
      case Placement::Reuse:
        ++stats_.placements_reuse;
        JPG_COUNT("sched.placements.reuse", 1);
        break;
      case Placement::Relocated:
        ++stats_.placements_relocated;
        JPG_COUNT("sched.placements.relocated", 1);
        break;
      case Placement::Cold:
        ++stats_.placements_cold;
        JPG_COUNT("sched.placements.cold", 1);
        break;
    }
  } else {
    app.state[i] = NodeState::Failed;
    ++stats_.nodes_failed;
    JPG_COUNT("sched.nodes.failed", 1);
  }
  app.results[i] = std::move(result);
  --app.unfinished;

  if (app.state[i] == NodeState::Done && !app.cancelled) {
    // Ready the successors whose predecessors are all complete.
    for (std::size_t j = i + 1; j < app.graph.nodes.size(); ++j) {
      if (app.state[j] != NodeState::Waiting) continue;
      bool ready = false;
      bool all_done = true;
      for (const std::size_t p : app.graph.nodes[j].preds) {
        if (p == i) ready = true;
        if (app.state[p] != NodeState::Done) all_done = false;
      }
      if (ready && all_done) {
        app.state[j] = NodeState::Ready;
        app.ready_ns[j] = now_ns();
      }
    }
  } else {
    // Failure or cancellation: nothing further from this app can run.
    for (std::size_t j = 0; j < app.graph.nodes.size(); ++j) {
      if (app.state[j] == NodeState::Waiting ||
          app.state[j] == NodeState::Ready) {
        app.state[j] = NodeState::Cancelled;
        app.results[j].error =
            app.cancelled ? "cancelled" : "predecessor failed";
        ++stats_.nodes_cancelled;
        --app.unfinished;
      }
    }
  }

  if (app.unfinished == 0 && !app.finalized) finalize_app_locked(app);
  // A revocation that raced with in-flight nodes resolves here: once the
  // last running node drains and no board remains, nothing can ever place.
  if (inflight_ == 0 && all_boards_revoked_locked()) {
    fail_unstarted_locked("all boards revoked");
  }
  cv_.notify_all();
}

void AcceleratorScheduler::finalize_app_locked(AppCtx& app) {
  app.finalized = true;
  AppReport report;
  report.app = app.id;
  report.cancelled = app.cancelled;
  report.completed = !app.graph.nodes.empty();
  for (std::size_t i = 0; i < app.graph.nodes.size(); ++i) {
    if (app.state[i] != NodeState::Done) report.completed = false;
  }
  if (app.graph.nodes.empty()) report.completed = !app.cancelled;
  report.nodes = app.results;
  if (report.completed) {
    ++stats_.apps_completed;
    JPG_COUNT("sched.apps.completed", 1);
  } else if (app.cancelled) {
    ++stats_.apps_cancelled;
    JPG_COUNT("sched.apps.cancelled", 1);
  } else {
    ++stats_.apps_failed;
    JPG_COUNT("sched.apps.failed", 1);
  }
  app.promise.set_value(std::move(report));
}

void AcceleratorScheduler::cancel(std::uint64_t app_id) {
  {
    const std::lock_guard<std::mutex> guard(lock_);
    for (const auto& app : apps_) {
      if (app->id != app_id || app->finalized) continue;
      app->cancelled = true;
      for (std::size_t i = 0; i < app->graph.nodes.size(); ++i) {
        if (app->state[i] == NodeState::Waiting ||
            app->state[i] == NodeState::Ready) {
          app->state[i] = NodeState::Cancelled;
          app->results[i].error = "cancelled";
          ++stats_.nodes_cancelled;
          --app->unfinished;
        }
      }
      if (app->unfinished == 0) finalize_app_locked(*app);
      break;
    }
  }
  cv_.notify_all();
}

void AcceleratorScheduler::revoke_board(std::size_t i) {
  {
    const std::lock_guard<std::mutex> guard(lock_);
    JPG_REQUIRE(i < boards_.size(), "board index out of range");
    if (!boards_[i].revoked) {
      boards_[i].revoked = true;
      ++stats_.boards_revoked;
      JPG_COUNT("sched.boards.revoked", 1);
    }
    if (all_boards_revoked_locked() && inflight_ == 0) {
      fail_unstarted_locked("all boards revoked");
    }
  }
  cv_.notify_all();
}

void AcceleratorScheduler::restore_board(std::size_t i) {
  {
    const std::lock_guard<std::mutex> guard(lock_);
    JPG_REQUIRE(i < boards_.size(), "board index out of range");
    boards_[i].revoked = false;
  }
  cv_.notify_all();
}

void AcceleratorScheduler::fail_unstarted_locked(const std::string& why) {
  for (const auto& app : apps_) {
    if (app->finalized) continue;
    for (std::size_t i = 0; i < app->graph.nodes.size(); ++i) {
      if (app->state[i] == NodeState::Waiting ||
          app->state[i] == NodeState::Ready) {
        app->state[i] = NodeState::Failed;
        app->results[i].error = why;
        ++stats_.nodes_failed;
        --app->unfinished;
      }
    }
    if (app->unfinished == 0) finalize_app_locked(*app);
  }
}

DefragReport AcceleratorScheduler::defragment(std::size_t board) {
  DefragReport report = svc_->defragment(board);
  // Defrag moves resident variants between slots; resync the registry from
  // the service's ground truth so rung 1 keeps matching reality.
  const std::vector<AppliedSlot> applied = svc_->applied_pbits(board);
  {
    const std::lock_guard<std::mutex> guard(lock_);
    JPG_REQUIRE(board < boards_.size(), "board index out of range");
    for (std::size_t s = 0; s < boards_[board].slots.size(); ++s) {
      if (boards_[board].slots[s].busy) continue;
      std::string variant;
      for (const AppliedSlot& a : applied) {
        if (a.region == fixture_->slots()[s]) variant = a.variant;
      }
      boards_[board].slots[s].variant = variant;
    }
  }
  cv_.notify_all();
  return report;
}

void AcceleratorScheduler::shutdown(bool drain) {
  {
    std::unique_lock<std::mutex> lk(lock_);
    accepting_ = false;
    if (!drain) {
      for (const auto& app : apps_) {
        if (app->finalized) continue;
        app->cancelled = true;
        for (std::size_t i = 0; i < app->graph.nodes.size(); ++i) {
          if (app->state[i] == NodeState::Waiting ||
              app->state[i] == NodeState::Ready) {
            app->state[i] = NodeState::Cancelled;
            app->results[i].error = "cancelled";
            ++stats_.nodes_cancelled;
            --app->unfinished;
          }
        }
        if (app->unfinished == 0) finalize_app_locked(*app);
      }
      cv_.notify_all();
    }
    cv_.wait(lk, [&] {
      if (inflight_ != 0) return false;
      for (const auto& app : apps_) {
        if (!app->finalized) return false;
      }
      return true;
    });
    stop_dispatcher_ = true;
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  if (svc_) svc_->shutdown(drain);
}

SchedStats AcceleratorScheduler::stats() const {
  const std::lock_guard<std::mutex> guard(lock_);
  return stats_;
}

}  // namespace jpg::sched
