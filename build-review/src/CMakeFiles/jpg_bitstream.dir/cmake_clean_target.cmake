file(REMOVE_RECURSE
  "libjpg_bitstream.a"
)
