// Negative-path tests of the two-phase flow: floorplan rule enforcement,
// interface declaration checking, crossing capacity, and module/interface
// mismatches. These are the errors a designer actually hits.
#include <gtest/gtest.h>

#include "netlib/generators.h"
#include "pnr/flow.h"

namespace jpg {
namespace {

/// Minimal base netlist with one partition "u1" (a 4-bit counter).
struct Fixture {
  Netlist top{"t"};
  PartitionSpec spec;

  explicit Fixture(const Device& dev, Region region) {
    (void)dev;
    const auto merged = top.merge_module(netlib::make_counter(4), "u1");
    spec.name = "u1";
    spec.region = region;
    for (const auto& [port, net] : merged.outputs) {
      top.add_obuf("ob_" + port, port, net);
      spec.output_ports.emplace_back(port, net);
    }
  }
};

TEST(FlowValidation, RejectsPartialHeightRegion) {
  const Device& dev = Device::get("XCV50");
  Fixture f(dev, Region{2, 6, 10, 9});
  EXPECT_THROW((void)run_base_flow(dev, f.top, {f.spec}), JpgError);
}

TEST(FlowValidation, RejectsRegionTouchingDeviceEdge) {
  const Device& dev = Device::get("XCV50");
  Fixture left(dev, Region{0, 0, dev.rows() - 1, 3});
  EXPECT_THROW((void)run_base_flow(dev, left.top, {left.spec}), JpgError);
  Fixture right(dev, Region{0, dev.cols() - 4, dev.rows() - 1, dev.cols() - 1});
  EXPECT_THROW((void)run_base_flow(dev, right.top, {right.spec}), JpgError);
}

TEST(FlowValidation, RejectsOverlappingAndAdjacentRegions) {
  const Device& dev = Device::get("XCV50");
  Netlist top("t");
  PartitionSpec s1, s2;
  const auto m1 = top.merge_module(netlib::make_counter(2), "u1");
  const auto m2 = top.merge_module(netlib::make_counter(2), "u2");
  s1.name = "u1";
  s2.name = "u2";
  for (const auto& [port, net] : m1.outputs) {
    top.add_obuf("ob1_" + port, "u1_" + port, net);
    s1.output_ports.emplace_back(port, net);
  }
  for (const auto& [port, net] : m2.outputs) {
    top.add_obuf("ob2_" + port, "u2_" + port, net);
    s2.output_ports.emplace_back(port, net);
  }
  // Overlap.
  s1.region = Region{0, 4, dev.rows() - 1, 8};
  s2.region = Region{0, 7, dev.rows() - 1, 11};
  EXPECT_THROW((void)run_base_flow(dev, top, {s1, s2}), JpgError);
  // Adjacent (no static column between them for the crossings).
  s2.region = Region{0, 9, dev.rows() - 1, 12};
  EXPECT_THROW((void)run_base_flow(dev, top, {s1, s2}), JpgError);
  // A clean gap works.
  s2.region = Region{0, 11, dev.rows() - 1, 14};
  EXPECT_NO_THROW((void)run_base_flow(dev, top, {s1, s2}));
}

TEST(FlowValidation, RejectsUndeclaredInterfaceNets) {
  const Device& dev = Device::get("XCV50");
  Fixture f(dev, Region{0, 6, dev.rows() - 1, 9});
  // Drop one declared output: its net now leaves the partition undeclared.
  f.spec.output_ports.pop_back();
  EXPECT_THROW((void)run_base_flow(dev, f.top, {f.spec}), JpgError);
}

TEST(FlowValidation, RejectsDuplicateAndUnknownPartitions) {
  const Device& dev = Device::get("XCV50");
  Fixture f(dev, Region{0, 6, dev.rows() - 1, 9});
  EXPECT_THROW((void)run_base_flow(dev, f.top, {f.spec, f.spec}), JpgError);
  // A cell references a partition with no spec at all.
  PartitionSpec other = f.spec;
  other.name = "u2";
  other.region = Region{0, 12, dev.rows() - 1, 15};
  other.input_ports.clear();
  other.output_ports.clear();
  EXPECT_THROW((void)run_base_flow(dev, f.top, {other}), JpgError);
}

TEST(FlowValidation, RejectsTwoPortsSharingOneNet) {
  // Regression (found by the property sweep, raw seed 17886093620855501502):
  // a net bound to two interface ports of one partition used to be silently
  // collapsed onto a single boundary crossing, so the static fabric listened
  // on the wrong wire once a variant drove the ports from different nets.
  // The flow must reject the ambiguous interface instead.
  const Device& dev = Device::get("XCV50");
  Netlist top("t");
  const NetId q = top.add_net("q");
  const NetId d = top.add_net("d");
  top.add_lut("inv", netlib::lut_not1(), {q, kNullNet, kNullNet, kNullNet}, d,
              "u1");
  top.add_dff("ff", d, q, false, "u1");
  top.add_obuf("ob0", "o0", q);
  top.add_obuf("ob1", "o1", q);
  PartitionSpec spec;
  spec.name = "u1";
  spec.region = Region{0, 6, dev.rows() - 1, 8};
  spec.output_ports.emplace_back("o0", q);
  spec.output_ports.emplace_back("o1", q);
  try {
    (void)run_base_flow(dev, top, {spec});
    FAIL() << "expected JpgError for a shared-net interface";
  } catch (const JpgError& e) {
    EXPECT_NE(std::string(e.what()).find("share net"), std::string::npos)
        << "got: " << e.what();
  }
}

TEST(FlowValidation, RejectsCrossingOverflow) {
  // A one-column region on a 16-row device offers 16*8 = 128 crossings per
  // direction; 129 outputs must be rejected up front.
  const Device& dev = Device::get("XCV50");
  Netlist top("wide");
  PartitionSpec spec;
  spec.name = "u1";
  spec.region = Region{0, 6, dev.rows() - 1, 6};
  // A partition with 129 independent toggler outputs.
  for (int i = 0; i < 129; ++i) {
    const NetId q = top.add_net("q" + std::to_string(i));
    const NetId d = top.add_net("d" + std::to_string(i));
    top.add_lut("inv" + std::to_string(i), netlib::lut_not1(),
                {q, kNullNet, kNullNet, kNullNet}, d, "u1");
    top.add_dff("ff" + std::to_string(i), d, q, false, "u1");
    top.add_obuf("ob" + std::to_string(i), "q" + std::to_string(i), q);
    spec.output_ports.emplace_back("q" + std::to_string(i), q);
  }
  EXPECT_THROW((void)run_base_flow(dev, top, {spec}), DeviceError);
}

TEST(FlowValidation, ModuleFlowRejectsInterfaceMismatch) {
  const Device& dev = Device::get("XCV50");
  Fixture f(dev, Region{0, 6, dev.rows() - 1, 9});
  const BaseFlowResult base = run_base_flow(dev, f.top, {f.spec});
  const PartitionInterface& iface = base.interface_of("u1");

  // Module with an extra port.
  EXPECT_THROW((void)run_module_flow(dev, netlib::make_counter(5), iface),
               JpgError);
  // Module missing a port.
  EXPECT_THROW((void)run_module_flow(dev, netlib::make_counter(3), iface),
               JpgError);
  // Module with the right names but wrong direction.
  Netlist wrong("w");
  {
    std::vector<NetId> qs;
    for (int i = 0; i < 4; ++i) {
      const NetId q = wrong.add_net("q" + std::to_string(i));
      wrong.add_ibuf("ib" + std::to_string(i), "q" + std::to_string(i), q);
      qs.push_back(q);
    }
    const NetId y = wrong.add_net("y");
    wrong.add_lut("l", netlib::lut_and2(), {qs[0], qs[1], kNullNet, kNullNet},
                  y);
    // Dangle y on purpose; direction check fires first.
  }
  EXPECT_THROW((void)run_module_flow(dev, wrong, iface), JpgError);
  // Unknown interface name.
  EXPECT_THROW((void)base.interface_of("nope"), JpgError);
}

TEST(FlowValidation, EmptyPartitionListIsAPlainFlow) {
  const Device& dev = Device::get("XCV50");
  const BaseFlowResult res = run_base_flow(dev, netlib::make_parity(4), {});
  EXPECT_TRUE(res.interfaces.empty());
  EXPECT_GT(res.design->total_pips(), 0u);
}

}  // namespace
}  // namespace jpg
