// Deterministic resource -> configuration-bit mapping for logic resources.
//
// Every configurable bit of a CLB tile lives in the 48 frames of the tile's
// own column, inside the tile row's 18-bit window (see FrameMap). The layout
// is our own (the real Virtex assignments were never published) but it is
// fixed, injective, and column-local — the three properties partial
// bitstream generation relies on. Per CLB tile:
//
//   minors 0..15,  window bits 0..3  : LUT truth tables, one bit per frame
//                                      (bit i of S0.F -> minor i bit 0,
//                                       S0.G -> bit 1, S1.F -> 2, S1.G -> 3)
//   minors 16..31, window bits 4..5  : slice control fields
//                                      (field j of slice s -> minor 16+j,
//                                       bit 4+s)
//   minors 0..15   bits 6..17,
//   minors 16..31  bits 6..17,
//   minors 32..47  bits 0..17        : routing mux bits (672 per tile),
//                                      allocated by RoutingFabric
//
// IOB sites (left/right columns, kIobsPerRow per row) get 9 window bits each
// (site k owns bits 9k..9k+8):
//   minor 0, bit 9k+0 : IS_INPUT      minor 0, bit 9k+1 : IS_OUTPUT
//   minors 1..4, bit 9k : 4-bit pad-output source select (OMUX)
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "device/frame_map.h"

namespace jpg {

/// Absolute location of a single configuration bit.
struct FrameBit {
  int block_type = 0;  ///< 0 = CLB/IOB/clock plane, 1 = BRAM content
  int major = 0;
  int minor = 0;
  unsigned bit = 0;  ///< absolute bit index within the frame

  bool operator==(const FrameBit&) const = default;
};

enum class LutSel { F, G };

/// One-bit slice control fields, in config order. Semantics (used by the
/// bitstream-level simulator):
///   FfxUsed/FfyUsed : FF on the X/Y logic element is instantiated
///   XUsed/YUsed     : combinational X/Y output drives the fabric
///   DxMux/DyMux     : FF D input source: 0 = LUT output, 1 = BX/BY bypass
///   CkInv           : 1 = clock on the falling edge
///   SyncAttr        : 1 = synchronous set/reset, 0 = asynchronous
///   SrUsed/CeUsed   : SR/CE slice inputs are connected
///   InitX/InitY     : FF initial (and SR target, per SrFfMux) value
///   SrFfMux         : 1 = SR sets the FF to InitX/InitY, 0 = resets to 0
enum class SliceField {
  FfxUsed = 0,
  FfyUsed,
  XUsed,
  YUsed,
  DxMux,
  DyMux,
  CkInv,
  SyncAttr,
  SrUsed,
  CeUsed,
  InitX,
  InitY,
  SrFfMux,
};
constexpr int kNumSliceFields = 13;

[[nodiscard]] std::string_view slice_field_name(SliceField f);
[[nodiscard]] std::optional<SliceField> slice_field_by_name(std::string_view n);

enum class Side { Left, Right };

enum class IobField { IsInput, IsOutput, OmuxSel };
constexpr unsigned kIobOmuxBits = 4;

class SliceConfigMap {
 public:
  /// Routing mux bits available per CLB tile (allocated by RoutingFabric).
  static constexpr int kRoutingBitsPerTile = 672;

  explicit SliceConfigMap(const FrameMap& fm) : fm_(&fm) {}

  /// Bit `i` (0..15) of the F/G LUT truth table of slice `slice` in CLB
  /// (row, col).
  [[nodiscard]] FrameBit lut_bit(int row, int col, int slice, LutSel lut,
                                 int i) const;

  /// Location of a one-bit slice control field.
  [[nodiscard]] FrameBit field_bit(int row, int col, int slice,
                                   SliceField f) const;

  /// Location of the state-capture bit of logic element `le` (0 = X, 1 = Y)
  /// of a slice: the CAPTURE/readback mechanism latches the FF's current
  /// value here so readback can observe live state (XAPP138-style). Uses
  /// the otherwise-free window bits 0..3 of minors 16/17.
  [[nodiscard]] FrameBit capture_bit(int row, int col, int slice, int le) const;

  /// Location of routing bit `i` (0..kRoutingBitsPerTile) of CLB (row, col).
  [[nodiscard]] FrameBit routing_bit(int row, int col, int i) const;

  /// Location of bit `biti` of an IOB field at (side, row, k).
  [[nodiscard]] FrameBit iob_field_bit(Side side, int row, int k, IobField f,
                                       unsigned biti = 0) const;

  // --- Block RAM content --------------------------------------------------------
  /// BRAM geometry: one BRAM column per edge, one 4096-bit block per four
  /// CLB rows. Each block's content bit i lives in the column's block-type-1
  /// frames: 72 bits per frame per block (four 18-bit row windows).
  static constexpr int kBramBitsPerBlock = 4096;
  static constexpr int kBramRowsPerBlock = 4;
  [[nodiscard]] int bram_blocks_per_column() const {
    return fm_->spec().clb_rows / kBramRowsPerBlock;
  }
  /// Location of content bit `i` (0..4095) of BRAM `block` on `side`.
  [[nodiscard]] FrameBit bram_bit(Side side, int block, int i) const;

  [[nodiscard]] const FrameMap& frame_map() const { return *fm_; }

 private:
  void check_clb(int row, int col, int slice) const;

  const FrameMap* fm_;
};

}  // namespace jpg
