// Load harness shared by bench_service, the `jpg serve` CLI subcommand and
// the service tests: builds a multi-slot, multi-variant module-pool fixture
// over one device, and replays an open-loop Poisson arrival process against
// a ReconfigService.
//
// "Open loop" matters: arrivals are timed from an exponential inter-arrival
// clock, not from response completions, so when the service falls behind the
// queue genuinely fills and admission control (QueueFull) is exercised — the
// regime a closed-loop driver can never produce.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bitstream/config_memory.h"
#include "device/region.h"
#include "service/reconfig_service.h"

namespace jpg {

/// A base design plus a pool of module variants over disjoint full-height
/// column-band slots. Request (slot s, variant v) swaps variants[v]'s
/// content into slots[s]; variant labels are "v<index>", so two requests
/// naming the same (slot, variant) share one resident lease.
struct LoadFixture {
  const Device* device = nullptr;
  ConfigMemory base;
  std::vector<Region> slots;          ///< pairwise-disjoint column bands
  std::vector<ConfigMemory> variants; ///< distinct-content module planes

  [[nodiscard]] ServiceRequest request(std::size_t slot, std::size_t variant,
                                       std::string tenant,
                                       RequestKind kind = RequestKind::Swap) const;
};

/// Carves `num_slots` equal full-height column bands out of the device and
/// fills `num_variants` noise planes (deterministic in `seed`). Requires the
/// device to have at least `num_slots` CLB columns.
[[nodiscard]] LoadFixture make_load_fixture(const Device& device,
                                            std::uint64_t seed,
                                            std::size_t num_slots,
                                            std::size_t num_variants);

struct PoissonLoadOptions {
  std::size_t requests = 1000;
  std::size_t tenants = 4;
  /// Mean arrival rate in requests/second; 0 = back-to-back (no think time).
  double rate_hz = 0;
  std::uint64_t seed = 1;
};

struct PoissonLoadResult {
  std::size_t completed = 0;       ///< served OK
  std::size_t rejected = 0;        ///< QueueFull / ShuttingDown
  std::size_t failed = 0;          ///< dispatched but errored
  std::size_t resident_hits = 0;
  double elapsed_sec = 0;          ///< first submit -> last completion
  double offered_rate_hz = 0;      ///< measured submit rate
  /// submit -> completion latency of every served request, unsorted.
  std::vector<std::uint64_t> latencies_ns;

  [[nodiscard]] double swaps_per_sec() const {
    return elapsed_sec > 0 ? static_cast<double>(completed) / elapsed_sec : 0;
  }
};

/// Submits `opt.requests` swap requests with exponential inter-arrival gaps,
/// tenants round-robined as "t<k>", (slot, variant) drawn uniformly, then
/// waits for every response. Thread-safe against the service's own workers.
[[nodiscard]] PoissonLoadResult run_poisson_load(ReconfigService& svc,
                                                 const LoadFixture& fixture,
                                                 const PoissonLoadOptions& opt);

/// p in [0,100]; sorts a copy. Returns 0 on empty input.
[[nodiscard]] std::uint64_t percentile_ns(std::vector<std::uint64_t> samples,
                                          double p);

}  // namespace jpg
