// BitstreamReader: offline packet-level inspection of a bitstream.
//
// Unlike ConfigPort (which mutates a ConfigMemory), the reader only parses
// framing: it yields the ordered register writes so tools can answer
// questions such as "which device is this for" (IDCODE), "which frames does
// this partial bitstream touch" (FAR/FDRI pairs) and "how big is the
// configuration payload" without loading anything.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bitstream/packet.h"

namespace jpg {

class BitstreamReader {
 public:
  struct RegWrite {
    ConfigReg reg = ConfigReg::CRC;
    std::vector<std::uint32_t> values;
  };

  /// Parses the stream eagerly; throws BitstreamError on bad framing.
  explicit BitstreamReader(const Bitstream& bs);

  [[nodiscard]] const std::vector<RegWrite>& writes() const { return writes_; }

  /// The IDCODE the stream declares, if any.
  [[nodiscard]] std::optional<std::uint32_t> idcode() const;

  /// Total FDRI payload words (configuration data volume incl. pad frames).
  [[nodiscard]] std::size_t fdri_words() const;

  /// (FAR value, frame count excl. pad) pairs in stream order, derived from
  /// each FAR write followed by FDRI data. `frame_words` converts payload
  /// words to frames. Throws BitstreamError on an FDRI payload that is not
  /// a whole number of frames; pad-only packets (exactly one frame, all of
  /// it pipeline flush) contribute no block.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, std::size_t>> far_blocks(
      std::size_t frame_words) const;

  /// Human-readable packet dump (one line per register write).
  [[nodiscard]] std::string summarize() const;

 private:
  std::vector<RegWrite> writes_;
};

}  // namespace jpg
