file(REMOVE_RECURSE
  "libjpg_pnr.a"
)
