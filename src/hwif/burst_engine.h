// The burst engine: drives a StreamSource onto an XHWIF board in bounded
// word bursts through Xhwif::send_config. This is the fire-and-forget
// streaming path (the verified equivalent lives in VerifiedDownloader::
// download_stream); both record the same cfg.* telemetry so the burst-size
// distribution of any run is observable.
#pragma once

#include <cstddef>
#include <cstdint>

#include "hwif/stream_source.h"
#include "hwif/xhwif.h"

namespace jpg {

struct BurstStats {
  std::size_t bursts = 0;
  std::size_t words = 0;
};

/// Streams `source` to `board` in bursts of at most `burst_words` words.
/// Zero-copy: every send_config call receives a subspan of one of the
/// source's segments. Errors from the board propagate to the caller with
/// the stream position lost — callers that need recovery use the verified
/// streaming download instead.
BurstStats stream_to_board(Xhwif& board, const StreamSource& source,
                           std::size_t burst_words = kDefaultBurstWords);

}  // namespace jpg
