// Shared reconfigurable-computing scenarios used by the examples and the
// benchmark harness: the paper's Figure 1 environment (one region, several
// pre-synthesised module implementations) and Figure 4 (three regions with
// 3, 3 and 4 variants -> 36 combinations vs 10 partial bitstreams).
#pragma once

#include <string>
#include <vector>

#include "pnr/flow.h"

namespace jpg::scenarios {

struct VariantDef {
  std::string name;
  Netlist netlist;
};

/// One reconfigurable slot of the floorplan.
struct SlotDef {
  std::string partition;
  Region region;
  std::vector<VariantDef> variants;  ///< variants[0] ships in the base design
};

/// Module generators with fixed interfaces.
/// Slot A interface: outputs q0..q3.
[[nodiscard]] Netlist slot_a_counter();
[[nodiscard]] Netlist slot_a_lfsr();
[[nodiscard]] Netlist slot_a_johnson();
/// Slot B interface: input d, output y.
[[nodiscard]] Netlist slot_b_pass();
[[nodiscard]] Netlist slot_b_nrz();
[[nodiscard]] Netlist slot_b_invreg();
/// Slot C interface: input si, output match.
[[nodiscard]] Netlist slot_c_matcher(int which);  ///< 4 distinct patterns

/// Figure 1: one slot (slot C, the string-matching application of the
/// paper's reference [5]) with 3 matcher variants.
[[nodiscard]] std::vector<SlotDef> fig1_slots(const Device& device);

/// Figure 4: three slots with 3 + 3 + 4 variants.
[[nodiscard]] std::vector<SlotDef> fig4_slots(const Device& device);

/// The assembled base design: a static heartbeat counter plus one instance
/// of each slot's variant 0, all slot interfaces wired to pads.
struct ScenarioBase {
  Netlist top{"scenario_base"};
  std::vector<PartitionSpec> specs;
};
[[nodiscard]] ScenarioBase build_base(const Device& device,
                                      const std::vector<SlotDef>& slots);

/// Variant with the given name inside a slot definition.
[[nodiscard]] const VariantDef& variant(const SlotDef& slot,
                                        const std::string& name);

}  // namespace jpg::scenarios
