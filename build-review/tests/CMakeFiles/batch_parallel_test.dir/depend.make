# Empty dependencies file for batch_parallel_test.
# This may be replaced when dependencies are built.
