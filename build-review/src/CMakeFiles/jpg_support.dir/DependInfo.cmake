
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/bitvec.cpp" "src/CMakeFiles/jpg_support.dir/support/bitvec.cpp.o" "gcc" "src/CMakeFiles/jpg_support.dir/support/bitvec.cpp.o.d"
  "/root/repo/src/support/error.cpp" "src/CMakeFiles/jpg_support.dir/support/error.cpp.o" "gcc" "src/CMakeFiles/jpg_support.dir/support/error.cpp.o.d"
  "/root/repo/src/support/log.cpp" "src/CMakeFiles/jpg_support.dir/support/log.cpp.o" "gcc" "src/CMakeFiles/jpg_support.dir/support/log.cpp.o.d"
  "/root/repo/src/support/string_util.cpp" "src/CMakeFiles/jpg_support.dir/support/string_util.cpp.o" "gcc" "src/CMakeFiles/jpg_support.dir/support/string_util.cpp.o.d"
  "/root/repo/src/support/telemetry/metrics.cpp" "src/CMakeFiles/jpg_support.dir/support/telemetry/metrics.cpp.o" "gcc" "src/CMakeFiles/jpg_support.dir/support/telemetry/metrics.cpp.o.d"
  "/root/repo/src/support/telemetry/trace.cpp" "src/CMakeFiles/jpg_support.dir/support/telemetry/trace.cpp.o" "gcc" "src/CMakeFiles/jpg_support.dir/support/telemetry/trace.cpp.o.d"
  "/root/repo/src/support/thread_pool.cpp" "src/CMakeFiles/jpg_support.dir/support/thread_pool.cpp.o" "gcc" "src/CMakeFiles/jpg_support.dir/support/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
