// Scheduler oracle: proves the accelerator scheduler's headline invariants
// over random task graphs, in the PR 5 property-chain style (oracle.h).
//
// Property chain (each name is what a failure reports, in check order):
//   sequential_reference      the no-scheduler reference execution succeeds
//   app_completed/<a>         every app's report resolves completed
//   executed_respects_deps/<a> per node: every predecessor's end_event
//                             precedes the node's start_event, and the
//                             scheduler's own dep_violations counter is zero
//   trace_equivalence/<a>     per-node sim output == the sequential
//                             reference — locality, relocation, retries and
//                             defrag never change results
//   admission_clean           at quiescence the service conservation
//                             invariant holds: submitted == accounted()
//   no_leaked_leases          pinned cache entries == live registry entries
//                             (a lease outside the registry is a leak)
//   fault_convergence         (fault tier) the same workload through
//                             budget-bounded FaultyBoard links still
//                             completes with reference-equal traces
//
// Options select the tiers; defrag_mid_run interleaves defragmentation
// passes with the running graphs (satellite: plan_defrag x scheduler).
#pragma once

#include <string>
#include <vector>

#include "sched/accel_scheduler.h"
#include "sched/task_graph.h"
#include "testing/oracle.h"

namespace jpg::testing {

struct SchedOracleOptions {
  int sim_cycles = 24;
  std::size_t num_boards = 1;
  std::size_t workers = 2;
  bool locality = true;
  bool allow_relocation = true;
  /// Re-run the workload with fault-injected board links (bounded budget)
  /// and require convergence to the same traces.
  bool fault_tier = false;
  std::uint64_t fault_seed = 7;
  /// Run defragmentation passes concurrently with the graphs and require
  /// trace neutrality (resident reuse must not regress correctness).
  bool defrag_mid_run = false;
};

struct SchedOracleResult {
  OracleStatus status = OracleStatus::Pass;
  std::string property;  ///< first failing property ("" on Pass)
  std::string detail;
  std::size_t properties_checked = 0;
  sched::SchedStats sched_stats;  ///< post-run scheduler counters

  [[nodiscard]] bool ok() const { return status == OracleStatus::Pass; }
};

/// Runs `graphs` as concurrent apps on one scheduler over `fixture` and
/// checks the property chain. Deterministic in (fixture, graphs, options)
/// up to scheduling order — which is exactly what the properties quantify
/// over. Never throws; internal errors become Fail verdicts.
[[nodiscard]] SchedOracleResult run_sched_oracle(
    const sched::SchedFixture& fixture,
    const std::vector<sched::TaskGraph>& graphs,
    const SchedOracleOptions& opt = {});

}  // namespace jpg::testing
