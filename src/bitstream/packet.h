// Configuration stream packet format (Virtex-style).
//
// A bitstream is a sequence of 32-bit words: any number of 0xFFFFFFFF dummy
// words, the sync word 0xAA995566, then packets.
//
//   Type 1 header: [31:29]=001 [28:27]=op [17:13]=register [10:0]=word count
//   Type 2 header: [31:29]=010 [28:27]=op [26:0]=word count
//                  (extends the register of the preceding Type 1 header)
//   op: 00 = NOP, 01 = read, 10 = write
//
// Register file and command codes follow the Virtex configuration logic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace jpg {

constexpr std::uint32_t kSyncWord = 0xAA995566u;
constexpr std::uint32_t kDummyWord = 0xFFFFFFFFu;

enum class ConfigReg : std::uint32_t {
  CRC = 0,
  FAR = 1,
  FDRI = 2,
  FDRO = 3,
  CMD = 4,
  CTL = 5,
  MASK = 6,
  STAT = 7,
  LOUT = 8,
  COR = 9,
  FLR = 11,
  IDCODE = 12,
};

enum class Command : std::uint32_t {
  NONE = 0,
  WCFG = 1,    ///< enable configuration-memory writes via FDRI
  LFRM = 3,    ///< last frame: flush, end of write sequence
  RCFG = 4,    ///< enable readback via FDRO
  START = 5,   ///< begin the startup sequence
  RCRC = 7,    ///< reset the running CRC
  AGHIGH = 8,  ///< deassert global tristate
  SWITCH = 9,  ///< switch clock source
  DESYNC = 13, ///< drop synchronisation (end of stream)
};

[[nodiscard]] std::string_view config_reg_name(ConfigReg r);
[[nodiscard]] std::string_view command_name(Command c);

enum class PacketOp : std::uint32_t { Nop = 0, Read = 1, Write = 2 };

struct PacketHeader {
  int type = 1;  ///< 1 or 2
  PacketOp op = PacketOp::Nop;
  ConfigReg reg = ConfigReg::CRC;  ///< Type 2 inherits the previous Type 1 reg
  std::uint32_t word_count = 0;

  bool operator==(const PacketHeader&) const = default;
};

[[nodiscard]] std::uint32_t encode_type1(PacketOp op, ConfigReg reg,
                                         std::uint32_t word_count);
[[nodiscard]] std::uint32_t encode_type2(PacketOp op, std::uint32_t word_count);

/// Decodes a packet header word; nullopt if the word is not a valid header.
/// `prev_reg` supplies the register for Type 2 continuation headers.
[[nodiscard]] std::optional<PacketHeader> decode_header(std::uint32_t word,
                                                        ConfigReg prev_reg);

// --- Bitstream container -----------------------------------------------------

/// A configuration bitstream as shipped: 32-bit words, big-endian on disk.
struct Bitstream {
  std::vector<std::uint32_t> words;

  [[nodiscard]] std::size_t size_bytes() const { return words.size() * 4; }

  [[nodiscard]] std::vector<std::uint8_t> to_bytes() const;
  static Bitstream from_bytes(const std::vector<std::uint8_t>& bytes);

  void save(const std::string& path) const;
  static Bitstream load(const std::string& path);

  bool operator==(const Bitstream&) const = default;
};

}  // namespace jpg
