#include "xdl/xdl_writer.h"

#include <map>
#include <sstream>

#include "xdl/lut_equation.h"

namespace jpg {

namespace {

/// True when the LE's comb output leaves the slice (mirrors
/// PlacedDesign::apply's FXMUX/GYMUX decision).
bool comb_out_used(const PlacedDesign& d, const LogicElement& le) {
  if (le.lut == kNullCell) return false;
  const Netlist& nl = d.netlist();
  const Cell& lut = nl.cell(le.lut);
  if (lut.out == kNullNet) return false;
  for (const NetSink& s : nl.net(lut.out).sinks) {
    const bool internal = le.ff != kNullCell && s.cell == le.ff &&
                          nl.cell(le.ff).in[0] == lut.out;
    if (!internal) return true;
  }
  return false;
}

}  // namespace

XdlDesign xdl_from_placed(const PlacedDesign& design, const std::string& version) {
  const Device& dev = design.device();
  const Netlist& nl = design.netlist();
  XdlDesign xdl;
  xdl.name = nl.name();
  xdl.part = dev.spec().name;
  xdl.version = version;

  // instance name per cell (for net pins).
  std::map<CellId, std::pair<std::string, std::string>> pin_of_out;  // cell -> (inst, pin)
  std::map<CellId, std::map<int, std::pair<std::string, std::string>>> pin_of_in;

  // --- Slice instances --------------------------------------------------------
  for (std::size_t i = 0; i < design.slices.size(); ++i) {
    const PackedSlice& ps = design.slices[i];
    const SliceSite site = design.slice_sites[i];
    XdlInstance inst;
    inst.name = ps.name;
    inst.type = "SLICE";
    inst.placed_a = dev.tile_name({site.r, site.c});
    inst.placed_b = dev.slice_site_name(site);
    inst.cfg.push_back("CKINV::0");
    inst.cfg.push_back("SYNC_ATTR::ASYNC");
    inst.cfg.push_back("CEMUX::OFF");
    inst.cfg.push_back("SRMUX::OFF");
    inst.cfg.push_back("SRFFMUX::0");
    if (!ps.partition.empty()) inst.cfg.push_back("_PART::" + ps.partition);
    for (int le = 0; le < 2; ++le) {
      const LogicElement& e = ps.le[le];
      const std::string fg = le == 0 ? "F" : "G";
      if (e.lut != kNullCell) {
        const Cell& lut = nl.cell(e.lut);
        inst.cfg.push_back(fg + ":" + lut.name + ":#LUT:D=" +
                           lut_equation_from_init(lut.lut_init));
        inst.cfg.push_back(le == 0
                               ? (comb_out_used(design, e) ? "FXMUX::F"
                                                           : "FXMUX::OFF")
                               : (comb_out_used(design, e) ? "GYMUX::G"
                                                           : "GYMUX::OFF"));
        if (comb_out_used(design, e)) {
          pin_of_out[e.lut] = {inst.name, le == 0 ? "X" : "Y"};
        }
        for (int p = 0; p < 4; ++p) {
          if (lut.in[static_cast<std::size_t>(p)] != kNullNet) {
            pin_of_in[e.lut][p] = {inst.name, fg + std::to_string(p + 1)};
          }
        }
      }
      if (e.ff != kNullCell) {
        const Cell& ff = nl.cell(e.ff);
        inst.cfg.push_back((le == 0 ? "FFX:" : "FFY:") + ff.name + ":#FF");
        const bool paired =
            e.lut != kNullCell && nl.cell(e.lut).out == ff.in[0];
        inst.cfg.push_back((le == 0 ? "DXMUX::" : "DYMUX::") +
                           std::string(paired ? "0" : "1"));
        inst.cfg.push_back((le == 0 ? "INITX::" : "INITY::") +
                           std::string(ff.ff_init ? "HIGH" : "LOW"));
        pin_of_out[e.ff] = {inst.name, le == 0 ? "XQ" : "YQ"};
        if (!paired) {
          pin_of_in[e.ff][0] = {inst.name, le == 0 ? "BX" : "BY"};
        }
      }
    }
    xdl.instances.push_back(std::move(inst));
  }

  // --- IOB instances -----------------------------------------------------------
  for (std::size_t i = 0; i < design.iob_cells.size(); ++i) {
    const Cell& c = nl.cell(design.iob_cells[i]);
    XdlInstance inst;
    inst.name = c.name;
    inst.type = "IOB";
    inst.placed_a = "P" + std::to_string(dev.pad_number(design.iob_sites[i]));
    inst.placed_b = dev.iob_site_name(design.iob_sites[i]);
    inst.cfg.push_back(c.kind == CellKind::Ibuf ? "IOB::INPUT" : "IOB::OUTPUT");
    inst.cfg.push_back("NAME::" + c.port);
    if (c.kind == CellKind::Ibuf) {
      pin_of_out[design.iob_cells[i]] = {inst.name, "I"};
    } else {
      pin_of_in[design.iob_cells[i]][0] = {inst.name, "O"};
    }
    xdl.instances.push_back(std::move(inst));
  }

  // --- Port instances (module designs) ----------------------------------------
  for (const PlacedPort& p : design.ports) {
    const Cell& c = nl.cell(p.cell);
    XdlInstance inst;
    inst.name = c.name;
    inst.type = "PORT";
    inst.placed_a = "BOUNDARY";
    inst.placed_b = "R" + std::to_string(p.row + 1) + "K" + std::to_string(p.k);
    inst.cfg.push_back(p.is_input ? "DIR::INPUT" : "DIR::OUTPUT");
    inst.cfg.push_back("NAME::" + c.port);
    if (p.is_input) {
      pin_of_out[p.cell] = {inst.name, "I"};
    } else {
      pin_of_in[p.cell][0] = {inst.name, "O"};
    }
    xdl.instances.push_back(std::move(inst));
  }

  // --- Nets ---------------------------------------------------------------------
  // Routing by net id (several RoutedNet entries may share an id).
  std::map<NetId, std::vector<const RoutedNet*>> routes_of;
  for (const RoutedNet& rn : design.routes) {
    routes_of[rn.net].push_back(&rn);
  }
  const RoutingFabric& fab = dev.fabric();
  auto pip_to_xdl = [&](const RoutedPip& p) {
    const MuxDef* mux = fab.mux_for_dest(p.dest_local);
    JPG_ASSERT(mux != nullptr && p.sel >= 1 &&
               p.sel <= mux->sources.size());
    XdlPip xp;
    xp.tile = dev.tile_name(p.tile);
    xp.src = source_ref_name(mux->sources[p.sel - 1]);
    xp.dest = local_wire_name(p.dest_local);
    return xp;
  };

  for (NetId id = 0; id < nl.num_nets(); ++id) {
    const Net& net = nl.net(id);
    XdlNet xn;
    xn.name = net.name;
    if (net.driver != kNullCell) {
      const auto it = pin_of_out.find(net.driver);
      if (it != pin_of_out.end()) {
        xn.outpins.push_back({it->second.first, it->second.second});
      }
    }
    for (const NetSink& s : net.sinks) {
      const auto ci = pin_of_in.find(s.cell);
      if (ci == pin_of_in.end()) continue;
      const auto pi = ci->second.find(s.pin);
      if (pi == ci->second.end()) continue;
      xn.inpins.push_back({pi->second.first, pi->second.second});
    }
    const auto rit = routes_of.find(id);
    if (rit != routes_of.end()) {
      for (const RoutedNet* rn : rit->second) {
        for (const RoutedPip& p : rn->pips) xn.pips.push_back(pip_to_xdl(p));
        for (const IobRoute& ir : rn->iob_pips) {
          XdlIobPip ip;
          ip.site = dev.iob_site_name(ir.site);
          const Dir toward_pad = ir.site.side == Side::Left ? Dir::W : Dir::E;
          ip.wire = local_wire_name(
              single_local(toward_pad, static_cast<int>(ir.omux_sel) - 1));
          xn.iobpips.push_back(std::move(ip));
        }
      }
    }
    if (xn.outpins.empty() && xn.inpins.empty() && xn.pips.empty()) continue;
    xdl.nets.push_back(std::move(xn));
  }

  // Clock pips as the special GCLK net.
  if (!design.clock_pips.empty()) {
    XdlNet gclk;
    gclk.name = "GCLK";
    for (const RoutedPip& p : design.clock_pips) {
      gclk.pips.push_back(pip_to_xdl(p));
    }
    xdl.nets.push_back(std::move(gclk));
  }
  return xdl;
}

std::string write_xdl(const XdlDesign& xdl) {
  std::ostringstream os;
  os << "# jpg-cpp XDL, dialect per DESIGN.md\n";
  os << "design \"" << xdl.name << "\" " << xdl.part << " " << xdl.version
     << " ;\n\n";
  for (const XdlInstance& inst : xdl.instances) {
    os << "inst \"" << inst.name << "\" \"" << inst.type << "\" , placed "
       << inst.placed_a;
    if (!inst.placed_b.empty()) os << " " << inst.placed_b;
    if (!inst.cfg.empty()) {
      os << " ,\n  cfg \"";
      for (std::size_t i = 0; i < inst.cfg.size(); ++i) {
        if (i > 0) os << " ";
        os << inst.cfg[i];
      }
      os << "\"";
    }
    os << " ;\n";
  }
  os << "\n";
  for (const XdlNet& n : xdl.nets) {
    os << "net \"" << n.name << "\"";
    for (const XdlPin& p : n.outpins) {
      os << " ,\n  outpin \"" << p.instance << "\" " << p.pin;
    }
    for (const XdlPin& p : n.inpins) {
      os << " ,\n  inpin \"" << p.instance << "\" " << p.pin;
    }
    for (const XdlPip& p : n.pips) {
      os << " ,\n  pip " << p.tile << " " << p.src << " -> " << p.dest;
    }
    for (const XdlIobPip& p : n.iobpips) {
      os << " ,\n  iobpip " << p.site << " " << p.wire;
    }
    os << " ;\n";
  }
  return os.str();
}

std::string write_xdl(const PlacedDesign& design) {
  return write_xdl(xdl_from_placed(design));
}

}  // namespace jpg
