#include "core/relocate.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "bitstream/bitstream_reader.h"
#include "bitstream/config_port.h"
#include "cbits/cbits.h"
#include "support/telemetry/telemetry.h"

namespace jpg {

namespace {

/// Offset of the tile where a single driven in direction `d` is readable.
constexpr TileCoord single_reader_offset(Dir d) {
  switch (d) {
    case Dir::E: return {0, 1};
    case Dir::N: return {-1, 0};
    case Dir::W: return {0, -1};
    case Dir::S: return {1, 0};
  }
  return {0, 0};
}

/// Unit step of direction `d` (a hex spans kHexSpan of these).
constexpr TileCoord dir_step(Dir d) { return single_reader_offset(d); }

std::string crossing_detail(const TileCoord& t, const std::string& what) {
  std::ostringstream os;
  os << "tile (" << t.r << "," << t.c << "): " << what;
  return os.str();
}

}  // namespace

bool RelocCompat::drives_long_lines() const {
  return std::any_of(crossings.begin(), crossings.end(),
                     [](const RelocCrossing& x) { return x.drives_long; });
}

PbitRelocator::PbitRelocator(const PartialBitstreamGenerator& gen)
    : gen_(&gen), device_(&gen.base().device()) {}

RelocCompat PbitRelocator::check_shape(const Region& src,
                                       const Region& dst) const {
  RelocCompat compat;
  if (!src.in_bounds(*device_)) {
    compat.shape_detail = "source region " + src.to_string() +
                          " is out of bounds for the device";
    return compat;
  }
  if (!dst.in_bounds(*device_)) {
    compat.shape_detail = "target region " + dst.to_string() +
                          " is out of bounds for the device";
    return compat;
  }
  if (src.width() != dst.width() || src.height() != dst.height()) {
    std::ostringstream os;
    os << "shape mismatch: source " << src.to_string() << " is "
       << src.width() << "x" << src.height() << ", target " << dst.to_string()
       << " is " << dst.width() << "x" << dst.height();
    compat.shape_detail = os.str();
    return compat;
  }
  compat.shape_ok = true;
  return compat;
}

RelocCompat PbitRelocator::check(const ConfigMemory& plane, const Region& src,
                                 const Region& dst) const {
  RelocCompat compat = check_shape(src, dst);
  if (!compat.shape_ok) return compat;

  const CBits cb(plane);
  const auto& muxes = device_->fabric().tile_muxes();
  std::size_t checked = 0;
  for (int r = src.r0; r <= src.r1; ++r) {
    for (int c = src.c0; c <= src.c1; ++c) {
      const TileCoord t{r, c};
      for (const MuxDef& def : muxes) {
        const std::uint32_t sel = cb.get_mux(t, def.dest_local);
        ++checked;
        if (sel == 0) continue;

        // Long-driver aliases: the mux output is a row/column-global wire.
        if (def.dest_local >= kLongDriverBase) {
          compat.crossings.push_back(
              {t, def.dest_local, /*drives_long=*/true,
               crossing_detail(t, "drives shared long line " +
                                      local_wire_name(def.dest_local))});
          continue;
        }

        // Where does the selected source come from?
        if (sel > def.sources.size()) {
          compat.crossings.push_back(
              {t, def.dest_local, /*drives_long=*/false,
               crossing_detail(t, "invalid mux encoding " +
                                      std::to_string(sel) + " on " +
                                      local_wire_name(def.dest_local))});
        } else {
          const SourceRef& source = def.sources[sel - 1];
          switch (source.kind) {
            case SourceRef::Kind::Gclk:
              break;  // the global clock is position-independent
            case SourceRef::Kind::LongH:
            case SourceRef::Kind::LongV:
              compat.crossings.push_back(
                  {t, def.dest_local, /*drives_long=*/false,
                   crossing_detail(t, local_wire_name(def.dest_local) +
                                          " reads shared long line " +
                                          source_ref_name(source))});
              break;
            case SourceRef::Kind::TileWire: {
              const TileCoord from{t.r + source.dr, t.c + source.dc};
              if (!src.contains(from)) {
                compat.crossings.push_back(
                    {t, def.dest_local, /*drives_long=*/false,
                     crossing_detail(t, local_wire_name(def.dest_local) +
                                            " reads " +
                                            source_ref_name(source) +
                                            " sourced outside the region")});
              }
              break;
            }
          }
        }

        // Outgoing span: a driven single is readable one tile away, a
        // driven hex at its +3 and +6 taps; if a tap lands outside the
        // region the signal leaks past the boundary.
        if (def.dest_local >= kSingleBase && def.dest_local < kHexBase) {
          const Dir d =
              static_cast<Dir>((def.dest_local - kSingleBase) / kSinglesPerDir);
          const TileCoord off = single_reader_offset(d);
          const TileCoord reader{t.r + off.r, t.c + off.c};
          if (!src.contains(reader)) {
            compat.crossings.push_back(
                {t, def.dest_local, /*drives_long=*/false,
                 crossing_detail(t, "driven single " +
                                        local_wire_name(def.dest_local) +
                                        " is readable outside the region")});
          }
        } else if (def.dest_local >= kHexBase && def.dest_local < kImuxBase) {
          const Dir d =
              static_cast<Dir>((def.dest_local - kHexBase) / kHexesPerDir);
          const TileCoord step = dir_step(d);
          const TileCoord mid{t.r + step.r * kHexTap, t.c + step.c * kHexTap};
          const TileCoord end{t.r + step.r * kHexSpan, t.c + step.c * kHexSpan};
          if (!src.contains(mid) || !src.contains(end)) {
            compat.crossings.push_back(
                {t, def.dest_local, /*drives_long=*/false,
                 crossing_detail(t, "driven hex " +
                                        local_wire_name(def.dest_local) +
                                        " has a tap outside the region")});
          }
        }
      }
    }
  }
  JPG_COUNT("reloc.muxes_checked", checked);
  return compat;
}

ConfigMemory PbitRelocator::decode(const Bitstream& pbit,
                                   const Region& src) const {
  JPG_REQUIRE(src.in_bounds(*device_), "source region out of bounds");
  const FrameMap& fm = device_->frames();

  // Coverage: every frame the pbit writes must belong to the source
  // region's columns (a subset is fine: diff_only pbits skip unchanged
  // frames). Anything else means `src` mislabels where the pbit lives, and
  // translating from there would relocate the wrong bits.
  std::set<std::size_t> allowed;
  for (const int major : src.clb_majors(*device_)) {
    for (int minor = 0; minor < fm.frames_in_major(major); ++minor) {
      allowed.insert(fm.frame_index(major, minor));
    }
  }
  const BitstreamReader reader(pbit);
  for (const auto& [far, count] : reader.far_blocks(fm.frame_words())) {
    std::size_t frame = fm.frame_index_of(fm.decode_far(far));
    for (std::size_t i = 0; i < count; ++i, frame = fm.next_frame(frame)) {
      if (!allowed.contains(frame)) {
        JPG_COUNT("reloc.rejected", 1);
        throw RelocError(
            RelocError::Kind::CoverageMismatch,
            "pbit writes frame " + fm.describe_frame(frame) +
                " outside source region " + src.to_string());
      }
    }
  }

  // Replay the pbit onto a copy of the base: the result is the plane the
  // device would hold after the download, with the module's content at src.
  ConfigMemory plane = gen_->base();
  ConfigPort port(plane);
  port.load(pbit);
  return plane;
}

void PbitRelocator::validate(const ConfigMemory& plane, const Region& src,
                             const Region& dst,
                             const RelocOptions& opts) const {
  const RelocCompat shape = check_shape(src, dst);
  if (!shape.shape_ok) {
    JPG_COUNT("reloc.rejected", 1);
    const bool oob = !src.in_bounds(*device_) || !dst.in_bounds(*device_);
    throw RelocError(oob ? RelocError::Kind::OutOfBounds
                         : RelocError::Kind::ShapeMismatch,
                     shape.shape_detail);
  }
  if (!opts.require_containment) return;
  const RelocCompat compat = check(plane, src, dst);
  if (!compat.contained()) {
    JPG_COUNT("reloc.rejected", 1);
    std::ostringstream os;
    os << compat.crossings.size() << " routing crossing(s) escape "
       << src.to_string();
    const std::size_t show = std::min<std::size_t>(compat.crossings.size(), 3);
    for (std::size_t i = 0; i < show; ++i) {
      os << "; " << compat.crossings[i].detail;
    }
    throw RelocError(RelocError::Kind::FootprintEscape, os.str());
  }
}

ConfigMemory PbitRelocator::translate(const ConfigMemory& plane,
                                      const Region& src, const Region& dst,
                                      const RelocOptions& opts) const {
  JPG_SPAN("reloc.translate");
  validate(plane, src, dst, opts);

  const FrameMap& fm = device_->frames();
  ConfigMemory module(*device_);
  const std::size_t src_base = fm.row_bit_base(src.r0);
  const std::size_t dst_base = fm.row_bit_base(dst.r0);
  const std::size_t window_bits =
      static_cast<std::size_t>(src.height()) * FrameMap::kBitsPerRow;
  for (int i = 0; i < src.width(); ++i) {
    const int smajor = fm.major_of_clb_col(src.c0 + i);
    const int dmajor = fm.major_of_clb_col(dst.c0 + i);
    for (int minor = 0; minor < fm.frames_in_major(smajor); ++minor) {
      const std::size_t sidx = fm.frame_index(smajor, minor);
      const std::size_t didx = fm.frame_index(dmajor, minor);
      module.frame(didx).copy_range(plane.frame(sidx), src_base, dst_base,
                                    window_bits);
    }
  }
  return module;
}

PartialGenResult PbitRelocator::relocate(const Bitstream& pbit,
                                         const Region& src, const Region& dst,
                                         const RelocOptions& opts) const {
  JPG_SPAN("reloc.relocate");
  const ConfigMemory module = translate(decode(pbit, src), src, dst, opts);
  PartialGenResult res = gen_->generate(module, dst, opts.gen);
  JPG_COUNT("reloc.relocations", 1);
  return res;
}

PartialGenResult PbitRelocator::relocate_plane(const ConfigMemory& plane,
                                               const Region& src,
                                               const Region& dst,
                                               const RelocOptions& opts) const {
  JPG_SPAN("reloc.relocate");
  const ConfigMemory module = translate(plane, src, dst, opts);
  PartialGenResult res = gen_->generate(module, dst, opts.gen);
  JPG_COUNT("reloc.relocations", 1);
  return res;
}

PbitLease PbitRelocator::relocate_leased(const Bitstream& pbit,
                                         const Region& src, const Region& dst,
                                         const RelocOptions& opts) const {
  JPG_SPAN("reloc.relocate");
  const ConfigMemory module = translate(decode(pbit, src), src, dst, opts);
  PbitLease lease = gen_->generate_leased(module, dst, opts.gen);
  JPG_COUNT("reloc.relocations", 1);
  return lease;
}

// --- Defragmentation planning -------------------------------------------------

std::vector<DefragMove> plan_defrag(
    const Device& device, std::vector<DefragSlot> slots,
    const std::function<bool(int)>& usable_col) {
  const int cols = device.cols();

  // A column shared by two slots cannot be scrubbed after a move without
  // collateral damage, so only slots with exclusive columns are movable.
  std::vector<int> owners(cols, 0);
  for (const DefragSlot& s : slots) {
    JPG_REQUIRE(s.region.in_bounds(device), "defrag slot out of bounds");
    for (int c = s.region.c0; c <= s.region.c1; ++c) ++owners[c];
  }

  // `reserved` tracks columns occupied at each point of the planned
  // execution: all current slots to start; a move releases its source
  // columns and claims its target's. Later slots' current columns stay
  // reserved while earlier moves are planned, so executing the plan in
  // order never writes over a slot that has not moved yet.
  std::vector<char> reserved(cols, 0);
  for (const DefragSlot& s : slots) {
    for (int c = s.region.c0; c <= s.region.c1; ++c) reserved[c] = 1;
  }

  std::sort(slots.begin(), slots.end(),
            [](const DefragSlot& a, const DefragSlot& b) {
              return a.region.c0 < b.region.c0;
            });

  std::vector<DefragMove> moves;
  for (const DefragSlot& s : slots) {
    const int w = s.region.width();
    bool exclusive = true;
    for (int c = s.region.c0; c <= s.region.c1; ++c) {
      if (owners[c] != 1) exclusive = false;
    }
    if (!exclusive) continue;

    for (int c = s.region.c0; c <= s.region.c1; ++c) reserved[c] = 0;
    int best = -1;
    // Strictly leftward and disjoint from the current columns, so the
    // scrub of the old slot never touches the new one.
    for (int c0 = 0; c0 + w - 1 < s.region.c0; ++c0) {
      bool ok = true;
      for (int c = c0; c < c0 + w; ++c) {
        if (!usable_col(c) || reserved[c]) {
          ok = false;
          break;
        }
      }
      if (ok) {
        best = c0;
        break;
      }
    }
    if (best >= 0) {
      const Region to{s.region.r0, best, s.region.r1, best + w - 1};
      moves.push_back({s.region, to, s.key});
      for (int c = to.c0; c <= to.c1; ++c) reserved[c] = 1;
    } else {
      for (int c = s.region.c0; c <= s.region.c1; ++c) reserved[c] = 1;
    }
  }
  return moves;
}

}  // namespace jpg
