// Determinism tests for the speculative router: the routed output must be
// byte-identical for every RouterOptions::num_threads, because each
// PathFinder round routes its wave against a frozen occupancy/history
// snapshot and merges — with conflict detection and retry — in net order
// (DESIGN.md §5c).
#include <gtest/gtest.h>

#include "netlib/generators.h"
#include "pnr/flow.h"

namespace jpg {
namespace {

constexpr int kThreadCounts[] = {2, 4, 8};

std::vector<RoutedNet> flow_routes(const Device& dev, const Netlist& nl,
                                   std::uint64_t seed, int threads) {
  FlowOptions opt;
  opt.seed = seed;
  opt.router.num_threads = threads;
  BaseFlowResult res = run_base_flow(dev, nl, {}, opt);
  return std::move(res.design->routes);
}

TEST(RouterParallel, FullFlowByteIdenticalAcrossThreadCounts) {
  struct Case {
    const char* part;
    const char* gen;
    int param;
  };
  for (const Case& c : {Case{"XCV50", "counter", 12}, Case{"XCV50", "lfsr", 8},
                        Case{"XCV100", "adder", 8}}) {
    const Device& dev = Device::get(c.part);
    Netlist nl("par_test");
    for (const auto& g : netlib::registry()) {
      if (g.name == c.gen) nl = g.make(c.param);
    }
    ASSERT_GT(nl.num_cells(), 0u);
    for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
      const auto baseline = flow_routes(dev, nl, seed, 1);
      ASSERT_FALSE(baseline.empty());
      for (const int threads : kThreadCounts) {
        EXPECT_EQ(flow_routes(dev, nl, seed, threads), baseline)
            << c.gen << "/" << c.param << " on " << c.part << " seed " << seed
            << " threads " << threads;
      }
    }
  }
}

/// Spatially spread nets: slice output at (r, c) to an F1 input mux a few
/// columns east. Disjoint bounding boxes mean round 1 usually lands every
/// net conflict-free.
std::vector<NetToRoute> spread_nets(const Device& dev) {
  const RoutingFabric& fab = dev.fabric();
  std::vector<NetToRoute> nets;
  for (int r = 0; r < dev.rows(); r += 2) {
    for (int c = 0; c + 3 < dev.cols(); c += 5) {
      NetToRoute n;
      n.id = static_cast<NetId>(nets.size());
      n.source = fab.tile_wire_node(r, c, pin_local(0, SlicePin::X));
      n.sinks = {fab.tile_wire_node(r, c + 3, imux_local(0, ImuxPin::F1))};
      nets.push_back(std::move(n));
    }
  }
  return nets;
}

/// Congested nets: sources spread over the west half all targeting input
/// muxes of one narrow column band, forcing several PathFinder iterations.
std::vector<NetToRoute> congested_nets(const Device& dev) {
  const RoutingFabric& fab = dev.fabric();
  std::vector<NetToRoute> nets;
  const int sink_col = dev.cols() - 3;
  for (int r = 2; r + 2 < dev.rows(); ++r) {
    NetToRoute n;
    n.id = static_cast<NetId>(nets.size());
    n.source = fab.tile_wire_node(r, (r * 3) % (dev.cols() / 2),
                                  pin_local(r % 2, SlicePin::X));
    n.sinks = {
        fab.tile_wire_node(r, sink_col, imux_local(0, ImuxPin::F1)),
        fab.tile_wire_node((r + 5) % dev.rows(), sink_col,
                           imux_local(1, ImuxPin::G2))};
    nets.push_back(std::move(n));
  }
  return nets;
}

TEST(RouterParallel, RouteNetsByteIdenticalAcrossThreadCounts) {
  const Device& dev = Device::get("XCV50");
  const RoutingGraph& g = RoutingGraph::get(dev);
  using NetMaker = std::vector<NetToRoute> (*)(const Device&);
  for (const NetMaker maker : {NetMaker{&spread_nets}, NetMaker{&congested_nets}}) {
    const std::vector<NetToRoute> nets = maker(dev);
    ASSERT_GT(nets.size(), 8u);
    RouterOptions opt;
    opt.num_threads = 1;
    RouteStats base_stats;
    const auto baseline = route_nets(g, nets, {}, opt, &base_stats);
    EXPECT_GT(base_stats.spec_rounds, 0u);
    for (const int threads : kThreadCounts) {
      opt.num_threads = threads;
      RouteStats stats;
      EXPECT_EQ(route_nets(g, nets, {}, opt, &stats), baseline)
          << "threads " << threads;
      // Round structure is a pure function of the work list and the
      // net-order merge, not of the thread count.
      EXPECT_EQ(stats.spec_rounds, base_stats.spec_rounds);
      EXPECT_EQ(stats.spec_retries, base_stats.spec_retries);
      EXPECT_EQ(stats.iterations, base_stats.iterations);
    }
  }
}

/// FNV-1a digest of a routed result, so large-device comparisons don't
/// hold several full route vectors alive at once.
std::uint64_t route_digest(const std::vector<RoutedNet>& routes) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const RoutedNet& rn : routes) {
    mix(static_cast<std::uint64_t>(rn.net));
    for (const RoutedPip& p : rn.pips) {
      mix((static_cast<std::uint64_t>(static_cast<std::uint16_t>(p.tile.r)) << 48) ^
          (static_cast<std::uint64_t>(static_cast<std::uint16_t>(p.tile.c)) << 32) ^
          (static_cast<std::uint64_t>(static_cast<std::uint16_t>(p.dest_local)) << 16) ^
          p.sel);
    }
    for (const IobRoute& p : rn.iob_pips) {
      mix((static_cast<std::uint64_t>(p.site.side == Side::Left ? 1 : 2) << 40) ^
          (static_cast<std::uint64_t>(static_cast<std::uint16_t>(p.site.row)) << 20) ^
          (static_cast<std::uint64_t>(static_cast<std::uint16_t>(p.site.k)) << 4) ^
          p.omux_sel);
    }
  }
  return h;
}

TEST(RouterParallel, SpeculativeDigestsIdenticalAcrossThreadCountsOnXCV800) {
  // XCV800-class work list: hundreds of speculative searches per round,
  // with the congested band forcing real conflict retries. The digest must
  // be bit-identical for threads {1, 2, 4, 8} and the round/retry counts
  // must match, proving the speculative scheduler never lets thread
  // scheduling leak into the merge.
  const Device& dev = Device::get("XCV800");
  const RoutingGraph& g = RoutingGraph::get(dev);
  using NetMaker = std::vector<NetToRoute> (*)(const Device&);
  for (const NetMaker maker : {NetMaker{&spread_nets}, NetMaker{&congested_nets}}) {
    const std::vector<NetToRoute> nets = maker(dev);
    ASSERT_GT(nets.size(), 50u);
    RouterOptions opt;
    opt.num_threads = 1;
    RouteStats base_stats;
    const std::uint64_t baseline =
        route_digest(route_nets(g, nets, {}, opt, &base_stats));
    for (const int threads : kThreadCounts) {
      opt.num_threads = threads;
      RouteStats stats;
      EXPECT_EQ(route_digest(route_nets(g, nets, {}, opt, &stats)), baseline)
          << "threads " << threads;
      EXPECT_EQ(stats.spec_rounds, base_stats.spec_rounds);
      EXPECT_EQ(stats.spec_retries, base_stats.spec_retries);
    }
  }
}

TEST(RouterParallel, RegionConstrainedByteIdenticalAcrossThreadCounts) {
  const Device& dev = Device::get("XCV50");
  const RoutingGraph& g = RoutingGraph::get(dev);
  const Region region{0, 8, dev.rows() - 1, 15};

  // Static nets detouring around an excluded region exercise the region
  // permission path under the snapshot discipline.
  const RoutingFabric& fab = dev.fabric();
  std::vector<NetToRoute> nets;
  for (int r = 1; r + 1 < dev.rows(); r += 2) {
    NetToRoute n;
    n.id = static_cast<NetId>(nets.size());
    n.source = fab.tile_wire_node(r, 20, pin_local(0, SlicePin::X));
    n.sinks = {fab.tile_wire_node(r, 2, imux_local(0, ImuxPin::F1))};
    nets.push_back(std::move(n));
  }
  RouteConstraints rc;
  rc.exclude_regions.push_back(region);

  RouterOptions opt;
  opt.num_threads = 1;
  const auto baseline = route_nets(g, nets, rc, opt);
  for (const RoutedNet& rn : baseline) {
    for (const RoutedPip& p : rn.pips) {
      ASSERT_FALSE(region.contains(p.tile));
    }
  }
  for (const int threads : kThreadCounts) {
    opt.num_threads = threads;
    EXPECT_EQ(route_nets(g, nets, rc, opt), baseline) << "threads " << threads;
  }
}

}  // namespace
}  // namespace jpg
