# Empty compiler generated dependencies file for jpg_cli.
# This may be replaced when dependencies are built.
