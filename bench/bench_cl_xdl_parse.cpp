// CL-XDL — §3.2.2: "The JPG parser scans through the complete .xdl file and
// makes appropriate JBits calls to program the device."
//
// Measures the tool's hot loop — XDL parse, design reconstruction, and the
// CBits binding — against growing module sizes, and prints the throughput
// series (instances/s, CBits calls per instance).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/xdl_to_cbits.h"
#include "netlib/generators.h"
#include "scenarios.h"
#include "ucf/ucf_parser.h"
#include "xdl/xdl_writer.h"

namespace jpg {
namespace {

struct ModXdl {
  std::string xdl;
  UcfData ucf;
  std::size_t instances = 0;
};

/// Implements an n-bit LFSR in a region and returns its XDL.
ModXdl make_module_xdl(int bits) {
  const Device& dev = Device::get("XCV100");
  const Region region{0, 6, dev.rows() - 1, 13};

  Netlist top("host");
  const auto merged = top.merge_module(netlib::make_lfsr(bits), "u1");
  PartitionSpec spec;
  spec.name = "u1";
  spec.region = region;
  for (const auto& [port, net] : merged.outputs) {
    top.add_obuf("ob_" + port, port, net);
    spec.output_ports.emplace_back(port, net);
  }
  const BaseFlowResult base = run_base_flow(dev, top, {spec});
  const ModuleFlowResult mod = run_module_flow(
      dev, netlib::make_lfsr(bits), base.interface_of("u1"));

  ModXdl m;
  m.xdl = write_xdl(*mod.design);
  m.ucf.area_group_ranges["AG"] = region;
  m.instances = mod.design->slices.size() + mod.design->ports.size();
  return m;
}

std::map<int, ModXdl>& cache() {
  static std::map<int, ModXdl> c;
  return c;
}

const ModXdl& module_of(int bits) {
  auto it = cache().find(bits);
  if (it == cache().end()) {
    it = cache().emplace(bits, make_module_xdl(bits)).first;
  }
  return it->second;
}

void BM_XdlParseOnly(benchmark::State& state) {
  const ModXdl& m = module_of(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse_xdl(m.xdl).instances.size());
  }
  state.counters["bytes"] = static_cast<double>(m.xdl.size());
  state.counters["instances"] = static_cast<double>(m.instances);
}
BENCHMARK(BM_XdlParseOnly)->Arg(8)->Arg(16)->Arg(32)->Arg(48)
    ->Unit(benchmark::kMicrosecond);

void BM_XdlParseAndBind(benchmark::State& state) {
  const ModXdl& m = module_of(static_cast<int>(state.range(0)));
  const Device& dev = Device::get("XCV100");
  std::size_t calls = 0;
  for (auto _ : state) {
    ConfigMemory scratch(dev);
    const XdlDesign xdl = parse_xdl(m.xdl);
    const XdlBindResult bound = bind_xdl_module(xdl, m.ucf, scratch);
    calls = bound.cbits_calls;
    benchmark::DoNotOptimize(calls);
  }
  state.counters["cbits_calls"] = static_cast<double>(calls);
}
BENCHMARK(BM_XdlParseAndBind)->Arg(8)->Arg(16)->Arg(32)->Arg(48)
    ->Unit(benchmark::kMicrosecond);

void print_parse_series() {
  using benchutil::fmt;
  benchutil::Table t({"LFSR bits", "XDL bytes", "instances", "parse ms",
                      "parse+bind ms", "CBits calls"});
  for (const int bits : {8, 16, 32, 48}) {
    const ModXdl& m = module_of(bits);
    const Device& dev = Device::get("XCV100");
    benchutil::Stopwatch sw1;
    for (int i = 0; i < 10; ++i) {
      benchmark::DoNotOptimize(parse_xdl(m.xdl).nets.size());
    }
    const double parse_ms = sw1.ms() / 10;
    benchutil::Stopwatch sw2;
    std::size_t calls = 0;
    for (int i = 0; i < 10; ++i) {
      ConfigMemory scratch(dev);
      calls = bind_xdl_module(parse_xdl(m.xdl), m.ucf, scratch).cbits_calls;
    }
    const double bind_ms = sw2.ms() / 10;
    t.row({std::to_string(bits), std::to_string(m.xdl.size()),
           std::to_string(m.instances), fmt(parse_ms, 3), fmt(bind_ms, 3),
           std::to_string(calls)});
  }
  t.print("CL-XDL: parser -> CBits binding throughput (XCV100)");
  std::printf("paper shape: the binder scales linearly with the module's XDL "
              "size; parsing is\nnot the bottleneck of partial bitstream "
              "generation.\n");
}

}  // namespace
}  // namespace jpg

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  jpg::print_parse_series();
  return 0;
}
