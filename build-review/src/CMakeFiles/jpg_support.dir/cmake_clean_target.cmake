file(REMOVE_RECURSE
  "libjpg_support.a"
)
