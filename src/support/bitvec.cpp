#include "support/bitvec.h"

#include <algorithm>
#include <bit>

#include "support/word_kernels.h"

namespace jpg {

std::uint32_t BitVector::get_field(std::size_t pos, unsigned width) const {
  JPG_ASSERT_MSG(width >= 1 && width <= 32, "field width out of range");
  JPG_ASSERT_MSG(pos + width <= nbits_, "field read out of range");
  std::uint32_t v = 0;
  for (unsigned i = 0; i < width; ++i) {
    v |= static_cast<std::uint32_t>(get(pos + i)) << i;
  }
  return v;
}

void BitVector::set_field(std::size_t pos, unsigned width, std::uint32_t value) {
  JPG_ASSERT_MSG(width >= 1 && width <= 32, "field width out of range");
  JPG_ASSERT_MSG(pos + width <= nbits_, "field write out of range");
  JPG_ASSERT_MSG(width == 32 || (value >> width) == 0,
                 "field value wider than field");
  for (unsigned i = 0; i < width; ++i) {
    set(pos + i, (value >> i) & 1u);
  }
}

namespace {

/// Mask of word bits [lo, hi] inclusive, 0 <= lo <= hi <= 31.
constexpr std::uint32_t bit_span_mask(unsigned lo, unsigned hi) {
  const std::uint32_t upto_hi =
      hi == 31 ? 0xFFFFFFFFu : (1u << (hi + 1)) - 1u;
  return upto_hi & ~((1u << lo) - 1u);
}

}  // namespace

void BitVector::copy_range(const BitVector& src, std::size_t pos,
                           std::size_t nbits) {
  JPG_ASSERT_MSG(pos + nbits <= nbits_ && pos + nbits <= src.nbits_,
                 "copy_range out of range");
  if (nbits == 0) return;
  const std::size_t first = pos >> 5;
  const std::size_t last = (pos + nbits - 1) >> 5;
  const unsigned head = pos & 31;
  const unsigned tail = (pos + nbits - 1) & 31;
  if (first == last) {
    const std::uint32_t m = bit_span_mask(head, tail);
    words_[first] = (words_[first] & ~m) | (src.words_[first] & m);
    return;
  }
  const std::uint32_t mf = bit_span_mask(head, 31);
  words_[first] = (words_[first] & ~mf) | (src.words_[first] & mf);
  kernels::copy_words(words_.data() + first + 1, src.words_.data() + first + 1,
                      last - first - 1);
  const std::uint32_t ml = bit_span_mask(0, tail);
  words_[last] = (words_[last] & ~ml) | (src.words_[last] & ml);
}

void BitVector::copy_range(const BitVector& src, std::size_t src_pos,
                           std::size_t dst_pos, std::size_t nbits) {
  if (src_pos == dst_pos) {
    if (&src != this) copy_range(src, src_pos, nbits);
    return;
  }
  JPG_ASSERT_MSG(this != &src, "relocating self-copy is unsupported");
  JPG_ASSERT_MSG(src_pos + nbits <= src.nbits_ && dst_pos + nbits <= nbits_,
                 "copy_range out of range");
  if (nbits == 0) return;
  if (((src_pos ^ dst_pos) & 31) == 0) {
    // Co-aligned relocation (the common PARBIT case: frame-granular moves):
    // masked head/tail words with a straight word copy between them, same
    // shape as the in-place copy_range but with a source/dest word offset.
    const unsigned head = dst_pos & 31;
    const unsigned tail = (dst_pos + nbits - 1) & 31;
    const std::size_t df = dst_pos >> 5;
    const std::size_t dl = (dst_pos + nbits - 1) >> 5;
    const std::size_t sf = src_pos >> 5;
    if (df == dl) {
      const std::uint32_t m = bit_span_mask(head, tail);
      words_[df] = (words_[df] & ~m) | (src.words_[sf] & m);
      return;
    }
    const std::uint32_t mf = bit_span_mask(head, 31);
    words_[df] = (words_[df] & ~mf) | (src.words_[sf] & mf);
    kernels::copy_words(words_.data() + df + 1, src.words_.data() + sf + 1,
                        dl - df - 1);
    const std::uint32_t ml = bit_span_mask(0, tail);
    words_[dl] = (words_[dl] & ~ml) | (src.words_[sf + (dl - df)] & ml);
    return;
  }
  // Misaligned fallback: walk destination word by word; each chunk gathers
  // up to 32 source bits with a funnel shift across the source word boundary.
  std::size_t sp = src_pos, dp = dst_pos, remaining = nbits;
  while (remaining > 0) {
    const unsigned doff = dp & 31;
    const unsigned chunk =
        static_cast<unsigned>(std::min<std::size_t>(32 - doff, remaining));
    const std::size_t sw = sp >> 5;
    const unsigned soff = sp & 31;
    std::uint32_t bits = src.words_[sw] >> soff;
    if (soff != 0 && sw + 1 < src.words_.size()) {
      bits |= src.words_[sw + 1] << (32 - soff);
    }
    const std::uint32_t m =
        (chunk == 32 ? 0xFFFFFFFFu : (1u << chunk) - 1u) << doff;
    words_[dp >> 5] = (words_[dp >> 5] & ~m) | ((bits << doff) & m);
    sp += chunk;
    dp += chunk;
    remaining -= chunk;
  }
}

bool BitVector::diff_in_range(const BitVector& other, std::size_t pos,
                              std::size_t nbits) const {
  JPG_ASSERT_MSG(nbits_ == other.nbits_,
                 "comparing BitVectors of unequal size");
  JPG_ASSERT_MSG(pos + nbits <= nbits_, "diff_in_range out of range");
  if (nbits == 0) return false;
  const std::size_t first = pos >> 5;
  const std::size_t last = (pos + nbits - 1) >> 5;
  const unsigned head = pos & 31;
  const unsigned tail = (pos + nbits - 1) & 31;
  if (first == last) {
    return ((words_[first] ^ other.words_[first]) &
            bit_span_mask(head, tail)) != 0;
  }
  if ((words_[first] ^ other.words_[first]) & bit_span_mask(head, 31)) {
    return true;
  }
  if (kernels::words_differ(words_.data() + first + 1,
                            other.words_.data() + first + 1,
                            last - first - 1)) {
    return true;
  }
  return ((words_[last] ^ other.words_[last]) & bit_span_mask(0, tail)) != 0;
}

std::size_t BitVector::popcount() const noexcept {
  return kernels::popcount_words(words_.data(), words_.size());
}

bool BitVector::differs_from(const BitVector& other) const {
  JPG_ASSERT_MSG(nbits_ == other.nbits_, "comparing BitVectors of unequal size");
  return words_ != other.words_;
}

}  // namespace jpg
