// Configuration frame geometry: the heart of Virtex-style partial
// reconfiguration.
//
// Virtex configuration memory is organised as vertical *frames*: a frame is
// one bit-column spanning the full height of the device, and frames are
// grouped into *majors*, one major per physical column. The crucial
// consequence (which JPG exploits and which this module preserves exactly) is
// that the atom of (re)configuration is a full-height frame: a rectangular
// region maps onto the set of majors covering its columns, and writing to a
// region rewrites every row of those columns.
//
// Column order, majors left to right:
//   major 0                  left IOB column   (kIobFrames frames)
//   majors 1 .. C/2          CLB columns 0..C/2-1
//   major C/2+1              clock column      (kClockFrames frames)
//   majors C/2+2 .. C+1      CLB columns C/2..C-1
//   major C+2                right IOB column  (kIobFrames frames)
//
// Within a frame, bits are addressed LSB-first. Rows get 18-bit windows:
// window r+1 belongs to CLB row r; windows 0 and R+1 are top/bottom padding
// (as in the real part, where they serve the top/bottom IOBs we do not
// model). Frame length is padded to a whole number of 32-bit words.
//
// Block RAM contents live in a second address space, *block type 1* — just
// as on the real part, where BRAM content frames are addressed separately
// from the CLB plane. Each device has two BRAM columns (one per edge) of
// kBramFrames frames each; their linear frame indices follow the type-0
// frames. Rewriting BRAM contents through type-1 partial bitstreams —
// without touching any logic — was one of the era's flagship partial-
// reconfiguration use cases.
//
// The frame address register (FAR) packs an address as
//   [27:24] block type   (0 = CLB/IOB/clock, 1 = BRAM content)
//   [23:12] major
//   [11:0]  minor (frame within major)
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "device/device_spec.h"

namespace jpg {

enum class ColumnKind { Clb, Iob, Clock };

struct FrameAddress {
  std::uint32_t block_type = 0;
  std::uint32_t major = 0;
  std::uint32_t minor = 0;

  bool operator==(const FrameAddress&) const = default;
};

class FrameMap {
 public:
  static constexpr int kBitsPerRow = 18;
  static constexpr int kClbFrames = 48;
  static constexpr int kIobFrames = 54;
  static constexpr int kClockFrames = 8;
  static constexpr int kBramMajors = 2;   ///< one BRAM column per edge
  static constexpr int kBramFrames = 64;  ///< frames per BRAM column

  explicit FrameMap(const DeviceSpec& spec);

  // --- Column (major) geometry -------------------------------------------
  [[nodiscard]] int num_majors() const { return num_majors_; }
  [[nodiscard]] ColumnKind column_kind(int major) const;
  [[nodiscard]] int frames_in_major(int major) const;

  [[nodiscard]] int left_iob_major() const { return 0; }
  [[nodiscard]] int clock_major() const { return spec_->clb_cols / 2 + 1; }
  [[nodiscard]] int right_iob_major() const { return num_majors_ - 1; }

  /// Major index of CLB column `col` (0-based).
  [[nodiscard]] int major_of_clb_col(int col) const;
  /// Inverse of major_of_clb_col; requires column_kind(major) == Clb.
  [[nodiscard]] int clb_col_of_major(int major) const;

  // --- Frame indexing ------------------------------------------------------
  /// Total frames across all block types (the configuration plane size).
  [[nodiscard]] std::size_t num_frames() const {
    return num_frames_ + static_cast<std::size_t>(kBramMajors) * kBramFrames;
  }
  /// Frames of block type 0 only (CLB/IOB/clock columns).
  [[nodiscard]] std::size_t num_type0_frames() const { return num_frames_; }
  /// Frame length in bits (before word padding).
  [[nodiscard]] std::size_t frame_bits() const { return frame_bits_; }
  /// Frame length in 32-bit words (the FDRI transfer unit).
  [[nodiscard]] std::size_t frame_words() const { return (frame_bits_ + 31) / 32; }

  /// Linear index of a type-0 frame (major, minor) in configuration order.
  [[nodiscard]] std::size_t frame_index(int major, int minor) const;
  /// Linear index of a BRAM-content frame (block type 1).
  [[nodiscard]] std::size_t bram_frame_index(int bram_major, int minor) const;
  /// Linear index for any block type.
  [[nodiscard]] std::size_t frame_index_of(const FrameAddress& a) const;
  [[nodiscard]] FrameAddress address_of_index(std::size_t frame) const;

  /// Linear frame index following `frame` in configuration order, or
  /// num_frames() at the end (FAR auto-increment order).
  [[nodiscard]] std::size_t next_frame(std::size_t frame) const {
    return frame + 1;
  }

  // --- FAR encoding --------------------------------------------------------
  [[nodiscard]] std::uint32_t encode_far(const FrameAddress& a) const;
  [[nodiscard]] FrameAddress decode_far(std::uint32_t far) const;
  [[nodiscard]] bool far_valid(std::uint32_t far) const;

  // --- In-frame bit geometry ----------------------------------------------
  /// First bit of CLB row `row`'s 18-bit window inside a frame.
  [[nodiscard]] std::size_t row_bit_base(int row) const {
    return static_cast<std::size_t>(kBitsPerRow) * (row + 1);
  }

  [[nodiscard]] const DeviceSpec& spec() const { return *spec_; }

  /// Human-readable "maj/min" string for diagnostics.
  [[nodiscard]] std::string describe_frame(std::size_t frame) const;

 private:
  const DeviceSpec* spec_;
  int num_majors_ = 0;
  std::size_t num_frames_ = 0;
  std::size_t frame_bits_ = 0;
  std::vector<std::size_t> major_base_;  // frame index of minor 0 per major
};

}  // namespace jpg
