// Tests of the telemetry subsystem: metric primitives, registry snapshot
// coherence, stage snapshots, the trace buffer and both export formats.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "support/error.h"
#include "support/telemetry/telemetry.h"

namespace jpg::telemetry {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

TEST(Counter, AddValueReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ShardedAddsSumExactly) {
  // The whole point of sharding: concurrent adds from many threads must
  // still sum to the exact total.
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(Gauge, SetAddValue) {
  Gauge g;
  g.set(7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(Histogram, BucketEdgesArePowersOfTwo) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(7), 3u);
  EXPECT_EQ(Histogram::bucket_of(8), 4u);
  EXPECT_EQ(Histogram::bucket_edge(0), 0u);
  EXPECT_EQ(Histogram::bucket_edge(1), 1u);
  EXPECT_EQ(Histogram::bucket_edge(2), 3u);
  EXPECT_EQ(Histogram::bucket_edge(3), 7u);
  // Every value lands in the bucket whose edge bounds it.
  for (std::uint64_t v : {0ull, 1ull, 5ull, 1000ull, 123456789ull}) {
    EXPECT_LE(v, Histogram::bucket_edge(Histogram::bucket_of(v)));
  }
  // Huge values clamp into the last bucket instead of overflowing.
  EXPECT_EQ(Histogram::bucket_of(~0ull), Histogram::kBuckets - 1);
}

TEST(Histogram, RecordAndPercentiles) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.record(3);    // bucket 2, edge 3
  for (int i = 0; i < 10; ++i) h.record(100);  // bucket 7, edge 127
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 90u * 3 + 10u * 100);

  HistogramSnapshot snap;
  snap.count = h.count();
  snap.sum = h.sum();
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    snap.buckets[b] = h.bucket(b);
  }
  EXPECT_DOUBLE_EQ(snap.mean(), (90.0 * 3 + 10.0 * 100) / 100.0);
  EXPECT_EQ(snap.percentile_edge(0.5), 3u);
  EXPECT_EQ(snap.percentile_edge(0.99), 127u);
}

TEST(Registry, RegistrationIsIdempotent) {
  MetricsRegistry& reg = MetricsRegistry::global();
  Counter& a = reg.counter("test.reg.idem");
  Counter& b = reg.counter("test.reg.idem");
  EXPECT_EQ(&a, &b);
}

TEST(Registry, KindCollisionThrows) {
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("test.reg.kind");
  EXPECT_THROW(reg.gauge("test.reg.kind"), JpgError);
  EXPECT_THROW(reg.histogram("test.reg.kind"), JpgError);
}

TEST(Registry, SnapshotIsSortedAndQueryable) {
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("test.snap.b").add(2);
  reg.counter("test.snap.a").add(1);
  reg.gauge("test.snap.g").set(-5);
  reg.histogram("test.snap.h").record(9);

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("test.snap.a"), 1u);
  EXPECT_EQ(snap.counter("test.snap.b"), 2u);
  EXPECT_EQ(snap.counter("test.snap.nothere"), 0u);
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
  }
  ASSERT_NE(snap.histogram("test.snap.h"), nullptr);
  EXPECT_EQ(snap.histogram("test.snap.h")->count, 1u);
  EXPECT_EQ(snap.histogram("test.snap.nothere"), nullptr);
}

TEST(Registry, JsonDocumentShape) {
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("test.json.c").add(3);
  reg.histogram("test.json.h").record(5);
  const std::string json = reg.snapshot().to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.c\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.h\""), std::string::npos);
  EXPECT_NE(json.find("\"p50_le\""), std::string::npos);
}

TEST(Registry, WriteJsonFailsOnBadPath) {
  EXPECT_FALSE(
      MetricsRegistry::global().write_json("/nonexistent-dir/metrics.json"));
  const fs::path out = fs::path(::testing::TempDir()) / "metrics_ok.json";
  EXPECT_TRUE(MetricsRegistry::global().write_json(out.string()));
  EXPECT_NE(slurp(out).find("\"counters\""), std::string::npos);
}

TEST(StageSnapshotTest, SetCounterEmpty) {
  StageSnapshot s;
  EXPECT_TRUE(s.empty());
  s.duration_ns = 5;
  s.set("frames", 12);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.counter("frames"), 12u);
  EXPECT_EQ(s.counter("absent"), 0u);
}

TEST(Trace, DisabledSpansRecordNothing) {
  TraceBuffer& tb = TraceBuffer::global();
  tb.set_enabled(false);
  tb.clear();
  { TraceSpan span("test.disabled"); }
  for (const TraceEvent& e : tb.events()) {
    EXPECT_STRNE(e.name, "test.disabled");
  }
}

TEST(Trace, SpansRecordWhenEnabledAndClearDrops) {
  TraceBuffer& tb = TraceBuffer::global();
  tb.clear();
  tb.set_enabled(true);
  {
    TraceSpan outer("test.outer");
    TraceSpan inner("test.inner");
  }
  tb.set_enabled(false);
  const auto evs = tb.events();
  int seen = 0;
  for (const TraceEvent& e : evs) {
    if (std::string_view(e.name) == "test.outer" ||
        std::string_view(e.name) == "test.inner") {
      ++seen;
      EXPECT_EQ(e.tid, thread_id());
    }
  }
  EXPECT_EQ(seen, 2);
  // Events are sorted by start time.
  for (std::size_t i = 1; i < evs.size(); ++i) {
    EXPECT_LE(evs[i - 1].start_ns, evs[i].start_ns);
  }
  tb.clear();
  for (const TraceEvent& e : tb.events()) {
    EXPECT_STRNE(e.name, "test.outer");
  }
}

TEST(Trace, EventsFromExitedThreadsAreRetained) {
  TraceBuffer& tb = TraceBuffer::global();
  tb.clear();
  tb.set_enabled(true);
  std::thread([] { TraceSpan span("test.worker"); }).join();
  tb.set_enabled(false);
  bool found = false;
  for (const TraceEvent& e : tb.events()) {
    if (std::string_view(e.name) == "test.worker") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Trace, ChromeTraceExport) {
  TraceBuffer& tb = TraceBuffer::global();
  tb.clear();
  tb.set_enabled(true);
  { TraceSpan span("test.chrome"); }
  tb.set_enabled(false);

  EXPECT_FALSE(tb.write_chrome_trace("/nonexistent-dir/trace.json"));
  const fs::path out = fs::path(::testing::TempDir()) / "trace.json";
  ASSERT_TRUE(tb.write_chrome_trace(out.string()));
  const std::string json = slurp(out);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test.chrome\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\""), std::string::npos);
}

TEST(Macros, CountHistGaugeFeedTheGlobalRegistry) {
  // Whatever the build mode, the macros must compile; with telemetry ON
  // they must land in the global registry.
  JPG_COUNT("test.macro.count", 2);
  JPG_COUNT("test.macro.count", 3);
  JPG_GAUGE_SET("test.macro.gauge", 17);
  JPG_HIST("test.macro.hist", 6);
  JPG_TELEM(const std::uint64_t before = now_ns();)
#if JPG_TELEMETRY_ENABLED
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.counter("test.macro.count"), 5u);
  ASSERT_NE(snap.histogram("test.macro.hist"), nullptr);
  EXPECT_GE(now_ns(), before);
#endif
}

}  // namespace
}  // namespace jpg::telemetry
