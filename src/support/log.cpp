#include "support/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace jpg {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[jpg %-5s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace jpg
