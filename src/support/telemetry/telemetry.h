// Flow-wide telemetry: a process-global MetricsRegistry (sharded counters,
// gauges, fixed-bucket histograms) plus RAII TraceSpans recording into
// lock-free per-thread rings, exportable as a metrics JSON document and as
// Chrome trace-event format (load the file in chrome://tracing or Perfetto).
//
// Design rules (docs/OBSERVABILITY.md has the full catalogue):
//  * Instrumentation sites go through the JPG_COUNT / JPG_GAUGE_* /
//    JPG_HIST / JPG_SPAN / JPG_TELEM macros below. With the CMake option
//    JPG_TELEMETRY=OFF every macro expands to nothing, so the instrumented
//    hot paths compile back to their uninstrumented form — the classes stay
//    available (the CLI flags still parse; snapshots are just empty).
//  * Counters are monotonic and sharded across cache lines: a hot-path
//    add() is one relaxed fetch_add on a (mostly) thread-private line.
//    Hot inner loops accumulate locally and flush once per unit of work
//    (per net search, per frame, per stream) — never per element.
//  * snapshot() returns a coherent view: the name set and every value are
//    collected under the registry mutex; counter values are sums over
//    shards of monotonic atomics, so a snapshot never goes backwards.
//  * Tracing is off by default; TraceSpan checks one relaxed atomic and
//    records nothing when disabled. Span names must be string literals
//    (the event stores the pointer, not a copy).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#ifndef JPG_TELEMETRY_ENABLED
#define JPG_TELEMETRY_ENABLED 1
#endif

namespace jpg::telemetry {

/// Nanoseconds since an arbitrary process-local epoch (steady clock).
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// Small dense id of the calling thread (registration order, not OS tid).
[[nodiscard]] std::uint32_t thread_id() noexcept;

// --- Metric primitives -------------------------------------------------------

/// Monotonic counter, sharded to keep concurrent add()s off one cache line.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void add(std::uint64_t delta = 1) noexcept {
    shards_[thread_id() % kShards].v.fetch_add(delta,
                                               std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }
  void reset() noexcept {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kShards> shards_;
};

/// Last-value gauge (signed: queue depths go up and down).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram over non-negative integers with power-of-two
/// bucket edges: bucket b counts values whose bit width is b, i.e. value 0
/// lands in bucket 0, 1 in bucket 1, 2..3 in bucket 2, 4..7 in bucket 3...
/// Cheap (no per-instance configuration), monotonic, and wide enough for
/// nanosecond latencies and element counts alike.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 48;

  void record(std::uint64_t v) noexcept {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) noexcept {
    std::size_t b = 0;
    while (v != 0) {
      ++b;
      v >>= 1;
    }
    return b < kBuckets ? b : kBuckets - 1;
  }
  /// Inclusive upper edge of bucket `b` (the largest value it can hold).
  [[nodiscard]] static std::uint64_t bucket_edge(std::size_t b) noexcept {
    return b == 0 ? 0 : (b >= 64 ? ~0ull : (1ull << b) - 1);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

// --- Snapshots ---------------------------------------------------------------

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Upper bucket edge below which at least `p` (0..1) of samples fall.
  [[nodiscard]] std::uint64_t percentile_edge(double p) const;
};

/// Point-in-time view of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Value of a counter, 0 when absent.
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  [[nodiscard]] const HistogramSnapshot* histogram(std::string_view name) const;
  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// The metrics JSON document: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{count,sum,mean,buckets:[...]}}}.
  [[nodiscard]] std::string to_json() const;
};

// --- Registry ----------------------------------------------------------------

class MetricsRegistry {
 public:
  /// Process-wide registry (leaked singleton: usable from any static-
  /// destruction context).
  static MetricsRegistry& global();

  /// Registration is idempotent; returned references stay valid for the
  /// registry's lifetime. Registering one name as two different kinds
  /// throws JpgError.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every metric (names stay registered). Tests and the CLI call
  /// this quiescently; concurrent writers may leak a few counts into the
  /// fresh epoch, which monotonicity tolerates.
  void reset();

  /// Serialises snapshot() to `path`; false (stderr note) on I/O error.
  bool write_json(const std::string& path) const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// --- Stage snapshots (attached to flow results) ------------------------------

/// A tiny per-operation telemetry record carried on RouteStats,
/// PartialGenResult and DownloadReport: wall time plus the stage's own
/// counters, tallied locally by the producing operation (so concurrent
/// operations never cross-contaminate each other's numbers the way global
/// counter deltas would). Empty when JPG_TELEMETRY=OFF.
struct StageSnapshot {
  std::uint64_t duration_ns = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;

  void set(std::string name, std::uint64_t v) {
    counters.emplace_back(std::move(name), v);
  }
  [[nodiscard]] std::uint64_t counter(std::string_view name) const {
    for (const auto& [n, v] : counters) {
      if (n == name) return v;
    }
    return 0;
  }
  [[nodiscard]] bool empty() const {
    return duration_ns == 0 && counters.empty();
  }
};

// --- Tracing -----------------------------------------------------------------

/// One completed span. `name` must point at a string literal.
struct TraceEvent {
  const char* name = nullptr;
  std::uint32_t tid = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
};

/// Process-wide trace sink: every thread records into its own fixed-size
/// ring (single writer, no locks on the record path; the newest events win
/// when a ring wraps). Rings of exited threads are retired into the sink
/// under the registry mutex, so no event is lost across thread lifetimes.
class TraceBuffer {
 public:
  static constexpr std::size_t kRingCapacity = 1 << 14;  ///< events per thread

  static TraceBuffer& global();

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Records into the calling thread's ring. Callers check enabled() first
  /// (TraceSpan does); recording while disabled still works.
  void record(const TraceEvent& e);

  /// Copies out every buffered event, sorted by start time. Intended at
  /// flow boundaries (CLI exit, bench end) when recorders are idle; an
  /// event being recorded concurrently may be missed or torn — never UB on
  /// the name pointer, which is a literal.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Events dropped to ring wrap-around since the last clear().
  [[nodiscard]] std::uint64_t dropped() const;

  void clear();

  /// Writes events() as a Chrome trace-event JSON document
  /// ({"traceEvents":[{"name",...,"ph":"X","ts","dur","pid","tid"},...]}).
  /// False (stderr note) on I/O error.
  bool write_chrome_trace(const std::string& path) const;

 private:
  struct Ring;
  friend struct ThreadRingOwner;

  TraceBuffer() = default;
  Ring& local_ring();
  void retire(Ring& ring);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<Ring>> rings_;     ///< live threads
  std::vector<TraceEvent> retired_;              ///< from exited threads
  std::uint64_t retired_dropped_ = 0;
};

/// RAII span: records [construction, destruction) into the trace buffer
/// when tracing is enabled. `name` must be a string literal.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept {
    if (TraceBuffer::global().enabled()) {
      name_ = name;
      start_ = now_ns();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      TraceBuffer::global().record(
          {name_, thread_id(), start_, now_ns() - start_});
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ = 0;
};

}  // namespace jpg::telemetry

// --- Instrumentation macros --------------------------------------------------
//
// All hot-path instrumentation goes through these, so JPG_TELEMETRY=OFF
// restores the uninstrumented code exactly. The static local reference
// makes the registry lookup a one-time cost per site.

#if JPG_TELEMETRY_ENABLED

#define JPG_TELEM(...) __VA_ARGS__
#define JPG_COUNT(metric, delta)                                        \
  do {                                                                  \
    static ::jpg::telemetry::Counter& jpg_telem_c =                     \
        ::jpg::telemetry::MetricsRegistry::global().counter(metric);    \
    jpg_telem_c.add(delta);                                             \
  } while (0)
#define JPG_GAUGE_SET(metric, v)                                        \
  do {                                                                  \
    static ::jpg::telemetry::Gauge& jpg_telem_g =                       \
        ::jpg::telemetry::MetricsRegistry::global().gauge(metric);      \
    jpg_telem_g.set(v);                                                 \
  } while (0)
#define JPG_GAUGE_ADD(metric, d)                                        \
  do {                                                                  \
    static ::jpg::telemetry::Gauge& jpg_telem_g =                       \
        ::jpg::telemetry::MetricsRegistry::global().gauge(metric);      \
    jpg_telem_g.add(d);                                                 \
  } while (0)
#define JPG_HIST(metric, v)                                             \
  do {                                                                  \
    static ::jpg::telemetry::Histogram& jpg_telem_h =                   \
        ::jpg::telemetry::MetricsRegistry::global().histogram(metric);  \
    jpg_telem_h.record(v);                                              \
  } while (0)
#define JPG_TELEM_CONCAT_IMPL(a, b) a##b
#define JPG_TELEM_CONCAT(a, b) JPG_TELEM_CONCAT_IMPL(a, b)
#define JPG_SPAN(name) \
  ::jpg::telemetry::TraceSpan JPG_TELEM_CONCAT(jpg_telem_span_, __LINE__)(name)

#else  // JPG_TELEMETRY_ENABLED

#define JPG_TELEM(...)
#define JPG_COUNT(metric, delta) ((void)0)
#define JPG_GAUGE_SET(metric, v) ((void)0)
#define JPG_GAUGE_ADD(metric, d) ((void)0)
#define JPG_HIST(metric, v) ((void)0)
#define JPG_SPAN(name) ((void)0)

#endif  // JPG_TELEMETRY_ENABLED
