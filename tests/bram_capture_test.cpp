// Tests for the two configuration-architecture extensions: block-type-1
// BRAM content frames (partial memory updates without touching logic) and
// the CAPTURE/readback mechanism for observing live flip-flop state.
#include <gtest/gtest.h>

#include "bitstream/bitgen.h"
#include "bitstream/config_port.h"
#include "core/partial_gen.h"
#include "hwif/sim_board.h"
#include "netlib/generators.h"
#include "pnr/flow.h"
#include "support/rng.h"

namespace jpg {
namespace {

// --- BRAM frame addressing ------------------------------------------------------

TEST(BramFrames, FarType1Roundtrip) {
  const Device& dev = Device::get("XCV50");
  const FrameMap& fm = dev.frames();
  for (std::uint32_t major = 0; major < FrameMap::kBramMajors; ++major) {
    for (std::uint32_t minor = 0; minor < FrameMap::kBramFrames; minor += 7) {
      const FrameAddress a{1, major, minor};
      const std::uint32_t far = fm.encode_far(a);
      EXPECT_TRUE(fm.far_valid(far));
      EXPECT_EQ(fm.decode_far(far), a);
      const std::size_t idx = fm.frame_index_of(a);
      EXPECT_GE(idx, fm.num_type0_frames());
      EXPECT_LT(idx, fm.num_frames());
      EXPECT_EQ(fm.address_of_index(idx), a);
    }
  }
  // Invalid type-1 FARs.
  EXPECT_FALSE(fm.far_valid((1u << 24) | (2u << 12)));
  EXPECT_FALSE(fm.far_valid((1u << 24) | 64u));
  EXPECT_FALSE(fm.far_valid(2u << 24));
  EXPECT_NE(fm.describe_frame(fm.bram_frame_index(0, 5)).find("BRAM"),
            std::string::npos);
}

TEST(BramFrames, BitMapInjectiveWithinColumn) {
  const Device& dev = Device::get("XCV50");
  const SliceConfigMap& cm = dev.config_map();
  ASSERT_EQ(cm.bram_blocks_per_column(), dev.rows() / 4);
  std::set<std::tuple<int, int, unsigned>> used;
  for (int block = 0; block < cm.bram_blocks_per_column(); ++block) {
    for (int i = 0; i < SliceConfigMap::kBramBitsPerBlock; i += 13) {
      const FrameBit fb = cm.bram_bit(Side::Left, block, i);
      EXPECT_EQ(fb.block_type, 1);
      EXPECT_EQ(fb.major, 0);
      EXPECT_LT(fb.minor, FrameMap::kBramFrames);
      EXPECT_TRUE(used.insert({fb.major, fb.minor, fb.bit}).second)
          << "block " << block << " bit " << i;
    }
  }
  // The right column is a distinct major.
  EXPECT_EQ(cm.bram_bit(Side::Right, 0, 0).major, 1);
}

TEST(Bram, WordReadWriteRoundtrip) {
  const Device& dev = Device::get("XCV50");
  ConfigMemory mem(dev);
  CBits cb(mem);
  Rng rng(55);
  std::map<int, std::uint16_t> written;
  for (int trial = 0; trial < 100; ++trial) {
    const int block = static_cast<int>(
        rng.uniform(static_cast<std::uint64_t>(
            dev.config_map().bram_blocks_per_column())));
    const int addr = static_cast<int>(rng.uniform(256));
    const auto value = static_cast<std::uint16_t>(rng.next());
    cb.bram_write(Side::Left, block, addr, value);
    written[block * 256 + addr] = value;
  }
  for (const auto& [key, value] : written) {
    EXPECT_EQ(cb.bram_read(Side::Left, key / 256, key % 256), value);
  }
  // The right column stayed untouched.
  for (int addr = 0; addr < 256; addr += 17) {
    EXPECT_EQ(cb.bram_read(Side::Right, 0, addr), 0);
  }
}

TEST(Bram, FillAndBoundsChecks) {
  const Device& dev = Device::get("XCV50");
  ConfigMemory mem(dev);
  CBits cb(mem);
  std::vector<std::uint16_t> rom(256);
  for (std::size_t i = 0; i < rom.size(); ++i) {
    rom[i] = static_cast<std::uint16_t>(i * 3 + 1);
  }
  cb.bram_fill(Side::Right, 2, rom);
  for (int addr = 0; addr < 256; ++addr) {
    EXPECT_EQ(cb.bram_read(Side::Right, 2, addr), rom[static_cast<std::size_t>(addr)]);
  }
  EXPECT_THROW(cb.bram_write(Side::Left, 0, 256, 0), JpgError);
  EXPECT_THROW(cb.bram_write(Side::Left, 99, 0, 0), JpgError);
  EXPECT_THROW(cb.bram_fill(Side::Left, 0, std::vector<std::uint16_t>(3)),
               JpgError);
}

TEST(Bram, ContentSurvivesFullBitstreamRoundtrip) {
  const Device& dev = Device::get("XCV50");
  ConfigMemory mem(dev);
  CBits cb(mem);
  cb.bram_write(Side::Left, 1, 42, 0xBEEF);
  cb.bram_write(Side::Right, 3, 200, 0x1234);
  const Bitstream bs = generate_full_bitstream(mem);
  ConfigMemory loaded(dev);
  ConfigPort port(loaded);
  port.load(bs);
  CBits lb(loaded);
  EXPECT_EQ(lb.bram_read(Side::Left, 1, 42), 0xBEEF);
  EXPECT_EQ(lb.bram_read(Side::Right, 3, 200), 0x1234);
  EXPECT_EQ(loaded, mem);
}

TEST(Bram, PartialUpdateTouchesOnlyBramFrames) {
  const Device& dev = Device::get("XCV50");
  ConfigMemory base(dev);
  {
    CBits cb(base);
    cb.set_lut({3, 3, 0}, LutSel::F, 0xAAAA);  // some logic in the base
    cb.bram_write(Side::Left, 0, 0, 0x1111);
  }
  ConfigMemory updated = base;
  {
    CBits cb(updated);
    cb.bram_write(Side::Left, 0, 0, 0x2222);
    cb.bram_write(Side::Left, 2, 100, 0x3333);
  }
  const PartialBitstreamGenerator gen(base);
  PartialGenOptions opts;
  opts.diff_only = true;
  const PartialGenResult pr = gen.generate_bram_update(updated, Side::Left, opts);
  EXPECT_GE(pr.frames.size(), 2u);
  for (const std::size_t f : pr.frames) {
    EXPECT_EQ(dev.frames().address_of_index(f).block_type, 1u)
        << dev.frames().describe_frame(f);
  }
  // Loading the update transforms base into updated exactly.
  ConfigMemory mem = base;
  ConfigPort port(mem);
  port.load(pr.bitstream);
  EXPECT_EQ(mem, updated);
  // All-frames mode ships the whole column.
  PartialGenOptions all;
  all.diff_only = false;
  EXPECT_EQ(gen.generate_bram_update(updated, Side::Left, all).frames.size(),
            static_cast<std::size_t>(FrameMap::kBramFrames));
}

TEST(Bram, LiveMemoryUpdateLeavesLogicRunning) {
  // The era's flagship use case: swap a ROM's contents on a running device.
  const Device& dev = Device::get("XCV50");
  const BaseFlowResult flow = run_base_flow(dev, netlib::make_counter(4), {});
  ConfigMemory mem(dev);
  CBits cb(mem);
  flow.design->apply(cb);
  std::vector<std::uint16_t> rom(256, 0x0F0F);
  cb.bram_fill(Side::Left, 0, rom);
  const Bitstream base_bit = generate_full_bitstream(mem);

  int q0 = 0;
  for (std::size_t i = 0; i < flow.design->iob_cells.size(); ++i) {
    if (flow.design->netlist().cell(flow.design->iob_cells[i]).port == "q0") {
      q0 = dev.pad_number(flow.design->iob_sites[i]);
    }
  }

  SimBoard board(dev);
  board.send_config(base_bit.words);
  board.step_clock(5);
  EXPECT_TRUE(board.get_pin(q0));  // counter at 5

  // Build and download the BRAM update.
  ConfigMemory updated = mem;
  {
    CBits ucb(updated);
    std::vector<std::uint16_t> rom2(256, 0xF0F0);
    ucb.bram_fill(Side::Left, 0, rom2);
  }
  const PartialBitstreamGenerator gen(mem);
  const PartialGenResult pr = gen.generate_bram_update(updated, Side::Left);
  board.send_config(pr.bitstream.words);

  // Logic untouched: the counter continues from 5 (BRAM frames are not CLB
  // columns, so SimBoard carries all FF state).
  board.step_clock(1);
  EXPECT_FALSE(board.get_pin(q0));  // 6 is even
  board.step_clock(1);
  EXPECT_TRUE(board.get_pin(q0));   // 7
  // And the new contents are visible through readback.
  const auto words =
      board.readback(dev.frames().bram_frame_index(0, 0), 1);
  ConfigMemory check(dev);
  check.write_frame_words(dev.frames().bram_frame_index(0, 0), words.data());
  CBits ccb(check);
  EXPECT_EQ(ccb.bram_read(Side::Left, 0, 0), 0xF0F0);
}

// --- State capture ---------------------------------------------------------------

TEST(Capture, CaptureBitsAreInjectiveAndFree) {
  const Device& dev = Device::get("XCV50");
  const SliceConfigMap& cm = dev.config_map();
  std::set<std::tuple<int, int, unsigned>> used;
  // Capture bits of a tile must not collide with each other nor with any
  // logic/routing bit of the same tile.
  const TileCoord t{4, 9};
  for (int s = 0; s < 2; ++s) {
    for (int le = 0; le < 2; ++le) {
      const FrameBit fb = cm.capture_bit(t.r, t.c, s, le);
      EXPECT_TRUE(used.insert({fb.major, fb.minor, fb.bit}).second);
    }
    for (int i = 0; i < 16; ++i) {
      const FrameBit fb = cm.lut_bit(t.r, t.c, s, LutSel::F, i);
      EXPECT_TRUE(used.insert({fb.major, fb.minor, fb.bit}).second);
    }
    for (int f = 0; f < kNumSliceFields; ++f) {
      const FrameBit fb = cm.field_bit(t.r, t.c, s, static_cast<SliceField>(f));
      EXPECT_TRUE(used.insert({fb.major, fb.minor, fb.bit}).second);
    }
  }
  for (int i = 0; i < SliceConfigMap::kRoutingBitsPerTile; ++i) {
    const FrameBit fb = cm.routing_bit(t.r, t.c, i);
    EXPECT_TRUE(used.insert({fb.major, fb.minor, fb.bit}).second) << i;
  }
}

TEST(Capture, ReadsLiveCounterState) {
  const Device& dev = Device::get("XCV50");
  const BaseFlowResult flow = run_base_flow(dev, netlib::make_counter(6), {});
  ConfigMemory mem(dev);
  CBits cb(mem);
  flow.design->apply(cb);
  const Bitstream bit = generate_full_bitstream(mem);

  SimBoard board(dev);
  board.send_config(bit.words);
  board.step_clock(45);
  board.capture_state();

  // Decode the captured state: find each counter FF's site and assemble
  // the value from the capture bits via readback.
  int value = 0;
  for (int b = 0; b < 6; ++b) {
    const CellId ff =
        *flow.design->netlist().find_cell("ff" + std::to_string(b));
    const CellPlace cp = flow.design->cell_place.at(ff);
    const SliceSite site = flow.design->slice_sites[cp.slice_index];
    const FrameBit fb =
        dev.config_map().capture_bit(site.r, site.c, site.slice, cp.le);
    const std::size_t frame = dev.frames().frame_index(fb.major, fb.minor);
    const auto words = board.readback(frame, 1);
    BitVector bv(dev.frames().frame_bits());
    for (std::size_t w = 0; w < words.size(); ++w) bv.set_word(w, words[w]);
    if (bv.get(fb.bit)) value |= 1 << b;
  }
  EXPECT_EQ(value, 45);

  // Capture again later: the plane reflects the newer state.
  board.step_clock(1);
  board.capture_state();
  CBits ccb(board.config());
  const CellId ff0 = *flow.design->netlist().find_cell("ff0");
  const CellPlace cp0 = flow.design->cell_place.at(ff0);
  const SliceSite s0 = flow.design->slice_sites[cp0.slice_index];
  EXPECT_EQ(ccb.get_captured_ff(s0, cp0.le), (46 & 1) != 0);
}

TEST(Capture, DoesNotDisturbTheCircuit) {
  const Device& dev = Device::get("XCV50");
  const BaseFlowResult flow = run_base_flow(dev, netlib::make_lfsr(8), {});
  ConfigMemory mem(dev);
  CBits cb(mem);
  flow.design->apply(cb);
  SimBoard board(dev);
  board.send_config(generate_full_bitstream(mem).words);
  board.step_clock(10);
  const int rebuilds = board.rebuilds();
  board.capture_state();
  board.step_clock(10);
  EXPECT_EQ(board.rebuilds(), rebuilds);  // capture is not a config session
  EXPECT_EQ(board.cycles(), 20u);
}

}  // namespace
}  // namespace jpg
