
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hwif/burst_engine.cpp" "src/CMakeFiles/jpg_hwif.dir/hwif/burst_engine.cpp.o" "gcc" "src/CMakeFiles/jpg_hwif.dir/hwif/burst_engine.cpp.o.d"
  "/root/repo/src/hwif/faulty_board.cpp" "src/CMakeFiles/jpg_hwif.dir/hwif/faulty_board.cpp.o" "gcc" "src/CMakeFiles/jpg_hwif.dir/hwif/faulty_board.cpp.o.d"
  "/root/repo/src/hwif/sim_board.cpp" "src/CMakeFiles/jpg_hwif.dir/hwif/sim_board.cpp.o" "gcc" "src/CMakeFiles/jpg_hwif.dir/hwif/sim_board.cpp.o.d"
  "/root/repo/src/hwif/verified_downloader.cpp" "src/CMakeFiles/jpg_hwif.dir/hwif/verified_downloader.cpp.o" "gcc" "src/CMakeFiles/jpg_hwif.dir/hwif/verified_downloader.cpp.o.d"
  "/root/repo/src/hwif/xhwif.cpp" "src/CMakeFiles/jpg_hwif.dir/hwif/xhwif.cpp.o" "gcc" "src/CMakeFiles/jpg_hwif.dir/hwif/xhwif.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/jpg_bitstream.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/jpg_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/jpg_netlist.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/jpg_cbits.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/jpg_device.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/jpg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
