file(REMOVE_RECURSE
  "CMakeFiles/jpg_ucf.dir/ucf/ucf_parser.cpp.o"
  "CMakeFiles/jpg_ucf.dir/ucf/ucf_parser.cpp.o.d"
  "libjpg_ucf.a"
  "libjpg_ucf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpg_ucf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
