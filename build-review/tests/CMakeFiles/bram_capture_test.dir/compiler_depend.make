# Empty compiler generated dependencies file for bram_capture_test.
# This may be replaced when dependencies are built.
