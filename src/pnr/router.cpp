#include "pnr/router.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <sstream>
#include <unordered_map>

#include "support/log.h"
#include "support/thread_pool.h"

namespace jpg {

// --- RoutingGraph -----------------------------------------------------------

RoutingGraph::RoutingGraph(const Device& device) : device_(&device) {
  const RoutingFabric& fab = device.fabric();
  const std::size_t n = fab.num_nodes();

  struct RawEdge {
    std::size_t from;
    Edge e;
  };
  std::vector<RawEdge> raw;

  auto dest_node_of_mux = [&](int r, int c, const MuxDef& m) -> std::size_t {
    if (m.dest_local < kTileWires) {
      return fab.tile_wire_node(r, c, m.dest_local);
    }
    const int k = m.dest_local - kLongDriverBase;
    return k < 2 ? fab.longh_node(r, k) : fab.longv_node(c, k - 2);
  };

  for (int r = 0; r < device.rows(); ++r) {
    for (int c = 0; c < device.cols(); ++c) {
      for (const MuxDef& m : fab.tile_muxes()) {
        const std::size_t dest = dest_node_of_mux(r, c, m);
        for (std::size_t i = 0; i < m.sources.size(); ++i) {
          const auto src = fab.resolve_source(r, c, m.sources[i]);
          if (!src) continue;
          RawEdge re;
          re.from = *src;
          re.e.to = static_cast<std::uint32_t>(dest);
          re.e.r = static_cast<std::int16_t>(r);
          re.e.c = static_cast<std::int16_t>(c);
          re.e.dest_local = static_cast<std::int16_t>(m.dest_local);
          re.e.sel = static_cast<std::uint16_t>(i + 1);
          raw.push_back(re);
        }
      }
    }
  }
  // Pad-input muxes.
  for (const IobSite s : device.all_iob_sites()) {
    const auto sources = fab.pad_in_sources(s.side, s.row, s.k);
    const std::size_t dest = fab.pad_in_node(s.side, s.row, s.k);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      RawEdge re;
      re.from = sources[i];
      re.e.to = static_cast<std::uint32_t>(dest);
      re.e.r = static_cast<std::int16_t>(s.row);
      re.e.c = static_cast<std::int16_t>(s.k);
      re.e.dest_local = s.side == Side::Left ? kPadInLeft : kPadInRight;
      re.e.sel = static_cast<std::uint16_t>(i + 1);
      raw.push_back(re);
    }
  }

  // CSR assembly.
  offsets_.assign(n + 1, 0);
  for (const RawEdge& re : raw) ++offsets_[re.from + 1];
  for (std::size_t i = 1; i <= n; ++i) offsets_[i] += offsets_[i - 1];
  edges_.resize(raw.size());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const RawEdge& re : raw) {
    edges_[cursor[re.from]++] = re.e;
  }

  // Flattened node metadata for the A* inner loop.
  node_r_.assign(n, -1);
  node_c_.assign(n, -1);
  base_cost_.assign(n, 1.0f);
  for (std::size_t node = 0; node < n; ++node) {
    const auto info = fab.node_info(node);
    switch (info.type) {
      case RoutingFabric::NodeInfo::Type::TileWire:
        node_r_[node] = static_cast<std::int16_t>(info.r);
        node_c_[node] = static_cast<std::int16_t>(info.c);
        break;
      case RoutingFabric::NodeInfo::Type::PadOut:
      case RoutingFabric::NodeInfo::Type::PadIn:
        // Pads sit just off the array edge; anchoring them at the adjacent
        // CLB column keeps IOB nets' A* heuristic and bounding box tight
        // (a -1 here would degrade every pad search to blind Dijkstra).
        node_r_[node] = static_cast<std::int16_t>(info.r);
        node_c_[node] = static_cast<std::int16_t>(
            info.side == Side::Left ? 0 : device.cols() - 1);
        break;
      case RoutingFabric::NodeInfo::Type::LongH:
      case RoutingFabric::NodeInfo::Type::LongV:
        base_cost_[node] = 3.0f;  // discourage long lines unless they pay off
        break;
      default:
        break;
    }
  }
  JPG_INFO("routing graph for " << device.spec().name << ": " << n
                                << " nodes, " << edges_.size() << " edges");
}

const RoutingGraph& RoutingGraph::get(const Device& device) {
  static std::mutex mutex;
  static std::map<std::string, std::unique_ptr<RoutingGraph>> cache;
  const std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(device.spec().name);
  if (it == cache.end()) {
    it = cache.emplace(device.spec().name,
                       std::make_unique<RoutingGraph>(device))
             .first;
  }
  return *it->second;
}

// --- PathFinder ----------------------------------------------------------------

namespace {

/// Per-worker A* scratch: the stamp/cost/predecessor arrays, the reusable
/// binary heap, and the routing-tree membership stamps. One instance per
/// concurrent search; leased from a pool so rounds of any width reuse the
/// same allocations.
struct RouterScratch {
  std::vector<double> cost;
  std::vector<std::int32_t> prev_edge;  ///< index into edge_store
  std::vector<std::uint32_t> stamp;
  std::uint32_t cur_stamp = 0;
  std::vector<std::pair<std::uint32_t, RoutingGraph::Edge>> edge_store;
  /// Min-heap of (est total, node), reused across sink searches.
  std::vector<std::pair<double, std::size_t>> heap;
  /// Routing-tree membership as a stamp array (replaces the seed's O(n)
  /// std::find over the tree vector) plus the tree nodes for seeding.
  std::vector<std::uint32_t> tree_stamp;
  std::uint32_t tree_mark = 0;
  std::vector<std::size_t> tree;
  std::vector<std::size_t> sinks;

  void ensure(std::size_t n) {
    if (stamp.size() < n) {
      cost.resize(n);
      prev_edge.resize(n);
      stamp.assign(n, 0);
      tree_stamp.assign(n, 0);
      cur_stamp = 0;
      tree_mark = 0;
    }
  }
};

/// Mutex-guarded lease pool of RouterScratch instances (cheap relative to a
/// single A* search; keeps per-worker state off the PathFinder object).
class ScratchPool {
 public:
  explicit ScratchPool(std::size_t nodes) : nodes_(nodes) {}

  RouterScratch* acquire() {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (free_.empty()) {
      all_.push_back(std::make_unique<RouterScratch>());
      all_.back()->ensure(nodes_);
      return all_.back().get();
    }
    RouterScratch* s = free_.back();
    free_.pop_back();
    return s;
  }
  void release(RouterScratch* s) {
    const std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(s);
  }

  struct Lease {
    ScratchPool* pool;
    RouterScratch* s;
    explicit Lease(ScratchPool& p) : pool(&p), s(p.acquire()) {}
    ~Lease() { pool->release(s); }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
  };

 private:
  std::size_t nodes_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<RouterScratch>> all_;
  std::vector<RouterScratch*> free_;
};

/// Net bounding box over CLB tile coordinates, used to window the A*
/// search. Nets touching position-free nodes (longs, pads, GCLK) get the
/// whole device.
struct NetBBox {
  int r0 = 0, c0 = 0, r1 = 0, c1 = 0;
};

class PathFinder {
 public:
  PathFinder(const RoutingGraph& g, const std::vector<NetToRoute>& nets,
             const RouteConstraints& cons, const RouterOptions& opt)
      : g_(g), nets_(nets), cons_(cons), opt_(opt) {}

  std::vector<RoutedNet> run(RouteStats* stats);

 private:
  void build_permissions();
  void compute_bboxes();
  /// Routes one net against the frozen occupancy/history snapshot using the
  /// given scratch; fills result_[net_idx] but does NOT touch occupancy_
  /// (merged at the round barrier). Throws on unreachable.
  void route_net(std::size_t net_idx, RouterScratch& s);
  void rip_up(std::size_t net_idx);
  std::vector<RoutedNet> assemble(RouteStats* stats, int iterations,
                                  std::size_t spec_rounds,
                                  std::size_t spec_retries,
                                  std::size_t reroutes) const;

  // Seed-algorithm reference implementation (RouterOptions::reference_impl):
  // online occupancy updates, interleaved rip-up, linear tree scans.
  [[nodiscard]] double reference_base_cost(std::size_t node) const;
  [[nodiscard]] double reference_heuristic(std::size_t node,
                                           std::size_t sink) const;
  void reference_route_net(std::size_t net_idx, RouterScratch& s);
  std::vector<RoutedNet> run_reference(RouteStats* stats);

  const RoutingGraph& g_;
  const std::vector<NetToRoute>& nets_;
  const RouteConstraints& cons_;
  const RouterOptions& opt_;

  std::vector<std::uint8_t> allowed_;
  /// Per-CLB-tile permission for *programming a mux there*. Nodes and pip
  /// tiles must be gated separately: a long-line driver's config bits live
  /// in the driving tile's column even though the driven node (the shared
  /// long) is legal — without this gate a static net could program a mux
  /// inside a reconfigurable region and be wiped by the next module swap.
  std::vector<std::uint8_t> tile_allowed_;
  std::vector<int> occupancy_;
  std::vector<double> history_;
  double pres_fac_ = 1.0;

  std::vector<NetBBox> bbox_;  ///< parallel to nets_
  /// A* heap pops over every search (relaxed; flushed once per net search).
  JPG_TELEM(mutable std::atomic<std::uint64_t> astar_pops_{0};)

  // Per-net routing state.
  struct NetRoute {
    std::vector<std::size_t> nodes;  ///< tree nodes excluding the source
    std::vector<RoutingGraph::Edge> edges;
  };
  std::vector<NetRoute> result_;
};

void PathFinder::build_permissions() {
  const Device& dev = g_.device();
  const RoutingFabric& fab = dev.fabric();
  const std::size_t n = fab.num_nodes();
  allowed_.assign(n, 1);

  if (cons_.restrict_region.has_value()) {
    const Region reg = *cons_.restrict_region;
    std::fill(allowed_.begin(), allowed_.end(), 0);
    for (int r = reg.r0; r <= reg.r1; ++r) {
      for (int c = reg.c0; c <= reg.c1; ++c) {
        for (int w = 0; w < kTileWires; ++w) {
          allowed_[fab.tile_wire_node(r, c, w)] = 1;
        }
      }
    }
    if (reg.full_height(dev)) {
      for (int c = reg.c0; c <= reg.c1; ++c) {
        for (int k = 0; k < kLongsPerCol; ++k) {
          allowed_[fab.longv_node(c, k)] = 1;
        }
      }
    }
  }
  for (const Region& reg : cons_.exclude_regions) {
    for (int r = reg.r0; r <= reg.r1; ++r) {
      for (int c = reg.c0; c <= reg.c1; ++c) {
        for (int w = 0; w < kTileWires; ++w) {
          allowed_[fab.tile_wire_node(r, c, w)] = 0;
        }
      }
    }
    for (int c = reg.c0; c <= reg.c1; ++c) {
      for (int k = 0; k < kLongsPerCol; ++k) {
        allowed_[fab.longv_node(c, k)] = 0;
      }
    }
  }
  // Tile gate for mux programming.
  tile_allowed_.assign(
      static_cast<std::size_t>(dev.rows()) * dev.cols(),
      cons_.restrict_region.has_value() ? 0 : 1);
  if (cons_.restrict_region.has_value()) {
    const Region reg = *cons_.restrict_region;
    for (int r = reg.r0; r <= reg.r1; ++r) {
      for (int c = reg.c0; c <= reg.c1; ++c) {
        tile_allowed_[static_cast<std::size_t>(r) * dev.cols() + c] = 1;
      }
    }
  }
  for (const Region& reg : cons_.exclude_regions) {
    for (int r = reg.r0; r <= reg.r1; ++r) {
      for (int c = reg.c0; c <= reg.c1; ++c) {
        tile_allowed_[static_cast<std::size_t>(r) * dev.cols() + c] = 0;
      }
    }
  }

  for (const std::size_t node : cons_.blocked) allowed_[node] = 0;
  for (const std::size_t node : cons_.extra_allowed) allowed_[node] = 1;
  // A net's own source and sinks are always allowed.
  for (const NetToRoute& net : nets_) {
    allowed_[net.source] = 1;
    for (const std::size_t s : net.sinks) allowed_[s] = 1;
  }
}

/// Bounding-box margin (tiles) around a net's terminals; the search window
/// extends it further by kSearchMargin. Keeping a margin here means most
/// detours stay inside the net's own neighbourhood, so speculative routes
/// of spatially separate nets rarely claim the same node.
constexpr int kBBoxMargin = kHexSpan;

void PathFinder::compute_bboxes() {
  const Device& dev = g_.device();
  bbox_.resize(nets_.size());
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    NetBBox full{0, 0, dev.rows() - 1, dev.cols() - 1};
    NetBBox b{dev.rows(), dev.cols(), -1, -1};
    bool positional = true;
    auto add = [&](std::size_t node) {
      const int r = g_.node_r(node);
      if (r < 0) {
        positional = false;
        return;
      }
      b.r0 = std::min(b.r0, r);
      b.r1 = std::max(b.r1, r);
      b.c0 = std::min(b.c0, static_cast<int>(g_.node_c(node)));
      b.c1 = std::max(b.c1, static_cast<int>(g_.node_c(node)));
    };
    add(nets_[i].source);
    for (const std::size_t s : nets_[i].sinks) add(s);
    if (!positional) {
      bbox_[i] = full;
      continue;
    }
    b.r0 = std::max(0, b.r0 - kBBoxMargin);
    b.c0 = std::max(0, b.c0 - kBBoxMargin);
    b.r1 = std::min(dev.rows() - 1, b.r1 + kBBoxMargin);
    b.c1 = std::min(dev.cols() - 1, b.c1 + kBBoxMargin);
    bbox_[i] = b;
  }
}

void PathFinder::rip_up(std::size_t net_idx) {
  for (const std::size_t node : result_[net_idx].nodes) {
    --occupancy_[node];
  }
  result_[net_idx].nodes.clear();
  result_[net_idx].edges.clear();
}

/// Extra tiles the *search window* extends beyond the batching bbox. The
/// window prunes A* expansion to the net's neighbourhood — on a large part
/// most of the graph is provably irrelevant to a short net — and a failed
/// windowed search falls back to the full graph, so routability is never
/// lost. Both window and fallback are pure functions of the net, keeping
/// the result thread-count-invariant.
constexpr int kSearchMargin = kHexSpan;

void PathFinder::route_net(std::size_t net_idx, RouterScratch& s) {
  JPG_TELEM(std::uint64_t telem_pops = 0;)
  const NetToRoute& net = nets_[net_idx];
  NetRoute& out = result_[net_idx];
  const Device& dev = g_.device();
  const int cols = dev.cols();

  const NetBBox& bb = bbox_[net_idx];
  const NetBBox win{std::max(0, bb.r0 - kSearchMargin),
                    std::max(0, bb.c0 - kSearchMargin),
                    std::min(dev.rows() - 1, bb.r1 + kSearchMargin),
                    std::min(cols - 1, bb.c1 + kSearchMargin)};
  const bool win_is_full = win.r0 == 0 && win.c0 == 0 &&
                           win.r1 == dev.rows() - 1 && win.c1 == cols - 1;

  // Order sinks farthest-first (stabilises the tree shape); ties break on
  // node id so the order is a pure function of the net.
  const int src_r = g_.node_r(net.source);
  const int src_c = g_.node_c(net.source);
  auto dist_from_source = [&](std::size_t x) {
    const int r = g_.node_r(x);
    if (src_r < 0 || r < 0) return 0;
    return std::abs(src_r - r) + std::abs(src_c - g_.node_c(x));
  };
  s.sinks.assign(net.sinks.begin(), net.sinks.end());
  std::sort(s.sinks.begin(), s.sinks.end(), [&](std::size_t x, std::size_t y) {
    const int dx = dist_from_source(x), dy = dist_from_source(y);
    return dx != dy ? dx > dy : x < y;
  });

  s.tree.clear();
  s.tree.push_back(net.source);
  ++s.tree_mark;
  s.tree_stamp[net.source] = s.tree_mark;

  for (const std::size_t sink : s.sinks) {
    if (s.tree_stamp[sink] == s.tree_mark) continue;  // already in the tree
    // Hoisted sink info: one lookup per sink search, not one per relax.
    const int sink_r = g_.node_r(sink);
    const int sink_c = g_.node_c(sink);
    // Weighted A*: kAstarFac > 1 trades a sliver of path optimality for a
    // large cut in expanded nodes (the admissible bound dist/kHexSpan is a
    // 6x underestimate whenever the route rides singles, so the plain bound
    // degenerates toward Dijkstra). PathFinder's negotiation still converges
    // on slightly non-minimal trees; the factor is identical for every
    // thread count, so determinism is unaffected.
    constexpr double kAstarFac = 2.5;
    auto heur = [&](std::size_t node) -> double {
      if (sink_r < 0) return 0;
      const int r = g_.node_r(node);
      if (r < 0) return 0;
      const double dist = std::abs(r - sink_r) +
                          std::abs(static_cast<int>(g_.node_c(node)) - sink_c);
      return dist * (kAstarFac / static_cast<double>(kHexSpan));
    };
    auto search = [&](bool windowed) -> bool {
      ++s.cur_stamp;
      s.edge_store.clear();
      s.heap.clear();
      auto relax = [&](std::size_t node, double cost, std::int32_t via) {
        if (s.stamp[node] == s.cur_stamp && s.cost[node] <= cost) return;
        s.stamp[node] = s.cur_stamp;
        s.cost[node] = cost;
        s.prev_edge[node] = via;
        s.heap.emplace_back(cost + heur(node), node);
        std::push_heap(s.heap.begin(), s.heap.end(), std::greater<>());
      };
      for (const std::size_t t : s.tree) relax(t, 0.0, -1);

      while (!s.heap.empty()) {
        const auto [est, node] = s.heap.front();
        std::pop_heap(s.heap.begin(), s.heap.end(), std::greater<>());
        s.heap.pop_back();
        JPG_TELEM(++telem_pops;)
        if (s.stamp[node] != s.cur_stamp) continue;
        if (est > s.cost[node] + heur(node) + 1e-9) continue;  // stale
        if (node == sink) return true;
        for (const RoutingGraph::Edge& e : g_.out_edges(node)) {
          const std::size_t to = e.to;
          if (!allowed_[to]) continue;
          if (windowed) {
            // Position-free nodes (longs, pads, GCLK) are never pruned.
            const int tr = g_.node_r(to);
            if (tr >= 0 &&
                (tr < win.r0 || tr > win.r1 ||
                 static_cast<int>(g_.node_c(to)) < win.c0 ||
                 static_cast<int>(g_.node_c(to)) > win.c1)) {
              continue;
            }
          }
          // CLB pips also need their tile's config bits to be in bounds.
          if (e.dest_local >= 0 &&
              !tile_allowed_[static_cast<std::size_t>(e.r) * cols + e.c]) {
            continue;
          }
          // Congestion-negotiated cost of entering `to`, against the frozen
          // batch-start snapshot of occupancy/history.
          const double congestion =
              1.0 + pres_fac_ * static_cast<double>(occupancy_[to]);
          const double c =
              s.cost[node] + g_.base_cost(to) * congestion + history_[to];
          if (s.stamp[to] == s.cur_stamp && s.cost[to] <= c) continue;
          s.edge_store.emplace_back(static_cast<std::uint32_t>(node), e);
          relax(to, c, static_cast<std::int32_t>(s.edge_store.size() - 1));
        }
      }
      return false;
    };
    bool found = search(/*windowed=*/!win_is_full);
    // A detour forced outside the window (e.g. around an excluded region)
    // retries against the whole graph before the net is called unroutable.
    if (!found && !win_is_full) found = search(/*windowed=*/false);
    if (!found) {
      std::ostringstream os;
      os << "unroutable net (id " << net.id << "): no path to sink "
         << g_.device().fabric().node_name(sink);
      throw DeviceError(os.str());
    }
    // Walk back, appending new nodes/edges to the tree.
    std::size_t node = sink;
    while (s.prev_edge[node] >= 0) {
      const auto& [from, edge] =
          s.edge_store[static_cast<std::size_t>(s.prev_edge[node])];
      out.nodes.push_back(node);
      out.edges.push_back(edge);
      s.tree.push_back(node);
      s.tree_stamp[node] = s.tree_mark;
      node = from;
    }
  }
  JPG_TELEM(astar_pops_.fetch_add(telem_pops, std::memory_order_relaxed);)
  JPG_COUNT("pnr.route.astar_pops", telem_pops);
}

std::vector<RoutedNet> PathFinder::assemble(RouteStats* stats, int iterations,
                                            std::size_t spec_rounds,
                                            std::size_t spec_retries,
                                            std::size_t reroutes) const {
  std::vector<RoutedNet> routed(nets_.size());
  std::size_t nodes_used = 0, pips = 0;
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    routed[i].net = nets_[i].id;
    for (const RoutingGraph::Edge& e : result_[i].edges) {
      if (e.dest_local >= 0) {
        routed[i].pips.push_back(
            RoutedPip{TileCoord{e.r, e.c}, e.dest_local, e.sel});
      } else {
        const Side side =
            e.dest_local == RoutingGraph::kPadInLeft ? Side::Left : Side::Right;
        routed[i].iob_pips.push_back(IobRoute{IobSite{side, e.r, e.c}, e.sel});
      }
    }
    nodes_used += result_[i].nodes.size();
    pips += routed[i].pips.size() + routed[i].iob_pips.size();
  }
  if (stats != nullptr) {
    stats->iterations = iterations;
    stats->nodes_used = nodes_used;
    stats->total_pips = pips;
    stats->spec_rounds = spec_rounds;
    stats->spec_retries = spec_retries;
    stats->nets_rerouted = reroutes;
  }
  JPG_DEBUG("router: " << nets_.size() << " nets, " << pips << " pips, "
                       << iterations << " iterations, " << spec_rounds
                       << " rounds, " << spec_retries << " retries");
  return routed;
}

std::vector<RoutedNet> PathFinder::run(RouteStats* stats) {
  JPG_SPAN("pnr.route");
  const std::uint64_t telem_t0 = telemetry::now_ns();
  build_permissions();
  const std::size_t n = g_.num_nodes();
  occupancy_.assign(n, 0);
  history_.assign(n, 0.0);
  result_.assign(nets_.size(), {});

  if (opt_.reference_impl) return run_reference(stats);

  compute_bboxes();
  // Execution width: 1 routes in the caller's thread; 0/auto and N>1 lease
  // a shared pool. The result is identical either way (batch snapshots).
  ThreadPool* pool = nullptr;
  std::shared_ptr<ThreadPool> pool_lease;  // keeps the sized pool alive
  if (opt_.num_threads != 1) {
    pool_lease = ThreadPool::sized(
        opt_.num_threads <= 0 ? 0 : static_cast<std::size_t>(opt_.num_threads));
    if (pool_lease->size() > 1) pool = pool_lease.get();
  }
  ScratchPool scratch(n);

  pres_fac_ = opt_.pres_fac_first;
  const int max_spec_rounds = std::max(1, opt_.max_spec_rounds);
  std::vector<std::size_t> work, pending, retry;
  std::vector<std::size_t> overused_nodes;
  /// Nodes claimed by merges of the current iteration (stamped, reset from
  /// the claim list at iteration end so the cost stays O(claimed)).
  std::vector<std::uint8_t> claimed(n, 0);
  std::vector<std::size_t> claimed_nodes;
  std::size_t round_count = 0, retry_count = 0, reroutes = 0;
  int iter = 0;
  for (iter = 1; iter <= opt_.max_iterations; ++iter) {
    // Nets that are unrouted or ride an overused node get rerouted.
    work.clear();
    for (std::size_t i = 0; i < nets_.size(); ++i) {
      bool needs = result_[i].nodes.empty() && !nets_[i].sinks.empty();
      for (const std::size_t node : result_[i].nodes) {
        if (occupancy_[node] > 1) {
          needs = true;
          break;
        }
      }
      if (needs) work.push_back(i);
    }
    for (const std::size_t i : work) rip_up(i);
    reroutes += work.size();

    // Speculative rounds: round 1 routes the whole wave concurrently
    // against the frozen iteration-start snapshot; merge walks the wave in
    // net order, and a net that lands on a node an earlier-merged net of
    // this iteration claimed is discarded and rerouted next round against
    // the updated snapshot (which now prices those claims). Conflicts with
    // *surviving* routes from earlier iterations are not retried — a
    // retry's snapshot would be unchanged there, so the search would just
    // repeat; pres_fac/history negotiation resolves those, exactly as the
    // batched scheduler left them. Every step is a pure function of the
    // net order and the snapshots, so any thread count produces the same
    // bytes.
    overused_nodes.clear();
    claimed_nodes.clear();
    pending = work;
    for (int round = 1; !pending.empty(); ++round) {
      ++round_count;
      JPG_TELEM(JPG_HIST("pnr.route.round_width", pending.size());)
      // occupancy_/history_ are read-only until every search of the round
      // has finished.
      if (pool == nullptr || pending.size() == 1) {
        ScratchPool::Lease lease(scratch);
        for (const std::size_t i : pending) route_net(i, *lease.s);
      } else {
        pool->parallel_for(pending.size(), [&](std::size_t k) {
          ScratchPool::Lease lease(scratch);
          route_net(pending[k], *lease.s);
        });
      }
      // Deterministic merge barrier: claims land in net order. Rip-up
      // leaves every node at occupancy 0 or 1 (all riders of an overused
      // node are rerouted together), so a node is overused this iteration
      // iff some merge increment takes it to exactly 2 — record that
      // transition and the congestion check below stays O(overused).
      const bool accept_all = round >= max_spec_rounds;
      retry.clear();
      for (const std::size_t i : pending) {
        bool conflict = false;
        if (!accept_all) {
          for (const std::size_t node : result_[i].nodes) {
            if (claimed[node] != 0) {
              conflict = true;
              break;
            }
          }
        }
        if (conflict) {
          result_[i].nodes.clear();
          result_[i].edges.clear();
          retry.push_back(i);
          ++retry_count;
          continue;
        }
        for (const std::size_t node : result_[i].nodes) {
          if (claimed[node] == 0) {
            claimed[node] = 1;
            claimed_nodes.push_back(node);
          }
          if (++occupancy_[node] == 2) overused_nodes.push_back(node);
        }
      }
      pending.swap(retry);
    }
    for (const std::size_t node : claimed_nodes) claimed[node] = 0;

    // Check for congestion.
    JPG_HIST("pnr.route.overuse", overused_nodes.size());
    for (const std::size_t node : overused_nodes) {
      history_[node] +=
          opt_.hist_fac * static_cast<double>(occupancy_[node] - 1);
    }
    if (overused_nodes.empty()) break;
    pres_fac_ *= opt_.pres_fac_mult;
    if (iter == opt_.max_iterations) {
      throw DeviceError("router failed to resolve congestion after " +
                        std::to_string(iter) + " iterations");
    }
  }

  std::vector<RoutedNet> routed =
      assemble(stats, iter, round_count, retry_count, reroutes);
  if (stats != nullptr) {
    stats->telemetry.duration_ns = telemetry::now_ns() - telem_t0;
    stats->telemetry.set("iterations", static_cast<std::uint64_t>(iter));
    stats->telemetry.set("spec_rounds", round_count);
    stats->telemetry.set("spec_retries", retry_count);
    stats->telemetry.set("nets_rerouted", reroutes);
    JPG_TELEM(stats->telemetry.set(
        "astar_pops", astar_pops_.load(std::memory_order_relaxed));)
  }
  JPG_COUNT("pnr.route.runs", 1);
  JPG_COUNT("pnr.route.iterations", static_cast<std::uint64_t>(iter));
  JPG_COUNT("pnr.route.spec_retries", retry_count);
  JPG_COUNT("pnr.route.nets_rerouted", reroutes);
  return routed;
}

// --- Seed-algorithm reference (bench baseline) -------------------------------

double PathFinder::reference_base_cost(std::size_t node) const {
  const auto info = g_.device().fabric().node_info(node);
  switch (info.type) {
    case RoutingFabric::NodeInfo::Type::LongH:
    case RoutingFabric::NodeInfo::Type::LongV:
      return 3.0;
    default:
      return 1.0;
  }
}

double PathFinder::reference_heuristic(std::size_t node,
                                       std::size_t sink) const {
  const RoutingFabric& fab = g_.device().fabric();
  const auto a = fab.node_info(node);
  const auto b = fab.node_info(sink);
  if (a.type != RoutingFabric::NodeInfo::Type::TileWire ||
      b.type != RoutingFabric::NodeInfo::Type::TileWire) {
    return 0;
  }
  const double dist = std::abs(a.r - b.r) + std::abs(a.c - b.c);
  return dist / static_cast<double>(kHexSpan);
}

void PathFinder::reference_route_net(std::size_t net_idx, RouterScratch& s) {
  const NetToRoute& net = nets_[net_idx];
  NetRoute& out = result_[net_idx];

  std::vector<std::size_t> sinks = net.sinks;
  std::sort(sinks.begin(), sinks.end(), [&](std::size_t x, std::size_t y) {
    return reference_heuristic(net.source, x) >
           reference_heuristic(net.source, y);
  });

  std::vector<std::size_t> tree = {net.source};

  using QItem = std::pair<double, std::size_t>;
  for (const std::size_t sink : sinks) {
    if (std::find(tree.begin(), tree.end(), sink) != tree.end()) continue;
    ++s.cur_stamp;
    s.edge_store.clear();
    std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
    auto relax = [&](std::size_t node, double cost, std::int32_t via) {
      if (s.stamp[node] == s.cur_stamp && s.cost[node] <= cost) return;
      s.stamp[node] = s.cur_stamp;
      s.cost[node] = cost;
      s.prev_edge[node] = via;
      pq.emplace(cost + reference_heuristic(node, sink), node);
    };
    for (const std::size_t t : tree) relax(t, 0.0, -1);

    bool found = false;
    while (!pq.empty()) {
      const auto [est, node] = pq.top();
      pq.pop();
      if (s.stamp[node] != s.cur_stamp) continue;
      if (est > s.cost[node] + reference_heuristic(node, sink) + 1e-9) continue;
      if (node == sink) {
        found = true;
        break;
      }
      for (const RoutingGraph::Edge& e : g_.out_edges(node)) {
        const std::size_t to = e.to;
        if (!allowed_[to]) continue;
        if (e.dest_local >= 0 &&
            !tile_allowed_[static_cast<std::size_t>(e.r) * g_.device().cols() +
                           e.c]) {
          continue;
        }
        const double congestion =
            1.0 + pres_fac_ * static_cast<double>(occupancy_[to]);
        const double c =
            s.cost[node] + reference_base_cost(to) * congestion + history_[to];
        if (s.stamp[to] == s.cur_stamp && s.cost[to] <= c) continue;
        s.edge_store.emplace_back(static_cast<std::uint32_t>(node), e);
        relax(to, c, static_cast<std::int32_t>(s.edge_store.size() - 1));
      }
    }
    if (!found) {
      std::ostringstream os;
      os << "unroutable net (id " << net.id << "): no path to sink "
         << g_.device().fabric().node_name(sink);
      throw DeviceError(os.str());
    }
    std::size_t node = sink;
    while (s.prev_edge[node] >= 0) {
      const auto& [from, edge] =
          s.edge_store[static_cast<std::size_t>(s.prev_edge[node])];
      out.nodes.push_back(node);
      ++occupancy_[node];
      out.edges.push_back(edge);
      tree.push_back(node);
      node = from;
    }
  }
}

std::vector<RoutedNet> PathFinder::run_reference(RouteStats* stats) {
  const std::size_t n = g_.num_nodes();
  RouterScratch scratch;
  scratch.ensure(n);

  pres_fac_ = opt_.pres_fac_first;
  std::size_t reroutes = 0;
  int iter = 0;
  for (iter = 1; iter <= opt_.max_iterations; ++iter) {
    for (std::size_t i = 0; i < nets_.size(); ++i) {
      bool needs = result_[i].nodes.empty() && !nets_[i].sinks.empty();
      for (const std::size_t node : result_[i].nodes) {
        if (occupancy_[node] > 1) {
          needs = true;
          break;
        }
      }
      if (!needs) continue;
      rip_up(i);
      reference_route_net(i, scratch);
      ++reroutes;
    }
    bool overused = false;
    for (std::size_t node = 0; node < n; ++node) {
      if (occupancy_[node] > 1) {
        overused = true;
        history_[node] +=
            opt_.hist_fac * static_cast<double>(occupancy_[node] - 1);
      }
    }
    if (!overused) break;
    pres_fac_ *= opt_.pres_fac_mult;
    if (iter == opt_.max_iterations) {
      throw DeviceError("router failed to resolve congestion after " +
                        std::to_string(iter) + " iterations");
    }
  }

  return assemble(stats, iter, 0, 0, reroutes);
}

}  // namespace

std::vector<RoutedNet> route_nets(const RoutingGraph& graph,
                                  const std::vector<NetToRoute>& nets,
                                  const RouteConstraints& constraints,
                                  const RouterOptions& options,
                                  RouteStats* stats) {
  PathFinder pf(graph, nets, constraints, options);
  return pf.run(stats);
}

}  // namespace jpg
