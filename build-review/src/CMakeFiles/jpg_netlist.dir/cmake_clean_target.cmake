file(REMOVE_RECURSE
  "libjpg_netlist.a"
)
