# Empty dependencies file for jpg_scenarios.
# This may be replaced when dependencies are built.
