// Integration tests of the P&R flow: pack/place/route designs, program the
// configuration plane via CBits, decode it back with the extractor, and
// check cycle-exact equivalence against the golden netlist simulation.
#include <gtest/gtest.h>

#include "netlib/generators.h"
#include "pnr/flow.h"
#include "pnr/timing.h"
#include "sim/bitstream_sim.h"
#include "sim/netlist_sim.h"

namespace jpg {
namespace {

/// Maps a design's port names to pad numbers from its placement.
std::map<std::string, int> pad_map(const PlacedDesign& d) {
  std::map<std::string, int> m;
  for (std::size_t i = 0; i < d.iob_cells.size(); ++i) {
    m[d.netlist().cell(d.iob_cells[i]).port] = d.device().pad_number(d.iob_sites[i]);
  }
  return m;
}

/// Drives both simulators with the same stimulus and compares all outputs
/// for `cycles` cycles. `inputs` supplies per-cycle values by port name.
void expect_equivalent(
    const Netlist& golden_nl, const PlacedDesign& placed, BitstreamSim& hw,
    int cycles,
    const std::function<std::map<std::string, bool>(int)>& stimulus) {
  NetlistSim golden(golden_nl);
  const auto pads = pad_map(placed);
  for (int cyc = 0; cyc < cycles; ++cyc) {
    for (const auto& [port, value] : stimulus(cyc)) {
      golden.set_input(port, value);
      hw.set_pad(pads.at(port), value);
    }
    for (const std::string& port : golden_nl.output_ports()) {
      EXPECT_EQ(hw.get_pad(pads.at(port)), golden.get_output(port))
          << "port " << port << " cycle " << cyc;
    }
    golden.step();
    hw.step();
  }
}

struct FlowCase {
  const char* part;
  const char* generator;
  int param;
};

class FullFlow : public ::testing::TestWithParam<FlowCase> {};

TEST_P(FullFlow, ImplementExtractSimulate) {
  const FlowCase fc = GetParam();
  const Device& dev = Device::get(fc.part);
  Netlist nl("flow_test");
  for (const auto& g : netlib::registry()) {
    if (g.name == fc.generator) nl = g.make(fc.param);
  }
  ASSERT_GT(nl.num_cells(), 0u);

  FlowOptions opt;
  opt.seed = 42;
  const BaseFlowResult res = run_base_flow(dev, nl, {}, opt);
  ASSERT_TRUE(res.design != nullptr);
  EXPECT_GT(res.design->total_pips(), 0u);

  ConfigMemory mem(dev);
  CBits cb(mem);
  res.design->apply(cb);

  BitstreamSim hw(mem);
  // Structure: used logic elements match packed logic elements.
  std::size_t expected_les = 0;
  for (const PackedSlice& ps : res.design->slices) {
    if (!ps.le[0].empty()) ++expected_les;
    if (!ps.le[1].empty()) ++expected_les;
  }
  EXPECT_EQ(hw.circuit().used_les, expected_les);

  // Behaviour: random-but-reproducible stimulus on every input port.
  Rng rng(777);
  const auto in_ports = nl.input_ports();
  expect_equivalent(nl, *res.design, hw, 64, [&](int) {
    std::map<std::string, bool> st;
    for (const auto& p : in_ports) st[p] = rng.chance(0.5);
    return st;
  });
}

INSTANTIATE_TEST_SUITE_P(
    Designs, FullFlow,
    ::testing::Values(FlowCase{"XCV50", "counter", 8},
                      FlowCase{"XCV50", "lfsr", 8},
                      FlowCase{"XCV50", "adder", 6},
                      FlowCase{"XCV50", "parity", 8},
                      FlowCase{"XCV50", "alu", 4},
                      FlowCase{"XCV100", "counter", 16},
                      FlowCase{"XCV50", "shreg", 10},
                      FlowCase{"XCV50", "gray", 6}),
    [](const ::testing::TestParamInfo<FlowCase>& info) {
      return std::string(info.param.part) + "_" + info.param.generator + "_" +
             std::to_string(info.param.param);
    });

TEST(Packer, PairsLutsWithFfs) {
  const Device& dev = Device::get("XCV50");
  PlacedDesign d(dev, netlib::make_counter(8));
  const PackStats st = pack_design(d);
  EXPECT_EQ(st.ffs, 8u);
  EXPECT_GT(st.paired, 0u);
  EXPECT_LE(st.slices, (st.luts + st.ffs + 1) / 2 + 1);
  // Every LUT/FF cell is mapped.
  for (CellId id = 0; id < d.netlist().num_cells(); ++id) {
    const CellKind k = d.netlist().cell(id).kind;
    if (k == CellKind::Lut4 || k == CellKind::Dff) {
      EXPECT_TRUE(d.cell_place.count(id)) << d.netlist().cell(id).name;
    }
  }
}

TEST(Packer, FoldsConstants) {
  const Device& dev = Device::get("XCV50");
  Netlist nl("cf");
  const NetId one = nl.add_net("one");
  nl.add_const("vcc", true, one);
  const NetId a = nl.add_net("a");
  nl.add_ibuf("ib", "a", a);
  const NetId y = nl.add_net("y");
  // y = a AND 1 == a.
  nl.add_lut("and", netlib::lut_and2(), {a, one, kNullNet, kNullNet}, y);
  nl.add_obuf("ob", "y", y);
  PlacedDesign d(dev, std::move(nl));
  const PackStats st = pack_design(d);
  EXPECT_EQ(st.folded_const_inputs, 1u);
  const CellId lut = *d.netlist().find_cell("and");
  // Folded mask must behave as a buffer of A1.
  EXPECT_EQ(d.netlist().cell(lut).lut_init & 0x3, 0x2);
  EXPECT_EQ(d.netlist().cell(lut).in[1], kNullNet);
}

TEST(Packer, RejectsOversizedDesign) {
  const Device& dev = Device::get("XCV50");  // 768 slices
  Netlist nl("big");
  // 2000 independent FF chains -> ~1000 slices, too many.
  NetId prev = nl.add_net("n0");
  nl.add_ibuf("ib", "si", prev);
  for (int i = 0; i < 2000; ++i) {
    const NetId q = nl.add_net("q" + std::to_string(i));
    nl.add_dff("ff" + std::to_string(i), prev, q);
    prev = q;
  }
  nl.add_obuf("ob", "so", prev);
  PlacedDesign d(dev, std::move(nl));
  EXPECT_THROW(pack_design(d), DeviceError);
}

TEST(Placer, RespectsAreaGroups) {
  const Device& dev = Device::get("XCV50");
  Netlist top("grouped");
  const auto merged = top.merge_module(netlib::make_counter(8), "u1");
  // Tie outputs so DRC is clean.
  for (const auto& [port, net] : merged.outputs) {
    top.add_obuf("ob_" + port, port, net);
  }
  PlacedDesign d(dev, std::move(top));
  pack_design(d);
  PlacementConstraints cons;
  const Region reg{0, 4, dev.rows() - 1, 7};
  cons.area_groups["u1"] = reg;
  place_design(d, cons, {});
  for (std::size_t i = 0; i < d.slices.size(); ++i) {
    const SliceSite s = d.slice_sites[i];
    if (d.slices[i].partition == "u1") {
      EXPECT_TRUE(reg.contains({s.r, s.c})) << "slice " << i;
    } else {
      EXPECT_FALSE(reg.contains({s.r, s.c})) << "slice " << i;
    }
  }
}

TEST(Placer, RespectsLocConstraints) {
  const Device& dev = Device::get("XCV50");
  PlacedDesign d(dev, netlib::make_nrz_encoder());
  pack_design(d);
  PlacementConstraints cons;
  // The paper's example: u1/nrz at CLB R3C23 slice 0.
  cons.loc_slices["enc"] = SliceSite{2, 22, 0};
  cons.loc_pads["d"] = 3;
  place_design(d, cons, {});
  EXPECT_EQ(d.site_of(*d.netlist().find_cell("enc")), (SliceSite{2, 22, 0}));
  const CellId ib = *d.netlist().find_cell("ib_d");
  EXPECT_EQ(d.device().pad_number(*d.iob_site_of(ib)), 3);
}

TEST(Placer, NoTwoSlicesShareASite) {
  const Device& dev = Device::get("XCV50");
  PlacedDesign d(dev, netlib::make_lfsr(16));
  pack_design(d);
  place_design(d, {}, {});
  std::set<std::tuple<int, int, int>> sites;
  for (const SliceSite s : d.slice_sites) {
    EXPECT_TRUE(sites.insert({s.r, s.c, s.slice}).second);
  }
}

TEST(Placer, DeterministicForSeed) {
  const Device& dev = Device::get("XCV50");
  auto run = [&](std::uint64_t seed) {
    PlacedDesign d(dev, netlib::make_counter(10));
    pack_design(d);
    PlacerOptions opt;
    opt.seed = seed;
    place_design(d, {}, opt);
    return d.slice_sites;
  };
  EXPECT_EQ(run(5), run(5));
}

TEST(Router, ProducesLegalSingleDriverRouting) {
  const Device& dev = Device::get("XCV50");
  const BaseFlowResult res = run_base_flow(dev, netlib::make_counter(12), {});
  // No two nets may program the same mux (single-driver rule at the
  // config level).
  std::set<std::tuple<int, int, int>> muxes;  // (r, c, dest_local)
  for (const RoutedNet& rn : res.design->routes) {
    for (const RoutedPip& p : rn.pips) {
      EXPECT_TRUE(muxes.insert({p.tile.r, p.tile.c, p.dest_local}).second)
          << "mux " << local_wire_name(p.dest_local) << " at "
          << dev.tile_name(p.tile) << " driven twice";
    }
  }
}

TEST(Router, RestrictRegionKeepsPipsInside) {
  const Device& dev = Device::get("XCV50");
  // Build a base design with one partitioned module.
  Netlist top("regioned");
  const auto merged = top.merge_module(netlib::make_counter(6), "u1");
  std::vector<std::pair<std::string, NetId>> outs;
  for (const auto& [port, net] : merged.outputs) {
    top.add_obuf("ob_" + port, port, net);
    outs.emplace_back(port, net);
  }
  PartitionSpec spec;
  spec.name = "u1";
  spec.region = Region{0, 6, dev.rows() - 1, 9};
  spec.output_ports = outs;
  const BaseFlowResult res = run_base_flow(dev, top, {spec});

  // Interface bindings recorded for every port.
  const PartitionInterface& iface = res.interface_of("u1");
  EXPECT_EQ(iface.bindings.size(), outs.size());

  // Partition the pips: every pip inside the region must belong to a
  // module-side net; no static pip may appear in region tiles.
  const Netlist& nl = res.design->netlist();
  for (const RoutedNet& rn : res.design->routes) {
    if (rn.net == kNullNet) continue;
    const Net& n = nl.net(rn.net);
    const bool module_driven =
        n.driver != kNullCell && nl.cell(n.driver).partition == "u1";
    for (const RoutedPip& p : rn.pips) {
      if (!module_driven) {
        EXPECT_FALSE(spec.region.contains(p.tile))
            << "static net '" << n.name << "' pips inside the region at "
            << dev.tile_name(p.tile);
      }
    }
  }
}

TEST(Router, CrossRegionNetProgramsNoRegionTile) {
  // A static net forced across a full-height excluded region must ride a
  // long line without programming any mux inside the region — the long
  // driver's config bits live in the driving tile's column, so the tile
  // gate matters even though the long node itself is legal.
  const Device& dev = Device::get("XCV50");
  const Region region{0, 8, dev.rows() - 1, 15};
  const RoutingGraph& g = RoutingGraph::get(dev);
  const RoutingFabric& fab = dev.fabric();

  NetToRoute net;
  net.id = 0;
  // Source: a slice pin east of the region; sink: an IMUX west of it.
  net.source = fab.tile_wire_node(5, 20, pin_local(0, SlicePin::X));
  net.sinks = {fab.tile_wire_node(5, 2, imux_local(0, ImuxPin::F1))};
  RouteConstraints rc;
  rc.exclude_regions.push_back(region);
  const auto routed = route_nets(g, {net}, rc);
  ASSERT_EQ(routed.size(), 1u);
  EXPECT_GT(routed[0].pips.size(), 0u);
  for (const RoutedPip& p : routed[0].pips) {
    EXPECT_FALSE(region.contains(p.tile))
        << "pip at " << dev.tile_name(p.tile) << " programs a region tile";
  }
}

TEST(Timing, ReportsPlausibleCriticalPath) {
  const Device& dev = Device::get("XCV50");
  const BaseFlowResult adder = run_base_flow(dev, netlib::make_adder(8), {});
  const TimingReport t8 = estimate_timing(*adder.design);
  EXPECT_GT(t8.critical_path, 0.0);
  EXPECT_GE(t8.logic_levels, 7);  // 8-bit ripple carry chain
  const BaseFlowResult small = run_base_flow(dev, netlib::make_adder(2), {});
  const TimingReport t2 = estimate_timing(*small.design);
  EXPECT_LT(t2.critical_path, t8.critical_path);
}

}  // namespace
}  // namespace jpg
