// StreamSource: the scatter-gather view of a configuration stream.
//
// The download paths historically materialised whole streams in one owning
// buffer before the first word reached Xhwif::send_config; back-to-back swap
// latency was therefore bounded by copying, not by the configuration link.
// A StreamSource instead describes the stream as an ordered list of borrowed
// word segments — header packets, a cache-resident pbit payload, a CRC/tail
// epilogue — and a BurstCursor walks those segments in bounded bursts. Every
// burst is a subspan of one segment (bursts never cross a segment boundary),
// so the whole datapath moves zero bytes: the device sees the exact words
// the cache owns. This is the ICAP shape: bitstreams resident in memory,
// streamed to the port in bounded bursts.
//
// Header-only on purpose: the bitstream-layer fuzzer drives the segmented
// path differentially against the word-by-word loader without linking the
// hwif library.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "support/error.h"

namespace jpg {

/// Words per burst when the caller does not say otherwise. ~2 KiB of wire
/// traffic: large enough to amortise per-call overhead, small enough that
/// mid-stream state (FAR tracking, desync-on-error) is exercised at a
/// realistic granularity.
inline constexpr std::size_t kDefaultBurstWords = 512;

/// Knobs of the streaming download paths.
struct StreamOptions {
  /// Upper bound on words per send_config call. Bursts are *bounded*, not
  /// fixed: a burst never crosses a segment boundary, so segment tails are
  /// shorter than burst_words and stay zero-copy.
  std::size_t burst_words = kDefaultBurstWords;
  /// Pipeline tool-side mirror validation one burst ahead of the transfer
  /// (verify burst N+1 while burst N is on the wire). Validation still
  /// completes before any word of a burst is sent, so the two-state
  /// invariant of the verified downloader is unaffected.
  bool overlap_verify = true;
};

/// An ordered list of borrowed word segments forming one configuration
/// stream. Segments may be empty (a diff that contributed nothing); the
/// cursor skips them. The caller guarantees every segment outlives the
/// download — the pbit cache's pin/lease API exists exactly to provide that
/// guarantee for cache-resident payloads.
class StreamSource {
 public:
  StreamSource() = default;

  /// Appends one borrowed segment (may be empty).
  void add(std::span<const std::uint32_t> segment) {
    segments_.push_back(segment);
    total_words_ += segment.size();
  }

  /// Convenience: a single-segment source over one contiguous buffer.
  [[nodiscard]] static StreamSource of(std::span<const std::uint32_t> words) {
    StreamSource s;
    s.add(words);
    return s;
  }

  [[nodiscard]] const std::vector<std::span<const std::uint32_t>>& segments()
      const {
    return segments_;
  }
  [[nodiscard]] std::size_t total_words() const { return total_words_; }
  [[nodiscard]] bool empty() const { return total_words_ == 0; }

 private:
  std::vector<std::span<const std::uint32_t>> segments_;
  std::size_t total_words_ = 0;
};

/// Walks a StreamSource in bounded bursts. Each next() yields a non-empty
/// subspan of the current segment of at most `max_words` words; an empty
/// span means the source is exhausted. No word is ever copied or reordered:
/// concatenating the yielded bursts reproduces the concatenated segments
/// exactly.
class BurstCursor {
 public:
  explicit BurstCursor(const StreamSource& source) : source_(&source) {}

  [[nodiscard]] std::span<const std::uint32_t> next(std::size_t max_words) {
    JPG_REQUIRE(max_words > 0, "burst size must be positive");
    const auto& segs = source_->segments();
    // Skip exhausted and zero-length segments.
    while (segment_ < segs.size() && offset_ >= segs[segment_].size()) {
      ++segment_;
      offset_ = 0;
    }
    if (segment_ >= segs.size()) return {};
    const std::span<const std::uint32_t> seg = segs[segment_];
    const std::size_t n = std::min(max_words, seg.size() - offset_);
    const std::span<const std::uint32_t> burst = seg.subspan(offset_, n);
    offset_ += n;
    return burst;
  }

  [[nodiscard]] bool done() const {
    const auto& segs = source_->segments();
    std::size_t s = segment_;
    std::size_t o = offset_;
    while (s < segs.size() && o >= segs[s].size()) {
      ++s;
      o = 0;
    }
    return s >= segs.size();
  }

  void rewind() {
    segment_ = 0;
    offset_ = 0;
  }

 private:
  const StreamSource* source_;
  std::size_t segment_ = 0;
  std::size_t offset_ = 0;
};

}  // namespace jpg
