// Tests for the PARBIT and JBitsDiff baseline reimplementations, including
// the cross-tool agreement invariant: PARBIT (block mode) and JPG configure
// identical region contents from the same module update.
#include <gtest/gtest.h>

#include "baselines/jbitsdiff.h"
#include "baselines/parbit.h"
#include "bitstream/bitgen.h"
#include "bitstream/config_port.h"
#include "core/jpg.h"
#include "core/partial_gen.h"
#include "netlib/generators.h"
#include "pnr/flow.h"
#include "sim/bitstream_sim.h"

namespace jpg {
namespace {

TEST(ParbitOptions, FileRoundtrip) {
  ParbitOptions opts;
  opts.mode = ParbitOptions::Mode::Block;
  opts.source = Region{0, 6, 15, 9};
  opts.target_r0 = 0;
  opts.target_c0 = 12;
  const ParbitOptions back = ParbitOptions::parse(opts.to_text());
  EXPECT_EQ(back.mode, opts.mode);
  EXPECT_EQ(back.source, opts.source);
  EXPECT_EQ(back.target_c0, 12);
  EXPECT_TRUE(back.relocated());
}

TEST(ParbitOptions, ExplicitCornerTargetSurvivesDefaulting) {
  // "target R1C1" is indistinguishable from the all-zero default only by
  // relocated(): the default-corner rule must fire solely when the parsed
  // target is the source corner. An explicit move *to* the device corner
  // stays a relocation...
  const ParbitOptions to_corner =
      ParbitOptions::parse("mode block\nsource R3C7:R10C9\ntarget R1C1\n");
  EXPECT_EQ(to_corner.target_r0, 0);
  EXPECT_EQ(to_corner.target_c0, 0);
  EXPECT_TRUE(to_corner.relocated());
  // ...and survives a text round-trip as one.
  const ParbitOptions back = ParbitOptions::parse(to_corner.to_text());
  EXPECT_EQ(back.target_r0, 0);
  EXPECT_EQ(back.target_c0, 0);
  EXPECT_TRUE(back.relocated());

  // A target-less file whose source already sits at the corner defaults to
  // in-place (no relocation).
  const ParbitOptions in_place =
      ParbitOptions::parse("mode block\nsource R1C1:R8C3\n");
  EXPECT_EQ(in_place.target_r0, 0);
  EXPECT_EQ(in_place.target_c0, 0);
  EXPECT_FALSE(in_place.relocated());
}

TEST(ParbitOptions, RejectsMalformed) {
  EXPECT_THROW(ParbitOptions::parse("mode sideways\nsource R1C1:R2C2\n"),
               ParseError);
  EXPECT_THROW(ParbitOptions::parse("mode block\n"), JpgError);
  EXPECT_THROW(ParbitOptions::parse("source R0C1:R2C2\n"), ParseError);
  EXPECT_THROW(ParbitOptions::parse("bogus x\n"), ParseError);
}

class BaselineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = &Device::get("XCV50");
    region_ = Region{0, 6, dev_->rows() - 1, 9};

    // Base design: module u1 = 4-bit LFSR feeding static pads.
    Netlist top("base");
    const auto merged = top.merge_module(netlib::make_lfsr(4), "u1");
    PartitionSpec spec;
    spec.name = "u1";
    spec.region = region_;
    for (const auto& [port, net] : merged.outputs) {
      top.add_obuf("ob_" + port, port, net);
      spec.output_ports.emplace_back(port, net);
    }
    FlowOptions opt;
    opt.seed = 5;
    base_flow_ = std::make_unique<BaseFlowResult>(
        run_base_flow(*dev_, top, {spec}, opt));
    base_mem_ = std::make_unique<ConfigMemory>(*dev_);
    CBits cb(*base_mem_);
    base_flow_->design->apply(cb);
    base_bit_ = generate_full_bitstream(*base_mem_);

    // A replacement module (4-bit counter with the same ports q0..q3).
    FlowOptions mopt;
    mopt.seed = 6;
    variant_ = std::make_unique<ModuleFlowResult>(run_module_flow(
        *dev_, netlib::make_counter(4), base_flow_->interface_of("u1"), mopt));
    variant_mem_ = std::make_unique<ConfigMemory>(*dev_);
    CBits vcb(*variant_mem_);
    variant_->design->apply(vcb);
  }

  /// The updated plane JPG would produce (ground truth for both baselines).
  ConfigMemory updated_plane() const {
    const PartialBitstreamGenerator gen(*base_mem_);
    return gen.compose(*variant_mem_, region_);
  }

  const Device* dev_ = nullptr;
  Region region_;
  std::unique_ptr<BaseFlowResult> base_flow_;
  std::unique_ptr<ConfigMemory> base_mem_;
  Bitstream base_bit_;
  std::unique_ptr<ModuleFlowResult> variant_;
  std::unique_ptr<ConfigMemory> variant_mem_;
};

TEST_F(BaselineFixture, ParbitBlockModeAgreesWithJpg) {
  // PARBIT's input: a COMPLETE bitstream of the new design. Build it by
  // bitgen'ing the module-only plane (module compiled standalone).
  const Bitstream new_full = generate_full_bitstream(*variant_mem_);

  ParbitOptions opts;
  opts.mode = ParbitOptions::Mode::Block;
  opts.source = region_;
  opts.target_r0 = region_.r0;
  opts.target_c0 = region_.c0;
  const ParbitResult pr = parbit_transform(new_full, base_bit_, opts);
  EXPECT_EQ(pr.frames,
            static_cast<std::size_t>(region_.width()) * FrameMap::kClbFrames);

  // Load base then the PARBIT partial; must equal JPG's composition.
  ConfigMemory mem(*dev_);
  ConfigPort port(mem);
  port.load(base_bit_);
  port.load(pr.bitstream);
  EXPECT_EQ(mem, updated_plane());
}

TEST_F(BaselineFixture, ParbitColumnModeShipsWholeColumns) {
  const Bitstream new_full = generate_full_bitstream(*variant_mem_);
  ParbitOptions opts;
  opts.mode = ParbitOptions::Mode::Column;
  opts.source = region_;
  opts.target_r0 = region_.r0;
  opts.target_c0 = region_.c0;
  const ParbitResult pr = parbit_transform(new_full, base_bit_, opts);

  ConfigMemory mem(*dev_);
  ConfigPort port(mem);
  port.load(base_bit_);
  port.load(pr.bitstream);
  // Column mode replaces whole columns with the new design's content; for a
  // full-height region that is identical to the block merge.
  EXPECT_EQ(mem, updated_plane());
}

TEST_F(BaselineFixture, ParbitRelocatesColumns) {
  // Relocate the module two columns right (region 8..11) and verify the
  // region contents moved bit-exactly.
  const Bitstream new_full = generate_full_bitstream(*variant_mem_);
  ParbitOptions opts;
  opts.mode = ParbitOptions::Mode::Block;
  opts.source = region_;
  opts.target_r0 = region_.r0;
  opts.target_c0 = region_.c0 + 2;
  const ParbitResult pr = parbit_transform(new_full, base_bit_, opts);

  ConfigMemory mem(*dev_);
  ConfigPort port(mem);
  port.load(base_bit_);
  port.load(pr.bitstream);

  CBits moved(mem);
  CBits orig(*variant_mem_);
  for (int r = 0; r < dev_->rows(); ++r) {
    for (int c = region_.c0; c <= region_.c1; ++c) {
      for (int s = 0; s < 2; ++s) {
        EXPECT_EQ(moved.get_lut({r, c + 2, s}, LutSel::F),
                  orig.get_lut({r, c, s}, LutSel::F));
        EXPECT_EQ(moved.get_lut({r, c + 2, s}, LutSel::G),
                  orig.get_lut({r, c, s}, LutSel::G));
      }
      for (const MuxDef& m : dev_->fabric().tile_muxes()) {
        EXPECT_EQ(moved.get_mux({r, c + 2}, m.dest_local),
                  orig.get_mux({r, c}, m.dest_local));
      }
    }
  }
}

TEST_F(BaselineFixture, ParbitRejectsVerticalRelocationInColumnMode) {
  const Bitstream new_full = generate_full_bitstream(*variant_mem_);
  ParbitOptions opts;
  opts.mode = ParbitOptions::Mode::Column;
  opts.source = Region{2, 6, 10, 9};
  opts.target_r0 = 4;
  opts.target_c0 = 6;
  // The rejection is the same typed error the PbitRelocator's checker uses,
  // so callers can branch on the kind rather than parse a message.
  try {
    (void)parbit_transform(new_full, base_bit_, opts);
    FAIL() << "vertical column-mode relocation was accepted";
  } catch (const RelocError& e) {
    EXPECT_EQ(e.kind(), RelocError::Kind::VerticalColumnMode);
    EXPECT_NE(std::string(e.what()).find("column mode"), std::string::npos);
  }
}

TEST_F(BaselineFixture, JBitsDiffCoreReplayMatchesFrameDiff) {
  const ConfigMemory updated = updated_plane();
  const JBitsCore core = extract_core(*base_mem_, updated, "u1_counter");
  EXPECT_GT(core.ops.size(), 0u);

  ConfigMemory replayed = *base_mem_;
  CBits cb(replayed);
  const std::size_t calls = core.replay(cb);
  EXPECT_EQ(calls, core.ops.size());
  EXPECT_EQ(replayed, updated);
}

TEST_F(BaselineFixture, JBitsDiffWindowedCore) {
  const ConfigMemory updated = updated_plane();
  const JBitsCore windowed =
      extract_core(*base_mem_, updated, "u1_counter", region_);
  const JBitsCore full = extract_core(*base_mem_, updated, "u1_counter");
  // All differences live inside the region, so the windowed core is complete.
  EXPECT_EQ(windowed.ops.size(), full.ops.size());

  ConfigMemory replayed = *base_mem_;
  CBits cb(replayed);
  windowed.replay(cb);
  EXPECT_EQ(replayed, updated);
}

TEST_F(BaselineFixture, JBitsCoreTextRoundtrip) {
  const ConfigMemory updated = updated_plane();
  const JBitsCore core = extract_core(*base_mem_, updated, "u1_counter");
  const std::string text = core.to_text();
  const JBitsCore back = JBitsCore::parse(text, "core.txt");
  EXPECT_EQ(back.name, core.name);
  EXPECT_EQ(back.part, core.part);
  ASSERT_EQ(back.ops.size(), core.ops.size());

  ConfigMemory replayed = *base_mem_;
  CBits cb(replayed);
  back.replay(cb);
  EXPECT_EQ(replayed, updated);
}

TEST_F(BaselineFixture, JBitsCoreRejectsWrongDevice) {
  const ConfigMemory updated = updated_plane();
  const JBitsCore core = extract_core(*base_mem_, updated, "c");
  ConfigMemory other(Device::get("XCV100"));
  CBits cb(other);
  EXPECT_THROW(core.replay(cb), JpgError);
  EXPECT_THROW(JBitsCore::parse("set_lut CLB_R1C1.S0 F 0x1\n"), JpgError);
  EXPECT_THROW(JBitsCore::parse("core c XCV50\nset_lut bogus F 0x1\n"),
               ParseError);
}

TEST_F(BaselineFixture, UpdatedDeviceStillWorksThroughParbitPath) {
  const Bitstream new_full = generate_full_bitstream(*variant_mem_);
  ParbitOptions opts;
  opts.mode = ParbitOptions::Mode::Block;
  opts.source = region_;
  opts.target_r0 = region_.r0;
  opts.target_c0 = region_.c0;
  const ParbitResult pr = parbit_transform(new_full, base_bit_, opts);

  ConfigMemory mem(*dev_);
  ConfigPort port(mem);
  port.load(base_bit_);
  port.load(pr.bitstream);
  BitstreamSim hw(mem);
  // The counter module drives q0: it must toggle every cycle.
  std::map<std::string, int> pads;
  for (std::size_t i = 0; i < base_flow_->design->iob_cells.size(); ++i) {
    pads[base_flow_->design->netlist().cell(base_flow_->design->iob_cells[i]).port] =
        dev_->pad_number(base_flow_->design->iob_sites[i]);
  }
  bool prev = hw.get_pad(pads.at("q0"));
  for (int cyc = 0; cyc < 8; ++cyc) {
    hw.step();
    const bool cur = hw.get_pad(pads.at("q0"));
    EXPECT_NE(cur, prev) << "cycle " << cyc;
    prev = cur;
  }
}

}  // namespace
}  // namespace jpg
