// ConfigPort: the device-side configuration state machine.
//
// Consumes a bitstream word by word — exactly what the SelectMAP/JTAG logic
// of the real part does — and commits frames into a ConfigMemory. Having a
// real consumer (rather than a privileged "apply" path) is what lets the test
// suite prove that JPG's partial bitstreams are *loadable*: correct sync,
// packet framing, FAR addressing, pad-frame discipline and CRC.
//
// Modelling notes (documented deviations from the real part):
//  * Each FDRI write packet must carry a whole number of frames and ends
//    with one pad frame that flushes the internal pipeline and is discarded;
//    the pipeline does not persist across packets.
//  * Readback is exposed as a direct method rather than through FDRO read
//    packets; it returns exact frame contents with no leading pad frame.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bitstream/config_memory.h"
#include "bitstream/crc16.h"
#include "bitstream/packet.h"
#include "support/telemetry/telemetry.h"

namespace jpg {

class ConfigPort {
 public:
  explicit ConfigPort(ConfigMemory& mem);

  /// Full power-on reset: desync, clear all state (not the memory).
  void reset();

  /// SelectMAP-style ABORT: drops the packet processor to the desynced
  /// error state — mid-packet decode state, buffered FDRI data, the running
  /// CRC and all addressing context (FAR, current frame, last register) are
  /// discarded; committed frames and startup status survive. This is the
  /// recovery handle a downloader uses before retrying after a corrupted or
  /// truncated stream left the port mid-payload; the same drop happens
  /// automatically when load_word throws.
  void abort();

  /// Clocks one word into the port. Throws BitstreamError on protocol
  /// violations (bad header, CRC mismatch, wrong IDCODE, invalid FAR, ...).
  /// After an error the port drops to the desynced error state (like the
  /// real part after a CRC failure) until the next sync word arrives;
  /// frames committed before the error stay committed.
  void load_word(std::uint32_t word);

  void load(std::span<const std::uint32_t> words) {
    JPG_COUNT("port.words_loaded", words.size());
    for (const std::uint32_t w : words) load_word(w);
  }
  void load(const Bitstream& bs) { load(bs.words); }

  // --- State ------------------------------------------------------------------
  [[nodiscard]] bool synced() const { return synced_; }
  /// True once a START command has been processed (device configured).
  [[nodiscard]] bool started() const { return started_; }

  // --- Statistics (benches, dynamic-safety tests) -----------------------------
  [[nodiscard]] std::uint64_t words_consumed() const { return words_consumed_; }
  [[nodiscard]] std::size_t frames_committed() const { return frames_committed_; }
  /// Linear indices of every frame committed since the last reset_stats(),
  /// in commit order (duplicates possible).
  [[nodiscard]] const std::vector<std::size_t>& committed_frames() const {
    return committed_frame_log_;
  }
  void reset_stats();

  // --- Readback ---------------------------------------------------------------
  /// Reads `count` frames starting at linear frame index `first`.
  [[nodiscard]] std::vector<std::uint32_t> readback_frames(
      std::size_t first, std::size_t count) const;

  /// Same, into a caller-owned buffer (resized to count * frame_words).
  /// The allocation-free readback path: a verifier that reads back frames
  /// in a loop reuses one scratch vector instead of allocating per call.
  void readback_frames_into(std::size_t first, std::size_t count,
                            std::vector<std::uint32_t>& out) const;

 private:
  void load_word_impl(std::uint32_t word);
  void begin_fdri_payload();
  void handle_reg_write(ConfigReg reg, std::uint32_t value);
  void handle_fdri_payload_complete();
  void handle_cmd(Command cmd);

  ConfigMemory* mem_;

  // Protocol state.
  bool synced_ = false;
  bool started_ = false;
  Command mode_ = Command::NONE;  ///< WCFG / RCFG / NONE
  Crc16 crc_;

  // Packet decode state.
  enum class Expect { Header, Type2Header, Payload };
  Expect expect_ = Expect::Header;
  ConfigReg cur_reg_ = ConfigReg::CRC;
  std::uint32_t remaining_payload_ = 0;
  bool fdri_active_ = false;
  /// Reserved once at construction for a full-plane payload (every frame
  /// plus the pad frame) and cleared — never shrunk — between packets, so
  /// the download hot path performs no per-stream allocation after warm-up
  /// (the cfg.buffer_reallocs counter proves it stays at 0).
  std::vector<std::uint32_t> fdri_buffer_;

  // Registers.
  std::uint32_t far_ = 0;
  std::size_t cur_frame_ = 0;
  bool far_loaded_ = false;
  std::uint32_t flr_ = 0;
  std::uint32_t ctl_ = 0;
  std::uint32_t mask_ = 0;
  std::uint32_t cor_ = 0;

  // Stats.
  std::uint64_t words_consumed_ = 0;
  std::size_t frames_committed_ = 0;
  std::vector<std::size_t> committed_frame_log_;
};

}  // namespace jpg
