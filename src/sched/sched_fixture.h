// SchedFixture: the uniform-socket accelerator board the scheduler runs on.
//
// The paper's runtime story needs a base design with interchangeable slots:
// every reconfigurable region exposes the *same* one-bit-in / one-bit-out
// interface ("socket"), so any kernel variant fits any slot and a pbit
// generated for one slot can be relocated to any other (the interfaces bind
// identically, which is what makes containment-relaxed relocation sound —
// the oracle family re-proves it by trace equality per placement).
//
// Kernels come from src/netlib; socket_wrap() rewrites a single-input
// single-output generator netlist to the socket port names and derives
// *implementation variants* by inserting inverter pairs on the input path:
// function-preserving (a double negation is transparent in the zero-delay
// LUT sim) but structure-changing, so each impl places differently and
// produces a distinct pbit — a pool of genuinely different bitstreams that
// must all behave identically, exactly the paper's pool of pre-synthesised
// module implementations.
//
// Building a fixture runs one base flow plus kernels x impls x slots module
// flows (~tens of ms on XCV50); shared() memoises one instance per device
// for test/bench/CLI reuse.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bitstream/config_memory.h"
#include "device/device.h"
#include "device/region.h"
#include "netlist/netlist.h"

namespace jpg::sched {

/// Rewrites a kernel netlist with exactly one Ibuf and one Obuf to the
/// socket interface (ports "in"/"out") and inserts `impl` inverter *pairs*
/// between the input pad and the kernel's input net.
[[nodiscard]] Netlist socket_wrap(const Netlist& kernel, int impl,
                                  const std::string& name);

struct SchedFixtureOptions {
  std::size_t num_slots = 3;
  std::size_t impls_per_kernel = 2;
  std::uint64_t flow_seed = 11;
};

class SchedFixture {
 public:
  SchedFixture(const std::string& device_name, SchedFixtureOptions opt = {});

  /// One memoised fixture per (device, default options); immutable after
  /// construction, safe to share across threads.
  [[nodiscard]] static const SchedFixture& shared(
      const std::string& device_name);

  [[nodiscard]] const Device& device() const { return *device_; }
  [[nodiscard]] const ConfigMemory& base() const { return *base_; }
  [[nodiscard]] const std::vector<Region>& slots() const { return slots_; }
  /// Slot index of `region`, or -1 when it is not a slot region.
  [[nodiscard]] int slot_of(const Region& region) const;

  /// Socket kernel names, stable order ("nrzi", "scrambler", "fir", "accum").
  [[nodiscard]] const std::vector<std::string>& kernels() const {
    return kernel_names_;
  }
  [[nodiscard]] std::size_t impls_per_kernel() const {
    return opt_.impls_per_kernel;
  }

  /// Module plane of (kernel, impl) flowed for slot `slot`.
  [[nodiscard]] const ConfigMemory& plane(const std::string& kernel, int impl,
                                          std::size_t slot) const;

  /// Registry label for (kernel, impl) — what the service's resident
  /// registry and the relocation donor search key on ("fir#1").
  [[nodiscard]] static std::string variant_label(const std::string& kernel,
                                                 int impl);

  [[nodiscard]] int in_pad(std::size_t slot) const;
  [[nodiscard]] int out_pad(std::size_t slot) const;

 private:
  const Device* device_;
  SchedFixtureOptions opt_;
  std::unique_ptr<ConfigMemory> base_;
  std::vector<Region> slots_;
  std::vector<int> in_pads_;
  std::vector<int> out_pads_;
  std::vector<std::string> kernel_names_;
  /// kernel -> [impl][slot] module planes.
  std::map<std::string, std::vector<std::vector<ConfigMemory>>> planes_;
};

}  // namespace jpg::sched
