# Empty compiler generated dependencies file for jpg_core_test.
# This may be replaced when dependencies are built.
