// CL-SIZE — §2.1 claim: "the time involved in downloading the partial
// bitstream file and reconfiguring the device will be shorter as the size of
// the partial bitstream files will be smaller compared to complete
// bitstream files."
//
// Sweeps the region width across device sizes and reports partial size,
// full size, their ratio, and the configuration-port word count (the
// download-time proxy: the port consumes one word per clock).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "bitstream/bitgen.h"
#include "bitstream/config_port.h"
#include "bench_util.h"
#include "core/partial_gen.h"

namespace jpg {
namespace {

/// Partial bitstream for a region of `width` columns (module content is
/// irrelevant to the size: every region-column frame ships).
PartialGenResult make_partial(const Device& dev, int width) {
  ConfigMemory base(dev);
  ConfigMemory module_cfg(dev);
  const Region region{0, 2, dev.rows() - 1, 2 + width - 1};
  const PartialBitstreamGenerator gen(base);
  PartialGenOptions opts;
  opts.diff_only = false;
  return gen.generate(module_cfg, region, opts);
}

void BM_PartialGeneration(benchmark::State& state) {
  const Device& dev = Device::get("XCV50");
  const int width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_partial(dev, width).bitstream.size_bytes());
  }
}
BENCHMARK(BM_PartialGeneration)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

void BM_PartialDownload(benchmark::State& state) {
  const Device& dev = Device::get("XCV50");
  const int width = static_cast<int>(state.range(0));
  const PartialGenResult pr = make_partial(dev, width);
  for (auto _ : state) {
    ConfigMemory mem(dev);
    ConfigPort port(mem);
    port.load(pr.bitstream);
    benchmark::DoNotOptimize(port.words_consumed());
  }
  state.counters["config_words"] =
      static_cast<double>(pr.bitstream.words.size());
}
BENCHMARK(BM_PartialDownload)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

void print_size_series() {
  using benchutil::fmt;
  for (const char* part : {"XCV50", "XCV100", "XCV300"}) {
    const Device& dev = Device::get(part);
    ConfigMemory empty(dev);
    const Bitstream full = generate_full_bitstream(empty);
    benchutil::Table t({"region cols", "frames", "partial bytes", "full bytes",
                        "ratio", "download words"});
    for (const int width : {1, 2, 4, 8, dev.cols() / 3}) {
      if (width + 2 > dev.cols()) continue;
      const PartialGenResult pr = make_partial(dev, width);
      t.row({std::to_string(width), std::to_string(pr.frames.size()),
             std::to_string(pr.bitstream.size_bytes()),
             std::to_string(full.size_bytes()),
             fmt(static_cast<double>(pr.bitstream.size_bytes()) /
                     static_cast<double>(full.size_bytes()),
                 3),
             std::to_string(pr.bitstream.words.size())});
    }
    t.print(std::string("CL-SIZE: partial vs complete bitstream on ") + part);
  }
  std::printf("paper shape: size and download cost scale ~linearly with the "
              "region width;\n"
              "a third-of-the-device region costs about a third of a full "
              "bitstream.\n");
}

}  // namespace
}  // namespace jpg

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  jpg::print_size_series();
  return 0;
}
