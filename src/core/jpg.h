// Jpg: the tool facade, mirroring the usage flow of paper §3.2.1:
//
//   "The complete bitstream file from the base design is used to initialize
//    the environment variables in the JPG tool. ... The .ucf and .xdl files
//    obtained from the previous steps are passed in as input. ... The tool
//    offers two options. One option is to obtain the partial bitstream of
//    the new design, without downloading ... Option two allows the designer
//    to write the partial bitstream onto the base design. ... If there is a
//    FPGA board connected ... the newly generated partial bitstream is
//    written onto the FPGA."
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/floorplan_view.h"
#include "core/partial_gen.h"
#include "core/xdl_to_cbits.h"
#include "hwif/verified_downloader.h"
#include "hwif/xhwif.h"

namespace jpg {

class Jpg {
 public:
  /// Initialises the environment from the base design's complete bitstream
  /// (device identified by IDCODE; frames loaded through a ConfigPort).
  explicit Jpg(const Bitstream& base_bitstream);

  [[nodiscard]] const Device& device() const { return *device_; }
  [[nodiscard]] const ConfigMemory& base_config() const { return *base_; }

  struct PartialResult {
    Bitstream partial;                ///< option 1 output: the .pbit
    std::vector<std::size_t> frames;  ///< frames the stream writes
    std::size_t far_blocks = 0;
    std::size_t cbits_calls = 0;      ///< work done by the XDL binder
    Region region;
    std::string floorplan;  ///< Figure 3: the target area, for verification
  };

  /// Generates a partial bitstream from a module's XDL + UCF (option 1).
  [[nodiscard]] PartialResult generate_partial(
      const XdlDesign& module_xdl, const UcfData& ucf,
      const PartialGenOptions& opts = {});

  /// Same, from file contents as the real tool consumes them.
  [[nodiscard]] PartialResult generate_partial_from_text(
      std::string_view xdl_text, std::string_view ucf_text,
      const PartialGenOptions& opts = {});

  /// Option 2: writes the update onto the base design, overwriting the
  /// tool's copy of the base configuration ("care should therefore be taken
  /// before modifying the original bitstream"). If a board is connected the
  /// partial bitstream is downloaded as well.
  void write_onto_base(const PartialResult& update);

  /// The (possibly updated) base design as a complete bitstream.
  [[nodiscard]] Bitstream full_bitstream() const;

  // --- Board attachment (XHWIF) ------------------------------------------------
  void connect(Xhwif* board) { board_ = board; }
  [[nodiscard]] bool connected() const { return board_ != nullptr; }
  void download(const Bitstream& bs);

  /// Fire-and-forget streaming download: pushes the scatter-gather source
  /// to the board in bounded bursts straight from the caller's segments
  /// (a resident pbit lease streams the cache's own words — zero copies).
  void download(const StreamSource& source, const StreamOptions& opts = {});

  /// Fault-tolerant variant of download + verify_via_readback: sends the
  /// update through a VerifiedDownloader seeded with the tool's base plane
  /// (JPG's model: the board holds the base design; partial streams are
  /// state-independent, so this also covers a board running another module
  /// variant in the same region). The update is CRC-checked before the
  /// first word is sent, readback-verified frame by frame, repaired under
  /// the policy's retry budget, and rolled back to the base plane if it
  /// will not converge. The tool's base configuration is not modified.
  [[nodiscard]] DownloadReport download_verified(
      const PartialResult& update, const DownloadPolicy& policy = {});

  /// Streaming variant of download_verified: same mirror seeding and
  /// two-state outcome, but the stream goes out in bursts with the
  /// tool-side replay pipelined one burst ahead of the wire (overlapped on
  /// a pool thread under opts.overlap_verify).
  [[nodiscard]] DownloadReport download_verified_stream(
      const StreamSource& source, const DownloadPolicy& policy = {},
      const StreamOptions& opts = {});

  /// Reads the update's frames back from the connected board and compares
  /// them against what the partial bitstream was supposed to install.
  /// Returns the number of mismatching frames (0 = verified).
  [[nodiscard]] std::size_t verify_via_readback(const PartialResult& update);

  /// The tool's persistent partial generator; its pbit cache makes cycling
  /// a module pool regenerate nothing after the first pass (cache keys hash
  /// the base content, so write_onto_base invalidates naturally).
  [[nodiscard]] const PartialBitstreamGenerator& generator() const {
    return *gen_;
  }

 private:
  const Device* device_;
  std::unique_ptr<ConfigMemory> base_;
  std::unique_ptr<PartialBitstreamGenerator> gen_;
  Xhwif* board_ = nullptr;
};

}  // namespace jpg
