file(REMOVE_RECURSE
  "libjpg_cbits.a"
)
