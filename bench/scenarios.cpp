#include "scenarios.h"

#include "netlib/generators.h"
#include "support/error.h"

namespace jpg::scenarios {

Netlist slot_a_counter() { return netlib::make_counter(4, "a_counter"); }
Netlist slot_a_lfsr() { return netlib::make_lfsr(4, {3, 2}, "a_lfsr"); }
Netlist slot_a_johnson() { return netlib::make_johnson(4, "a_johnson"); }

Netlist slot_b_pass() {
  Netlist nl("b_pass");
  const NetId d = nl.add_net("d");
  const NetId q = nl.add_net("q");
  nl.add_ibuf("ib_d", "d", d);
  nl.add_dff("ff", d, q);
  nl.add_obuf("ob_y", "y", q);
  return nl;
}

Netlist slot_b_nrz() {
  Netlist nl("b_nrz");
  const NetId d = nl.add_net("d");
  const NetId y = nl.add_net("y");
  const NetId nxt = nl.add_net("nxt");
  nl.add_ibuf("ib_d", "d", d);
  nl.add_lut("enc", netlib::lut_xor2(), {d, y, kNullNet, kNullNet}, nxt);
  nl.add_dff("nrz_reg", nxt, y);
  nl.add_obuf("ob_y", "y", y);
  return nl;
}

Netlist slot_b_invreg() {
  Netlist nl("b_invreg");
  const NetId d = nl.add_net("d");
  const NetId nd = nl.add_net("nd");
  const NetId q = nl.add_net("q");
  nl.add_ibuf("ib_d", "d", d);
  nl.add_lut("inv", netlib::lut_not1(), {d, kNullNet, kNullNet, kNullNet}, nd);
  nl.add_dff("ff", nd, q);
  nl.add_obuf("ob_y", "y", q);
  return nl;
}

Netlist slot_c_matcher(int which) {
  static const std::vector<std::vector<bool>> patterns = {
      {1, 0, 1, 1, 0},
      {0, 1, 1, 1, 0},
      {1, 1, 0, 0, 1},
      {0, 0, 1, 0, 1},
  };
  JPG_REQUIRE(which >= 0 && which < static_cast<int>(patterns.size()),
              "matcher variant out of range");
  return netlib::make_matcher(patterns[static_cast<std::size_t>(which)],
                              "c_match" + std::to_string(which));
}

std::vector<SlotDef> fig1_slots(const Device& device) {
  JPG_REQUIRE(device.cols() >= 12, "device too small for the fig. 1 scenario");
  std::vector<SlotDef> slots;
  SlotDef c;
  c.partition = "u_match";
  c.region = Region{0, 4, device.rows() - 1, 7};
  c.variants.push_back({"match0", slot_c_matcher(0)});
  c.variants.push_back({"match1", slot_c_matcher(1)});
  c.variants.push_back({"match2", slot_c_matcher(2)});
  slots.push_back(std::move(c));
  return slots;
}

std::vector<SlotDef> fig4_slots(const Device& device) {
  JPG_REQUIRE(device.cols() >= 22, "device too small for the fig. 4 scenario");
  std::vector<SlotDef> slots;
  {
    SlotDef a;
    a.partition = "u_gen";
    a.region = Region{0, 2, device.rows() - 1, 5};
    a.variants.push_back({"counter", slot_a_counter()});
    a.variants.push_back({"lfsr", slot_a_lfsr()});
    a.variants.push_back({"johnson", slot_a_johnson()});
    slots.push_back(std::move(a));
  }
  {
    SlotDef b;
    b.partition = "u_enc";
    b.region = Region{0, 9, device.rows() - 1, 12};
    b.variants.push_back({"pass", slot_b_pass()});
    b.variants.push_back({"nrz", slot_b_nrz()});
    b.variants.push_back({"invreg", slot_b_invreg()});
    slots.push_back(std::move(b));
  }
  {
    SlotDef c;
    c.partition = "u_match";
    c.region = Region{0, 16, device.rows() - 1, 19};
    for (int i = 0; i < 4; ++i) {
      c.variants.push_back({"match" + std::to_string(i), slot_c_matcher(i)});
    }
    slots.push_back(std::move(c));
  }
  return slots;
}

ScenarioBase build_base(const Device& device,
                        const std::vector<SlotDef>& slots) {
  ScenarioBase sb;
  Netlist& top = sb.top;

  // Static heartbeat: proves the static design keeps operating across
  // partial reconfigurations.
  {
    const Netlist hb = netlib::make_counter(4, "hb");
    std::vector<NetId> map(hb.num_nets());
    for (std::size_t i = 0; i < hb.num_nets(); ++i) {
      map[i] = top.add_net("hb/" + hb.net(static_cast<NetId>(i)).name);
    }
    auto mn = [&](NetId id) { return id == kNullNet ? kNullNet : map[id]; };
    for (const Cell& c : hb.cells()) {
      switch (c.kind) {
        case CellKind::Lut4:
          top.add_lut("hb/" + c.name, c.lut_init,
                      {mn(c.in[0]), mn(c.in[1]), mn(c.in[2]), mn(c.in[3])},
                      mn(c.out));
          break;
        case CellKind::Dff:
          top.add_dff("hb/" + c.name, mn(c.in[0]), mn(c.out), c.ff_init);
          break;
        case CellKind::Obuf:
          top.add_obuf("hb/" + c.name, "hb_" + c.port, mn(c.in[0]));
          break;
        default:
          break;
      }
    }
  }

  for (const SlotDef& slot : slots) {
    JPG_REQUIRE(!slot.variants.empty(), "slot without variants");
    const auto merged =
        top.merge_module(slot.variants[0].netlist, slot.partition);
    PartitionSpec spec;
    spec.name = slot.partition;
    spec.region = slot.region;
    for (const auto& [port, net] : merged.inputs) {
      top.add_ibuf(slot.partition + "_ib_" + port, slot.partition + "_" + port,
                   net);
      spec.input_ports.emplace_back(port, net);
    }
    for (const auto& [port, net] : merged.outputs) {
      top.add_obuf(slot.partition + "_ob_" + port, slot.partition + "_" + port,
                   net);
      spec.output_ports.emplace_back(port, net);
    }
    sb.specs.push_back(std::move(spec));
  }
  return sb;
}

const VariantDef& variant(const SlotDef& slot, const std::string& name) {
  for (const VariantDef& v : slot.variants) {
    if (v.name == name) return v;
  }
  throw JpgError("slot " + slot.partition + " has no variant '" + name + "'");
}

}  // namespace jpg::scenarios
