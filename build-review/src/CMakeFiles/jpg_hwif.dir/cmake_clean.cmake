file(REMOVE_RECURSE
  "CMakeFiles/jpg_hwif.dir/hwif/burst_engine.cpp.o"
  "CMakeFiles/jpg_hwif.dir/hwif/burst_engine.cpp.o.d"
  "CMakeFiles/jpg_hwif.dir/hwif/faulty_board.cpp.o"
  "CMakeFiles/jpg_hwif.dir/hwif/faulty_board.cpp.o.d"
  "CMakeFiles/jpg_hwif.dir/hwif/sim_board.cpp.o"
  "CMakeFiles/jpg_hwif.dir/hwif/sim_board.cpp.o.d"
  "CMakeFiles/jpg_hwif.dir/hwif/verified_downloader.cpp.o"
  "CMakeFiles/jpg_hwif.dir/hwif/verified_downloader.cpp.o.d"
  "CMakeFiles/jpg_hwif.dir/hwif/xhwif.cpp.o"
  "CMakeFiles/jpg_hwif.dir/hwif/xhwif.cpp.o.d"
  "libjpg_hwif.a"
  "libjpg_hwif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpg_hwif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
