#include "support/error.h"

#include <cstdlib>
#include <sstream>

namespace jpg {

namespace {
std::string format_parse_error(const std::string& file, int line,
                               const std::string& what) {
  std::ostringstream os;
  os << file << ":" << line << ": " << what;
  return os.str();
}
}  // namespace

ParseError::ParseError(const std::string& file, int line,
                       const std::string& what)
    : JpgError(format_parse_error(file, line, what)), file_(file), line_(line) {}

std::string_view reloc_error_kind_name(RelocError::Kind k) {
  switch (k) {
    case RelocError::Kind::ShapeMismatch: return "shape-mismatch";
    case RelocError::Kind::OutOfBounds: return "out-of-bounds";
    case RelocError::Kind::CoverageMismatch: return "coverage-mismatch";
    case RelocError::Kind::FootprintEscape: return "footprint-escape";
    case RelocError::Kind::VerticalColumnMode: return "vertical-column-mode";
  }
  return "?";
}

RelocError::RelocError(Kind kind, const std::string& what)
    : JpgError("relocation rejected [" +
               std::string(reloc_error_kind_name(kind)) + "]: " + what),
      kind_(kind) {}

namespace detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::fprintf(stderr, "jpg-cpp internal assertion failed: %s at %s:%d%s%s\n",
               expr, file, line, msg.empty() ? "" : " -- ", msg.c_str());
  std::abort();
}

}  // namespace detail
}  // namespace jpg
