// Tests for the XDL and UCF front-ends, including the central roundtrip
// property: implementing a design, writing XDL, re-parsing it, and applying
// both to configuration memory must produce identical frames.
#include <gtest/gtest.h>

#include "netlib/generators.h"
#include "pnr/flow.h"
#include "ucf/ucf_parser.h"
#include "xdl/lut_equation.h"
#include "xdl/xdl_parser.h"
#include "xdl/xdl_writer.h"

namespace jpg {
namespace {

TEST(LutEquation, ParsesPaperExample) {
  // The paper's sample cfg: D=(A1@A4).
  const std::uint16_t m = parse_lut_equation("(A1@A4)");
  for (unsigned idx = 0; idx < 16; ++idx) {
    const bool a1 = (idx & 1) != 0;
    const bool a4 = (idx & 8) != 0;
    EXPECT_EQ((m >> idx) & 1u, static_cast<unsigned>(a1 != a4)) << idx;
  }
}

TEST(LutEquation, OperatorsAndPrecedence) {
  EXPECT_EQ(parse_lut_equation("A1"), 0xAAAA);
  EXPECT_EQ(parse_lut_equation("~A1"), 0x5555);
  EXPECT_EQ(parse_lut_equation("A1*A2"), 0xAAAA & 0xCCCC);
  EXPECT_EQ(parse_lut_equation("A1+A2"), 0xAAAA | 0xCCCC);
  EXPECT_EQ(parse_lut_equation("A1@A2"), 0xAAAA ^ 0xCCCC);
  // ~ binds tighter than *, which binds tighter than @, then +.
  EXPECT_EQ(parse_lut_equation("~A1*A2"), 0x5555 & 0xCCCC);
  EXPECT_EQ(parse_lut_equation("A1+A2*A3"), 0xAAAA | (0xCCCC & 0xF0F0));
  EXPECT_EQ(parse_lut_equation("A1@A2+A3"), (0xAAAA ^ 0xCCCC) | 0xF0F0);
  EXPECT_EQ(parse_lut_equation("0"), 0x0000);
  EXPECT_EQ(parse_lut_equation("1"), 0xFFFF);
  EXPECT_EQ(parse_lut_equation("0xBEEF"), 0xBEEF);
  EXPECT_EQ(parse_lut_equation(" ( A1 + A2 ) * A3 "),
            (0xAAAA | 0xCCCC) & 0xF0F0);
}

TEST(LutEquation, RejectsGarbage) {
  EXPECT_THROW(parse_lut_equation("A5"), JpgError);
  EXPECT_THROW(parse_lut_equation("A1+"), JpgError);
  EXPECT_THROW(parse_lut_equation("(A1"), JpgError);
  EXPECT_THROW(parse_lut_equation(""), JpgError);
  EXPECT_THROW(parse_lut_equation("A1 A2"), JpgError);
  EXPECT_THROW(parse_lut_equation("0x10000"), JpgError);
}

TEST(LutEquation, InitRoundtripExhaustive) {
  // Every 4-input function must survive write -> parse exactly.
  for (std::uint32_t init = 0; init <= 0xFFFF; ++init) {
    const auto m = static_cast<std::uint16_t>(init);
    ASSERT_EQ(parse_lut_equation(lut_equation_from_init(m)), m) << init;
  }
}

TEST(LutEquation, WriterMinimisesTerms) {
  // The Quine-McCluskey writer should find the obvious minimal forms.
  EXPECT_EQ(lut_equation_from_init(0xAAAA), "A1");
  EXPECT_EQ(lut_equation_from_init(0x5555), "~A1");
  EXPECT_EQ(lut_equation_from_init(0xAAAA & 0xCCCC), "A1*A2");
  const std::string x = lut_equation_from_init(0xAAAA ^ 0xCCCC);  // XOR
  // XOR has no smaller SOP than two products.
  EXPECT_EQ(std::count(x.begin(), x.end(), '+'), 1);
  // A function with a large cube: f = A3 (independent of others).
  EXPECT_EQ(lut_equation_from_init(0xF0F0), "A3");
}

TEST(XdlParser, ParsesHandWrittenDesign) {
  const std::string text = R"(
# sample, shaped after the paper's fig. 3.2.2
design "demo" XCV50 v3.1 ;
inst "u1/nrz" "SLICE" , placed R3C23 CLB_R3C23.S0 ,
  cfg "CKINV::0 SYNC_ATTR::ASYNC F:u1/enc:#LUT:D=(A1@A2) FXMUX::OFF
       FFX:u1/nrz_reg:#FF DXMUX::0 INITX::LOW" ;
inst "ob" "IOB" , placed P5 IOB_L3K0 , cfg "IOB::OUTPUT NAME::nrz" ;
net "u1/nrz_q" , outpin "u1/nrz" XQ , inpin "ob" O ,
  pip R3C23 S0_XQ -> OUT1 , pip R3C23 OUT1 -> W0 ,
  pip R3C22 EIN0 -> W0 , iobpip IOB_L3K0 W0 ;
net "GCLK" , pip R3C23 GCLK -> S0_CLK ;
)";
  const XdlDesign xdl = parse_xdl(text, "demo.xdl");
  EXPECT_EQ(xdl.name, "demo");
  EXPECT_EQ(xdl.part, "XCV50");
  ASSERT_EQ(xdl.instances.size(), 2u);
  EXPECT_EQ(xdl.instances[0].name, "u1/nrz");
  EXPECT_EQ(xdl.instances[0].type, "SLICE");
  ASSERT_EQ(xdl.nets.size(), 2u);
  EXPECT_EQ(xdl.nets[0].pips.size(), 3u);
  EXPECT_EQ(xdl.nets[0].iobpips.size(), 1u);

  const auto design = placed_design_from_xdl(xdl);
  EXPECT_EQ(design->slices.size(), 1u);
  EXPECT_EQ(design->slice_sites[0], (SliceSite{2, 22, 0}));
  EXPECT_EQ(design->clock_pips.size(), 1u);
  EXPECT_EQ(design->netlist().find_cell("u1/nrz_reg").has_value(), true);
}

TEST(XdlParser, RejectsMalformedInput) {
  EXPECT_THROW(parse_xdl("nonsense"), ParseError);
  EXPECT_THROW(parse_xdl("design \"x\" XCV50 v1 ; inst \"a\" ;"), ParseError);
  EXPECT_THROW(parse_xdl("design \"x\" XCV50 v1 ; net \"n\" , pip R1C1 A ;"),
               ParseError);
  // Unknown part.
  EXPECT_THROW(placed_design_from_xdl(parse_xdl("design \"x\" XCV7 v1 ;")),
               DeviceError);
  // Unsupported cfg values are rejected, not silently dropped.
  EXPECT_THROW(placed_design_from_xdl(parse_xdl(
                   R"(design "x" XCV50 v1 ;
                      inst "s" "SLICE" , placed R1C1 CLB_R1C1.S0 ,
                        cfg "CKINV::1" ;)")),
               JpgError);
  // PIP that does not exist in the fabric.
  EXPECT_THROW(placed_design_from_xdl(parse_xdl(
                   R"(design "x" XCV50 v1 ;
                      net "n" , pip R1C1 S0_X -> E0 ;)")),
               JpgError);
}

class XdlRoundtrip : public ::testing::TestWithParam<const char*> {};

TEST_P(XdlRoundtrip, WriteParseApplyIdentical) {
  const Device& dev = Device::get("XCV50");
  Netlist nl("rt");
  for (const auto& g : netlib::registry()) {
    if (g.name == std::string(GetParam())) nl = g.make(6);
  }
  ASSERT_GT(nl.num_cells(), 0u);
  const BaseFlowResult res = run_base_flow(dev, nl, {});

  ConfigMemory direct(dev);
  CBits cb_direct(direct);
  res.design->apply(cb_direct);

  const std::string text = write_xdl(*res.design);
  const XdlDesign parsed = parse_xdl(text, "rt.xdl");
  const auto rebuilt = placed_design_from_xdl(parsed);

  ConfigMemory via_xdl(dev);
  CBits cb_xdl(via_xdl);
  rebuilt->apply(cb_xdl);

  EXPECT_EQ(direct, via_xdl)
      << "XDL roundtrip changed the configuration plane";
}

INSTANTIATE_TEST_SUITE_P(Designs, XdlRoundtrip,
                         ::testing::Values("counter", "lfsr", "adder",
                                           "parity", "alu"));

TEST(XdlRoundtrip, ModuleDesignWithPorts) {
  const Device& dev = Device::get("XCV50");
  PartitionInterface iface;
  iface.partition = "u1";
  iface.region = Region{0, 6, dev.rows() - 1, 9};
  iface.bindings = {{"d", true, 2, 0}, {"nrz", false, 3, 1}};
  const ModuleFlowResult mod =
      run_module_flow(dev, netlib::make_nrz_encoder(), iface);

  ConfigMemory direct(dev);
  CBits cbd(direct);
  mod.design->apply(cbd);

  const std::string text = write_xdl(*mod.design);
  const auto rebuilt = placed_design_from_xdl(parse_xdl(text));
  EXPECT_EQ(rebuilt->ports.size(), 2u);

  ConfigMemory via(dev);
  CBits cbv(via);
  rebuilt->apply(cbv);
  EXPECT_EQ(direct, via);
}

TEST(Ucf, ParsesAllConstraintKinds) {
  const Device& dev = Device::get("XCV50");
  const std::string text = R"(
# floorplan
INST "u1/*" AREA_GROUP = "AG_u1" ;
AREA_GROUP "AG_u1" RANGE = CLB_R1C7:CLB_R16C12 ;
INST "u1/nrz" LOC = CLB_R3C23.S0 ;
PORT "d" LOC = P12 ;
)";
  const UcfData ucf = parse_ucf(text, dev, "t.ucf");
  ASSERT_EQ(ucf.inst_area_groups.size(), 1u);
  EXPECT_EQ(ucf.inst_area_groups[0].first, "u1/*");
  const Region reg = ucf.area_group_ranges.at("AG_u1");
  EXPECT_EQ(reg, (Region{0, 6, 15, 11}));
  EXPECT_EQ(ucf.inst_locs.at("u1/nrz"), (SliceSite{2, 22, 0}));
  EXPECT_EQ(ucf.port_locs.at("d"), 12);
}

TEST(Ucf, WriterRoundtrip) {
  const Device& dev = Device::get("XCV50");
  UcfData ucf;
  ucf.inst_area_groups.emplace_back("u1/*", "AG_u1");
  ucf.area_group_ranges["AG_u1"] = Region{0, 6, 15, 11};
  ucf.inst_locs["enc"] = SliceSite{2, 22, 1};
  ucf.port_locs["d"] = 7;
  const std::string text = write_ucf(ucf, dev);
  const UcfData back = parse_ucf(text, dev, "w.ucf");
  EXPECT_EQ(back.inst_area_groups, ucf.inst_area_groups);
  EXPECT_EQ(back.area_group_ranges.at("AG_u1"), (Region{0, 6, 15, 11}));
  EXPECT_EQ(back.inst_locs.at("enc"), (SliceSite{2, 22, 1}));
  EXPECT_EQ(back.port_locs.at("d"), 7);
}

TEST(Ucf, RejectsMalformedInput) {
  const Device& dev = Device::get("XCV50");
  EXPECT_THROW(parse_ucf("INST \"a\" LOC = CLB_R99C1.S0 ;", dev), ParseError);
  EXPECT_THROW(parse_ucf("INST \"a\" LOC = CLB_R1C1.S0", dev), ParseError);
  EXPECT_THROW(parse_ucf("FROB \"a\" ;", dev), ParseError);
  EXPECT_THROW(parse_ucf("PORT \"d\" LOC = P9999 ;", dev), ParseError);
  EXPECT_THROW(parse_ucf("AREA_GROUP \"g\" RANGE = R1C1:R2C2 ;", dev),
               ParseError);
  // Group referenced without a range.
  EXPECT_THROW(parse_ucf("INST \"u/*\" AREA_GROUP = \"g\" ;", dev), JpgError);
}

TEST(Ucf, PartitionRegionResolution) {
  const Device& dev = Device::get("XCV50");
  Netlist top("t");
  const auto merged = top.merge_module(netlib::make_counter(4), "u1");
  for (const auto& [port, net] : merged.outputs) {
    top.add_obuf("ob_" + port, port, net);
  }
  const UcfData ucf = parse_ucf(
      "INST \"u1/*\" AREA_GROUP = \"AG\" ;\n"
      "AREA_GROUP \"AG\" RANGE = CLB_R1C7:CLB_R16C10 ;\n",
      dev);
  const auto regions = ucf_partition_regions(ucf, top);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions.at("u1"), (Region{0, 6, 15, 9}));

  // Pattern matching a static cell is rejected.
  const UcfData bad = parse_ucf(
      "INST \"ob_*\" AREA_GROUP = \"AG\" ;\n"
      "AREA_GROUP \"AG\" RANGE = CLB_R1C7:CLB_R16C10 ;\n",
      dev);
  EXPECT_THROW(ucf_partition_regions(bad, top), JpgError);
}

}  // namespace
}  // namespace jpg
