// NetlistSim: cycle-accurate functional simulation of a logical netlist.
//
// This is the *golden* reference: the same netlist the flow implements is
// simulated directly, and the end-to-end tests demand that the circuit
// decoded back out of configuration memory (sim/bitstream_sim.h) behaves
// identically cycle for cycle.
//
// Model: one global clock. eval() propagates combinational logic;
// step() = eval, sample every FF's D, commit, eval again.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.h"

namespace jpg {

class NetlistSim {
 public:
  /// Levelises the combinational graph; throws JpgError on cycles or DRC
  /// violations that make simulation meaningless.
  explicit NetlistSim(const Netlist& nl);

  [[nodiscard]] const Netlist& netlist() const { return *nl_; }

  /// Resets every FF to its init value and clears inputs to 0.
  void reset();

  void set_input(std::string_view port, bool v);
  [[nodiscard]] bool get_output(std::string_view port);

  /// Drives ports `prefix`0..`prefix`<width-1> from the bits of `value`.
  void set_input_bus(const std::string& prefix, std::uint64_t value, int width);
  /// Reads ports `prefix`0.. as a bus (missing bits read 0).
  [[nodiscard]] std::uint64_t get_output_bus(const std::string& prefix,
                                             int width);

  /// Propagates combinational logic (idempotent until inputs/FFs change).
  void eval();

  /// One clock cycle.
  void step();
  void step_n(int n) {
    for (int i = 0; i < n; ++i) step();
  }

  // --- FF state transfer (partial-reconfiguration support) --------------------
  [[nodiscard]] bool ff_state(CellId ff) const;
  void set_ff_state(CellId ff, bool v);

  /// Current value of a net (post-eval).
  [[nodiscard]] bool net_value(NetId id);

 private:
  void mark_dirty() { clean_ = false; }

  const Netlist* nl_;
  std::vector<CellId> lut_order_;  ///< topological order of LUTs
  std::vector<std::uint8_t> net_val_;
  std::vector<std::uint8_t> ff_val_;  ///< indexed by CellId (sparse-safe)
  std::unordered_map<std::string, NetId> in_port_net_;
  std::unordered_map<std::string, NetId> out_port_net_;
  std::unordered_map<std::string, std::uint8_t> in_val_;
  std::vector<CellId> ffs_;
  bool clean_ = false;
};

}  // namespace jpg
