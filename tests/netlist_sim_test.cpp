// Tests for the golden netlist simulator: functional correctness of each
// netlib generator plus the simulator's own mechanics.
#include <gtest/gtest.h>

#include "netlib/generators.h"
#include "sim/netlist_sim.h"

namespace jpg {
namespace {

TEST(NetlistSim, TogglerToggles) {
  const Netlist nl = netlib::make_toggler();
  NetlistSim sim(nl);
  EXPECT_FALSE(sim.get_output("t"));
  sim.step();
  EXPECT_TRUE(sim.get_output("t"));
  sim.step();
  EXPECT_FALSE(sim.get_output("t"));
}

TEST(NetlistSim, CounterCounts) {
  const Netlist nl = netlib::make_counter(8);
  NetlistSim sim(nl);
  for (int cyc = 0; cyc <= 300; ++cyc) {
    EXPECT_EQ(sim.get_output_bus("q", 8), static_cast<std::uint64_t>(cyc & 0xFF))
        << "cycle " << cyc;
    sim.step();
  }
}

TEST(NetlistSim, GrayCodeTracksBinary) {
  const Netlist nl = netlib::make_gray_counter(6);
  NetlistSim sim(nl);
  for (int cyc = 0; cyc < 100; ++cyc) {
    const std::uint64_t q = sim.get_output_bus("q", 6);
    const std::uint64_t g = sim.get_output_bus("g", 6);
    EXPECT_EQ(g, q ^ (q >> 1)) << "cycle " << cyc;
    sim.step();
  }
}

TEST(NetlistSim, AdderAddsExhaustively) {
  const Netlist nl = netlib::make_adder(4);
  NetlistSim sim(nl);
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      sim.set_input_bus("a", a, 4);
      sim.set_input_bus("b", b, 4);
      const std::uint64_t s = sim.get_output_bus("s", 4);
      const bool cout = sim.get_output("cout");
      EXPECT_EQ(s | (static_cast<std::uint64_t>(cout) << 4), a + b);
    }
  }
}

TEST(NetlistSim, ComparatorComparesExhaustively) {
  const Netlist nl = netlib::make_comparator(5);
  NetlistSim sim(nl);
  for (std::uint64_t a = 0; a < 32; a += 3) {
    for (std::uint64_t b = 0; b < 32; ++b) {
      sim.set_input_bus("a", a, 5);
      sim.set_input_bus("b", b, 5);
      EXPECT_EQ(sim.get_output("eq"), a == b);
    }
  }
}

TEST(NetlistSim, ParityMatchesPopcount) {
  const Netlist nl = netlib::make_parity(9);
  NetlistSim sim(nl);
  for (std::uint64_t x = 0; x < 512; x += 7) {
    sim.set_input_bus("x", x, 9);
    EXPECT_EQ(sim.get_output("p"), (__builtin_popcountll(x) & 1) != 0);
  }
}

TEST(NetlistSim, MuxTreeSelects) {
  const Netlist nl = netlib::make_mux_tree(3);
  NetlistSim sim(nl);
  const std::uint64_t data = 0b10110100;
  sim.set_input_bus("d", data, 8);
  for (std::uint64_t s = 0; s < 8; ++s) {
    sim.set_input_bus("s", s, 3);
    EXPECT_EQ(sim.get_output("y"), ((data >> s) & 1) != 0) << "sel " << s;
  }
}

TEST(NetlistSim, AluLiteOps) {
  const Netlist nl = netlib::make_alu_lite(6);
  NetlistSim sim(nl);
  const std::uint64_t mask = 0x3F;
  for (std::uint64_t a = 0; a < 64; a += 5) {
    for (std::uint64_t b = 0; b < 64; b += 7) {
      sim.set_input_bus("a", a, 6);
      sim.set_input_bus("b", b, 6);
      const std::uint64_t expect[4] = {(a + b) & mask, a & b, a | b, a ^ b};
      for (std::uint64_t op = 0; op < 4; ++op) {
        sim.set_input("op0", (op & 1) != 0);
        sim.set_input("op1", (op & 2) != 0);
        EXPECT_EQ(sim.get_output_bus("y", 6), expect[op])
            << "a=" << a << " b=" << b << " op=" << op;
      }
    }
  }
}

TEST(NetlistSim, ShiftRegisterDelaysInput) {
  const Netlist nl = netlib::make_shift_register(5);
  NetlistSim sim(nl);
  const std::vector<bool> stream = {1, 1, 0, 1, 0, 0, 1, 0, 1, 1, 0, 1};
  std::vector<bool> seen_q4;
  for (const bool bit : stream) {
    sim.set_input("si", bit);
    sim.step();
    seen_q4.push_back(sim.get_output("q4"));
  }
  // After step i, q4 holds the bit shifted in at step i-4.
  for (std::size_t i = 4; i < stream.size(); ++i) {
    EXPECT_EQ(seen_q4[i], stream[i - 4]) << i;
  }
}

TEST(NetlistSim, NrzEncoderTogglesOnOnes) {
  const Netlist nl = netlib::make_nrz_encoder();
  NetlistSim sim(nl);
  bool expect = false;
  const std::vector<bool> data = {1, 0, 1, 1, 0, 0, 0, 1, 1, 1, 0};
  for (const bool d : data) {
    sim.set_input("d", d);
    sim.step();
    if (d) expect = !expect;
    EXPECT_EQ(sim.get_output("nrz"), expect);
  }
}

TEST(NetlistSim, MatcherFiresOnPattern) {
  const std::vector<bool> pattern = {1, 0, 1, 1};
  const Netlist nl = netlib::make_matcher(pattern);
  NetlistSim sim(nl);
  // q0 holds the newest bit, so the register window matches pattern[j]
  // against the bit shifted in j cycles ago. The match FF registers the hit
  // one cycle after the window lines up.
  const std::vector<bool> stream = {0, 1, 1, 0, 1, 0, 0, 1, 1, 0, 1, 0, 1, 1};
  std::vector<bool> window;  // window[0] = newest
  bool expected_match = false;
  int fired = 0;
  for (const bool bit : stream) {
    sim.set_input("si", bit);
    sim.step();
    // The registered output now reflects the *previous* window state.
    EXPECT_EQ(sim.get_output("match"), expected_match);
    if (expected_match) ++fired;
    window.insert(window.begin(), bit);
    if (window.size() > pattern.size()) window.pop_back();
    expected_match = window == pattern;
  }
  EXPECT_GE(fired, 1);  // the stream above contains the pattern
}

TEST(NetlistSim, JohnsonCounterWalksItsRing) {
  const Netlist nl = netlib::make_johnson(4);
  NetlistSim sim(nl);
  // A 4-bit Johnson counter cycles through 8 states: 0000, 0001, 0011,
  // 0111, 1111, 1110, 1100, 1000 (LSB-first shift with inverted feedback).
  const std::uint64_t expected[] = {0b0000, 0b0001, 0b0011, 0b0111,
                                    0b1111, 0b1110, 0b1100, 0b1000};
  for (int cyc = 0; cyc < 24; ++cyc) {
    EXPECT_EQ(sim.get_output_bus("q", 4), expected[cyc % 8]) << cyc;
    sim.step();
  }
}

TEST(NetlistSim, LfsrNeverAllZeroAndDeterministic) {
  const Netlist nl = netlib::make_lfsr(8);
  NetlistSim a(nl), b(nl);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.get_output_bus("q", 8), b.get_output_bus("q", 8));
    EXPECT_NE(a.get_output_bus("q", 8), 0u) << "cycle " << i;
    a.step();
    b.step();
  }
}

TEST(NetlistSim, ResetRestoresInitState) {
  const Netlist nl = netlib::make_counter(6);
  NetlistSim sim(nl);
  sim.step_n(13);
  EXPECT_EQ(sim.get_output_bus("q", 6), 13u);
  sim.reset();
  EXPECT_EQ(sim.get_output_bus("q", 6), 0u);
}

TEST(NetlistSim, FfStateAccessors) {
  const Netlist nl = netlib::make_toggler();
  NetlistSim sim(nl);
  const CellId ff = *nl.find_cell("ff");
  EXPECT_FALSE(sim.ff_state(ff));
  sim.set_ff_state(ff, true);
  EXPECT_TRUE(sim.get_output("t"));
  EXPECT_THROW(sim.ff_state(*nl.find_cell("inv")), JpgError);
}

TEST(NetlistSim, UnknownPortsThrow) {
  const Netlist nl = netlib::make_toggler();
  NetlistSim sim(nl);
  EXPECT_THROW(sim.set_input("nope", true), JpgError);
  EXPECT_THROW(sim.get_output("nope"), JpgError);
}

TEST(NetlistSim, RejectsCyclicDesign) {
  Netlist nl("cyc");
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  nl.add_lut("l1", netlib::lut_buf1(), {b, kNullNet, kNullNet, kNullNet}, a);
  nl.add_lut("l2", netlib::lut_buf1(), {a, kNullNet, kNullNet, kNullNet}, b);
  EXPECT_THROW(NetlistSim{nl}, JpgError);
}

}  // namespace
}  // namespace jpg
