// Malformed-bitstream fuzz harness for the configuration decoders.
//
// Replays seeded mutations of valid configuration streams through both
// stream consumers — ConfigPort (the device-side state machine) and
// BitstreamReader (the offline packet parser) — and checks the hardening
// contract: every rejection is a clean BitstreamError (no crash, no abort,
// no foreign exception type), a port that throws is desynced, and after any
// mutated stream the port is fully recoverable by an ABORT + a valid
// stream. The engine is deterministic from its seed; the same (seed,
// iterations) pair replays the identical campaign, which is how fuzz-found
// regressions become unit tests.
//
// Both the `fuzzcfg` CLI command and the fuzz test suite drive this one
// engine, so CI and interactive runs exercise the same code.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "bitstream/packet.h"
#include "device/device.h"

namespace jpg {

struct FuzzOptions {
  int iterations = 1000;
  std::uint64_t seed = 1;
  /// Mutations applied per iteration: uniform in [1, max_mutations].
  int max_mutations = 4;
  /// Every N iterations, reload the full base stream and require the whole
  /// plane to come back byte-identical (0 disables the periodic check).
  int full_reload_every = 100;
};

/// The mutation operators, applied to the 32-bit word stream.
enum class MutationKind : int {
  BitFlip,        ///< flip one bit of one word
  MultiFlip,      ///< flip 2..8 bits across the stream
  WordRandom,     ///< replace one word with random garbage
  HeaderGarbage,  ///< replace one word with a crafted packet header
  Truncate,       ///< cut the stream at a random word
  DropWord,       ///< remove one word
  DupWord,        ///< duplicate one word
  InsertWord,     ///< insert one random word
  Splice,         ///< insert a run copied from another corpus stream
};
inline constexpr int kNumMutationKinds = 9;

[[nodiscard]] std::string_view mutation_kind_name(MutationKind k);

struct FuzzReport {
  int iterations = 0;
  int port_rejections = 0;  ///< ConfigPort threw BitstreamError
  int port_accepts = 0;     ///< mutated stream loaded without protest
  int reader_rejections = 0;
  int reader_accepts = 0;
  /// Port still claimed sync after throwing — contract violation.
  int desync_violations = 0;
  /// ABORT + valid stream failed to restore the port/plane — contract
  /// violation.
  int recovery_failures = 0;
  /// The scatter-gather burst path diverged from the word-by-word load on
  /// the identical word sequence (throw/accept, sync/started state, or
  /// final plane) — contract violation: chunking must be invisible.
  int stream_equiv_failures = 0;
  std::array<int, kNumMutationKinds> mutation_counts{};

  /// True when every contract held. (Accept/reject counts are
  /// informational: many mutations are semantically harmless.)
  [[nodiscard]] bool clean() const {
    return desync_violations == 0 && recovery_failures == 0 &&
           stream_equiv_failures == 0;
  }
  [[nodiscard]] std::string summary() const;
};

/// Runs the campaign against `dev`. `full_base` must be a valid complete
/// bitstream for `dev` (it seeds the plane, serves as mutation corpus, and
/// is the periodic full-recovery stream); `extra_corpus` adds more valid
/// streams (typically partials) to mutate. Throws only on harness bugs —
/// decoder misbehaviour is reported, not thrown.
[[nodiscard]] FuzzReport fuzz_config_streams(
    const Device& dev, const Bitstream& full_base,
    std::span<const Bitstream> extra_corpus, const FuzzOptions& opts = {});

}  // namespace jpg
