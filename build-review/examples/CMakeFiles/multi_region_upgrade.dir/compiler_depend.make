# Empty compiler generated dependencies file for multi_region_upgrade.
# This may be replaced when dependencies are built.
