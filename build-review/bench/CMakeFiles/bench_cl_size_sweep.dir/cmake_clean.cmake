file(REMOVE_RECURSE
  "CMakeFiles/bench_cl_size_sweep.dir/bench_cl_size_sweep.cpp.o"
  "CMakeFiles/bench_cl_size_sweep.dir/bench_cl_size_sweep.cpp.o.d"
  "bench_cl_size_sweep"
  "bench_cl_size_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cl_size_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
