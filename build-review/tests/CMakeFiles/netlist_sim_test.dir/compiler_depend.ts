# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for netlist_sim_test.
