# Empty dependencies file for jpg_cbits.
# This may be replaced when dependencies are built.
