
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bitstream/bitgen.cpp" "src/CMakeFiles/jpg_bitstream.dir/bitstream/bitgen.cpp.o" "gcc" "src/CMakeFiles/jpg_bitstream.dir/bitstream/bitgen.cpp.o.d"
  "/root/repo/src/bitstream/bitstream_reader.cpp" "src/CMakeFiles/jpg_bitstream.dir/bitstream/bitstream_reader.cpp.o" "gcc" "src/CMakeFiles/jpg_bitstream.dir/bitstream/bitstream_reader.cpp.o.d"
  "/root/repo/src/bitstream/bitstream_writer.cpp" "src/CMakeFiles/jpg_bitstream.dir/bitstream/bitstream_writer.cpp.o" "gcc" "src/CMakeFiles/jpg_bitstream.dir/bitstream/bitstream_writer.cpp.o.d"
  "/root/repo/src/bitstream/config_memory.cpp" "src/CMakeFiles/jpg_bitstream.dir/bitstream/config_memory.cpp.o" "gcc" "src/CMakeFiles/jpg_bitstream.dir/bitstream/config_memory.cpp.o.d"
  "/root/repo/src/bitstream/config_port.cpp" "src/CMakeFiles/jpg_bitstream.dir/bitstream/config_port.cpp.o" "gcc" "src/CMakeFiles/jpg_bitstream.dir/bitstream/config_port.cpp.o.d"
  "/root/repo/src/bitstream/crc16.cpp" "src/CMakeFiles/jpg_bitstream.dir/bitstream/crc16.cpp.o" "gcc" "src/CMakeFiles/jpg_bitstream.dir/bitstream/crc16.cpp.o.d"
  "/root/repo/src/bitstream/frame_overlay.cpp" "src/CMakeFiles/jpg_bitstream.dir/bitstream/frame_overlay.cpp.o" "gcc" "src/CMakeFiles/jpg_bitstream.dir/bitstream/frame_overlay.cpp.o.d"
  "/root/repo/src/bitstream/packet.cpp" "src/CMakeFiles/jpg_bitstream.dir/bitstream/packet.cpp.o" "gcc" "src/CMakeFiles/jpg_bitstream.dir/bitstream/packet.cpp.o.d"
  "/root/repo/src/bitstream/stream_fuzzer.cpp" "src/CMakeFiles/jpg_bitstream.dir/bitstream/stream_fuzzer.cpp.o" "gcc" "src/CMakeFiles/jpg_bitstream.dir/bitstream/stream_fuzzer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/jpg_device.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/jpg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
