// Error handling primitives for jpg-cpp.
//
// The library reports unrecoverable misuse and malformed-input conditions by
// throwing JpgError (or a subclass). Internal invariants are guarded with
// JPG_ASSERT, which is compiled in all build types: a bitstream generator
// that silently emits wrong frames is worse than one that aborts.
#pragma once

#include <cstdio>
#include <stdexcept>
#include <string>
#include <string_view>

namespace jpg {

/// Base class for all errors raised by the jpg-cpp library.
class JpgError : public std::runtime_error {
 public:
  explicit JpgError(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed textual input (XDL, UCF, options files, project files).
class ParseError : public JpgError {
 public:
  ParseError(const std::string& file, int line, const std::string& what);

  [[nodiscard]] const std::string& file() const noexcept { return file_; }
  [[nodiscard]] int line() const noexcept { return line_; }

 private:
  std::string file_;
  int line_ = 0;
};

/// Malformed or inconsistent configuration bitstream (bad sync, bad CRC,
/// out-of-range FAR, truncated packet, ...).
class BitstreamError : public JpgError {
 public:
  explicit BitstreamError(const std::string& what) : JpgError(what) {}
};

/// A request that is structurally valid but impossible on the target device
/// (site out of range, unroutable net, region that does not fit, ...).
class DeviceError : public JpgError {
 public:
  explicit DeviceError(const std::string& what) : JpgError(what) {}
};

/// A bitstream relocation that cannot be performed soundly. Raised by the
/// PbitRelocator's compatibility checker and by the PARBIT baseline's column
/// mode, so every relocation path rejects with the same typed error. The
/// kind() distinguishes geometric misfits from routing-footprint escapes —
/// callers that want to *force* a mechanically valid but functionally
/// escaping relocation key off FootprintEscape specifically.
class RelocError : public JpgError {
 public:
  enum class Kind {
    ShapeMismatch,       ///< source/target regions disagree in shape
    OutOfBounds,         ///< target region does not fit the device
    CoverageMismatch,    ///< pbit writes frames outside the source region
    FootprintEscape,     ///< routing crosses the region boundary
    VerticalColumnMode,  ///< PARBIT column mode cannot shift rows
  };

  RelocError(Kind kind, const std::string& what);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

[[nodiscard]] std::string_view reloc_error_kind_name(RelocError::Kind k);

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace jpg

/// Internal invariant check, active in every build type.
#define JPG_ASSERT(expr)                                              \
  do {                                                                \
    if (!(expr)) [[unlikely]] {                                       \
      ::jpg::detail::assert_fail(#expr, __FILE__, __LINE__, "");      \
    }                                                                 \
  } while (0)

/// Internal invariant check with a formatted context message.
#define JPG_ASSERT_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) [[unlikely]] {                                       \
      ::jpg::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));   \
    }                                                                 \
  } while (0)

/// Precondition on a public API: throws JpgError instead of aborting so
/// callers (and tests) can recover.
#define JPG_REQUIRE(expr, msg)                                        \
  do {                                                                \
    if (!(expr)) [[unlikely]] {                                       \
      throw ::jpg::JpgError(std::string("precondition failed: ") +    \
                            (msg) + " (" #expr ")");                  \
    }                                                                 \
  } while (0)
