file(REMOVE_RECURSE
  "CMakeFiles/bench_word_kernels.dir/bench_word_kernels.cpp.o"
  "CMakeFiles/bench_word_kernels.dir/bench_word_kernels.cpp.o.d"
  "bench_word_kernels"
  "bench_word_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_word_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
