// Tests for the bitstream substrate: CRC, packet codec, the Bitstream
// container, bitgen -> ConfigPort roundtrips, fault injection, and the
// packet-level reader.
#include <gtest/gtest.h>

#include "bitstream/bitgen.h"
#include "bitstream/bitstream_reader.h"
#include "bitstream/bitstream_writer.h"
#include "bitstream/config_port.h"
#include "bitstream/crc16.h"
#include "support/rng.h"

namespace jpg {
namespace {

TEST(Crc16, KnownBehaviour) {
  Crc16 crc;
  EXPECT_EQ(crc.value(), 0);
  crc.update(2, 0x12345678);
  const std::uint16_t once = crc.value();
  EXPECT_NE(once, 0);
  crc.reset();
  EXPECT_EQ(crc.value(), 0);
  crc.update(2, 0x12345678);
  EXPECT_EQ(crc.value(), once);  // deterministic
  // Address participates in the CRC.
  Crc16 other;
  other.update(3, 0x12345678);
  EXPECT_NE(other.value(), once);
}

TEST(Crc16, SensitiveToEveryBit) {
  for (int bit = 0; bit < 32; bit += 7) {
    Crc16 a, b;
    a.update(2, 0);
    b.update(2, 1u << bit);
    EXPECT_NE(a.value(), b.value()) << "bit " << bit;
  }
}

TEST(Packet, Type1Roundtrip) {
  const std::uint32_t w = encode_type1(PacketOp::Write, ConfigReg::FAR, 1);
  const auto h = decode_header(w, ConfigReg::CRC);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->type, 1);
  EXPECT_EQ(h->op, PacketOp::Write);
  EXPECT_EQ(h->reg, ConfigReg::FAR);
  EXPECT_EQ(h->word_count, 1u);
}

TEST(Packet, Type2InheritsRegister) {
  const std::uint32_t w = encode_type2(PacketOp::Write, 100000);
  const auto h = decode_header(w, ConfigReg::FDRI);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->type, 2);
  EXPECT_EQ(h->reg, ConfigReg::FDRI);
  EXPECT_EQ(h->word_count, 100000u);
}

TEST(Packet, RejectsGarbage) {
  EXPECT_FALSE(decode_header(0xE0000000u, ConfigReg::CRC).has_value());
  EXPECT_FALSE(decode_header(0x00000000u, ConfigReg::CRC).has_value());
  // Unknown register id.
  const std::uint32_t bad_reg = (1u << 29) | (2u << 27) | (20u << 13);
  EXPECT_FALSE(decode_header(bad_reg, ConfigReg::CRC).has_value());
}

TEST(Bitstream, ByteSerialisationRoundtrip) {
  Bitstream bs;
  bs.words = {kDummyWord, kSyncWord, 0x01020304u, 0xCAFEBABEu};
  const auto bytes = bs.to_bytes();
  ASSERT_EQ(bytes.size(), 16u);
  EXPECT_EQ(bytes[8], 0x01);
  EXPECT_EQ(bytes[11], 0x04);
  EXPECT_EQ(Bitstream::from_bytes(bytes), bs);
  EXPECT_THROW(Bitstream::from_bytes(std::vector<std::uint8_t>(5)),
               BitstreamError);
}

TEST(Bitstream, FileRoundtrip) {
  Bitstream bs;
  bs.words = {kSyncWord, 1, 2, 3};
  const std::string path = ::testing::TempDir() + "/jpg_bitstream_test.bit";
  bs.save(path);
  EXPECT_EQ(Bitstream::load(path), bs);
}

class ConfigRoundtrip : public ::testing::TestWithParam<const char*> {};

TEST_P(ConfigRoundtrip, FullBitstreamLoadsExactly) {
  const Device& dev = Device::get(GetParam());
  ConfigMemory golden(dev);
  // Random but reproducible configuration plane.
  Rng rng(2002);
  for (std::size_t f = 0; f < golden.num_frames(); ++f) {
    for (std::size_t w = 0; w < dev.frames().frame_words(); ++w) {
      golden.frame(f).set_word(w, static_cast<std::uint32_t>(rng.next()));
    }
  }

  const Bitstream bs = generate_full_bitstream(golden);
  ConfigMemory loaded(dev);
  ConfigPort port(loaded);
  port.load(bs);
  EXPECT_TRUE(port.started());
  EXPECT_EQ(loaded, golden);
  EXPECT_EQ(port.frames_committed(), dev.frames().num_frames());
}

INSTANTIATE_TEST_SUITE_P(Parts, ConfigRoundtrip,
                         ::testing::Values("XCV50", "XCV100", "XCV300"));

TEST(ConfigPort, RejectsSingleBitCorruption) {
  const Device& dev = Device::get("XCV50");
  ConfigMemory mem(dev);
  mem.frame(100).set(37, true);
  const Bitstream good = generate_full_bitstream(mem);

  // Flip one bit in the FDRI payload region and expect a CRC failure.
  Rng rng(7);
  int rejected = 0;
  for (int trial = 0; trial < 8; ++trial) {
    Bitstream bad = good;
    // Skip the 12-word header region to stay inside frame data.
    const std::size_t idx =
        20 + rng.uniform(bad.words.size() - 40);
    bad.words[idx] ^= 1u << rng.uniform(32);
    ConfigMemory scratch(dev);
    ConfigPort port(scratch);
    try {
      port.load(bad);
    } catch (const BitstreamError&) {
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, 8);
}

TEST(ConfigPort, RejectsWrongDevice) {
  const Device& v50 = Device::get("XCV50");
  const Device& v100 = Device::get("XCV100");
  ConfigMemory mem(v50);
  const Bitstream bs = generate_full_bitstream(mem);
  ConfigMemory other(v100);
  ConfigPort port(other);
  EXPECT_THROW(port.load(bs), BitstreamError);
}

TEST(ConfigPort, IgnoresPreSyncNoise) {
  const Device& dev = Device::get("XCV50");
  ConfigMemory mem(dev);
  Bitstream bs = generate_full_bitstream(mem);
  // Prepend junk that is not the sync word.
  std::vector<std::uint32_t> noisy = {0x0, 0x12345678u, kDummyWord};
  noisy.insert(noisy.end(), bs.words.begin(), bs.words.end());
  bs.words = std::move(noisy);
  ConfigMemory loaded(dev);
  ConfigPort port(loaded);
  EXPECT_NO_THROW(port.load(bs));
  EXPECT_TRUE(port.started());
}

TEST(ConfigPort, FdriRequiresWcfgAndFar) {
  const Device& dev = Device::get("XCV50");
  ConfigMemory mem(dev);
  ConfigPort port(mem);
  const std::size_t fw = dev.frames().frame_words();

  // No WCFG command: FDRI must be rejected.
  BitstreamWriter w1(dev);
  w1.begin();
  w1.write_cmd(Command::RCRC);
  w1.write_reg(ConfigReg::FAR, dev.frames().encode_far({0, 1, 0}));
  std::vector<std::uint32_t> two_frames(fw * 2, 0);
  w1.write_fdri(two_frames);
  EXPECT_THROW(port.load(w1.finish()), BitstreamError);

  // Misaligned payload (not a whole number of frames).
  port.reset();
  BitstreamWriter w2(dev);
  w2.begin();
  w2.write_cmd(Command::RCRC);
  w2.write_cmd(Command::WCFG);
  w2.write_reg(ConfigReg::FAR, dev.frames().encode_far({0, 1, 0}));
  std::vector<std::uint32_t> ragged(fw * 2 + 1, 0);
  w2.write_fdri(ragged);
  EXPECT_THROW(port.load(w2.finish()), BitstreamError);
}

TEST(ConfigPort, InvalidFarRejected) {
  const Device& dev = Device::get("XCV50");
  ConfigMemory mem(dev);
  ConfigPort port(mem);
  BitstreamWriter w(dev);
  w.begin();
  w.write_cmd(Command::RCRC);
  w.write_reg(ConfigReg::FAR, 0x00FFFFFFu);
  EXPECT_THROW(port.load(w.finish()), BitstreamError);
}

TEST(ConfigPort, PartialWriteTouchesOnlyAddressedFrames) {
  const Device& dev = Device::get("XCV50");
  ConfigMemory mem(dev);
  ConfigPort port(mem);

  // Write 3 frames at major 5.
  ConfigMemory payload(dev);
  const std::size_t base = dev.frames().frame_index(5, 10);
  for (std::size_t i = 0; i < 3; ++i) {
    payload.frame(base + i).set(42 + i, true);
  }
  BitstreamWriter w(dev);
  w.begin();
  w.write_cmd(Command::RCRC);
  w.write_cmd(Command::WCFG);
  w.write_reg(ConfigReg::FAR, dev.frames().encode_far({0, 5, 10}));
  w.write_frames(payload, base, 3);
  w.write_crc();
  w.write_cmd(Command::LFRM);
  port.load(w.finish());

  EXPECT_EQ(port.frames_committed(), 3u);
  ASSERT_EQ(port.committed_frames().size(), 3u);
  EXPECT_EQ(port.committed_frames()[0], base);
  EXPECT_EQ(port.committed_frames()[2], base + 2);
  // Everything else untouched.
  ConfigMemory expect(dev);
  for (std::size_t i = 0; i < 3; ++i) {
    expect.copy_frame_from(payload, base + i);
  }
  EXPECT_EQ(mem, expect);
}

TEST(ConfigPort, ReadbackMatchesMemory) {
  const Device& dev = Device::get("XCV50");
  ConfigMemory mem(dev);
  mem.frame(7).set(3, true);
  mem.frame(8).set(5, true);
  ConfigPort port(mem);
  const auto words = port.readback_frames(7, 2);
  ASSERT_EQ(words.size(), 2 * dev.frames().frame_words());
  ConfigMemory copy(dev);
  copy.write_frame_words(7, words.data());
  copy.write_frame_words(8, words.data() + dev.frames().frame_words());
  EXPECT_FALSE(copy.frame(7).differs_from(mem.frame(7)));
  EXPECT_FALSE(copy.frame(8).differs_from(mem.frame(8)));
}

TEST(ConfigMemory, DiffFrames) {
  const Device& dev = Device::get("XCV50");
  ConfigMemory a(dev), b(dev);
  EXPECT_TRUE(a.diff_frames(b).empty());
  b.frame(3).set(1, true);
  b.frame(100).set(2, true);
  const auto diff = a.diff_frames(b);
  ASSERT_EQ(diff.size(), 2u);
  EXPECT_EQ(diff[0], 3u);
  EXPECT_EQ(diff[1], 100u);
}

TEST(BitstreamReader, ParsesBitgenOutput) {
  const Device& dev = Device::get("XCV100");
  ConfigMemory mem(dev);
  const Bitstream bs = generate_full_bitstream(mem);
  const BitstreamReader reader(bs);
  EXPECT_EQ(reader.idcode(), dev.spec().idcode);
  // FDRI carries all frames + 1 pad frame.
  EXPECT_EQ(reader.fdri_words(),
            (dev.frames().num_frames() + 1) * dev.frames().frame_words());
  const auto blocks = reader.far_blocks(dev.frames().frame_words());
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].second, dev.frames().num_frames());
  EXPECT_FALSE(reader.summarize().empty());
}

TEST(Crc16, TableMatchesBitSerialReference) {
  // The table-driven fast path and the bit-serial definition must agree on
  // arbitrary register-write streams, including across resets.
  Rng rng(0xC4C1ull);
  Crc16 fast;
  Crc16Serial ref;
  for (int i = 0; i < 5000; ++i) {
    if (rng.uniform(97) == 0) {
      fast.reset();
      ref.reset();
    }
    const auto reg = static_cast<std::uint32_t>(rng.uniform(32));
    const auto data = static_cast<std::uint32_t>(rng.next());
    fast.update(reg, data);
    ref.update(reg, data);
    ASSERT_EQ(fast.value(), ref.value()) << "step " << i;
  }
}

TEST(BitstreamReader, FarBlocksRejectsMisalignedPayload) {
  // A ragged FDRI payload used to be silently rounded down, undercounting
  // the frames a partial touches — the verify path would then skip frames
  // the stream actually wrote.
  const Device& dev = Device::get("XCV50");
  const std::size_t fw = dev.frames().frame_words();
  BitstreamWriter w(dev);
  w.begin();
  w.write_cmd(Command::RCRC);
  w.write_reg(ConfigReg::FAR, dev.frames().encode_far({0, 1, 0}));
  std::vector<std::uint32_t> ragged(fw * 2 + 3, 0);
  w.write_fdri(ragged);
  const BitstreamReader reader(w.finish());
  EXPECT_THROW((void)reader.far_blocks(fw), BitstreamError);
}

TEST(BitstreamReader, FarBlocksSkipsPadOnlyPackets) {
  // An FDRI packet holding exactly one frame is all pad: it flushes the
  // pipeline and commits nothing, so it must not surface as a bogus
  // zero-frame (previously: huge, wrapped-around) block.
  const Device& dev = Device::get("XCV50");
  const FrameMap& fm = dev.frames();
  const std::size_t fw = fm.frame_words();
  ConfigMemory payload(dev);
  const std::size_t base = fm.frame_index(2, 1);

  BitstreamWriter w(dev);
  w.begin();
  w.write_cmd(Command::RCRC);
  w.write_reg(ConfigReg::FAR, fm.encode_far(fm.address_of_index(base)));
  std::vector<std::uint32_t> pad_only(fw, 0);
  w.write_fdri(pad_only);  // 1 frame: pad, nothing committed
  w.write_reg(ConfigReg::FAR, fm.encode_far(fm.address_of_index(base + 4)));
  w.write_frames(payload, base + 4, 2);  // 2 frames + pad
  const BitstreamReader reader(w.finish());

  const auto blocks = reader.far_blocks(fw);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].first, fm.encode_far(fm.address_of_index(base + 4)));
  EXPECT_EQ(blocks[0].second, 2u);
}

TEST(ReaderPortConformance, Type2ContinuationRequiresWriteOp) {
  // Both consumers must rule on the same malformed framing the same way: a
  // zero-count FDRI announcement continued by a type-2 packet whose op is
  // not Write is a protocol error for the port AND the offline reader.
  Bitstream bad;
  bad.words = {kDummyWord, kSyncWord,
               encode_type1(PacketOp::Write, ConfigReg::FDRI, 0),
               encode_type2(PacketOp::Read, 4), 0, 0, 0, 0};

  const Device& dev = Device::get("XCV50");
  ConfigMemory mem(dev);
  ConfigPort port(mem);
  std::string port_err;
  try {
    port.load(bad);
  } catch (const BitstreamError& e) {
    port_err = e.what();
  }
  std::string reader_err;
  try {
    const BitstreamReader reader(bad);
  } catch (const BitstreamError& e) {
    reader_err = e.what();
  }
  EXPECT_FALSE(port_err.empty());
  EXPECT_EQ(port_err, reader_err);
}

TEST(ReaderPortConformance, Type2WriteContinuationAcceptedByBoth) {
  // The well-formed counterpart: a payload large enough to force the
  // type 1 zero-count + type 2 encoding must decode on both consumers and
  // yield the same frame accounting.
  const Device& dev = Device::get("XCV50");
  const FrameMap& fm = dev.frames();
  const std::size_t fw = fm.frame_words();
  // > 2047 words of FDRI forces the type-2 path in the writer.
  const std::size_t count = 2048 / fw + 2;
  ConfigMemory payload(dev);
  const std::size_t base = fm.frame_index(1, 0);

  BitstreamWriter w(dev);
  w.begin();
  w.write_cmd(Command::RCRC);
  w.write_reg(ConfigReg::FLR, static_cast<std::uint32_t>(fw - 1));
  w.write_reg(ConfigReg::IDCODE, dev.spec().idcode);
  w.write_cmd(Command::WCFG);
  w.write_reg(ConfigReg::FAR, fm.encode_far(fm.address_of_index(base)));
  w.write_frames(payload, base, count);
  w.write_crc();
  w.write_cmd(Command::LFRM);
  const Bitstream bs = w.finish();

  ConfigMemory mem(dev);
  ConfigPort port(mem);
  EXPECT_NO_THROW(port.load(bs));
  EXPECT_EQ(port.frames_committed(), count);

  const BitstreamReader reader(bs);
  const auto blocks = reader.far_blocks(fw);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].second, count);
}

TEST(ConfigPort, AbortClearsAddressingContext) {
  // An explicit ABORT mid-session must forget the loaded FAR: an FDRI
  // write in the next session without its own FAR is a protocol error,
  // exactly as on a fresh port.
  const Device& dev = Device::get("XCV50");
  const FrameMap& fm = dev.frames();
  const std::size_t fw = fm.frame_words();

  ConfigMemory mem(dev);
  ConfigPort port(mem);
  BitstreamWriter wa(dev);
  wa.begin();
  wa.write_cmd(Command::RCRC);
  wa.write_cmd(Command::WCFG);
  wa.write_reg(ConfigReg::FAR, fm.encode_far({0, 5, 10}));
  port.load(wa.stream());  // mid-session: FAR loaded, no DESYNC yet
  port.abort();

  BitstreamWriter wb(dev);
  wb.begin();
  wb.write_cmd(Command::RCRC);
  wb.write_cmd(Command::WCFG);
  std::vector<std::uint32_t> frames(fw * 2, 0);
  wb.write_fdri(frames);
  EXPECT_THROW(port.load(wb.finish()), BitstreamError);
  EXPECT_EQ(port.frames_committed(), 0u);
}

TEST(BitstreamReader, RejectsTruncation) {
  const Device& dev = Device::get("XCV50");
  ConfigMemory mem(dev);
  Bitstream bs = generate_full_bitstream(mem);
  bs.words.resize(bs.words.size() / 2);
  EXPECT_THROW(BitstreamReader{bs}, BitstreamError);
  Bitstream nosync;
  nosync.words = {kDummyWord, kDummyWord};
  EXPECT_THROW(BitstreamReader{nosync}, BitstreamError);
}

}  // namespace
}  // namespace jpg
