// BitstreamWriter: emits configuration word streams with correct packet
// framing and CRC bookkeeping. Both the full-bitstream generator (bitgen)
// and JPG's partial generator are built on it.
#pragma once

#include <cstdint>
#include <span>

#include "bitstream/config_memory.h"
#include "bitstream/crc16.h"
#include "bitstream/frame_overlay.h"
#include "bitstream/packet.h"
#include "device/device.h"

namespace jpg {

class BitstreamWriter {
 public:
  explicit BitstreamWriter(const Device& device) : device_(&device) {}

  /// Emits the leading dummy word and the sync word.
  void begin();

  /// Type 1 write of a single register value.
  void write_reg(ConfigReg reg, std::uint32_t value);

  void write_cmd(Command cmd) {
    write_reg(ConfigReg::CMD, static_cast<std::uint32_t>(cmd));
  }

  /// FDRI write. Small payloads use a Type 1 packet; large ones a Type 1
  /// zero-count header followed by a Type 2 packet, as on the real part.
  void write_fdri(std::span<const std::uint32_t> words);

  /// Writes the running CRC to the CRC register (the port verifies it).
  void write_crc();

  /// Emits the trailing DESYNC command and returns the stream.
  [[nodiscard]] Bitstream finish();

  /// Serialises one frame of `mem` plus trailing zero pad frame... see
  /// write_frames: emits FDRI data for frames [first, first+count) of `mem`
  /// followed by one pad frame (the config pipeline flush frame).
  void write_frames(const ConfigMemory& mem, std::size_t first,
                    std::size_t count);

  /// Same, reading through a FrameOverlay (the partial generator's fast
  /// path: untouched frames stream straight from the borrowed base).
  void write_frames(const FrameOverlay& mem, std::size_t first,
                    std::size_t count);

  /// Grows the output capacity to hold `words` more words. Callers that
  /// know the frame payload ahead (the partial generator does) reserve once
  /// instead of reallocating across write_frames calls.
  void reserve(std::size_t words) {
    out_.words.reserve(out_.words.size() + words);
  }

  [[nodiscard]] std::size_t size_words() const { return out_.words.size(); }
  [[nodiscard]] std::size_t size_bytes() const { return out_.size_bytes(); }

  [[nodiscard]] const Bitstream& stream() const { return out_; }

 private:
  template <typename FrameSource>
  void write_frames_impl(const FrameSource& mem, std::size_t first,
                         std::size_t count);

  void emit(std::uint32_t word) { out_.words.push_back(word); }

  const Device* device_;
  Bitstream out_;
  Crc16 crc_;
};

}  // namespace jpg
