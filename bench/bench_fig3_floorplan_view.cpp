// FIG3 — the paper's Figure 3: "JPG tool user interface, showing the
// floorplan of the device ... the JPG tool displays graphically the target
// floorplanned area on the FPGA. This can be used to verify whether the
// update is happening on the region desired by the designer."
//
// Our GUI stand-in is the ASCII floorplan view. The bench measures render
// cost across device sizes and verifies the highlight covers exactly the
// target region; the printed output is the figure itself.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/floorplan_view.h"
#include "scenarios.h"

namespace jpg {
namespace {

std::vector<FloorplanEntry> entries_for(const Device& dev) {
  std::vector<FloorplanEntry> entries;
  if (dev.cols() >= 22) {
    for (const auto& slot : scenarios::fig4_slots(dev)) {
      entries.push_back({slot.partition.substr(2), slot.region});
    }
  } else {
    for (const auto& slot : scenarios::fig1_slots(dev)) {
      entries.push_back({slot.partition.substr(2), slot.region});
    }
  }
  return entries;
}

void BM_RenderFloorplan(benchmark::State& state) {
  static const char* parts[] = {"XCV50", "XCV300", "XCV1000"};
  const Device& dev = Device::get(parts[state.range(0)]);
  const auto entries = entries_for(dev);
  const Region highlight = entries.back().region;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        render_floorplan(dev, entries, highlight).size());
  }
  state.counters["tiles"] = static_cast<double>(dev.rows() * dev.cols());
}
BENCHMARK(BM_RenderFloorplan)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMicrosecond);

void print_fig3() {
  using benchutil::fmt;
  const Device& dev = Device::get("XCV50");
  const auto entries = entries_for(dev);
  const Region highlight = entries[1].region;
  std::printf("%s\n",
              render_floorplan(dev, entries, highlight).c_str());

  // Verification rows: highlight coverage is exactly the target region.
  const std::string view = render_floorplan(dev, entries, highlight);
  std::size_t hashes = 0;
  for (const char c : view) {
    if (c == '#') ++hashes;
  }
  benchutil::Table t({"device", "tiles", "highlighted", "expected",
                      "render us"});
  for (const char* part : {"XCV50", "XCV300", "XCV1000"}) {
    const Device& d = Device::get(part);
    const auto e = entries_for(d);
    const Region h = e.back().region;
    benchutil::Stopwatch sw;
    const std::string v = render_floorplan(d, e, h);
    const double us = sw.seconds() * 1e6;
    // Count '#' in the grid rows only (the banner text also contains one).
    std::size_t n = 0;
    bool in_grid_row = false;
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i == 0 || v[i - 1] == '\n') in_grid_row = v[i] == 'R';
      if (in_grid_row && v[i] == '#') ++n;
    }
    t.row({part, std::to_string(d.rows() * d.cols()), std::to_string(n),
           std::to_string(h.num_tiles()), fmt(us, 1)});
  }
  t.print("FIG3: floorplan view coverage and render cost");
  (void)hashes;
}

}  // namespace
}  // namespace jpg

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  jpg::print_fig3();
  return 0;
}
