file(REMOVE_RECURSE
  "CMakeFiles/jpg_xdl.dir/xdl/lut_equation.cpp.o"
  "CMakeFiles/jpg_xdl.dir/xdl/lut_equation.cpp.o.d"
  "CMakeFiles/jpg_xdl.dir/xdl/xdl_lexer.cpp.o"
  "CMakeFiles/jpg_xdl.dir/xdl/xdl_lexer.cpp.o.d"
  "CMakeFiles/jpg_xdl.dir/xdl/xdl_parser.cpp.o"
  "CMakeFiles/jpg_xdl.dir/xdl/xdl_parser.cpp.o.d"
  "CMakeFiles/jpg_xdl.dir/xdl/xdl_writer.cpp.o"
  "CMakeFiles/jpg_xdl.dir/xdl/xdl_writer.cpp.o.d"
  "libjpg_xdl.a"
  "libjpg_xdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpg_xdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
