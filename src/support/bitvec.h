// A fixed-size bit vector with word-level access.
//
// Configuration frames and LUT truth tables are bit-addressed but shipped as
// 32-bit words; BitVector supports both views plus the bulk operations the
// partial bitstream generator needs (compare, copy ranges, population count).
#pragma once

#include <cstdint>
#include <vector>

#include "support/error.h"

namespace jpg {

class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t nbits) { resize(nbits); }

  void resize(std::size_t nbits) {
    nbits_ = nbits;
    words_.assign((nbits + 31) / 32, 0u);
  }

  [[nodiscard]] std::size_t size() const noexcept { return nbits_; }
  [[nodiscard]] std::size_t num_words() const noexcept { return words_.size(); }
  [[nodiscard]] bool empty() const noexcept { return nbits_ == 0; }

  [[nodiscard]] bool get(std::size_t i) const {
    JPG_ASSERT_MSG(i < nbits_, "BitVector::get out of range");
    return (words_[i >> 5] >> (i & 31)) & 1u;
  }

  void set(std::size_t i, bool v) {
    JPG_ASSERT_MSG(i < nbits_, "BitVector::set out of range");
    const std::uint32_t mask = 1u << (i & 31);
    if (v) {
      words_[i >> 5] |= mask;
    } else {
      words_[i >> 5] &= ~mask;
    }
  }

  /// Reads a field of up to 32 bits starting at bit `pos` (LSB-first).
  [[nodiscard]] std::uint32_t get_field(std::size_t pos, unsigned width) const;

  // --- Bulk range operations (masked 32-bit word blits) ---------------------
  /// Copies bits [pos, pos+nbits) of `src` into the same positions of *this.
  /// Bits outside the range are untouched.
  void copy_range(const BitVector& src, std::size_t pos, std::size_t nbits);

  /// Copies bits [src_pos, src_pos+nbits) of `src` into
  /// [dst_pos, dst_pos+nbits) of *this (the relocating form PARBIT needs).
  /// Self-copy is only allowed when the ranges coincide.
  void copy_range(const BitVector& src, std::size_t src_pos,
                  std::size_t dst_pos, std::size_t nbits);

  /// True iff any bit in [pos, pos+nbits) differs from `other` (sizes must
  /// match). The word-level form of `differs_from` for a sub-range.
  [[nodiscard]] bool diff_in_range(const BitVector& other, std::size_t pos,
                                   std::size_t nbits) const;

  /// Writes a field of up to 32 bits starting at bit `pos` (LSB-first).
  void set_field(std::size_t pos, unsigned width, std::uint32_t value);

  [[nodiscard]] std::uint32_t word(std::size_t w) const {
    JPG_ASSERT(w < words_.size());
    return words_[w];
  }

  void set_word(std::size_t w, std::uint32_t value) {
    JPG_ASSERT(w < words_.size());
    words_[w] = value;
    mask_tail();
  }

  void clear() { words_.assign(words_.size(), 0u); }

  /// Number of set bits.
  [[nodiscard]] std::size_t popcount() const noexcept;

  /// True iff any bit differs from `other` (sizes must match).
  [[nodiscard]] bool differs_from(const BitVector& other) const;

  bool operator==(const BitVector& other) const {
    return nbits_ == other.nbits_ && words_ == other.words_;
  }
  bool operator!=(const BitVector& other) const { return !(*this == other); }

  [[nodiscard]] const std::vector<std::uint32_t>& words() const noexcept {
    return words_;
  }

 private:
  // Bits past nbits_ in the last word must stay zero so word-level compares
  // are exact.
  void mask_tail() {
    const unsigned tail = nbits_ & 31;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (1u << tail) - 1u;
    }
  }

  std::size_t nbits_ = 0;
  std::vector<std::uint32_t> words_;
};

}  // namespace jpg
