#include "netlist/drc.h"

#include <set>
#include <sstream>

namespace jpg {

namespace {

/// Detects a cycle in the LUT-to-LUT combinational graph by DFS coloring.
bool find_comb_cycle(const Netlist& nl, std::string& cycle_cell) {
  const std::size_t n = nl.num_cells();
  // 0 = white, 1 = on stack, 2 = done
  std::vector<std::uint8_t> color(n, 0);
  std::vector<std::pair<CellId, std::size_t>> stack;

  auto comb_fanout = [&](CellId id, std::size_t edge,
                         CellId& next) -> bool {
    const Cell& c = nl.cell(id);
    if (c.out == kNullNet) return false;
    const Net& net = nl.net(c.out);
    std::size_t seen = 0;
    for (const NetSink& s : net.sinks) {
      if (nl.cell(s.cell).kind != CellKind::Lut4) continue;
      if (seen == edge) {
        next = s.cell;
        return true;
      }
      ++seen;
    }
    return false;
  };

  for (CellId start = 0; start < n; ++start) {
    if (nl.cell(start).kind != CellKind::Lut4 || color[start] != 0) continue;
    stack.clear();
    stack.emplace_back(start, 0);
    color[start] = 1;
    while (!stack.empty()) {
      auto& [id, edge] = stack.back();
      CellId next = kNullCell;
      if (comb_fanout(id, edge, next)) {
        ++edge;
        if (color[next] == 1) {
          cycle_cell = nl.cell(next).name;
          return true;
        }
        if (color[next] == 0) {
          color[next] = 1;
          stack.emplace_back(next, 0);
        }
      } else {
        color[id] = 2;
        stack.pop_back();
      }
    }
  }
  return false;
}

}  // namespace

DrcReport run_drc(const Netlist& nl) {
  DrcReport rep;
  auto err = [&](const std::string& m) { rep.errors.push_back(m); };
  auto warn = [&](const std::string& m) { rep.warnings.push_back(m); };

  // Unique names.
  std::set<std::string> cell_names, in_ports, out_ports;
  for (const Cell& c : nl.cells()) {
    if (!cell_names.insert(c.name).second) {
      err("duplicate cell name '" + c.name + "'");
    }
    if (c.kind == CellKind::Ibuf && !in_ports.insert(c.port).second) {
      err("duplicate input port '" + c.port + "'");
    }
    if (c.kind == CellKind::Obuf && !out_ports.insert(c.port).second) {
      err("duplicate output port '" + c.port + "'");
    }
  }
  for (const std::string& p : in_ports) {
    if (out_ports.count(p) != 0) {
      err("port '" + p + "' is both input and output");
    }
  }

  // Net connectivity.
  for (std::size_t i = 0; i < nl.num_nets(); ++i) {
    const Net& net = nl.net(static_cast<NetId>(i));
    if (!net.sinks.empty() && net.driver == kNullCell) {
      err("net '" + net.name + "' has sinks but no driver");
    }
    if (net.sinks.empty() && net.driver != kNullCell) {
      warn("net '" + net.name + "' has no sinks");
    }
  }

  // Obuf drive rules.
  for (const Cell& c : nl.cells()) {
    if (c.kind != CellKind::Obuf) continue;
    if (c.in[0] == kNullNet) {
      err("OBUF '" + c.name + "' input is unconnected");
      continue;
    }
    const Net& net = nl.net(c.in[0]);
    if (net.driver == kNullCell) continue;  // reported above
    const CellKind dk = nl.cell(net.driver).kind;
    if (dk == CellKind::Gnd || dk == CellKind::Vcc) {
      err("OBUF '" + c.name +
          "' is driven by a constant; fold constants into a LUT first");
    }
  }

  // Combinational cycles.
  std::string cyc;
  if (find_comb_cycle(nl, cyc)) {
    err("combinational cycle through LUT '" + cyc + "'");
  }

  // Fanout-free logic cells.
  for (const Cell& c : nl.cells()) {
    if (!c.has_output() || c.out == kNullNet) continue;
    if (nl.net(c.out).sinks.empty() && c.kind != CellKind::Ibuf) {
      warn("cell '" + c.name + "' drives nothing");
    }
  }

  return rep;
}

void require_drc_clean(const Netlist& nl) {
  const DrcReport rep = run_drc(nl);
  if (rep.ok()) return;
  std::ostringstream os;
  os << "DRC failed for design '" << nl.name() << "':";
  for (const std::string& e : rep.errors) os << "\n  " << e;
  throw JpgError(os.str());
}

}  // namespace jpg
