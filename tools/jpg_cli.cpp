// jpg_cli: the command-line surface of the JPG tool.
//
//   jpg_cli info <file.bit>                      device + payload summary
//   jpg_cli summarize <file.bit>                 packet-level dump
//   jpg_cli partial <base.bit> <mod.xdl> <mod.ucf> -o <out.pbit> [--diff]
//                                                option 1: emit a partial
//   jpg_cli apply <base.bit> <partial.pbit> -o <updated.bit>
//                                                option 2: write onto base
//   jpg_cli floorplan <base.bit> <mod.ucf>       Figure-3 view of the target
//   jpg_cli verify <base.bit> <partial.pbit>     load on a simulated board,
//                                                read back, compare
//   jpg_cli relocate <base.bit> <partial.pbit> --from R..C..:R..C..
//                    --to R..C.. -o <out.pbit> [--force]
//                                                retarget a pbit at a
//                                                geometry-compatible region
//                                                (containment-checked; the
//                                                result equals generate-at-B)
//   jpg_cli attest <base.bit> [partial.pbit ...] [--corrupt F:W:MASK]
//                                                readback audit of a
//                                                simulated board against the
//                                                plane reconstructed from
//                                                base + applied pbits
//   jpg_cli project-new <dir> <base.bit> <name>
//   jpg_cli project-add <dir> <name> <mod.xdl> <mod.ucf>
//   jpg_cli project-build <dir> <outdir>         partial for every module
//   jpg_cli pnr <part> <generator> <param> [--seed S] [--threads N] [--ref]
//                                                run the P&R flow on a
//                                                netlib design; the printed
//                                                digest is thread-invariant
//   jpg_cli fuzzcfg [--iterations N] [--seed S] [--device PART]
//                                                malformed-bitstream fuzz of
//                                                the configuration decoders
//   jpg_cli download <base.bit> <partial.pbit> [--flip P] [--drop P] ...
//                                                verified download over a
//                                                fault-injecting sim board
//   jpg_cli stats [--part PART] [--seed S]       run a self-contained mini
//                                                flow (PnR, partial gen with
//                                                a cache hit, verified
//                                                download) and print the
//                                                metrics snapshot
//   jpg_cli serve [--part PART] [--boards N] [--tenants N] [--requests N]
//                 [--rate HZ] [--seed S] [--queue-depth N] [--quota N]
//                 [--slots N] [--variants N]
//                                                multi-tenant reconfiguration
//                                                service loadgen: replay an
//                                                open-loop Poisson swap
//                                                workload and print latency
//                                                percentiles + throughput
//   jpg_cli proptest [--device PART] [--seed S] [--count N] [--raw-seed R]
//                    [--cycles C] [--shrink] [--repro-dir DIR] [--fault-tier]
//                                                property-based differential
//                                                sweep: random designs through
//                                                the full flow vs golden sim;
//                                                failures print a one-command
//                                                repro line and --shrink
//                                                writes a minimised .repro
//
// Global flags (any command):
//   --metrics <file>   write the process metrics snapshot as JSON on exit
//   --trace <file>     record trace spans, write Chrome trace JSON on exit
// An unwritable --metrics/--trace path exits with status 3 (the command's
// own work has already happened at that point and is reported first).
#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "bitstream/bitgen.h"
#include "bitstream/bitstream_reader.h"
#include "bitstream/bitstream_writer.h"
#include "bitstream/stream_fuzzer.h"
#include "cbits/cbits.h"
#include "core/jpg.h"
#include "core/project.h"
#include "core/relocate.h"
#include "hwif/faulty_board.h"
#include "hwif/sim_board.h"
#include "hwif/verified_downloader.h"
#include "netlib/generators.h"
#include "service/load_harness.h"
#include "service/reconfig_service.h"
#include "support/string_util.h"
#include "support/telemetry/telemetry.h"
#include "pnr/flow.h"
#include "sched/task_graph.h"
#include "testing/design_gen.h"
#include "testing/oracle.h"
#include "testing/sched_oracle.h"
#include "testing/shrinker.h"
#include "ucf/ucf_parser.h"

namespace jpg::cli {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw JpgError("cannot open '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

int cmd_info(int argc, char** argv) {
  if (argc != 1) throw JpgError("usage: jpg_cli info <file.bit>");
  const Bitstream bs = Bitstream::load(argv[0]);
  const BitstreamReader reader(bs);
  std::printf("file          : %s\n", argv[0]);
  std::printf("words         : %zu (%zu bytes)\n", bs.words.size(),
              bs.size_bytes());
  if (const auto idcode = reader.idcode()) {
    const DeviceSpec& spec = DeviceSpec::by_idcode(*idcode);
    std::printf("device        : %s (%dx%d CLBs)\n", spec.name.c_str(),
                spec.clb_rows, spec.clb_cols);
    const Device& dev = Device::get(spec.name);
    const auto blocks = reader.far_blocks(dev.frames().frame_words());
    std::size_t frames = 0;
    for (const auto& [far, n] : blocks) frames += n;
    std::printf("FAR blocks    : %zu (%zu frames of %zu total)\n",
                blocks.size(), frames, dev.frames().num_frames());
    const bool full = frames >= dev.frames().num_frames();
    std::printf("kind          : %s bitstream\n", full ? "complete" : "partial");
  } else {
    std::printf("device        : unknown (no IDCODE write)\n");
  }
  return 0;
}

int cmd_summarize(int argc, char** argv) {
  if (argc != 1) throw JpgError("usage: jpg_cli summarize <file.bit>");
  const BitstreamReader reader(Bitstream::load(argv[0]));
  std::printf("%s", reader.summarize().c_str());
  return 0;
}

int cmd_partial(int argc, char** argv) {
  std::string out;
  PartialGenOptions opts;
  std::vector<std::string> pos;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--diff") == 0) {
      opts.diff_only = true;
    } else {
      pos.emplace_back(argv[i]);
    }
  }
  if (pos.size() != 3 || out.empty()) {
    throw JpgError(
        "usage: jpg_cli partial <base.bit> <mod.xdl> <mod.ucf> -o <out.pbit> "
        "[--diff]");
  }
  Jpg tool(Bitstream::load(pos[0]));
  const auto res = tool.generate_partial_from_text(read_file(pos[1]),
                                                   read_file(pos[2]), opts);
  res.partial.save(out);
  std::printf("%s", res.floorplan.c_str());
  std::printf("wrote %s: %zu bytes, %zu frames in %zu FAR blocks (%zu CBits "
              "calls)\n",
              out.c_str(), res.partial.size_bytes(), res.frames.size(),
              res.far_blocks, res.cbits_calls);
  return 0;
}

int cmd_apply(int argc, char** argv) {
  std::string out;
  std::vector<std::string> pos;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      pos.emplace_back(argv[i]);
    }
  }
  if (pos.size() != 2 || out.empty()) {
    throw JpgError(
        "usage: jpg_cli apply <base.bit> <partial.pbit> -o <updated.bit>");
  }
  const Bitstream base = Bitstream::load(pos[0]);
  const Bitstream partial = Bitstream::load(pos[1]);
  const Device& dev = device_for_bitstream(base);
  ConfigMemory mem(dev);
  ConfigPort port(mem);
  port.load(base);
  if (!port.started()) throw JpgError("base bitstream did not start up");
  port.load(partial);
  generate_full_bitstream(mem).save(out);
  std::printf("wrote %s (base + %zu partial frames)\n", out.c_str(),
              port.committed_frames().size() - dev.frames().num_frames());
  return 0;
}

int cmd_floorplan(int argc, char** argv) {
  if (argc != 2) {
    throw JpgError("usage: jpg_cli floorplan <base.bit> <mod.ucf>");
  }
  const Device& dev = device_for_bitstream(Bitstream::load(argv[0]));
  const UcfData ucf = parse_ucf(read_file(argv[1]), dev, argv[1]);
  std::vector<FloorplanEntry> entries;
  for (const auto& [group, region] : ucf.area_group_ranges) {
    entries.push_back({group, region});
  }
  const auto highlight = entries.empty()
                             ? std::nullopt
                             : std::optional<Region>(entries[0].region);
  std::printf("%s", render_floorplan(dev, entries, highlight).c_str());
  return 0;
}

int cmd_verify(int argc, char** argv) {
  if (argc != 2) {
    throw JpgError("usage: jpg_cli verify <base.bit> <partial.pbit>");
  }
  const Bitstream base = Bitstream::load(argv[0]);
  const Bitstream partial = Bitstream::load(argv[1]);
  const Device& dev = device_for_bitstream(base);

  // Board bring-up, download, then frame-by-frame readback comparison.
  SimBoard board(dev);
  board.send_config(base.words);
  board.send_config(partial.words);

  const BitstreamReader reader(partial);
  ConfigMemory expected(dev);
  {
    ConfigPort port(expected);
    port.load(base);
    port.load(partial);
  }
  std::size_t frames = 0, bad = 0;
  const std::size_t fw = dev.frames().frame_words();
  std::vector<std::uint32_t> buf(fw);
  for (const auto& [far, count] : reader.far_blocks(fw)) {
    const FrameAddress a = dev.frames().decode_far(far);
    const std::size_t first =
        dev.frames().frame_index(static_cast<int>(a.major),
                                 static_cast<int>(a.minor));
    for (std::size_t i = 0; i < count; ++i) {
      const auto words = board.readback(first + i, 1);
      expected.read_frame_words(first + i, buf.data());
      ++frames;
      if (words != buf) ++bad;
    }
  }
  std::printf("readback verification: %zu frames checked, %zu mismatches\n",
              frames, bad);
  return bad == 0 ? 0 : 1;
}

/// Parses a 1-based "R<r>C<c>" coordinate (the PARBIT options dialect).
void parse_rc(const std::string& s, int& r, int& c) {
  const std::size_t cpos = s.find('C', 1);
  if (s.empty() || s[0] != 'R' || cpos == std::string::npos) {
    throw JpgError("bad coordinate '" + s + "' (want R<row>C<col>, 1-based)");
  }
  const auto rr = parse_uint(std::string_view(s).substr(1, cpos - 1));
  const auto cc = parse_uint(std::string_view(s).substr(cpos + 1));
  if (!rr || !cc || *rr < 1 || *cc < 1) {
    throw JpgError("bad coordinate '" + s + "' (want R<row>C<col>, 1-based)");
  }
  r = static_cast<int>(*rr) - 1;
  c = static_cast<int>(*cc) - 1;
}

int cmd_relocate(int argc, char** argv) {
  std::string out, from, to;
  bool force = false;
  std::vector<std::string> pos;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) out = argv[++i];
    else if (std::strcmp(argv[i], "--from") == 0 && i + 1 < argc)
      from = argv[++i];
    else if (std::strcmp(argv[i], "--to") == 0 && i + 1 < argc) to = argv[++i];
    else if (std::strcmp(argv[i], "--force") == 0) force = true;
    else pos.emplace_back(argv[i]);
  }
  if (pos.size() != 2 || out.empty() || from.empty() || to.empty()) {
    throw JpgError(
        "usage: jpg_cli relocate <base.bit> <partial.pbit> "
        "--from R..C..:R..C.. --to R..C.. -o <out.pbit> [--force]");
  }
  const Bitstream base = Bitstream::load(pos[0]);
  const Bitstream partial = Bitstream::load(pos[1]);
  const Device& dev = device_for_bitstream(base);

  const auto parts = split(from, ':');
  if (parts.size() != 2) throw JpgError("--from wants R..C..:R..C..");
  Region src;
  parse_rc(parts[0], src.r0, src.c0);
  parse_rc(parts[1], src.r1, src.c1);
  int tr = 0, tc = 0;
  parse_rc(to, tr, tc);
  const Region dst{tr, tc, tr + src.height() - 1, tc + src.width() - 1};

  ConfigMemory plane(dev);
  {
    ConfigPort port(plane);
    port.load(base);
    if (!port.started()) throw JpgError("base bitstream did not start up");
  }
  const PartialBitstreamGenerator gen(plane);
  const PbitRelocator reloc(gen);
  const ConfigMemory decoded = reloc.decode(partial, src);
  const RelocCompat compat = reloc.check(decoded, src, dst);
  std::printf("shape         : %s\n",
              compat.shape_ok ? "compatible" : compat.shape_detail.c_str());
  std::printf("containment   : %zu crossing(s)%s\n", compat.crossings.size(),
              compat.drives_long_lines() ? " (drives long lines)" : "");
  for (std::size_t i = 0; i < compat.crossings.size() && i < 8; ++i) {
    std::printf("  crossing    : %s\n", compat.crossings[i].detail.c_str());
  }
  RelocOptions ropts;
  ropts.require_containment = !force;
  const PartialGenResult res = reloc.relocate(partial, src, dst, ropts);
  res.bitstream.save(out);
  std::printf("wrote %s (%s -> %s, %zu frames in %zu FAR blocks)\n",
              out.c_str(), src.to_string().c_str(), dst.to_string().c_str(),
              res.frames.size(), res.far_blocks);
  return 0;
}

int cmd_attest(int argc, char** argv) {
  std::vector<std::string> pos;
  std::vector<std::array<std::uint64_t, 3>> corruptions;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--corrupt") == 0 && i + 1 < argc) {
      const auto fields = split(argv[++i], ':');
      if (fields.size() != 3) throw JpgError("--corrupt wants FRAME:WORD:MASK");
      corruptions.push_back({std::strtoull(fields[0].c_str(), nullptr, 0),
                             std::strtoull(fields[1].c_str(), nullptr, 0),
                             std::strtoull(fields[2].c_str(), nullptr, 0)});
    } else {
      pos.emplace_back(argv[i]);
    }
  }
  if (pos.empty()) {
    throw JpgError(
        "usage: jpg_cli attest <base.bit> [partial.pbit ...] "
        "[--corrupt FRAME:WORD:MASK]");
  }
  const Bitstream base = Bitstream::load(pos[0]);
  const Device& dev = device_for_bitstream(base);
  std::vector<Bitstream> applied;
  for (std::size_t i = 1; i < pos.size(); ++i) {
    applied.push_back(Bitstream::load(pos[i]));
  }

  // Board bring-up with base + every partial, then (optionally) plant
  // strays the audit must flag.
  SimBoard board(dev);
  board.send_config(base.words);
  for (const Bitstream& p : applied) board.send_config(p.words);
  for (const auto& [frame, word, mask] : corruptions) {
    board.corrupt_frame_word(frame, word, static_cast<std::uint32_t>(mask));
  }

  ConfigMemory base_plane(dev);
  {
    ConfigPort port(base_plane);
    port.load(base);
    if (!port.started()) throw JpgError("base bitstream did not start up");
  }
  const ConfigMemory expected =
      reconstruct_expected_plane(base_plane, applied);
  VerifiedDownloader dl(board, dev);
  const AttestReport rep = dl.attest(expected);
  std::printf("%s\n", rep.summary().c_str());
  for (const AttestFinding& f : rep.findings) {
    std::printf("  stray       : %s word %zu expected %08x got %08x\n",
                f.address.c_str(), f.word, f.expected, f.got);
  }
  return rep.attested ? 0 : 1;
}

int cmd_project_new(int argc, char** argv) {
  if (argc != 3) {
    throw JpgError("usage: jpg_cli project-new <dir> <base.bit> <name>");
  }
  JpgProject p;
  p.name = argv[2];
  p.base = Bitstream::load(argv[1]);
  p.device_part = device_for_bitstream(p.base).spec().name;
  p.save(argv[0]);
  std::printf("created project '%s' in %s (device %s)\n", p.name.c_str(),
              argv[0], p.device_part.c_str());
  return 0;
}

int cmd_project_add(int argc, char** argv) {
  if (argc != 4) {
    throw JpgError(
        "usage: jpg_cli project-add <dir> <name> <mod.xdl> <mod.ucf>");
  }
  JpgProject p = JpgProject::load(argv[0]);
  p.modules.push_back({argv[1], read_file(argv[2]), read_file(argv[3])});
  p.save(argv[0]);
  std::printf("added module '%s' (%zu modules total)\n", argv[1],
              p.modules.size());
  return 0;
}

int cmd_project_build(int argc, char** argv) {
  if (argc != 2) {
    throw JpgError("usage: jpg_cli project-build <dir> <outdir>");
  }
  const JpgProject p = JpgProject::load(argv[0]);
  Jpg tool(p.base);
  std::filesystem::create_directories(argv[1]);
  for (const JpgModuleEntry& m : p.modules) {
    const auto res = tool.generate_partial_from_text(m.xdl_text, m.ucf_text);
    const std::string out =
        std::string(argv[1]) + "/" + m.name + ".pbit";
    res.partial.save(out);
    std::printf("%-16s -> %s (%zu bytes, %zu frames)\n", m.name.c_str(),
                out.c_str(), res.partial.size_bytes(), res.frames.size());
  }
  return 0;
}

int cmd_pnr(int argc, char** argv) {
  std::uint64_t seed = 1;
  int threads = 0;
  bool ref = false;
  std::vector<std::string> pos;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--ref") == 0) {
      ref = true;
    } else {
      pos.emplace_back(argv[i]);
    }
  }
  if (pos.size() != 3) {
    throw JpgError(
        "usage: jpg_cli pnr <part> <generator> <param> [--seed S] "
        "[--threads N] [--ref]");
  }
  const Device& dev = Device::get(pos[0]);
  const netlib::GeneratorInfo* gen = nullptr;
  for (const netlib::GeneratorInfo& g : netlib::registry()) {
    if (g.name == pos[1]) gen = &g;
  }
  if (gen == nullptr) {
    std::string known;
    for (const netlib::GeneratorInfo& g : netlib::registry()) {
      known += " " + g.name;
    }
    throw JpgError("unknown generator '" + pos[1] + "'; known:" + known);
  }
  FlowOptions opt;
  opt.seed = seed;
  opt.router.num_threads = threads;
  opt.router.reference_impl = ref;
  const BaseFlowResult res =
      run_base_flow(dev, gen->make(std::atoi(pos[2].c_str())), {}, opt);

  // FNV-1a over the routed nets, so runs at different --threads values can
  // be diffed for byte-identity by comparing one line of output.
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const RoutedNet& rn : res.design->routes) {
    mix(rn.net);
    for (const RoutedPip& p : rn.pips) {
      mix(static_cast<std::uint64_t>(p.tile.r));
      mix(static_cast<std::uint64_t>(p.tile.c));
      mix(static_cast<std::uint64_t>(p.dest_local));
      mix(p.sel);
    }
    for (const IobRoute& p : rn.iob_pips) {
      mix(p.site.side == Side::Left ? 0u : 1u);
      mix(static_cast<std::uint64_t>(p.site.row));
      mix(static_cast<std::uint64_t>(p.site.k));
      mix(p.omux_sel);
    }
  }
  std::printf("design        : %s param %s on %s (seed %llu)\n", pos[1].c_str(),
              pos[2].c_str(), dev.spec().name.c_str(),
              static_cast<unsigned long long>(seed));
  std::printf("packed        : %zu slices\n", res.pack_stats.slices);
  std::printf("routed        : %zu nets, %zu pips, %d iterations, %zu rounds "
              "(%zu retries)\n",
              res.design->routes.size(), res.route_stats.total_pips,
              res.route_stats.iterations, res.route_stats.spec_rounds,
              res.route_stats.spec_retries);
  std::printf("route digest  : %016llx\n", static_cast<unsigned long long>(h));
  return 0;
}

int cmd_fuzzcfg(int argc, char** argv) {
  FuzzOptions opts;
  std::string part = "XCV50";
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--iterations") == 0 && i + 1 < argc) {
      opts.iterations = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opts.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--device") == 0 && i + 1 < argc) {
      part = argv[++i];
    } else if (std::strcmp(argv[i], "--max-mutations") == 0 && i + 1 < argc) {
      opts.max_mutations = std::atoi(argv[++i]);
    } else {
      throw JpgError(
          "usage: jpg_cli fuzzcfg [--iterations N] [--seed S] "
          "[--device PART] [--max-mutations M]");
    }
  }
  const Device& dev = Device::get(part);
  const FrameMap& fm = dev.frames();
  const std::size_t fw = fm.frame_words();

  // Self-contained fixtures: a patterned full plane plus a small partial,
  // so the corpus holds both stream shapes the decoders must survive.
  ConfigMemory plane(dev);
  for (std::size_t f = 0; f < fm.num_frames(); f += 7) {
    for (std::size_t w = 0; w < fw; w += 3) {
      plane.frame(f).set_word(w, 0xC3000000u ^
                                     (static_cast<std::uint32_t>(f) << 8) ^
                                     static_cast<std::uint32_t>(w));
    }
  }
  const Bitstream full = generate_full_bitstream(plane);
  Bitstream partial;
  {
    BitstreamWriter w(dev);
    w.begin();
    w.write_cmd(Command::RCRC);
    w.write_reg(ConfigReg::FLR, static_cast<std::uint32_t>(fw - 1));
    w.write_reg(ConfigReg::IDCODE, dev.spec().idcode);
    w.write_cmd(Command::WCFG);
    w.write_reg(ConfigReg::FAR, fm.encode_far(fm.address_of_index(2)));
    w.write_frames(plane, 2, 3);
    w.write_crc();
    w.write_cmd(Command::LFRM);
    partial = w.finish();
  }

  // Relocated-stream corpus: a LUT-patterned module pbit generated at one
  // column plus its PbitRelocator retarget near the right edge. Mutants of
  // relocated streams replay through the same differential segment-cut
  // harness as the rest of the corpus, so a FAR-rewrite bug that only
  // manifests after chunked delivery still counts as a finding.
  const ConfigMemory empty_base(dev);
  const PartialBitstreamGenerator gen(empty_base);
  ConfigMemory modplane(dev);
  {
    CBits cb(modplane);
    for (int r = 0; r < dev.spec().clb_rows; ++r) {
      cb.set_lut(SliceSite{r, 1, 0}, LutSel::F,
                 static_cast<std::uint16_t>(0x5A5Au ^ (r * 131)));
    }
  }
  const Region reloc_src{0, 1, dev.spec().clb_rows - 1, 1};
  const Region reloc_dst{0, dev.spec().clb_cols - 2, dev.spec().clb_rows - 1,
                         dev.spec().clb_cols - 2};
  const PbitRelocator reloc(gen);
  const Bitstream at_src = gen.generate(modplane, reloc_src).bitstream;
  const Bitstream relocated =
      reloc.relocate(at_src, reloc_src, reloc_dst).bitstream;

  const std::array<Bitstream, 3> extra{partial, at_src, relocated};
  const FuzzReport rep = fuzz_config_streams(dev, full, extra, opts);
  std::printf("%s\n", rep.summary().c_str());
  std::printf("verdict       : %s\n", rep.clean() ? "clean" : "FINDINGS");
  return rep.clean() ? 0 : 1;
}

int cmd_download(int argc, char** argv) {
  FaultProfile profile;
  DownloadPolicy policy;
  std::uint64_t seed = 1;
  std::vector<std::string> pos;
  for (int i = 0; i < argc; ++i) {
    auto num = [&](double& out) {
      if (i + 1 >= argc) throw JpgError("missing value for " +
                                        std::string(argv[i]));
      out = std::atof(argv[++i]);
    };
    if (std::strcmp(argv[i], "--flip") == 0) num(profile.word_flip);
    else if (std::strcmp(argv[i], "--drop") == 0) num(profile.word_drop);
    else if (std::strcmp(argv[i], "--dup") == 0) num(profile.word_dup);
    else if (std::strcmp(argv[i], "--trunc") == 0) num(profile.truncate);
    else if (std::strcmp(argv[i], "--rb-flip") == 0) num(profile.readback_flip);
    else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      seed = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc)
      profile.fault_budget = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--attempts") == 0 && i + 1 < argc)
      policy.max_attempts = std::atoi(argv[++i]);
    else pos.emplace_back(argv[i]);
  }
  if (pos.size() != 2) {
    throw JpgError(
        "usage: jpg_cli download <base.bit> <partial.pbit> [--flip P] "
        "[--drop P] [--dup P] [--trunc P] [--rb-flip P] [--seed S] "
        "[--budget N] [--attempts N]");
  }
  const Bitstream base = Bitstream::load(pos[0]);
  const Bitstream partial = Bitstream::load(pos[1]);
  const Device& dev = device_for_bitstream(base);

  // Bring the simulated board up with the base design over a clean link,
  // then run the partial through the verified downloader over the faulty
  // one — the scenario of paper option 2 with an unreliable cable.
  SimBoard board(dev);
  board.send_config(base.words);
  FaultyBoard faulty(board, profile, seed);
  VerifiedDownloader dl(faulty, dev, policy);
  ConfigMemory base_plane(dev);
  {
    ConfigPort port(base_plane);
    port.load(base);
  }
  dl.assume_board_state(base_plane);
  const DownloadReport rep = dl.download_partial(partial);
  std::printf("%s\n", rep.summary().c_str());
  for (const std::string& line : rep.fault_log) {
    std::printf("  fault       : %s\n", line.c_str());
  }
  std::printf("board faults  : %zu injected\n", faulty.faults_injected());
  return rep.status == DownloadStatus::Failed ? 1 : 0;
}

int cmd_stats(int argc, char** argv) {
  std::string part = "XCV50";
  std::uint64_t seed = 1;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--part") == 0 && i + 1 < argc) {
      part = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      throw JpgError("usage: jpg_cli stats [--part PART] [--seed S]");
    }
  }
  const Device& dev = Device::get(part);

  // A representative run through every instrumented subsystem: P&R a small
  // design, generate a partial twice (miss then cache hit), then push it
  // through the verified downloader over a simulated board.
  FlowOptions fopt;
  fopt.seed = seed;
  const BaseFlowResult flow =
      run_base_flow(dev, netlib::make_counter(4), {}, fopt);
  std::printf("pnr           : %zu slices, %d route iterations\n",
              flow.pack_stats.slices, flow.route_stats.iterations);

  ConfigMemory base_plane(dev);
  const Bitstream full = generate_full_bitstream(base_plane);
  const Region region{0, 6, dev.rows() - 1, 9};
  ConfigMemory module_plane(dev);
  for (const int major : region.clb_majors(dev)) {
    const std::size_t idx = dev.frames().frame_index(major, 0);
    module_plane.frame(idx).set_word(1, 0xA5A5A5A5u);
  }
  PartialBitstreamGenerator gen(base_plane);
  const PartialGenResult miss = gen.generate(module_plane, region);
  const PartialGenResult hit = gen.generate(module_plane, region);
  std::printf("partial gen   : %zu frames, %zu bytes (second call cache_hit="
              "%llu)\n",
              miss.frames.size(), miss.bitstream.size_bytes(),
              static_cast<unsigned long long>(hit.telemetry.counter(
                  "cache_hit")));

  SimBoard board(dev);
  VerifiedDownloader dl(board, dev);
  const DownloadReport full_rep = dl.download_full(full);
  const DownloadReport part_rep = dl.download_partial(miss.bitstream);
  std::printf("download      : full %s, partial %s\n",
              std::string(download_status_name(full_rep.status)).c_str(),
              std::string(download_status_name(part_rep.status)).c_str());

  std::printf("%s\n",
              telemetry::MetricsRegistry::global().snapshot().to_json().c_str());
  return 0;
}

int cmd_serve(int argc, char** argv) {
  std::string part = "XCV50";
  std::size_t boards = 2, tenants = 4, slots = 2, variants = 4;
  std::size_t requests = 200;
  double rate_hz = 0;
  std::uint64_t seed = 1;
  ServiceConfig cfg;
  for (int i = 0; i < argc; ++i) {
    const auto num = [&](std::size_t& out) {
      out = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    };
    if (std::strcmp(argv[i], "--part") == 0 && i + 1 < argc) {
      part = argv[++i];
    } else if (std::strcmp(argv[i], "--boards") == 0 && i + 1 < argc) {
      num(boards);
    } else if (std::strcmp(argv[i], "--tenants") == 0 && i + 1 < argc) {
      num(tenants);
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      num(requests);
    } else if (std::strcmp(argv[i], "--slots") == 0 && i + 1 < argc) {
      num(slots);
    } else if (std::strcmp(argv[i], "--variants") == 0 && i + 1 < argc) {
      num(variants);
    } else if (std::strcmp(argv[i], "--queue-depth") == 0 && i + 1 < argc) {
      num(cfg.queue_depth);
    } else if (std::strcmp(argv[i], "--quota") == 0 && i + 1 < argc) {
      num(cfg.tenant_quota);
    } else if (std::strcmp(argv[i], "--rate") == 0 && i + 1 < argc) {
      rate_hz = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      throw JpgError(
          "usage: jpg_cli serve [--part PART] [--boards N] [--tenants N] "
          "[--requests N] [--rate HZ] [--seed S] [--queue-depth N] "
          "[--quota N] [--slots N] [--variants N]");
    }
  }
  const Device& dev = Device::get(part);
  const LoadFixture fx = make_load_fixture(dev, seed, slots, variants);
  cfg.stream.overlap_verify = true;
  ReconfigService svc(dev, fx.base, boards, cfg);
  PoissonLoadOptions opt;
  opt.requests = requests;
  opt.tenants = tenants;
  opt.rate_hz = rate_hz;
  opt.seed = seed;
  const PoissonLoadResult res = run_poisson_load(svc, fx, opt);
  svc.shutdown();
  const ServiceStats st = svc.stats();

  std::printf("service       : %s, %zu boards, %zu tenants, %zu slots x %zu "
              "variants\n",
              part.c_str(), boards, tenants, slots, variants);
  std::printf("load          : %zu requests, offered %.1f req/s (%s)\n",
              requests, res.offered_rate_hz,
              rate_hz > 0 ? "open-loop Poisson" : "back-to-back");
  std::printf("completed     : %zu (%zu resident hits), rejected %zu, "
              "failed %zu\n",
              res.completed, res.resident_hits, res.rejected, res.failed);
  std::printf("latency       : p50 %.2f ms, p99 %.2f ms\n",
              static_cast<double>(percentile_ns(res.latencies_ns, 50)) / 1e6,
              static_cast<double>(percentile_ns(res.latencies_ns, 99)) / 1e6);
  std::printf("throughput    : %.1f swaps/s over %.2f s\n", res.swaps_per_sec(),
              res.elapsed_sec);
  std::printf("queue         : peak %zu of depth %zu; %llu DRR rounds\n",
              st.queue_peak, cfg.queue_depth,
              static_cast<unsigned long long>(st.drr_rounds));
  for (const auto& [name, ts] : st.tenants) {
    std::printf("tenant %-7s: %llu done, %llu rejected, %llu resident hits, "
                "%llu quota evictions (peak %zu of quota %zu)\n",
                name.c_str(), static_cast<unsigned long long>(ts.completed),
                static_cast<unsigned long long>(ts.rejected),
                static_cast<unsigned long long>(ts.resident_hits),
                static_cast<unsigned long long>(ts.quota_evictions),
                ts.resident_peak, cfg.tenant_quota);
  }
  return res.failed == 0 ? 0 : 1;
}

int cmd_proptest(int argc, char** argv) {
  std::string part = "XCV50";
  std::uint64_t seed = 1;
  std::uint64_t raw_seed = 0;
  bool have_raw = false;
  int count = 20;
  bool shrink = false;
  std::string repro_dir = "proptest-repros";
  testing::OracleOptions oopt;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--device") == 0 && i + 1 < argc) {
      part = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--raw-seed") == 0 && i + 1 < argc) {
      raw_seed = std::strtoull(argv[++i], nullptr, 10);
      have_raw = true;
    } else if (std::strcmp(argv[i], "--count") == 0 && i + 1 < argc) {
      count = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--cycles") == 0 && i + 1 < argc) {
      oopt.cycles = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--shrink") == 0) {
      shrink = true;
    } else if (std::strcmp(argv[i], "--fault-tier") == 0) {
      oopt.fault_tier = true;
    } else if (std::strcmp(argv[i], "--repro-dir") == 0 && i + 1 < argc) {
      repro_dir = argv[++i];
    } else {
      throw JpgError(
          "usage: jpg_cli proptest [--device PART] [--seed S] [--count N] "
          "[--raw-seed R] [--cycles C] [--shrink] [--repro-dir DIR] "
          "[--fault-tier]");
    }
  }

  std::size_t passed = 0, failed = 0, infeasible = 0, properties = 0;
  const auto run_one = [&](std::uint64_t rs) {
    const testing::GeneratedDesign design = testing::generate_sampled(part, rs);
    const testing::OracleResult res = testing::run_oracle(design, oopt);
    properties += res.properties_checked;
    switch (res.status) {
      case testing::OracleStatus::Pass:
        ++passed;
        return;
      case testing::OracleStatus::Infeasible:
        ++infeasible;
        std::printf("infeasible    : raw-seed %llu (%s: %s)\n",
                    static_cast<unsigned long long>(rs), res.property.c_str(),
                    res.detail.c_str());
        return;
      case testing::OracleStatus::Fail:
        break;
    }
    ++failed;
    std::printf("FAIL          : property %s — %s\n", res.property.c_str(),
                res.detail.c_str());
    std::printf("  repro       : jpg_cli proptest --device %s --raw-seed %llu"
                " --cycles %d%s\n",
                part.c_str(), static_cast<unsigned long long>(rs), oopt.cycles,
                oopt.fault_tier ? " --fault-tier" : "");
    if (shrink) {
      const testing::ShrinkReport rep = testing::shrink_design(
          design,
          [&](const testing::GeneratedDesign& d) {
            return testing::run_oracle(d, oopt);
          });
      const std::string path = testing::write_repro(
          repro_dir, rep.minimised, rep.failure, rep.cells_before);
      std::printf("  shrunk      : %zu -> %zu cells in %zu oracle runs\n",
                  rep.cells_before, rep.cells_after, rep.oracle_runs);
      std::printf("  repro file  : %s\n", path.c_str());
    }
  };

  if (have_raw) {
    run_one(raw_seed);
  } else {
    // Per-design seeds come from split(), so any single design replays
    // standalone from its printed raw seed, independent of count/order.
    const Rng root(seed);
    for (int i = 0; i < count; ++i) {
      run_one(root.split(static_cast<std::uint64_t>(i)).next());
    }
  }
  std::printf("proptest      : %s — %zu designs: %zu pass, %zu fail, "
              "%zu infeasible (%zu properties checked)\n",
              part.c_str(), passed + failed + infeasible, passed, failed,
              infeasible, properties);
  return failed == 0 ? 0 : 1;
}

// `sched` — the scheduler oracle sweep (docs/SCHEDULER.md): random task
// graphs run as concurrent apps on an AcceleratorScheduler over the shared
// uniform-socket fixture, each batch checked against the property chain of
// testing/sched_oracle.h. Any failure replays standalone from its printed
// raw seed.
int cmd_sched(int argc, char** argv) {
  std::string part = "XCV50";
  std::uint64_t seed = 1;
  std::uint64_t raw_seed = 0;
  bool have_raw = false;
  int count = 20;
  int batch = 4;
  testing::SchedOracleOptions sopt;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--device") == 0 && i + 1 < argc) {
      part = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--raw-seed") == 0 && i + 1 < argc) {
      raw_seed = std::strtoull(argv[++i], nullptr, 10);
      have_raw = true;
    } else if (std::strcmp(argv[i], "--count") == 0 && i + 1 < argc) {
      count = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
      batch = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--cycles") == 0 && i + 1 < argc) {
      sopt.sim_cycles = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--boards") == 0 && i + 1 < argc) {
      sopt.num_boards = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--fault-tier") == 0) {
      sopt.fault_tier = true;
    } else if (std::strcmp(argv[i], "--defrag") == 0) {
      sopt.defrag_mid_run = true;
    } else {
      throw JpgError(
          "usage: jpg_cli sched [--device PART] [--seed S] [--count N] "
          "[--batch B] [--raw-seed R] [--cycles C] [--boards N] "
          "[--fault-tier] [--defrag]");
    }
  }
  JPG_REQUIRE(count >= 1 && batch >= 1, "count and batch must be positive");

  const sched::SchedFixture& fixture = sched::SchedFixture::shared(part);
  sched::TaskGraphOptions gopt;
  gopt.num_impls = fixture.impls_per_kernel();

  std::size_t passed = 0, failed = 0, properties = 0;
  std::uint64_t dep_violations = 0;
  // One raw seed = one batch of graphs run as concurrent apps, so a failure
  // replays standalone with --raw-seed regardless of count/order.
  const auto run_one = [&](std::uint64_t rs, int graphs_in_batch) {
    Rng rng(rs);
    std::vector<sched::TaskGraph> graphs;
    for (int g = 0; g < graphs_in_batch; ++g) {
      graphs.push_back(sched::random_task_graph(
          rng, fixture.kernels(), gopt, "app" + std::to_string(g)));
    }
    const testing::SchedOracleResult res =
        testing::run_sched_oracle(fixture, graphs, sopt);
    properties += res.properties_checked;
    dep_violations += res.sched_stats.dep_violations;
    if (res.ok()) {
      passed += graphs.size();
      return;
    }
    failed += graphs.size();
    std::printf("FAIL          : property %s — %s\n", res.property.c_str(),
                res.detail.c_str());
    std::printf("  repro       : jpg_cli sched --device %s --raw-seed %llu "
                "--batch %d --cycles %d%s%s\n",
                part.c_str(), static_cast<unsigned long long>(rs),
                graphs_in_batch, sopt.sim_cycles,
                sopt.fault_tier ? " --fault-tier" : "",
                sopt.defrag_mid_run ? " --defrag" : "");
  };

  if (have_raw) {
    run_one(raw_seed, batch);
  } else {
    const Rng root(seed);
    std::uint64_t batch_idx = 0;
    for (int done = 0; done < count; done += batch) {
      const int n = std::min(batch, count - done);
      run_one(root.split(batch_idx++).next(), n);
    }
  }
  std::printf("sched         : %s — %zu graphs: %zu pass, %zu fail "
              "(%zu properties checked, %llu dependency violations)\n",
              part.c_str(), passed + failed, passed, failed, properties,
              static_cast<unsigned long long>(dep_violations));
  return failed == 0 && dep_violations == 0 ? 0 : 1;
}

int usage() {
  std::fprintf(stderr,
               "jpg_cli — partial bitstream generation (jpg-cpp)\n"
               "commands: info summarize partial apply floorplan verify\n"
               "          relocate attest project-new project-add\n"
               "          project-build pnr fuzzcfg download stats serve\n"
               "          proptest sched\n"
               "global flags: [--metrics <file>] [--trace <file>]\n");
  return 2;
}

}  // namespace
}  // namespace jpg::cli

namespace jpg::cli {
namespace {

int dispatch(const std::string& cmd, int argc, char** argv) {
  if (cmd == "info") return cmd_info(argc, argv);
  if (cmd == "summarize") return cmd_summarize(argc, argv);
  if (cmd == "partial") return cmd_partial(argc, argv);
  if (cmd == "apply") return cmd_apply(argc, argv);
  if (cmd == "floorplan") return cmd_floorplan(argc, argv);
  if (cmd == "verify") return cmd_verify(argc, argv);
  if (cmd == "relocate") return cmd_relocate(argc, argv);
  if (cmd == "attest") return cmd_attest(argc, argv);
  if (cmd == "project-new") return cmd_project_new(argc, argv);
  if (cmd == "project-add") return cmd_project_add(argc, argv);
  if (cmd == "project-build") return cmd_project_build(argc, argv);
  if (cmd == "pnr") return cmd_pnr(argc, argv);
  if (cmd == "fuzzcfg") return cmd_fuzzcfg(argc, argv);
  if (cmd == "download") return cmd_download(argc, argv);
  if (cmd == "stats") return cmd_stats(argc, argv);
  if (cmd == "serve") return cmd_serve(argc, argv);
  if (cmd == "proptest") return cmd_proptest(argc, argv);
  if (cmd == "sched") return cmd_sched(argc, argv);
  return usage();
}

}  // namespace
}  // namespace jpg::cli

int main(int argc, char** argv) {
  using namespace jpg::cli;
  if (argc < 2) return usage();

  // Strip the global telemetry flags wherever they appear, so every command
  // composes with them: jpg_cli partial ... --metrics run.json --trace t.json
  std::string metrics_path;
  std::string trace_path;
  std::vector<char*> rest;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      rest.push_back(argv[i]);
    }
  }
  if (rest.empty()) return usage();
  const std::string cmd = rest[0];
  if (!trace_path.empty()) {
    jpg::telemetry::TraceBuffer::global().set_enabled(true);
  }

  int rc;
  try {
    rc = dispatch(cmd, static_cast<int>(rest.size()) - 1, rest.data() + 1);
  } catch (const jpg::JpgError& e) {
    std::fprintf(stderr, "jpg_cli %s: error: %s\n", cmd.c_str(), e.what());
    rc = 1;
  }

  // Telemetry export happens after the command (success or not); a path we
  // cannot write is its own failure class so scripts can tell it apart.
  if (!metrics_path.empty() &&
      !jpg::telemetry::MetricsRegistry::global().write_json(metrics_path)) {
    return 3;
  }
  if (!trace_path.empty() &&
      !jpg::telemetry::TraceBuffer::global().write_chrome_trace(trace_path)) {
    return 3;
  }
  return rc;
}
