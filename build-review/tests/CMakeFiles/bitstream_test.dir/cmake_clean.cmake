file(REMOVE_RECURSE
  "CMakeFiles/bitstream_test.dir/bitstream_test.cpp.o"
  "CMakeFiles/bitstream_test.dir/bitstream_test.cpp.o.d"
  "bitstream_test"
  "bitstream_test.pdb"
  "bitstream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitstream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
