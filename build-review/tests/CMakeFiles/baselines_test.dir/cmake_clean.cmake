file(REMOVE_RECURSE
  "CMakeFiles/baselines_test.dir/baselines_test.cpp.o"
  "CMakeFiles/baselines_test.dir/baselines_test.cpp.o.d"
  "baselines_test"
  "baselines_test.pdb"
  "baselines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
