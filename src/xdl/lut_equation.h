// LUT equation syntax, as quoted in the paper's sample XDL:
//   F:u1/C307:#LUT:D=(A1@A4)
//
// Grammar (precedence low to high):
//   expr   := term ('+' term)*          OR
//   term   := xterm ('@' xterm)*        XOR
//   xterm  := factor ('*' factor)*      AND
//   factor := '~' factor | '(' expr ')' | A1 | A2 | A3 | A4 | 0 | 1
//
// Truth tables are 16-bit masks with bit index A1 + 2*A2 + 4*A3 + 8*A4.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace jpg {

/// Parses an equation (or a "0x####" literal) into a LUT init mask.
/// Throws JpgError on malformed input.
[[nodiscard]] std::uint16_t parse_lut_equation(std::string_view expr);

/// Renders an init mask as an equation (sum of products; "0"/"1" for
/// constants). parse_lut_equation(lut_equation_from_init(m)) == m.
[[nodiscard]] std::string lut_equation_from_init(std::uint16_t init);

}  // namespace jpg
