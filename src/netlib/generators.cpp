#include "netlib/generators.h"

#include <sstream>

#include "support/error.h"

namespace jpg::netlib {

namespace {

std::string idx_name(const std::string& base, int i) {
  std::ostringstream os;
  os << base << i;
  return os.str();
}

/// Builds an XOR (parity) tree over `inputs`, returning the output net.
/// Uses 4-ary reduction so depth is log4(n).
NetId xor_tree(Netlist& nl, std::vector<NetId> inputs,
               const std::string& prefix) {
  JPG_REQUIRE(!inputs.empty(), "xor tree needs at least one input");
  const std::uint16_t xor4 = lut_init_from(
      [](bool a, bool b, bool c, bool d) { return a ^ b ^ c ^ d; });
  int stage = 0;
  while (inputs.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i < inputs.size(); i += 4) {
      const std::size_t take = std::min<std::size_t>(4, inputs.size() - i);
      if (take == 1) {
        next.push_back(inputs[i]);
        continue;
      }
      std::array<NetId, 4> in = {kNullNet, kNullNet, kNullNet, kNullNet};
      for (std::size_t j = 0; j < take; ++j) in[j] = inputs[i + j];
      // Unconnected inputs read 0, which is the XOR identity.
      const NetId out = nl.add_net(prefix + "_x" + std::to_string(stage) + "_" +
                                   std::to_string(i / 4));
      nl.add_lut(prefix + "_xl" + std::to_string(stage) + "_" +
                     std::to_string(i / 4),
                 xor4, in, out);
      next.push_back(out);
    }
    inputs = std::move(next);
    ++stage;
  }
  return inputs[0];
}

/// Builds an AND tree over `inputs`, returning the output net.
NetId and_tree(Netlist& nl, std::vector<NetId> inputs,
               const std::string& prefix) {
  JPG_REQUIRE(!inputs.empty(), "and tree needs at least one input");
  int stage = 0;
  while (inputs.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i < inputs.size(); i += 4) {
      const std::size_t take = std::min<std::size_t>(4, inputs.size() - i);
      if (take == 1) {
        next.push_back(inputs[i]);
        continue;
      }
      std::array<NetId, 4> in = {kNullNet, kNullNet, kNullNet, kNullNet};
      for (std::size_t j = 0; j < take; ++j) in[j] = inputs[i + j];
      // AND of the *connected* inputs: unconnected ones read 0, so the mask
      // must treat them as don't-cares fixed at 0.
      const std::uint16_t init = lut_init_from(
          [take](bool a, bool b, bool c, bool d) {
            const bool v[4] = {a, b, c, d};
            for (std::size_t j = 0; j < take; ++j) {
              if (!v[j]) return false;
            }
            return true;
          });
      const NetId out = nl.add_net(prefix + "_a" + std::to_string(stage) + "_" +
                                   std::to_string(i / 4));
      nl.add_lut(prefix + "_al" + std::to_string(stage) + "_" +
                     std::to_string(i / 4),
                 init, in, out);
      next.push_back(out);
    }
    inputs = std::move(next);
    ++stage;
  }
  return inputs[0];
}

}  // namespace

std::uint16_t lut_init_from(
    const std::function<bool(bool, bool, bool, bool)>& f) {
  std::uint16_t init = 0;
  for (int i = 0; i < 16; ++i) {
    if (f((i & 1) != 0, (i & 2) != 0, (i & 4) != 0, (i & 8) != 0)) {
      init |= static_cast<std::uint16_t>(1u << i);
    }
  }
  return init;
}

std::uint16_t lut_and2() {
  return lut_init_from([](bool a, bool b, bool, bool) { return a && b; });
}
std::uint16_t lut_or2() {
  return lut_init_from([](bool a, bool b, bool, bool) { return a || b; });
}
std::uint16_t lut_xor2() {
  return lut_init_from([](bool a, bool b, bool, bool) { return a != b; });
}
std::uint16_t lut_xnor2() {
  return lut_init_from([](bool a, bool b, bool, bool) { return a == b; });
}
std::uint16_t lut_not1() {
  return lut_init_from([](bool a, bool, bool, bool) { return !a; });
}
std::uint16_t lut_buf1() {
  return lut_init_from([](bool a, bool, bool, bool) { return a; });
}

Netlist make_counter(int width, const std::string& name) {
  JPG_REQUIRE(width >= 1 && width <= 64, "counter width out of range");
  Netlist nl(name);
  std::vector<NetId> q(static_cast<std::size_t>(width));
  std::vector<NetId> d(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    q[static_cast<std::size_t>(i)] = nl.add_net(idx_name("q", i));
    d[static_cast<std::size_t>(i)] = nl.add_net(idx_name("d", i));
  }
  // carry[i] = q0 & q1 & ... & qi ; d[i] = q[i] ^ carry[i-1]
  NetId carry = kNullNet;
  for (int i = 0; i < width; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    if (i == 0) {
      nl.add_lut(idx_name("inv", i), lut_not1(),
                 {q[ui], kNullNet, kNullNet, kNullNet}, d[ui]);
      carry = q[0];
    } else {
      nl.add_lut(idx_name("sum", i), lut_xor2(),
                 {q[ui], carry, kNullNet, kNullNet}, d[ui]);
      if (i + 1 < width) {
        const NetId nc = nl.add_net(idx_name("c", i));
        nl.add_lut(idx_name("cl", i), lut_and2(),
                   {q[ui], carry, kNullNet, kNullNet}, nc);
        carry = nc;
      }
    }
    nl.add_dff(idx_name("ff", i), d[ui], q[ui]);
    nl.add_obuf(idx_name("ob", i), idx_name("q", i), q[ui]);
  }
  return nl;
}

Netlist make_gray_counter(int width, const std::string& name) {
  JPG_REQUIRE(width >= 2 && width <= 64, "gray counter width out of range");
  Netlist nl = make_counter(width, name);
  // Gray output g[i] = q[i] ^ q[i+1]; g[msb] = q[msb]. Tap the q nets.
  for (int i = 0; i < width; ++i) {
    const NetId qi = *nl.find_net(idx_name("q", i));
    const NetId g = nl.add_net(idx_name("g", i));
    if (i + 1 < width) {
      const NetId qn = *nl.find_net(idx_name("q", i + 1));
      nl.add_lut(idx_name("gl", i), lut_xor2(),
                 {qi, qn, kNullNet, kNullNet}, g);
    } else {
      nl.add_lut(idx_name("gl", i), lut_buf1(),
                 {qi, kNullNet, kNullNet, kNullNet}, g);
    }
    nl.add_obuf(idx_name("gob", i), idx_name("g", i), g);
  }
  return nl;
}

Netlist make_lfsr(int width, std::vector<int> taps, const std::string& name) {
  JPG_REQUIRE(width >= 2 && width <= 64, "LFSR width out of range");
  if (taps.empty()) {
    // Default: feedback from the last two stages (maximal for many widths;
    // period is irrelevant to the flow, determinism is what matters).
    taps = {width - 1, width - 2};
  }
  Netlist nl(name);
  std::vector<NetId> q(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    q[static_cast<std::size_t>(i)] = nl.add_net(idx_name("q", i));
  }
  std::vector<NetId> tap_nets;
  for (const int t : taps) {
    JPG_REQUIRE(t >= 0 && t < width, "LFSR tap out of range");
    tap_nets.push_back(q[static_cast<std::size_t>(t)]);
  }
  const NetId fb = xor_tree(nl, tap_nets, "fb");
  for (int i = 0; i < width; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    const NetId d = i == 0 ? fb : q[ui - 1];
    // Stage 0 seeded to 1 so the register never sticks at all-zero.
    nl.add_dff(idx_name("ff", i), d, q[ui], /*init=*/i == 0);
    nl.add_obuf(idx_name("ob", i), idx_name("q", i), q[ui]);
  }
  return nl;
}

Netlist make_shift_register(int width, const std::string& name) {
  JPG_REQUIRE(width >= 1 && width <= 128, "shift register width out of range");
  Netlist nl(name);
  const NetId si = nl.add_net("si");
  nl.add_ibuf("ib_si", "si", si);
  NetId prev = si;
  for (int i = 0; i < width; ++i) {
    const NetId qi = nl.add_net(idx_name("q", i));
    nl.add_dff(idx_name("ff", i), prev, qi);
    nl.add_obuf(idx_name("ob", i), idx_name("q", i), qi);
    prev = qi;
  }
  return nl;
}

Netlist make_nrz_encoder(const std::string& name) {
  Netlist nl(name);
  const NetId d = nl.add_net("d");
  const NetId nrz = nl.add_net("nrz");
  const NetId nxt = nl.add_net("nxt");
  nl.add_ibuf("ib_d", "d", d);
  // NRZI: output toggles whenever the data bit is 1.
  nl.add_lut("enc", lut_xor2(), {d, nrz, kNullNet, kNullNet}, nxt);
  nl.add_dff("nrz_reg", nxt, nrz);
  nl.add_obuf("ob_nrz", "nrz", nrz);
  return nl;
}

Netlist make_matcher(const std::vector<bool>& pattern, const std::string& name) {
  JPG_REQUIRE(!pattern.empty() && pattern.size() <= 64,
              "pattern length out of range");
  Netlist nl(name);
  const NetId si = nl.add_net("si");
  nl.add_ibuf("ib_si", "si", si);
  // Shift register tapped against the pattern.
  std::vector<NetId> match_bits;
  NetId prev = si;
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    const NetId qi = nl.add_net(idx_name("q", static_cast<int>(i)));
    nl.add_dff(idx_name("ff", static_cast<int>(i)), prev, qi);
    prev = qi;
    if (pattern[i]) {
      match_bits.push_back(qi);
    } else {
      const NetId inv = nl.add_net(idx_name("nq", static_cast<int>(i)));
      nl.add_lut(idx_name("invl", static_cast<int>(i)), lut_not1(),
                 {qi, kNullNet, kNullNet, kNullNet}, inv);
      match_bits.push_back(inv);
    }
  }
  const NetId hit = and_tree(nl, match_bits, "m");
  const NetId match_q = nl.add_net("match_q");
  nl.add_dff("match_ff", hit, match_q);
  nl.add_obuf("ob_match", "match", match_q);
  return nl;
}

Netlist make_toggler(const std::string& name) {
  Netlist nl(name);
  const NetId t = nl.add_net("t");
  const NetId nt = nl.add_net("nt");
  nl.add_lut("inv", lut_not1(), {t, kNullNet, kNullNet, kNullNet}, nt);
  nl.add_dff("ff", nt, t);
  nl.add_obuf("ob_t", "t", t);
  return nl;
}

Netlist make_johnson(int width, const std::string& name) {
  JPG_REQUIRE(width >= 2 && width <= 64, "johnson width out of range");
  Netlist nl(name);
  std::vector<NetId> q(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    q[static_cast<std::size_t>(i)] = nl.add_net(idx_name("q", i));
  }
  // q0 <- ~q[last]; q[i] <- q[i-1].
  const NetId fb = nl.add_net("fb");
  nl.add_lut("fbl", lut_not1(),
             {q[static_cast<std::size_t>(width - 1)], kNullNet, kNullNet,
              kNullNet},
             fb);
  for (int i = 0; i < width; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    nl.add_dff(idx_name("ff", i), i == 0 ? fb : q[ui - 1], q[ui]);
    nl.add_obuf(idx_name("ob", i), idx_name("q", i), q[ui]);
  }
  return nl;
}

Netlist make_fir(int taps, const std::string& name) {
  JPG_REQUIRE(taps >= 1 && taps <= 32, "FIR tap count out of range");
  Netlist nl(name);
  const NetId d = nl.add_net("d");
  nl.add_ibuf("ib_d", "d", d);
  // Delay line d -> z1 -> z2 -> ... -> z<taps>.
  std::vector<NetId> terms = {d};
  NetId prev = d;
  for (int i = 1; i <= taps; ++i) {
    const NetId z = nl.add_net(idx_name("z", i));
    nl.add_dff(idx_name("ff", i), prev, z);
    terms.push_back(z);
    prev = z;
  }
  const NetId sum = xor_tree(nl, terms, "s");
  const NetId y = nl.add_net("y");
  nl.add_dff("y_reg", sum, y);
  nl.add_obuf("ob_y", "y", y);
  return nl;
}

Netlist make_accumulator(int width, const std::string& name) {
  JPG_REQUIRE(width >= 1 && width <= 64, "accumulator width out of range");
  Netlist nl(name);
  const NetId d = nl.add_net("d");
  nl.add_ibuf("ib_d", "d", d);
  // q += d: ripple increment gated by the input bit (carry0 = d).
  NetId carry = d;
  for (int i = 0; i < width; ++i) {
    const NetId q = nl.add_net(idx_name("q", i));
    const NetId nx = nl.add_net(idx_name("d", i));
    nl.add_lut(idx_name("sum", i), lut_xor2(),
               {q, carry, kNullNet, kNullNet}, nx);
    if (i + 1 < width) {
      const NetId nc = nl.add_net(idx_name("c", i));
      nl.add_lut(idx_name("cl", i), lut_and2(),
                 {q, carry, kNullNet, kNullNet}, nc);
      carry = nc;
    }
    nl.add_dff(idx_name("ff", i), nx, q);
    nl.add_obuf(idx_name("ob", i), idx_name("q", i), q);
  }
  return nl;
}

Netlist make_scrambler(int width, const std::string& name) {
  JPG_REQUIRE(width >= 2 && width <= 64, "scrambler width out of range");
  Netlist nl(name);
  const NetId d = nl.add_net("d");
  nl.add_ibuf("ib_d", "d", d);
  std::vector<NetId> q(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    q[static_cast<std::size_t>(i)] = nl.add_net(idx_name("q", i));
  }
  // fb = d ^ q[last] ^ q[last-1]; same tap choice as make_lfsr's default.
  const std::uint16_t xor3 = lut_init_from(
      [](bool a, bool b, bool c, bool) { return a ^ b ^ c; });
  const NetId fb = nl.add_net("fb");
  nl.add_lut("fbl", xor3,
             {d, q[static_cast<std::size_t>(width - 1)],
              q[static_cast<std::size_t>(width - 2)], kNullNet},
             fb);
  for (int i = 0; i < width; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    nl.add_dff(idx_name("ff", i), i == 0 ? fb : q[ui - 1], q[ui],
               /*init=*/i == 0);
  }
  nl.add_obuf("ob_y", "y", q[static_cast<std::size_t>(width - 1)]);
  return nl;
}

Netlist make_adder(int width, const std::string& name) {
  JPG_REQUIRE(width >= 1 && width <= 64, "adder width out of range");
  Netlist nl(name);
  const std::uint16_t sum3 = lut_init_from(
      [](bool a, bool b, bool c, bool) { return a ^ b ^ c; });
  const std::uint16_t carry3 = lut_init_from(
      [](bool a, bool b, bool c, bool) { return (a && b) || (a && c) || (b && c); });
  NetId carry = kNullNet;
  for (int i = 0; i < width; ++i) {
    const NetId a = nl.add_net(idx_name("a", i));
    const NetId b = nl.add_net(idx_name("b", i));
    const NetId s = nl.add_net(idx_name("s", i));
    nl.add_ibuf(idx_name("iba", i), idx_name("a", i), a);
    nl.add_ibuf(idx_name("ibb", i), idx_name("b", i), b);
    nl.add_lut(idx_name("sl", i), sum3, {a, b, carry, kNullNet}, s);
    const NetId nc = nl.add_net(idx_name("c", i));
    nl.add_lut(idx_name("cl", i), carry3, {a, b, carry, kNullNet}, nc);
    carry = nc;
    nl.add_obuf(idx_name("ob", i), idx_name("s", i), s);
  }
  nl.add_obuf("ob_cout", "cout", carry);
  return nl;
}

Netlist make_comparator(int width, const std::string& name) {
  JPG_REQUIRE(width >= 1 && width <= 64, "comparator width out of range");
  Netlist nl(name);
  std::vector<NetId> eq_bits;
  for (int i = 0; i < width; ++i) {
    const NetId a = nl.add_net(idx_name("a", i));
    const NetId b = nl.add_net(idx_name("b", i));
    const NetId e = nl.add_net(idx_name("e", i));
    nl.add_ibuf(idx_name("iba", i), idx_name("a", i), a);
    nl.add_ibuf(idx_name("ibb", i), idx_name("b", i), b);
    nl.add_lut(idx_name("el", i), lut_xnor2(), {a, b, kNullNet, kNullNet}, e);
    eq_bits.push_back(e);
  }
  const NetId eq = and_tree(nl, eq_bits, "eq");
  nl.add_obuf("ob_eq", "eq", eq);
  return nl;
}

Netlist make_parity(int width, const std::string& name) {
  JPG_REQUIRE(width >= 1 && width <= 64, "parity width out of range");
  Netlist nl(name);
  std::vector<NetId> xs;
  for (int i = 0; i < width; ++i) {
    const NetId x = nl.add_net(idx_name("x", i));
    nl.add_ibuf(idx_name("ib", i), idx_name("x", i), x);
    xs.push_back(x);
  }
  const NetId p = xor_tree(nl, xs, "p");
  nl.add_obuf("ob_p", "p", p);
  return nl;
}

Netlist make_mux_tree(int sel_bits, const std::string& name) {
  JPG_REQUIRE(sel_bits >= 1 && sel_bits <= 4, "mux select width out of range");
  Netlist nl(name);
  const int n = 1 << sel_bits;
  std::vector<NetId> data;
  for (int i = 0; i < n; ++i) {
    const NetId d = nl.add_net(idx_name("d", i));
    nl.add_ibuf(idx_name("ibd", i), idx_name("d", i), d);
    data.push_back(d);
  }
  std::vector<NetId> sel;
  for (int i = 0; i < sel_bits; ++i) {
    const NetId s = nl.add_net(idx_name("s", i));
    nl.add_ibuf(idx_name("ibs", i), idx_name("s", i), s);
    sel.push_back(s);
  }
  // Reduce pairwise per select bit: 2:1 muxes (a, b, s).
  const std::uint16_t mux2 = lut_init_from(
      [](bool a, bool b, bool s, bool) { return s ? b : a; });
  std::vector<NetId> cur = data;
  for (int level = 0; level < sel_bits; ++level) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < cur.size(); i += 2) {
      const NetId y = nl.add_net("m" + std::to_string(level) + "_" +
                                 std::to_string(i / 2));
      nl.add_lut("ml" + std::to_string(level) + "_" + std::to_string(i / 2),
                 mux2,
                 {cur[i], cur[i + 1], sel[static_cast<std::size_t>(level)],
                  kNullNet},
                 y);
      next.push_back(y);
    }
    cur = std::move(next);
  }
  JPG_ASSERT(cur.size() == 1);
  nl.add_obuf("ob_y", "y", cur[0]);
  return nl;
}

Netlist make_alu_lite(int width, const std::string& name) {
  JPG_REQUIRE(width >= 1 && width <= 32, "ALU width out of range");
  Netlist nl(name);
  const NetId op0 = nl.add_net("op0");
  const NetId op1 = nl.add_net("op1");
  nl.add_ibuf("ibop0", "op0", op0);
  nl.add_ibuf("ibop1", "op1", op1);
  const std::uint16_t sum3 = lut_init_from(
      [](bool a, bool b, bool c, bool) { return a ^ b ^ c; });
  const std::uint16_t carry3 = lut_init_from(
      [](bool a, bool b, bool c, bool) { return (a && b) || (a && c) || (b && c); });
  // logic unit: y = op1 ? (op0 ? a^b : a|b) : (a&b)  [op=01 and, 10 or, 11 xor]
  const std::uint16_t logic4 = lut_init_from(
      [](bool a, bool b, bool o0, bool o1) {
        if (!o1) return a && b;       // op=01 (o0 is 1 when selected below)
        return o0 ? (a != b) : (a || b);
      });
  // final select: op==00 -> sum, else logic.
  const std::uint16_t pick = lut_init_from(
      [](bool sum, bool logic, bool o0, bool o1) {
        return (!o0 && !o1) ? sum : logic;
      });
  NetId carry = kNullNet;
  for (int i = 0; i < width; ++i) {
    const NetId a = nl.add_net(idx_name("a", i));
    const NetId b = nl.add_net(idx_name("b", i));
    nl.add_ibuf(idx_name("iba", i), idx_name("a", i), a);
    nl.add_ibuf(idx_name("ibb", i), idx_name("b", i), b);
    const NetId s = nl.add_net(idx_name("sum", i));
    nl.add_lut(idx_name("sl", i), sum3, {a, b, carry, kNullNet}, s);
    if (i + 1 < width) {  // the MSB carry-out is unused: don't build it
      const NetId nc = nl.add_net(idx_name("c", i));
      nl.add_lut(idx_name("cl", i), carry3, {a, b, carry, kNullNet}, nc);
      carry = nc;
    }
    const NetId lg = nl.add_net(idx_name("lg", i));
    nl.add_lut(idx_name("ll", i), logic4, {a, b, op0, op1}, lg);
    const NetId y = nl.add_net(idx_name("y", i));
    nl.add_lut(idx_name("yl", i), pick, {s, lg, op0, op1}, y);
    nl.add_obuf(idx_name("ob", i), idx_name("y", i), y);
  }
  return nl;
}

const std::vector<GeneratorInfo>& registry() {
  static const std::vector<GeneratorInfo> gens = {
      {"counter", [](int p) { return make_counter(p); }},
      {"gray", [](int p) { return make_gray_counter(p); }},
      {"johnson", [](int p) { return make_johnson(p); }},
      {"lfsr", [](int p) { return make_lfsr(p); }},
      {"shreg", [](int p) { return make_shift_register(p); }},
      {"fir", [](int p) { return make_fir(p); }},
      {"accum", [](int p) { return make_accumulator(p); }},
      {"scrambler", [](int p) { return make_scrambler(p); }},
      {"adder", [](int p) { return make_adder(p); }},
      {"cmp", [](int p) { return make_comparator(p); }},
      {"parity", [](int p) { return make_parity(p); }},
      {"alu", [](int p) { return make_alu_lite(p); }},
  };
  return gens;
}

}  // namespace jpg::netlib
