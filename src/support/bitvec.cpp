#include "support/bitvec.h"

#include <bit>

namespace jpg {

std::uint32_t BitVector::get_field(std::size_t pos, unsigned width) const {
  JPG_ASSERT_MSG(width >= 1 && width <= 32, "field width out of range");
  JPG_ASSERT_MSG(pos + width <= nbits_, "field read out of range");
  std::uint32_t v = 0;
  for (unsigned i = 0; i < width; ++i) {
    v |= static_cast<std::uint32_t>(get(pos + i)) << i;
  }
  return v;
}

void BitVector::set_field(std::size_t pos, unsigned width, std::uint32_t value) {
  JPG_ASSERT_MSG(width >= 1 && width <= 32, "field width out of range");
  JPG_ASSERT_MSG(pos + width <= nbits_, "field write out of range");
  JPG_ASSERT_MSG(width == 32 || (value >> width) == 0,
                 "field value wider than field");
  for (unsigned i = 0; i < width; ++i) {
    set(pos + i, (value >> i) & 1u);
  }
}

std::size_t BitVector::popcount() const noexcept {
  std::size_t n = 0;
  for (std::uint32_t w : words_) {
    n += static_cast<std::size_t>(std::popcount(w));
  }
  return n;
}

bool BitVector::differs_from(const BitVector& other) const {
  JPG_ASSERT_MSG(nbits_ == other.nbits_, "comparing BitVectors of unequal size");
  return words_ != other.words_;
}

}  // namespace jpg
