# Empty dependencies file for golden_test.
# This may be replaced when dependencies are built.
