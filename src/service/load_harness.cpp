#include "service/load_harness.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <future>
#include <thread>

#include "support/error.h"
#include "support/rng.h"
#include "support/telemetry/telemetry.h"

namespace jpg {
namespace {

ConfigMemory noise_plane(const Device& dev, std::uint64_t seed) {
  ConfigMemory m(dev);
  Rng rng(seed);
  for (std::size_t f = 0; f < m.num_frames(); ++f) {
    for (std::size_t w = 0; w < dev.frames().frame_words(); ++w) {
      m.frame(f).set_word(w, static_cast<std::uint32_t>(rng.next()));
    }
  }
  return m;
}

}  // namespace

ServiceRequest LoadFixture::request(std::size_t slot, std::size_t variant,
                                    std::string tenant,
                                    RequestKind kind) const {
  JPG_REQUIRE(slot < slots.size() && variant < variants.size(),
              "load fixture request out of range");
  ServiceRequest req;
  req.tenant = std::move(tenant);
  req.kind = kind;
  req.module_config = &variants[variant];
  req.region = slots[slot];
  req.variant = "v" + std::to_string(variant);
  return req;
}

LoadFixture make_load_fixture(const Device& device, std::uint64_t seed,
                              std::size_t num_slots,
                              std::size_t num_variants) {
  JPG_REQUIRE(num_slots > 0 && num_variants > 0,
              "load fixture needs slots and variants");
  JPG_REQUIRE(static_cast<int>(num_slots) <= device.cols(),
              "more slots than CLB columns");
  LoadFixture fx{&device, noise_plane(device, seed), {}, {}};
  // Equal-width full-height column bands; the remainder columns widen the
  // last slot so every column belongs to exactly one slot.
  const int band = device.cols() / static_cast<int>(num_slots);
  for (std::size_t s = 0; s < num_slots; ++s) {
    const int c0 = static_cast<int>(s) * band;
    const int c1 = (s + 1 == num_slots) ? device.cols() - 1
                                        : c0 + band - 1;
    fx.slots.push_back(Region{0, c0, device.rows() - 1, c1});
  }
  fx.variants.reserve(num_variants);
  for (std::size_t v = 0; v < num_variants; ++v) {
    fx.variants.push_back(noise_plane(device, seed ^ (0x9e3779b9ull * (v + 1))));
  }
  return fx;
}

PoissonLoadResult run_poisson_load(ReconfigService& svc,
                                   const LoadFixture& fixture,
                                   const PoissonLoadOptions& opt) {
  JPG_REQUIRE(opt.tenants > 0, "load needs at least one tenant");
  Rng rng(opt.seed);
  std::vector<std::future<ServiceResponse>> futures;
  futures.reserve(opt.requests);

  const std::uint64_t t0 = telemetry::now_ns();
  for (std::size_t i = 0; i < opt.requests; ++i) {
    if (opt.rate_hz > 0) {
      // Exponential inter-arrival gap: -ln(U) / lambda, U in (0, 1].
      const double u = std::max(rng.unit(), 1e-12);
      const double gap_s = -std::log(u) / opt.rate_hz;
      std::this_thread::sleep_for(std::chrono::nanoseconds(
          static_cast<std::uint64_t>(gap_s * 1e9)));
    }
    const std::size_t slot = rng.uniform(fixture.slots.size());
    const std::size_t variant = rng.uniform(fixture.variants.size());
    futures.push_back(svc.submit(fixture.request(
        slot, variant, "t" + std::to_string(i % opt.tenants))));
  }
  const std::uint64_t t_submitted = telemetry::now_ns();

  PoissonLoadResult out;
  for (auto& f : futures) {
    ServiceResponse resp = f.get();
    switch (resp.error) {
      case ServiceError::None:
        ++out.completed;
        out.latencies_ns.push_back(resp.latency_ns());
        if (resp.resident_hit) ++out.resident_hits;
        break;
      case ServiceError::QueueFull:
      case ServiceError::ShuttingDown:
        ++out.rejected;
        break;
      default:
        ++out.failed;
        break;
    }
  }
  const std::uint64_t t1 = telemetry::now_ns();
  out.elapsed_sec = static_cast<double>(t1 - t0) / 1e9;
  const double submit_sec = static_cast<double>(t_submitted - t0) / 1e9;
  out.offered_rate_hz =
      submit_sec > 0 ? static_cast<double>(opt.requests) / submit_sec : 0;
  return out;
}

std::uint64_t percentile_ns(std::vector<std::uint64_t> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const std::size_t idx = static_cast<std::size_t>(rank + 0.5);
  return samples[std::min(idx, samples.size() - 1)];
}

}  // namespace jpg
