#include "bitstream/bitgen.h"

#include "bitstream/bitstream_reader.h"
#include "support/error.h"
#include "support/telemetry/telemetry.h"

namespace jpg {

Bitstream generate_full_bitstream(const ConfigMemory& mem,
                                  const BitgenOptions& opts) {
  JPG_SPAN("bitgen.full");
  JPG_COUNT("bitgen.full_streams", 1);
  const Device& dev = mem.device();
  const FrameMap& fm = dev.frames();

  BitstreamWriter w(dev);
  w.begin();
  w.write_cmd(Command::RCRC);
  w.write_reg(ConfigReg::FLR,
              static_cast<std::uint32_t>(fm.frame_words() - 1));
  w.write_reg(ConfigReg::COR, 0);
  w.write_reg(ConfigReg::IDCODE, dev.spec().idcode);
  w.write_reg(ConfigReg::MASK, 0xFFFFFFFFu);
  w.write_reg(ConfigReg::CTL, 0);
  w.write_reg(ConfigReg::FAR, fm.encode_far({0, 0, 0}));
  w.write_cmd(Command::WCFG);
  w.write_frames(mem, 0, fm.num_frames());
  if (opts.include_crc) w.write_crc();
  w.write_cmd(Command::LFRM);
  w.write_cmd(Command::START);
  if (opts.include_crc) w.write_crc();
  return w.finish();
}

const Device& device_for_bitstream(const Bitstream& bs) {
  const BitstreamReader reader(bs);
  const auto idcode = reader.idcode();
  if (!idcode) {
    throw BitstreamError("bitstream carries no IDCODE write");
  }
  return Device::get(DeviceSpec::by_idcode(*idcode).name);
}

}  // namespace jpg
