#include "support/thread_pool.h"

#include <atomic>
#include <exception>
#include <map>
#include <memory>

#include "support/error.h"
#include "support/telemetry/telemetry.h"

namespace jpg {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      JPG_GAUGE_SET("pool.queue_depth", tasks_.size());
    }
    JPG_TELEM(const std::uint64_t telem_t0 = telemetry::now_ns();)
    task();
    JPG_COUNT("pool.tasks", 1);
    JPG_HIST("pool.task_ns", telemetry::now_ns() - telem_t0);
  }
}

namespace {

/// Shared by the caller and every enqueued helper task, so helper copies
/// that outlive the parallel_for call (they may still be draining their
/// claim loop after the last iteration completes) never touch dead stack
/// frames.
struct ParallelForContext {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<std::size_t> participants{0};
  std::mutex mutex;
  std::condition_variable cv;
  std::exception_ptr first_error;

  void run() {
    bool counted = false;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      if (!counted) {
        counted = true;
        participants.fetch_add(1, std::memory_order_relaxed);
      }
      try {
        (*body)(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex);
        if (!first_error) first_error = std::current_exception();
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        const std::lock_guard<std::mutex> lock(mutex);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body,
                              ParallelForStats* stats) {
  if (n == 0) {
    if (stats != nullptr) stats->workers_used = 0;
    return;
  }
  // On a single worker (or tiny n) run inline: no synchronization cost and
  // identical iteration order, which keeps seeded algorithms deterministic.
  if (workers_.size() <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    if (stats != nullptr) stats->workers_used = 1;
    return;
  }

  auto ctx = std::make_shared<ParallelForContext>();
  ctx->n = n;
  ctx->body = &body;  // the caller outlives every *iteration* (see wait)

  const std::size_t chunks = std::min(n, workers_.size());
  JPG_COUNT("pool.parallel_fors", 1);
  JPG_HIST("pool.parallel_for_n", n);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    JPG_TELEM(const std::uint64_t telem_enq = telemetry::now_ns();)
    for (std::size_t c = 0; c < chunks; ++c) {
      JPG_TELEM(tasks_.emplace([ctx, telem_enq] {
        JPG_HIST("pool.queue_wait_ns", telemetry::now_ns() - telem_enq);
        ctx->run();
      });)
#if !JPG_TELEMETRY_ENABLED
      tasks_.emplace([ctx] { ctx->run(); });
#endif
    }
    JPG_GAUGE_SET("pool.queue_depth", tasks_.size());
  }
  cv_.notify_all();
  // The caller participates too, so the pool can never deadlock on nested use.
  ctx->run();

  std::unique_lock<std::mutex> lock(ctx->mutex);
  ctx->cv.wait(lock, [&] {
    return ctx->done.load(std::memory_order_acquire) >= n;
  });
  if (stats != nullptr) {
    stats->workers_used = ctx->participants.load(std::memory_order_relaxed);
  }
  if (ctx->first_error) std::rethrow_exception(ctx->first_error);
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = packaged->get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    tasks_.emplace([packaged] { (*packaged)(); });
    JPG_GAUGE_SET("pool.queue_depth", tasks_.size());
  }
  cv_.notify_one();
  return future;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

ThreadPool& ThreadPool::sized(std::size_t n) {
  if (n == 0) return global();
  static std::mutex mutex;
  static std::map<std::size_t, std::unique_ptr<ThreadPool>> pools;
  const std::lock_guard<std::mutex> lock(mutex);
  auto it = pools.find(n);
  if (it == pools.end()) {
    it = pools.emplace(n, std::make_unique<ThreadPool>(n)).first;
  }
  return *it->second;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  ThreadPool::global().parallel_for(n, body);
}

}  // namespace jpg
