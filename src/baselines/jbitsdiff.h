// JBitsDiff baseline (paper §2.3): "JBitsDiff, like JPG, is built on the
// Xilinx JBits API. Rather than producing partial bitstreams, however,
// JBitsDiff extracts information from the bitstream to generate pre-routed
// and pre-placed JBits cores. A JBits core is a sequence of Java method
// invocations (using the JBits API) that will manipulate a device bitstream
// in order to insert the core at some location in the device."
//
// Our core is the exact analogue: a replayable sequence of CBits calls
// obtained by diffing two configuration planes at the *resource* level
// (LUTs, slice fields, routing muxes, IOB settings), serialisable to a
// textual script.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cbits/cbits.h"
#include "device/region.h"

namespace jpg {

struct CoreOp {
  enum class Kind { Lut, Field, Mux, IobFlag, IobOmux };
  Kind kind = Kind::Lut;
  // Lut / Field: site + selector; Mux: tile + dest; Iob*: IOB site.
  SliceSite site;
  TileCoord tile;
  IobSite iob;
  int selector = 0;  ///< LutSel / SliceField / dest_local / IobField
  std::uint32_t value = 0;
};

struct JBitsCore {
  std::string name;
  std::string part;
  std::vector<CoreOp> ops;

  /// Applies the core to a configuration plane ("inserting the core").
  /// Returns the number of CBits calls made.
  std::size_t replay(CBits& cb) const;

  /// Textual script form ("set_lut CLB_R3C23.S0 F 0xBEEF" ...).
  [[nodiscard]] std::string to_text() const;
  static JBitsCore parse(std::string_view text,
                         const std::string& filename = "<core>");
};

/// Diffs `with_core` against `base` at resource level, restricted to
/// `window` when given (the core's bounding box). Both planes must target
/// the same device.
[[nodiscard]] JBitsCore extract_core(const ConfigMemory& base,
                                     const ConfigMemory& with_core,
                                     const std::string& name,
                                     const std::optional<Region>& window = {});

}  // namespace jpg
