// XDL lexer: tokenises the textual XDL dialect.
//
// Tokens: quoted strings, bare words (identifiers/numbers/site names),
// ',', ';', and the pip arrow '->'. '#' starts a comment to end of line.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/error.h"

namespace jpg {

struct XdlToken {
  enum class Kind { Word, String, Comma, Semicolon, Arrow, End };
  Kind kind = Kind::End;
  std::string text;
  int line = 0;
};

class XdlLexer {
 public:
  XdlLexer(std::string_view text, std::string filename = "<xdl>");

  /// All tokens incl. a trailing End token.
  [[nodiscard]] const std::vector<XdlToken>& tokens() const { return tokens_; }
  [[nodiscard]] const std::string& filename() const { return filename_; }

 private:
  std::string filename_;
  std::vector<XdlToken> tokens_;
};

}  // namespace jpg
