// End-to-end tests of the bottom half of the stack with NO P&R involved:
// a circuit is built by hand through CBits (exactly what a JBits user would
// do), then decoded back by the extractor and simulated. This pins down the
// semantics of slice fields, mux encodings, edge/pad substitution and the
// extractor's tracing logic.
#include <gtest/gtest.h>

#include "bitstream/bitgen.h"
#include "bitstream/config_port.h"
#include "cbits/cbits.h"
#include "sim/bitstream_sim.h"
#include "sim/circuit_extractor.h"

namespace jpg {
namespace {

class HandBuiltCircuit : public ::testing::Test {
 protected:
  const Device& dev_ = Device::get("XCV50");
  ConfigMemory mem_{dev_};
  CBits cb_{mem_};

  /// Builds a toggler in slice (2,2).S0: F-LUT inverts XQ (via OUT0
  /// feedback), FFX registers it, and XQ is routed west to output pad
  /// IOB_L3K0.
  void build_toggler() {
    const SliceSite s{2, 2, 0};
    const TileCoord t{2, 2};
    // LUT F = NOT(A1).
    cb_.set_lut(s, LutSel::F, 0x5555);  // ~A1 for every A2..A4
    cb_.set_field(s, SliceField::XUsed, false);  // X only feeds the FF
    cb_.set_field(s, SliceField::FfxUsed, true);
    cb_.set_field(s, SliceField::DxMux, false);  // D from LUT
    cb_.set_field(s, SliceField::InitX, false);
    // Clock.
    cb_.set_pip(t, "GCLK", "S0_CLK");
    // Feedback: XQ -> OUT0 -> S0_F1.
    cb_.set_pip(t, "S0_XQ", "OUT0");
    cb_.set_pip(t, "OUT0", "S0_F1");
    // Output route: XQ -> OUT1 -> W0 at (2,2), then straight through
    // (2,1).W0 and (2,0).W0 to the left edge.
    cb_.set_pip(t, "S0_XQ", "OUT1");
    cb_.set_pip(t, "OUT1", "W0");
    cb_.set_pip({2, 1}, "EIN0", "W0");  // continue the westbound single
    cb_.set_pip({2, 0}, "EIN0", "W0");
    // Pad: IOB_L3K0 outputs tile (2,0).W0 (source position 1).
    const IobSite pad{Side::Left, 2, 0};
    cb_.set_iob_flag(pad, IobField::IsOutput, true);
    cb_.set_iob_omux(pad, 1);
  }
};

TEST_F(HandBuiltCircuit, ExtractsTogglerStructure) {
  build_toggler();
  const ExtractedCircuit ec = extract_circuit(mem_);
  EXPECT_EQ(ec.used_les, 1u);
  ASSERT_EQ(ec.ffs.size(), 1u);
  EXPECT_EQ(ec.ffs[0].site, (SliceSite{2, 2, 0}));
  EXPECT_EQ(ec.ffs[0].le, 0);
  int luts = 0, ffs = 0, obufs = 0;
  for (const Cell& c : ec.netlist.cells()) {
    if (c.kind == CellKind::Lut4) ++luts;
    if (c.kind == CellKind::Dff) ++ffs;
    if (c.kind == CellKind::Obuf) ++obufs;
  }
  EXPECT_EQ(luts, 1);
  EXPECT_EQ(ffs, 1);
  EXPECT_EQ(obufs, 1);
  const int pad = dev_.pad_number({Side::Left, 2, 0});
  EXPECT_EQ(ec.netlist.output_ports(),
            std::vector<std::string>{"P" + std::to_string(pad)});
}

TEST_F(HandBuiltCircuit, SimulatedTogglerToggles) {
  build_toggler();
  BitstreamSim sim(mem_);
  const int pad = dev_.pad_number({Side::Left, 2, 0});
  ASSERT_TRUE(sim.has_output_pad(pad));
  EXPECT_FALSE(sim.get_pad(pad));
  sim.step();
  EXPECT_TRUE(sim.get_pad(pad));
  sim.step();
  EXPECT_FALSE(sim.get_pad(pad));
  sim.step();
  EXPECT_TRUE(sim.get_pad(pad));
}

TEST_F(HandBuiltCircuit, SurvivesBitstreamRoundtrip) {
  build_toggler();
  const Bitstream bs = generate_full_bitstream(mem_);
  ConfigMemory loaded(dev_);
  ConfigPort port(loaded);
  port.load(bs);
  ASSERT_EQ(loaded, mem_);
  BitstreamSim sim(loaded);
  const int pad = dev_.pad_number({Side::Left, 2, 0});
  sim.step();
  EXPECT_TRUE(sim.get_pad(pad));
}

TEST_F(HandBuiltCircuit, FfStateCaptureRestore) {
  build_toggler();
  BitstreamSim sim(mem_);
  sim.step();  // FF now holds 1
  const auto state = sim.capture_ff_state();
  ASSERT_EQ(state.size(), 1u);
  EXPECT_TRUE(state.begin()->second);

  BitstreamSim sim2(mem_);
  const int pad = dev_.pad_number({Side::Left, 2, 0});
  EXPECT_FALSE(sim2.get_pad(pad));  // fresh sim starts at init
  sim2.restore_ff_state(state);
  EXPECT_TRUE(sim2.get_pad(pad));  // state carried over
}

TEST_F(HandBuiltCircuit, InputPadThroughLut) {
  // IBUF at IOB_L4K0 drives tile (3,0) via the pad-out substitution; a
  // buffer LUT in (3,0).S0 samples it and routes back out on pad IOB_L4K1.
  const SliceSite s{3, 0, 0};
  const TileCoord t{3, 0};
  const IobSite in_pad{Side::Left, 3, 0};
  const IobSite out_pad{Side::Left, 3, 1};
  cb_.set_iob_flag(in_pad, IobField::IsInput, true);

  // Find an F/G input pin of slice 0 whose mux can select WIN0..WIN3
  // (which resolves to pad 0's PAD_OUT at column 0).
  const RoutingFabric& fab = dev_.fabric();
  int chosen_pin = -1, chosen_sel = -1;
  for (int p = 0; p < 4 && chosen_pin < 0; ++p) {
    const int local = imux_local(0, static_cast<ImuxPin>(p));
    const MuxDef* m = fab.mux_for_dest(local);
    for (std::size_t i = 0; i < m->sources.size(); ++i) {
      const auto node = fab.resolve_source(t.r, t.c, m->sources[i]);
      if (node && *node == fab.pad_out_node(Side::Left, 3, 0)) {
        chosen_pin = p;
        chosen_sel = static_cast<int>(i + 1);
        break;
      }
    }
  }
  ASSERT_GE(chosen_pin, 0) << "no F-input of (3,0).S0 can reach pad 0";
  cb_.set_mux(t, imux_local(0, static_cast<ImuxPin>(chosen_pin)),
              static_cast<std::uint32_t>(chosen_sel));

  // LUT F = pass-through of the chosen input pin.
  cb_.set_lut(s, LutSel::F,
              static_cast<std::uint16_t>(
                  chosen_pin == 0 ? 0xAAAA :
                  chosen_pin == 1 ? 0xCCCC :
                  chosen_pin == 2 ? 0xF0F0 : 0xFF00));
  cb_.set_field(s, SliceField::XUsed, true);
  cb_.set_pip(t, "S0_X", "OUT0");
  cb_.set_pip(t, "OUT0", "W1");
  const IobSite op = out_pad;
  cb_.set_iob_flag(op, IobField::IsOutput, true);
  cb_.set_iob_omux(op, 2);  // W1 is source position 2

  BitstreamSim sim(mem_);
  const int pin = dev_.pad_number(in_pad);
  const int pout = dev_.pad_number(out_pad);
  ASSERT_TRUE(sim.has_input_pad(pin));
  ASSERT_TRUE(sim.has_output_pad(pout));
  sim.set_pad(pin, true);
  EXPECT_TRUE(sim.get_pad(pout));
  sim.set_pad(pin, false);
  EXPECT_FALSE(sim.get_pad(pout));
}

// --- Fault injection: the extractor must reject inconsistent configs -------

TEST_F(HandBuiltCircuit, DetectsUndrivenConsumedWire) {
  build_toggler();
  // Kill the OUT1 mux: the westbound route is now consumed but undriven.
  cb_.set_mux({2, 2}, out_local(1), 0);
  EXPECT_THROW(extract_circuit(mem_), ExtractError);
}

TEST_F(HandBuiltCircuit, DetectsMissingClock) {
  build_toggler();
  cb_.set_mux({2, 2}, imux_local(0, ImuxPin::CLK), 0);
  EXPECT_THROW(extract_circuit(mem_), ExtractError);
}

TEST_F(HandBuiltCircuit, DetectsUnroutedObuf) {
  build_toggler();
  cb_.set_iob_omux({Side::Left, 2, 0}, 0);
  EXPECT_THROW(extract_circuit(mem_), ExtractError);
}

TEST_F(HandBuiltCircuit, DetectsRoutingCycle) {
  // Two singles feeding each other through straight-through stitches.
  cb_.set_pip({5, 5}, "WIN2", "E2");   // (5,5).E2 <- (5,4).E2
  cb_.set_pip({5, 4}, "WIN2", "E2");   // (5,4).E2 <- (5,3).E2
  // Close a loop: (5,3).E2 <- ... cannot loop E singles directly; use an
  // IMUX consuming (5,5).E2 to force a trace, with (5,3).E2 fed by a turn
  // from a hex that is fed by nothing -> undriven is also acceptable. The
  // robust cycle: OUT feedback. OUT0 at (6,6) selects pin S0_X with the LUT
  // unused -> "drives nothing" error instead. Simplest true cycle: a hex
  // chain that wraps is impossible; so assert the undriven diagnostic here.
  const SliceSite s{5, 6, 0};
  cb_.set_lut(s, LutSel::F, 0xAAAA);
  cb_.set_field(s, SliceField::XUsed, true);
  // F1 consumes the east-arriving single (5,5).E2 if reachable; otherwise
  // skip (template-dependent).
  const RoutingFabric& fab = dev_.fabric();
  const MuxDef* m = fab.mux_for_dest(imux_local(0, ImuxPin::F1));
  int sel = -1;
  for (std::size_t i = 0; i < m->sources.size(); ++i) {
    const auto node = fab.resolve_source(5, 6, m->sources[i]);
    if (node && *node == fab.tile_wire_node(5, 5, single_local(Dir::E, 2))) {
      sel = static_cast<int>(i + 1);
    }
  }
  if (sel < 0) {
    GTEST_SKIP() << "fabric template has no E2-in on S0_F1 at this tile";
  }
  cb_.set_mux({5, 6}, imux_local(0, ImuxPin::F1), static_cast<std::uint32_t>(sel));
  cb_.set_pip({5, 6}, "S0_X", "OUT0");
  cb_.set_pip({5, 6}, "OUT0", "W3");
  cb_.set_pip({5, 0}, "EIN3", "W3");
  cb_.set_iob_flag({Side::Left, 5, 0}, IobField::IsOutput, true);
  cb_.set_iob_omux({Side::Left, 5, 0}, 4);
  // The chain (5,3).E2 is undriven -> ExtractError (undriven diagnostic).
  EXPECT_THROW(extract_circuit(mem_), ExtractError);
}

/// Asserts that extraction throws an ExtractError whose message contains
/// `needle` — the error family matters, not just "something threw".
void expect_extract_error(const ConfigMemory& mem, const std::string& needle) {
  try {
    extract_circuit(mem);
    FAIL() << "expected ExtractError containing '" << needle << "'";
  } catch (const ExtractError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "got: " << e.what();
  }
}

TEST_F(HandBuiltCircuit, DetectsMultiplyDrivenLongLine) {
  // Long lines have exactly one driver mux active along their span; claim
  // LH0 on row 2 from two different tiles and dismount it onto a consumed
  // westbound route so the trace reaches it.
  cb_.set_pip({2, 4}, "OUT0", "LH0");
  cb_.set_pip({2, 6}, "OUT0", "LH0");
  cb_.set_pip({2, 2}, "LH0", "W0");
  cb_.set_pip({2, 1}, "EIN0", "W0");
  cb_.set_pip({2, 0}, "EIN0", "W0");
  cb_.set_iob_flag({Side::Left, 2, 0}, IobField::IsOutput, true);
  cb_.set_iob_omux({Side::Left, 2, 0}, 1);
  expect_extract_error(mem_, "multiple drivers");
}

TEST_F(HandBuiltCircuit, DetectsFfWithoutClockOnBareSlice) {
  // A used FF with nothing else configured: the clock check must fire
  // before any input tracing is attempted.
  cb_.set_field({4, 4, 0}, SliceField::FfxUsed, true);
  expect_extract_error(mem_, "has no clock routed");
}

TEST_F(HandBuiltCircuit, DetectsImuxToUnconnectableEdgeSource) {
  // Left/right edge singles substitute IOB pad-out wires, but the top and
  // bottom rows have no such aliasing: a north-arriving single selected at
  // row 0 is decodable yet resolves off the fabric. S0_F1's mux is
  // guaranteed one arriving single per direction (NIN2 for pin counter 0).
  const SliceSite s{0, 0, 0};
  cb_.set_lut(s, LutSel::F, 0x5555);  // depends on A1 -> F1 gets traced
  cb_.set_field(s, SliceField::XUsed, true);
  cb_.set_pip({0, 0}, "NIN2", "S0_F1");
  cb_.set_pip({0, 0}, "S0_X", "OUT1");
  cb_.set_pip({0, 0}, "OUT1", "W0");
  cb_.set_iob_flag({Side::Left, 0, 0}, IobField::IsOutput, true);
  cb_.set_iob_omux({Side::Left, 0, 0}, 1);
  expect_extract_error(mem_, "unconnectable");
}

TEST(Extractor, EmptyDeviceYieldsEmptyCircuit) {
  const Device& dev = Device::get("XCV50");
  const ConfigMemory mem(dev);
  const ExtractedCircuit ec = extract_circuit(mem);
  EXPECT_EQ(ec.used_les, 0u);
  EXPECT_EQ(ec.netlist.num_cells(), 0u);
}

}  // namespace
}  // namespace jpg
