file(REMOVE_RECURSE
  "CMakeFiles/cbits_test.dir/cbits_test.cpp.o"
  "CMakeFiles/cbits_test.dir/cbits_test.cpp.o.d"
  "cbits_test"
  "cbits_test.pdb"
  "cbits_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
