file(REMOVE_RECURSE
  "libjpg_netlib.a"
)
