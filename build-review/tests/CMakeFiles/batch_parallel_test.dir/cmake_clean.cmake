file(REMOVE_RECURSE
  "CMakeFiles/batch_parallel_test.dir/batch_parallel_test.cpp.o"
  "CMakeFiles/batch_parallel_test.dir/batch_parallel_test.cpp.o.d"
  "batch_parallel_test"
  "batch_parallel_test.pdb"
  "batch_parallel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
