// ReconfigService: the multi-tenant reconfiguration core. Covers the final
// board planes after concurrent verified swaps (two boards, interleaved
// tenants), admission control at the configured queue depth, per-tenant
// resident-quota enforcement (telemetry-verified), resident-lease sharing
// across tenants, DRR fairness (a small tenant is not starved behind a
// flooding one), shutdown semantics, and request validation. Runs under the
// tsan label: submit, dispatch, execution and completion all race by design.
#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "core/partial_gen.h"
#include "device/device.h"
#include "service/load_harness.h"
#include "service/reconfig_service.h"
#include "support/telemetry/telemetry.h"

namespace jpg {
namespace {

std::uint64_t svc_counter(const char* name) {
#if JPG_TELEMETRY_ENABLED
  return telemetry::MetricsRegistry::global().snapshot().counter(name);
#else
  (void)name;
  return 0;
#endif
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = &Device::get("XCV50");
    fx_ = std::make_unique<LoadFixture>(make_load_fixture(*dev_, 77, 2, 5));
  }

  /// The plane a board should hold after applying `swaps` (slot, variant)
  /// in order to the fixture base. Each step composes over the *evolving*
  /// plane (apply_to_base would reset to the pristine base every time).
  ConfigMemory expected_plane(
      const std::vector<std::pair<std::size_t, std::size_t>>& swaps) const {
    ConfigMemory want(fx_->base);
    for (const auto& [slot, variant] : swaps) {
      const PartialBitstreamGenerator gen(want);
      want = gen.compose(fx_->variants[variant], fx_->slots[slot]);
    }
    return want;
  }

  const Device* dev_ = nullptr;
  std::unique_ptr<LoadFixture> fx_;
};

TEST_F(ServiceTest, ConcurrentSwapsConvergeToExpectedPlanes) {
  ServiceConfig cfg;
  cfg.stream.overlap_verify = true;  // overlap submits nest into the pool
  ReconfigService svc(*dev_, fx_->base, 2, cfg);

  // One tenant per board: a tenant's queue is FIFO and a board serialises
  // its swaps, so each board's final plane is the ordered composition.
  const std::vector<std::pair<std::size_t, std::size_t>> on0{
      {0, 0}, {1, 1}, {0, 2}};
  const std::vector<std::pair<std::size_t, std::size_t>> on1{{1, 2}, {0, 1}};
  std::vector<std::future<ServiceResponse>> futures;
  for (const auto& [slot, variant] : on0) {
    ServiceRequest r = fx_->request(slot, variant, "alpha");
    r.board = 0;
    futures.push_back(svc.submit(std::move(r)));
  }
  for (const auto& [slot, variant] : on1) {
    ServiceRequest r = fx_->request(slot, variant, "beta");
    r.board = 1;
    futures.push_back(svc.submit(std::move(r)));
  }
  for (auto& f : futures) {
    const ServiceResponse resp = f.get();
    ASSERT_TRUE(resp.ok()) << resp.message;
    EXPECT_TRUE(resp.report.ok());
  }
  svc.shutdown();

  EXPECT_EQ(svc.board(0).config(), expected_plane(on0));
  EXPECT_EQ(svc.board(1).config(), expected_plane(on1));
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.completed, 5u);
  EXPECT_EQ(st.failed, 0u);
  EXPECT_EQ(st.queue_depth, 0u);
  EXPECT_EQ(st.inflight, 0u);
}

TEST_F(ServiceTest, AdmissionControlRejectsBeyondQueueDepth) {
  ServiceConfig cfg;
  cfg.queue_depth = 4;
  cfg.start_paused = true;  // stage the backlog deterministically
  ReconfigService svc(*dev_, fx_->base, 1, cfg);

  std::vector<std::future<ServiceResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(svc.submit(fx_->request(0, 0, "t")));
  }
  // Rejections are synchronous: the overflow futures are already ready.
  for (int i = 4; i < 6; ++i) {
    ASSERT_EQ(futures[static_cast<std::size_t>(i)].wait_for(
                  std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get().error,
              ServiceError::QueueFull);
  }
  svc.resume();
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(futures[static_cast<std::size_t>(i)].get().ok());
  }
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.rejected_queue_full, 2u);
  EXPECT_LE(st.queue_peak, 4u);
  EXPECT_EQ(st.completed, 4u);
}

TEST_F(ServiceTest, TenantQuotaEvictsLeastRecentlyUsedLease) {
  ServiceConfig cfg;
  cfg.tenant_quota = 2;
  ReconfigService svc(*dev_, fx_->base, 1, cfg);

  const std::uint64_t evict0 = svc_counter("svc.quota.evictions");
  // Five distinct variants through one tenant, sequentially: the resident
  // set must never exceed the quota of two.
  for (std::size_t v = 0; v < 5; ++v) {
    const ServiceResponse resp = svc.submit(fx_->request(0, v, "solo")).get();
    ASSERT_TRUE(resp.ok()) << resp.message;
  }
  const ServiceStats st = svc.stats();
  const TenantStats& ts = st.tenants.at("solo");
  EXPECT_EQ(ts.completed, 5u);
  EXPECT_LE(ts.resident_entries, 2u);
  EXPECT_LE(ts.resident_peak, 2u);
  EXPECT_EQ(ts.quota_evictions, 3u);
  EXPECT_LE(st.resident_entries, 2u);  // registry reaped the evicted leases
#if JPG_TELEMETRY_ENABLED
  EXPECT_EQ(svc_counter("svc.quota.evictions") - evict0, 3u);
#else
  (void)evict0;
#endif
  svc.shutdown();
}

TEST_F(ServiceTest, TenantsShareResidentLeases) {
  ReconfigService svc(*dev_, fx_->base, 1, {});
  // Warm through a Generate, then both tenants hit the same resident key.
  ServiceRequest warm = fx_->request(1, 3, "a", RequestKind::Generate);
  ASSERT_TRUE(svc.submit(std::move(warm)).get().ok());
  const ServiceResponse ra = svc.submit(fx_->request(1, 3, "a")).get();
  const ServiceResponse rb = svc.submit(fx_->request(1, 3, "b")).get();
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_TRUE(ra.resident_hit);
  EXPECT_TRUE(rb.resident_hit);
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.tenants.at("a").resident_hits, 1u);
  EXPECT_EQ(st.tenants.at("b").resident_hits, 1u);
  // One shared entry, not one per tenant.
  EXPECT_EQ(st.resident_entries, 1u);
}

TEST_F(ServiceTest, DeficitRoundRobinDoesNotStarveSmallTenants) {
  ServiceConfig cfg;
  cfg.start_paused = true;
  cfg.drr_quantum_words = 1u << 24;  // quantum >> cost: pure round-robin
  ReconfigService svc(*dev_, fx_->base, 1, cfg);

  // Tenant "flood" stages 8 swaps before "small" stages 2. FIFO-by-arrival
  // would dispatch small's at seq 8 and 9; DRR must interleave them early.
  std::vector<std::future<ServiceResponse>> flood;
  std::vector<std::future<ServiceResponse>> small;
  for (int i = 0; i < 8; ++i) {
    flood.push_back(svc.submit(fx_->request(0, 0, "flood")));
  }
  for (int i = 0; i < 2; ++i) {
    small.push_back(svc.submit(fx_->request(1, 1, "small")));
  }
  svc.resume();
  std::uint64_t flood_max = 0;
  std::uint64_t small_max = 0;
  for (auto& f : flood) {
    const ServiceResponse r = f.get();
    ASSERT_TRUE(r.ok()) << r.message;
    flood_max = std::max(flood_max, r.dispatch_seq);
  }
  for (auto& f : small) {
    const ServiceResponse r = f.get();
    ASSERT_TRUE(r.ok()) << r.message;
    small_max = std::max(small_max, r.dispatch_seq);
  }
  EXPECT_LT(small_max, flood_max);
  EXPECT_LE(small_max, 6u);  // both of small's swaps dispatch well before last
  svc.shutdown();
}

TEST_F(ServiceTest, ShutdownRejectsQueuedAndNewRequests) {
  ServiceConfig cfg;
  cfg.start_paused = true;
  ReconfigService svc(*dev_, fx_->base, 1, cfg);
  std::vector<std::future<ServiceResponse>> staged;
  for (int i = 0; i < 3; ++i) {
    staged.push_back(svc.submit(fx_->request(0, 0, "t")));
  }
  svc.shutdown(/*drain=*/false);
  for (auto& f : staged) {
    EXPECT_EQ(f.get().error, ServiceError::ShuttingDown);
  }
  EXPECT_EQ(svc.submit(fx_->request(0, 0, "t")).get().error,
            ServiceError::ShuttingDown);
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.rejected_shutdown, 4u);
  EXPECT_EQ(st.completed, 0u);
}

TEST_F(ServiceTest, ValidatesRequestsSynchronously) {
  ReconfigService svc(*dev_, fx_->base, 1, {});
  ServiceRequest no_module = fx_->request(0, 0, "t");
  no_module.module_config = nullptr;
  EXPECT_EQ(svc.submit(std::move(no_module)).get().error,
            ServiceError::BadRequest);

  ServiceRequest bad_board = fx_->request(0, 0, "t");
  bad_board.board = 7;
  EXPECT_EQ(svc.submit(std::move(bad_board)).get().error,
            ServiceError::BadRequest);

  ServiceRequest no_variant = fx_->request(0, 0, "t");
  no_variant.variant.clear();
  EXPECT_EQ(svc.submit(std::move(no_variant)).get().error,
            ServiceError::BadRequest);

  ServiceRequest bad_region = fx_->request(0, 0, "t");
  bad_region.region.c1 = dev_->cols() + 3;
  EXPECT_EQ(svc.submit(std::move(bad_region)).get().error,
            ServiceError::BadRequest);
}

TEST_F(ServiceTest, PoissonLoadCompletesEveryAcceptedRequest) {
  ServiceConfig cfg;
  cfg.queue_depth = 32;
  ReconfigService svc(*dev_, fx_->base, 2, cfg);
  PoissonLoadOptions opt;
  opt.requests = 60;
  opt.tenants = 4;
  opt.rate_hz = 0;  // back-to-back: saturates, may exercise QueueFull
  opt.seed = 5;
  const PoissonLoadResult res = run_poisson_load(svc, *fx_, opt);
  EXPECT_EQ(res.completed + res.rejected + res.failed, 60u);
  EXPECT_EQ(res.failed, 0u);
  EXPECT_GT(res.completed, 0u);
  EXPECT_EQ(res.latencies_ns.size(), res.completed);
  EXPECT_GT(percentile_ns(res.latencies_ns, 99), 0u);
  svc.shutdown();
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.completed, res.completed);
  EXPECT_LE(st.queue_peak, 32u);
}

}  // namespace
}  // namespace jpg
