file(REMOVE_RECURSE
  "CMakeFiles/bench_cl_dynamic_reconfig.dir/bench_cl_dynamic_reconfig.cpp.o"
  "CMakeFiles/bench_cl_dynamic_reconfig.dir/bench_cl_dynamic_reconfig.cpp.o.d"
  "bench_cl_dynamic_reconfig"
  "bench_cl_dynamic_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cl_dynamic_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
