// nrz_encoder_xdl: a walkthrough of the paper's §3.2.2, reproducing the
// artefacts it quotes — the XDL instance record for the NRZ encoder module
// ("inst "u1/nrz" "SLICE", placed R3C23 CLB_R3C23.S0, cfg ..."), the UCF
// constraints, the JPG floorplan view (Figure 3), and the packet-level
// anatomy of the generated partial bitstream.
//
// Build & run:  ./build/examples/nrz_encoder_xdl
#include <cstdio>

#include "bitstream/bitgen.h"
#include "bitstream/bitstream_reader.h"
#include "core/jpg.h"
#include "core/project.h"
#include "netlib/generators.h"
#include "pnr/flow.h"
#include "ucf/ucf_parser.h"
#include "xdl/xdl_writer.h"

using namespace jpg;

int main() {
  const Device& dev = Device::get("XCV50");
  // Put the module in the region that contains CLB R3C23, the site the
  // paper's sample XDL names.
  const Region region{0, 20, dev.rows() - 1, 22};

  // Phase 1: base design hosting "u1" (the NRZ encoder).
  Netlist top("nrz_base");
  const auto merged = top.merge_module(netlib::make_nrz_encoder(), "u1");
  PartitionSpec spec;
  spec.name = "u1";
  spec.region = region;
  for (const auto& [port, net] : merged.inputs) {
    top.add_ibuf("ib_" + port, port, net);
    spec.input_ports.emplace_back(port, net);
  }
  for (const auto& [port, net] : merged.outputs) {
    top.add_obuf("ob_" + port, port, net);
    spec.output_ports.emplace_back(port, net);
  }
  const BaseFlowResult base = run_base_flow(dev, top, {spec});
  ConfigMemory mem(dev);
  CBits cb(mem);
  base.design->apply(cb);
  const Bitstream base_bit = generate_full_bitstream(mem);

  // Phase 2: re-implement the encoder with its register LOCed to R3C23.S0,
  // as in the paper's listing.
  UcfData ucf;
  ucf.area_group_ranges["AG_u1"] = region;
  ucf.inst_locs["enc"] = SliceSite{2, 22, 0};  // CLB_R3C23.S0
  FlowOptions opt;
  PlacementConstraints cons;
  cons.loc_slices["enc"] = SliceSite{2, 22, 0};
  const PartitionInterface& iface = base.interface_of("u1");
  // Re-run the module flow with the LOC honoured.
  const ModuleFlowResult mod = [&] {
    const Netlist var = netlib::make_nrz_encoder();
    // run_module_flow has no constraint parameter for LOCs; the LOC enters
    // through the UCF and is validated by JPG, so pre-place by hand here:
    FlowOptions o;
    o.seed = 7;
    for (std::uint64_t seed = 7; seed < 64; ++seed) {
      o.seed = seed;
      ModuleFlowResult r = run_module_flow(dev, var, iface, o);
      // Accept the first implementation that lands 'enc' on R3C23.S0 or
      // move it there by construction: simplest is to check.
      const auto cell = r.design->netlist().find_cell("enc");
      if (cell && r.design->site_of(*cell) == (SliceSite{2, 22, 0})) return r;
    }
    // Placement never landed there by chance: fall back to no LOC.
    ucf.inst_locs.clear();
    FlowOptions o2;
    return run_module_flow(dev, var, iface, o2);
  }();

  const std::string xdl_text = write_xdl(*mod.design);
  const std::string ucf_text = write_ucf(ucf, dev);

  std::printf("=== module UCF ===\n%s\n", ucf_text.c_str());
  std::printf("=== module XDL (the paper's §3.2.2 artefact) ===\n%s\n",
              xdl_text.c_str());

  // JPG: parse, bind via CBits, emit the partial bitstream.
  Jpg tool(base_bit);
  const auto res = tool.generate_partial_from_text(xdl_text, ucf_text);
  std::printf("=== floorplan view (Figure 3 stand-in) ===\n%s\n",
              res.floorplan.c_str());

  std::printf("=== partial bitstream anatomy ===\n");
  const BitstreamReader reader(res.partial);
  std::printf("%s", reader.summarize().c_str());
  std::printf("total: %zu bytes for %zu frames (full device: %zu bytes, %zu "
              "frames)\n",
              res.partial.size_bytes(), res.frames.size(),
              base_bit.size_bytes(), dev.frames().num_frames());

  // Persist everything as a JPG project directory.
  JpgProject project;
  project.name = "nrz_walkthrough";
  project.device_part = dev.spec().name;
  project.base = base_bit;
  project.modules.push_back({"nrz_v2", xdl_text, ucf_text});
  project.save("nrz_walkthrough.jpgproj");
  std::printf("\nproject saved to ./nrz_walkthrough.jpgproj/\n");
  return 0;
}
