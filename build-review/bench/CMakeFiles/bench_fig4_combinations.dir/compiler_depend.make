# Empty compiler generated dependencies file for bench_fig4_combinations.
# This may be replaced when dependencies are built.
