file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_bram_update.dir/bench_ext_bram_update.cpp.o"
  "CMakeFiles/bench_ext_bram_update.dir/bench_ext_bram_update.cpp.o.d"
  "bench_ext_bram_update"
  "bench_ext_bram_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_bram_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
