file(REMOVE_RECURSE
  "libjpg_scenarios.a"
)
