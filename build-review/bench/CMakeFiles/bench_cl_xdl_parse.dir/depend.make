# Empty dependencies file for bench_cl_xdl_parse.
# This may be replaced when dependencies are built.
