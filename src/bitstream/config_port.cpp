#include "bitstream/config_port.h"

#include <sstream>

#include "support/error.h"
#include "support/telemetry/telemetry.h"

namespace jpg {

ConfigPort::ConfigPort(ConfigMemory& mem) : mem_(&mem) {
  // One up-front reservation sized for the largest legitimate payload (a
  // whole-plane FDRI write plus its pad frame); every later clear() keeps
  // the capacity, so legitimate streams never reallocate on the hot path.
  const FrameMap& fm = mem.device().frames();
  fdri_buffer_.reserve((fm.num_frames() + 1) * fm.frame_words());
  reset();
}

void ConfigPort::reset() {
  synced_ = false;
  started_ = false;
  mode_ = Command::NONE;
  crc_.reset();
  expect_ = Expect::Header;
  cur_reg_ = ConfigReg::CRC;
  remaining_payload_ = 0;
  fdri_active_ = false;
  fdri_buffer_.clear();
  far_ = 0;
  cur_frame_ = 0;
  far_loaded_ = false;
  flr_ = 0;
  ctl_ = 0;
  mask_ = 0;
  cor_ = 0;
}

void ConfigPort::reset_stats() {
  words_consumed_ = 0;
  frames_committed_ = 0;
  committed_frame_log_.clear();
}

void ConfigPort::abort() {
  JPG_COUNT("port.aborts", 1);
  synced_ = false;
  mode_ = Command::NONE;
  expect_ = Expect::Header;
  remaining_payload_ = 0;
  fdri_active_ = false;
  fdri_buffer_.clear();
  // Addressing context must not leak into the next stream: a resynced
  // follow-up stream would otherwise decode type-2 continuation headers
  // against the failed stream's last register, and an FDRI write that
  // omits a fresh FAR would auto-increment from the failed stream's frame
  // cursor. (far_loaded_ alone is not enough — cur_reg_ is consulted
  // before any register write happens.)
  cur_reg_ = ConfigReg::CRC;
  far_ = 0;
  cur_frame_ = 0;
  far_loaded_ = false;
  crc_.reset();
}

void ConfigPort::load_word(std::uint32_t word) {
  try {
    load_word_impl(word);
  } catch (...) {
    // A protocol violation leaves the port in its error state: desynced
    // until the next sync word, exactly like the real part after a CRC
    // failure. Memory already written stays written, and a device that had
    // completed startup keeps operating.
    abort();
    throw;
  }
}

void ConfigPort::load_word_impl(std::uint32_t word) {
  ++words_consumed_;
  if (!synced_) {
    if (word == kSyncWord) {
      synced_ = true;
      expect_ = Expect::Header;
    }
    // Anything before sync (dummy padding) is ignored, as on the real part.
    return;
  }

  switch (expect_) {
    case Expect::Header: {
      if (word == kDummyWord) return;  // inter-packet padding
      const auto h = decode_header(word, cur_reg_);
      if (!h) {
        std::ostringstream os;
        os << "invalid packet header word 0x" << std::hex << word;
        throw BitstreamError(os.str());
      }
      if (h->op == PacketOp::Nop) return;
      if (h->op == PacketOp::Read) {
        throw BitstreamError(
            "read packets are not supported on the load path; use "
            "ConfigPort::readback_frames");
      }
      cur_reg_ = h->reg;
      if (h->type == 1 && h->reg == ConfigReg::FDRI && h->word_count == 0) {
        expect_ = Expect::Type2Header;
        return;
      }
      remaining_payload_ = h->word_count;
      if (remaining_payload_ == 0) return;  // zero-length write: no-op
      if (cur_reg_ == ConfigReg::FDRI) {
        fdri_active_ = true;
        begin_fdri_payload();
      }
      expect_ = Expect::Payload;
      return;
    }
    case Expect::Type2Header: {
      const auto h = decode_header(word, cur_reg_);
      if (!h || h->type != 2 || h->op != PacketOp::Write) {
        throw BitstreamError("expected type 2 write header after zero-count "
                             "FDRI type 1 header");
      }
      remaining_payload_ = h->word_count;
      if (remaining_payload_ == 0) {
        expect_ = Expect::Header;
        return;
      }
      fdri_active_ = true;
      begin_fdri_payload();
      expect_ = Expect::Payload;
      return;
    }
    case Expect::Payload: {
      JPG_ASSERT(remaining_payload_ > 0);
      --remaining_payload_;
      if (fdri_active_) {
        crc_.update(static_cast<std::uint32_t>(ConfigReg::FDRI), word);
        fdri_buffer_.push_back(word);
        if (remaining_payload_ == 0) {
          handle_fdri_payload_complete();
          fdri_active_ = false;
          expect_ = Expect::Header;
        }
        return;
      }
      handle_reg_write(cur_reg_, word);
      if (remaining_payload_ == 0) expect_ = Expect::Header;
      return;
    }
  }
}

void ConfigPort::begin_fdri_payload() {
  // clear-don't-shrink: the construction-time reservation covers every
  // legitimate payload. Only a malformed header announcing more words than
  // a whole plane can force growth, and that growth is counted — benches
  // and tests gate cfg.buffer_reallocs == 0 after warm-up.
  if (remaining_payload_ > fdri_buffer_.capacity()) {
    JPG_COUNT("cfg.buffer_reallocs", 1);
  }
  fdri_buffer_.clear();
  fdri_buffer_.reserve(remaining_payload_);
}

void ConfigPort::handle_reg_write(ConfigReg reg, std::uint32_t value) {
  if (reg == ConfigReg::CRC) {
    JPG_COUNT("port.crc_checks", 1);
    const std::uint16_t expected = crc_.value();
    if (static_cast<std::uint16_t>(value) != expected) {
      JPG_COUNT("port.crc_failures", 1);
      std::ostringstream os;
      os << "CRC mismatch: stream says 0x" << std::hex << value
         << ", accumulated 0x" << expected;
      throw BitstreamError(os.str());
    }
    crc_.reset();
    return;
  }
  crc_.update(static_cast<std::uint32_t>(reg), value);

  const FrameMap& fm = mem_->device().frames();
  switch (reg) {
    case ConfigReg::FAR: {
      if (!fm.far_valid(value)) {
        std::ostringstream os;
        os << "invalid FAR 0x" << std::hex << value;
        throw BitstreamError(os.str());
      }
      far_ = value;
      cur_frame_ = fm.frame_index_of(fm.decode_far(value));
      far_loaded_ = true;
      return;
    }
    case ConfigReg::CMD:
      handle_cmd(static_cast<Command>(value));
      return;
    case ConfigReg::FLR:
      if (value != fm.frame_words() - 1) {
        std::ostringstream os;
        os << "FLR mismatch: stream says " << value << ", device frame length "
           << fm.frame_words() << " words";
        throw BitstreamError(os.str());
      }
      flr_ = value;
      return;
    case ConfigReg::IDCODE:
      if (value != mem_->device().spec().idcode) {
        std::ostringstream os;
        os << "IDCODE mismatch: stream is for 0x" << std::hex << value
           << ", device is 0x" << mem_->device().spec().idcode;
        throw BitstreamError(os.str());
      }
      return;
    case ConfigReg::CTL: ctl_ = (ctl_ & ~mask_) | (value & mask_); return;
    case ConfigReg::MASK: mask_ = value; return;
    case ConfigReg::COR: cor_ = value; return;
    case ConfigReg::LOUT: return;  // legacy daisy-chain output: ignored
    case ConfigReg::STAT:
      throw BitstreamError("STAT register is read-only");
    case ConfigReg::FDRO:
      throw BitstreamError("FDRO register is read-only");
    case ConfigReg::CRC:
    case ConfigReg::FDRI:
      JPG_ASSERT(false);  // handled elsewhere
      return;
  }
}

void ConfigPort::handle_fdri_payload_complete() {
  if (mode_ != Command::WCFG) {
    throw BitstreamError("FDRI write without a preceding WCFG command");
  }
  if (!far_loaded_) {
    throw BitstreamError("FDRI write without a loaded FAR");
  }
  const FrameMap& fm = mem_->device().frames();
  const std::size_t fw = fm.frame_words();
  if (fdri_buffer_.size() % fw != 0) {
    std::ostringstream os;
    os << "FDRI payload of " << fdri_buffer_.size()
       << " words is not a whole number of " << fw << "-word frames";
    throw BitstreamError(os.str());
  }
  const std::size_t nframes = fdri_buffer_.size() / fw;
  if (nframes == 0) return;
  // The final frame of every FDRI packet is the pipeline-flush pad frame.
  const std::size_t commit = nframes - 1;
  JPG_COUNT("port.frames_committed", commit);
  for (std::size_t i = 0; i < commit; ++i) {
    if (cur_frame_ >= fm.num_frames()) {
      throw BitstreamError("FDRI write ran past the last frame");
    }
    mem_->write_frame_words(cur_frame_, fdri_buffer_.data() + i * fw);
    committed_frame_log_.push_back(cur_frame_);
    ++frames_committed_;
    cur_frame_ = fm.next_frame(cur_frame_);
  }
}

void ConfigPort::handle_cmd(Command cmd) {
  switch (cmd) {
    case Command::NONE:
      return;
    case Command::WCFG:
    case Command::RCFG:
      mode_ = cmd;
      return;
    case Command::LFRM:
      // End-of-write marker; the per-packet pad frame already flushed.
      mode_ = Command::NONE;
      return;
    case Command::START:
      started_ = true;
      return;
    case Command::RCRC:
      crc_.reset();
      return;
    case Command::AGHIGH:
    case Command::SWITCH:
      return;  // startup sequencing details we do not model
    case Command::DESYNC:
      synced_ = false;
      mode_ = Command::NONE;
      expect_ = Expect::Header;
      return;
  }
  throw BitstreamError("unknown CMD code");
}

std::vector<std::uint32_t> ConfigPort::readback_frames(std::size_t first,
                                                       std::size_t count) const {
  std::vector<std::uint32_t> out;
  readback_frames_into(first, count, out);
  return out;
}

void ConfigPort::readback_frames_into(std::size_t first, std::size_t count,
                                      std::vector<std::uint32_t>& out) const {
  const FrameMap& fm = mem_->device().frames();
  JPG_REQUIRE(first + count <= fm.num_frames(), "readback range out of bounds");
  const std::size_t fw = fm.frame_words();
  out.resize(count * fw);
  JPG_COUNT("port.readback_words", out.size());
  for (std::size_t i = 0; i < count; ++i) {
    mem_->read_frame_words(first + i, out.data() + i * fw);
  }
}

}  // namespace jpg
