file(REMOVE_RECURSE
  "CMakeFiles/stress_test.dir/stress_test.cpp.o"
  "CMakeFiles/stress_test.dir/stress_test.cpp.o.d"
  "stress_test"
  "stress_test.pdb"
  "stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
