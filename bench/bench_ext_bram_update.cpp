// EXT-BRAM — extension experiment: live memory-content updates through
// block-type-1 partial bitstreams.
//
// Updating BRAM contents (coefficient tables, microcode, match patterns)
// without recompiling or touching any logic frame was one of the era's
// flagship partial-reconfiguration use cases (JBits exposed exactly this).
// This bench compares the cost of swapping one block's contents against a
// full-device reload, across device sizes.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "bitstream/bitgen.h"
#include "bitstream/config_port.h"
#include "cbits/cbits.h"
#include "core/partial_gen.h"
#include "support/rng.h"

namespace jpg {
namespace {

/// Base plane with random BRAM contents; returns (base, updated-one-block).
std::pair<ConfigMemory, ConfigMemory> planes(const Device& dev) {
  ConfigMemory base(dev);
  CBits cb(base);
  Rng rng(17);
  for (const Side side : {Side::Left, Side::Right}) {
    for (int b = 0; b < dev.config_map().bram_blocks_per_column(); ++b) {
      for (int addr = 0; addr < 256; ++addr) {
        cb.bram_write(side, b, addr, static_cast<std::uint16_t>(rng.next()));
      }
    }
  }
  ConfigMemory updated = base;
  CBits ub(updated);
  for (int addr = 0; addr < 256; ++addr) {
    ub.bram_write(Side::Left, 0, addr, static_cast<std::uint16_t>(rng.next()));
  }
  return {std::move(base), std::move(updated)};
}

void BM_BramBlockUpdate(benchmark::State& state) {
  const Device& dev = Device::get("XCV50");
  auto [base, updated] = planes(dev);
  const PartialBitstreamGenerator gen(base);
  PartialGenOptions opts;
  opts.diff_only = true;
  std::size_t bytes = 0;
  for (auto _ : state) {
    bytes = gen.generate_bram_update(updated, Side::Left, opts)
                .bitstream.size_bytes();
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_BramBlockUpdate)->Unit(benchmark::kMicrosecond);

void print_bram_rows() {
  using benchutil::fmt;
  benchutil::Table t({"device", "full reload words", "BRAM column words",
                      "one-block diff words", "block vs full"});
  for (const char* part : {"XCV50", "XCV100", "XCV300"}) {
    const Device& dev = Device::get(part);
    auto [base, updated] = planes(dev);
    const Bitstream full = generate_full_bitstream(base);
    const PartialBitstreamGenerator gen(base);
    PartialGenOptions all;
    all.diff_only = false;
    const auto column = gen.generate_bram_update(updated, Side::Left, all);
    PartialGenOptions diff;
    diff.diff_only = true;
    const auto block = gen.generate_bram_update(updated, Side::Left, diff);
    // Sanity: the diff stream actually installs the update.
    ConfigMemory check = base;
    ConfigPort port(check);
    port.load(block.bitstream);
    if (check != updated) {
      std::printf("ERROR: BRAM update did not converge on %s\n", part);
    }
    t.row({part, std::to_string(full.words.size()),
           std::to_string(column.bitstream.words.size()),
           std::to_string(block.bitstream.words.size()),
           fmt(static_cast<double>(block.bitstream.words.size()) /
                   static_cast<double>(full.words.size()),
               4) + "x"});
  }
  t.print("EXT-BRAM: one block's contents vs full reload");
  std::printf("shape: updating a lookup table costs a few percent of a full "
              "configuration and\nnever touches a logic frame (no circuit "
              "disruption at all).\n");
}

}  // namespace
}  // namespace jpg

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  jpg::print_bram_rows();
  return 0;
}
