# Empty compiler generated dependencies file for bench_ext_bram_update.
# This may be replaced when dependencies are built.
