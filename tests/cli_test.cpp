// End-to-end tests of the jpg_cli binary: generates real .bit/.xdl/.ucf
// fixtures through the library, then drives the tool as a user would.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include <sys/wait.h>
#include <unistd.h>

#include "bitstream/bitgen.h"
#include "bitstream/config_port.h"
#include "netlib/generators.h"
#include "pnr/flow.h"
#include "support/telemetry/telemetry.h"
#include "ucf/ucf_parser.h"
#include "xdl/xdl_writer.h"

#ifndef JPG_CLI_PATH
#error "JPG_CLI_PATH must point at the jpg_cli binary"
#endif

namespace jpg {
namespace {

namespace fs = std::filesystem;

class CliTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Unique per process: ctest runs each case as its own process, all in
    // parallel, so a shared fixture directory races with itself.
    dir_ = new fs::path(fs::path(::testing::TempDir()) /
                        ("jpg_cli_test_" + std::to_string(getpid())));
    fs::create_directories(*dir_);

    const Device& dev = Device::get("XCV50");
    const Region region{0, 6, dev.rows() - 1, 9};
    Netlist top("cli_base");
    const auto merged = top.merge_module(netlib::make_nrz_encoder(), "u1");
    PartitionSpec spec;
    spec.name = "u1";
    spec.region = region;
    for (const auto& [port, net] : merged.inputs) {
      top.add_ibuf("ib_" + port, port, net);
      spec.input_ports.emplace_back(port, net);
    }
    for (const auto& [port, net] : merged.outputs) {
      top.add_obuf("ob_" + port, port, net);
      spec.output_ports.emplace_back(port, net);
    }
    const BaseFlowResult base = run_base_flow(dev, top, {spec});
    ConfigMemory mem(dev);
    CBits cb(mem);
    base.design->apply(cb);
    generate_full_bitstream(mem).save((*dir_ / "base.bit").string());

    const ModuleFlowResult mod =
        run_module_flow(dev, netlib::make_nrz_encoder(), base.interface_of("u1"));
    std::ofstream xdl(*dir_ / "mod.xdl");
    xdl << write_xdl(*mod.design);
    UcfData ucf;
    ucf.area_group_ranges["AG_u1"] = region;
    std::ofstream ucf_out(*dir_ / "mod.ucf");
    ucf_out << write_ucf(ucf, dev);
  }

  static void TearDownTestSuite() {
    std::error_code ec;
    fs::remove_all(*dir_, ec);
    delete dir_;
    dir_ = nullptr;
  }

  static int run(const std::string& args) {
    const std::string cmd = std::string(JPG_CLI_PATH) + " " + args +
                            " > " + (*dir_ / "out.txt").string() + " 2>&1";
    return std::system(cmd.c_str());
  }

  static std::string output() {
    std::ifstream in(*dir_ / "out.txt");
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  static std::string path(const std::string& name) {
    return (*dir_ / name).string();
  }

  /// The child's real exit code (run() returns the raw wait status).
  static int exit_code(const std::string& args) {
    const int status = run(args);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  static std::string slurp(const std::string& file) {
    std::ifstream in(file);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  static fs::path* dir_;
};

fs::path* CliTest::dir_ = nullptr;

TEST_F(CliTest, NoArgsPrintsUsage) {
  EXPECT_NE(run(""), 0);
  EXPECT_NE(output().find("commands:"), std::string::npos);
}

TEST_F(CliTest, InfoOnCompleteBitstream) {
  ASSERT_EQ(run("info " + path("base.bit")), 0);
  const std::string out = output();
  EXPECT_NE(out.find("XCV50"), std::string::npos);
  EXPECT_NE(out.find("complete bitstream"), std::string::npos);
}

TEST_F(CliTest, SummarizeDumpsPackets) {
  ASSERT_EQ(run("summarize " + path("base.bit")), 0);
  const std::string out = output();
  EXPECT_NE(out.find("IDCODE"), std::string::npos);
  EXPECT_NE(out.find("FDRI"), std::string::npos);
  EXPECT_NE(out.find("DESYNC"), std::string::npos);
}

TEST_F(CliTest, PartialGenerationAndInfo) {
  ASSERT_EQ(run("partial " + path("base.bit") + " " + path("mod.xdl") + " " +
                path("mod.ucf") + " -o " + path("update.pbit")),
            0);
  EXPECT_NE(output().find("wrote"), std::string::npos);
  ASSERT_TRUE(fs::exists(path("update.pbit")));

  ASSERT_EQ(run("info " + path("update.pbit")), 0);
  EXPECT_NE(output().find("partial bitstream"), std::string::npos);
}

TEST_F(CliTest, ApplyProducesLoadableFullBitstream) {
  ASSERT_EQ(run("partial " + path("base.bit") + " " + path("mod.xdl") + " " +
                path("mod.ucf") + " -o " + path("update.pbit")),
            0);
  ASSERT_EQ(run("apply " + path("base.bit") + " " + path("update.pbit") +
                " -o " + path("updated.bit")),
            0);
  // The produced file must load as a complete bitstream.
  const Bitstream updated = Bitstream::load(path("updated.bit"));
  const Device& dev = Device::get("XCV50");
  ConfigMemory mem(dev);
  ConfigPort port(mem);
  EXPECT_NO_THROW(port.load(updated));
  EXPECT_TRUE(port.started());
}

TEST_F(CliTest, VerifyPassesOnHonestPartial) {
  ASSERT_EQ(run("partial " + path("base.bit") + " " + path("mod.xdl") + " " +
                path("mod.ucf") + " -o " + path("update.pbit")),
            0);
  ASSERT_EQ(run("verify " + path("base.bit") + " " + path("update.pbit")), 0);
  EXPECT_NE(output().find("0 mismatches"), std::string::npos);
}

TEST_F(CliTest, RelocateRejectsEscapingModuleThenForces) {
  ASSERT_EQ(run("partial " + path("base.bit") + " " + path("mod.xdl") + " " +
                path("mod.ucf") + " -o " + path("update.pbit")),
            0);
  // The fixture module has interface routing that escapes its region, so a
  // containment-checked relocation must be rejected with the typed error...
  EXPECT_NE(exit_code("relocate " + path("base.bit") + " " +
                      path("update.pbit") +
                      " --from R1C7:R16C10 --to R1C12 -o " +
                      path("moved.pbit")),
            0);
  EXPECT_NE(output().find("relocation rejected"), std::string::npos);
  EXPECT_FALSE(fs::exists(path("moved.pbit")));
  // ...and --force must override it and emit a loadable pbit.
  ASSERT_EQ(exit_code("relocate " + path("base.bit") + " " +
                      path("update.pbit") +
                      " --from R1C7:R16C10 --to R1C12 -o " +
                      path("moved.pbit") + " --force"),
            0);
  EXPECT_NE(output().find("crossing"), std::string::npos);
  ASSERT_TRUE(fs::exists(path("moved.pbit")));
  ASSERT_EQ(run("info " + path("moved.pbit")), 0);
  EXPECT_NE(output().find("partial bitstream"), std::string::npos);
}

TEST_F(CliTest, AttestCleanBoardAndSeededStray) {
  ASSERT_EQ(run("partial " + path("base.bit") + " " + path("mod.xdl") + " " +
                path("mod.ucf") + " -o " + path("update.pbit")),
            0);
  ASSERT_EQ(exit_code("attest " + path("base.bit") + " " +
                      path("update.pbit")),
            0);
  EXPECT_NE(output().find("attestation: clean"), std::string::npos);
  // A planted one-bit stray must flip the verdict and be named exactly.
  EXPECT_EQ(exit_code("attest " + path("base.bit") + " " +
                      path("update.pbit") + " --corrupt 100:3:0x40"),
            1);
  const std::string out = output();
  EXPECT_NE(out.find("attestation: FAILED"), std::string::npos);
  EXPECT_NE(out.find("frame 100"), std::string::npos);
}

TEST_F(CliTest, FloorplanShowsRegion) {
  ASSERT_EQ(run("floorplan " + path("base.bit") + " " + path("mod.ucf")), 0);
  EXPECT_NE(output().find("#"), std::string::npos);
}

TEST_F(CliTest, ProjectWorkflow) {
  const std::string proj = path("proj");
  const std::string outdir = path("proj_out");
  ASSERT_EQ(run("project-new " + proj + " " + path("base.bit") + " demo"), 0);
  ASSERT_EQ(run("project-add " + proj + " nrz_v2 " + path("mod.xdl") + " " +
                path("mod.ucf")),
            0);
  ASSERT_EQ(run("project-build " + proj + " " + outdir), 0);
  EXPECT_TRUE(fs::exists(outdir + "/nrz_v2.pbit"));
}

TEST_F(CliTest, FuzzcfgRunsCleanAndIsSeedStable) {
  ASSERT_EQ(run("fuzzcfg --iterations 150 --seed 9"), 0);
  const std::string first = output();
  EXPECT_NE(first.find("verdict       : clean"), std::string::npos);
  EXPECT_NE(first.find("desync violations"), std::string::npos);
  ASSERT_EQ(run("fuzzcfg --iterations 150 --seed 9"), 0);
  EXPECT_EQ(output(), first);  // same seed, same campaign
}

TEST_F(CliTest, DownloadVerifiedOverFaultyLink) {
  ASSERT_EQ(run("partial " + path("base.bit") + " " + path("mod.xdl") + " " +
                path("mod.ucf") + " -o " + path("update.pbit")),
            0);
  ASSERT_EQ(run("download " + path("base.bit") + " " + path("update.pbit") +
                " --trunc 0.9 --budget 2 --attempts 5 --seed 4"),
            0);
  const std::string out = output();
  EXPECT_NE(out.find("success"), std::string::npos);
  EXPECT_NE(out.find("board faults"), std::string::npos);
}

TEST_F(CliTest, StatsEmitsMetricsAndChromeTrace) {
  ASSERT_EQ(run("stats --seed 5 --metrics " + path("m.json") + " --trace " +
                path("t.json")),
            0);
  const std::string out = output();
  EXPECT_NE(out.find("cache_hit="), std::string::npos);
  EXPECT_NE(out.find("\"counters\""), std::string::npos);

  // The metrics file is a complete snapshot document...
  const std::string metrics = slurp(path("m.json"));
  EXPECT_NE(metrics.find("\"counters\""), std::string::npos);
  EXPECT_NE(metrics.find("\"gauges\""), std::string::npos);
  EXPECT_NE(metrics.find("\"histograms\""), std::string::npos);
  // ...and the trace file is Chrome trace-event JSON.
  const std::string trace = slurp(path("t.json"));
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
#if JPG_TELEMETRY_ENABLED
  // With telemetry compiled in, the stats flow must have populated the
  // cross-stage counters and the named spans.
  for (const char* name :
       {"pgen.cache.hits", "pgen.cache.misses", "pnr.route.astar_pops",
        "dl.downloads", "dl.words_sent", "port.frames_committed"}) {
    EXPECT_NE(metrics.find(name), std::string::npos) << name;
  }
  for (const char* span : {"flow.base", "pnr.route", "pgen.generate",
                           "bitgen.full", "dl.download_partial"}) {
    EXPECT_NE(trace.find(span), std::string::npos) << span;
  }
#endif
}

TEST_F(CliTest, ServeRunsPoissonLoadAndReportsQuotas) {
  ASSERT_EQ(exit_code("serve --requests 30 --boards 2 --tenants 3 --quota 2 "
                      "--seed 9"),
            0);
  const std::string out = output();
  EXPECT_NE(out.find("2 boards, 3 tenants"), std::string::npos);
  EXPECT_NE(out.find("completed"), std::string::npos);
  EXPECT_NE(out.find("p99"), std::string::npos);
  EXPECT_NE(out.find("swaps/s"), std::string::npos);
  EXPECT_NE(out.find("failed 0"), std::string::npos);
  EXPECT_NE(out.find("of quota 2"), std::string::npos);
}

TEST_F(CliTest, MetricsFlagWorksOnAnyCommand) {
  ASSERT_EQ(exit_code("info " + path("base.bit") + " --metrics " +
                      path("info_m.json")),
            0);
  EXPECT_NE(slurp(path("info_m.json")).find("\"counters\""),
            std::string::npos);
}

TEST_F(CliTest, UnwritableMetricsOrTracePathExitsThree) {
  // The command itself succeeds; the failed export is its own error class.
  EXPECT_EQ(exit_code("info " + path("base.bit") +
                      " --metrics /nonexistent-dir/m.json"),
            3);
  EXPECT_NE(output().find("cannot write metrics"), std::string::npos);
  EXPECT_EQ(exit_code("info " + path("base.bit") +
                      " --trace /nonexistent-dir/t.json"),
            3);
  EXPECT_NE(output().find("cannot write trace"), std::string::npos);
}

TEST_F(CliTest, ErrorsAreReported) {
  EXPECT_NE(run("info /no/such/file.bit"), 0);
  EXPECT_NE(output().find("error"), std::string::npos);
  EXPECT_NE(run("partial " + path("base.bit") + " missing.xdl missing.ucf -o x"),
            0);
}

}  // namespace
}  // namespace jpg
