// Region: a rectangle of CLB tiles, the unit of floorplanning and partial
// reconfiguration.
//
// Because configuration frames span full columns (FrameMap), the natural
// partially-reconfigurable region is a full-height column range — the same
// discipline the early Virtex modular flows (and PARBIT's column mode) used.
// Rectangular regions are still first-class: the partial generator merges
// out-of-region rows from the base design so the written frames are
// non-disruptive (see core/partial_gen.h).
#pragma once

#include <string>
#include <vector>

#include "device/device.h"

namespace jpg {

struct Region {
  int r0 = 0, c0 = 0;  ///< top-left tile, inclusive, 0-based
  int r1 = 0, c1 = 0;  ///< bottom-right tile, inclusive

  bool operator==(const Region&) const = default;

  [[nodiscard]] int width() const { return c1 - c0 + 1; }
  [[nodiscard]] int height() const { return r1 - r0 + 1; }
  [[nodiscard]] int num_tiles() const { return width() * height(); }

  [[nodiscard]] bool contains(TileCoord t) const {
    return t.r >= r0 && t.r <= r1 && t.c >= c0 && t.c <= c1;
  }
  [[nodiscard]] bool contains_col(int c) const { return c >= c0 && c <= c1; }
  [[nodiscard]] bool contains_row(int r) const { return r >= r0 && r <= r1; }

  [[nodiscard]] bool overlaps(const Region& o) const {
    return !(o.c0 > c1 || o.c1 < c0 || o.r0 > r1 || o.r1 < r0);
  }

  [[nodiscard]] bool in_bounds(const Device& dev) const {
    return r0 >= 0 && c0 >= 0 && r0 <= r1 && c0 <= c1 && r1 < dev.rows() &&
           c1 < dev.cols();
  }

  [[nodiscard]] bool full_height(const Device& dev) const {
    return r0 == 0 && r1 == dev.rows() - 1;
  }

  [[nodiscard]] static Region full(const Device& dev) {
    return Region{0, 0, dev.rows() - 1, dev.cols() - 1};
  }

  /// CLB majors covered by the region's columns, ascending.
  [[nodiscard]] std::vector<int> clb_majors(const Device& dev) const {
    std::vector<int> majors;
    majors.reserve(static_cast<std::size_t>(width()));
    for (int c = c0; c <= c1; ++c) {
      majors.push_back(dev.frames().major_of_clb_col(c));
    }
    return majors;
  }

  /// "R1C3:R16C8" — the UCF AREA_RANGE syntax (1-based).
  [[nodiscard]] std::string to_string() const {
    return "R" + std::to_string(r0 + 1) + "C" + std::to_string(c0 + 1) + ":R" +
           std::to_string(r1 + 1) + "C" + std::to_string(c1 + 1);
  }
};

}  // namespace jpg
