// Pin/lease tests for the pbit cache: a pinned entry survives an eviction
// storm (its spans stay valid), leases released under a concurrent
// generate_batch keep the cache coherent (run under JPG_SANITIZE=thread),
// double-pin and unpin-without-pin are contract errors, and capacity-0
// leases own a private copy.
#include <gtest/gtest.h>

#include <thread>

#include "core/partial_gen.h"
#include "support/rng.h"

namespace jpg {
namespace {

class PbitLeaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = &Device::get("XCV50");
    base_ = std::make_unique<ConfigMemory>(*dev_);
    Rng rng(321);
    for (std::size_t f = 0; f < base_->num_frames(); ++f) {
      for (std::size_t w = 0; w < dev_->frames().frame_words(); ++w) {
        base_->frame(f).set_word(w, static_cast<std::uint32_t>(rng.next()));
      }
    }
  }

  /// A module plane whose region content is keyed by `tag` — distinct tags
  /// produce distinct cache keys for the same region.
  ConfigMemory module_plane(std::uint32_t tag) const {
    ConfigMemory m(*dev_);
    for (std::size_t f = 0; f < m.num_frames(); ++f) {
      for (std::size_t w = 0; w < dev_->frames().frame_words(); ++w) {
        m.frame(f).set_word(
            w, (tag << 24) ^ static_cast<std::uint32_t>(f * 131 + w));
      }
    }
    return m;
  }

  const Device* dev_ = nullptr;
  std::unique_ptr<ConfigMemory> base_;
};

TEST_F(PbitLeaseTest, LeaseServesTheCachedWordsWithoutACopy) {
  const PartialBitstreamGenerator gen(*base_);
  const Region region{0, 5, dev_->rows() - 1, 8};
  const ConfigMemory mod = module_plane(1);
  const PartialGenResult want = gen.generate(mod, region);

  const PbitLease lease = gen.generate_leased(mod, region);
  ASSERT_TRUE(lease.valid());
  EXPECT_EQ(lease.bitstream().words, want.bitstream.words);
  EXPECT_EQ(lease.frames(), want.frames);
  EXPECT_EQ(lease.words().size(), want.bitstream.words.size());
  EXPECT_EQ(gen.cache_stats().pinned, 1u);
  // The span points at the cache's resident entry, not a fresh buffer:
  // a second (hypothetical) copy would have a different address, and the
  // result reference stays stable across unrelated cache churn below.
  const std::uint32_t* resident = lease.words().data();
  for (std::uint32_t t = 10; t < 14; ++t) {
    (void)gen.generate(module_plane(t), region);
  }
  EXPECT_EQ(lease.words().data(), resident);
}

TEST_F(PbitLeaseTest, PinnedEntrySurvivesEvictionStorm) {
  PartialBitstreamGenerator gen(*base_);
  gen.set_cache_capacity(2);
  const Region region{0, 5, dev_->rows() - 1, 8};
  const ConfigMemory mod = module_plane(1);
  const PartialGenResult want = gen.generate(mod, region);

  PbitLease lease = gen.generate_leased(mod, region);
  ASSERT_TRUE(lease.valid());
  // Storm: far more distinct entries than the capacity holds. The pinned
  // entry is LRU-exempt; everything else cycles through.
  for (std::uint32_t t = 2; t < 22; ++t) {
    (void)gen.generate(module_plane(t), region);
  }
  EXPECT_EQ(lease.bitstream().words, want.bitstream.words);
  PbitCacheStats stats = gen.cache_stats();
  EXPECT_EQ(stats.pinned, 1u);
  EXPECT_LE(stats.entries, stats.capacity);
  EXPECT_GT(stats.evictions, 0u);

  // Once released the entry is evictable again: shrink to zero and the
  // cache fully drains.
  lease.release();
  EXPECT_EQ(gen.cache_stats().pinned, 0u);
  gen.set_cache_capacity(0);
  EXPECT_EQ(gen.cache_stats().entries, 0u);
}

TEST_F(PbitLeaseTest, EvictionDeferredWhilePinnedAppliesOnUnpin) {
  PartialBitstreamGenerator gen(*base_);
  const Region region{0, 5, dev_->rows() - 1, 8};
  PbitLease lease = gen.generate_leased(module_plane(1), region);
  // Capacity 0 normally drops everything; the pinned entry must stay.
  gen.set_cache_capacity(0);
  EXPECT_EQ(gen.cache_stats().entries, 1u);
  EXPECT_EQ(gen.cache_stats().pinned, 1u);
  lease.release();
  // The deferred eviction fires at unpin time.
  EXPECT_EQ(gen.cache_stats().entries, 0u);
  EXPECT_EQ(gen.cache_stats().pinned, 0u);
}

TEST_F(PbitLeaseTest, ClearCacheKeepsPinnedEntries) {
  PartialBitstreamGenerator gen(*base_);
  const Region region{0, 5, dev_->rows() - 1, 8};
  const ConfigMemory mod = module_plane(1);
  const PbitLease lease = gen.generate_leased(mod, region);
  (void)gen.generate(module_plane(2), region);
  gen.clear_cache();
  // The unpinned entry is gone; the leased one still answers lookups.
  EXPECT_EQ(gen.cache_stats().entries, 1u);
  EXPECT_TRUE(lease.valid());
  (void)gen.generate(mod, region);
  EXPECT_EQ(gen.cache_stats().hits, 1u);
}

TEST_F(PbitLeaseTest, DoublePinThrows) {
  const PartialBitstreamGenerator gen(*base_);
  const Region region{0, 5, dev_->rows() - 1, 8};
  const ConfigMemory mod = module_plane(1);
  PbitLease lease = gen.generate_leased(mod, region);
  EXPECT_THROW((void)gen.generate_leased(mod, region), JpgError);
  // A plain generate() against the pinned entry is fine (it copies).
  EXPECT_EQ(gen.generate(mod, region).bitstream.words,
            lease.bitstream().words);
  // After release, leasing the same key works again.
  lease.release();
  const PbitLease again = gen.generate_leased(mod, region);
  EXPECT_TRUE(again.valid());
}

TEST_F(PbitLeaseTest, UnpinWithoutPinThrows) {
  const PartialBitstreamGenerator gen(*base_);
  const Region region{0, 5, dev_->rows() - 1, 8};
  PbitLease lease = gen.generate_leased(module_plane(1), region);
  lease.release();
  EXPECT_FALSE(lease.valid());
  EXPECT_THROW(lease.release(), JpgError);
  EXPECT_THROW((void)lease.result(), JpgError);
  PbitLease never;
  EXPECT_THROW(never.release(), JpgError);
}

TEST_F(PbitLeaseTest, MoveTransfersThePin) {
  const PartialBitstreamGenerator gen(*base_);
  const Region region{0, 5, dev_->rows() - 1, 8};
  PbitLease a = gen.generate_leased(module_plane(1), region);
  const std::uint32_t* resident = a.words().data();
  PbitLease b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): contract
  ASSERT_TRUE(b.valid());
  EXPECT_EQ(b.words().data(), resident);
  EXPECT_EQ(gen.cache_stats().pinned, 1u);
  b.release();
  EXPECT_EQ(gen.cache_stats().pinned, 0u);
}

TEST_F(PbitLeaseTest, CapacityZeroLeaseOwnsAPrivateCopy) {
  PartialBitstreamGenerator gen(*base_);
  gen.set_cache_capacity(0);
  const Region region{0, 5, dev_->rows() - 1, 8};
  PbitLease lease = gen.generate_leased(module_plane(1), region);
  ASSERT_TRUE(lease.valid());
  EXPECT_FALSE(lease.words().empty());
  EXPECT_EQ(gen.cache_stats().entries, 0u);
  EXPECT_EQ(gen.cache_stats().pinned, 0u);
  lease.release();
  EXPECT_THROW(lease.release(), JpgError);
}

// TSan coverage: leases pinned/released while generate_batch workers churn
// the same cache. The pinned entries' words must remain stable throughout,
// and the final cache state coherent.
TEST_F(PbitLeaseTest, LeaseUnderConcurrentBatchChurn) {
  PartialBitstreamGenerator gen(*base_);
  gen.set_cache_capacity(4);
  const Region lease_region{0, 2, dev_->rows() - 1, 3};
  const ConfigMemory lease_mod = module_plane(99);
  const PartialGenResult want = gen.generate(lease_mod, lease_region);

  // Disjoint-major batch regions, away from the leased region's columns.
  const ConfigMemory m1 = module_plane(11);
  const ConfigMemory m2 = module_plane(12);
  const ConfigMemory m3 = module_plane(13);
  const std::vector<RegionUpdate> updates = {
      {&m1, Region{0, 6, dev_->rows() - 1, 7}, {}},
      {&m2, Region{0, 10, dev_->rows() - 1, 11}, {}},
      {&m3, Region{0, 14, dev_->rows() - 1, 15}, {}},
  };

  for (int round = 0; round < 8; ++round) {
    PbitLease lease = gen.generate_leased(lease_mod, lease_region);
    std::thread releaser([&lease] { lease.release(); });
    const auto results = gen.generate_batch(updates, 3);
    releaser.join();
    ASSERT_EQ(results.size(), updates.size());
    EXPECT_FALSE(lease.valid());
  }
  const PbitCacheStats stats = gen.cache_stats();
  EXPECT_EQ(stats.pinned, 0u);
  EXPECT_LE(stats.entries, stats.capacity);
  // The leased pbit still regenerates/serves byte-identically.
  EXPECT_EQ(gen.generate(lease_mod, lease_region).bitstream.words,
            want.bitstream.words);
}

}  // namespace
}  // namespace jpg
