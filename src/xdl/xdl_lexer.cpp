#include "xdl/xdl_lexer.h"

#include "support/telemetry/telemetry.h"

namespace jpg {

XdlLexer::XdlLexer(std::string_view text, std::string filename)
    : filename_(std::move(filename)) {
  lex(text);
}

XdlLexer::XdlLexer(std::string&& text, std::string filename)
    : filename_(std::move(filename)), owned_(std::move(text)) {
  lex(owned_);
}

void XdlLexer::lex(std::string_view text) {
  JPG_SPAN("xdl.lex");
  JPG_TELEM(const std::uint64_t telem_t0 = telemetry::now_ns();)
  // One token per handful of source bytes is typical for XDL; reserving up
  // front avoids the vector's doubling copies on multi-megabyte designs.
  tokens_.reserve(text.size() / 8 + 4);
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c == ',') {
      tokens_.push_back({XdlToken::Kind::Comma, text.substr(i, 1), line});
      ++i;
      continue;
    }
    if (c == ';') {
      tokens_.push_back({XdlToken::Kind::Semicolon, text.substr(i, 1), line});
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && text[i + 1] == '>') {
      tokens_.push_back({XdlToken::Kind::Arrow, text.substr(i, 2), line});
      i += 2;
      continue;
    }
    if (c == '"') {
      // Strings may span lines (cfg strings routinely do in real XDL); the
      // token views the raw span between the quotes, newlines included.
      const int start_line = line;
      const std::size_t start = ++i;
      while (i < n && text[i] != '"') {
        if (text[i] == '\n') ++line;
        ++i;
      }
      if (i >= n) {
        throw ParseError(filename_, start_line, "unterminated string literal");
      }
      tokens_.push_back(
          {XdlToken::Kind::String, text.substr(start, i - start), start_line});
      ++i;
      continue;
    }
    // Bare word: runs until whitespace or a delimiter.
    const std::size_t start = i;
    while (i < n) {
      const char w = text[i];
      if (w == ' ' || w == '\t' || w == '\r' || w == '\n' || w == ',' ||
          w == ';' || w == '#' || w == '"') {
        break;
      }
      if (w == '-' && i + 1 < n && text[i + 1] == '>') break;
      ++i;
    }
    if (i == start) {
      throw ParseError(filename_, line,
                       std::string("unexpected character '") + c + "'");
    }
    tokens_.push_back(
        {XdlToken::Kind::Word, text.substr(start, i - start), line});
  }
  tokens_.push_back({XdlToken::Kind::End, {}, line});
  JPG_COUNT("xdl.lex.bytes", text.size());
  JPG_COUNT("xdl.lex.tokens", tokens_.size());
  JPG_HIST("xdl.lex.ns", telemetry::now_ns() - telem_t0);
}

}  // namespace jpg
