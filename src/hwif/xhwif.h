// Xhwif: the board-interface abstraction (the paper's XHWIF: "If there is a
// FPGA board connected to the PC and the XHWIF interface is used to connect
// the tool to the board, the newly generated partial bitstream is written
// onto the FPGA, thus partially reconfiguring the device").
//
// JPG talks to boards only through this interface; SimBoard is the simulated
// implementation used throughout this reproduction (no physical Virtex
// hardware exists to drive).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/error.h"

namespace jpg {

/// Transient board-communication failure (cable glitch, bus timeout, an
/// injected fault). Unlike BitstreamError — the device rejecting a stream —
/// a HwifError says nothing reached the device; retrying is reasonable.
class HwifError : public JpgError {
 public:
  explicit HwifError(const std::string& what) : JpgError(what) {}
};

class Xhwif {
 public:
  virtual ~Xhwif();

  [[nodiscard]] virtual std::string board_name() const = 0;

  /// Clocks configuration words into the device's configuration port.
  /// May be interleaved with step_clock (dynamic reconfiguration).
  virtual void send_config(std::span<const std::uint32_t> words) = 0;

  /// Issues the SelectMAP-style ABORT sequence: the configuration port
  /// drops any mid-packet state and desyncs, without disturbing committed
  /// frames or a running device. A downloader issues this before every
  /// (re)send so a previous stream that was cut off mid-payload cannot
  /// swallow the next stream's words.
  virtual void abort_config() = 0;

  /// Samples the DONE pin: true once the device has completed startup.
  /// A verified downloader checks this after a full-device download — a
  /// stream cut off after its last frame but before the START command
  /// leaves every frame correct yet the device unconfigured.
  [[nodiscard]] virtual bool config_done() = 0;

  /// Reads back `nframes` frames starting at linear frame index `first`.
  [[nodiscard]] virtual std::vector<std::uint32_t> readback(
      std::size_t first, std::size_t nframes) = 0;

  /// Same, into a caller-owned buffer (resized to nframes * frame_words).
  /// The allocation-free path a verifying downloader drives in a loop with
  /// one reusable scratch vector; the default forwards to readback() so
  /// existing boards keep working unchanged.
  virtual void readback_into(std::size_t first, std::size_t nframes,
                             std::vector<std::uint32_t>& out) {
    out = readback(first, nframes);
  }

  /// Triggers the CAPTURE operation: latches every live flip-flop's value
  /// into its capture bit so a subsequent readback observes device state
  /// (the XAPP138 readback-capture flow).
  virtual void capture_state() = 0;

  /// Advances the user clock.
  virtual void step_clock(int cycles) = 0;

  /// Drives / samples user I/O pins by pad number.
  virtual void set_pin(int pad, bool value) = 0;
  [[nodiscard]] virtual bool get_pin(int pad) = 0;
};

}  // namespace jpg
