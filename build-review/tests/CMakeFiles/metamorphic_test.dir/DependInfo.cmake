
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/metamorphic_test.cpp" "tests/CMakeFiles/metamorphic_test.dir/metamorphic_test.cpp.o" "gcc" "tests/CMakeFiles/metamorphic_test.dir/metamorphic_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/jpg_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/jpg_xdl.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/jpg_ucf.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/jpg_hwif.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/jpg_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/jpg_pnr.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/jpg_cbits.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/jpg_bitstream.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/jpg_device.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/jpg_netlist.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/jpg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
