#include "support/string_util.h"

#include <cctype>

namespace jpg {

namespace {
bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    const std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) {
      out.emplace_back(s.substr(start, i - start));
    }
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

std::optional<std::uint64_t> parse_uint(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::uint64_t base = 10;
  if (starts_with(s, "0x") || starts_with(s, "0X")) {
    base = 16;
    s.remove_prefix(2);
    if (s.empty()) return std::nullopt;
  }
  std::uint64_t v = 0;
  for (char c : s) {
    std::uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (base == 16 && c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else if (base == 16 && c >= 'A' && c <= 'F') {
      digit = static_cast<std::uint64_t>(c - 'A') + 10;
    } else {
      return std::nullopt;
    }
    if (v > (UINT64_MAX - digit) / base) return std::nullopt;  // overflow
    v = v * base + digit;
  }
  return v;
}

bool wildcard_match(std::string_view pattern, std::string_view name) {
  // Iterative glob with '*' only; classic two-pointer backtracking.
  std::size_t p = 0, n = 0;
  std::size_t star = std::string_view::npos, match = 0;
  while (n < name.size()) {
    if (p < pattern.size() && (pattern[p] == name[n])) {
      ++p;
      ++n;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      match = n;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      n = ++match;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace jpg
