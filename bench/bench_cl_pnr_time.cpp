// CL-PNR — §2.1/§4.1 claim: "The overall run time for CAD tools to complete
// the mapping, placement and routing will be shorter as we are dealing with
// a smaller area of logic. ... the physical-design time involved in creating
// partial bitstreams ... is significantly less than that for the complete
// bitstream."
//
// Measures the full-design flow against the constrained module-only flow
// (plain and guided) across devices, and prints per-stage timings.
#include <benchmark/benchmark.h>

#include <cctype>

#include "bench_util.h"
#include "scenarios.h"

namespace jpg {
namespace {

struct Prepared {
  scenarios::ScenarioBase base;
  std::unique_ptr<BaseFlowResult> flow;
};

Prepared& prepared(const Device& dev) {
  static std::map<std::string, Prepared> cache;
  auto it = cache.find(dev.spec().name);
  if (it == cache.end()) {
    Prepared p;
    p.base = scenarios::build_base(dev, scenarios::fig4_slots(dev));
    p.flow = std::make_unique<BaseFlowResult>(
        run_base_flow(dev, p.base.top, p.base.specs, {}));
    it = cache.emplace(dev.spec().name, std::move(p)).first;
  }
  return it->second;
}

void BM_FullDesignFlow(benchmark::State& state) {
  const Device& dev = Device::get(state.range(0) == 0 ? "XCV50" : "XCV100");
  auto base = scenarios::build_base(dev, scenarios::fig4_slots(dev));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    FlowOptions opt;
    opt.seed = seed++;
    benchmark::DoNotOptimize(
        run_base_flow(dev, base.top, base.specs, opt).design->total_pips());
  }
}
BENCHMARK(BM_FullDesignFlow)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_ModuleOnlyFlow(benchmark::State& state) {
  const Device& dev = Device::get(state.range(0) == 0 ? "XCV50" : "XCV100");
  Prepared& p = prepared(dev);
  const auto slots = scenarios::fig4_slots(dev);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    FlowOptions opt;
    opt.seed = seed++;
    benchmark::DoNotOptimize(
        run_module_flow(dev, scenarios::variant(slots[2], "match1").netlist,
                        p.flow->interface_of("u_match"), opt)
            .design->total_pips());
  }
}
BENCHMARK(BM_ModuleOnlyFlow)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_ModuleOnlyFlowGuided(benchmark::State& state) {
  const Device& dev = Device::get("XCV50");
  Prepared& p = prepared(dev);
  const auto slots = scenarios::fig4_slots(dev);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    FlowOptions opt;
    opt.seed = seed++;
    opt.placer.guided = true;  // "guided floorplanning" (paper §3.2, phase 2)
    benchmark::DoNotOptimize(
        run_module_flow(dev, scenarios::variant(slots[2], "match2").netlist,
                        p.flow->interface_of("u_match"), opt)
            .design->total_pips());
  }
}
BENCHMARK(BM_ModuleOnlyFlowGuided)->Unit(benchmark::kMillisecond);

void print_pnr_series() {
  using benchutil::fmt;
  benchutil::Table t({"device", "flow", "pack ms", "place ms", "route ms",
                      "total ms", "speedup"});
  for (const char* part : {"XCV50", "XCV100", "XCV200"}) {
    const Device& dev = Device::get(part);
    (void)RoutingGraph::get(dev);  // pay the one-off graph build outside timing
    auto base = scenarios::build_base(dev, scenarios::fig4_slots(dev));
    const BaseFlowResult full = run_base_flow(dev, base.top, base.specs, {});
    const auto slots = scenarios::fig4_slots(dev);
    const ModuleFlowResult mod =
        run_module_flow(dev, scenarios::variant(slots[2], "match1").netlist,
                        full.interface_of("u_match"));
    const double full_ms = full.timings.total_s() * 1e3;
    const double mod_ms = mod.timings.total_s() * 1e3;
    t.row({part, "full design", fmt(full.timings.pack_s * 1e3),
           fmt(full.timings.place_s * 1e3), fmt(full.timings.route_s * 1e3),
           fmt(full_ms), "1.0x"});
    t.row({part, "module only", fmt(mod.timings.pack_s * 1e3),
           fmt(mod.timings.place_s * 1e3), fmt(mod.timings.route_s * 1e3),
           fmt(mod_ms), fmt(full_ms / mod_ms) + "x"});
  }
  t.print("CL-PNR: full-design vs module-only implementation time");
  std::printf("paper shape: module-only P&R is significantly faster, and the "
              "gap widens with device size.\n");
}

/// Threads sweep for the speculative router, against the in-tree seed
/// reference algorithm (RouterOptions::reference_impl), written to
/// BENCH_pnr.json. XCV300 keeps continuity with earlier reports; XCV800
/// gives the speculative scheduler a rip-up wave wide enough to scale
/// against (the XCV300 waves are only ~45 nets). Each configuration takes
/// the best of a few runs to shave scheduler noise off single-shot flow
/// timings; JPG_BENCH_SMOKE=1 drops to XCV100 with one repeat so CI can
/// validate the report shape in seconds.
void print_parallel_series() {
  using benchutil::fmt;
  const bool smoke = benchutil::smoke_mode();
  const std::vector<const char*> parts =
      smoke ? std::vector<const char*>{"XCV100"}
            : std::vector<const char*>{"XCV300", "XCV800"};

  benchutil::JsonReport report;
  benchutil::Table t(
      {"device", "router", "threads", "pack ms", "place ms", "route ms",
       "rounds", "retries", "route speedup"});
  for (const char* part : parts) {
    const Device& dev = Device::get(part);
    (void)RoutingGraph::get(dev);  // one-off graph build outside timing
    auto base = scenarios::build_base(dev, scenarios::fig4_slots(dev));
    // The bigger devices pay seconds per flow run; two repeats is enough
    // once the one-off graph build is out of the timed region.
    const int repeats = smoke ? 1 : (dev.cols() > 48 ? 2 : 3);

    auto best_flow = [&](const FlowOptions& opt) {
      BaseFlowResult best;
      for (int i = 0; i < repeats; ++i) {
        BaseFlowResult res = run_base_flow(dev, base.top, base.specs, opt);
        if (i == 0 || res.timings.route_s < best.timings.route_s) {
          best = std::move(res);
        }
      }
      return best;
    };

    std::string sec(part);
    for (char& ch : sec) ch = static_cast<char>(std::tolower(ch));
    report.set(sec, "device", std::string(part));
    report.set(sec, "host_cpus", static_cast<double>(benchutil::host_cpus()));

    FlowOptions ref_opt;
    ref_opt.router.reference_impl = true;
    const BaseFlowResult ref = best_flow(ref_opt);
    const double ref_route_ms = ref.timings.route_s * 1e3;
    report.set(sec, "route_ms_reference", ref_route_ms);
    t.row({part, "reference", "1", fmt(ref.timings.pack_s * 1e3),
           fmt(ref.timings.place_s * 1e3), fmt(ref_route_ms), "-", "-",
           "1.0x"});

    for (const int threads : {1, 2, 4, 8}) {
      FlowOptions opt;
      opt.router.num_threads = threads;
      const BaseFlowResult res = best_flow(opt);
      const double route_ms = res.timings.route_s * 1e3;
      const double speedup = ref_route_ms / route_ms;
      const std::string tag = "_t" + std::to_string(threads);
      if (threads == 1) {
        report.set(sec, "pack_ms", res.timings.pack_s * 1e3);
        report.set(sec, "place_ms", res.timings.place_s * 1e3);
        report.set(sec, "spec_rounds",
                   static_cast<double>(res.route_stats.spec_rounds));
        report.set(sec, "spec_retries",
                   static_cast<double>(res.route_stats.spec_retries));
        report.set(sec, "nets_rerouted",
                   static_cast<double>(res.route_stats.nets_rerouted));
      }
      report.set(sec, "route_ms" + tag, route_ms);
      report.set(sec, "route_speedup" + tag, speedup);
      t.row({part, "speculative", std::to_string(threads),
             fmt(res.timings.pack_s * 1e3), fmt(res.timings.place_s * 1e3),
             fmt(route_ms), std::to_string(res.route_stats.spec_rounds),
             std::to_string(res.route_stats.spec_retries), fmt(speedup) + "x"});
    }
  }
  t.print("CL-PNR: route phase, speculative router vs seed reference");
  benchutil::add_telemetry_section(report);
  report.write_file("BENCH_pnr.json");
}

}  // namespace
}  // namespace jpg

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (!jpg::benchutil::smoke_mode()) {
    ::benchmark::RunSpecifiedBenchmarks();
    jpg::print_pnr_series();
  }
  jpg::print_parallel_series();
  return 0;
}
