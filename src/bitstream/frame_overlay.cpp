#include "bitstream/frame_overlay.h"

#include <algorithm>

namespace jpg {

std::vector<std::size_t> FrameOverlay::overlaid_indices() const {
  std::vector<std::size_t> out;
  out.reserve(frames_.size());
  for (const auto& [idx, _] : frames_) out.push_back(idx);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace jpg
