// AcceleratorScheduler: the runtime workload layer over ReconfigService.
//
// Applications register task graphs (task_graph.h) whose nodes name socket
// kernels with per-node variant pools; the scheduler owns a ReconfigService
// fleet sharing the SchedFixture base design and dispatches ready nodes with
// locality-aware placement, climbing a three-rung ladder per node:
//
//   1. Reuse     — a free slot already holds a pool variant: swap avoidance,
//                  the service serves the lease from its resident registry.
//   2. Relocated — a resident donor pbit of a pool variant exists anywhere:
//                  submit with module_config = nullptr and let the service
//                  relocate the donor (PR 9 allow_relocation, containment
//                  relaxed — sound on the uniform-socket fixture).
//   3. Cold      — flow output is generated from the fixture's module plane.
//
// Dependencies flow through a completion bus: the service's on_complete hook
// plus the scheduler's own completion path mark successors ready and hand
// each node the XOR of its predecessors' BitstreamSim output traces as its
// input stream, so any schedule that respects the DAG must reproduce the
// sequential reference traces exactly (reference_traces) — the invariant the
// scheduler oracle family proves per random graph.
//
// Everything is instrumented as `sched.*` telemetry (docs/OBSERVABILITY.md)
// next to the service's `svc.*` catalogue.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "sched/sched_fixture.h"
#include "sched/task_graph.h"
#include "service/reconfig_service.h"
#include "support/thread_pool.h"

namespace jpg::sched {

/// Which rung of the placement ladder served a node.
enum class Placement {
  Reuse,      ///< pool variant already resident at the chosen slot
  Relocated,  ///< served by relocating a donor pbit of a pool variant
  Cold,       ///< generated from the fixture's flowed module plane
};

[[nodiscard]] std::string_view placement_name(Placement p);

struct SchedConfig {
  std::size_t num_boards = 1;
  /// Scheduler-owned execution pool width. The scheduler must NOT share the
  /// service's pool: node tasks block on service futures, so sharing would
  /// deadlock once every worker waits on a swap only that pool could run.
  std::size_t workers = 2;
  int sim_cycles = 24;     ///< per-node simulation length (bits of trace)
  bool locality = true;    ///< rung 1: prefer slots already holding a variant
  bool allow_relocation = true;  ///< rung 2: donor relocation before cold
  int max_retries = 2;     ///< cold retries after a reuse/relocation failure
  /// Service configuration; the ctor forces allow_relocation /
  /// reloc_require_containment to match the rungs enabled above and chains
  /// any caller-provided on_complete hook behind the scheduler's own.
  ServiceConfig service;
};

struct NodeResult {
  std::size_t node = 0;
  std::string kernel;
  std::string variant;     ///< registry label actually served ("fir#1")
  int board = -1;
  int slot = -1;
  Placement placement = Placement::Cold;
  bool ok = false;
  std::string error;
  std::vector<bool> trace;       ///< simulated output, sim_cycles bits
  std::uint64_t start_event = 0;  ///< dispatch order (global event clock)
  std::uint64_t end_event = 0;    ///< completion order (same clock)
  std::uint64_t queue_wait_ns = 0;  ///< ready -> dispatch
  std::uint64_t service_ns = 0;     ///< service-side dispatch -> completion
};

struct AppReport {
  std::uint64_t app = 0;
  bool completed = false;  ///< every node ran and succeeded
  bool cancelled = false;
  std::vector<NodeResult> nodes;  ///< indexed like TaskGraph::nodes
};

struct AppTicket {
  std::uint64_t id = 0;
  std::shared_future<AppReport> report;
};

struct SchedStats {
  std::uint64_t apps_submitted = 0;
  std::uint64_t apps_completed = 0;
  std::uint64_t apps_cancelled = 0;
  std::uint64_t apps_failed = 0;
  std::uint64_t nodes_dispatched = 0;
  std::uint64_t nodes_completed = 0;
  std::uint64_t nodes_failed = 0;
  std::uint64_t nodes_cancelled = 0;
  std::uint64_t placements_reuse = 0;
  std::uint64_t placements_relocated = 0;
  std::uint64_t placements_cold = 0;
  std::uint64_t swap_retries = 0;     ///< ladder fallbacks to a cold retry
  std::uint64_t dep_violations = 0;   ///< dispatches with an unfinished pred
  std::uint64_t completion_events = 0;  ///< service on_complete deliveries
  std::uint64_t boards_revoked = 0;

  /// Swap-avoidance hit rate: reuse placements over completed nodes.
  [[nodiscard]] double reuse_rate() const {
    return nodes_completed == 0
               ? 0.0
               : static_cast<double>(placements_reuse) /
                     static_cast<double>(nodes_completed);
  }
};

/// Sequential reference execution: every node in index order, pool variant 0
/// at slot 0, no service involved. The oracle family compares scheduled
/// traces against these — placement must never change results.
[[nodiscard]] std::vector<std::vector<bool>> reference_traces(
    const SchedFixture& fixture, const TaskGraph& graph, int sim_cycles);

/// The input stream a node sees: XOR of its predecessors' output traces, or
/// a stream seeded from stimulus_seed for source nodes.
[[nodiscard]] std::vector<bool> node_input(
    const TaskGraph& graph, std::size_t node,
    const std::vector<std::vector<bool>>& traces, int sim_cycles);

class AcceleratorScheduler {
 public:
  /// `fixture` must outlive the scheduler.
  explicit AcceleratorScheduler(const SchedFixture& fixture,
                                SchedConfig cfg = {});
  ~AcceleratorScheduler();

  AcceleratorScheduler(const AcceleratorScheduler&) = delete;
  AcceleratorScheduler& operator=(const AcceleratorScheduler&) = delete;

  /// Registers a task graph; throws JpgError on invalid graphs (unknown
  /// kernel, impl outside the fixture pool) and after shutdown().
  [[nodiscard]] AppTicket submit(TaskGraph graph);

  /// Cancels an app: waiting/ready nodes become Cancelled, running nodes
  /// finish. The app's report resolves with cancelled = true. Unknown or
  /// already-finished ids are a no-op.
  void cancel(std::uint64_t app_id);

  /// Takes board `i` out of dispatch; running nodes on it finish. When no
  /// boards remain, every unstarted node fails (nothing can ever place).
  void revoke_board(std::size_t i);
  /// Returns a revoked board to dispatch.
  void restore_board(std::size_t i);

  /// Forwards to the service, then resyncs the slot registry from
  /// applied_pbits (defrag moves resident variants between slots).
  DefragReport defragment(std::size_t board);

  /// Stops admitting apps. drain=true waits for every registered app to
  /// resolve; drain=false cancels unstarted work first. Idempotent.
  void shutdown(bool drain = true);

  [[nodiscard]] SchedStats stats() const;
  [[nodiscard]] ReconfigService& service() { return *svc_; }
  [[nodiscard]] const SchedFixture& fixture() const { return *fixture_; }

 private:
  enum class NodeState { Waiting, Ready, Running, Done, Failed, Cancelled };

  struct AppCtx {
    std::uint64_t id = 0;
    TaskGraph graph;
    std::vector<NodeState> state;
    std::vector<std::vector<bool>> traces;
    std::vector<NodeResult> results;
    std::vector<std::uint64_t> ready_ns;  ///< steady clock at Ready
    std::size_t unfinished = 0;
    bool cancelled = false;
    bool finalized = false;
    std::promise<AppReport> promise;
  };

  struct SlotState {
    bool busy = false;
    std::string variant;  ///< registry label resident here ("" = base v0)
  };

  struct BoardState {
    std::vector<SlotState> slots;
    bool revoked = false;
  };

  struct Dispatch {
    std::shared_ptr<AppCtx> app;
    std::size_t node = 0;
    int board = -1;
    int slot = -1;
    Placement placement = Placement::Cold;
    std::string variant;
    int impl = 0;
  };

  void dispatcher_loop();
  /// One scan for a dispatchable (ready node, free slot) pair under lock_;
  /// fills `out` and marks the node Running. Returns false when nothing is
  /// dispatchable right now.
  bool pick_dispatch_locked(Dispatch& out);
  void execute_node(Dispatch d);
  /// Completion bus: marks the node Done/Failed, frees the slot, readies
  /// successors, finalizes the app when its last node resolves.
  void complete_node_locked(std::unique_lock<std::mutex>& lock,
                            const Dispatch& d, NodeResult result);
  void finalize_app_locked(AppCtx& app);
  /// Fails every not-yet-running node of every app (no boards left).
  void fail_unstarted_locked(const std::string& why);
  [[nodiscard]] bool all_boards_revoked_locked() const;

  const SchedFixture* fixture_;
  SchedConfig cfg_;
  std::unique_ptr<ReconfigService> svc_;
  /// Private pool — see SchedConfig::workers. ThreadPool::sized() caches by
  /// width and must not be used here (aliasing with the service's pool).
  std::shared_ptr<ThreadPool> pool_;

  mutable std::mutex lock_;
  std::condition_variable cv_;
  std::vector<std::shared_ptr<AppCtx>> apps_;
  std::vector<BoardState> boards_;
  /// variant label -> region keys a lease was created at. Advisory donor
  /// index for rung 2: stale entries are harmless (the service rejects a
  /// donorless relocation and the cold retry covers it).
  std::map<std::string, std::set<std::string>> lease_regions_;
  std::uint64_t next_app_ = 1;
  std::uint64_t event_clock_ = 0;
  std::size_t inflight_ = 0;
  bool accepting_ = true;
  bool stop_dispatcher_ = false;
  SchedStats stats_;

  std::thread dispatcher_;
};

}  // namespace jpg::sched
