// JpgProject: persistent tool projects ("A new project can be created in JPG
// or an existing project can be opened", paper §3.2.1).
//
// A project directory holds:
//   project.jpg    manifest (part, base bitstream file, module entries)
//   base.bit       the base design's complete bitstream
//   <module>.xdl   one XDL per registered module variant
//   <module>.ucf   its constraints
#pragma once

#include <string>
#include <vector>

#include "bitstream/packet.h"

namespace jpg {

struct JpgModuleEntry {
  std::string name;      ///< variant name (also the file stem)
  std::string xdl_text;
  std::string ucf_text;
};

struct JpgProject {
  std::string name;
  std::string device_part;
  Bitstream base;
  std::vector<JpgModuleEntry> modules;

  [[nodiscard]] const JpgModuleEntry& module(const std::string& name) const;

  /// Serialises the manifest (without file contents) for inspection.
  [[nodiscard]] std::string manifest() const;

  /// Writes the project directory (created if missing).
  void save(const std::string& dir) const;

  /// Opens an existing project directory. Throws JpgError on missing or
  /// malformed pieces.
  static JpgProject load(const std::string& dir);
};

}  // namespace jpg
