file(REMOVE_RECURSE
  "CMakeFiles/rc_context_switch.dir/rc_context_switch.cpp.o"
  "CMakeFiles/rc_context_switch.dir/rc_context_switch.cpp.o.d"
  "rc_context_switch"
  "rc_context_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_context_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
