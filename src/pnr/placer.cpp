#include "pnr/placer.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/log.h"
#include "support/telemetry/telemetry.h"

namespace jpg {

namespace {

/// A placeable element: a packed slice or a pad cell.
struct Element {
  enum class Kind { Slice, Iob };
  Kind kind = Kind::Slice;
  std::size_t index = 0;  ///< slice index or iob order index
  bool locked = false;
  int allowed = -1;  ///< allowed-set id (elements may swap if ids match)
  /// Cached &allowed_sites_[allowed] (stable after build_allowed_sets), so
  /// the move loop never re-indexes the set table.
  const std::vector<std::size_t>* candidates = nullptr;
};

struct Pos {
  double x = 0, y = 0;
};

class Annealer {
 public:
  Annealer(PlacedDesign& d, const PlacementConstraints& cons,
           const PlacerOptions& opt)
      : d_(d), cons_(cons), opt_(opt), dev_(d.device()), rng_(opt.seed) {}

  PlaceStats run();

 private:
  void build_allowed_sets();
  void initial_place();
  void build_net_adjacency();
  [[nodiscard]] double net_cost(std::size_t net_idx) const;
  [[nodiscard]] double total_cost() const;
  void refresh_cost_cache();
  const std::vector<std::size_t>& collect_affected(const Element& e,
                                                   const Element* other);
  bool try_move(double temperature, PlaceStats& stats);

  [[nodiscard]] std::size_t slice_site_index(SliceSite s) const {
    return (static_cast<std::size_t>(s.r) * dev_.cols() + s.c) * 2 +
           static_cast<std::size_t>(s.slice);
  }
  [[nodiscard]] SliceSite slice_site_of_index(std::size_t idx) const {
    const int slice = static_cast<int>(idx % 2);
    const std::size_t tile = idx / 2;
    return {static_cast<int>(tile / dev_.cols()),
            static_cast<int>(tile % dev_.cols()), slice};
  }

  PlacedDesign& d_;
  const PlacementConstraints& cons_;
  const PlacerOptions& opt_;
  const Device& dev_;
  Rng rng_;

  std::vector<Element> elements_;
  std::vector<std::size_t> movable_;  ///< indices into elements_

  // Allowed sets: candidate slice-site indices per set id; set id per slice.
  std::vector<std::vector<std::size_t>> allowed_sites_;
  std::vector<int> slice_allowed_;  ///< per packed slice

  // Occupancy.
  std::vector<int> site_occupant_;  ///< slice-site index -> element idx or -1
  std::vector<int> iob_occupant_;   ///< iob order index -> element idx or -1
  std::vector<IobSite> iob_site_list_;
  std::vector<std::size_t> iob_site_of_cell_;  ///< per d_.iob_cells order

  // Net adjacency for incremental cost.
  // Endpoint encoding: kind<<60 | payload. Simpler: struct.
  struct Endpoint {
    enum class Kind { Slice, Iob, Fixed };
    Kind kind = Kind::Slice;
    std::size_t index = 0;
    Pos fixed;
  };
  std::vector<std::vector<Endpoint>> net_endpoints_;
  std::vector<std::vector<std::size_t>> nets_of_slice_;
  std::vector<std::vector<std::size_t>> nets_of_iob_;

  // Incremental cost state: net_cost_cache_[n] always equals net_cost(n) for
  // the current placement (moves recompute only the affected nets and write
  // the fresh values back on accept), so a move's "before" sum is table
  // lookups instead of bounding-box walks.
  std::vector<double> net_cost_cache_;
  std::vector<std::size_t> affected_scratch_;
  std::vector<double> new_cost_scratch_;
};

void Annealer::build_allowed_sets() {
  const Netlist& nl = d_.netlist();
  allowed_sites_.clear();
  // Set 0: the default set. Module designs restrict everything to the
  // region; base designs restrict static logic to the complement of all
  // area-group regions (if requested).
  auto tiles_matching = [&](auto&& pred) {
    std::vector<std::size_t> sites;
    for (int r = 0; r < dev_.rows(); ++r) {
      for (int c = 0; c < dev_.cols(); ++c) {
        if (!pred(TileCoord{r, c})) continue;
        sites.push_back(slice_site_index({r, c, 0}));
        sites.push_back(slice_site_index({r, c, 1}));
      }
    }
    return sites;
  };

  std::map<std::string, int> set_of_partition;
  if (d_.region.has_value()) {
    const Region reg = *d_.region;
    allowed_sites_.push_back(
        tiles_matching([&](TileCoord t) { return reg.contains(t); }));
  } else {
    allowed_sites_.push_back(tiles_matching([&](TileCoord t) {
      if (!cons_.static_outside_groups) return true;
      for (const auto& [part, reg] : cons_.area_groups) {
        if (reg.contains(t)) return false;
      }
      return true;
    }));
    for (const auto& [part, reg] : cons_.area_groups) {
      JPG_REQUIRE(reg.in_bounds(dev_),
                  "area group region out of bounds for " + part);
      set_of_partition[part] = static_cast<int>(allowed_sites_.size());
      allowed_sites_.push_back(
          tiles_matching([&](TileCoord t) { return reg.contains(t); }));
    }
  }

  slice_allowed_.assign(d_.slices.size(), 0);
  for (std::size_t i = 0; i < d_.slices.size(); ++i) {
    const auto it = set_of_partition.find(d_.slices[i].partition);
    if (it != set_of_partition.end()) slice_allowed_[i] = it->second;
  }

  // Capacity checks per set (approximate: ignores overlap between sets).
  std::map<int, std::size_t> demand;
  for (const int a : slice_allowed_) ++demand[a];
  for (const auto& [set, need] : demand) {
    if (need > allowed_sites_[static_cast<std::size_t>(set)].size()) {
      std::ostringstream os;
      os << "placement set " << set << " needs " << need << " slices but has "
         << allowed_sites_[static_cast<std::size_t>(set)].size() << " sites";
      throw DeviceError(os.str());
    }
  }
  (void)nl;
}

void Annealer::initial_place() {
  const Netlist& nl = d_.netlist();
  site_occupant_.assign(
      static_cast<std::size_t>(dev_.rows()) * dev_.cols() * 2, -1);

  const bool keep_existing =
      opt_.guided && d_.slice_sites.size() == d_.slices.size();
  if (!keep_existing) {
    d_.slice_sites.assign(d_.slices.size(), SliceSite{});
  }

  elements_.clear();
  movable_.clear();

  // 1. Slices: LOC-locked first, then guided/fresh fills.
  std::vector<std::size_t> unlocked;
  for (std::size_t i = 0; i < d_.slices.size(); ++i) {
    Element e;
    e.kind = Element::Kind::Slice;
    e.index = i;
    e.allowed = slice_allowed_[i];
    e.candidates = &allowed_sites_[static_cast<std::size_t>(e.allowed)];
    // A slice is LOC-locked when any of its cells has a LOC constraint.
    const PackedSlice& ps = d_.slices[i];
    for (int le = 0; le < 2 && !e.locked; ++le) {
      for (const CellId cid : {ps.le[le].lut, ps.le[le].ff}) {
        if (cid == kNullCell) continue;
        const auto it = cons_.loc_slices.find(nl.cell(cid).name);
        if (it != cons_.loc_slices.end()) {
          const std::size_t site = slice_site_index(it->second);
          JPG_REQUIRE(site_occupant_[site] == -1,
                      "two slices LOCed to the same site");
          d_.slice_sites[i] = it->second;
          site_occupant_[site] = static_cast<int>(elements_.size());
          e.locked = true;
          break;
        }
      }
    }
    if (!e.locked) unlocked.push_back(elements_.size());
    elements_.push_back(e);
  }
  // Fill unlocked slices.
  std::vector<std::size_t> cursor(allowed_sites_.size(), 0);
  for (const std::size_t ei : unlocked) {
    Element& e = elements_[ei];
    const std::size_t slice = e.index;
    if (keep_existing) {
      const std::size_t site = slice_site_index(d_.slice_sites[slice]);
      JPG_REQUIRE(site_occupant_[site] == -1, "guided placement overlaps");
      site_occupant_[site] = static_cast<int>(ei);
      movable_.push_back(ei);
      continue;
    }
    auto& candidates = allowed_sites_[static_cast<std::size_t>(e.allowed)];
    std::size_t& cur = cursor[static_cast<std::size_t>(e.allowed)];
    bool placed = false;
    while (cur < candidates.size()) {
      const std::size_t site = candidates[cur++];
      if (site_occupant_[site] == -1) {
        site_occupant_[site] = static_cast<int>(ei);
        d_.slice_sites[slice] = slice_site_of_index(site);
        placed = true;
        break;
      }
    }
    if (!placed) throw DeviceError("ran out of sites during initial placement");
    movable_.push_back(ei);
  }

  // 2. Pads. Module designs have no pads to place.
  iob_site_list_ = dev_.all_iob_sites();
  iob_occupant_.assign(iob_site_list_.size(), -1);
  const bool keep_iobs = keep_existing && !d_.iob_cells.empty();
  if (!keep_iobs) {
    d_.iob_cells.clear();
    d_.iob_sites.clear();
    for (CellId id = 0; id < nl.num_cells(); ++id) {
      const Cell& c = nl.cell(id);
      if (c.kind != CellKind::Ibuf && c.kind != CellKind::Obuf) continue;
      if (cons_.interface_ports.count(c.port) != 0) continue;
      d_.iob_cells.push_back(id);
      d_.iob_sites.push_back(IobSite{});
    }
  }
  iob_site_of_cell_.assign(d_.iob_cells.size(), 0);
  std::size_t next_free = 0;
  for (std::size_t i = 0; i < d_.iob_cells.size(); ++i) {
    Element e;
    e.kind = Element::Kind::Iob;
    e.index = i;
    e.allowed = -1;
    const Cell& c = nl.cell(d_.iob_cells[i]);
    const auto it = cons_.loc_pads.find(c.port);
    std::size_t site_idx;
    if (it != cons_.loc_pads.end()) {
      const auto site = dev_.iob_by_pad_number(it->second);
      JPG_REQUIRE(site.has_value(), "LOC pad number out of range");
      site_idx = static_cast<std::size_t>(
          std::find(iob_site_list_.begin(), iob_site_list_.end(), *site) -
          iob_site_list_.begin());
      JPG_REQUIRE(iob_occupant_[site_idx] == -1, "two ports LOCed to one pad");
      e.locked = true;
    } else if (keep_iobs) {
      site_idx = static_cast<std::size_t>(
          std::find(iob_site_list_.begin(), iob_site_list_.end(),
                    d_.iob_sites[i]) -
          iob_site_list_.begin());
    } else {
      while (next_free < iob_site_list_.size() &&
             iob_occupant_[next_free] != -1) {
        ++next_free;
      }
      JPG_REQUIRE(next_free < iob_site_list_.size(), "out of pads");
      site_idx = next_free;
    }
    iob_occupant_[site_idx] = static_cast<int>(elements_.size());
    iob_site_of_cell_[i] = site_idx;
    d_.iob_sites[i] = iob_site_list_[site_idx];
    if (!e.locked) movable_.push_back(elements_.size());
    elements_.push_back(e);
  }
}

void Annealer::build_net_adjacency() {
  const Netlist& nl = d_.netlist();
  net_endpoints_.clear();
  nets_of_slice_.assign(d_.slices.size(), {});
  nets_of_iob_.assign(d_.iob_cells.size(), {});

  // cell -> element lookup tables.
  std::unordered_map<CellId, std::size_t> iob_of_cell;
  for (std::size_t i = 0; i < d_.iob_cells.size(); ++i) {
    iob_of_cell[d_.iob_cells[i]] = i;
  }
  std::unordered_map<CellId, Pos> port_pos;
  for (const PlacedPort& p : d_.ports) {
    const int col = p.is_input ? d_.region->c0 - 1 : d_.region->c1;
    port_pos[p.cell] = {static_cast<double>(col), static_cast<double>(p.row)};
  }

  auto endpoint_of_cell = [&](CellId id) -> std::optional<Endpoint> {
    const Cell& c = nl.cell(id);
    switch (c.kind) {
      case CellKind::Lut4:
      case CellKind::Dff: {
        Endpoint ep;
        ep.kind = Endpoint::Kind::Slice;
        ep.index = d_.cell_place.at(id).slice_index;
        return ep;
      }
      case CellKind::Ibuf:
      case CellKind::Obuf: {
        const auto it = iob_of_cell.find(id);
        if (it != iob_of_cell.end()) {
          Endpoint ep;
          ep.kind = Endpoint::Kind::Iob;
          ep.index = it->second;
          return ep;
        }
        const auto pit = port_pos.find(id);
        if (pit != port_pos.end()) {
          Endpoint ep;
          ep.kind = Endpoint::Kind::Fixed;
          ep.fixed = pit->second;
          return ep;
        }
        return std::nullopt;
      }
      default:
        return std::nullopt;  // constants: no position
    }
  };

  for (NetId id = 0; id < nl.num_nets(); ++id) {
    const Net& net = nl.net(id);
    if (net.driver == kNullCell || net.sinks.empty()) continue;
    std::vector<Endpoint> eps;
    if (const auto ep = endpoint_of_cell(net.driver)) eps.push_back(*ep);
    for (const NetSink& s : net.sinks) {
      if (const auto ep = endpoint_of_cell(s.cell)) eps.push_back(*ep);
    }
    if (eps.size() < 2) continue;
    const std::size_t net_idx = net_endpoints_.size();
    for (const Endpoint& ep : eps) {
      if (ep.kind == Endpoint::Kind::Slice) {
        nets_of_slice_[ep.index].push_back(net_idx);
      } else if (ep.kind == Endpoint::Kind::Iob) {
        nets_of_iob_[ep.index].push_back(net_idx);
      }
    }
    net_endpoints_.push_back(std::move(eps));
  }
  // Deduplicate per-element net lists (a net may touch one slice twice).
  for (auto* lists : {&nets_of_slice_, &nets_of_iob_}) {
    for (auto& l : *lists) {
      std::sort(l.begin(), l.end());
      l.erase(std::unique(l.begin(), l.end()), l.end());
    }
  }
}

double Annealer::net_cost(std::size_t net_idx) const {
  double minx = 1e18, maxx = -1e18, miny = 1e18, maxy = -1e18;
  for (const Endpoint& ep : net_endpoints_[net_idx]) {
    Pos p;
    switch (ep.kind) {
      case Endpoint::Kind::Slice: {
        const SliceSite s = d_.slice_sites[ep.index];
        p = {static_cast<double>(s.c), static_cast<double>(s.r)};
        break;
      }
      case Endpoint::Kind::Iob: {
        const IobSite s = d_.iob_sites[ep.index];
        p = {s.side == Side::Left ? -1.0 : static_cast<double>(dev_.cols()),
             static_cast<double>(s.row)};
        break;
      }
      case Endpoint::Kind::Fixed:
        p = ep.fixed;
        break;
    }
    minx = std::min(minx, p.x);
    maxx = std::max(maxx, p.x);
    miny = std::min(miny, p.y);
    maxy = std::max(maxy, p.y);
  }
  return (maxx - minx) + (maxy - miny);
}

double Annealer::total_cost() const {
  double c = 0;
  for (std::size_t i = 0; i < net_endpoints_.size(); ++i) c += net_cost(i);
  return c;
}

void Annealer::refresh_cost_cache() {
  net_cost_cache_.resize(net_endpoints_.size());
  for (std::size_t i = 0; i < net_endpoints_.size(); ++i) {
    net_cost_cache_[i] = net_cost(i);
  }
}

/// Nets touched by moving `e` (and `other`, when swapping), deduplicated so
/// a net spanning both elements contributes its true delta exactly once.
const std::vector<std::size_t>& Annealer::collect_affected(
    const Element& e, const Element* other) {
  auto nets_of = [&](const Element& el) -> const std::vector<std::size_t>& {
    return el.kind == Element::Kind::Slice ? nets_of_slice_[el.index]
                                           : nets_of_iob_[el.index];
  };
  affected_scratch_.clear();
  const auto& a = nets_of(e);
  affected_scratch_.assign(a.begin(), a.end());
  if (other != nullptr) {
    const auto& b = nets_of(*other);
    affected_scratch_.insert(affected_scratch_.end(), b.begin(), b.end());
    std::sort(affected_scratch_.begin(), affected_scratch_.end());
    affected_scratch_.erase(
        std::unique(affected_scratch_.begin(), affected_scratch_.end()),
        affected_scratch_.end());
  }
  return affected_scratch_;
}

bool Annealer::try_move(double temperature, PlaceStats& stats) {
  if (movable_.empty()) return false;
  ++stats.moves;
  const std::size_t ei = movable_[rng_.uniform(movable_.size())];
  Element& e = elements_[ei];

  // Evaluate a move after its sites are swapped: the "before" sum comes from
  // the cache, only the affected nets are re-measured, and accepted moves
  // write the fresh values back so the cache stays exact. Returns the
  // accept/reject decision; the caller reverts sites on reject.
  auto decide = [&](const std::vector<std::size_t>& affected,
                    double before) -> bool {
    new_cost_scratch_.clear();
    double after = 0;
    for (const std::size_t n : affected) {
      const double c = net_cost(n);
      new_cost_scratch_.push_back(c);
      after += c;
    }
    const double delta = after - before;
    if (delta <= 0 ||
        (temperature > 0 && rng_.unit() < std::exp(-delta / temperature))) {
      for (std::size_t i = 0; i < affected.size(); ++i) {
        net_cost_cache_[affected[i]] = new_cost_scratch_[i];
      }
      ++stats.accepted;
      return true;
    }
    return false;
  };

  if (e.kind == Element::Kind::Slice) {
    const auto& candidates = *e.candidates;
    const std::size_t target = candidates[rng_.uniform(candidates.size())];
    const std::size_t source = slice_site_index(d_.slice_sites[e.index]);
    if (target == source) return false;
    const int occ = site_occupant_[target];
    Element* other = nullptr;
    if (occ >= 0) {
      other = &elements_[static_cast<std::size_t>(occ)];
      if (other->locked || other->kind != Element::Kind::Slice ||
          other->allowed != e.allowed) {
        return false;  // can't displace
      }
    }
    const auto& affected = collect_affected(e, other);
    double before = 0;
    for (const std::size_t n : affected) before += net_cost_cache_[n];
    // Apply.
    const SliceSite old_site = d_.slice_sites[e.index];
    d_.slice_sites[e.index] = slice_site_of_index(target);
    site_occupant_[target] = static_cast<int>(ei);
    if (other != nullptr) {
      d_.slice_sites[other->index] = old_site;
      site_occupant_[source] = occ;
    } else {
      site_occupant_[source] = -1;
    }
    if (decide(affected, before)) return true;
    // Revert.
    d_.slice_sites[e.index] = old_site;
    site_occupant_[source] = static_cast<int>(ei);
    if (other != nullptr) {
      d_.slice_sites[other->index] = slice_site_of_index(target);
      site_occupant_[target] = occ;
    } else {
      site_occupant_[target] = -1;
    }
    return false;
  }

  // IOB move.
  const std::size_t target = rng_.uniform(iob_site_list_.size());
  const std::size_t source = iob_site_of_cell_[e.index];
  if (target == source) return false;
  const int occ = iob_occupant_[target];
  Element* other = nullptr;
  if (occ >= 0) {
    other = &elements_[static_cast<std::size_t>(occ)];
    if (other->locked) return false;
  }
  const auto& affected = collect_affected(e, other);
  double before = 0;
  for (const std::size_t n : affected) before += net_cost_cache_[n];
  d_.iob_sites[e.index] = iob_site_list_[target];
  iob_site_of_cell_[e.index] = target;
  iob_occupant_[target] = static_cast<int>(ei);
  if (other != nullptr) {
    d_.iob_sites[other->index] = iob_site_list_[source];
    iob_site_of_cell_[other->index] = source;
    iob_occupant_[source] = occ;
  } else {
    iob_occupant_[source] = -1;
  }
  if (decide(affected, before)) return true;
  d_.iob_sites[e.index] = iob_site_list_[source];
  iob_site_of_cell_[e.index] = source;
  iob_occupant_[source] = static_cast<int>(ei);
  if (other != nullptr) {
    d_.iob_sites[other->index] = iob_site_list_[target];
    iob_site_of_cell_[other->index] = target;
    iob_occupant_[target] = occ;
  } else {
    iob_occupant_[target] = -1;
  }
  return false;
}

PlaceStats Annealer::run() {
  build_allowed_sets();
  initial_place();
  build_net_adjacency();

  PlaceStats stats;
  refresh_cost_cache();
  stats.initial_cost = total_cost();

  // Temperature from sampled move deltas.
  double t0 = std::max(1.0, stats.initial_cost /
                                std::max<std::size_t>(1, net_endpoints_.size()));
  if (opt_.guided) t0 *= opt_.guided_temp_scale;

  double t = t0;
  const std::size_t moves_per_round =
      std::max<std::size_t>(64, static_cast<std::size_t>(opt_.moves_per_le) *
                                    movable_.size());
  while (t > 0.01) {
    for (std::size_t m = 0; m < moves_per_round; ++m) {
      try_move(t, stats);
    }
    t *= opt_.cooling;
  }
  // Greedy cleanup at zero temperature.
  for (std::size_t m = 0; m < moves_per_round; ++m) {
    try_move(0, stats);
  }

  stats.final_cost = total_cost();
  JPG_DEBUG("placer: cost " << stats.initial_cost << " -> " << stats.final_cost
                            << " (" << stats.accepted << "/" << stats.moves
                            << " moves)");
  return stats;
}

}  // namespace

PlaceStats place_design(PlacedDesign& design,
                        const PlacementConstraints& constraints,
                        const PlacerOptions& options) {
  JPG_SPAN("pnr.place");
  JPG_REQUIRE(!design.slices.empty() || design.netlist().num_cells() > 0,
              "placing an unpacked design");
  Annealer annealer(design, constraints, options);
  PlaceStats stats = annealer.run();
  JPG_COUNT("pnr.place.runs", 1);
  JPG_COUNT("pnr.place.moves", stats.moves);
  JPG_COUNT("pnr.place.accepted", stats.accepted);
  return stats;
}

}  // namespace jpg
