file(REMOVE_RECURSE
  "CMakeFiles/jpg_core.dir/core/floorplan_view.cpp.o"
  "CMakeFiles/jpg_core.dir/core/floorplan_view.cpp.o.d"
  "CMakeFiles/jpg_core.dir/core/jpg.cpp.o"
  "CMakeFiles/jpg_core.dir/core/jpg.cpp.o.d"
  "CMakeFiles/jpg_core.dir/core/partial_gen.cpp.o"
  "CMakeFiles/jpg_core.dir/core/partial_gen.cpp.o.d"
  "CMakeFiles/jpg_core.dir/core/project.cpp.o"
  "CMakeFiles/jpg_core.dir/core/project.cpp.o.d"
  "CMakeFiles/jpg_core.dir/core/xdl_to_cbits.cpp.o"
  "CMakeFiles/jpg_core.dir/core/xdl_to_cbits.cpp.o.d"
  "libjpg_core.a"
  "libjpg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
