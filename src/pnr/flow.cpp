#include "pnr/flow.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <sstream>

#include "support/log.h"
#include "support/telemetry/telemetry.h"

namespace jpg {

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Programs the global clock into every slice that holds a FF.
void add_clock_pips(PlacedDesign& d) {
  d.clock_pips.clear();
  for (std::size_t i = 0; i < d.slices.size(); ++i) {
    const PackedSlice& ps = d.slices[i];
    if (ps.le[0].ff == kNullCell && ps.le[1].ff == kNullCell) continue;
    const SliceSite s = d.slice_sites[i];
    d.clock_pips.push_back(RoutedPip{
        TileCoord{s.r, s.c}, imux_local(s.slice, ImuxPin::CLK), 1});
  }
}

/// Folds one routing pass into a flow-level aggregate: counters sum across
/// passes, `iterations` keeps the worst pass.
void accumulate(RouteStats& into, const RouteStats& pass) {
  into.iterations = std::max(into.iterations, pass.iterations);
  into.nodes_used += pass.nodes_used;
  into.total_pips += pass.total_pips;
  into.spec_rounds += pass.spec_rounds;
  into.spec_retries += pass.spec_retries;
  into.nets_rerouted += pass.nets_rerouted;
}

/// Crossing wire node for a binding, given the region.
std::size_t crossing_node(const Device& dev, const Region& reg,
                          const PortBinding& b) {
  const int col = b.is_input ? reg.c0 - 1 : reg.c1;
  return dev.fabric().tile_wire_node(b.row, col, single_local(Dir::E, b.k));
}

/// Each crossing carries exactly one net. A net bound to two interface
/// ports of the same partition cannot be honoured: the crossing maps are
/// keyed by net, so one of the two allocated crossings would be left
/// silently unrouted and the static fabric would listen on the wrong wire
/// after a variant swap (the merged base netlist cannot tell the ports
/// apart). Reject such interfaces outright.
void require_dedicated_nets(
    const std::vector<std::pair<std::string, NetId>>& ports,
    const std::string& partition, const char* direction) {
  std::map<NetId, std::string> seen;
  for (const auto& [port, net] : ports) {
    const auto [it, inserted] = seen.emplace(net, port);
    if (!inserted) {
      std::ostringstream os;
      os << "partition " << partition << ": " << direction << " ports '"
         << it->second << "' and '" << port << "' share net " << net
         << "; each boundary crossing needs a dedicated net";
      throw JpgError(os.str());
    }
  }
}

/// Allocates boundary crossings for a partition: ports sorted by name,
/// distributed down the rows first, then across single indices.
std::vector<PortBinding> allocate_bindings(
    const Region& reg, std::vector<std::pair<std::string, NetId>> inputs,
    std::vector<std::pair<std::string, NetId>> outputs,
    const std::string& partition) {
  require_dedicated_nets(inputs, partition, "input");
  require_dedicated_nets(outputs, partition, "output");
  std::vector<PortBinding> bindings;
  const int height = reg.height();
  auto alloc = [&](std::vector<std::pair<std::string, NetId>>& ports,
                   bool is_input) {
    std::sort(ports.begin(), ports.end());
    for (std::size_t i = 0; i < ports.size(); ++i) {
      PortBinding b;
      b.port = ports[i].first;
      b.is_input = is_input;
      b.row = reg.r0 + static_cast<int>(i) % height;
      b.k = static_cast<int>(i) / height;
      if (b.k >= kSinglesPerDir) {
        std::ostringstream os;
        os << "partition " << partition << " needs more than "
           << height * kSinglesPerDir << (is_input ? " input" : " output")
           << " crossings";
        throw DeviceError(os.str());
      }
      bindings.push_back(std::move(b));
    }
  };
  alloc(inputs, true);
  alloc(outputs, false);
  return bindings;
}

}  // namespace

const PartitionInterface& BaseFlowResult::interface_of(
    const std::string& partition) const {
  for (const PartitionInterface& i : interfaces) {
    if (i.partition == partition) return i;
  }
  throw JpgError("no interface recorded for partition '" + partition + "'");
}

BaseFlowResult run_base_flow(const Device& device, const Netlist& base,
                             const std::vector<PartitionSpec>& partitions,
                             const FlowOptions& opt,
                             const PlacementConstraints& extra_constraints) {
  JPG_SPAN("flow.base");
  // --- Validate the floorplan --------------------------------------------------
  auto in_any_region = [&](int col) {
    for (const PartitionSpec& p : partitions) {
      if (p.region.contains_col(col)) return true;
    }
    return false;
  };
  std::set<std::string> part_names;
  for (const PartitionSpec& p : partitions) {
    JPG_REQUIRE(part_names.insert(p.name).second,
                "duplicate partition " + p.name);
    JPG_REQUIRE(p.region.in_bounds(device),
                "region of " + p.name + " out of bounds");
    JPG_REQUIRE(p.region.full_height(device),
                "region of " + p.name +
                    " must span the full device height (frames are "
                    "column-oriented)");
    JPG_REQUIRE(p.region.c0 >= 1 && p.region.c1 <= device.cols() - 2,
                "region of " + p.name +
                    " needs a static column on both sides for crossings");
    JPG_REQUIRE(!in_any_region(p.region.c0 - 1) &&
                    !in_any_region(p.region.c1 + 1),
                "region of " + p.name +
                    " is adjacent to another region; crossings need static "
                    "columns");
    for (const PartitionSpec& q : partitions) {
      if (&p != &q) {
        JPG_REQUIRE(!p.region.overlaps(q.region),
                    "regions of " + p.name + " and " + q.name + " overlap");
      }
    }
  }

  BaseFlowResult result;
  result.design = std::make_unique<PlacedDesign>(device, base);
  PlacedDesign& d = *result.design;
  const Netlist& nl = d.netlist();

  // --- Validate interface declarations ----------------------------------------
  auto find_spec = [&](const std::string& name) -> const PartitionSpec* {
    for (const PartitionSpec& p : partitions) {
      if (p.name == name) return &p;
    }
    return nullptr;
  };
  auto declared = [&](const PartitionSpec& p, NetId net,
                      bool input) -> const std::string* {
    const auto& list = input ? p.input_ports : p.output_ports;
    for (const auto& [port, n] : list) {
      if (n == net) return &port;
    }
    return nullptr;
  };
  for (const NetId net : nl.interface_nets()) {
    const Net& n = nl.net(net);
    const std::string& dp = nl.cell(n.driver).partition;
    std::set<std::string> sink_parts;
    for (const NetSink& s : n.sinks) sink_parts.insert(nl.cell(s.cell).partition);
    if (!dp.empty()) {
      const PartitionSpec* spec = find_spec(dp);
      JPG_REQUIRE(spec != nullptr, "cells reference unknown partition " + dp);
      JPG_REQUIRE(declared(*spec, net, false) != nullptr,
                  "net '" + n.name + "' leaves partition " + dp +
                      " but is not a declared output port");
    }
    for (const std::string& sp : sink_parts) {
      if (sp.empty() || sp == dp) continue;
      const PartitionSpec* spec = find_spec(sp);
      JPG_REQUIRE(spec != nullptr, "cells reference unknown partition " + sp);
      JPG_REQUIRE(declared(*spec, net, true) != nullptr,
                  "net '" + n.name + "' enters partition " + sp +
                      " but is not a declared input port");
    }
  }

  // --- Pack ---------------------------------------------------------------------
  double t = now_s();
  result.pack_stats = pack_design(d);
  result.timings.pack_s = now_s() - t;

  // --- Place --------------------------------------------------------------------
  PlacementConstraints cons = extra_constraints;
  for (const PartitionSpec& p : partitions) {
    cons.area_groups[p.name] = p.region;
  }
  PlacerOptions popt = opt.placer;
  popt.seed = opt.seed * 7919 + 1;
  t = now_s();
  place_design(d, cons, popt);
  result.timings.place_s = now_s() - t;

  // --- Allocate crossings --------------------------------------------------------
  // port name -> (net) maps per partition, and net -> crossing node.
  struct PartCross {
    const PartitionSpec* spec = nullptr;
    std::map<NetId, std::size_t> in_cross;   ///< net -> crossing node
    std::map<NetId, std::size_t> out_cross;
  };
  std::map<std::string, PartCross> cross;
  std::vector<std::size_t> all_crossings;
  for (const PartitionSpec& p : partitions) {
    PartitionInterface iface;
    iface.partition = p.name;
    iface.region = p.region;
    iface.bindings =
        allocate_bindings(p.region, p.input_ports, p.output_ports, p.name);
    PartCross pc;
    pc.spec = &p;
    for (const PortBinding& b : iface.bindings) {
      const std::size_t node = crossing_node(device, p.region, b);
      all_crossings.push_back(node);
      // Map the binding's port back to its net.
      const auto& list = b.is_input ? p.input_ports : p.output_ports;
      for (const auto& [port, net] : list) {
        if (port == b.port) {
          (b.is_input ? pc.in_cross : pc.out_cross)[net] = node;
          break;
        }
      }
    }
    cross[p.name] = std::move(pc);
    result.interfaces.push_back(std::move(iface));
  }

  // --- Route ---------------------------------------------------------------------
  t = now_s();
  const RoutingGraph& graph = RoutingGraph::get(device);

  auto sinks_in_partition = [&](NetId net, const std::string& part) {
    std::vector<std::size_t> out;
    for (const NetSink& s : nl.net(net).sinks) {
      if (nl.cell(s.cell).partition != part) continue;
      if (const auto node = d.sink_node_for(net, s)) out.push_back(*node);
    }
    return out;
  };

  // Per-partition (module) passes.
  for (const PartitionSpec& p : partitions) {
    PartCross& pc = cross[p.name];
    std::vector<NetToRoute> nets;
    for (NetId net = 0; net < nl.num_nets(); ++net) {
      const Net& n = nl.net(net);
      if (n.driver == kNullCell) continue;
      const bool driver_in_p = nl.cell(n.driver).partition == p.name;
      if (driver_in_p) {
        NetToRoute ntr;
        ntr.id = net;
        ntr.source = d.driver_node(net);
        ntr.sinks = sinks_in_partition(net, p.name);
        const auto oc = pc.out_cross.find(net);
        if (oc != pc.out_cross.end()) ntr.sinks.push_back(oc->second);
        if (!ntr.sinks.empty()) nets.push_back(std::move(ntr));
      } else if (const auto ic = pc.in_cross.find(net);
                 ic != pc.in_cross.end()) {
        NetToRoute ntr;
        ntr.id = net;
        ntr.source = ic->second;
        ntr.sinks = sinks_in_partition(net, p.name);
        if (!ntr.sinks.empty()) nets.push_back(std::move(ntr));
      }
    }
    RouteConstraints rc;
    rc.restrict_region = p.region;
    rc.blocked = all_crossings;
    RouteStats pass;
    auto routed = route_nets(graph, nets, rc, opt.router, &pass);
    accumulate(result.route_stats, pass);
    for (auto& rn : routed) d.routes.push_back(std::move(rn));
  }

  // Static pass.
  {
    std::vector<NetToRoute> nets;
    for (NetId net = 0; net < nl.num_nets(); ++net) {
      const Net& n = nl.net(net);
      if (n.driver == kNullCell) continue;
      const std::string& dp = nl.cell(n.driver).partition;
      NetToRoute ntr;
      ntr.id = net;
      if (dp.empty()) {
        ntr.source = d.driver_node(net);
      } else {
        const auto oc = cross[dp].out_cross.find(net);
        if (oc == cross[dp].out_cross.end()) continue;  // module-internal
        ntr.source = oc->second;
      }
      ntr.sinks = sinks_in_partition(net, "");
      // Fan into other partitions via their input crossings.
      for (auto& [pname, pc] : cross) {
        if (pname == dp) continue;
        const auto ic = pc.in_cross.find(net);
        if (ic != pc.in_cross.end()) ntr.sinks.push_back(ic->second);
      }
      if (!ntr.sinks.empty()) nets.push_back(std::move(ntr));
    }
    RouteConstraints rc;
    for (const PartitionSpec& p : partitions) {
      rc.exclude_regions.push_back(p.region);
    }
    rc.blocked = all_crossings;
    RouteStats pass;
    auto routed = route_nets(graph, nets, rc, opt.router, &pass);
    accumulate(result.route_stats, pass);
    for (auto& rn : routed) d.routes.push_back(std::move(rn));
  }

  add_clock_pips(d);
  result.timings.route_s = now_s() - t;

  JPG_INFO("base flow '" << nl.name() << "' on " << device.spec().name << ": "
                         << result.pack_stats.slices << " slices, "
                         << d.total_pips() << " pips");
  return result;
}

ModuleFlowResult run_module_flow(const Device& device, const Netlist& module,
                                 const PartitionInterface& iface,
                                 const FlowOptions& opt) {
  JPG_SPAN("flow.module");
  ModuleFlowResult result;
  result.design = std::make_unique<PlacedDesign>(device, module);
  PlacedDesign& d = *result.design;
  d.region = iface.region;
  const Netlist& nl = d.netlist();

  // --- Bind ports ------------------------------------------------------------
  auto binding_of = [&](const std::string& port) -> const PortBinding* {
    for (const PortBinding& b : iface.bindings) {
      if (b.port == port) return &b;
    }
    return nullptr;
  };
  std::set<std::string> bound;
  PlacementConstraints cons;
  for (CellId id = 0; id < nl.num_cells(); ++id) {
    const Cell& c = nl.cell(id);
    if (c.kind != CellKind::Ibuf && c.kind != CellKind::Obuf) continue;
    const PortBinding* b = binding_of(c.port);
    JPG_REQUIRE(b != nullptr, "module port '" + c.port +
                                  "' is not part of the interface of " +
                                  iface.partition);
    JPG_REQUIRE(b->is_input == (c.kind == CellKind::Ibuf),
                "module port '" + c.port + "' direction mismatch");
    d.ports.push_back(PlacedPort{id, b->is_input, b->row, b->k});
    bound.insert(c.port);
    cons.interface_ports.insert(c.port);
  }
  for (const PortBinding& b : iface.bindings) {
    JPG_REQUIRE(bound.count(b.port) != 0,
                "module does not implement interface port '" + b.port + "'");
  }

  // --- Pack / place / route ----------------------------------------------------
  double t = now_s();
  result.pack_stats = pack_design(d);
  result.timings.pack_s = now_s() - t;

  PlacerOptions popt = opt.placer;
  popt.seed = opt.seed * 104729 + 3;
  t = now_s();
  place_design(d, cons, popt);
  result.timings.place_s = now_s() - t;

  t = now_s();
  std::vector<NetToRoute> nets;
  for (NetId net = 0; net < nl.num_nets(); ++net) {
    const Net& n = nl.net(net);
    if (n.driver == kNullCell || n.sinks.empty()) continue;
    NetToRoute ntr;
    ntr.id = net;
    ntr.source = d.driver_node(net);
    ntr.sinks = d.sink_nodes(net);
    if (!ntr.sinks.empty()) nets.push_back(std::move(ntr));
  }
  RouteConstraints rc;
  rc.restrict_region = iface.region;
  // Crossings of other nets are out of bounds; each net's own crossing
  // endpoints are admitted automatically.
  for (const PortBinding& b : iface.bindings) {
    rc.blocked.push_back(crossing_node(device, iface.region, b));
  }
  auto routed = route_nets(RoutingGraph::get(device), nets, rc, opt.router,
                           &result.route_stats);
  for (auto& rn : routed) d.routes.push_back(std::move(rn));
  add_clock_pips(d);
  result.timings.route_s = now_s() - t;

  JPG_INFO("module flow '" << nl.name() << "' in " << iface.region.to_string()
                           << ": " << result.pack_stats.slices << " slices, "
                           << d.total_pips() << " pips");
  return result;
}

}  // namespace jpg
