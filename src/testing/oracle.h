// Differential oracle: drives a generated design through the full JPG stack
// and asserts the repo's headline invariants as machine-checkable properties.
//
// Property chain (each name is what a failure reports, in check order):
//   drc                      assembled tops pass netlist DRC
//   implement_base           phase-1 flow succeeds (congestion => Infeasible)
//   xdl_roundtrip_base       XDL write -> re-parse -> write is a fixpoint and
//                            the re-parsed design configures identical frames
//   bitgen_roundtrip         BitGen stream loaded through ConfigPort rebuilds
//                            the exact configuration plane
//   extract_sim_base         extracted circuit simulates cycle-for-cycle like
//                            the golden NetlistSim of the source netlist
//   module_flow/<u>          phase-2 flow succeeds per variant
//   xdl_roundtrip_module/<u> module XDL round-trips
//   partial_scoped/<u>       partial frames stay inside the region's columns
//   partial_swap_sim/<u>     base + partial load simulates like the golden
//                            netlist with that variant substituted
//   partial_equals_full/<u>  port-loaded plane == frame-level compose() of
//                            module over base (the full-reconfig reference)
//   swap_order_independent   with >= 2 partitions: final plane is identical
//                            regardless of partial load order
//   dynamic_state            SimBoard swap preserves static FF state and the
//                            post-swap board tracks the golden model
//   fault_download           (optional tier) download_verified through a
//                            budgeted FaultyBoard converges to the update
#pragma once

#include <functional>
#include <string>

#include "testing/design_gen.h"

namespace jpg::testing {

enum class OracleStatus {
  Pass,        ///< every applicable property held
  Fail,        ///< a property was violated — a real bug (or generator bug)
  Infeasible,  ///< P&R could not place/route the design (not a correctness
               ///< verdict; sweeps count these separately)
};

[[nodiscard]] std::string_view oracle_status_name(OracleStatus s);

struct OracleOptions {
  int cycles = 24;  ///< simulated cycles per trace comparison
  std::uint64_t flow_seed = 1;       ///< P&R seed (annealer/router)
  std::uint64_t stimulus_seed = 5;   ///< random input stimulus
  bool check_xdl = true;             ///< XDL round-trip properties
  bool check_partial = true;         ///< partial-swap property family
  bool check_dynamic_state = true;   ///< SimBoard state-preservation property
  /// Fault-injected tier: replays the first variant swap through a
  /// FaultyBoard + VerifiedDownloader and requires convergence.
  bool fault_tier = false;
  std::uint64_t fault_seed = 7;
  /// Relocation property family: typed rejection of incompatible targets,
  /// compose-at-B == generate-at-B plane equality with resource-level
  /// translation invariance, and trace neutrality of a relocated contained
  /// module (see oracle.cpp for the family's exact properties).
  bool check_relocation = true;
};

struct OracleResult {
  OracleStatus status = OracleStatus::Pass;
  std::string property;  ///< first failing property ("" on Pass)
  std::string detail;    ///< diagnostic for the failure / infeasibility
  std::size_t properties_checked = 0;
  /// Base-design XDL (filled once implement_base succeeds) — the artifact
  /// repro files embed so a failure is inspectable without re-running P&R.
  std::string base_xdl;

  [[nodiscard]] bool ok() const { return status == OracleStatus::Pass; }
};

/// Runs the full property chain. Deterministic: same design + options =>
/// same result. Never throws; internal errors become Fail verdicts.
[[nodiscard]] OracleResult run_oracle(const GeneratedDesign& design,
                                      const OracleOptions& opt = {});

/// Oracle closure type the shrinker minimises against.
using OracleFn = std::function<OracleResult(const GeneratedDesign&)>;

}  // namespace jpg::testing
