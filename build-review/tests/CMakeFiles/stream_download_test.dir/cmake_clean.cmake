file(REMOVE_RECURSE
  "CMakeFiles/stream_download_test.dir/stream_download_test.cpp.o"
  "CMakeFiles/stream_download_test.dir/stream_download_test.cpp.o.d"
  "stream_download_test"
  "stream_download_test.pdb"
  "stream_download_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_download_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
