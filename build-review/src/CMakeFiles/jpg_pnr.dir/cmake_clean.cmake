file(REMOVE_RECURSE
  "CMakeFiles/jpg_pnr.dir/pnr/flow.cpp.o"
  "CMakeFiles/jpg_pnr.dir/pnr/flow.cpp.o.d"
  "CMakeFiles/jpg_pnr.dir/pnr/packer.cpp.o"
  "CMakeFiles/jpg_pnr.dir/pnr/packer.cpp.o.d"
  "CMakeFiles/jpg_pnr.dir/pnr/placed_design.cpp.o"
  "CMakeFiles/jpg_pnr.dir/pnr/placed_design.cpp.o.d"
  "CMakeFiles/jpg_pnr.dir/pnr/placer.cpp.o"
  "CMakeFiles/jpg_pnr.dir/pnr/placer.cpp.o.d"
  "CMakeFiles/jpg_pnr.dir/pnr/router.cpp.o"
  "CMakeFiles/jpg_pnr.dir/pnr/router.cpp.o.d"
  "CMakeFiles/jpg_pnr.dir/pnr/timing.cpp.o"
  "CMakeFiles/jpg_pnr.dir/pnr/timing.cpp.o.d"
  "libjpg_pnr.a"
  "libjpg_pnr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpg_pnr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
