# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for jpg_cbits.
