// CL-DYN — §1: "Some devices support dynamic reconfiguration: the ability to
// change a portion of the design whilst the remainder of the device
// continues to operate. Partial and/or dynamic reconfiguration allow faster
// context-switches than full reconfiguration."
//
// Measures the context-switch cost (configuration words = port clocks, plus
// simulator wall time) of a partial module swap against a full-device
// reload, and verifies the static heartbeat never glitches during partial
// swaps.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "bitstream/bitgen.h"
#include "core/jpg.h"
#include "hwif/sim_board.h"
#include "scenarios.h"
#include "ucf/ucf_parser.h"
#include "xdl/xdl_writer.h"

namespace jpg {
namespace {

struct Env {
  const Device* dev;
  Bitstream base_bit;
  std::vector<Bitstream> partials;  ///< one per matcher variant
  int hb_pad = 0;

  Env() : dev(&Device::get("XCV50")) {
    const auto slots = scenarios::fig1_slots(*dev);
    auto base = scenarios::build_base(*dev, slots);
    const BaseFlowResult flow = run_base_flow(*dev, base.top, base.specs, {});
    ConfigMemory mem(*dev);
    CBits cb(mem);
    flow.design->apply(cb);
    base_bit = generate_full_bitstream(mem);

    Jpg tool(base_bit);
    UcfData ucf;
    ucf.area_group_ranges["AG"] = slots[0].region;
    const std::string ucf_text = write_ucf(ucf, *dev);
    for (const auto& v : slots[0].variants) {
      const ModuleFlowResult mod =
          run_module_flow(*dev, v.netlist, flow.interface_of("u_match"));
      partials.push_back(
          tool.generate_partial_from_text(write_xdl(*mod.design), ucf_text)
              .partial);
    }
    for (std::size_t i = 0; i < flow.design->iob_cells.size(); ++i) {
      if (flow.design->netlist().cell(flow.design->iob_cells[i]).port ==
          "hb_q0") {
        hb_pad = dev->pad_number(flow.design->iob_sites[i]);
      }
    }
  }
};

Env& env() {
  static Env e;
  return e;
}

void BM_PartialContextSwitch(benchmark::State& state) {
  Env& e = env();
  SimBoard board(*e.dev);
  board.send_config(e.base_bit.words);
  board.step_clock(1);
  std::size_t which = 0;
  for (auto _ : state) {
    board.send_config(e.partials[which % e.partials.size()].words);
    board.step_clock(1);  // force the rebuild inside the timed region
    ++which;
  }
  state.counters["config_words"] =
      static_cast<double>(e.partials[0].words.size());
}
BENCHMARK(BM_PartialContextSwitch)->Unit(benchmark::kMillisecond);

void BM_FullReloadContextSwitch(benchmark::State& state) {
  Env& e = env();
  SimBoard board(*e.dev);
  for (auto _ : state) {
    board.send_config(e.base_bit.words);
    board.step_clock(1);
  }
  state.counters["config_words"] = static_cast<double>(e.base_bit.words.size());
}
BENCHMARK(BM_FullReloadContextSwitch)->Unit(benchmark::kMillisecond);

void print_dynamic_rows() {
  using benchutil::fmt;
  Env& e = env();

  // Heartbeat continuity across 6 interleaved swaps.
  SimBoard board(*e.dev);
  board.send_config(e.base_bit.words);
  std::uint64_t expected = 0;
  bool glitched = false;
  for (int swap = 0; swap < 6; ++swap) {
    board.step_clock(7);
    expected += 7;
    const bool hb = board.get_pin(e.hb_pad);
    if (hb != ((expected & 1) != 0)) glitched = true;
    board.send_config(e.partials[static_cast<std::size_t>(swap) %
                                 e.partials.size()].words);
    if (board.get_pin(e.hb_pad) != hb) glitched = true;  // swap glitch?
  }

  benchutil::Table t({"switch method", "config words", "vs full",
                      "static logic"});
  const double full_words = static_cast<double>(e.base_bit.words.size());
  t.row({"full reload", std::to_string(e.base_bit.words.size()), "1.00x",
         "reset"});
  for (std::size_t i = 0; i < e.partials.size(); ++i) {
    t.row({"partial swap (match" + std::to_string(i) + ")",
           std::to_string(e.partials[i].words.size()),
           fmt(static_cast<double>(e.partials[i].words.size()) / full_words,
               3) + "x",
           glitched ? "GLITCHED" : "kept running"});
  }
  t.print("CL-DYN: context-switch cost, partial vs full reload (XCV50)");
  std::printf("heartbeat check across 6 interleaved swaps: %s\n",
              glitched ? "FAILED" : "no glitches, state preserved");
}

}  // namespace
}  // namespace jpg

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  jpg::print_dynamic_rows();
  return 0;
}
