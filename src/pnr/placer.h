// Placer: simulated-annealing placement with floorplan constraints — the
// PAR placement step of the Foundation flow, including the *guided* mode the
// paper's phase-2 flow relies on ("guided floorplanning is performed using
// the constraints from the base design").
//
// Constraints model the UCF subset JPG cares about:
//  * area groups: every cell of partition P must sit inside P's region, and
//    static cells must stay outside all regions (so a region can be wholly
//    rewritten by partial reconfiguration);
//  * LOC locks on named cells and pads;
//  * module mode: `design.region` restricts everything, and interface ports
//    are fixed boundary terminals rather than pads.
#pragma once

#include <map>
#include <set>
#include <string>

#include "pnr/placed_design.h"
#include "support/rng.h"

namespace jpg {

struct PlacementConstraints {
  /// Partition name -> region its slices must occupy.
  std::map<std::string, Region> area_groups;
  /// Cell name -> fixed slice site (the cell's whole packed slice is locked).
  std::map<std::string, SliceSite> loc_slices;
  /// Port name -> fixed pad number.
  std::map<std::string, int> loc_pads;
  /// Keep unconstrained (static) cells outside every area group region.
  bool static_outside_groups = true;
  /// Ports bound to region-boundary wires instead of pads (module flow).
  std::set<std::string> interface_ports;
};

struct PlacerOptions {
  std::uint64_t seed = 1;
  double cooling = 0.92;
  int moves_per_le = 8;
  /// Guided mode: keep the existing placement as the starting point and
  /// anneal at a fraction of the normal temperature (incremental re-place).
  bool guided = false;
  double guided_temp_scale = 0.05;
};

struct PlaceStats {
  double initial_cost = 0;
  double final_cost = 0;
  std::size_t moves = 0;
  std::size_t accepted = 0;
};

/// Places `design` (must be packed). Fills `slice_sites`, `iob_cells`,
/// `iob_sites`. Throws DeviceError when constraints are unsatisfiable.
PlaceStats place_design(PlacedDesign& design,
                        const PlacementConstraints& constraints,
                        const PlacerOptions& options = {});

}  // namespace jpg
