#include "sim/circuit_extractor.h"

#include <sstream>
#include <unordered_map>

#include "cbits/cbits.h"

namespace jpg {

namespace {

/// Per-logic-element decoded usage.
struct LeUse {
  bool lut = false;
  bool ff = false;
  bool comb_out = false;  ///< X/Y drives the fabric
  NetId lut_out = kNullNet;
  NetId ff_out = kNullNet;
  CellId ff_cell = kNullCell;
};

class Extractor {
 public:
  explicit Extractor(const ConfigMemory& mem)
      : mem_(mem), dev_(mem.device()), cb_(mem), out_{} {}

  ExtractedCircuit run();

 private:
  /// Net driven by terminal `node`; creates it on first use. Only nodes
  /// registered as terminals in pass 1 are valid.
  NetId terminal_net(std::size_t node);

  /// Traces wire `node` back to its driver terminal's net.
  NetId trace(std::size_t node);

  /// The mux selection currently driving a tile wire, resolved to the source
  /// node; throws if the wire is undriven or misconfigured.
  NetId trace_tile_wire(const RoutingFabric::NodeInfo& info, std::size_t node);
  NetId trace_long(const RoutingFabric::NodeInfo& info, std::size_t node);

  /// Traces an IMUX pin; returns kNullNet when the mux is off (input reads 0).
  NetId trace_imux(SliceSite s, ImuxPin pin);

  void decode_slices();
  void decode_iobs();
  void build_cells();

  const ConfigMemory& mem_;
  const Device& dev_;
  CBits cb_;
  ExtractedCircuit out_;

  std::unordered_map<std::size_t, NetId> terminal_nets_;
  std::unordered_map<std::size_t, NetId> wire_net_;  ///< trace memo
  std::unordered_map<std::size_t, int> tracing_;     ///< cycle guard

  // (site, le) -> decoded usage; indexed as flat vector.
  std::vector<LeUse> les_;
  [[nodiscard]] std::size_t le_index(SliceSite s, int le) const {
    return ((static_cast<std::size_t>(s.r) * dev_.cols() + s.c) * 2 +
            static_cast<std::size_t>(s.slice)) * 2 + static_cast<std::size_t>(le);
  }
};

NetId Extractor::terminal_net(std::size_t node) {
  const auto it = terminal_nets_.find(node);
  if (it != terminal_nets_.end()) return it->second;
  std::ostringstream os;
  os << "configuration routes from " << dev_.fabric().node_name(node)
     << ", which drives nothing (unused logic element or pad)";
  throw ExtractError(os.str());
}

NetId Extractor::trace(std::size_t node) {
  const auto memo = wire_net_.find(node);
  if (memo != wire_net_.end()) return memo->second;
  if (tracing_.count(node) != 0) {
    throw ExtractError("routing cycle through " + dev_.fabric().node_name(node));
  }
  tracing_.emplace(node, 1);

  const RoutingFabric& fab = dev_.fabric();
  const auto info = fab.node_info(node);
  NetId net = kNullNet;
  switch (info.type) {
    case RoutingFabric::NodeInfo::Type::TileWire:
      net = trace_tile_wire(info, node);
      break;
    case RoutingFabric::NodeInfo::Type::LongH:
    case RoutingFabric::NodeInfo::Type::LongV:
      net = trace_long(info, node);
      break;
    case RoutingFabric::NodeInfo::Type::PadOut:
    case RoutingFabric::NodeInfo::Type::Gclk:
      net = terminal_net(node);
      break;
    case RoutingFabric::NodeInfo::Type::PadIn:
      throw ExtractError("pad-input wire appears as a routing source");
  }
  tracing_.erase(node);
  wire_net_.emplace(node, net);
  return net;
}

NetId Extractor::trace_tile_wire(const RoutingFabric::NodeInfo& info,
                                 std::size_t node) {
  // Slice output pins are terminals.
  if (info.local < kOutBase) {
    return terminal_net(node);
  }
  const TileCoord t{info.r, info.c};
  const MuxDef* mux = dev_.fabric().mux_for_dest(info.local);
  JPG_ASSERT(mux != nullptr);  // OUT / singles / hexes / IMUX all have muxes
  const std::uint32_t sel = cb_.get_mux(t, info.local);
  if (sel == 0 || sel > mux->sources.size()) {
    std::ostringstream os;
    os << "wire " << dev_.fabric().node_name(node)
       << " is consumed but its mux is "
       << (sel == 0 ? "off" : "corrupt");
    throw ExtractError(os.str());
  }
  const auto src =
      dev_.fabric().resolve_source(info.r, info.c, mux->sources[sel - 1]);
  if (!src) {
    throw ExtractError("wire " + dev_.fabric().node_name(node) +
                       " selects an unconnectable edge source");
  }
  return trace(*src);
}

NetId Extractor::trace_long(const RoutingFabric::NodeInfo& info,
                            std::size_t node) {
  // Find the unique tile driving this long line.
  const bool horizontal = info.type == RoutingFabric::NodeInfo::Type::LongH;
  const int alias = kLongDriverBase + (horizontal ? 0 : 2) + info.k;
  int found_r = -1, found_c = -1;
  std::uint32_t found_sel = 0;
  const int span = horizontal ? dev_.cols() : dev_.rows();
  for (int i = 0; i < span; ++i) {
    const TileCoord t = horizontal ? TileCoord{info.r, i} : TileCoord{i, info.c};
    const std::uint32_t sel = cb_.get_mux(t, alias);
    if (sel != 0) {
      if (found_r >= 0) {
        throw ExtractError("long line " + dev_.fabric().node_name(node) +
                           " has multiple drivers");
      }
      found_r = t.r;
      found_c = t.c;
      found_sel = sel;
    }
  }
  if (found_r < 0) {
    throw ExtractError("long line " + dev_.fabric().node_name(node) +
                       " is consumed but undriven");
  }
  const MuxDef* mux = dev_.fabric().mux_for_dest(alias);
  JPG_ASSERT(mux != nullptr);
  if (found_sel > mux->sources.size()) {
    throw ExtractError("long line " + dev_.fabric().node_name(node) +
                       " has a corrupt driver encoding");
  }
  const auto src = dev_.fabric().resolve_source(found_r, found_c,
                                                mux->sources[found_sel - 1]);
  if (!src) {
    throw ExtractError("long line " + dev_.fabric().node_name(node) +
                       " driver selects an unconnectable source");
  }
  return trace(*src);
}

NetId Extractor::trace_imux(SliceSite s, ImuxPin pin) {
  const TileCoord t{s.r, s.c};
  const int local = imux_local(s.slice, pin);
  const std::uint32_t sel = cb_.get_mux(t, local);
  if (sel == 0) return kNullNet;
  const auto src = cb_.selected_source_node(t, local);
  if (!src) {
    throw ExtractError("input mux " + dev_.fabric().node_name(
                           dev_.fabric().tile_wire_node(s.r, s.c, local)) +
                       " selects an unconnectable source");
  }
  return trace(*src);
}

void Extractor::decode_slices() {
  les_.assign(static_cast<std::size_t>(dev_.rows()) * dev_.cols() * 4, LeUse{});
  for (const SliceSite s : dev_.all_slice_sites()) {
    for (int le = 0; le < 2; ++le) {
      LeUse& use = les_[le_index(s, le)];
      const bool ff_used =
          cb_.get_field(s, le == 0 ? SliceField::FfxUsed : SliceField::FfyUsed);
      const bool comb_used =
          cb_.get_field(s, le == 0 ? SliceField::XUsed : SliceField::YUsed);
      const bool dmux_bypass =
          cb_.get_field(s, le == 0 ? SliceField::DxMux : SliceField::DyMux);
      use.ff = ff_used;
      use.comb_out = comb_used;
      use.lut = comb_used || (ff_used && !dmux_bypass);
      if (!use.lut && !use.ff) continue;
      ++out_.used_les;

      const RoutingFabric& fab = dev_.fabric();
      if (use.lut) {
        use.lut_out = out_.netlist.add_net(
            dev_.slice_site_name(s) + (le == 0 ? ".X" : ".Y"));
        if (use.comb_out) {
          const SlicePin pin = le == 0 ? SlicePin::X : SlicePin::Y;
          terminal_nets_[fab.tile_wire_node(s.r, s.c, pin_local(s.slice, pin))] =
              use.lut_out;
        }
      }
      if (use.ff) {
        use.ff_out = out_.netlist.add_net(
            dev_.slice_site_name(s) + (le == 0 ? ".XQ" : ".YQ"));
        const SlicePin pin = le == 0 ? SlicePin::XQ : SlicePin::YQ;
        terminal_nets_[fab.tile_wire_node(s.r, s.c, pin_local(s.slice, pin))] =
            use.ff_out;
      }
    }
  }
}

void Extractor::decode_iobs() {
  const RoutingFabric& fab = dev_.fabric();
  for (const IobSite s : dev_.all_iob_sites()) {
    if (cb_.get_iob_flag(s, IobField::IsInput)) {
      const std::size_t node = fab.pad_out_node(s.side, s.row, s.k);
      const NetId net =
          out_.netlist.add_net("P" + std::to_string(dev_.pad_number(s)) + "_i");
      terminal_nets_[node] = net;
      out_.netlist.add_ibuf(dev_.iob_site_name(s) + ".IBUF",
                            "P" + std::to_string(dev_.pad_number(s)), net);
    }
  }
  // GCLK is not modelled as a net: DFFs clock implicitly; trace_imux on CLK
  // pins is used only as a validity check in build_cells.
  terminal_nets_[fab.gclk_node()] = kNullNet;
}

void Extractor::build_cells() {
  // Slice logic.
  for (const SliceSite s : dev_.all_slice_sites()) {
    for (int le = 0; le < 2; ++le) {
      LeUse& use = les_[le_index(s, le)];
      if (!use.lut && !use.ff) continue;
      const std::string base =
          dev_.slice_site_name(s) + (le == 0 ? ".F" : ".G");

      if (use.ff) {
        // FFs require a clock: the CLK input mux must select GCLK.
        const TileCoord t{s.r, s.c};
        if (cb_.get_mux(t, imux_local(s.slice, ImuxPin::CLK)) == 0) {
          throw ExtractError("FF at " + base + " has no clock routed");
        }
      }

      if (use.lut) {
        const LutSel lsel = le == 0 ? LutSel::F : LutSel::G;
        std::array<NetId, 4> in = {kNullNet, kNullNet, kNullNet, kNullNet};
        for (int p = 0; p < 4; ++p) {
          const ImuxPin pin = static_cast<ImuxPin>(
              (le == 0 ? static_cast<int>(ImuxPin::F1)
                       : static_cast<int>(ImuxPin::G1)) + p);
          in[static_cast<std::size_t>(p)] = trace_imux(s, pin);
        }
        out_.netlist.add_lut(base + "LUT", cb_.get_lut(s, lsel), in,
                             use.lut_out);
      }
      if (use.ff) {
        const bool bypass = cb_.get_field(
            s, le == 0 ? SliceField::DxMux : SliceField::DyMux);
        NetId d = kNullNet;
        if (bypass) {
          d = trace_imux(s, le == 0 ? ImuxPin::BX : ImuxPin::BY);
          if (d == kNullNet) {
            throw ExtractError("FF at " + base +
                               " bypass D input is unrouted");
          }
        } else {
          d = use.lut_out;
        }
        const bool init = cb_.get_field(
            s, le == 0 ? SliceField::InitX : SliceField::InitY);
        const CellId ff =
            out_.netlist.add_dff(base + "FF", d, use.ff_out, init);
        use.ff_cell = ff;
        out_.ffs.push_back({ff, s, le});
      }
    }
  }

  // Output pads.
  const RoutingFabric& fab = dev_.fabric();
  for (const IobSite s : dev_.all_iob_sites()) {
    if (!cb_.get_iob_flag(s, IobField::IsOutput)) continue;
    const std::uint32_t sel = cb_.get_iob_omux(s);
    const auto sources = fab.pad_in_sources(s.side, s.row, s.k);
    if (sel == 0 || sel > sources.size()) {
      throw ExtractError("output pad " + dev_.iob_site_name(s) +
                         (sel == 0 ? " has no source routed" : " is corrupt"));
    }
    const NetId in = trace(sources[sel - 1]);
    out_.netlist.add_obuf(dev_.iob_site_name(s) + ".OBUF",
                          "P" + std::to_string(dev_.pad_number(s)), in);
  }
}

ExtractedCircuit Extractor::run() {
  out_.netlist.set_name("extracted");
  decode_slices();
  decode_iobs();
  build_cells();
  return std::move(out_);
}

}  // namespace

ExtractedCircuit extract_circuit(const ConfigMemory& mem) {
  Extractor ex(mem);
  return ex.run();
}

}  // namespace jpg
