// Tests for the CBits resource API: get/set roundtrips, PIP programming by
// name, read-only views, bulk clears, and isolation between resources.
#include <gtest/gtest.h>

#include "cbits/cbits.h"

namespace jpg {
namespace {

class CBitsTest : public ::testing::Test {
 protected:
  const Device& dev_ = Device::get("XCV50");
  ConfigMemory mem_{dev_};
  CBits cb_{mem_};
};

TEST_F(CBitsTest, LutRoundtrip) {
  const SliceSite s{2, 22, 0};
  EXPECT_EQ(cb_.get_lut(s, LutSel::F), 0);
  cb_.set_lut(s, LutSel::F, 0xBEEF);
  cb_.set_lut(s, LutSel::G, 0x1234);
  EXPECT_EQ(cb_.get_lut(s, LutSel::F), 0xBEEF);
  EXPECT_EQ(cb_.get_lut(s, LutSel::G), 0x1234);
  // The sibling slice is untouched.
  EXPECT_EQ(cb_.get_lut({2, 22, 1}, LutSel::F), 0);
  cb_.set_lut(s, LutSel::F, 0);
  EXPECT_EQ(cb_.get_lut(s, LutSel::F), 0);
  EXPECT_EQ(cb_.get_lut(s, LutSel::G), 0x1234);
}

TEST_F(CBitsTest, FieldRoundtripIsolatedPerSlice) {
  const SliceSite s0{5, 7, 0}, s1{5, 7, 1};
  cb_.set_field(s0, SliceField::FfxUsed, true);
  cb_.set_field(s1, SliceField::CkInv, true);
  EXPECT_TRUE(cb_.get_field(s0, SliceField::FfxUsed));
  EXPECT_FALSE(cb_.get_field(s1, SliceField::FfxUsed));
  EXPECT_TRUE(cb_.get_field(s1, SliceField::CkInv));
  EXPECT_FALSE(cb_.get_field(s0, SliceField::CkInv));
}

TEST_F(CBitsTest, MuxRoundtripAllWires) {
  const TileCoord t{3, 9};
  for (const MuxDef& m : dev_.fabric().tile_muxes()) {
    const auto max_sel = static_cast<std::uint32_t>(m.sources.size());
    cb_.set_mux(t, m.dest_local, max_sel);
    EXPECT_EQ(cb_.get_mux(t, m.dest_local), max_sel)
        << local_wire_name(m.dest_local);
  }
  // And back to zero.
  for (const MuxDef& m : dev_.fabric().tile_muxes()) {
    cb_.set_mux(t, m.dest_local, 0);
    EXPECT_EQ(cb_.get_mux(t, m.dest_local), 0u);
  }
}

TEST_F(CBitsTest, MuxesDoNotAliasAcrossTiles) {
  cb_.set_mux({0, 0}, out_local(0), 1);
  EXPECT_EQ(cb_.get_mux({0, 1}, out_local(0)), 0u);
  EXPECT_EQ(cb_.get_mux({1, 0}, out_local(0)), 0u);
}

TEST_F(CBitsTest, SetPipByName) {
  const TileCoord t{4, 4};
  // OUT2 <- S0_XQ (slice pin 2, source position 3).
  cb_.set_pip(t, "S0_XQ", "OUT2");
  EXPECT_EQ(cb_.get_mux(t, out_local(2)), 3u);
  const auto node = cb_.selected_source_node(t, out_local(2));
  ASSERT_TRUE(node.has_value());
  EXPECT_EQ(*node, dev_.fabric().tile_wire_node(4, 4, pin_local(0, SlicePin::XQ)));
  // A PIP that does not exist in the fabric throws.
  EXPECT_THROW(cb_.set_pip(t, "S0_X", "E0"), DeviceError);  // singles take OUTs
  EXPECT_THROW(cb_.set_pip(t, "NOPE", "OUT0"), DeviceError);
  EXPECT_THROW(cb_.set_pip(t, "OUT0", "NOPE"), DeviceError);
}

TEST_F(CBitsTest, SetPipStraightThroughSingle) {
  // E3 at (2,2) continued from the west neighbour's E3 ("WIN3").
  const TileCoord t{2, 2};
  cb_.set_pip(t, "WIN3", "E3");
  const auto node = cb_.selected_source_node(t, single_local(Dir::E, 3));
  ASSERT_TRUE(node.has_value());
  EXPECT_EQ(*node, dev_.fabric().tile_wire_node(2, 1, single_local(Dir::E, 3)));
}

TEST_F(CBitsTest, LongDriverPip) {
  const TileCoord t{6, 6};
  cb_.set_pip(t, "OUT0", "LH0");
  EXPECT_EQ(cb_.get_mux(t, kLongDriverBase + 0), 1u);
  cb_.set_mux(t, kLongDriverBase + 0, 0);
  EXPECT_EQ(cb_.get_mux(t, kLongDriverBase + 0), 0u);
}

TEST_F(CBitsTest, SelectedSourceNodeOffMux) {
  EXPECT_FALSE(cb_.selected_source_node({0, 0}, out_local(1)).has_value());
}

TEST_F(CBitsTest, IobFlagsAndOmux) {
  const IobSite s{Side::Left, 3, 1};
  EXPECT_FALSE(cb_.get_iob_flag(s, IobField::IsInput));
  cb_.set_iob_flag(s, IobField::IsInput, true);
  cb_.set_iob_omux(s, 5);
  EXPECT_TRUE(cb_.get_iob_flag(s, IobField::IsInput));
  EXPECT_FALSE(cb_.get_iob_flag(s, IobField::IsOutput));
  EXPECT_EQ(cb_.get_iob_omux(s), 5u);
  // The neighbouring pad is isolated.
  EXPECT_FALSE(cb_.get_iob_flag({Side::Left, 3, 0}, IobField::IsInput));
  EXPECT_EQ(cb_.get_iob_omux({Side::Left, 3, 0}), 0u);
  EXPECT_THROW(cb_.set_iob_omux(s, 99), JpgError);
}

TEST_F(CBitsTest, ClearTileErasesEverything) {
  const TileCoord t{1, 1};
  cb_.set_lut({1, 1, 0}, LutSel::F, 0xFFFF);
  cb_.set_field({1, 1, 1}, SliceField::FfyUsed, true);
  cb_.set_pip(t, "S0_X", "OUT0");
  ASSERT_NE(mem_.diff_frames(ConfigMemory(dev_)).size(), 0u);
  cb_.clear_tile(t);
  EXPECT_TRUE(mem_.diff_frames(ConfigMemory(dev_)).empty());
}

TEST_F(CBitsTest, ClearIob) {
  const IobSite s{Side::Right, 0, 0};
  cb_.set_iob_flag(s, IobField::IsOutput, true);
  cb_.set_iob_omux(s, 3);
  cb_.clear_iob(s);
  EXPECT_TRUE(mem_.diff_frames(ConfigMemory(dev_)).empty());
}

TEST_F(CBitsTest, ReadOnlyViewRejectsWrites) {
  const ConfigMemory& cmem = mem_;
  CBits ro(cmem);
  cb_.set_lut({0, 0, 0}, LutSel::F, 0xAAAA);
  EXPECT_EQ(ro.get_lut({0, 0, 0}, LutSel::F), 0xAAAA);
  EXPECT_THROW(ro.set_lut({0, 0, 0}, LutSel::F, 0), JpgError);
  EXPECT_THROW(ro.set_mux({0, 0}, out_local(0), 1), JpgError);
  EXPECT_THROW(ro.set_iob_flag({Side::Left, 0, 0}, IobField::IsInput, true),
               JpgError);
}

TEST_F(CBitsTest, ConfigBitsLandInOwnColumnOnly) {
  // Writing a tile at column 10 must only dirty frames of that column's major.
  cb_.set_lut({8, 10, 1}, LutSel::G, 0x5A5A);
  cb_.set_pip({8, 10}, "S1_Y", "OUT4");
  const ConfigMemory empty(dev_);
  const int major = dev_.frames().major_of_clb_col(10);
  for (const std::size_t f : mem_.diff_frames(empty)) {
    EXPECT_EQ(static_cast<int>(dev_.frames().address_of_index(f).major), major);
  }
}

}  // namespace
}  // namespace jpg
