// Tests for the malformed-bitstream fuzz engine and the recovery contracts
// it enforces, plus directed regressions for bug classes the fuzzer is
// built to catch (stale addressing state after a protocol error, ports
// stuck mid-payload after truncation).
#include <gtest/gtest.h>

#include "bitstream/bitgen.h"
#include "bitstream/bitstream_writer.h"
#include "bitstream/config_port.h"
#include "bitstream/stream_fuzzer.h"

namespace jpg {
namespace {

Bitstream patterned_full(const Device& dev, ConfigMemory& plane) {
  const FrameMap& fm = dev.frames();
  for (std::size_t f = 0; f < fm.num_frames(); f += 9) {
    for (std::size_t w = 0; w < fm.frame_words(); w += 2) {
      plane.frame(f).set_word(w, 0x3C000000u ^
                                     (static_cast<std::uint32_t>(f) << 8) ^
                                     static_cast<std::uint32_t>(w));
    }
  }
  return generate_full_bitstream(plane);
}

TEST(StreamFuzzer, CampaignHoldsEveryContract) {
  const Device& dev = Device::get("XCV50");
  ConfigMemory plane(dev);
  const Bitstream full = patterned_full(dev, plane);
  FuzzOptions opts;
  opts.iterations = 600;
  opts.seed = 2026;
  const FuzzReport rep = fuzz_config_streams(dev, full, {}, opts);
  EXPECT_TRUE(rep.clean()) << rep.summary();
  EXPECT_EQ(rep.iterations, 600);
  EXPECT_EQ(rep.port_rejections + rep.port_accepts, 600);
  EXPECT_EQ(rep.reader_rejections + rep.reader_accepts, 600);
  // The campaign must actually reject things; an all-accept run means the
  // mutators are broken, not that the decoders are perfect.
  EXPECT_GT(rep.port_rejections, 100);
  int mutations = 0;
  for (const int c : rep.mutation_counts) mutations += c;
  EXPECT_GE(mutations, 600);
  EXPECT_FALSE(rep.summary().empty());
}

TEST(StreamFuzzer, DeterministicReplayFromSeed) {
  const Device& dev = Device::get("XCV50");
  ConfigMemory plane(dev);
  const Bitstream full = patterned_full(dev, plane);
  FuzzOptions opts;
  opts.iterations = 150;
  opts.seed = 77;
  const FuzzReport a = fuzz_config_streams(dev, full, {}, opts);
  const FuzzReport b = fuzz_config_streams(dev, full, {}, opts);
  EXPECT_EQ(a.summary(), b.summary());
  opts.seed = 78;
  const FuzzReport c = fuzz_config_streams(dev, full, {}, opts);
  EXPECT_NE(a.summary(), c.summary());
}

TEST(StreamFuzzer, MutationKindsAllNamed) {
  for (int k = 0; k < kNumMutationKinds; ++k) {
    EXPECT_NE(mutation_kind_name(static_cast<MutationKind>(k)), "?");
  }
}

// Regression for the stale-addressing-state bug class: a stream that dies
// on a CRC error used to leave cur_reg_/far_/cur_frame_ behind, so a
// follow-up stream could silently write frames at the dead stream's FAR.
// After the error the port must behave exactly like a freshly reset one.
TEST(ConfigPortRecovery, ErrorClearsAddressingContext) {
  const Device& dev = Device::get("XCV50");
  const FrameMap& fm = dev.frames();
  const std::size_t fw = fm.frame_words();

  ConfigMemory payload(dev);
  const std::size_t base = fm.frame_index(5, 10);
  payload.frame(base).set(3, true);

  // Stream A: loads a FAR, then dies on a wrong CRC value.
  BitstreamWriter wa(dev);
  wa.begin();
  wa.write_cmd(Command::RCRC);
  wa.write_reg(ConfigReg::FLR, static_cast<std::uint32_t>(fw - 1));
  wa.write_reg(ConfigReg::IDCODE, dev.spec().idcode);
  wa.write_cmd(Command::WCFG);
  wa.write_reg(ConfigReg::FAR, fm.encode_far(fm.address_of_index(base)));
  wa.write_reg(ConfigReg::CRC, 0xBEEF);  // wrong: the port throws here
  const Bitstream dying = wa.finish();

  // Stream B: an FDRI write with no FAR of its own.
  BitstreamWriter wb(dev);
  wb.begin();
  wb.write_cmd(Command::RCRC);
  wb.write_cmd(Command::WCFG);
  std::vector<std::uint32_t> two_frames(fw * 2, 0x1111u);
  wb.write_fdri(two_frames);
  const Bitstream farless = wb.finish();

  auto outcome = [&](ConfigPort& port) -> std::string {
    try {
      port.load(farless);
      return "accepted";
    } catch (const BitstreamError& e) {
      return e.what();
    }
  };

  ConfigMemory mem_fresh(dev), mem_abused(dev);
  ConfigPort fresh(mem_fresh);
  ConfigPort abused(mem_abused);
  EXPECT_THROW(abused.load(dying), BitstreamError);
  EXPECT_FALSE(abused.synced());

  // Identical behaviour — in particular no write at the stale FAR.
  EXPECT_EQ(outcome(abused), outcome(fresh));
  EXPECT_EQ(abused.frames_committed(), 0u);
  EXPECT_EQ(mem_abused, mem_fresh);
}

// A truncated stream leaves the port waiting for FDRI payload; without an
// ABORT the next stream's words are swallowed as frame data. ABORT must
// drop the decode state while keeping committed frames and startup status.
TEST(ConfigPortRecovery, AbortUnsticksTruncatedPayload) {
  const Device& dev = Device::get("XCV50");
  ConfigMemory plane(dev);
  const Bitstream full = patterned_full(dev, plane);

  ConfigMemory mem(dev);
  ConfigPort port(mem);
  port.load(full);
  EXPECT_TRUE(port.started());

  Bitstream cut = full;
  cut.words.resize(cut.words.size() / 2);  // mid-FDRI payload
  port.load(cut);               // no error: the port is simply left waiting
  EXPECT_TRUE(port.synced());   // ...synced, mid-packet

  port.abort();
  EXPECT_FALSE(port.synced());
  EXPECT_TRUE(port.started());  // startup status survives ABORT

  port.load(full);              // decodes cleanly from the sync word
  EXPECT_EQ(mem, plane);
}

}  // namespace
}  // namespace jpg
