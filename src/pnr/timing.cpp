#include "pnr/timing.h"

#include <algorithm>

namespace jpg {

namespace {

constexpr double kLutDelay = 1.0;
constexpr double kWireBase = 0.5;
constexpr double kWirePerTile = 0.1;

struct Pos {
  double x = 0, y = 0;
  bool valid = false;
};

}  // namespace

TimingReport estimate_timing(const PlacedDesign& design) {
  const Netlist& nl = design.netlist();

  auto pos_of = [&](CellId id) -> Pos {
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::Lut4 || c.kind == CellKind::Dff) {
      if (design.cell_place.count(id) == 0) return {};
      const SliceSite s = design.site_of(id);
      return {static_cast<double>(s.c), static_cast<double>(s.r), true};
    }
    if (const auto site = design.iob_site_of(id)) {
      return {site->side == Side::Left
                  ? -1.0
                  : static_cast<double>(design.device().cols()),
              static_cast<double>(site->row), true};
    }
    return {};
  };

  auto net_delay = [&](CellId from, CellId to) {
    const Pos a = pos_of(from);
    const Pos b = pos_of(to);
    if (!a.valid || !b.valid) return kWireBase;
    return kWireBase +
           kWirePerTile * (std::abs(a.x - b.x) + std::abs(a.y - b.y));
  };

  // Longest-path DP over the combinational (LUT) DAG. Arrival at a cell's
  // output; sources are FF outputs, IBUFs and constants (arrival 0).
  std::vector<double> arrival(nl.num_cells(), 0.0);
  std::vector<int> levels(nl.num_cells(), 0);

  // Topological order via repeated relaxation (the DAG is shallow; DRC has
  // already rejected cycles, so |levels| passes suffice).
  bool changed = true;
  int guard = 0;
  while (changed && guard++ < static_cast<int>(nl.num_cells()) + 2) {
    changed = false;
    for (CellId id = 0; id < nl.num_cells(); ++id) {
      const Cell& c = nl.cell(id);
      if (c.kind != CellKind::Lut4) continue;
      double worst = 0;
      int lvl = 0;
      for (int p = 0; p < 4; ++p) {
        const NetId in = c.in[static_cast<std::size_t>(p)];
        if (in == kNullNet) continue;
        const Net& net = nl.net(in);
        if (net.driver == kNullCell) continue;
        const Cell& drv = nl.cell(net.driver);
        const double base =
            drv.kind == CellKind::Lut4 ? arrival[net.driver] : 0.0;
        worst = std::max(worst, base + net_delay(net.driver, id));
        if (drv.kind == CellKind::Lut4) {
          lvl = std::max(lvl, levels[net.driver]);
        }
      }
      const double a = worst + kLutDelay;
      if (a > arrival[id] + 1e-12) {
        arrival[id] = a;
        levels[id] = lvl + 1;
        changed = true;
      }
    }
  }

  // Endpoints: FF D inputs and OBUF inputs.
  TimingReport rep;
  for (CellId id = 0; id < nl.num_cells(); ++id) {
    const Cell& c = nl.cell(id);
    if (c.kind != CellKind::Dff && c.kind != CellKind::Obuf) continue;
    const NetId in = c.in[0];
    if (in == kNullNet) continue;
    const Net& net = nl.net(in);
    if (net.driver == kNullCell) continue;
    const Cell& drv = nl.cell(net.driver);
    const double base = drv.kind == CellKind::Lut4 ? arrival[net.driver] : 0.0;
    const double t = base + net_delay(net.driver, id);
    if (t > rep.critical_path) {
      rep.critical_path = t;
      rep.logic_levels =
          drv.kind == CellKind::Lut4 ? levels[net.driver] : 0;
      rep.critical_endpoint = c.name;
    }
  }
  return rep;
}

}  // namespace jpg
