// Logical netlist: the technology-mapped circuit the P&R flow implements.
//
// Cell library (deliberately the Virtex primitive set our slices support):
//   Lut4  - 4-input lookup table, inputs A1..A4, init bit index
//           A1 + 2*A2 + 4*A3 + 8*A4; unconnected inputs read as 0
//   Dff   - D flip-flop on the single global clock, optional init value
//   Ibuf  - input pad buffer (drives a net from an external port)
//   Obuf  - output pad buffer (samples a net to an external port)
//   Gnd   - constant 0        Vcc - constant 1
//
// Cells carry a *partition* string (the module-instance prefix, e.g. "u1"),
// which is what UCF AREA_GROUP constraints and the partial-reconfiguration
// flow key on; empty partition means the static (top-level) design.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.h"

namespace jpg {

using CellId = std::uint32_t;
using NetId = std::uint32_t;
constexpr CellId kNullCell = std::numeric_limits<CellId>::max();
constexpr NetId kNullNet = std::numeric_limits<NetId>::max();

enum class CellKind { Lut4, Dff, Ibuf, Obuf, Gnd, Vcc };

[[nodiscard]] std::string_view cell_kind_name(CellKind k);

struct Cell {
  std::string name;
  CellKind kind = CellKind::Lut4;
  std::string partition;  ///< module instance prefix; empty = static logic

  std::uint16_t lut_init = 0;  ///< Lut4 only
  bool ff_init = false;        ///< Dff only
  std::string port;            ///< Ibuf/Obuf: external port name

  /// Input nets. Lut4: A1..A4 (kNullNet = unconnected); Dff: [0] = D;
  /// Obuf: [0] = driven net.
  std::array<NetId, 4> in = {kNullNet, kNullNet, kNullNet, kNullNet};
  /// Output net (Lut4/Dff/Ibuf/Gnd/Vcc). Obuf has none.
  NetId out = kNullNet;

  [[nodiscard]] int num_inputs() const {
    switch (kind) {
      case CellKind::Lut4: return 4;
      case CellKind::Dff: return 1;
      case CellKind::Obuf: return 1;
      default: return 0;
    }
  }
  [[nodiscard]] bool has_output() const { return kind != CellKind::Obuf; }
};

struct NetSink {
  CellId cell = kNullCell;
  int pin = 0;  ///< input pin index on the cell
  bool operator==(const NetSink&) const = default;
};

struct Net {
  std::string name;
  CellId driver = kNullCell;
  std::vector<NetSink> sinks;
};

class Netlist {
 public:
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // --- Construction -----------------------------------------------------------
  NetId add_net(std::string name);

  CellId add_lut(std::string name, std::uint16_t init,
                 std::array<NetId, 4> inputs, NetId out,
                 std::string partition = {});
  CellId add_dff(std::string name, NetId d, NetId q, bool init = false,
                 std::string partition = {});
  CellId add_ibuf(std::string name, std::string port, NetId out,
                  std::string partition = {});
  CellId add_obuf(std::string name, std::string port, NetId in,
                  std::string partition = {});
  CellId add_const(std::string name, bool value, NetId out,
                   std::string partition = {});

  // --- Access ------------------------------------------------------------------
  [[nodiscard]] std::size_t num_cells() const { return cells_.size(); }
  [[nodiscard]] std::size_t num_nets() const { return nets_.size(); }
  [[nodiscard]] const Cell& cell(CellId id) const;
  [[nodiscard]] const Net& net(NetId id) const;
  [[nodiscard]] const std::vector<Cell>& cells() const { return cells_; }
  [[nodiscard]] const std::vector<Net>& nets() const { return nets_; }

  [[nodiscard]] std::optional<CellId> find_cell(std::string_view name) const;
  [[nodiscard]] std::optional<NetId> find_net(std::string_view name) const;

  /// External input/output port names (from Ibuf/Obuf cells), sorted.
  [[nodiscard]] std::vector<std::string> input_ports() const;
  [[nodiscard]] std::vector<std::string> output_ports() const;

  /// All distinct non-empty partitions, sorted.
  [[nodiscard]] std::vector<std::string> partitions() const;

  /// Nets whose driver and at least one sink live in different partitions
  /// (interface nets for partial reconfiguration).
  [[nodiscard]] std::vector<NetId> interface_nets() const;

  /// Merges another netlist into this one, prefixing its cell/net names and
  /// setting their partition. Used to assemble partitioned base designs from
  /// library modules. Ibuf/Obuf cells of `module` become internal "port
  /// stubs": their ports are renamed to prefix/port and exposed through the
  /// returned mapping so the caller can stitch nets.
  /// Rewrites a LUT cell's truth table (constant folding).
  void set_lut_init(CellId cell, std::uint16_t init);

  /// Disconnects input pin `pin` of `cell`: the pin becomes unconnected and
  /// the sink entry is removed from the net. Used by the packer when folding
  /// constant inputs into LUT masks.
  void detach_input(CellId cell, int pin);

  struct MergeResult {
    std::vector<std::pair<std::string, NetId>> inputs;   ///< port -> net to drive
    std::vector<std::pair<std::string, NetId>> outputs;  ///< port -> driven net
  };
  MergeResult merge_module(const Netlist& module, const std::string& prefix);

 private:
  CellId add_cell(Cell cell);

  std::string name_;
  std::vector<Cell> cells_;
  std::vector<Net> nets_;
};

}  // namespace jpg
