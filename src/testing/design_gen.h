// Random design generator for property-based differential testing.
//
// Produces *valid* technology-mapped designs — random LUT4/DFF DAGs with
// parameterised cell count, fan-in distribution, sequential depth and pad
// budget, partitioned into swap-able full-height area groups — through the
// same netlist::Netlist API the netlib modules use, so a generated design
// can ride the entire implementation flow (pack/place/route → XDL → BitGen
// → ConfigPort → extractor → simulation) unmodified.
//
// Determinism contract: a design is a pure function of (spec, seed), and a
// sampled design is a pure function of (part, raw_seed). Sweeps derive
// per-design seeds through Rng::split(), so any design in any shard is
// reproducible standalone from one 64-bit number.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "device/region.h"
#include "netlist/netlist.h"
#include "pnr/flow.h"
#include "support/rng.h"

namespace jpg::testing {

/// Shape parameters of one random design. All counts are targets; the
/// generator clamps to what the named device can hold.
struct RandomDesignSpec {
  std::string part = "XCV50";

  // Static (non-reconfigurable) logic.
  int static_cells = 8;    ///< LUT+DFF target, excluding pad buffers
  int static_inputs = 2;   ///< pads driving static logic
  int static_outputs = 2;  ///< pads observing static logic

  // Reconfigurable partitions.
  int num_partitions = 1;          ///< 0 = plain full-device design
  int variants_per_partition = 2;  ///< module pool size (>= 1)
  int module_cells = 6;            ///< LUT+DFF target per variant
  int module_inputs = 2;           ///< interface in-ports per partition
  int module_outputs = 1;          ///< interface out-ports per partition
  int region_width = 3;            ///< columns per partition region

  // Distribution knobs.
  double ff_fraction = 0.3;   ///< probability a generated cell is a DFF
  double reuse_bias = 0.5;    ///< fan-in locality: recent nets vs uniform
  double ff_init_one = 0.25;  ///< probability a DFF inits to 1
  /// Probability a module input is driven by static logic instead of a pad
  /// (exercises input boundary crossings fed from the static partition).
  double static_feed_fraction = 0.3;
  /// Probability a module output also fans out into a static LUT (exercises
  /// output crossings with static sinks beyond the observing pad).
  double observe_fraction = 0.3;

  [[nodiscard]] std::string to_string() const;
};

/// One reconfigurable partition: a fixed interface plus a pool of variant
/// implementations (variant 0 is the one built into the base design).
struct GeneratedPartition {
  std::string name;  ///< "u1", "u2", ...
  Region region;
  std::vector<std::string> in_ports;   ///< globally unique ("u1_i0", ...)
  std::vector<std::string> out_ports;  ///< globally unique ("u1_o0", ...)
  /// Per in-port driver: empty = dedicated pad; otherwise the name of the
  /// static cell whose output drives the port.
  std::vector<std::string> input_driver_cell;
  std::vector<Netlist> variants;  ///< all implement exactly the same ports
};

/// A static-logic sink for a module output (extra fan-out beyond the pad).
struct OutputCoupling {
  int partition = 0;        ///< index into GeneratedDesign::partitions
  int out_port = 0;         ///< index into that partition's out_ports
  std::string static_cell;  ///< LUT in the static netlist
  int pin = 0;              ///< input pin rewired to the module output net
};

/// A complete generated design: standalone building blocks plus the
/// deterministic assembly recipe. The same blocks assemble into the base
/// top (all variants 0) and into every golden reference top (any variant
/// choice), which is what the differential oracle compares against.
struct GeneratedDesign {
  std::string part = "XCV50";
  std::uint64_t seed = 0;  ///< raw seed the design was generated from
  /// true: `seed` replays through generate_sampled(part, seed); false: it is
  /// a generate_design(spec, seed) seed for the recorded spec.
  bool sampled = false;
  RandomDesignSpec spec;
  /// Standalone static logic. Ports "s_i<k>" / "s_o<k>"; cells whose index
  /// is < static_upstream_cells may drive module inputs (assembly keeps the
  /// combinational graph acyclic by construction).
  Netlist static_nl{"static"};
  std::size_t static_upstream_cells = 0;
  std::vector<GeneratedPartition> partitions;
  std::vector<OutputCoupling> couplings;

  [[nodiscard]] std::size_t total_cells() const;
};

/// The assembled top for one variant choice, plus the partition specs the
/// base flow consumes (only meaningful for the all-zero choice).
struct AssembledTop {
  Netlist top{"top"};
  std::vector<PartitionSpec> flow_partitions;
};

/// Deterministically assembles static logic + the chosen variant of every
/// partition into one top-level netlist. `choice` must have one index per
/// partition (or be empty = all variant 0).
[[nodiscard]] AssembledTop assemble_top(const GeneratedDesign& design,
                                        const std::vector<std::size_t>& choice = {});

/// Generates a design from an explicit spec. Pure function of (spec, seed).
[[nodiscard]] GeneratedDesign generate_design(const RandomDesignSpec& spec,
                                              std::uint64_t seed);

/// Samples a spec appropriate for `part` from the rng (used by sweeps for
/// shape diversity; bigger parts draw bigger designs).
[[nodiscard]] RandomDesignSpec sample_spec(const std::string& part, Rng& rng);

/// Sweep entry point: sample a spec and generate the design, all from one
/// 64-bit seed. Pure function of (part, raw_seed).
[[nodiscard]] GeneratedDesign generate_sampled(const std::string& part,
                                               std::uint64_t raw_seed);

/// Human-readable netlist dump (stable ordering) for repro files and for
/// comparing generator determinism in tests.
[[nodiscard]] std::string dump_netlist(const Netlist& nl);

}  // namespace jpg::testing
