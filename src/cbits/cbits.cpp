#include "cbits/cbits.h"

#include <sstream>

#include "support/error.h"

namespace jpg {

std::uint16_t CBits::get_lut(SliceSite s, LutSel lut) const {
  const SliceConfigMap& cm = device_->config_map();
  std::uint16_t v = 0;
  for (int i = 0; i < 16; ++i) {
    if (mem_->get_bit(cm.lut_bit(s.r, s.c, s.slice, lut, i))) {
      v |= static_cast<std::uint16_t>(1u << i);
    }
  }
  return v;
}

void CBits::set_lut(SliceSite s, LutSel lut, std::uint16_t init) {
  check_writable();
  const SliceConfigMap& cm = device_->config_map();
  for (int i = 0; i < 16; ++i) {
    mem_->set_bit(cm.lut_bit(s.r, s.c, s.slice, lut, i), (init >> i) & 1u);
  }
}

bool CBits::get_field(SliceSite s, SliceField f) const {
  return mem_->get_bit(device_->config_map().field_bit(s.r, s.c, s.slice, f));
}

void CBits::set_field(SliceSite s, SliceField f, bool v) {
  check_writable();
  mem_->set_bit(device_->config_map().field_bit(s.r, s.c, s.slice, f), v);
}

bool CBits::get_captured_ff(SliceSite s, int le) const {
  return mem_->get_bit(
      device_->config_map().capture_bit(s.r, s.c, s.slice, le));
}

void CBits::set_captured_ff(SliceSite s, int le, bool v) {
  check_writable();
  mem_->set_bit(device_->config_map().capture_bit(s.r, s.c, s.slice, le), v);
}

const MuxDef& CBits::mux_def(int dest_local) const {
  const MuxDef* m = device_->fabric().mux_for_dest(dest_local);
  if (m == nullptr) {
    std::ostringstream os;
    os << "wire " << local_wire_name(dest_local) << " has no programmable mux";
    throw DeviceError(os.str());
  }
  return *m;
}

std::uint32_t CBits::read_routing_field(TileCoord t, int offset,
                                        unsigned bits) const {
  const SliceConfigMap& cm = device_->config_map();
  std::uint32_t v = 0;
  for (unsigned i = 0; i < bits; ++i) {
    if (mem_->get_bit(cm.routing_bit(t.r, t.c, offset + static_cast<int>(i)))) {
      v |= 1u << i;
    }
  }
  return v;
}

void CBits::write_routing_field(TileCoord t, int offset, unsigned bits,
                                std::uint32_t value) {
  const SliceConfigMap& cm = device_->config_map();
  for (unsigned i = 0; i < bits; ++i) {
    mem_->set_bit(cm.routing_bit(t.r, t.c, offset + static_cast<int>(i)),
                  (value >> i) & 1u);
  }
}

std::uint32_t CBits::get_mux(TileCoord t, int dest_local) const {
  JPG_REQUIRE(device_->tile_in_bounds(t), "tile out of bounds");
  const MuxDef& m = mux_def(dest_local);
  return read_routing_field(t, m.cfg_offset, m.cfg_bits);
}

void CBits::set_mux(TileCoord t, int dest_local, std::uint32_t sel) {
  check_writable();
  JPG_REQUIRE(device_->tile_in_bounds(t), "tile out of bounds");
  const MuxDef& m = mux_def(dest_local);
  JPG_REQUIRE(sel <= m.sources.size(), "mux selection out of range");
  write_routing_field(t, m.cfg_offset, m.cfg_bits, sel);
}

void CBits::set_pip(TileCoord t, const SourceRef& src, int dest_local) {
  const MuxDef& m = mux_def(dest_local);
  for (std::size_t i = 0; i < m.sources.size(); ++i) {
    if (m.sources[i] == src) {
      set_mux(t, dest_local, static_cast<std::uint32_t>(i + 1));
      return;
    }
  }
  std::ostringstream os;
  os << "no PIP " << source_ref_name(src) << " -> "
     << local_wire_name(dest_local) << " at tile " << device_->tile_name(t);
  throw DeviceError(os.str());
}

void CBits::set_pip(TileCoord t, std::string_view src_name,
                    std::string_view dest_name) {
  const auto src = source_ref_by_name(src_name);
  if (!src) {
    throw DeviceError("unknown PIP source wire '" + std::string(src_name) + "'");
  }
  const auto dest = local_wire_by_name(dest_name);
  if (!dest) {
    throw DeviceError("unknown PIP dest wire '" + std::string(dest_name) + "'");
  }
  set_pip(t, *src, *dest);
}

std::optional<std::size_t> CBits::selected_source_node(TileCoord t,
                                                       int dest_local) const {
  const MuxDef& m = mux_def(dest_local);
  const std::uint32_t sel = get_mux(t, dest_local);
  if (sel == 0) return std::nullopt;
  if (sel > m.sources.size()) return std::nullopt;  // corrupt encoding
  return device_->fabric().resolve_source(t.r, t.c, m.sources[sel - 1]);
}

bool CBits::get_iob_flag(IobSite s, IobField f) const {
  JPG_REQUIRE(f != IobField::OmuxSel, "OmuxSel is multi-bit; use get_iob_omux");
  return mem_->get_bit(device_->config_map().iob_field_bit(s.side, s.row, s.k, f));
}

void CBits::set_iob_flag(IobSite s, IobField f, bool v) {
  check_writable();
  JPG_REQUIRE(f != IobField::OmuxSel, "OmuxSel is multi-bit; use set_iob_omux");
  mem_->set_bit(device_->config_map().iob_field_bit(s.side, s.row, s.k, f), v);
}

std::uint32_t CBits::get_iob_omux(IobSite s) const {
  const SliceConfigMap& cm = device_->config_map();
  std::uint32_t v = 0;
  for (unsigned i = 0; i < kIobOmuxBits; ++i) {
    if (mem_->get_bit(cm.iob_field_bit(s.side, s.row, s.k, IobField::OmuxSel, i))) {
      v |= 1u << i;
    }
  }
  return v;
}

void CBits::set_iob_omux(IobSite s, std::uint32_t sel) {
  check_writable();
  const auto n_sources =
      device_->fabric().pad_in_sources(s.side, s.row, s.k).size();
  JPG_REQUIRE(sel <= n_sources, "IOB OMUX selection out of range");
  const SliceConfigMap& cm = device_->config_map();
  for (unsigned i = 0; i < kIobOmuxBits; ++i) {
    mem_->set_bit(cm.iob_field_bit(s.side, s.row, s.k, IobField::OmuxSel, i),
                  (sel >> i) & 1u);
  }
}

std::uint16_t CBits::bram_read(Side side, int block, int addr) const {
  JPG_REQUIRE(addr >= 0 &&
                  addr < SliceConfigMap::kBramBitsPerBlock / 16,
              "BRAM address out of range");
  const SliceConfigMap& cm = device_->config_map();
  std::uint16_t v = 0;
  for (int b = 0; b < 16; ++b) {
    if (mem_->get_bit(cm.bram_bit(side, block, addr * 16 + b))) {
      v |= static_cast<std::uint16_t>(1u << b);
    }
  }
  return v;
}

void CBits::bram_write(Side side, int block, int addr, std::uint16_t value) {
  check_writable();
  JPG_REQUIRE(addr >= 0 &&
                  addr < SliceConfigMap::kBramBitsPerBlock / 16,
              "BRAM address out of range");
  const SliceConfigMap& cm = device_->config_map();
  for (int b = 0; b < 16; ++b) {
    mem_->set_bit(cm.bram_bit(side, block, addr * 16 + b),
                  (value >> b) & 1u);
  }
}

void CBits::bram_fill(Side side, int block,
                      const std::vector<std::uint16_t>& words) {
  JPG_REQUIRE(words.size() ==
                  static_cast<std::size_t>(
                      SliceConfigMap::kBramBitsPerBlock / 16),
              "BRAM fill wants exactly 256 words");
  for (int addr = 0; addr < SliceConfigMap::kBramBitsPerBlock / 16; ++addr) {
    bram_write(side, block, addr, words[static_cast<std::size_t>(addr)]);
  }
}

void CBits::clear_tile(TileCoord t) {
  JPG_REQUIRE(device_->tile_in_bounds(t), "tile out of bounds");
  const SliceConfigMap& cm = device_->config_map();
  for (int slice = 0; slice < 2; ++slice) {
    set_lut({t.r, t.c, slice}, LutSel::F, 0);
    set_lut({t.r, t.c, slice}, LutSel::G, 0);
    for (int f = 0; f < kNumSliceFields; ++f) {
      mem_->set_bit(
          cm.field_bit(t.r, t.c, slice, static_cast<SliceField>(f)), false);
    }
  }
  const int used = device_->fabric().cfg_bits_used();
  for (int i = 0; i < used; ++i) {
    mem_->set_bit(cm.routing_bit(t.r, t.c, i), false);
  }
}

void CBits::clear_iob(IobSite s) {
  set_iob_flag(s, IobField::IsInput, false);
  set_iob_flag(s, IobField::IsOutput, false);
  set_iob_omux(s, 0);
}

}  // namespace jpg
