// Part table for the synthetic Virtex-class device family.
//
// Array dimensions follow the real Virtex 2.5V family (XCV50..XCV1000); see
// DESIGN.md §6 for the modelling boundary. A device is a CLB array of
// `clb_rows` x `clb_cols` tiles with I/O blocks on the left and right edges
// (kIobsPerRow pads per row per side) and a single global clock net.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace jpg {

struct DeviceSpec {
  std::string name;     ///< Part name, e.g. "XCV300".
  int clb_rows = 0;     ///< CLB array height.
  int clb_cols = 0;     ///< CLB array width (always even; clock column splits it).
  std::uint32_t idcode = 0;  ///< Device ID checked by the configuration port.

  /// Pads per row on each of the left/right edges.
  static constexpr int kIobsPerRow = 2;

  [[nodiscard]] int num_slices() const { return clb_rows * clb_cols * 2; }
  [[nodiscard]] int num_luts() const { return num_slices() * 2; }
  [[nodiscard]] int num_iobs() const { return clb_rows * kIobsPerRow * 2; }

  /// Looks up a part by (case-insensitive) name. Throws DeviceError for
  /// unknown parts.
  static const DeviceSpec& by_name(std::string_view name);

  /// Looks up a part by IDCODE; throws DeviceError if unknown.
  static const DeviceSpec& by_idcode(std::uint32_t idcode);

  /// All known parts, smallest first.
  static const std::vector<DeviceSpec>& all();
};

}  // namespace jpg
