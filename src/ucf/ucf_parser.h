// UCF: user constraint files, the subset JPG's flow consumes (paper §3.1,
// §3.2: initial constraint definitions, floorplanning, guided placement).
//
//   # floorplan: partition u1 owns columns 7..12
//   INST "u1/*" AREA_GROUP = "AG_u1" ;
//   AREA_GROUP "AG_u1" RANGE = CLB_R1C7:CLB_R16C12 ;
//   # hard locks
//   INST "u1/nrz" LOC = CLB_R3C23.S0 ;
//   PORT "d" LOC = P12 ;
//
// Keywords are case-insensitive; '#' comments; statements end with ';'.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "device/region.h"
#include "netlist/netlist.h"

namespace jpg {

struct PlacementConstraints;  // pnr/placer.h

struct UcfData {
  /// INST "<pattern>" AREA_GROUP = "<group>" (pattern uses '*' wildcards).
  std::vector<std::pair<std::string, std::string>> inst_area_groups;
  /// AREA_GROUP "<group>" RANGE = CLB_RxCy:CLB_RxCy.
  std::map<std::string, Region> area_group_ranges;
  /// INST "<cell>" LOC = CLB_RxCy.Sz.
  std::map<std::string, SliceSite> inst_locs;
  /// PORT "<port>" LOC = P<n>.
  std::map<std::string, int> port_locs;
};

/// Parses UCF text; throws ParseError with file/line context.
[[nodiscard]] UcfData parse_ucf(std::string_view text, const Device& device,
                                const std::string& filename = "<ucf>");

/// Renders constraints back to UCF text.
[[nodiscard]] std::string write_ucf(const UcfData& ucf, const Device& device);

/// Resolves area-group patterns against a netlist and returns
/// partition -> region. Every cell matched by a group's pattern must belong
/// to one partition; throws JpgError otherwise.
[[nodiscard]] std::map<std::string, Region> ucf_partition_regions(
    const UcfData& ucf, const Netlist& netlist);

}  // namespace jpg
