# Empty dependencies file for bench_fig3_floorplan_view.
# This may be replaced when dependencies are built.
