file(REMOVE_RECURSE
  "CMakeFiles/metamorphic_test.dir/metamorphic_test.cpp.o"
  "CMakeFiles/metamorphic_test.dir/metamorphic_test.cpp.o.d"
  "metamorphic_test"
  "metamorphic_test.pdb"
  "metamorphic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metamorphic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
