// Tests for the XHWIF board interface and the SimBoard implementation:
// configuration sessions, rebuild bookkeeping, pin persistence across
// reconfigurations, readback, and behaviour before configuration.
#include <gtest/gtest.h>

#include "bitstream/bitgen.h"
#include "hwif/sim_board.h"
#include "netlib/generators.h"
#include "pnr/flow.h"

namespace jpg {
namespace {

class SimBoardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = &Device::get("XCV50");
    const BaseFlowResult flow =
        run_base_flow(*dev_, netlib::make_counter(4), {});
    ConfigMemory mem(*dev_);
    CBits cb(mem);
    flow.design->apply(cb);
    bit_ = generate_full_bitstream(mem);
    for (std::size_t i = 0; i < flow.design->iob_cells.size(); ++i) {
      pads_[flow.design->netlist().cell(flow.design->iob_cells[i]).port] =
          dev_->pad_number(flow.design->iob_sites[i]);
    }
  }

  const Device* dev_ = nullptr;
  Bitstream bit_;
  std::map<std::string, int> pads_;
};

TEST_F(SimBoardTest, UnconfiguredBoardIsEmptyButAlive) {
  SimBoard board(*dev_);
  EXPECT_FALSE(board.configured());
  EXPECT_EQ(board.board_name(), "simboard-XCV50");
  // Clocking an empty device is legal and does nothing.
  board.step_clock(3);
  EXPECT_EQ(board.cycles(), 3u);
  // Driving a pin that exists on no circuit is remembered, not an error.
  board.set_pin(1, true);
}

TEST_F(SimBoardTest, ConfiguresAndCounts) {
  SimBoard board(*dev_);
  board.send_config(bit_.words);
  EXPECT_TRUE(board.configured());
  EXPECT_EQ(board.config_words(), bit_.words.size());
  for (int cyc = 0; cyc < 20; ++cyc) {
    int v = 0;
    for (int b = 0; b < 4; ++b) {
      if (board.get_pin(pads_.at("q" + std::to_string(b)))) v |= 1 << b;
    }
    EXPECT_EQ(v, cyc & 0xF);
    board.step_clock(1);
  }
}

TEST_F(SimBoardTest, RebuildOnlyOnConfigChange) {
  SimBoard board(*dev_);
  board.send_config(bit_.words);
  board.step_clock(5);
  const int r1 = board.rebuilds();
  board.step_clock(5);
  board.get_pin(pads_.at("q0"));
  EXPECT_EQ(board.rebuilds(), r1);  // no config change, no rebuild
  board.send_config(bit_.words);    // full reload
  board.step_clock(1);
  EXPECT_GT(board.rebuilds(), r1);
}

TEST_F(SimBoardTest, FullReloadResetsState) {
  SimBoard board(*dev_);
  board.send_config(bit_.words);
  board.step_clock(9);
  EXPECT_TRUE(board.get_pin(pads_.at("q0")));  // 9 is odd
  board.send_config(bit_.words);  // full reload rewrites every column
  EXPECT_FALSE(board.get_pin(pads_.at("q0")));  // counter back at 0
}

TEST_F(SimBoardTest, ReadbackReturnsFrames) {
  SimBoard board(*dev_);
  board.send_config(bit_.words);
  const auto words = board.readback(0, 3);
  EXPECT_EQ(words.size(), 3 * dev_->frames().frame_words());
  // Readback of the whole device equals the loaded configuration.
  ConfigMemory expect(*dev_);
  ConfigPort port(expect);
  port.load(bit_);
  for (std::size_t f = 0; f < dev_->frames().num_frames(); f += 97) {
    const auto rb = board.readback(f, 1);
    std::vector<std::uint32_t> buf(dev_->frames().frame_words());
    expect.read_frame_words(f, buf.data());
    EXPECT_EQ(rb, buf) << "frame " << f;
  }
}

TEST_F(SimBoardTest, BadConfigStreamThrowsAndBoardSurvives) {
  SimBoard board(*dev_);
  board.send_config(bit_.words);
  board.step_clock(4);
  // A corrupt stream fails...
  Bitstream bad = bit_;
  bad.words[30] ^= 0x10u;
  EXPECT_THROW(board.send_config(bad.words), BitstreamError);
  // ...after which a clean reload still works.
  board.send_config(bit_.words);
  board.step_clock(1);
  EXPECT_TRUE(board.get_pin(pads_.at("q0")));
}

TEST_F(SimBoardTest, PinStateSurvivesReload) {
  // Build a combinational design: parity of 3 inputs.
  const BaseFlowResult flow = run_base_flow(*dev_, netlib::make_parity(3), {});
  ConfigMemory mem(*dev_);
  CBits cb(mem);
  flow.design->apply(cb);
  const Bitstream parity_bit = generate_full_bitstream(mem);
  std::map<std::string, int> pads;
  for (std::size_t i = 0; i < flow.design->iob_cells.size(); ++i) {
    pads[flow.design->netlist().cell(flow.design->iob_cells[i]).port] =
        dev_->pad_number(flow.design->iob_sites[i]);
  }

  SimBoard board(*dev_);
  board.send_config(parity_bit.words);
  board.set_pin(pads.at("x0"), true);
  board.set_pin(pads.at("x1"), true);
  board.set_pin(pads.at("x2"), true);
  EXPECT_TRUE(board.get_pin(pads.at("p")));  // parity of 111 = 1
  // Reload: externally driven pins are still asserted afterwards.
  board.send_config(parity_bit.words);
  EXPECT_TRUE(board.get_pin(pads.at("p")));
  board.set_pin(pads.at("x1"), false);
  EXPECT_FALSE(board.get_pin(pads.at("p")));
}

TEST_F(SimBoardTest, PinsReassertAcrossCircuitRebuilds) {
  // Regression: a pin driven before a reconfiguration must still be driven
  // after the simulator rebuilds its circuit — including across reloads
  // with *different* designs, where the rebuild replaces every IOB.
  const BaseFlowResult flow = run_base_flow(*dev_, netlib::make_parity(3), {});
  ConfigMemory mem(*dev_);
  CBits cb(mem);
  flow.design->apply(cb);
  const Bitstream parity_bit = generate_full_bitstream(mem);
  std::map<std::string, int> pads;
  for (std::size_t i = 0; i < flow.design->iob_cells.size(); ++i) {
    pads[flow.design->netlist().cell(flow.design->iob_cells[i]).port] =
        dev_->pad_number(flow.design->iob_sites[i]);
  }

  SimBoard board(*dev_);
  board.send_config(parity_bit.words);
  board.set_pin(pads.at("x0"), true);
  board.set_pin(pads.at("x2"), true);
  EXPECT_FALSE(board.get_pin(pads.at("p")));  // parity of 101 = 0
  const int r1 = board.rebuilds();

  board.send_config(bit_.words);         // counter design: full rebuild
  board.step_clock(1);
  board.send_config(parity_bit.words);   // back to the parity design
  EXPECT_GT(board.rebuilds(), r1);
  // The externally driven pins survived both rebuilds.
  EXPECT_FALSE(board.get_pin(pads.at("p")));
  board.set_pin(pads.at("x1"), true);
  EXPECT_TRUE(board.get_pin(pads.at("p")));  // parity of 111 = 1
}

TEST_F(SimBoardTest, ConfigDoneTracksStartup) {
  SimBoard board(*dev_);
  EXPECT_FALSE(board.config_done());
  board.send_config(bit_.words);
  EXPECT_TRUE(board.config_done());
  // ABORT drops decode state but not the started configuration.
  board.abort_config();
  EXPECT_TRUE(board.config_done());
}

TEST_F(SimBoardTest, AbortConfigUnsticksTruncatedStream) {
  SimBoard board(*dev_);
  board.send_config(bit_.words);
  // A stream cut mid-FDRI leaves the port waiting for payload words; the
  // board accepts it without protest (nothing is wrong *yet*).
  std::vector<std::uint32_t> cut(bit_.words.begin(),
                                 bit_.words.begin() +
                                     static_cast<std::ptrdiff_t>(
                                         bit_.words.size() / 2));
  board.send_config(cut);
  // ABORT, then a clean reload configures the counter as usual.
  board.abort_config();
  board.send_config(bit_.words);
  EXPECT_TRUE(board.config_done());
  board.step_clock(1);
  EXPECT_TRUE(board.get_pin(pads_.at("q0")));
}

TEST(Xhwif, PolymorphicUse) {
  const Device& dev = Device::get("XCV50");
  SimBoard board(dev);
  Xhwif* iface = &board;
  EXPECT_EQ(iface->board_name(), "simboard-XCV50");
  ConfigMemory mem(dev);
  const Bitstream bs = generate_full_bitstream(mem);
  iface->send_config(bs.words);
  iface->step_clock(2);
  EXPECT_EQ(board.cycles(), 2u);
}

}  // namespace
}  // namespace jpg
