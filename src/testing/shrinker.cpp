#include "testing/shrinker.h"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <string_view>
#include <optional>
#include <set>
#include <sstream>

#include "support/error.h"

namespace jpg::testing {
namespace {

/// Rebuilds a netlist with `drop` cells removed and `stub` logic cells
/// replaced by constant-0 LUTs (all inputs unconnected — unconnected LUT
/// inputs read 0, and the driver stays a Lut4, which keeps Obuf sinks
/// DRC-legal). Nets are re-created lazily, so nets all of whose users
/// disappeared vanish with them.
Netlist rebuild_netlist(const Netlist& src, const std::set<std::string>& stub,
                        const std::set<std::string>& drop) {
  Netlist out(src.name());
  std::vector<NetId> map(src.num_nets(), kNullNet);
  auto mn = [&](NetId id) {
    if (id == kNullNet) return kNullNet;
    if (map[id] == kNullNet) map[id] = out.add_net(src.net(id).name);
    return map[id];
  };
  for (const Cell& c : src.cells()) {
    if (drop.contains(c.name)) continue;
    if (stub.contains(c.name)) {
      out.add_lut(c.name, 0, {kNullNet, kNullNet, kNullNet, kNullNet},
                  mn(c.out), c.partition);
      continue;
    }
    switch (c.kind) {
      case CellKind::Lut4:
        out.add_lut(c.name, c.lut_init,
                    {mn(c.in[0]), mn(c.in[1]), mn(c.in[2]), mn(c.in[3])},
                    mn(c.out), c.partition);
        break;
      case CellKind::Dff:
        out.add_dff(c.name, mn(c.in[0]), mn(c.out), c.ff_init, c.partition);
        break;
      case CellKind::Ibuf:
        out.add_ibuf(c.name, c.port, mn(c.out), c.partition);
        break;
      case CellKind::Obuf:
        out.add_obuf(c.name, c.port, mn(c.in[0]), c.partition);
        break;
      case CellKind::Gnd:
      case CellKind::Vcc:
        out.add_const(c.name, c.kind == CellKind::Vcc, mn(c.out), c.partition);
        break;
    }
  }
  return out;
}

/// Iteratively removes cells whose output drives nothing. `protect` names
/// survive regardless; with `keep_ports` Ibufs survive too (module variants
/// must keep their full interface).
Netlist strip_dead(Netlist nl, const std::set<std::string>& protect,
                   bool keep_ports) {
  for (;;) {
    std::set<std::string> drop;
    for (const Cell& c : nl.cells()) {
      if (!c.has_output() || protect.contains(c.name)) continue;
      if (keep_ports && c.kind == CellKind::Ibuf) continue;
      if (c.out == kNullNet || nl.net(c.out).sinks.empty()) {
        drop.insert(c.name);
      }
    }
    if (drop.empty()) return nl;
    nl = rebuild_netlist(nl, {}, drop);
  }
}

/// Names the shrinker must not remove from the static netlist: designated
/// module-input drivers (assemble_top requires them to exist).
std::set<std::string> protected_static_cells(const GeneratedDesign& d) {
  std::set<std::string> protect;
  for (const GeneratedPartition& p : d.partitions) {
    for (const std::string& drv : p.input_driver_cell) {
      if (!drv.empty()) protect.insert(drv);
    }
  }
  return protect;
}

/// One candidate reduction: a label plus the reduced design.
struct Candidate {
  std::string label;
  GeneratedDesign reduced;
};

/// Enumerates every applicable single-step reduction of `d`, coarse first
/// (whole partitions) to fine (individual cell stubs), so the greedy loop
/// takes the biggest bites early.
std::vector<Candidate> candidates(const GeneratedDesign& d) {
  std::vector<Candidate> out;

  // Drop a whole partition (couplings re-indexed).
  for (std::size_t pi = 0; pi < d.partitions.size(); ++pi) {
    GeneratedDesign r = d;
    r.partitions.erase(r.partitions.begin() + static_cast<std::ptrdiff_t>(pi));
    std::vector<OutputCoupling> kept;
    for (OutputCoupling oc : r.couplings) {
      if (oc.partition == static_cast<int>(pi)) continue;
      if (oc.partition > static_cast<int>(pi)) --oc.partition;
      kept.push_back(oc);
    }
    r.couplings = std::move(kept);
    out.push_back({"drop partition " + d.partitions[pi].name, std::move(r)});
  }

  // Drop a variant (at least one must remain).
  for (std::size_t pi = 0; pi < d.partitions.size(); ++pi) {
    const GeneratedPartition& p = d.partitions[pi];
    if (p.variants.size() < 2) continue;
    for (std::size_t v = p.variants.size(); v-- > 0;) {
      GeneratedDesign r = d;
      auto& vars = r.partitions[pi].variants;
      vars.erase(vars.begin() + static_cast<std::ptrdiff_t>(v));
      out.push_back({"drop " + p.name + " variant " + std::to_string(v),
                     std::move(r)});
    }
  }

  // Drop an output coupling.
  for (std::size_t ci = 0; ci < d.couplings.size(); ++ci) {
    GeneratedDesign r = d;
    r.couplings.erase(r.couplings.begin() + static_cast<std::ptrdiff_t>(ci));
    out.push_back({"drop coupling into " + d.couplings[ci].static_cell,
                   std::move(r)});
  }

  // Re-route a static-fed module input to a dedicated pad.
  for (std::size_t pi = 0; pi < d.partitions.size(); ++pi) {
    const GeneratedPartition& p = d.partitions[pi];
    for (std::size_t i = 0; i < p.input_driver_cell.size(); ++i) {
      if (p.input_driver_cell[i].empty()) continue;
      GeneratedDesign r = d;
      r.partitions[pi].input_driver_cell[i].clear();
      out.push_back({"pad-feed " + p.in_ports[i], std::move(r)});
    }
  }

  const std::set<std::string> protect = protected_static_cells(d);

  // Drop a static output pad.
  for (const Cell& c : d.static_nl.cells()) {
    if (c.kind != CellKind::Obuf) continue;
    GeneratedDesign r = d;
    r.static_nl = rebuild_netlist(d.static_nl, {}, {c.name});
    out.push_back({"drop static pad " + c.port, std::move(r)});
  }

  // Strip dead logic everywhere (one candidate — cheap, big payoff after
  // stubs have landed).
  {
    GeneratedDesign r = d;
    bool changed = false;
    Netlist s = strip_dead(d.static_nl, protect, /*keep_ports=*/false);
    if (s.num_cells() != d.static_nl.num_cells()) changed = true;
    r.static_nl = std::move(s);
    for (auto& p : r.partitions) {
      for (auto& v : p.variants) {
        Netlist sv = strip_dead(v, {}, /*keep_ports=*/true);
        if (sv.num_cells() != v.num_cells()) changed = true;
        v = std::move(sv);
      }
    }
    if (changed) out.push_back({"strip dead logic", std::move(r)});
  }

  // Stub module logic cells to constant-0 LUTs.
  for (std::size_t pi = 0; pi < d.partitions.size(); ++pi) {
    const GeneratedPartition& p = d.partitions[pi];
    for (std::size_t v = 0; v < p.variants.size(); ++v) {
      for (const Cell& c : p.variants[v].cells()) {
        if (c.kind != CellKind::Lut4 && c.kind != CellKind::Dff) continue;
        if (c.kind == CellKind::Lut4 && c.lut_init == 0 &&
            c.in[0] == kNullNet && c.in[1] == kNullNet &&
            c.in[2] == kNullNet && c.in[3] == kNullNet) {
          continue;  // already a stub
        }
        GeneratedDesign r = d;
        r.partitions[pi].variants[v] =
            rebuild_netlist(p.variants[v], {c.name}, {});
        out.push_back({"stub " + p.name + "_v" + std::to_string(v) + "/" +
                           c.name,
                       std::move(r)});
      }
    }
  }

  // Stub static logic cells (Ibufs too — their port simply disappears).
  for (const Cell& c : d.static_nl.cells()) {
    if (c.kind != CellKind::Lut4 && c.kind != CellKind::Dff &&
        c.kind != CellKind::Ibuf) {
      continue;
    }
    if (c.kind == CellKind::Lut4 && c.lut_init == 0 && c.in[0] == kNullNet &&
        c.in[1] == kNullNet && c.in[2] == kNullNet && c.in[3] == kNullNet) {
      continue;
    }
    GeneratedDesign r = d;
    r.static_nl = rebuild_netlist(d.static_nl, {c.name}, {});
    out.push_back({"stub static/" + c.name, std::move(r)});
  }

  return out;
}

/// Property name without the per-variant suffix ("partial_swap_sim/u1_v1"
/// -> "partial_swap_sim"): reductions may renumber partitions and variants,
/// but must keep failing the *same kind* of property — otherwise the
/// shrinker happily walks to a degenerate design failing something trivial
/// (e.g. an empty netlist rejected by the flow).
std::string property_family(const std::string& property) {
  return property.substr(0, property.find('/'));
}

std::string sanitise(std::string s) {
  for (char& c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
          c == '-')) {
      c = '_';
    }
  }
  return s;
}

}  // namespace

ShrinkReport shrink_design(const GeneratedDesign& start, const OracleFn& oracle,
                           const ShrinkOptions& opt) {
  ShrinkReport rep;
  rep.minimised = start;
  rep.cells_before = start.total_cells();
  rep.failure = oracle(start);
  ++rep.oracle_runs;
  JPG_REQUIRE(rep.failure.status == OracleStatus::Fail,
              "shrink_design requires a design the oracle rejects");

  const std::string family = property_family(rep.failure.property);
  bool progressed = true;
  while (progressed && rep.oracle_runs < opt.max_oracle_runs) {
    progressed = false;
    for (Candidate& cand : candidates(rep.minimised)) {
      if (rep.oracle_runs >= opt.max_oracle_runs) break;
      OracleResult verdict = oracle(cand.reduced);
      ++rep.oracle_runs;
      if (verdict.status != OracleStatus::Fail) continue;
      if (property_family(verdict.property) != family) continue;
      rep.minimised = std::move(cand.reduced);
      rep.failure = std::move(verdict);
      rep.steps.push_back(cand.label);
      progressed = true;
      break;  // restart candidate enumeration on the reduced design
    }
  }
  rep.cells_after = rep.minimised.total_cells();
  return rep;
}

std::string render_repro(const GeneratedDesign& design,
                         const OracleResult& failure,
                         std::size_t cells_before) {
  std::ostringstream os;
  os << "# jpg proptest repro — replay: jpg_cli proptest --device "
     << design.part << " --raw-seed " << design.seed << "\n";
  os << "part: " << design.part << "\n";
  os << "raw_seed: " << design.seed << "\n";
  os << "mode: " << (design.sampled ? "sampled" : "spec") << "\n";
  os << "property: " << failure.property << "\n";
  os << "detail: " << failure.detail << "\n";
  os << "spec: " << design.spec.to_string() << "\n";
  os << "cells_original: " << cells_before << "\n";
  os << "cells_minimised: " << design.total_cells() << "\n";
  os << "--- minimised static netlist ---\n" << dump_netlist(design.static_nl);
  for (const GeneratedPartition& p : design.partitions) {
    os << "--- partition " << p.name << " region " << p.region.to_string()
       << " ---\n";
    for (const Netlist& v : p.variants) {
      os << dump_netlist(v);
    }
  }
  if (!failure.base_xdl.empty()) {
    os << "--- minimised base xdl ---\n" << failure.base_xdl;
  }
  return os.str();
}

std::string write_repro(const std::string& dir, const GeneratedDesign& design,
                        const OracleResult& failure,
                        std::size_t cells_before) {
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/repro_" + design.part + "_" +
                           std::to_string(design.seed) + "_" +
                           sanitise(failure.property) + ".repro";
  std::ofstream out(path);
  if (!out) throw JpgError("cannot write repro file " + path);
  out << render_repro(design, failure, cells_before);
  return path;
}

ReproHeader parse_repro_header(const std::string& text) {
  ReproHeader h;
  bool have_part = false, have_seed = false;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const auto take = [&](std::string_view key) -> std::optional<std::string> {
      if (line.rfind(key, 0) != 0) return std::nullopt;
      return line.substr(key.size());
    };
    if (const auto v = take("part: ")) {
      h.part = *v;
      have_part = true;
    } else if (const auto v2 = take("raw_seed: ")) {
      h.raw_seed = std::stoull(*v2);
      have_seed = true;
    } else if (const auto v3 = take("mode: ")) {
      h.sampled = *v3 == "sampled";
    } else if (const auto v4 = take("property: ")) {
      h.property = *v4;
    } else if (line.rfind("---", 0) == 0) {
      break;  // header ends at the first section marker
    }
  }
  JPG_REQUIRE(have_part && have_seed, "malformed repro header");
  return h;
}

}  // namespace jpg::testing
