# Empty compiler generated dependencies file for pnr_test.
# This may be replaced when dependencies are built.
