// ReconfigService: the in-process core of a long-running `jpgd` daemon.
//
// The paper's tool is a one-shot generator; this service is the
// "reconfiguration as a service" story (ROADMAP item 1): one process owns a
// fleet of N boards sharing a base design, and many logical tenants submit
// concurrent generate/swap requests against reconfigurable slots. Requests
// flow through a bounded admission queue (reject-with-ServiceError beyond
// the configured depth — the backpressure signal an open-loop client
// observes), are scheduled across tenants by deficit round-robin (a tenant
// flooding the queue cannot starve the others; cost is the stream size, so
// big-region tenants don't get a free ride either), and execute on a shared
// ThreadPool with one download in flight per board.
//
// The datapath reuses the existing backends end to end: pbits come from
// PartialBitstreamGenerator::generate_leased (pinned, cache-resident — the
// zero-copy path of DESIGN.md §5g), the wire is
// VerifiedDownloader::download_stream (two-state invariant per swap), and
// per-tenant quotas are layered *over* the content-addressed cache: each
// tenant owns an LRU of resident leases; exceeding its quota releases the
// tenant's least-recently-used lease (making the entry evictable again)
// rather than evicting another tenant's working set. Tenants requesting the
// same (region, variant) share one lease, refcounted by attachment.
//
// Everything is instrumented through the PR 4 telemetry subsystem as
// `svc.*` counters/gauges/histograms (docs/OBSERVABILITY.md) plus a
// coherent ServiceStats snapshot.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bitstream/config_memory.h"
#include "core/partial_gen.h"
#include "core/relocate.h"
#include "device/region.h"
#include "hwif/faulty_board.h"
#include "hwif/sim_board.h"
#include "hwif/stream_source.h"
#include "hwif/verified_downloader.h"
#include "support/thread_pool.h"

namespace jpg {

/// Why a request was not served. Admission-control rejections are reported
/// synchronously (the returned future is already ready) so an open-loop
/// client sees backpressure immediately instead of a silently growing queue.
enum class ServiceError {
  None,          ///< request served
  QueueFull,     ///< admission control: pending depth at the configured limit
  ShuttingDown,  ///< submitted after shutdown() began
  BadRequest,    ///< malformed request (unknown board, missing module, ...)
  DownloadFailed,  ///< the verified download did not converge to Success
};

[[nodiscard]] std::string_view service_error_name(ServiceError e);

enum class RequestKind {
  Generate,  ///< generate + pin the pbit (warm the tenant's resident set)
  Swap,      ///< generate/lease, then verified streamed download to a board
};

struct ServiceRequest {
  std::string tenant;
  RequestKind kind = RequestKind::Swap;
  /// Target board for swaps; -1 lets the scheduler pick a free board
  /// (least configuration words shipped so far — cheap load balancing).
  int board = -1;
  /// Module plane and slot; must outlive the request's completion. May be
  /// null when ServiceConfig::allow_relocation is set: the service then
  /// serves the variant by relocating a resident donor pbit of the same
  /// (variant, shape) to this request's region.
  const ConfigMemory* module_config = nullptr;
  Region region;
  /// Content label for the resident registry ("fir_v2"). Two requests with
  /// the same (region, variant) share one resident lease, so the label must
  /// identify the module content the way a real pool's variant name does.
  std::string variant;
  PartialGenOptions gen_opts;
  /// Opaque caller tag echoed in the response — lets a completion hook
  /// correlate responses with whatever the caller was tracking (the
  /// scheduler uses it for its node ids) without a side table.
  std::uint64_t cookie = 0;
};

struct ServiceResponse {
  ServiceError error = ServiceError::None;
  std::string message;         ///< detail when error != None
  std::uint64_t cookie = 0;    ///< ServiceRequest::cookie, echoed
  int board = -1;              ///< board served (swaps)
  bool resident_hit = false;   ///< lease served from the resident registry
  std::uint64_t queue_wait_ns = 0;  ///< submit -> dispatch
  std::uint64_t service_ns = 0;     ///< dispatch -> completion
  std::uint64_t dispatch_seq = 0;   ///< global dispatch order (fairness audit)
  DownloadReport report;       ///< swaps only

  [[nodiscard]] bool ok() const { return error == ServiceError::None; }
  [[nodiscard]] std::uint64_t latency_ns() const {
    return queue_wait_ns + service_ns;
  }
};

struct ServiceConfig {
  /// Admission limit on queued-not-yet-dispatched requests; beyond it
  /// submit() rejects with ServiceError::QueueFull.
  std::size_t queue_depth = 256;
  /// Resident leases a tenant may hold (0 = unlimited). Exceeding it
  /// releases the tenant's LRU lease (svc.quota.evictions).
  std::size_t tenant_quota = 8;
  /// Execution pool width (ThreadPool::sized); 0 = the process-global pool.
  std::size_t pool_width = 0;
  /// Concurrent executions; 0 = the pool's worker count.
  std::size_t max_inflight = 0;
  /// DRR quantum in stream words added to a tenant's deficit per round.
  std::uint64_t drr_quantum_words = 32 * 1024;
  /// Pbit cache capacity of the service's generator.
  std::size_t cache_capacity = PartialBitstreamGenerator::kDefaultCacheCapacity;
  /// Construct paused: requests queue but nothing dispatches until
  /// resume() — tests use this to stage a backlog deterministically.
  bool start_paused = false;
  /// Serve a (variant) key at any compatible slot: a request with a null
  /// module_config is satisfied by relocating a resident donor pbit of the
  /// same variant and shape (PbitRelocator, containment enforced) — the
  /// compile-once-place-anywhere placement freedom of docs/SERVICE.md.
  bool allow_relocation = false;
  /// Containment requirement for relocation-served requests. Flowed modules
  /// with I/O always carry boundary crossings (their interface wires escape
  /// the region by construction), so serving them via relocation needs this
  /// off — sound exactly when every compatible slot exposes an identical
  /// interface (the scheduler's uniform-socket fixture guarantees it; its
  /// oracle family re-proves trace equality per placement).
  bool reloc_require_containment = true;
  /// Wrap every board link in a FaultyBoard(fault_profile, fault_seed + i):
  /// the scheduler's fault tier. Bring-up of the base design bypasses the
  /// wrapper (a clean power-on); only runtime swap/readback traffic is
  /// subject to injection, and DownloadPolicy retries must ride it out.
  bool inject_faults = false;
  FaultProfile fault_profile;
  std::uint64_t fault_seed = 1;
  /// Fired once per request on every completion path — asynchronous
  /// completions (pool workers) and synchronous rejections (the submit
  /// caller's thread) alike — just before the future becomes ready. Must
  /// not call back into the service (it may run under no lock but inside
  /// submit()); keep it cheap, it is on the datapath.
  std::function<void(const ServiceResponse&)> on_complete;
  StreamOptions stream;    ///< burst size / overlap of the swap datapath
  DownloadPolicy policy;   ///< per-board verified-download policy
};

struct TenantStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t resident_hits = 0;
  std::uint64_t quota_evictions = 0;
  std::uint64_t words_swapped = 0;
  std::size_t resident_entries = 0;  ///< leases held right now
  std::size_t resident_peak = 0;     ///< max ever held (quota audit)
};

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t rejected_bad_request = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;          ///< completed with error set
  std::uint64_t dispatched = 0;
  std::uint64_t drr_rounds = 0;
  std::size_t queue_depth = 0;       ///< pending right now
  std::size_t queue_peak = 0;        ///< max pending ever observed
  std::size_t inflight = 0;
  std::size_t resident_entries = 0;  ///< live entries in the registry
  std::uint64_t relocations_served = 0;  ///< requests served via a donor pbit
  std::uint64_t defrag_moves = 0;        ///< slots moved by defragment()
  std::map<std::string, TenantStats> tenants;

  /// Conservation invariant: every submitted request ends in exactly one of
  /// completed / failed / rejected_*. Holds at quiescence (no queued or
  /// in-flight work) — the stats-coherence test pins it under churn.
  [[nodiscard]] std::uint64_t accounted() const {
    return completed + failed + rejected_queue_full + rejected_shutdown +
           rejected_bad_request;
  }
};

/// One pbit currently applied to a board, as reported by applied_pbits():
/// the scheduler's resident-reuse registry and its per-node simulations are
/// built from these snapshots (decode the pbit over the base at `region`).
struct AppliedSlot {
  Region region;
  std::string variant;
  std::uint64_t seq = 0;  ///< apply order (ascending)
  Bitstream pbit;
};

/// Outcome of a defragmentation pass over one board.
struct DefragReport {
  std::vector<DefragMove> planned;  ///< compaction plan (may be empty)
  std::size_t executed = 0;         ///< moves completed (move + scrub verified)
  bool ok = true;                   ///< every planned move executed
  std::string error;                ///< first failure (ok == false)
};

/// One service = one device, one base design, N simulated boards. Submit is
/// thread-safe; responses complete on pool workers. Destruction drains:
/// pending requests finish (shutdown(false) rejects them instead).
class ReconfigService {
 public:
  ReconfigService(const Device& device, const ConfigMemory& base,
                  std::size_t num_boards, ServiceConfig cfg = {});
  ~ReconfigService();

  ReconfigService(const ReconfigService&) = delete;
  ReconfigService& operator=(const ReconfigService&) = delete;

  /// Admission-controlled, asynchronous. The future is already ready for
  /// rejected requests (QueueFull / ShuttingDown / BadRequest).
  [[nodiscard]] std::future<ServiceResponse> submit(ServiceRequest req);

  /// Starts dispatching (no-op unless start_paused or already resumed).
  void resume();

  /// Stops admitting. drain=true completes everything already queued;
  /// drain=false rejects queued requests with ShuttingDown. In-flight
  /// executions always finish. Idempotent.
  void shutdown(bool drain = true);

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] PbitCacheStats cache_stats() const { return gen_.cache_stats(); }
  [[nodiscard]] std::size_t num_boards() const { return boards_.size(); }
  /// The simulated board itself (tests inspect final planes through it).
  [[nodiscard]] const SimBoard& board(std::size_t i) const;

  /// Snapshot of the pbits currently applied to board `i`, in apply order.
  /// Copies the streams: the snapshot stays valid after later swaps.
  [[nodiscard]] std::vector<AppliedSlot> applied_pbits(std::size_t i) const;

  /// Readback attestation of one board: reconstructs the expected plane
  /// from the base design plus every pbit applied to that board (in apply
  /// order, relocated ones included) and audits the device against it.
  /// Blocks while the board has a swap in flight; read-only on the device.
  [[nodiscard]] AttestReport attest(std::size_t board);

  /// Compacts the board's applied slots toward the lowest base-free
  /// columns: plans with plan_defrag(), then executes each move as a
  /// verified relocate-download plus a verified base-restore scrub of the
  /// vacated slot — the two-state invariant holds across every step.
  DefragReport defragment(std::size_t board);

 private:
  struct Pending {
    ServiceRequest req;
    std::promise<ServiceResponse> promise;
    std::uint64_t enqueue_ns = 0;
    std::uint64_t cost_words = 0;  ///< DRR cost: estimated stream words
  };

  struct Tenant {
    std::deque<Pending> queue;
    std::uint64_t deficit = 0;  ///< DRR deficit counter (words)
    TenantStats stats;
  };

  /// One pbit currently applied to a board, keyed by its region. A later
  /// swap at the same region replaces the entry (full-column pbits are
  /// state-independent); `seq` preserves apply order so attestation can
  /// replay the set deterministically.
  struct AppliedPbit {
    Region region;
    std::string variant;
    Bitstream pbit;
    std::uint64_t seq = 0;
  };

  struct BoardCtx {
    explicit BoardCtx(const Device& dev) : board(dev) {}
    SimBoard board;
    /// Present when ServiceConfig::inject_faults: the downloader talks to
    /// the board only through this adversarial link decorator.
    std::unique_ptr<FaultyBoard> faulty;
    std::unique_ptr<VerifiedDownloader> downloader;
    bool busy = false;
    std::uint64_t words_shipped = 0;  ///< balance metric for board pick
    std::map<std::string, AppliedPbit> applied;  ///< live slots (lock_)
  };

  /// A pinned pbit shared by every tenant currently attached to its
  /// (region, variant) key. The lease releases — the cache entry becomes
  /// evictable — when the last shared_ptr drops.
  struct Resident {
    /// Creation is a tiny state machine so concurrent requests for the same
    /// key generate once: the creator inserts a Generating entry, releases
    /// resident_lock_, generates, then publishes Ready (or Failed) and
    /// wakes the waiters.
    enum class State { Generating, Ready, Failed };
    State state = State::Generating;
    PbitLease lease;
    std::size_t attached = 0;  ///< tenants holding it in their LRU
    // Identity of the pbit, for the relocation donor search: another
    // request for the same variant at a shape-compatible region can be
    // served by relocating this entry's stream.
    Region region;
    std::string variant;
    PartialGenOptions opts;
  };

  /// Fires cfg_.on_complete (if set), then fulfils the promise. The single
  /// funnel for every completion path, so the hook can never be missed.
  void complete(std::promise<ServiceResponse>& promise, ServiceResponse resp);

  void dispatcher_loop();
  /// One DRR pass under lock_; returns true when something dispatched.
  bool dispatch_one_round_locked();
  void dispatch_locked(Tenant& tenant, int board_idx);
  [[nodiscard]] int pick_board_locked(const ServiceRequest& req) const;
  [[nodiscard]] std::uint64_t estimate_cost_words(const Region& region) const;

  void execute(std::shared_ptr<Pending> p, int board_idx,
               std::uint64_t dispatch_seq);
  /// Lease acquisition + per-tenant quota enforcement. Returns the shared
  /// resident entry; sets resident_hit when no generation was needed.
  std::shared_ptr<Resident> acquire_resident(const std::string& tenant,
                                             const ServiceRequest& req,
                                             bool& resident_hit);
  /// Drops registry entries no tenant holds once in-flight users are done.
  void reap_residents_locked();
  /// Ready resident with the same (variant, options) and a shape-compatible
  /// region, or null. Caller holds resident_lock_.
  [[nodiscard]] std::shared_ptr<Resident> find_donor_locked(
      const ServiceRequest& req) const;
  /// Columns carrying no base-design configuration (defrag move targets).
  [[nodiscard]] std::vector<char> base_free_columns() const;
  /// Waits until board `i` is idle and marks it busy / releases it again
  /// (attest and defragment exclude the swap datapath this way).
  void claim_board(std::size_t i);
  void release_board(std::size_t i);

  const Device* device_;
  const ConfigMemory* base_;
  ServiceConfig cfg_;
  PartialBitstreamGenerator gen_;
  std::vector<std::unique_ptr<BoardCtx>> boards_;
  std::shared_ptr<ThreadPool> pool_;
  std::size_t max_inflight_ = 1;

  mutable std::mutex lock_;  ///< queue + tenants + boards + stats
  std::condition_variable cv_;
  std::map<std::string, Tenant> tenants_;
  std::vector<std::string> rr_order_;  ///< DRR visit order (insertion)
  std::size_t rr_cursor_ = 0;
  std::size_t total_pending_ = 0;
  std::size_t inflight_ = 0;
  std::uint64_t dispatch_seq_ = 0;
  std::uint64_t apply_seq_ = 0;  ///< apply-order stamp for BoardCtx::applied
  bool paused_ = false;
  bool accepting_ = true;
  bool stop_dispatcher_ = false;
  ServiceStats stats_;

  // Resident registry. Guarded by its own mutex, never held together with
  // lock_ (acquire_resident runs between dispatch and completion, both of
  // which take lock_ on their own): generation inside acquire_resident must
  // not block submit/dispatch, and quota math must not block generation.
  mutable std::mutex resident_lock_;
  std::condition_variable resident_cv_;  ///< wakes same-key waiters
  std::map<std::string, std::shared_ptr<Resident>> residents_;
  /// Per-tenant resident LRU: front = most recently used registry key.
  std::map<std::string, std::list<std::string>> tenant_lru_;

  std::thread dispatcher_;
};

}  // namespace jpg
