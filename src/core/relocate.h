// PbitRelocator: compile-once-place-anywhere for partial bitstreams.
//
// A partial bitstream generated for region A can be retargeted at any
// geometry-compatible region B by rewriting its frame addresses — the
// PARBIT capability, promoted here from baseline to first-class. Because a
// pbit's frames also carry the *base* design's bits in A's out-of-region
// rows, naive FAR rewriting would transplant A's surroundings onto B; the
// relocator instead decodes the pbit onto the base plane, lifts exactly the
// region-window bits into a translated module plane positioned at B, and
// re-emits through the same PartialBitstreamGenerator that produced the
// original — so a relocated pbit is byte-for-byte what generate-at-B would
// have produced (the relocation oracle in src/testing proves this per
// design), and relocated results share the generator's pbit cache.
//
// Soundness gate: before rewriting, a compatibility checker validates the
// region shape (same dimensions, in bounds) and the module's routing
// footprint. A mux inside the region that reads a wire sourced outside it,
// a driven single/hex whose span exits the region, or any long-line use
// (long lines are row/column-global, so driving one from a new position can
// contend with the base design) is a *crossing*; crossings escape the
// region and make blind relocation functionally unsound. Incompatibilities
// are rejected with the typed RelocError (shared with the PARBIT baseline's
// column mode) — never silently mis-relocated. GCLK references are allowed:
// the global clock is position-independent.
//
// DefragPlanner: pure planning of region moves that compact applied slots
// toward low column indices, leaving free space contiguous. The service
// executes a plan as verified swap sequences (relocate + verified download
// + old-slot scrub), each move covered by the §5d two-state invariant.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/partial_gen.h"
#include "device/region.h"
#include "support/error.h"

namespace jpg {

/// One routing escape found by the compatibility checker.
struct RelocCrossing {
  TileCoord tile;       ///< region tile whose mux escapes
  int dest_local = 0;   ///< destination wire of the escaping mux
  bool drives_long = false;  ///< the mux drives a shared long line
  std::string detail;   ///< human-readable "what escapes where"
};

/// Verdict of the compatibility checker.
struct RelocCompat {
  bool shape_ok = false;  ///< dimensions match and the target fits
  std::string shape_detail;
  std::vector<RelocCrossing> crossings;  ///< routing-footprint escapes

  [[nodiscard]] bool contained() const { return crossings.empty(); }
  [[nodiscard]] bool ok() const { return shape_ok && contained(); }
  /// True when any crossing drives a long line (the escapes that can
  /// contend with the base design's own routing, not merely dangle).
  [[nodiscard]] bool drives_long_lines() const;
};

struct RelocOptions {
  /// Reject relocation when the module's routing footprint escapes the
  /// region (RelocError::Kind::FootprintEscape). Forcing past this is only
  /// sound when the caller knows nothing outside the target reads the
  /// escaping wires (the relocation oracle uses it against free columns).
  bool require_containment = true;
  /// Options for the re-emitted pbit (defaults match generate()).
  PartialGenOptions gen;
};

class PbitRelocator {
 public:
  /// The generator supplies the base plane *and* emits the retargeted
  /// stream (sharing its pbit cache). It must outlive the relocator.
  explicit PbitRelocator(const PartialBitstreamGenerator& gen);

  /// Geometric compatibility of src -> dst on this device (no throw).
  [[nodiscard]] RelocCompat check_shape(const Region& src,
                                        const Region& dst) const;

  /// Full check: shape plus the routing-footprint containment of `plane`'s
  /// content at `src` (read-only CBits decode of every region mux).
  [[nodiscard]] RelocCompat check(const ConfigMemory& plane, const Region& src,
                                  const Region& dst) const;

  /// Replays `pbit` onto a copy of the base and returns the resulting
  /// plane (content positioned at `src`). Throws RelocError
  /// (CoverageMismatch) if the pbit writes any frame outside src's columns.
  [[nodiscard]] ConfigMemory decode(const Bitstream& pbit,
                                    const Region& src) const;

  /// Lifts the src window of `plane` into a fresh module plane positioned
  /// at `dst` (frame-level word blits, rows shifted by dst.r0 - src.r0).
  /// Validates shape + containment per `opts` first; throws RelocError.
  [[nodiscard]] ConfigMemory translate(const ConfigMemory& plane,
                                       const Region& src, const Region& dst,
                                       const RelocOptions& opts = {}) const;

  /// The full path: decode + translate + re-emit at `dst`. The result is
  /// byte-identical to generating at dst from the translated module plane.
  [[nodiscard]] PartialGenResult relocate(const Bitstream& pbit,
                                          const Region& src, const Region& dst,
                                          const RelocOptions& opts = {}) const;

  /// Plane-sourced form: relocates content already composed at `src` (e.g.
  /// a VerifiedDownloader mirror during defragmentation).
  [[nodiscard]] PartialGenResult relocate_plane(
      const ConfigMemory& plane, const Region& src, const Region& dst,
      const RelocOptions& opts = {}) const;

  /// Leased form of relocate() for the zero-copy streaming datapath.
  [[nodiscard]] PbitLease relocate_leased(const Bitstream& pbit,
                                          const Region& src, const Region& dst,
                                          const RelocOptions& opts = {}) const;

  [[nodiscard]] const PartialBitstreamGenerator& generator() const {
    return *gen_;
  }

 private:
  /// Throws RelocError unless shape (always) and containment (per opts)
  /// hold for `plane`'s content at src.
  void validate(const ConfigMemory& plane, const Region& src,
                const Region& dst, const RelocOptions& opts) const;

  const PartialBitstreamGenerator* gen_;
  const Device* device_;
};

// --- Defragmentation planning -------------------------------------------------

/// One applied slot the planner may move.
struct DefragSlot {
  Region region;
  std::string key;  ///< caller's identity for the slot (e.g. variant label)
};

/// One planned move (regions are always shape-compatible by construction).
struct DefragMove {
  Region from;
  Region to;
  std::string key;
};

/// Plans moves that compact `slots` toward the lowest usable columns.
/// `usable_col(c)` must return true for columns that may receive content
/// (typically: no base-design logic configured there). Only slots whose
/// columns are exclusively their own are moved (a shared column cannot be
/// scrubbed without collateral), targets never overlap any slot's current
/// or planned columns, and every move is strictly leftward — so executing
/// the plan in order is safe with full-column writes. Pure function.
[[nodiscard]] std::vector<DefragMove> plan_defrag(
    const Device& device, std::vector<DefragSlot> slots,
    const std::function<bool(int)>& usable_col);

}  // namespace jpg
