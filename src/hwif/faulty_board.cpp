#include "hwif/faulty_board.h"

#include <sstream>

#include "support/log.h"

namespace jpg {

FaultyBoard::FaultyBoard(Xhwif& inner, const FaultProfile& profile,
                         std::uint64_t seed)
    : inner_(&inner),
      profile_(profile),
      rng_(seed),
      budget_left_(profile.fault_budget) {}

std::string FaultyBoard::board_name() const {
  return "faulty(" + inner_->board_name() + ")";
}

bool FaultyBoard::roll(double p) {
  if (p <= 0) return false;
  if (budget_left_ == 0) return false;
  if (!rng_.chance(p)) return false;
  if (budget_left_ > 0) --budget_left_;
  return true;
}

void FaultyBoard::note(const std::string& what) {
  fault_log_.push_back(what);
  JPG_DEBUG("faulty board: " << what);
}

void FaultyBoard::send_config(std::span<const std::uint32_t> words) {
  if (roll(profile_.send_failure)) {
    ++counters_.send_failures;
    note("transient send failure");
    throw HwifError("transient send failure (injected)");
  }

  std::size_t limit = words.size();
  if (roll(profile_.truncate) && limit > 0) {
    ++counters_.truncations;
    limit = rng_.uniform(limit);
    std::ostringstream os;
    os << "truncated send to " << limit << " of " << words.size() << " words";
    note(os.str());
  }

  // The per-word faults mutate a copy of the wire traffic; the caller's
  // stream is never touched (the tool would retry with the same buffer).
  std::vector<std::uint32_t> wire;
  wire.reserve(limit);
  for (std::size_t i = 0; i < limit; ++i) {
    std::uint32_t w = words[i];
    if (roll(profile_.word_drop)) {
      ++counters_.word_drops;
      std::ostringstream os;
      os << "dropped word " << i;
      note(os.str());
      continue;
    }
    if (roll(profile_.word_flip)) {
      ++counters_.word_flips;
      const auto bit = static_cast<std::uint32_t>(rng_.uniform(32));
      w ^= 1u << bit;
      std::ostringstream os;
      os << "flipped bit " << bit << " of word " << i;
      note(os.str());
    }
    wire.push_back(w);
    if (roll(profile_.word_dup)) {
      ++counters_.word_dups;
      std::ostringstream os;
      os << "duplicated word " << i;
      note(os.str());
      wire.push_back(w);
    }
  }
  inner_->send_config(wire);
}

void FaultyBoard::abort_config() {
  // The ABORT sequence is a few pin toggles, modelled as reliable.
  inner_->abort_config();
}

std::vector<std::uint32_t> FaultyBoard::readback(std::size_t first,
                                                 std::size_t nframes) {
  if (roll(profile_.readback_failure)) {
    ++counters_.readback_failures;
    note("transient readback failure");
    throw HwifError("transient readback failure (injected)");
  }
  std::vector<std::uint32_t> words = inner_->readback(first, nframes);
  for (std::size_t i = 0; i < words.size(); ++i) {
    if (roll(profile_.readback_flip)) {
      ++counters_.readback_flips;
      const auto bit = static_cast<std::uint32_t>(rng_.uniform(32));
      words[i] ^= 1u << bit;
      std::ostringstream os;
      os << "flipped bit " << bit << " of readback word " << i;
      note(os.str());
    }
  }
  return words;
}

void FaultyBoard::capture_state() { inner_->capture_state(); }

void FaultyBoard::step_clock(int cycles) { inner_->step_clock(cycles); }

void FaultyBoard::set_pin(int pad, bool value) { inner_->set_pin(pad, value); }

bool FaultyBoard::get_pin(int pad) { return inner_->get_pin(pad); }

}  // namespace jpg
