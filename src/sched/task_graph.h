// Task graphs: the workload model of the accelerator scheduler.
//
// An application is a DAG whose nodes each name a netlib kernel plus a
// *pool* of interchangeable implementation variants (same function,
// different placement — see SchedFixture::socket_wrap). Edges carry data:
// a node's input bit-stream is the XOR of its predecessors' output traces,
// so every schedule that respects the dependencies must reproduce exactly
// the sequential reference traces — the property the scheduler oracle
// family checks per graph.
//
// The random generator mirrors the PR 5 design generator's discipline:
// nodes may only depend on earlier indices, so every generated graph is
// acyclic by construction and a topological order is the index order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.h"

namespace jpg::sched {

struct TaskNode {
  std::string name;            ///< "n3" — stable within the graph
  std::string kernel;          ///< SchedFixture kernel name ("nrzi", "fir"...)
  std::vector<int> pool;       ///< candidate implementation variants
  std::vector<std::size_t> preds;  ///< predecessor node indices (all < own)
  /// Source nodes (no preds) are driven by a stream seeded from this.
  std::uint64_t stimulus_seed = 0;
};

struct TaskGraph {
  std::string app;
  std::vector<TaskNode> nodes;

  [[nodiscard]] std::size_t num_edges() const;
  /// Throws JpgError on structural problems (forward/self deps, empty
  /// pools, duplicate preds). Kernel-name validity is the fixture's check.
  void validate() const;
};

struct TaskGraphOptions {
  std::size_t min_nodes = 2;
  std::size_t max_nodes = 8;
  std::size_t max_preds = 2;   ///< fan-in cap per node
  double edge_prob = 0.6;      ///< chance of taking each candidate pred
  std::size_t pool_min = 1;    ///< variants per node pool
  std::size_t pool_max = 2;
  std::size_t num_impls = 2;   ///< implementation variants available
};

/// Seeded random DAG over `kernels`. Deterministic in (rng state, options).
[[nodiscard]] TaskGraph random_task_graph(
    Rng& rng, const std::vector<std::string>& kernels,
    const TaskGraphOptions& opt = {}, const std::string& app = "app");

}  // namespace jpg::sched
