// Greedy delta-debugging shrinker for failing generated designs.
//
// Given a design the oracle rejects, repeatedly tries structure-preserving
// reductions — drop a partition, a variant, a coupling or a static pad;
// re-route a static-fed module input to a pad; stub logic cells down to
// constant-0 LUTs; strip dead logic — keeping any reduction after which the
// oracle still *fails* (Pass and Infeasible both revert). The result is a
// locally minimal failing design plus a self-contained textual repro that
// records the original seed, the failing property, the minimised netlists
// and the minimised base-design XDL.
#pragma once

#include <string>

#include "testing/oracle.h"

namespace jpg::testing {

struct ShrinkOptions {
  /// Hard cap on oracle invocations (each candidate reduction costs one).
  std::size_t max_oracle_runs = 200;
};

struct ShrinkReport {
  GeneratedDesign minimised;
  OracleResult failure;  ///< the oracle's verdict on the minimised design
  std::size_t oracle_runs = 0;
  std::size_t cells_before = 0;
  std::size_t cells_after = 0;
  std::vector<std::string> steps;  ///< applied reductions, in order
};

/// Minimises `start` (which must fail under `oracle`) greedily to a local
/// fixpoint or until the run budget is spent. Deterministic.
[[nodiscard]] ShrinkReport shrink_design(const GeneratedDesign& start,
                                         const OracleFn& oracle,
                                         const ShrinkOptions& opt = {});

/// Renders the self-contained repro text for a (minimised) failing design.
[[nodiscard]] std::string render_repro(const GeneratedDesign& design,
                                       const OracleResult& failure,
                                       std::size_t cells_before);

/// Writes the repro under `dir` (created if missing) and returns its path.
/// File name: repro_<part>_<seed>_<property>.repro.
std::string write_repro(const std::string& dir, const GeneratedDesign& design,
                        const OracleResult& failure, std::size_t cells_before);

/// Parsed header of a repro file (the machine-replayable part).
struct ReproHeader {
  std::string part;
  std::uint64_t raw_seed = 0;
  bool sampled = false;  ///< true: generate_sampled(part, raw_seed)
  std::string property;
};

/// Parses the header lines of repro text; throws JpgError on malformed input.
[[nodiscard]] ReproHeader parse_repro_header(const std::string& text);

}  // namespace jpg::testing
