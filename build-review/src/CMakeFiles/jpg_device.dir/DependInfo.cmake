
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/device.cpp" "src/CMakeFiles/jpg_device.dir/device/device.cpp.o" "gcc" "src/CMakeFiles/jpg_device.dir/device/device.cpp.o.d"
  "/root/repo/src/device/device_spec.cpp" "src/CMakeFiles/jpg_device.dir/device/device_spec.cpp.o" "gcc" "src/CMakeFiles/jpg_device.dir/device/device_spec.cpp.o.d"
  "/root/repo/src/device/frame_map.cpp" "src/CMakeFiles/jpg_device.dir/device/frame_map.cpp.o" "gcc" "src/CMakeFiles/jpg_device.dir/device/frame_map.cpp.o.d"
  "/root/repo/src/device/routing_fabric.cpp" "src/CMakeFiles/jpg_device.dir/device/routing_fabric.cpp.o" "gcc" "src/CMakeFiles/jpg_device.dir/device/routing_fabric.cpp.o.d"
  "/root/repo/src/device/slice_config.cpp" "src/CMakeFiles/jpg_device.dir/device/slice_config.cpp.o" "gcc" "src/CMakeFiles/jpg_device.dir/device/slice_config.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/jpg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
