#include "hwif/verified_downloader.h"

#include <algorithm>
#include <future>
#include <numeric>
#include <sstream>

#include "bitstream/bitstream_reader.h"
#include "bitstream/bitstream_writer.h"
#include "bitstream/config_port.h"
#include "support/log.h"
#include "support/telemetry/telemetry.h"
#include "support/thread_pool.h"

namespace jpg {

namespace {

bool is_capture_frame(const FrameMap& fm, std::size_t frame) {
  const FrameAddress a = fm.address_of_index(frame);
  return a.block_type == 0 && (a.minor == 16 || a.minor == 17) &&
         fm.column_kind(static_cast<int>(a.major)) == ColumnKind::Clb;
}

}  // namespace

std::string_view download_status_name(DownloadStatus s) {
  switch (s) {
    case DownloadStatus::Success: return "success";
    case DownloadStatus::RolledBack: return "rolled-back";
    case DownloadStatus::Failed: return "failed";
  }
  return "?";
}

std::string DownloadReport::summary() const {
  std::ostringstream os;
  os << "verified download: " << download_status_name(status) << " after "
     << attempts << " attempt(s)";
  if (rollback_attempts > 0) {
    os << " + " << rollback_attempts << " rollback attempt(s)";
  }
  os << "; " << frames_touched << " frames touched, " << frames_verified
     << " verified, " << frames_repaired << " repaired, " << faults_seen
     << " faults seen";
  if (!error.empty()) os << "; " << error;
  return os.str();
}

void mask_capture_words_inplace(const Device& device, std::size_t frame,
                                std::span<std::uint32_t> words) {
  const FrameMap& fm = device.frames();
  if (!is_capture_frame(fm, frame)) return;
  JPG_ASSERT(words.size() == fm.frame_words());
  // Frame bits pack LSB-first (bit i lives in word i>>5 at position i&31),
  // so the two capture bits of each row window clear with plain word masks —
  // no BitVector round trip per compared frame.
  for (int r = 0; r < device.rows(); ++r) {
    const std::size_t base = fm.row_bit_base(r);
    words[base >> 5] &= ~(1u << (base & 31));
    words[(base + 1) >> 5] &= ~(1u << ((base + 1) & 31));
  }
}

std::vector<std::uint32_t> mask_capture_words(const Device& device,
                                              std::size_t frame,
                                              std::vector<std::uint32_t> words) {
  mask_capture_words_inplace(device, frame, words);
  return words;
}

std::string AttestReport::summary() const {
  std::ostringstream os;
  os << "attestation: " << (attested ? "clean" : "FAILED") << "; "
     << frames_audited << " frames audited, " << findings.size()
     << " stray finding(s), " << frames_unreadable << " unreadable";
  const std::size_t show = std::min<std::size_t>(findings.size(), 4);
  for (std::size_t i = 0; i < show; ++i) {
    const AttestFinding& f = findings[i];
    os << "; " << f.address << " word " << f.word << ": expected 0x"
       << std::hex << f.expected << " got 0x" << f.got << std::dec;
  }
  return os.str();
}

ConfigMemory reconstruct_expected_plane(const ConfigMemory& base,
                                        std::span<const Bitstream> applied) {
  ConfigMemory plane = base;
  for (const Bitstream& pbit : applied) {
    ConfigPort port(plane);
    port.load(pbit);
  }
  return plane;
}

VerifiedDownloader::VerifiedDownloader(Xhwif& board, const Device& device,
                                       const DownloadPolicy& policy)
    : board_(&board), device_(&device), policy_(policy) {
  JPG_REQUIRE(policy.max_attempts > 0, "max_attempts must be positive");
  JPG_REQUIRE(policy.rollback_max_attempts > 0,
              "rollback_max_attempts must be positive");
}

void VerifiedDownloader::assume_board_state(const ConfigMemory& plane) {
  JPG_REQUIRE(&plane.device() == device_,
              "mirror plane targets a different device");
  mirror_ = std::make_unique<ConfigMemory>(plane);
}

const ConfigMemory& VerifiedDownloader::mirror() const {
  JPG_REQUIRE(mirror_ != nullptr, "no board mirror established");
  return *mirror_;
}

std::vector<std::size_t> VerifiedDownloader::touched_frames(
    const Bitstream& stream) const {
  const FrameMap& fm = device_->frames();
  const BitstreamReader reader(stream);
  std::vector<std::size_t> frames;
  for (const auto& [far, count] : reader.far_blocks(fm.frame_words())) {
    const std::size_t first = fm.frame_index_of(fm.decode_far(far));
    for (std::size_t i = 0; i < count; ++i) frames.push_back(first + i);
  }
  std::sort(frames.begin(), frames.end());
  frames.erase(std::unique(frames.begin(), frames.end()), frames.end());
  return frames;
}

Bitstream VerifiedDownloader::build_frames_stream(
    const ConfigMemory& target, const std::vector<std::size_t>& frames,
    bool ensure_started) const {
  const FrameMap& fm = device_->frames();
  BitstreamWriter w(*device_);
  w.begin();
  w.write_cmd(Command::RCRC);
  w.write_reg(ConfigReg::FLR, static_cast<std::uint32_t>(fm.frame_words() - 1));
  w.write_reg(ConfigReg::IDCODE, device_->spec().idcode);
  if (!frames.empty()) {
    w.write_cmd(Command::WCFG);
    std::size_t i = 0;
    while (i < frames.size()) {
      std::size_t j = i + 1;
      while (j < frames.size() && frames[j] == frames[j - 1] + 1) ++j;
      w.write_reg(ConfigReg::FAR, fm.encode_far(fm.address_of_index(frames[i])));
      w.write_frames(target, frames[i], j - i);
      i = j;
    }
    w.write_crc();
    w.write_cmd(Command::LFRM);
  }
  if (ensure_started) {
    w.write_cmd(Command::START);
    w.write_crc();
  }
  return w.finish();
}

std::vector<std::size_t> VerifiedDownloader::verify_against(
    const ConfigMemory& target, const std::vector<std::size_t>& frames,
    DownloadReport& rep) {
  const FrameMap& fm = device_->frames();
  const std::size_t fw = fm.frame_words();
  std::vector<std::size_t> bad;
  expect_scratch_.resize(fw);
  std::vector<std::uint32_t>& expect = expect_scratch_;
  std::vector<std::uint32_t>& got = readback_scratch_;
  std::size_t i = 0;
  while (i < frames.size()) {
    std::size_t j = i + 1;
    while (j < frames.size() && frames[j] == frames[j - 1] + 1) ++j;
    const std::size_t first = frames[i];
    const std::size_t count = j - i;
    try {
      board_->readback_into(first, count, got);
      readback_words_ += got.size();
      JPG_COUNT("dl.readback_words", got.size());
    } catch (const JpgError& e) {
      // A failed readback proves nothing about the run; treat every frame
      // in it as suspect so the retry rewrites and re-verifies them.
      ++rep.faults_seen;
      rep.fault_log.push_back(std::string("readback: ") + e.what());
      bad.insert(bad.end(),
                 frames.begin() + static_cast<std::ptrdiff_t>(i),
                 frames.begin() + static_cast<std::ptrdiff_t>(j));
      i = j;
      continue;
    }
    JPG_ASSERT(got.size() == count * fw);
    for (std::size_t k = 0; k < count; ++k) {
      const std::size_t frame = first + k;
      ++rep.frames_verified;
      target.read_frame_words(frame, expect.data());
      const std::span<std::uint32_t> rb(got.data() + k * fw, fw);
      if (policy_.mask_capture_bits && is_capture_frame(fm, frame)) {
        // Mask both sides in the scratch buffers; `got` is this run's
        // working copy and `expect` refills next frame, so in-place is free.
        mask_capture_words_inplace(*device_, frame, rb);
        mask_capture_words_inplace(*device_, frame, expect);
      }
      if (!std::equal(rb.begin(), rb.end(), expect.begin())) {
        bad.push_back(frame);
      }
    }
    i = j;
  }
  return bad;
}

void VerifiedDownloader::backoff(int attempt) {
  if (policy_.backoff_cycles <= 0) return;
  const int shift = std::clamp(attempt - 2, 0, 16);
  board_->step_clock(policy_.backoff_cycles << shift);
}

bool VerifiedDownloader::converge(Bitstream stream, const ConfigMemory& target,
                                  std::vector<std::size_t> check, int budget,
                                  bool ensure_started, int& attempts,
                                  DownloadReport& rep) {
  std::vector<std::size_t> sweep;
  if (policy_.full_sweep) {
    sweep.resize(device_->frames().num_frames());
    std::iota(sweep.begin(), sweep.end(), 0);
  }
  for (int attempt = 1; attempt <= budget; ++attempt) {
    ++attempts;
    if (attempt > 1) backoff(attempt);
    try {
      // ABORT first: a previous stream cut off mid-payload left the port
      // waiting for FDRI words that would otherwise swallow this stream.
      board_->abort_config();
      ++aborts_;
      board_->send_config(stream.words);
      words_sent_ += stream.words.size();
      JPG_COUNT("dl.words_sent", stream.words.size());
    } catch (const JpgError& e) {
      ++rep.faults_seen;
      rep.fault_log.push_back(std::string("send: ") + e.what());
      // Fall through: readback decides how much of the stream landed.
    }
    std::vector<std::size_t> bad = verify_against(target, check, rep);
    if (bad.empty() && policy_.full_sweep) {
      bad = verify_against(target, sweep, rep);
    }
    if (bad.empty()) {
      if (ensure_started && !board_->config_done()) {
        // Every frame is right but DONE is low: the stream lost its START
        // command (e.g. truncated after the last pad frame). Resend just
        // the startup epilogue.
        rep.fault_log.emplace_back(
            "frames verified but DONE low; resending startup");
        stream = build_frames_stream(target, {}, true);
        check.clear();
        continue;
      }
      return true;
    }
    rep.frames_repaired += bad.size();
    ++repair_rounds_;
    JPG_COUNT("dl.repair_rounds", 1);
    stream = build_frames_stream(target, bad, ensure_started);
    check = std::move(bad);
  }
  return false;
}

void VerifiedDownloader::finish_report(DownloadReport& rep,
                                       std::uint64_t t0_ns) const {
  rep.telemetry.duration_ns = telemetry::now_ns() - t0_ns;
  rep.telemetry.set("words_sent", words_sent_);
  rep.telemetry.set("readback_words", readback_words_);
  rep.telemetry.set("repair_rounds", repair_rounds_);
  rep.telemetry.set("aborts", aborts_);
}

AttestReport VerifiedDownloader::attest(const ConfigMemory& expected) {
  JPG_SPAN("attest.audit");
  JPG_COUNT("attest.audits", 1);
  JPG_REQUIRE(&expected.device() == device_,
              "attestation plane targets a different device");
  const FrameMap& fm = device_->frames();
  const std::size_t fw = fm.frame_words();
  const std::size_t total = fm.num_frames();
  // Bounded readback runs keep the scratch buffer small on big parts.
  constexpr std::size_t kChunkFrames = 32;

  AttestReport rep;
  expect_scratch_.resize(fw);
  std::vector<std::uint32_t>& expect = expect_scratch_;
  std::vector<std::uint32_t>& got = readback_scratch_;
  for (std::size_t first = 0; first < total; first += kChunkFrames) {
    const std::size_t count = std::min(kChunkFrames, total - first);
    try {
      board_->readback_into(first, count, got);
      JPG_COUNT("attest.readback_words", got.size());
    } catch (const JpgError& e) {
      // An unreadable frame proves nothing — but an audit that cannot see
      // the whole plane must not attest it.
      rep.frames_unreadable += count;
      JPG_WARN(std::string("attest: readback failed: ") + e.what());
      continue;
    }
    JPG_ASSERT(got.size() == count * fw);
    for (std::size_t k = 0; k < count; ++k) {
      const std::size_t frame = first + k;
      ++rep.frames_audited;
      expected.read_frame_words(frame, expect.data());
      const std::span<std::uint32_t> rb(got.data() + k * fw, fw);
      if (policy_.mask_capture_bits && is_capture_frame(fm, frame)) {
        mask_capture_words_inplace(*device_, frame, rb);
        mask_capture_words_inplace(*device_, frame, expect);
      }
      for (std::size_t w = 0; w < fw; ++w) {
        if (rb[w] != expect[w]) {
          rep.findings.push_back({frame, fm.describe_frame(frame), w,
                                  expect[w], rb[w]});
          break;  // one finding per frame; the address is what matters
        }
      }
    }
  }
  rep.attested = rep.findings.empty() && rep.frames_unreadable == 0;
  JPG_COUNT("attest.frames_audited", rep.frames_audited);
  if (!rep.findings.empty()) {
    JPG_COUNT("attest.findings", rep.findings.size());
  }
  JPG_INFO(rep.summary());
  return rep;
}

AttestReport VerifiedDownloader::attest() {
  JPG_REQUIRE(has_mirror(),
              "no board mirror established; call download_full or "
              "assume_board_state first");
  return attest(*mirror_);
}

DownloadReport VerifiedDownloader::download_full(const Bitstream& full) {
  JPG_SPAN("dl.download_full");
  JPG_COUNT("dl.downloads", 1);
  const std::uint64_t telem_t0 = telemetry::now_ns();
  words_sent_ = readback_words_ = repair_rounds_ = aborts_ = 0;
  DownloadReport rep;
  auto plane = std::make_unique<ConfigMemory>(*device_);
  std::vector<std::size_t> touched;
  try {
    ConfigPort port(*plane);
    port.load(full);
    if (!port.started()) {
      throw BitstreamError("full bitstream does not start the device");
    }
    touched = touched_frames(full);
  } catch (const JpgError& e) {
    rep.error = std::string("stream rejected tool-side, nothing sent: ") +
                e.what();
    finish_report(rep, telem_t0);
    return rep;
  }
  rep.frames_touched = touched.size();
  if (converge(full, *plane, std::move(touched), policy_.max_attempts,
               /*ensure_started=*/true, rep.attempts, rep)) {
    rep.status = DownloadStatus::Success;
    mirror_ = std::move(plane);
  } else {
    rep.error = "full download did not converge within the attempt budget";
  }
  finish_report(rep, telem_t0);
  JPG_INFO(rep.summary());
  return rep;
}

DownloadReport VerifiedDownloader::download_partial(const Bitstream& partial) {
  JPG_SPAN("dl.download_partial");
  JPG_COUNT("dl.downloads", 1);
  const std::uint64_t telem_t0 = telemetry::now_ns();
  words_sent_ = readback_words_ = repair_rounds_ = aborts_ = 0;
  JPG_REQUIRE(has_mirror(),
              "no board mirror established; call download_full or "
              "assume_board_state first");
  DownloadReport rep;
  ConfigMemory target = *mirror_;
  std::vector<std::size_t> touched;
  try {
    ConfigPort port(target);
    port.load(partial);
    touched = touched_frames(partial);
  } catch (const JpgError& e) {
    rep.error = std::string("stream rejected tool-side, nothing sent: ") +
                e.what();
    finish_report(rep, telem_t0);
    return rep;
  }
  rep.frames_touched = touched.size();
  if (converge(partial, target, touched, policy_.max_attempts,
               /*ensure_started=*/false, rep.attempts, rep)) {
    rep.status = DownloadStatus::Success;
    *mirror_ = target;
    finish_report(rep, telem_t0);
    JPG_INFO(rep.summary());
    return rep;
  }
  if (policy_.rollback) {
    Bitstream rb = build_frames_stream(*mirror_, touched, false);
    if (converge(std::move(rb), *mirror_, touched,
                 policy_.rollback_max_attempts, /*ensure_started=*/false,
                 rep.rollback_attempts, rep)) {
      rep.status = DownloadStatus::RolledBack;
      rep.error = "update did not converge; device rolled back to the "
                  "pre-update plane";
      finish_report(rep, telem_t0);
      JPG_INFO(rep.summary());
      return rep;
    }
    rep.error = "update did not converge and neither did the rollback; "
                "board state unknown";
  } else {
    rep.error = "update did not converge and rollback is disabled";
  }
  finish_report(rep, telem_t0);
  JPG_INFO(rep.summary());
  return rep;
}

DownloadReport VerifiedDownloader::download_stream(const StreamSource& source,
                                                   const StreamOptions& opts) {
  JPG_SPAN("dl.download_stream");
  JPG_COUNT("dl.downloads", 1);
  const std::uint64_t telem_t0 = telemetry::now_ns();
  words_sent_ = readback_words_ = repair_rounds_ = aborts_ = 0;
  JPG_REQUIRE(has_mirror(),
              "no board mirror established; call download_full or "
              "assume_board_state first");
  JPG_REQUIRE(opts.burst_words > 0, "burst_words must be positive");
  DownloadReport rep;
  ConfigMemory target = *mirror_;
  ConfigPort port(target);  // tool-side replay, one burst ahead of the wire

  BurstCursor validate(source);
  BurstCursor send(source);

  // Burst 0 replays before a single word goes out: a stream malformed at
  // the head is rejected with the same guarantee as download_partial.
  {
    const std::span<const std::uint32_t> head = validate.next(opts.burst_words);
    if (!head.empty()) {
      try {
        port.load(head);
      } catch (const JpgError& e) {
        rep.error = std::string("stream rejected tool-side, nothing sent: ") +
                    e.what();
        finish_report(rep, telem_t0);
        return rep;
      }
      // ABORT first, as in converge(): a previous stream cut off
      // mid-payload must not swallow this one. The streamed send is one
      // attempt against the policy budget.
      board_->abort_config();
      ++aborts_;
      ++rep.attempts;
    }
  }

  bool send_failed = false;
  bool mid_stream_reject = false;
  std::uint64_t overlap_ns = 0;
  while (true) {
    const std::span<const std::uint32_t> burst = send.next(opts.burst_words);
    if (burst.empty()) break;
    // Burst k's replay already succeeded; launch burst k+1's replay so it
    // runs while burst k is on the wire. The validate cursor stays exactly
    // one burst ahead of the send cursor — the two-state invariant holds
    // burst-wise: nothing unvalidated is ever sent.
    const std::span<const std::uint32_t> ahead = validate.next(opts.burst_words);
    std::future<void> ahead_done;
    if (!ahead.empty() && opts.overlap_verify) {
      ahead_done =
          ThreadPool::global().submit([&port, ahead] { port.load(ahead); });
    }
    const std::uint64_t send_t0 = telemetry::now_ns();
    bool sent_clean = false;
    if (!send_failed) {
      try {
        JPG_HIST("cfg.burst_words", burst.size());
        board_->send_config(burst);
        words_sent_ += burst.size();
        JPG_COUNT("dl.words_sent", burst.size());
        sent_clean = true;
      } catch (const JpgError& e) {
        ++rep.faults_seen;
        rep.fault_log.push_back(std::string("send: ") + e.what());
        // Stop pushing words after a link fault, but let the replay finish:
        // readback verification needs the complete intended plane.
        send_failed = true;
      }
    }
    const std::uint64_t send_t1 = telemetry::now_ns();
    try {
      if (ahead_done.valid()) {
        ahead_done.get();
        // The replay was in flight across the whole send window (submitted
        // before it, joined after): credit the send duration as validation
        // time hidden behind the transfer — but only when the burst really
        // went out. After a send fault the window measures a skipped no-op
        // (or the throw itself), and crediting those near-zero windows
        // would skew cfg.stream_overlap_ns toward nothing.
        if (sent_clean) overlap_ns += send_t1 - send_t0;
      } else if (!ahead.empty()) {
        port.load(ahead);
      }
    } catch (const JpgError& e) {
      rep.error =
          std::string("stream rejected tool-side mid-stream: ") + e.what();
      mid_stream_reject = true;
      break;
    }
  }
  JPG_COUNT("cfg.stream_overlap_ns", overlap_ns);
  rep.telemetry.set("stream_overlap_ns", overlap_ns);

  // The replay port logged every frame it committed — a superset of what
  // the board can have committed (the wire saw a validated prefix).
  std::vector<std::size_t> touched(port.committed_frames().begin(),
                                   port.committed_frames().end());
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  rep.frames_touched = touched.size();

  if (mid_stream_reject) {
    // Bursts already on the wire, but the stream's tail is malformed: there
    // is no intended plane to converge to. Abandon the update and roll the
    // committed superset back to the mirror.
    if (policy_.rollback) {
      Bitstream rb = build_frames_stream(*mirror_, touched, false);
      if (converge(std::move(rb), *mirror_, std::move(touched),
                   policy_.rollback_max_attempts, /*ensure_started=*/false,
                   rep.rollback_attempts, rep)) {
        rep.status = DownloadStatus::RolledBack;
        rep.error += "; device rolled back to the pre-update plane";
      } else {
        rep.error += "; rollback did not converge; board state unknown";
      }
    } else {
      rep.error += "; rollback disabled; board state unknown";
    }
    finish_report(rep, telem_t0);
    JPG_INFO(rep.summary());
    return rep;
  }

  // Fully replayed: `target` is the intended plane. Verify the touched
  // frames (plus the sweep), then repair/rollback exactly as
  // download_partial would with the remaining attempt budget.
  std::vector<std::size_t> bad = verify_against(target, touched, rep);
  if (bad.empty() && policy_.full_sweep) {
    std::vector<std::size_t> sweep(device_->frames().num_frames());
    std::iota(sweep.begin(), sweep.end(), 0);
    bad = verify_against(target, sweep, rep);
  }
  bool converged;
  if (bad.empty()) {
    converged = true;
  } else {
    rep.frames_repaired += bad.size();
    ++repair_rounds_;
    JPG_COUNT("dl.repair_rounds", 1);
    Bitstream repair = build_frames_stream(target, bad, false);
    converged = converge(std::move(repair), target, std::move(bad),
                         policy_.max_attempts - rep.attempts,
                         /*ensure_started=*/false, rep.attempts, rep);
  }
  if (converged) {
    rep.status = DownloadStatus::Success;
    *mirror_ = target;
    finish_report(rep, telem_t0);
    JPG_INFO(rep.summary());
    return rep;
  }
  if (policy_.rollback) {
    Bitstream rb = build_frames_stream(*mirror_, touched, false);
    if (converge(std::move(rb), *mirror_, std::move(touched),
                 policy_.rollback_max_attempts, /*ensure_started=*/false,
                 rep.rollback_attempts, rep)) {
      rep.status = DownloadStatus::RolledBack;
      rep.error = "update did not converge; device rolled back to the "
                  "pre-update plane";
      finish_report(rep, telem_t0);
      JPG_INFO(rep.summary());
      return rep;
    }
    rep.error = "update did not converge and neither did the rollback; "
                "board state unknown";
  } else {
    rep.error = "update did not converge and rollback is disabled";
  }
  finish_report(rep, telem_t0);
  JPG_INFO(rep.summary());
  return rep;
}

}  // namespace jpg
