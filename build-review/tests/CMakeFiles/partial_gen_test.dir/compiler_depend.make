# Empty compiler generated dependencies file for partial_gen_test.
# This may be replaced when dependencies are built.
