file(REMOVE_RECURSE
  "CMakeFiles/bram_capture_test.dir/bram_capture_test.cpp.o"
  "CMakeFiles/bram_capture_test.dir/bram_capture_test.cpp.o.d"
  "bram_capture_test"
  "bram_capture_test.pdb"
  "bram_capture_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bram_capture_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
